package repro

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

const universityText = `
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
exo  Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
exo  Course(OS, EE)
exo  Course(IC, EE)
exo  Course(DB, CS)
exo  Course(AI, CS)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
exo  Adv(Michael, Adam)
exo  Adv(Michael, Ben)
exo  Adv(Naomi, Caroline)
exo  Adv(Michael, David)
`

func TestPublicAPIEndToEnd(t *testing.T) {
	d, err := ParseDatabase(universityText)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(q, nil)
	if !c.Tractable || !c.Hierarchical {
		t.Fatalf("q1 classification: %+v", c)
	}
	solver := &Solver{}
	vals, err := solver.ShapleyAll(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 8 {
		t.Fatalf("got %d values", len(vals))
	}
	want, _ := new(big.Rat).SetString("-3/28")
	for _, v := range vals {
		if v.Fact.Key() == "TA(Adam)" && v.Value.Cmp(want) != 0 {
			t.Fatalf("Shapley(TA(Adam)) = %s, want -3/28", v.Value.RatString())
		}
	}
}

func TestPublicAPIDispatchAndErrors(t *testing.T) {
	d := MustParseDatabase(universityText)
	q2 := MustParseQuery("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	s := &Solver{}
	if _, err := s.Shapley(d, q2, NewFact("TA", "Adam")); !errors.Is(err, ErrIntractable) {
		t.Fatalf("want ErrIntractable, got %v", err)
	}
	s.ExoRelations = map[string]bool{"Stud": true, "Course": true}
	v, err := s.Shapley(d, q2, NewFact("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != MethodExoShap {
		t.Fatalf("method %v, want ExoShap", v.Method)
	}
	brute, err := BruteForceShapley(d, q2, NewFact("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Value.Cmp(brute) != 0 {
		t.Fatalf("ExoShap %s != brute %s", v.Value.RatString(), brute.RatString())
	}
}

func TestPublicAPIRelevanceAndApproximation(t *testing.T) {
	d := MustParseDatabase(universityText)
	q := MustParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")
	rel, err := IsRelevant(d, q, NewFact("TA", "David"))
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Fatal("TA(David) is irrelevant")
	}
	nz, err := ShapleyNonZero(d, q, NewFact("TA", "Adam"))
	if err != nil || !nz {
		t.Fatalf("ShapleyNonZero(TA(Adam)) = %v, %v", nz, err)
	}
	n, err := HoeffdingSamples(0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarloShapleyN(d, q, NewFact("Reg", "Caroline", "DB"), n, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	exact := 13.0 / 42.0
	if res.Estimate < exact-0.2 || res.Estimate > exact+0.2 {
		t.Fatalf("estimate %.4f too far from 13/42", res.Estimate)
	}
}

func TestPublicAPIProbabilistic(t *testing.T) {
	pd := NewProbDatabase()
	pd.MustAdd(NewFact("R", "a"), big.NewRat(1, 2))
	pd.MustAdd(NewFact("S", "a"), big.NewRat(1, 4))
	q := MustParseQuery("q() :- R(x), !S(x)")
	p, err := LiftedProbability(pd, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(big.NewRat(3, 8)) != 0 {
		t.Fatalf("P = %s, want 3/8", p.RatString())
	}
}

func TestPublicAPISatCountAndTransform(t *testing.T) {
	d := MustParseDatabase(universityText)
	q := MustParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")
	sat, err := SatCountVector(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sat) != d.NumEndo()+1 {
		t.Fatalf("sat vector length %d", len(sat))
	}
	q2 := MustParseQuery("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	_, tq, stages, err := ExoShapTransform(d, q2, map[string]bool{"Stud": true, "Course": true})
	if err != nil {
		t.Fatal(err)
	}
	if !tq.IsHierarchical() || len(stages) != 4 {
		t.Fatalf("transform: hierarchical=%v stages=%d", tq.IsHierarchical(), len(stages))
	}
}

func TestPublicAPIUCQ(t *testing.T) {
	u := MustParseUCQ("qa() :- R(x), !T(x) | qb() :- S(x, y), !T(y)")
	d := NewDatabase()
	d.MustAddEndo(NewFact("R", "a"))
	d.MustAddEndo(NewFact("T", "a"))
	rel, err := IsRelevantUCQ(d, u, NewFact("R", "a"))
	if err != nil {
		t.Fatal(err)
	}
	brute, err := IsRelevantBrute(d, u, NewFact("R", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if rel != brute {
		t.Fatalf("UCQ relevance %v != brute %v", rel, brute)
	}
}

// TestPublicAPIEnginePlan drives the v2 surface end to end through the
// facade: functional options, versioned plans, deltas and cancellation.
func TestPublicAPIEnginePlan(t *testing.T) {
	d := MustParseDatabase(universityText)
	q := MustParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")
	ctx := context.Background()
	eng := NewEngine(WithWorkers(2), WithBruteForce(false), WithExoRelations())
	plan, err := eng.Prepare(ctx, d, q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Version() != 1 || plan.Method() != MethodHierarchical {
		t.Fatalf("version %d method %v", plan.Version(), plan.Method())
	}
	before, err := plan.ShapleyAll(ctx, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != d.NumEndo() {
		t.Fatalf("%d values, want %d", len(before), d.NumEndo())
	}

	// Delta: the plan answers for the new snapshot, a fresh prepare agrees.
	ver, err := plan.Apply(ctx, Delta{AddEndo: []Fact{NewFact("TA", "Caroline")}})
	if err != nil {
		t.Fatal(err)
	}
	if ver != Version(2) {
		t.Fatalf("version %d, want 2", ver)
	}
	after, err := plan.ShapleyAll(ctx, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := eng.Prepare(ctx, plan.Snapshot(), q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ShapleyAll(ctx, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if after[i].Value.Cmp(want[i].Value) != 0 {
			t.Fatalf("delta value %s = %s, want %s", after[i].Fact, after[i].Value.RatString(), want[i].Value.RatString())
		}
	}

	// Cancellation through the facade.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.ShapleyAll(cancelled, BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
