package query_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/workload"
)

// This file fuzzes the index-probing join evaluator against its scan
// reference on workload.RandomCQ queries. It lives in the external test
// package because workload imports query. Instance sizes straddle
// indexMinSize so both the probe and the scan arm of every plan step run.

// bindingTrace renders one homomorphism deterministically.
func bindingTrace(q *query.CQ, b query.Binding) string {
	var sb strings.Builder
	for _, x := range q.Vars() {
		fmt.Fprintf(&sb, "%s=%s;", x, b[x])
	}
	return sb.String()
}

func randomDB(rng *rand.Rand, q *query.CQ, domSize, perRel int) *db.Database {
	d := db.New()
	dom := make([]db.Const, domSize)
	for i := range dom {
		dom[i] = db.Const(fmt.Sprintf("c%d", i))
	}
	// Constants of the query occasionally land in the data too.
	for _, a := range q.Atoms {
		for _, tm := range a.Args {
			if !tm.IsVar() {
				dom = append(dom, tm.Const)
			}
		}
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	for _, rel := range q.Relations() {
		n := rng.Intn(perRel + 1)
		for i := 0; i < n; i++ {
			args := make([]db.Const, arity[rel])
			for j := range args {
				args[j] = dom[rng.Intn(len(dom))]
			}
			f := db.Fact{Rel: rel, Args: args}
			if d.Contains(f) {
				continue
			}
			if rng.Intn(2) == 0 {
				d.MustAddEndo(f)
			} else {
				d.MustAddExo(f)
			}
		}
	}
	return d
}

// TestIndexedEvaluatorMatchesScanRandom pins ForEachHomomorphism (hash-index
// probing) to ForEachHomomorphismScan (full scans) — same homomorphisms, same
// order — over random queries and instances.
func TestIndexedEvaluatorMatchesScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cfg := workload.DefaultRandomCQConfig()
	cfg.MaxAtoms = 5
	cfg.MaxVars = 4
	cfg.MaxArity = 3
	for trial := 0; trial < 400; trial++ {
		q, _ := workload.RandomCQ(rng, cfg)
		if q.Validate() != nil {
			continue
		}
		// Sizes straddling the index attachment threshold: small relations
		// stay on the scan arm, large ones get probed.
		perRel := []int{3, 12, 40}[trial%3]
		d := randomDB(rng, q, 2+rng.Intn(3), perRel)
		var indexed, scanned []string
		q.ForEachHomomorphism(d, func(b query.Binding) bool {
			indexed = append(indexed, bindingTrace(q, b))
			return true
		})
		q.ForEachHomomorphismScan(d, func(b query.Binding) bool {
			scanned = append(scanned, bindingTrace(q, b))
			return true
		})
		if len(indexed) != len(scanned) {
			t.Fatalf("%s: %d homomorphisms indexed, %d scanned\nDB:\n%s", q, len(indexed), len(scanned), d)
		}
		for i := range indexed {
			if indexed[i] != scanned[i] {
				t.Fatalf("%s: homomorphism %d differs (order or content): indexed %s, scanned %s\nDB:\n%s",
					q, i, indexed[i], scanned[i], d)
			}
		}
		// Early termination must agree too.
		if len(indexed) > 1 {
			stop := 1 + rng.Intn(len(indexed))
			var cut []string
			q.ForEachHomomorphism(d, func(b query.Binding) bool {
				cut = append(cut, bindingTrace(q, b))
				return len(cut) < stop
			})
			if len(cut) != stop {
				t.Fatalf("%s: early stop after %d yielded %d homomorphisms", q, stop, len(cut))
			}
		}
	}
}

// TestIndexedEvaluatorMatchesScanAppendHeavy pins the evaluator pair on a
// database that grows between evaluations, exercising the index cache's
// staleness check (indexes are rebuilt append-only).
func TestIndexedEvaluatorMatchesScanAppendHeavy(t *testing.T) {
	q := query.MustParse("q() :- R(x, y), S(y, z), !T(x, z)")
	rng := rand.New(rand.NewSource(59))
	d := randomDB(rng, q, 4, 30)
	for round := 0; round < 6; round++ {
		var indexed, scanned []string
		q.ForEachHomomorphism(d, func(b query.Binding) bool {
			indexed = append(indexed, bindingTrace(q, b))
			return true
		})
		q.ForEachHomomorphismScan(d, func(b query.Binding) bool {
			scanned = append(scanned, bindingTrace(q, b))
			return true
		})
		if len(indexed) != len(scanned) {
			t.Fatalf("round %d: %d indexed vs %d scanned", round, len(indexed), len(scanned))
		}
		for i := range indexed {
			if indexed[i] != scanned[i] {
				t.Fatalf("round %d: homomorphism %d differs: %s vs %s", round, i, indexed[i], scanned[i])
			}
		}
		for i := 0; i < 7; i++ {
			f := db.Fact{Rel: []string{"R", "S", "T"}[rng.Intn(3)],
				Args: []db.Const{db.Const(fmt.Sprintf("c%d", rng.Intn(4))), db.Const(fmt.Sprintf("c%d", rng.Intn(4)))}}
			if !d.Contains(f) {
				d.MustAddExo(f)
			}
		}
	}
}
