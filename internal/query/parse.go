package query

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a CQ¬ from the paper's rule syntax, e.g.
//
//	q2(x) :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)
//
// Negation is written '!', '¬', or a leading "not ". Identifiers starting
// with a lowercase letter are variables; identifiers starting with an
// uppercase letter or a digit, and single-quoted strings, are constants.
// The head may be empty (Boolean query). The query is validated (safety,
// arity consistency) before being returned.
func Parse(src string) (*CQ, error) {
	q, err := parseCQ(src)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for fixtures.
func MustParse(src string) *CQ {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseUCQ reads a UCQ¬ whose disjuncts are separated by '|' or newlines.
func ParseUCQ(src string) (*UCQ, error) {
	var parts []string
	for _, line := range strings.Split(src, "\n") {
		for _, p := range strings.Split(line, "|") {
			p = strings.TrimSpace(p)
			if p == "" || strings.HasPrefix(p, "#") || strings.HasPrefix(p, "%") {
				continue
			}
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("query: empty UCQ source")
	}
	u := &UCQ{}
	for _, p := range parts {
		q, err := Parse(p)
		if err != nil {
			return nil, err
		}
		u.Disjuncts = append(u.Disjuncts, q)
	}
	u.Label = u.Disjuncts[0].Label
	return u, nil
}

// MustParseUCQ is ParseUCQ that panics on error.
func MustParseUCQ(src string) *UCQ {
	u, err := ParseUCQ(src)
	if err != nil {
		panic(err)
	}
	return u
}

func parseCQ(src string) (*CQ, error) {
	s := strings.TrimSpace(src)
	sep := strings.Index(s, ":-")
	if sep < 0 {
		return nil, fmt.Errorf("query: missing ':-' in %q", src)
	}
	headPart := strings.TrimSpace(s[:sep])
	bodyPart := strings.TrimSpace(s[sep+2:])

	q := &CQ{}
	if headPart != "" {
		open := strings.IndexByte(headPart, '(')
		if open < 0 || !strings.HasSuffix(headPart, ")") {
			return nil, fmt.Errorf("query: malformed head %q", headPart)
		}
		q.Label = strings.TrimSpace(headPart[:open])
		inner := strings.TrimSpace(headPart[open+1 : len(headPart)-1])
		if inner != "" {
			for _, v := range strings.Split(inner, ",") {
				v = strings.TrimSpace(v)
				if !isVariableToken(v) {
					return nil, fmt.Errorf("query: head term %q is not a variable", v)
				}
				q.Head = append(q.Head, v)
			}
		}
	}

	atoms, err := splitAtoms(bodyPart)
	if err != nil {
		return nil, err
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("query: empty body in %q", src)
	}
	for _, as := range atoms {
		a, err := parseAtom(as)
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, a)
	}
	return q, nil
}

// splitAtoms splits the body on top-level commas (outside parentheses and
// quotes).
func splitAtoms(body string) ([]string, error) {
	var parts []string
	depth := 0
	inQuote := false
	var cur strings.Builder
	for _, r := range body {
		switch {
		case r == '\'':
			inQuote = !inQuote
			cur.WriteRune(r)
		case inQuote:
			cur.WriteRune(r)
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("query: unbalanced ')' in %q", body)
			}
			cur.WriteRune(r)
		case r == ',' && depth == 0:
			parts = append(parts, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if depth != 0 || inQuote {
		return nil, fmt.Errorf("query: unbalanced parentheses or quote in %q", body)
	}
	if last := strings.TrimSpace(cur.String()); last != "" {
		parts = append(parts, last)
	}
	return parts, nil
}

func parseAtom(s string) (Atom, error) {
	s = strings.TrimSpace(s)
	neg := false
	switch {
	case strings.HasPrefix(s, "!"):
		neg, s = true, strings.TrimSpace(s[1:])
	case strings.HasPrefix(s, "¬"):
		neg, s = true, strings.TrimSpace(s[len("¬"):])
	case strings.HasPrefix(s, "not "):
		neg, s = true, strings.TrimSpace(s[4:])
	}
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Atom{}, fmt.Errorf("query: malformed atom %q", s)
	}
	rel := strings.TrimSpace(s[:open])
	if rel == "" {
		return Atom{}, fmt.Errorf("query: atom with empty relation in %q", s)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	a := Atom{Rel: rel, Negated: neg}
	if inner == "" {
		return a, nil
	}
	args, err := splitTerms(inner)
	if err != nil {
		return Atom{}, fmt.Errorf("query: atom %q: %v", s, err)
	}
	for _, t := range args {
		term, err := parseTerm(t)
		if err != nil {
			return Atom{}, fmt.Errorf("query: atom %q: %v", s, err)
		}
		a.Args = append(a.Args, term)
	}
	return a, nil
}

func splitTerms(s string) ([]string, error) {
	var parts []string
	inQuote := false
	var cur strings.Builder
	for _, r := range s {
		switch {
		case r == '\'':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			parts = append(parts, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in %q", s)
	}
	parts = append(parts, strings.TrimSpace(cur.String()))
	return parts, nil
}

func parseTerm(s string) (Term, error) {
	if s == "" {
		return Term{}, fmt.Errorf("empty term")
	}
	if strings.HasPrefix(s, "'") {
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return Term{}, fmt.Errorf("malformed quoted constant %q", s)
		}
		return C(s[1 : len(s)-1]), nil
	}
	if isVariableToken(s) {
		return V(s), nil
	}
	r := rune(s[0])
	if unicode.IsUpper(r) || unicode.IsDigit(r) {
		return C(s), nil
	}
	return Term{}, fmt.Errorf("malformed term %q", s)
}

// isVariableToken reports whether s is a valid variable token: a lowercase
// letter followed by letters, digits, or underscores.
func isVariableToken(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !unicode.IsLower(r) {
				return false
			}
			continue
		}
		if !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_') {
			return false
		}
	}
	return true
}
