package query

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/db"
)

// randomDBFor builds a small random database over the relations of q.
func randomDBFor(rng *rand.Rand, q *CQ, domSize, perRel int) *db.Database {
	d := db.New()
	dom := make([]db.Const, domSize)
	for i := range dom {
		dom[i] = db.Const(string(rune('a' + i)))
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	for _, rel := range q.Relations() {
		for i := 0; i < perRel; i++ {
			args := make([]db.Const, arity[rel])
			for j := range args {
				args[j] = dom[rng.Intn(domSize)]
			}
			f := db.Fact{Rel: rel, Args: args}
			if !d.Contains(f) {
				d.MustAdd(f, rng.Intn(2) == 0)
			}
		}
	}
	return d
}

// collectHoms renders each homomorphism as a sorted string for set
// comparison.
func collectHoms(q *CQ, d *db.Database, enum func(*db.Database, func(Binding) bool)) []string {
	var out []string
	enum(d, func(b Binding) bool {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := ""
		for _, k := range keys {
			s += k + "=" + string(b[k]) + ";"
		}
		out = append(out, s)
		return true
	})
	sort.Strings(out)
	return out
}

// The greedy plan and the declaration-order plan must enumerate exactly the
// same homomorphism sets on arbitrary instances.
func TestOrderedEvaluatorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	queries := []*CQ{
		MustParse("e1() :- R(x), S(x, y)"),
		MustParse("e2() :- R(x), S(x, y), !T(y, x)"),
		MustParse("e3() :- S(x, y), R(x), !T(x, x)"),
		MustParse("e4() :- R(x, y), S(y, z), T(z)"),
		MustParse("e5() :- R(x), !S(x), T(x, y), U(z)"),
	}
	for _, q := range queries {
		for trial := 0; trial < 12; trial++ {
			d := randomDBFor(rng, q, 3, 5)
			greedy := collectHoms(q, d, q.ForEachHomomorphism)
			ordered := collectHoms(q, d, q.ForEachHomomorphismOrdered)
			if !reflect.DeepEqual(greedy, ordered) {
				t.Fatalf("%s: plans disagree\ngreedy:  %v\nordered: %v\nDB:\n%s", q, greedy, ordered, d)
			}
		}
	}
}

// Enumeration must be deterministic: two runs on the same database yield
// the same sequence (insertion order of facts drives the search).
func TestEnumerationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	q := MustParse("d1() :- R(x), S(x, y), !T(y)")
	d := randomDBFor(rng, q, 3, 6)
	first := collectHoms(q, d, q.ForEachHomomorphism)
	for i := 0; i < 3; i++ {
		again := collectHoms(q, d, q.ForEachHomomorphism)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("enumeration not deterministic: %v vs %v", first, again)
		}
	}
}

// Bindings passed to the callback must be insulated from the search state:
// mutating them must not corrupt later results.
func TestBindingsAreCopies(t *testing.T) {
	q := MustParse("c1() :- R(x), S(x, y)")
	d := db.New()
	d.MustAddEndo(db.F("R", "a"))
	d.MustAddEndo(db.F("S", "a", "1"))
	d.MustAddEndo(db.F("S", "a", "2"))
	var collected []Binding
	q.ForEachHomomorphism(d, func(b Binding) bool {
		b["x"] = "CORRUPTED"
		collected = append(collected, b)
		return true
	})
	if len(collected) != 2 {
		t.Fatalf("expected 2 homomorphisms, got %d", len(collected))
	}
	if collected[0]["y"] == collected[1]["y"] {
		t.Fatal("bindings alias each other")
	}
}

// A query whose negative atom shares the relation of a positive atom
// (self-join across polarities) must respect both constraints.
func TestEvalSelfJoinAcrossPolarities(t *testing.T) {
	q := MustParse("p() :- R(x, y), !R(y, y)")
	d := db.New()
	d.MustAddEndo(db.F("R", "a", "b"))
	if !q.Eval(d) {
		t.Fatal("R(a,b) with no R(b,b) satisfies q")
	}
	d.MustAddEndo(db.F("R", "b", "b"))
	// Homomorphism x=a,y=b now blocked; x=b,y=b blocked by itself.
	if q.Eval(d) {
		t.Fatal("adding R(b,b) should block all homomorphisms")
	}
}

// Empty-relation behavior: positive atom over an absent relation means
// unsatisfiable; negated atom over an absent relation is vacuously true.
func TestEvalAbsentRelations(t *testing.T) {
	q := MustParse("a1() :- R(x), !Missing(x)")
	d := db.New()
	d.MustAddEndo(db.F("R", "v"))
	if !q.Eval(d) {
		t.Fatal("negated absent relation must be vacuously satisfied")
	}
	q2 := MustParse("a2() :- MissingPos(x)")
	if q2.Eval(d) {
		t.Fatal("positive absent relation cannot be satisfied")
	}
}
