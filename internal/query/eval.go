package query

import (
	"sort"

	"repro/internal/db"
)

// Binding maps query variables to database constants. A homomorphism from q
// to D is a total Binding over Vars(q) mapping every positive atom into D
// and no negated atom into D.
type Binding map[string]db.Const

// clone copies a binding.
func (b Binding) clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Eval reports whether D |= q: there is a homomorphism mapping every
// positive atom of q to a fact of D and no negated atom to a fact of D.
func (q *CQ) Eval(d *db.Database) bool {
	found := false
	q.ForEachHomomorphism(d, func(Binding) bool {
		found = true
		return false // stop
	})
	return found
}

// Eval reports whether D satisfies at least one disjunct.
func (u *UCQ) Eval(d *db.Database) bool {
	for _, q := range u.Disjuncts {
		if q.Eval(d) {
			return true
		}
	}
	return false
}

// ForEachHomomorphism enumerates every homomorphism from q to d in a
// deterministic order, calling fn with a fresh Binding for each. fn returns
// false to stop the enumeration. The query must be safe (every variable of q
// occurs in a positive atom) or the enumeration may be incomplete; Validate
// enforces safety.
func (q *CQ) ForEachHomomorphism(d *db.Database, fn func(Binding) bool) {
	plan := planAtoms(q, d)
	// Ground negative atoms can be checked once.
	for _, i := range q.Negative() {
		if q.Atoms[i].IsGround() && d.Contains(q.Atoms[i].GroundFact()) {
			return
		}
	}
	attachIndexes(d, q, plan)
	var scratch []byte
	search(d, q, plan, 0, make(Binding), &scratch, fn)
}

// ForEachHomomorphismScan is ForEachHomomorphism with index attachment
// disabled: every join step falls back to the full relation scan. It is the
// differential reference for the index-probing evaluator (the fuzz suite
// pins both on random queries) and the baseline for its ablation benchmark;
// results and their order are identical.
func (q *CQ) ForEachHomomorphismScan(d *db.Database, fn func(Binding) bool) {
	plan := planAtoms(q, d)
	for _, i := range q.Negative() {
		if q.Atoms[i].IsGround() && d.Contains(q.Atoms[i].GroundFact()) {
			return
		}
	}
	var scratch []byte
	search(d, q, plan, 0, make(Binding), &scratch, fn)
}

// ForEachHomomorphismOrdered is ForEachHomomorphism with the positive atoms
// joined in declaration order instead of the greedy plan. It exists as the
// baseline for the join-ordering ablation benchmark; results are identical.
func (q *CQ) ForEachHomomorphismOrdered(d *db.Database, fn func(Binding) bool) {
	plan := planAtomsOrdered(q)
	for _, i := range q.Negative() {
		if q.Atoms[i].IsGround() && d.Contains(q.Atoms[i].GroundFact()) {
			return
		}
	}
	attachIndexes(d, q, plan)
	var scratch []byte
	search(d, q, plan, 0, make(Binding), &scratch, fn)
}

// planAtomsOrdered schedules positive atoms in declaration order, with
// negated atoms checked as soon as their variables are bound.
func planAtomsOrdered(q *CQ) []planStep {
	bound := make(map[string]bool)
	negDone := make(map[int]bool)
	var steps []planStep
	for _, i := range q.Positive() {
		step := planStep{atom: i, probePos: boundPositions(q.Atoms[i], bound)}
		for _, x := range q.Atoms[i].Vars() {
			bound[x] = true
		}
		for _, j := range q.Negative() {
			if negDone[j] || q.Atoms[j].IsGround() {
				continue
			}
			all := true
			for _, x := range q.Atoms[j].Vars() {
				if !bound[x] {
					all = false
					break
				}
			}
			if all {
				negDone[j] = true
				step.negAfter = append(step.negAfter, j)
			}
		}
		steps = append(steps, step)
	}
	return steps
}

// Answers returns the distinct head-variable tuples of homomorphisms from q
// to d, in the order first encountered.
func (q *CQ) Answers(d *db.Database) [][]db.Const {
	var out [][]db.Const
	seen := make(map[string]bool)
	q.ForEachHomomorphism(d, func(b Binding) bool {
		row := make([]db.Const, len(q.Head))
		key := ""
		for i, x := range q.Head {
			row[i] = b[x]
			key += string(b[x]) + "\x00"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, row)
		}
		return true
	})
	return out
}

// planStep is one positive atom to join, plus the negated atoms that become
// fully bound right after it.
type planStep struct {
	atom     int          // index into q.Atoms (positive)
	negAfter []int        // indices of negated atoms checkable after this step
	probePos []int        // argument positions bound before this step (constants included)
	idx      *db.RelIndex // hash index over probePos; nil when the step scans
}

// boundPositions returns the argument positions of a whose value is known
// before the step runs: constants, and variables bound by earlier steps.
// These are exactly the positions an index probe can key on.
func boundPositions(a Atom, bound map[string]bool) []int {
	var out []int
	for i, t := range a.Args {
		if !t.IsVar() || bound[t.Var] {
			out = append(out, i)
		}
	}
	return out
}

// indexMinSize is the relation size below which a plan step keeps the plain
// scan: building a hash index costs about one scan, so tiny relations never
// win it back (across evaluations the per-database index cache amortizes the
// build, but tiny scans are cheap anyway).
const indexMinSize = 8

// attachIndexes resolves a hash index for every plan step that has at least
// one argument position bound before the step runs and a relation large
// enough to be worth it. Index buckets preserve insertion order, and the
// facts a probe skips are exactly those unify would reject on a bound
// position, so the homomorphisms and their order are identical to the scan.
func attachIndexes(d *db.Database, q *CQ, plan []planStep) {
	for i := range plan {
		step := &plan[i]
		if len(step.probePos) == 0 {
			continue
		}
		rel := q.Atoms[step.atom].Rel
		if d.RelationSize(rel) < indexMinSize {
			continue
		}
		step.idx = d.Index(rel, step.probePos)
	}
}

// planAtoms orders the positive atoms greedily: start with the smallest
// relation, then repeatedly pick the atom sharing the most already-bound
// variables (ties broken by relation size, then index). Negated atoms are
// scheduled as early as all their variables are bound.
func planAtoms(q *CQ, d *db.Database) []planStep {
	pos := q.Positive()
	neg := q.Negative()
	bound := make(map[string]bool)
	used := make(map[int]bool)
	negDone := make(map[int]bool)

	relSize := func(i int) int { return len(d.RelationFacts(q.Atoms[i].Rel)) }
	countBound := func(i int) int {
		n := 0
		for _, x := range q.Atoms[i].Vars() {
			if bound[x] {
				n++
			}
		}
		return n
	}

	var steps []planStep
	for len(steps) < len(pos) {
		best, bestShared, bestSize := -1, -1, 0
		for _, i := range pos {
			if used[i] {
				continue
			}
			shared := countBound(i)
			size := relSize(i)
			if best == -1 || shared > bestShared || (shared == bestShared && size < bestSize) {
				best, bestShared, bestSize = i, shared, size
			}
		}
		used[best] = true
		step := planStep{atom: best, probePos: boundPositions(q.Atoms[best], bound)}
		for _, x := range q.Atoms[best].Vars() {
			bound[x] = true
		}
		for _, j := range neg {
			if negDone[j] || q.Atoms[j].IsGround() {
				continue
			}
			all := true
			for _, x := range q.Atoms[j].Vars() {
				if !bound[x] {
					all = false
					break
				}
			}
			if all {
				negDone[j] = true
				step.negAfter = append(step.negAfter, j)
			}
		}
		sort.Ints(step.negAfter)
		steps = append(steps, step)
	}
	return steps
}

// search performs the backtracking join over the planned positive atoms.
// Steps with an attached index probe only the matching hash bucket (keyed by
// the already-bound argument values); the rest scan the relation. scratch is
// the shared probe-key buffer, reused across the whole search so warm probes
// allocate nothing.
func search(d *db.Database, q *CQ, plan []planStep, depth int, env Binding, scratch *[]byte, fn func(Binding) bool) bool {
	if depth == len(plan) {
		return fn(env.clone())
	}
	step := plan[depth]
	atom := q.Atoms[step.atom]
	var facts []db.Fact
	if step.idx != nil {
		buf := (*scratch)[:0]
		for i, p := range step.probePos {
			if i > 0 {
				buf = append(buf, 0)
			}
			if t := atom.Args[p]; t.IsVar() {
				buf = append(buf, env[t.Var]...)
			} else {
				buf = append(buf, t.Const...)
			}
		}
		*scratch = buf
		facts = step.idx.LookupKey(buf)
	} else {
		facts = d.RelationFacts(atom.Rel)
	}
	for _, f := range facts {
		newVars, ok := unify(atom, f, env)
		if !ok {
			continue
		}
		violated := false
		for _, j := range step.negAfter {
			if d.Contains(instantiate(q.Atoms[j], env)) {
				violated = true
				break
			}
		}
		if !violated {
			if !search(d, q, plan, depth+1, env, scratch, fn) {
				for _, x := range newVars {
					delete(env, x)
				}
				return false
			}
		}
		for _, x := range newVars {
			delete(env, x)
		}
	}
	return true
}

// unify extends env so that atom maps to fact f; it returns the variables
// newly bound (for backtracking) and whether unification succeeded. On
// failure env is left unchanged.
func unify(atom Atom, f db.Fact, env Binding) (newVars []string, ok bool) {
	if len(atom.Args) != len(f.Args) {
		return nil, false
	}
	for i, t := range atom.Args {
		if !t.IsVar() {
			if t.Const != f.Args[i] {
				rollback(env, newVars)
				return nil, false
			}
			continue
		}
		if v, bound := env[t.Var]; bound {
			if v != f.Args[i] {
				rollback(env, newVars)
				return nil, false
			}
			continue
		}
		env[t.Var] = f.Args[i]
		newVars = append(newVars, t.Var)
	}
	return newVars, true
}

func rollback(env Binding, vars []string) {
	for _, x := range vars {
		delete(env, x)
	}
}

// instantiate grounds an atom under a (total, for this atom) binding.
func instantiate(a Atom, env Binding) db.Fact {
	args := make([]db.Const, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			args[i] = env[t.Var]
		} else {
			args[i] = t.Const
		}
	}
	return db.Fact{Rel: a.Rel, Args: args}
}

// Instantiate grounds atom a under binding b (exported for the relevance
// algorithms, which need the fact images of atoms under a homomorphism).
func Instantiate(a Atom, b Binding) db.Fact { return instantiate(a, b) }

// MatchesAtom reports whether fact f can be the image of atom a under some
// variable assignment (arity, constants and repeated-variable positions
// agree). It is the per-fact "relevance to an atom pattern" filter used by
// the counting algorithm.
func MatchesAtom(a Atom, f db.Fact) bool {
	if a.Rel != f.Rel || len(a.Args) != len(f.Args) {
		return false
	}
	seen := make(map[string]db.Const)
	for i, t := range a.Args {
		if !t.IsVar() {
			if t.Const != f.Args[i] {
				return false
			}
			continue
		}
		if v, ok := seen[t.Var]; ok {
			if v != f.Args[i] {
				return false
			}
		} else {
			seen[t.Var] = f.Args[i]
		}
	}
	return true
}
