package query

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/db"
)

// Property: a fact built by instantiating an atom under a total binding
// always matches that atom's pattern (Instantiate and MatchesAtom are
// inverse-consistent).
func TestQuickInstantiateMatches(t *testing.T) {
	f := func(relSeed uint8, argSpec []uint8, valSeed uint8) bool {
		if len(argSpec) == 0 || len(argSpec) > 5 {
			return true
		}
		rel := fmt.Sprintf("R%d", relSeed%4)
		args := make([]Term, len(argSpec))
		binding := Binding{}
		for i, s := range argSpec {
			if s%3 == 0 {
				args[i] = C(fmt.Sprintf("K%d", s%4))
			} else {
				v := fmt.Sprintf("v%d", s%3)
				args[i] = V(v)
				binding[v] = db.Const(fmt.Sprintf("c%d", (int(s)+int(valSeed))%3))
			}
		}
		atom := Atom{Rel: rel, Args: args, Negated: s2b(valSeed)}
		fact := Instantiate(atom, binding)
		return MatchesAtom(atom, fact)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func s2b(v uint8) bool { return v%2 == 0 }

// Property: substituting a variable never changes the relation symbols or
// atom count, and removes the variable entirely.
func TestQuickSubstituteRemovesVariable(t *testing.T) {
	f := func(nAtoms, nVars uint8) bool {
		n := int(nAtoms)%3 + 1
		v := int(nVars)%3 + 1
		q := &CQ{Label: "p"}
		for i := 0; i < n; i++ {
			args := []Term{V(fmt.Sprintf("x%d", i%v)), V(fmt.Sprintf("x%d", (i+1)%v))}
			q.Atoms = append(q.Atoms, Atom{Rel: fmt.Sprintf("R%d", i), Args: args})
		}
		target := "x0"
		out := q.SubstituteVar(target, "Z")
		if len(out.Atoms) != len(q.Atoms) {
			return false
		}
		for i := range out.Atoms {
			if out.Atoms[i].Rel != q.Atoms[i].Rel {
				return false
			}
			if out.Atoms[i].HasVar(target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the Gaifman graph is symmetric and loop-free.
func TestQuickGaifmanSymmetric(t *testing.T) {
	f := func(spec []uint8) bool {
		if len(spec) == 0 || len(spec) > 6 {
			return true
		}
		q := &CQ{Label: "g"}
		for i, s := range spec {
			args := []Term{V(fmt.Sprintf("v%d", s%4)), V(fmt.Sprintf("v%d", (s/4)%4))}
			q.Atoms = append(q.Atoms, Atom{Rel: fmt.Sprintf("R%d", i), Args: args})
		}
		g := q.GaifmanGraph()
		for x, ns := range g {
			for _, y := range ns {
				if x == y {
					return false // self-loop
				}
				back := false
				for _, z := range g[y] {
					if z == x {
						back = true
					}
				}
				if !back {
					return false // asymmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
