package query

import (
	"sort"
)

// HasSelfJoin reports whether two distinct atoms share a relation symbol.
// Both polarities count: R(x), ¬R(y) is a self-join (the paper's Example 5.3
// and qRST¬R rely on this).
func (q *CQ) HasSelfJoin() bool {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if seen[a.Rel] {
			return true
		}
		seen[a.Rel] = true
	}
	return false
}

// atomsOf returns, for every variable, the set of atom indices containing it
// (the paper's A_x), over all atoms regardless of polarity.
func (q *CQ) atomsOf() map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for i, a := range q.Atoms {
		for _, x := range a.Vars() {
			if out[x] == nil {
				out[x] = make(map[int]bool)
			}
			out[x][i] = true
		}
	}
	return out
}

// IsHierarchical reports whether for all variables x, y one of A_x ⊆ A_y,
// A_y ⊆ A_x, or A_x ∩ A_y = ∅ holds. The definition extends verbatim to
// CQ¬s (paper §2).
func (q *CQ) IsHierarchical() bool {
	_, _, ok := q.NonHierarchicalWitness()
	return !ok
}

// NonHierarchicalWitness returns a pair of variables violating the
// hierarchy condition, if any.
func (q *CQ) NonHierarchicalWitness() (x, y string, found bool) {
	ax := q.atomsOf()
	vars := q.Vars()
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			a, b := ax[vars[i]], ax[vars[j]]
			if !subset(a, b) && !subset(b, a) && intersects(a, b) {
				return vars[i], vars[j], true
			}
		}
	}
	return "", "", false
}

func subset(a, b map[int]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func intersects(a, b map[int]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// Triplet is a non-hierarchical triplet (αx, αxy, αy) of atom indices with
// its witnessing variables: X occurs in AtomX but not AtomY, Y occurs in
// AtomY but not AtomX, and both occur in AtomXY.
type Triplet struct {
	AtomX, AtomXY, AtomY int
	X, Y                 string
}

// NonHierarchicalTriplets enumerates all non-hierarchical triplets of q in a
// deterministic order.
func (q *CQ) NonHierarchicalTriplets() []Triplet {
	var out []Triplet
	vars := q.Vars()
	for _, x := range vars {
		for _, y := range vars {
			if x == y {
				continue
			}
			for ix, ax := range q.Atoms {
				if !ax.HasVar(x) || ax.HasVar(y) {
					continue
				}
				for iy, ay := range q.Atoms {
					if !ay.HasVar(y) || ay.HasVar(x) {
						continue
					}
					for ixy, axy := range q.Atoms {
						if axy.HasVar(x) && axy.HasVar(y) {
							out = append(out, Triplet{AtomX: ix, AtomXY: ixy, AtomY: iy, X: x, Y: y})
						}
					}
				}
			}
		}
	}
	return out
}

// BaseHardQuery identifies which of the four basic non-hierarchical queries
// of §3 a triplet's polarity pattern reduces from.
type BaseHardQuery int

const (
	// BaseRST is qRST() :- R(x), S(x,y), T(y).
	BaseRST BaseHardQuery = iota
	// BaseNegRSNegT is q¬RS¬T() :- ¬R(x), S(x,y), ¬T(y).
	BaseNegRSNegT
	// BaseRNegST is qR¬ST() :- R(x), ¬S(x,y), T(y).
	BaseRNegST
	// BaseRSNegT is qRS¬T() :- R(x), S(x,y), ¬T(y) (covers the symmetric
	// ¬R(x), S(x,y), T(y) by swapping the roles of x and y).
	BaseRSNegT
)

func (b BaseHardQuery) String() string {
	switch b {
	case BaseRST:
		return "qRST"
	case BaseNegRSNegT:
		return "q¬RS¬T"
	case BaseRNegST:
		return "qR¬ST"
	case BaseRSNegT:
		return "qRS¬T"
	}
	return "?"
}

// ReductionTriplet returns a non-hierarchical triplet suitable for the
// hardness reduction of Theorem 3.1, i.e. one avoiding the pattern where
// αxy and at least one of αx, αy are negated (Lemma B.4 proves such a
// triplet always exists in a safe non-hierarchical CQ¬), together with the
// base query it reduces from. ok is false iff q is hierarchical.
func (q *CQ) ReductionTriplet() (t Triplet, base BaseHardQuery, ok bool) {
	var candidates []Triplet
	for _, tr := range q.NonHierarchicalTriplets() {
		negXY := q.Atoms[tr.AtomXY].Negated
		negX := q.Atoms[tr.AtomX].Negated
		negY := q.Atoms[tr.AtomY].Negated
		if negXY && (negX || negY) {
			continue // forbidden pattern; Lemma B.4 guarantees an alternative
		}
		candidates = append(candidates, tr)
	}
	if len(candidates) == 0 {
		return Triplet{}, 0, false
	}
	// Prefer all-positive (the simplest reduction) for determinism.
	best := candidates[0]
	for _, tr := range candidates {
		if !q.Atoms[tr.AtomX].Negated && !q.Atoms[tr.AtomXY].Negated && !q.Atoms[tr.AtomY].Negated {
			best = tr
			break
		}
	}
	negXY := q.Atoms[best.AtomXY].Negated
	negX := q.Atoms[best.AtomX].Negated
	negY := q.Atoms[best.AtomY].Negated
	switch {
	case !negXY && !negX && !negY:
		base = BaseRST
	case !negXY && negX && negY:
		base = BaseNegRSNegT
	case negXY && !negX && !negY:
		base = BaseRNegST
	default: // αxy positive, exactly one endpoint negated
		base = BaseRSNegT
	}
	return best, base, true
}

// GaifmanGraph returns the Gaifman graph of q: vertices are variables, with
// an edge between two variables iff they co-occur in some atom (of either
// polarity). The result maps each variable to its sorted neighbor list.
func (q *CQ) GaifmanGraph() map[string][]string {
	adj := make(map[string]map[string]bool)
	for _, x := range q.Vars() {
		adj[x] = make(map[string]bool)
	}
	for _, a := range q.Atoms {
		vs := a.Vars()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				adj[vs[i]][vs[j]] = true
				adj[vs[j]][vs[i]] = true
			}
		}
	}
	out := make(map[string][]string, len(adj))
	for x, ns := range adj {
		var lst []string
		for y := range ns {
			lst = append(lst, y)
		}
		sort.Strings(lst)
		out[x] = lst
	}
	return out
}

// NonHierarchicalPath describes a witness for the §4 hardness condition: two
// atoms αx, αy over non-exogenous relations, variables x ∈ αx \ αy and
// y ∈ αy \ αx, and a path from x to y in the Gaifman graph avoiding all
// other variables of αx and αy.
type NonHierarchicalPath struct {
	AtomX, AtomY int
	X, Y         string
	Path         []string // x = Path[0], ..., y = Path[len-1]
}

// FindNonHierarchicalPath searches for a non-hierarchical path with respect
// to the set exo of exogenous relation symbols. It returns the first witness
// in deterministic order, or ok=false if none exists (the tractable side of
// Theorem 4.3).
func (q *CQ) FindNonHierarchicalPath(exo map[string]bool) (NonHierarchicalPath, bool) {
	g := q.GaifmanGraph()
	for ix, ax := range q.Atoms {
		if exo[ax.Rel] {
			continue
		}
		for iy, ay := range q.Atoms {
			if ix == iy || exo[ay.Rel] {
				continue
			}
			for _, x := range ax.Vars() {
				if ay.HasVar(x) {
					continue
				}
				for _, y := range ay.Vars() {
					if ax.HasVar(y) {
						continue
					}
					removed := make(map[string]bool)
					for _, v := range ax.Vars() {
						if v != x && v != y {
							removed[v] = true
						}
					}
					for _, v := range ay.Vars() {
						if v != x && v != y {
							removed[v] = true
						}
					}
					if path := bfsPath(g, x, y, removed); path != nil {
						return NonHierarchicalPath{AtomX: ix, AtomY: iy, X: x, Y: y, Path: path}, true
					}
				}
			}
		}
	}
	return NonHierarchicalPath{}, false
}

// HasNonHierarchicalPath reports whether q has a non-hierarchical path with
// respect to the exogenous relations exo.
func (q *CQ) HasNonHierarchicalPath(exo map[string]bool) bool {
	_, ok := q.FindNonHierarchicalPath(exo)
	return ok
}

// bfsPath finds a shortest path from x to y in g avoiding removed vertices;
// x and y themselves are never considered removed.
func bfsPath(g map[string][]string, x, y string, removed map[string]bool) []string {
	if x == y {
		return []string{x}
	}
	prev := map[string]string{x: x}
	queue := []string{x}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g[cur] {
			if nb != y && removed[nb] {
				continue
			}
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == y {
				var path []string
				for v := y; ; v = prev[v] {
					path = append([]string{v}, path...)
					if v == x {
						return path
					}
				}
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// IsPolarityConsistent reports whether every relation symbol of q occurs
// only in positive atoms or only in negative atoms (§5.2).
func (q *CQ) IsPolarityConsistent() bool {
	return len(q.PolarityInconsistentRels()) == 0
}

// PolarityInconsistentRels returns the relation symbols occurring both
// positively and negatively, sorted.
func (q *CQ) PolarityInconsistentRels() []string {
	pos := make(map[string]bool)
	neg := make(map[string]bool)
	for _, a := range q.Atoms {
		if a.Negated {
			neg[a.Rel] = true
		} else {
			pos[a.Rel] = true
		}
	}
	var out []string
	for r := range pos {
		if neg[r] {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// NegativeRels returns the relation symbols that occur in negated atoms,
// sorted (the paper's Neg_q relations).
func (q *CQ) NegativeRels() []string {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if a.Negated {
			seen[a.Rel] = true
		}
	}
	var out []string
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// IsPolarityConsistent reports whether every relation symbol of the whole
// union occurs only positively or only negatively across all disjuncts.
func (u *UCQ) IsPolarityConsistent() bool {
	pos := make(map[string]bool)
	neg := make(map[string]bool)
	for _, q := range u.Disjuncts {
		for _, a := range q.Atoms {
			if a.Negated {
				neg[a.Rel] = true
			} else {
				pos[a.Rel] = true
			}
		}
	}
	for r := range pos {
		if neg[r] {
			return false
		}
	}
	return true
}

// NegativeRels returns the relation symbols negated in any disjunct, sorted.
func (u *UCQ) NegativeRels() []string {
	seen := make(map[string]bool)
	for _, q := range u.Disjuncts {
		for _, r := range q.NegativeRels() {
			seen[r] = true
		}
	}
	var out []string
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// ExogenousVars returns the variables of q occurring only in atoms over
// exogenous relations (the paper's Vars_x(q)).
func (q *CQ) ExogenousVars(exo map[string]bool) []string {
	var out []string
	for _, x := range q.Vars() {
		onlyExo := true
		for _, a := range q.Atoms {
			if a.HasVar(x) && !exo[a.Rel] {
				onlyExo = false
				break
			}
		}
		if onlyExo {
			out = append(out, x)
		}
	}
	return out
}

// ExoAtomComponents returns the connected components of the exogenous atom
// graph g_x(q): vertices are atoms over exogenous relations; two are
// adjacent iff they share an exogenous variable. Each component is a sorted
// list of atom indices; components are ordered by smallest index.
func (q *CQ) ExoAtomComponents(exo map[string]bool) [][]int {
	exoVars := make(map[string]bool)
	for _, x := range q.ExogenousVars(exo) {
		exoVars[x] = true
	}
	var nodes []int
	for i, a := range q.Atoms {
		if exo[a.Rel] {
			nodes = append(nodes, i)
		}
	}
	parent := make(map[int]int, len(nodes))
	for _, i := range nodes {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for ii := 0; ii < len(nodes); ii++ {
		for jj := ii + 1; jj < len(nodes); jj++ {
			i, j := nodes[ii], nodes[jj]
			for _, x := range q.Atoms[i].Vars() {
				if exoVars[x] && q.Atoms[j].HasVar(x) {
					union(i, j)
					break
				}
			}
		}
	}
	groups := make(map[int][]int)
	for _, i := range nodes {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var roots []int
	byRoot := make(map[int][]int, len(groups))
	for r := range groups {
		sort.Ints(groups[r])
		byRoot[groups[r][0]] = groups[r]
		roots = append(roots, groups[r][0])
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, first := range roots {
		out = append(out, byRoot[first])
	}
	return out
}

// RootVariables returns the variables occurring in every atom of q, sorted.
// A connected hierarchical query with at least one variable has at least one
// root variable; the CntSat recursion branches on one.
func (q *CQ) RootVariables() []string {
	var out []string
	for _, x := range q.Vars() {
		inAll := true
		for _, a := range q.Atoms {
			if !a.HasVar(x) {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// AtomComponents partitions atom indices into connected components by
// shared variables (ground atoms are singleton components). Components are
// ordered by smallest atom index.
func (q *CQ) AtomComponents() [][]int {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			shared := false
			for _, x := range q.Atoms[i].Vars() {
				if q.Atoms[j].HasVar(x) {
					shared = true
					break
				}
			}
			if shared {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		groups[find(i)] = append(groups[find(i)], i)
	}
	var roots []int
	byRoot := make(map[int][]int, len(groups))
	for r := range groups {
		sort.Ints(groups[r])
		byRoot[groups[r][0]] = groups[r]
		roots = append(roots, groups[r][0])
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, first := range roots {
		out = append(out, byRoot[first])
	}
	return out
}

// SubQuery returns a new CQ consisting of the atoms at the given indices
// (Boolean; head dropped).
func (q *CQ) SubQuery(indices []int) *CQ {
	out := &CQ{Label: q.Label}
	for _, i := range indices {
		out.Atoms = append(out.Atoms, q.Atoms[i].clone())
	}
	return out
}

// IsPositivelyConnected reports whether every pair of variables of q is
// connected in the Gaifman graph restricted to positive atoms (the
// hypothesis of Theorem 5.1).
func (q *CQ) IsPositivelyConnected() bool {
	pos := q.SubQuery(q.Positive())
	vars := q.Vars()
	if len(vars) <= 1 {
		return true
	}
	comps := pos.AtomComponents()
	if len(pos.Atoms) == 0 {
		return false
	}
	// All variables of q must appear in a single positive component.
	varComp := make(map[string]int)
	for ci, comp := range comps {
		for _, ai := range comp {
			for _, x := range pos.Atoms[ai].Vars() {
				varComp[x] = ci
			}
		}
	}
	first, seen := -1, false
	for _, x := range vars {
		c, ok := varComp[x]
		if !ok {
			return false // variable not in any positive atom (unsafe anyway)
		}
		if !seen {
			first, seen = c, true
		} else if c != first {
			return false
		}
	}
	return true
}
