package query

import (
	"strings"
	"testing"

	"repro/internal/db"
)

// Paper queries (Example 2.2).
const (
	srcQ1 = "q1() :- Stud(x), !TA(x), Reg(x, y)"
	srcQ2 = "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)"
	srcQ3 = "q3() :- Adv(x, y), Adv(x, z), !TA(y), !TA(z), Reg(y, IC), Reg(z, DB)"
	srcQ4 = "q4() :- Adv(x, y), Adv(x, z), TA(y), !TA(z), Reg(z, w), !Reg(y, w)"
)

func TestParsePaperQueries(t *testing.T) {
	for _, src := range []string{srcQ1, srcQ2, srcQ3, srcQ4} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		// Round trip.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round trip of %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Fatalf("round trip mismatch: %q vs %q", q.String(), q2.String())
		}
	}
}

func TestParseNegationSyntaxes(t *testing.T) {
	for _, src := range []string{
		"q() :- R(x), !S(x)",
		"q() :- R(x), ¬S(x)",
		"q() :- R(x), not S(x)",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if len(q.Negative()) != 1 || q.Atoms[1].Rel != "S" || !q.Atoms[1].Negated {
			t.Fatalf("Parse(%q) negation lost: %v", src, q)
		}
	}
}

func TestParseConstantsAndVariables(t *testing.T) {
	q := MustParse("q() :- Reg(x, IC), Course(y, 'CS dept'), R(0, z)")
	if q.Atoms[0].Args[1].IsVar() || q.Atoms[0].Args[1].Const != "IC" {
		t.Fatal("uppercase token should be constant")
	}
	if q.Atoms[1].Args[1].Const != "CS dept" {
		t.Fatal("quoted constant mis-parsed")
	}
	if q.Atoms[2].Args[0].Const != "0" {
		t.Fatal("digit token should be constant")
	}
	if !q.Atoms[2].Args[1].IsVar() {
		t.Fatal("lowercase token should be variable")
	}
}

func TestParseHead(t *testing.T) {
	q := MustParse("ans(x, y) :- R(x, y), S(y)")
	if q.Label != "ans" || len(q.Head) != 2 || q.Head[0] != "x" || q.Head[1] != "y" {
		t.Fatalf("head mis-parsed: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                           // no rule
		"q() R(x)",                   // missing :-
		"q() :- ",                    // empty body
		"q() :- R(x,)",               // empty term
		"q() :- R(x",                 // unbalanced
		"q(X) :- R(x)",               // head not a variable
		"q(z) :- R(x)",               // head var not in body
		"q() :- !R(x)",               // unsafe: x only in negated atom
		"q() :- R(x), !S(x, y)",      // unsafe: y only negated
		"q() :- R(x), R(x, y)",       // arity clash
		"q() :- R('unterminated, x)", // quote
		"q() :- (x)",                 // empty relation
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestValidateSafeNegationVacuous(t *testing.T) {
	// Ground negated atoms are safe even with no positive atoms.
	q := NewCQ("q", NewNegAtom("R", C("0")))
	if err := q.Validate(); err != nil {
		t.Fatalf("ground negation should be safe: %v", err)
	}
}

func TestSelfJoinDetection(t *testing.T) {
	if MustParse(srcQ1).HasSelfJoin() || MustParse(srcQ2).HasSelfJoin() {
		t.Fatal("q1/q2 are self-join-free")
	}
	if !MustParse(srcQ3).HasSelfJoin() || !MustParse(srcQ4).HasSelfJoin() {
		t.Fatal("q3/q4 have self-joins")
	}
	// Mixed polarity counts as self-join.
	if !MustParse("q() :- R(x), S(x, y), !R(y)").HasSelfJoin() {
		t.Fatal("R(x)...!R(y) is a self-join")
	}
}

func TestHierarchyPaperExamples(t *testing.T) {
	if !MustParse(srcQ1).IsHierarchical() {
		t.Error("q1 is hierarchical (Example 2.2)")
	}
	for _, src := range []string{srcQ2, srcQ3, srcQ4} {
		if MustParse(src).IsHierarchical() {
			t.Errorf("%s should be non-hierarchical", src)
		}
	}
	// The four basic hard queries of §3.
	for _, src := range []string{
		"qRST() :- R(x), S(x, y), T(y)",
		"q() :- !R(x), S(x, y), !T(y)",
		"q() :- R(x), !S(x, y), T(y)",
		"q() :- R(x), S(x, y), !T(y)",
	} {
		if MustParse(src).IsHierarchical() {
			t.Errorf("%s should be non-hierarchical", src)
		}
	}
	// Constants do not affect hierarchy.
	if !MustParse("q() :- R(x, CS), S(x)").IsHierarchical() {
		t.Error("single-variable query is hierarchical")
	}
}

func TestNonHierarchicalTriplets(t *testing.T) {
	q := MustParse("qRST() :- R(x), S(x, y), T(y)")
	ts := q.NonHierarchicalTriplets()
	if len(ts) == 0 {
		t.Fatal("qRST has a non-hierarchical triplet")
	}
	tr := ts[0]
	if q.Atoms[tr.AtomX].Rel == q.Atoms[tr.AtomY].Rel {
		t.Fatal("triplet endpoints must differ")
	}
	if tr.X == tr.Y {
		t.Fatal("triplet variables must differ")
	}
	if len(MustParse(srcQ1).NonHierarchicalTriplets()) != 0 {
		t.Fatal("hierarchical query has no triplets")
	}
}

func TestReductionTripletPolarities(t *testing.T) {
	cases := []struct {
		src  string
		base BaseHardQuery
	}{
		{"q() :- R(x), S(x, y), T(y)", BaseRST},
		{"q() :- !R(x), S(x, y), !T(y)", BaseNegRSNegT},
		{"q() :- R(x), !S(x, y), T(y)", BaseRNegST},
		{"q() :- R(x), S(x, y), !T(y)", BaseRSNegT},
		{"q() :- !R(x), S(x, y), T(y)", BaseRSNegT},
	}
	for _, c := range cases {
		q := MustParse(c.src)
		tr, base, ok := q.ReductionTriplet()
		if !ok {
			t.Errorf("%s: no reduction triplet found", c.src)
			continue
		}
		if base != c.base {
			t.Errorf("%s: base %v, want %v", c.src, base, c.base)
		}
		if q.Atoms[tr.AtomXY].Negated && (q.Atoms[tr.AtomX].Negated || q.Atoms[tr.AtomY].Negated) {
			t.Errorf("%s: forbidden polarity pattern chosen", c.src)
		}
	}
	// q2 is safe and non-hierarchical: Lemma B.4 guarantees a usable triplet.
	if _, _, ok := MustParse(srcQ2).ReductionTriplet(); !ok {
		t.Error("q2 must have a reduction triplet")
	}
	if _, _, ok := MustParse(srcQ1).ReductionTriplet(); ok {
		t.Error("hierarchical q1 must not have a reduction triplet")
	}
}

// Example 4.2 queries.
const (
	srcEx42Q      = "q() :- !R(x), Q(x, v), S(x, z), U(z, w), !P(w, y), T(y, v)"
	srcEx42QPrime = "qp() :- U(t, r), !T(y), Q(y, w), !V(t), R(x, y), !S(x, z), O(z), P(u, y, w)"
)

func exoSet(rels ...string) map[string]bool {
	out := make(map[string]bool)
	for _, r := range rels {
		out[r] = true
	}
	return out
}

func TestNonHierarchicalPathExample42(t *testing.T) {
	q := MustParse(srcEx42Q)
	// Exogenous relations: Q, S, U, P (the example's underlined atoms).
	w, ok := q.FindNonHierarchicalPath(exoSet("Q", "S", "U", "P"))
	if !ok {
		t.Fatal("Example 4.2: q has a non-hierarchical path")
	}
	if len(w.Path) < 2 || w.Path[0] != w.X || w.Path[len(w.Path)-1] != w.Y {
		t.Fatalf("malformed path witness %+v", w)
	}

	qp := MustParse(srcEx42QPrime)
	if qp.HasNonHierarchicalPath(exoSet("R", "S", "O", "P")) {
		t.Fatal("Example 4.2: q' has no non-hierarchical path")
	}
}

func TestNonHierarchicalPathSection41(t *testing.T) {
	// §4.1: q is tractable, q' is hard, both with X = {S, P}.
	q := MustParse("q() :- !R(x, w), S(z, x), !P(z, w), T(y, w)")
	if q.HasNonHierarchicalPath(exoSet("S", "P")) {
		t.Fatal("§4.1 q should have no non-hierarchical path")
	}
	qp := MustParse("qp() :- !R(x, w), S(z, x), !P(z, y), T(y, w)")
	if !qp.HasNonHierarchicalPath(exoSet("S", "P")) {
		t.Fatal("§4.1 q' should have a non-hierarchical path")
	}
	// With no exogenous relations, both are hard (Theorem 3.1 view): a
	// non-hierarchical triplet yields a direct path.
	if !q.HasNonHierarchicalPath(nil) || !qp.HasNonHierarchicalPath(nil) {
		t.Fatal("with X = ∅, non-hierarchical queries have paths")
	}
	// A hierarchical query never has a non-hierarchical path.
	if MustParse(srcQ1).HasNonHierarchicalPath(nil) {
		t.Fatal("hierarchical q1 has no non-hierarchical path")
	}
}

func TestNonHierarchicalPathQRNegST(t *testing.T) {
	// qR¬ST with only S exogenous remains hard (§4.1 discussion).
	q := MustParse("q() :- R(x), !S(x, y), T(y)")
	if !q.HasNonHierarchicalPath(exoSet("S")) {
		t.Fatal("qR¬ST with X={S} should have a non-hierarchical path")
	}
	// With R and T also exogenous, no valid endpoint pair remains.
	if q.HasNonHierarchicalPath(exoSet("R", "S", "T")) {
		t.Fatal("all-exogenous query has no non-hierarchical path")
	}
}

func TestGaifmanGraph(t *testing.T) {
	q := MustParse(srcEx42Q)
	g := q.GaifmanGraph()
	// Figure 2a: x adjacent to v (Q), z (S), and w? x occurs with w nowhere.
	adj := func(a, b string) bool {
		for _, n := range g[a] {
			if n == b {
				return true
			}
		}
		return false
	}
	if !adj("x", "v") || !adj("x", "z") || adj("x", "w") || adj("x", "y") {
		t.Fatalf("Gaifman adjacency of x wrong: %v", g["x"])
	}
	if !adj("w", "y") || !adj("w", "z") || !adj("y", "v") {
		t.Fatalf("Gaifman adjacency wrong: %v", g)
	}
}

func TestPolarityConsistencyExample54(t *testing.T) {
	for _, src := range []string{srcQ1, srcQ2, srcQ3} {
		if !MustParse(src).IsPolarityConsistent() {
			t.Errorf("%s is polarity consistent (Example 5.4)", src)
		}
	}
	q4 := MustParse(srcQ4)
	if q4.IsPolarityConsistent() {
		t.Error("q4 is not polarity consistent")
	}
	incons := q4.PolarityInconsistentRels()
	if len(incons) != 2 || incons[0] != "Reg" || incons[1] != "TA" {
		t.Errorf("q4 inconsistent relations = %v, want [Reg TA]", incons)
	}
}

func TestUCQPolarityConsistency(t *testing.T) {
	// The paper's qSAT: each disjunct is polarity consistent, the union is not.
	u := MustParseUCQ(`
q1() :- Cl(x1, x2, x3, v1, v2, v3), T(x1, v1), T(x2, v2), T(x3, v3)
q2() :- V(x), !T(x, 1), !T(x, 0)
q3() :- T(x, 1), T(x, 0)
q4() :- R(0)`)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 4 {
		t.Fatalf("got %d disjuncts", len(u.Disjuncts))
	}
	for _, q := range u.Disjuncts {
		if !q.IsPolarityConsistent() {
			t.Errorf("disjunct %s should be polarity consistent", q)
		}
	}
	if u.IsPolarityConsistent() {
		t.Error("qSAT as a whole is not polarity consistent")
	}
	if rels := u.NegativeRels(); len(rels) != 1 || rels[0] != "T" {
		t.Errorf("NegativeRels = %v, want [T]", rels)
	}
}

func TestExoAtomComponentsExample45(t *testing.T) {
	qp := MustParse(srcEx42QPrime)
	exo := exoSet("R", "S", "O", "P")
	// Exogenous variables of q': x, z, u.
	ev := qp.ExogenousVars(exo)
	if len(ev) != 3 {
		t.Fatalf("ExogenousVars = %v, want x,z,u", ev)
	}
	got := make(map[string]bool)
	for _, x := range ev {
		got[x] = true
	}
	if !got["x"] || !got["z"] || !got["u"] {
		t.Fatalf("ExogenousVars = %v, want x,z,u", ev)
	}
	comps := qp.ExoAtomComponents(exo)
	if len(comps) != 2 {
		t.Fatalf("components = %v, want 2 (Example 4.5)", comps)
	}
	// First component: R(x,y), !S(x,z), O(z) — atom indices 4, 5, 6.
	if len(comps[0]) != 3 || comps[0][0] != 4 || comps[0][1] != 5 || comps[0][2] != 6 {
		t.Fatalf("component 1 = %v, want [4 5 6]", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 7 {
		t.Fatalf("component 2 = %v, want [7] (P alone)", comps[1])
	}
}

func TestRootVariables(t *testing.T) {
	if rv := MustParse(srcQ1).RootVariables(); len(rv) != 1 || rv[0] != "x" {
		t.Fatalf("q1 root variables = %v, want [x]", rv)
	}
	if rv := MustParse("q() :- R(x), S(x, y), T(y)").RootVariables(); len(rv) != 0 {
		t.Fatalf("qRST has no root variable, got %v", rv)
	}
}

func TestAtomComponents(t *testing.T) {
	q := MustParse("q() :- R(x), S(x, y), T(z), U(0)")
	comps := q.AtomComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3", comps)
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 1 {
		t.Fatalf("first component = %v", comps[0])
	}
}

func TestSubstituteVar(t *testing.T) {
	q := MustParse("q(x, y) :- R(x, y), !S(x)")
	s := q.SubstituteVar("x", "A")
	if s.String() != "q(y) :- R(A, y), !S(A)" {
		t.Fatalf("substituted = %q", s.String())
	}
	// Original untouched.
	if q.Atoms[0].Args[0].Var != "x" {
		t.Fatal("SubstituteVar mutated the receiver")
	}
}

func TestIsPositivelyConnected(t *testing.T) {
	if !MustParse("q() :- R(x), S(x, y), !R(y)").IsPositivelyConnected() {
		t.Error("R(x),S(x,y),¬R(y) is positively connected")
	}
	if MustParse("q() :- R(x), T(y), !S(x, y)").IsPositivelyConnected() {
		t.Error("R(x),T(y),¬S(x,y) is not positively connected")
	}
	if !MustParse("q() :- R(x)").IsPositivelyConnected() {
		t.Error("single-variable query is positively connected")
	}
}

// --- evaluation ---

func runningExample(t *testing.T) *db.Database {
	t.Helper()
	d, err := db.Parse(`
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
exo  Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
exo  Course(OS, EE)
exo  Course(IC, EE)
exo  Course(DB, CS)
exo  Course(AI, CS)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
exo  Adv(Michael, Adam)
exo  Adv(Michael, Ben)
exo  Adv(Naomi, Caroline)
exo  Adv(Michael, David)
`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func exoOnly(d *db.Database) *db.Database {
	return d.Restrict(func(_ db.Fact, endo bool) bool { return !endo })
}

func TestEvalRunningExample(t *testing.T) {
	d := runningExample(t)
	q1 := MustParse(srcQ1)

	if !q1.Eval(d) {
		t.Fatal("full database satisfies q1 (Caroline is not a TA and registered)")
	}
	dx := exoOnly(d)
	if q1.Eval(dx) {
		t.Fatal("Dx does not satisfy q1 (no Reg facts)")
	}
	// Condition (1) of Example 2.3: f4r alone suffices.
	e1 := dx.Clone()
	e1.MustAddEndo(db.F("Reg", "Caroline", "DB"))
	if !q1.Eval(e1) {
		t.Fatal("Dx ∪ {f4r} satisfies q1")
	}
	// Condition (2): f1r suffices only without f1t.
	e2 := dx.Clone()
	e2.MustAddEndo(db.F("Reg", "Adam", "OS"))
	if !q1.Eval(e2) {
		t.Fatal("Dx ∪ {f1r} satisfies q1")
	}
	e2.MustAddEndo(db.F("TA", "Adam"))
	if q1.Eval(e2) {
		t.Fatal("Dx ∪ {f1r, f1t} violates q1")
	}
	// q2 on full database: Ben is a TA, Caroline registered to DB (CS)...
	q2 := MustParse(srcQ2)
	// Caroline: not TA, Reg(Caroline, IC), Course(IC, EE) — not CS: true.
	if !q2.Eval(d) {
		t.Fatal("full database satisfies q2 via Caroline/IC")
	}
}

func TestEvalSelfJoinAndConstants(t *testing.T) {
	q := MustParse("q() :- R(x, y), !R(y, x)")
	d := db.New()
	d.MustAddEndo(db.F("R", "1", "2"))
	if !q.Eval(d) {
		t.Fatal("R(1,2) without R(2,1) satisfies q")
	}
	d.MustAddEndo(db.F("R", "2", "1"))
	if q.Eval(d) {
		t.Fatal("symmetric pair violates q (Example 5.3)")
	}
	// Reflexive fact R(3,3) maps x=y=3 and ¬R(3,3) fails: still unsatisfied.
	d2 := db.New()
	d2.MustAddEndo(db.F("R", "3", "3"))
	if q.Eval(d2) {
		t.Fatal("reflexive fact alone cannot satisfy q")
	}
}

func TestEvalRepeatedVariables(t *testing.T) {
	q := MustParse("q() :- R(x, x)")
	d := db.New()
	d.MustAddEndo(db.F("R", "a", "b"))
	if q.Eval(d) {
		t.Fatal("R(a,b) should not match R(x,x)")
	}
	d.MustAddEndo(db.F("R", "c", "c"))
	if !q.Eval(d) {
		t.Fatal("R(c,c) should match R(x,x)")
	}
}

func TestEvalGroundNegative(t *testing.T) {
	q := NewCQ("q", NewAtom("R", V("x")), NewNegAtom("S", C("0")))
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	d := db.New()
	d.MustAddEndo(db.F("R", "a"))
	if !q.Eval(d) {
		t.Fatal("S(0) absent: query should hold")
	}
	d.MustAddExo(db.F("S", "0"))
	if q.Eval(d) {
		t.Fatal("S(0) present: query should fail")
	}
}

func TestEvalUCQ(t *testing.T) {
	u := MustParseUCQ("q() :- R(x) | q() :- S(x)")
	d := db.New()
	d.MustAddEndo(db.F("S", "a"))
	if !u.Eval(d) {
		t.Fatal("second disjunct satisfied")
	}
	d2 := db.New()
	d2.MustAddEndo(db.F("T", "a"))
	if u.Eval(d2) {
		t.Fatal("no disjunct satisfied")
	}
}

func TestForEachHomomorphismEnumerates(t *testing.T) {
	q := MustParse("q() :- R(x), S(x, y)")
	d := db.New()
	d.MustAddEndo(db.F("R", "a"))
	d.MustAddEndo(db.F("R", "b"))
	d.MustAddEndo(db.F("S", "a", "1"))
	d.MustAddEndo(db.F("S", "a", "2"))
	d.MustAddEndo(db.F("S", "b", "1"))
	var got []string
	q.ForEachHomomorphism(d, func(b Binding) bool {
		got = append(got, string(b["x"])+string(b["y"]))
		return true
	})
	if len(got) != 3 {
		t.Fatalf("got %d homomorphisms (%v), want 3", len(got), got)
	}
	// Early stop.
	n := 0
	q.ForEachHomomorphism(d, func(Binding) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop failed, got %d calls", n)
	}
}

func TestAnswersProjection(t *testing.T) {
	q := MustParse("ans(x) :- R(x, y)")
	d := db.New()
	d.MustAddEndo(db.F("R", "a", "1"))
	d.MustAddEndo(db.F("R", "a", "2"))
	d.MustAddEndo(db.F("R", "b", "1"))
	rows := q.Answers(d)
	if len(rows) != 2 {
		t.Fatalf("answers = %v, want a and b", rows)
	}
	if rows[0][0] != "a" || rows[1][0] != "b" {
		t.Fatalf("answers = %v", rows)
	}
}

func TestMatchesAtom(t *testing.T) {
	a := NewAtom("R", V("x"), V("x"), C("c"))
	if !MatchesAtom(a, db.F("R", "1", "1", "c")) {
		t.Fatal("matching fact rejected")
	}
	if MatchesAtom(a, db.F("R", "1", "2", "c")) {
		t.Fatal("repeated variable mismatch accepted")
	}
	if MatchesAtom(a, db.F("R", "1", "1", "d")) {
		t.Fatal("constant mismatch accepted")
	}
	if MatchesAtom(a, db.F("S", "1", "1", "c")) {
		t.Fatal("relation mismatch accepted")
	}
	if MatchesAtom(a, db.F("R", "1", "1")) {
		t.Fatal("arity mismatch accepted")
	}
}

func TestInstantiate(t *testing.T) {
	a := NewNegAtom("R", V("x"), C("k"))
	f := Instantiate(a, Binding{"x": "7"})
	if !f.Equal(db.F("R", "7", "k")) {
		t.Fatalf("Instantiate = %v", f)
	}
}

func TestTermString(t *testing.T) {
	cases := map[string]string{
		"x":  V("x").String(),
		"CS": C("CS").String(),
		"0":  C("0").String(),
	}
	for want, got := range cases {
		if got != want {
			t.Errorf("term rendered %q, want %q", got, want)
		}
	}
	if s := C("lower").String(); s != "'lower'" {
		t.Errorf("lowercase constant rendered %q, want quoted", s)
	}
	if s := C("has space").String(); s != "'has space'" {
		t.Errorf("constant with space rendered %q, want quoted", s)
	}
	if s := C("").String(); s != "''" {
		t.Errorf("empty constant rendered %q", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse("q(x) :- R(x, y)")
	c := q.Clone()
	c.Atoms[0].Args[0] = C("Z")
	c.Head[0] = "w"
	if !q.Atoms[0].Args[0].IsVar() || q.Head[0] != "x" {
		t.Fatal("Clone shares storage")
	}
}

func TestUCQValidate(t *testing.T) {
	if err := (&UCQ{}).Validate(); err == nil {
		t.Fatal("empty UCQ must not validate")
	}
	u := NewUCQ("u", NewCQ("q", NewNegAtom("R", V("x"))))
	if err := u.Validate(); err == nil {
		t.Fatal("UCQ with unsafe disjunct must not validate")
	}
}

func TestStringRendering(t *testing.T) {
	q := MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	want := "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)"
	if q.String() != want {
		t.Fatalf("String() = %q, want %q", q.String(), want)
	}
	u := MustParseUCQ("a() :- R(x) | b() :- S(y)")
	if !strings.Contains(u.String(), " | ") {
		t.Fatalf("UCQ String() = %q", u.String())
	}
}
