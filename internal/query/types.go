// Package query implements the paper's query language: Boolean conjunctive
// queries with safe negation (CQ¬) and unions thereof (UCQ¬), together with
// the structural analyses the paper's dichotomies are built on (hierarchy,
// non-hierarchical triplets, the Gaifman graph, non-hierarchical paths with
// respect to exogenous relations, polarity consistency, and the exogenous
// atom graph) and a homomorphism-based evaluator.
package query

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/db"
)

// Term is a variable or a constant appearing in an atom. Exactly one of Var
// and Const is meaningful: a Term is a variable iff Var != "".
type Term struct {
	Var   string
	Const db.Const
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(c string) Term { return Term{Const: db.Const(c)} }

// CT returns a constant term from a db.Const.
func CT(c db.Const) Term { return Term{Const: c} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term in parser-compatible syntax. Variables must start
// with a lowercase letter to round-trip; constants that could be mistaken
// for variables are quoted.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	s := string(t.Const)
	if s == "" {
		return "''"
	}
	r := rune(s[0])
	if unicode.IsUpper(r) || unicode.IsDigit(r) {
		for _, c := range s {
			if !(unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.' || c == '<' || c == '>' || c == '$') {
				return "'" + s + "'"
			}
		}
		return s
	}
	return "'" + s + "'"
}

// Atom is a (possibly negated) relational atom R(t1, ..., tk).
type Atom struct {
	Rel     string
	Args    []Term
	Negated bool
}

// NewAtom builds a positive atom.
func NewAtom(rel string, args ...Term) Atom {
	return Atom{Rel: rel, Args: args}
}

// NewNegAtom builds a negated atom.
func NewNegAtom(rel string, args ...Term) Atom {
	return Atom{Rel: rel, Args: args, Negated: true}
}

// Vars returns the distinct variables of the atom in first-occurrence order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// HasVar reports whether variable x occurs in the atom.
func (a Atom) HasVar(x string) bool {
	for _, t := range a.Args {
		if t.IsVar() && t.Var == x {
			return true
		}
	}
	return false
}

// IsGround reports whether the atom has no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// GroundFact converts a ground atom into a fact; it panics on variables.
func (a Atom) GroundFact() db.Fact {
	args := make([]db.Const, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			panic("query: GroundFact on non-ground atom " + a.String())
		}
		args[i] = t.Const
	}
	return db.Fact{Rel: a.Rel, Args: args}
}

// String renders the atom; negation is written with a leading '!'.
func (a Atom) String() string {
	var b strings.Builder
	if a.Negated {
		b.WriteByte('!')
	}
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// clone returns a deep copy of the atom.
func (a Atom) clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Rel: a.Rel, Args: args, Negated: a.Negated}
}

// CQ is a conjunctive query with safe negation (a CQ¬). A Boolean query has
// an empty Head; a non-empty Head lists answer variables (used for the
// aggregate extension and for the ExoShap component joins).
type CQ struct {
	Label string   // optional display name, e.g. "q1"
	Head  []string // answer variables; empty for Boolean queries
	Atoms []Atom
}

// NewCQ builds a Boolean CQ¬ from atoms.
func NewCQ(label string, atoms ...Atom) *CQ {
	return &CQ{Label: label, Atoms: atoms}
}

// Clone returns a deep copy of the query.
func (q *CQ) Clone() *CQ {
	out := &CQ{Label: q.Label, Head: append([]string(nil), q.Head...)}
	out.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		out.Atoms[i] = a.clone()
	}
	return out
}

// Positive returns the indices of the positive atoms.
func (q *CQ) Positive() []int {
	var out []int
	for i, a := range q.Atoms {
		if !a.Negated {
			out = append(out, i)
		}
	}
	return out
}

// Negative returns the indices of the negated atoms.
func (q *CQ) Negative() []int {
	var out []int
	for i, a := range q.Atoms {
		if a.Negated {
			out = append(out, i)
		}
	}
	return out
}

// Vars returns the distinct variables of the query in first-occurrence order.
func (q *CQ) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, x := range a.Vars() {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}

// Relations returns the distinct relation symbols in first-occurrence order.
func (q *CQ) Relations() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	return out
}

// Validate checks structural well-formedness: at least one atom, consistent
// arity per relation symbol, safety (every variable of a negated atom occurs
// in a positive atom), and head variables occurring in positive atoms.
func (q *CQ) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("query: %s has no atoms", q.Name())
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		if a.Rel == "" {
			return fmt.Errorf("query: %s has an atom with empty relation symbol", q.Name())
		}
		if k, ok := arity[a.Rel]; ok && k != len(a.Args) {
			return fmt.Errorf("query: %s: arity clash for %s (%d vs %d)", q.Name(), a.Rel, k, len(a.Args))
		}
		arity[a.Rel] = len(a.Args)
	}
	posVars := make(map[string]bool)
	for _, i := range q.Positive() {
		for _, x := range q.Atoms[i].Vars() {
			posVars[x] = true
		}
	}
	for _, i := range q.Negative() {
		for _, x := range q.Atoms[i].Vars() {
			if !posVars[x] {
				return fmt.Errorf("query: %s has unsafe negation: variable %s occurs only in negated atoms", q.Name(), x)
			}
		}
	}
	for _, x := range q.Head {
		if !posVars[x] {
			return fmt.Errorf("query: %s: head variable %s does not occur in a positive atom", q.Name(), x)
		}
	}
	return nil
}

// Name returns the label, or a placeholder if unset.
func (q *CQ) Name() string {
	if q.Label != "" {
		return q.Label
	}
	return "q"
}

// String renders the query in parser-compatible syntax.
func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString(q.Name())
	b.WriteByte('(')
	for i, x := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(x)
	}
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// SubstituteVar returns a copy of q with every occurrence of variable x
// replaced by constant c. The head loses x if present.
func (q *CQ) SubstituteVar(x string, c db.Const) *CQ {
	out := q.Clone()
	for i := range out.Atoms {
		for j := range out.Atoms[i].Args {
			if out.Atoms[i].Args[j].IsVar() && out.Atoms[i].Args[j].Var == x {
				out.Atoms[i].Args[j] = Term{Const: c}
			}
		}
	}
	head := out.Head[:0]
	for _, h := range out.Head {
		if h != x {
			head = append(head, h)
		}
	}
	out.Head = head
	return out
}

// UCQ is a union of CQ¬s: it is satisfied iff some disjunct is.
type UCQ struct {
	Label     string
	Disjuncts []*CQ
}

// NewUCQ builds a UCQ¬.
func NewUCQ(label string, disjuncts ...*CQ) *UCQ {
	return &UCQ{Label: label, Disjuncts: disjuncts}
}

// Validate checks each disjunct and that the union is nonempty.
func (u *UCQ) Validate() error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("query: UCQ %s has no disjuncts", u.Label)
	}
	for _, q := range u.Disjuncts {
		if err := q.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the union with " | " between disjuncts.
func (u *UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		parts[i] = q.String()
	}
	return strings.Join(parts, " | ")
}

// BooleanQuery is the common interface of CQ and UCQ Boolean evaluation,
// used by the Shapley game definition and the relevance checkers.
type BooleanQuery interface {
	Eval(d *db.Database) bool
	String() string
}
