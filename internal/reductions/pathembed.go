package reductions

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/query"
)

// EmbedPath implements the Appendix C construction behind the hardness side
// of Theorem 4.3: given a self-join-free CQ¬ q with a non-hierarchical path
// with respect to the exogenous relations exo, it lifts an instance D of
// the matching base query (qRST, q¬RS¬T or qRS¬T, depending on the polarity
// of the path's endpoint atoms) into an instance D” of q with identical
// Shapley values for the endogenous facts.
//
// The endpoint atoms represent the R and T atoms of the base query; the
// atoms along the non-hierarchical path jointly represent S(x, y), with
// every path variable mapped to a pair constant ⟨a,b⟩. The intermediate
// database D' is then adjusted: relations of negated atoms are complemented
// over Dom(D') (the construction's D” step), so that a negated atom is
// violated exactly when the corresponding positive tuple existed in D'.
//
// Assumptions checked: q is self-join-free and safe; every S-fact of D is
// exogenous. The base-query instances must keep all R- and T-facts
// endogenous (as the hardness instances of Lemma B.3 do).
func EmbedPath(d *db.Database, q *query.CQ, exo map[string]bool) (*db.Database, map[string]db.Fact, query.BaseHardQuery, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, 0, err
	}
	if q.HasSelfJoin() {
		return nil, nil, 0, fmt.Errorf("reductions: EmbedPath requires a self-join-free query")
	}
	witness, ok := q.FindNonHierarchicalPath(exo)
	if !ok {
		return nil, nil, 0, fmt.Errorf("reductions: %s has no non-hierarchical path for the given exogenous relations", q.Name())
	}
	for _, f := range d.RelationFacts("S") {
		if d.IsEndogenous(f) {
			return nil, nil, 0, fmt.Errorf("reductions: every S-fact must be exogenous; %s is not", f)
		}
	}
	for _, rel := range []string{"R", "T"} {
		for _, f := range d.RelationFacts(rel) {
			if !d.IsEndogenous(f) {
				return nil, nil, 0, fmt.Errorf("reductions: the base instance must keep %s-facts endogenous; %s is not", rel, f)
			}
		}
	}

	ax, ay := q.Atoms[witness.AtomX], q.Atoms[witness.AtomY]
	xVar, yVar := witness.X, witness.Y
	path := witness.Path
	// Orient: when the polarities are mixed, the positive endpoint plays
	// the role of qRS¬T's positive R atom.
	if ax.Negated && !ay.Negated {
		ax, ay = ay, ax
		xVar, yVar = yVar, xVar
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
	}
	var base query.BaseHardQuery
	switch {
	case !ax.Negated && !ay.Negated:
		base = query.BaseRST
	case ax.Negated && ay.Negated:
		base = query.BaseNegRSNegT
	default:
		base = query.BaseRSNegT
	}
	pathVars := make(map[string]bool)
	for _, v := range path {
		if v != xVar && v != yVar {
			pathVars[v] = true
		}
	}
	pair := func(a, b db.Const) db.Const {
		return db.Const("pr$" + string(a) + "$" + string(b))
	}
	instantiate := func(atom query.Atom, a, b db.Const) db.Fact {
		args := make([]db.Const, len(atom.Args))
		for i, tm := range atom.Args {
			switch {
			case !tm.IsVar():
				args[i] = tm.Const
			case tm.Var == xVar && a != "":
				args[i] = a
			case tm.Var == yVar && b != "":
				args[i] = b
			case pathVars[tm.Var] && a != "" && b != "":
				args[i] = pair(a, b)
			default:
				args[i] = Dot
			}
		}
		return db.Fact{Rel: atom.Rel, Args: args}
	}

	// D': endpoint relations carry the R/T facts, every other atom carries
	// one fact per S-edge.
	dPrime := db.New()
	mapping := make(map[string]db.Fact)
	add := func(f db.Fact, endo bool) {
		if !dPrime.Contains(f) {
			dPrime.MustAdd(f, endo)
		}
	}
	for _, rf := range d.RelationFacts("R") {
		img := instantiate(ax, rf.Args[0], "")
		add(img, true)
		mapping[rf.Key()] = img
	}
	for _, tf := range d.RelationFacts("T") {
		img := instantiate(ay, "", tf.Args[0])
		add(img, true)
		mapping[tf.Key()] = img
	}
	for _, sf := range d.RelationFacts("S") {
		a, b := sf.Args[0], sf.Args[1]
		for i, atom := range q.Atoms {
			if i == witness.AtomX || i == witness.AtomY {
				continue
			}
			add(instantiate(atom, a, b), false)
		}
	}

	// D'': endogenous facts kept; positive-atom relations copy their
	// exogenous facts; negative-atom relations are complemented over
	// Dom(D').
	dom := dPrime.Domain()
	out := db.New()
	for _, f := range dPrime.Facts() {
		if dPrime.IsEndogenous(f) {
			out.MustAddEndo(f)
		}
	}
	for _, atom := range q.Atoms {
		if !atom.Negated {
			for _, f := range dPrime.RelationFacts(atom.Rel) {
				if dPrime.IsExogenous(f) && !out.Contains(f) {
					out.MustAddExo(f)
				}
			}
			continue
		}
		forEachTuple(dom, len(atom.Args), func(tuple []db.Const) {
			f := db.Fact{Rel: atom.Rel, Args: append([]db.Const(nil), tuple...)}
			if !dPrime.Contains(f) && !out.Contains(f) {
				out.MustAddExo(f)
			}
		})
	}
	return out, mapping, base, nil
}
