package reductions

import (
	"fmt"
	"math/rand"

	"repro/internal/db"
	"repro/internal/query"
)

// Dot is the padding constant ⊙ of the Lemma B.4 construction.
const Dot = db.Const("$dot")

// ComplementSInstance implements the Lemma B.2 transformation: given an
// instance D for qRST (with every S-fact exogenous), it returns D' with
//
//	S^D' = { S(a,b) | R(a) ∈ D, T(b) ∈ D, S(a,b) ∉ D },
//
// so that Shapley(D, qRST, f) = Shapley(D', qR¬ST, f) for every endogenous
// fact f.
func ComplementSInstance(d *db.Database) (*db.Database, error) {
	for _, f := range d.RelationFacts("S") {
		if d.IsEndogenous(f) {
			return nil, fmt.Errorf("reductions: Lemma B.2 assumes every S-fact is exogenous; %s is not", f)
		}
	}
	out := db.New()
	for _, f := range d.Facts() {
		if f.Rel == "S" {
			continue
		}
		out.MustAdd(f, d.IsEndogenous(f))
	}
	for _, rf := range d.RelationFacts("R") {
		for _, tf := range d.RelationFacts("T") {
			s := db.NewFact("S", rf.Args[0], tf.Args[0])
			if !d.Contains(s) {
				out.MustAddExo(s)
			}
		}
	}
	return out, nil
}

// EmbedTriplet implements the database construction of Lemma B.4 (and its
// self-join extension, Theorem B.5): it lifts an instance D of the base
// query identified by q.ReductionTriplet() into an instance D' of q with
// identical Shapley values. R-facts of D populate the relation of αx
// (variable x set to the R-value, all other variables to ⊙), T-facts
// populate αy, S-facts populate αxy and every other positive atom; the
// relations of the remaining negated atoms stay empty.
//
// Requirements checked: every S-fact of D is exogenous; outside the triplet
// the relations of q are pairwise distinct and distinct from the triplet's;
// if αx and αy share a relation symbol (the Theorem B.5 case) the R- and
// T-values of D must be disjoint.
//
// It returns D' and a mapping from the keys of D's endogenous facts to
// their images in D'.
func EmbedTriplet(d *db.Database, q *query.CQ, t query.Triplet) (*db.Database, map[string]db.Fact, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	atomX, atomXY, atomY := q.Atoms[t.AtomX], q.Atoms[t.AtomXY], q.Atoms[t.AtomY]
	// Relation-sharing checks.
	seen := map[string]int{}
	for i, a := range q.Atoms {
		if i == t.AtomX || i == t.AtomY || i == t.AtomXY {
			continue
		}
		if _, dup := seen[a.Rel]; dup {
			return nil, nil, fmt.Errorf("reductions: relation %s occurs twice outside the triplet", a.Rel)
		}
		seen[a.Rel] = i
		if a.Rel == atomX.Rel || a.Rel == atomY.Rel || a.Rel == atomXY.Rel {
			return nil, nil, fmt.Errorf("reductions: relation %s shared between triplet and non-triplet atoms", a.Rel)
		}
	}
	if atomXY.Rel == atomX.Rel || atomXY.Rel == atomY.Rel {
		return nil, nil, fmt.Errorf("reductions: αxy's relation must occur only once (Theorem B.5)")
	}
	if atomX.Rel == atomY.Rel {
		rVals := map[db.Const]bool{}
		for _, f := range d.RelationFacts("R") {
			rVals[f.Args[0]] = true
		}
		for _, f := range d.RelationFacts("T") {
			if rVals[f.Args[0]] {
				return nil, nil, fmt.Errorf("reductions: Theorem B.5 requires disjoint R and T domains; %s is shared", f.Args[0])
			}
		}
	}
	for _, f := range d.RelationFacts("S") {
		if d.IsEndogenous(f) {
			return nil, nil, fmt.Errorf("reductions: every S-fact must be exogenous; %s is not", f)
		}
	}

	instantiate := func(a query.Atom, x, y string, xv, yv db.Const) db.Fact {
		args := make([]db.Const, len(a.Args))
		for i, tm := range a.Args {
			switch {
			case !tm.IsVar():
				args[i] = tm.Const
			case tm.Var == x && xv != "":
				args[i] = xv
			case tm.Var == y && yv != "":
				args[i] = yv
			default:
				args[i] = Dot
			}
		}
		return db.Fact{Rel: a.Rel, Args: args}
	}

	out := db.New()
	mapping := make(map[string]db.Fact)
	add := func(f db.Fact, endo bool) {
		if !out.Contains(f) {
			out.MustAdd(f, endo)
		}
	}
	for _, rf := range d.RelationFacts("R") {
		img := instantiate(atomX, t.X, t.Y, rf.Args[0], "")
		add(img, d.IsEndogenous(rf))
		if d.IsEndogenous(rf) {
			mapping[rf.Key()] = img
		}
	}
	for _, tf := range d.RelationFacts("T") {
		img := instantiate(atomY, t.X, t.Y, "", tf.Args[0])
		add(img, d.IsEndogenous(tf))
		if d.IsEndogenous(tf) {
			mapping[tf.Key()] = img
		}
	}
	for _, sf := range d.RelationFacts("S") {
		a, b := sf.Args[0], sf.Args[1]
		add(instantiate(atomXY, t.X, t.Y, a, b), false)
		for i, atom := range q.Atoms {
			if i == t.AtomX || i == t.AtomY || i == t.AtomXY || atom.Negated {
				continue
			}
			add(instantiate(atom, t.X, t.Y, a, b), false)
		}
	}
	return out, mapping, nil
}

// RandomBaseInstance generates a random instance over the schema
// {R(x), S(x,y), T(y)} suitable for the reduction lemmas: every S-fact is
// exogenous, every S(a,b) has R(a) and T(b) present (the assumption of
// Lemmas B.1/B.2/B.5), and R- and T-values are drawn from disjoint pools.
func RandomBaseInstance(rng *rand.Rand, rCount, tCount int, edgeProb float64, endoProb float64) *db.Database {
	d := db.New()
	for i := 0; i < rCount; i++ {
		d.MustAdd(db.NewFact("R", db.Const(fmt.Sprintf("r%d", i))), rng.Float64() < endoProb)
	}
	for j := 0; j < tCount; j++ {
		d.MustAdd(db.NewFact("T", db.Const(fmt.Sprintf("t%d", j))), rng.Float64() < endoProb)
	}
	for i := 0; i < rCount; i++ {
		for j := 0; j < tCount; j++ {
			if rng.Float64() < edgeProb {
				d.MustAddExo(db.NewFact("S", db.Const(fmt.Sprintf("r%d", i)), db.Const(fmt.Sprintf("t%d", j))))
			}
		}
	}
	return d
}
