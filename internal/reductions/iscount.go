package reductions

//repolint:allow-file numericpurity: Lemma B.3 oracle-recovery arithmetic (solving for #IS from Shapley values) — reduction bookkeeping, not kernel count vectors

import (
	"fmt"
	"math/big"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/graphs"
	"repro/internal/linalg"
	"repro/internal/query"
)

// ShapleyOracle computes Shapley(D, qRS¬T, f) — the problem Lemma B.3
// reduces #IS to. In tests this is the brute-force computation; the point of
// the reduction is that any polynomial such oracle would make #IS (a
// #P-complete problem) polynomial.
type ShapleyOracle func(d *db.Database, f db.Fact) (*big.Rat, error)

// QRSNegT is the query qRS¬T() :- R(x), S(x,y), ¬T(y) of the reduction.
func QRSNegT() *query.CQ { return query.MustParse("qRSnT() :- R(x), S(x, y), !T(y)") }

// CountISViaShapley recovers |IS(g)| — the number of independent sets of
// the bipartite graph g — from N+2 Shapley-value queries, following the
// Lemma B.3 proof:
//
//	instance D0 pins down P1→1 (permutations where the query stays true);
//	instances D1..D(N+1) yield an independent linear system over the
//	stratified counts |S(g,k)|, solved exactly over big.Rat;
//	|IS(g)| = Σ_k |S(g,k)|.
//
// g must have no isolated vertices (the proof's standing assumption).
func CountISViaShapley(g *graphs.Bipartite, oracle ShapleyOracle) (*big.Int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.HasIsolatedVertex() {
		return nil, fmt.Errorf("reductions: Lemma B.3 requires a graph without isolated vertices")
	}
	m := g.Left
	N := g.Left + g.Right
	f := db.F("T", "0")

	// D0: R(a) endo per left vertex, T(b) endo per right vertex, S(a,b) exo
	// per edge, T(0) endo, S(a,0) exo per left vertex.
	d0 := db.New()
	leftC := func(l int) db.Const { return db.Const(fmt.Sprintf("a%d", l)) }
	rightC := func(r int) db.Const { return db.Const(fmt.Sprintf("b%d", r)) }
	for l := 0; l < g.Left; l++ {
		d0.MustAddEndo(db.NewFact("R", leftC(l)))
	}
	for r := 0; r < g.Right; r++ {
		d0.MustAddEndo(db.NewFact("T", rightC(r)))
	}
	for _, e := range g.Edges {
		d0.MustAddExo(db.NewFact("S", leftC(e[0]), rightC(e[1])))
	}
	d0.MustAddEndo(db.NewFact("T", "0"))
	for l := 0; l < g.Left; l++ {
		d0.MustAddExo(db.NewFact("S", leftC(l), "0"))
	}

	v0, err := oracle(d0, f)
	if err != nil {
		return nil, fmt.Errorf("reductions: oracle on D0: %w", err)
	}
	// f = T(0) only ever flips the answer true→false, so Shapley(D0,f) =
	// −P1→0/(N+1)!.
	factN1 := combinat.Factorial(N + 1)
	p10, err := ratTimesIntExact(new(big.Rat).Neg(v0), factN1)
	if err != nil {
		return nil, fmt.Errorf("reductions: D0 Shapley value %s is not a permutation count over (N+1)!: %w", v0.RatString(), err)
	}
	// P0→0 = (N+1)!/(m+1): permutations where T(0) precedes every R(a).
	p00 := new(big.Int).Quo(factN1, big.NewInt(int64(m+1)))
	p11 := new(big.Int).Sub(factN1, p00)
	p11.Sub(p11, p10)

	// Instances D1..D(N+1) and the equation system over |S(g,k)|.
	a := make([][]*big.Rat, N+1)
	b := make([]*big.Rat, N+1)
	for r := 1; r <= N+1; r++ {
		dr := db.New()
		for l := 0; l < g.Left; l++ {
			dr.MustAddEndo(db.NewFact("R", leftC(l)))
		}
		for rr := 0; rr < g.Right; rr++ {
			dr.MustAddEndo(db.NewFact("T", rightC(rr)))
		}
		for _, e := range g.Edges {
			dr.MustAddExo(db.NewFact("S", leftC(e[0]), rightC(e[1])))
		}
		dr.MustAddEndo(db.NewFact("T", "0"))
		for i := 1; i <= r; i++ {
			zi := db.Const(fmt.Sprintf("z%d", i))
			dr.MustAddEndo(db.NewFact("R", zi))
			dr.MustAddExo(db.NewFact("S", zi, "0"))
		}
		vr, err := oracle(dr, f)
		if err != nil {
			return nil, fmt.Errorf("reductions: oracle on D%d: %w", r, err)
		}
		factNr1 := combinat.Factorial(N + r + 1)
		p10r, err := ratTimesIntExact(new(big.Rat).Neg(vr), factNr1)
		if err != nil {
			return nil, fmt.Errorf("reductions: D%d Shapley value %s is not a permutation count: %w", r, vr.RatString(), err)
		}
		// m_r = C(N+r+1, r)·r!: the r auxiliary R(z_i) facts can be placed
		// anywhere in a 1→1 permutation.
		mr := combinat.Binomial(N+r+1, r)
		mr.Mul(mr, combinat.Factorial(r))
		// P^r_0→0 = (N+r+1)! − P1→1·m_r − P^r_1→0 = Σ_k |S(g,k)|·k!·(N−k+r)!.
		rhs := new(big.Int).Set(factNr1)
		rhs.Sub(rhs, new(big.Int).Mul(p11, mr))
		rhs.Sub(rhs, p10r)
		b[r-1] = new(big.Rat).SetInt(rhs)
		row := make([]*big.Rat, N+1)
		for k := 0; k <= N; k++ {
			coeff := new(big.Int).Mul(combinat.Factorial(k), combinat.Factorial(N-k+r))
			row[k] = new(big.Rat).SetInt(coeff)
		}
		a[r-1] = row
	}

	s, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("reductions: Lemma B.3 equation system: %w", err)
	}
	total := new(big.Int)
	for k, sk := range s {
		if !sk.IsInt() || sk.Sign() < 0 {
			return nil, fmt.Errorf("reductions: |S(g,%d)| solved to non-count %s", k, sk.RatString())
		}
		total.Add(total, sk.Num())
	}
	return total, nil
}

// ratTimesIntExact returns r·n, requiring the product to be an integer.
func ratTimesIntExact(r *big.Rat, n *big.Int) (*big.Int, error) {
	prod := new(big.Rat).Mul(r, new(big.Rat).SetInt(n))
	if !prod.IsInt() {
		return nil, fmt.Errorf("product %s is not integral", prod.RatString())
	}
	return new(big.Int).Set(prod.Num()), nil
}
