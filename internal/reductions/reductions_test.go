package reductions

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/combinat"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/graphs"
	"repro/internal/query"
	"repro/internal/relevance"
	"repro/internal/sat"
)

// --- Theorem 5.1: generic gap witness ---

func TestGapWitnessValues(t *testing.T) {
	queries := []*query.CQ{
		query.MustParse("g1() :- R(x), S(x, y), !R(y)"),
		query.MustParse("g2() :- !R(x), S(x, y), !T(y)"),
		query.MustParse("g3() :- Stud(x), !TA(x), Reg(x, y)"),
		query.MustParse("g4() :- R(x), S(x, y), !T(y)"),
	}
	for _, q := range queries {
		for n := 1; n <= 2; n++ {
			d, f0, err := GapWitness(q, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", q, n, err)
			}
			if d.NumEndo() != 2*n+1 {
				t.Fatalf("%s n=%d: %d endogenous facts, want 2n+1=%d", q, n, d.NumEndo(), 2*n+1)
			}
			got, err := core.BruteForceShapley(d, q, f0)
			if err != nil {
				t.Fatal(err)
			}
			num := new(big.Int).Mul(combinat.Factorial(n), combinat.Factorial(n))
			want := new(big.Rat).SetFrac(num, combinat.Factorial(2*n+1))
			if got.Cmp(want) != 0 {
				t.Errorf("%s n=%d: Shapley(f0) = %s, want n!n!/(2n+1)! = %s\nDB:\n%s",
					q, n, got.RatString(), want.RatString(), d)
			}
		}
	}
}

func TestGapWitnessExponentiallySmall(t *testing.T) {
	// 0 < value ≤ 2^-n (the Theorem 5.1 bound) for the explicit formula.
	for n := 1; n <= 12; n++ {
		num := new(big.Int).Mul(combinat.Factorial(n), combinat.Factorial(n))
		val := new(big.Rat).SetFrac(num, combinat.Factorial(2*n+1))
		bound := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), uint(n)))
		if val.Sign() <= 0 || val.Cmp(bound) > 0 {
			t.Errorf("n=%d: n!n!/(2n+1)! = %s violates (0, 2^-n]", n, val.RatString())
		}
	}
}

func TestGapWitnessErrors(t *testing.T) {
	cases := []struct {
		name string
		q    *query.CQ
		n    int
	}{
		{"no negation", query.MustParse("q() :- R(x), S(x, y)"), 1},
		{"constants", query.MustParse("q() :- R(x), !S(x, A)"), 1},
		{"not positively connected", query.MustParse("q() :- R(x), T(y), !S(x, y)"), 1},
		{"unsatisfiable", query.MustParse("q() :- R(x, y), !R(x, y)"), 1},
		{"bad n", query.MustParse("q() :- R(x), !S(x)"), 0},
	}
	for _, c := range cases {
		if _, _, err := GapWitness(c.q, c.n); err == nil {
			t.Errorf("%s: GapWitness should fail", c.name)
		}
	}
}

// --- Lemma B.3: #IS via a Shapley oracle ---

func bruteOracle(t *testing.T) ShapleyOracle {
	t.Helper()
	q := QRSNegT()
	return func(d *db.Database, f db.Fact) (*big.Rat, error) {
		return core.BruteForceShapley(d, q, f)
	}
}

func TestCountISViaShapleySmallGraphs(t *testing.T) {
	cases := []*graphs.Bipartite{
		{Left: 1, Right: 1, Edges: [][2]int{{0, 0}}},
		{Left: 2, Right: 1, Edges: [][2]int{{0, 0}, {1, 0}}},
		{Left: 1, Right: 2, Edges: [][2]int{{0, 0}, {0, 1}}},
		{Left: 2, Right: 2, Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}},
		{Left: 2, Right: 2, Edges: [][2]int{{0, 0}, {1, 1}}},
	}
	for _, g := range cases {
		got, err := CountISViaShapley(g, bruteOracle(t))
		if err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
		want := g.CountIndependentSets()
		if got.Cmp(want) != 0 {
			t.Errorf("%+v: reduction counted %s independent sets, brute force %s", g, got, want)
		}
	}
}

func TestCountISViaShapleyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 4; trial++ {
		g := graphs.RandomBipartite(rng, 1+rng.Intn(2), 1+rng.Intn(3), 0.5)
		got, err := CountISViaShapley(g, bruteOracle(t))
		if err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
		if want := g.CountIndependentSets(); got.Cmp(want) != 0 {
			t.Errorf("%+v: reduction %s != brute %s", g, got, want)
		}
	}
}

func TestCountISRejectsIsolatedVertices(t *testing.T) {
	g := &graphs.Bipartite{Left: 2, Right: 1, Edges: [][2]int{{0, 0}}}
	if _, err := CountISViaShapley(g, bruteOracle(t)); err == nil {
		t.Fatal("isolated vertex accepted")
	}
}

// --- Proposition 5.5: relevance of qRST¬R ---

func figure4Formula() *sat.Formula {
	// (x1∨x2) ∧ (¬x1∨¬x3) ∧ (x3∨x4∨¬x1∨¬x2)
	return &sat.Formula{NumVars: 4, Clauses: []sat.Clause{
		{sat.Pos(1), sat.Pos(2)},
		{sat.Neg(1), sat.Neg(3)},
		{sat.Pos(3), sat.Pos(4), sat.Neg(1), sat.Neg(2)},
	}}
}

func TestRelevanceInstance225Figure4(t *testing.T) {
	f := figure4Formula()
	d, target, err := RelevanceInstance225(f)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4's database: endogenous R(v1..v4) and T(c); the S facts
	// S(v1,v2,a,a), S(b,b,v1,v3), S(v3,v4,v1,v2), S(d,d,c,c).
	for _, key := range []string{"S(v1,v2,a,a)", "S(b,b,v1,v3)", "S(v3,v4,v1,v2)", "S(d,d,c,c)"} {
		fact, _ := db.ParseFact(key)
		if !d.IsExogenous(fact) {
			t.Errorf("expected exogenous fact %s", key)
		}
	}
	if d.NumEndo() != 5 {
		t.Fatalf("endo count %d, want 5", d.NumEndo())
	}
	rel, err := relevance.IsRelevantBrute(d, QRSTNegR(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Fatal("Figure 4's formula is satisfiable, so T(c) must be relevant")
	}
	// The paper's satisfying assignment z(x2)=z(x3)=1 yields the witness
	// E = {R(v2), R(v3)}.
	assignment := []bool{false, false, true, true, false}
	if !f.Eval(assignment) {
		t.Fatal("paper's assignment must satisfy the formula")
	}
	witness := AssignmentSubset(f, assignment)
	test := d.Restrict(func(_ db.Fact, endo bool) bool { return !endo })
	for _, w := range witness {
		test.MustAddEndo(w)
	}
	q := QRSTNegR()
	if q.Eval(test) {
		t.Fatal("Dx ∪ E must violate qRST¬R (proof of Prop 5.5)")
	}
	test.MustAddEndo(target)
	if !q.Eval(test) {
		t.Fatal("Dx ∪ E ∪ {f} must satisfy qRST¬R")
	}
}

func TestRelevanceInstance225MatchesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	q := QRSTNegR()
	for trial := 0; trial < 12; trial++ {
		f := sat.RandomTwoTwoFour(rng, 3+rng.Intn(3), 3+rng.Intn(5))
		d, target, err := RelevanceInstance225(f)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := relevance.IsRelevantBrute(d, q, target)
		if err != nil {
			t.Fatal(err)
		}
		if rel != f.Satisfiable() {
			t.Fatalf("relevant=%v but satisfiable=%v for %s", rel, f.Satisfiable(), f)
		}
	}
}

func TestRelevanceInstance225Unsatisfiable(t *testing.T) {
	// (x1∨x2) ∧ (¬x1∨¬x1) ∧ (¬x2∨¬x2) forces x1=x2=false, contradiction.
	f := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{
		{sat.Pos(1), sat.Pos(2)},
		{sat.Neg(1), sat.Neg(1)},
		{sat.Neg(2), sat.Neg(2)},
	}}
	if f.Satisfiable() {
		t.Fatal("fixture should be unsatisfiable")
	}
	d, target, err := RelevanceInstance225(f)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := relevance.IsRelevantBrute(d, QRSTNegR(), target)
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Fatal("unsatisfiable formula must make T(c) irrelevant")
	}
}

func TestRelevanceInstance225Errors(t *testing.T) {
	mixed := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{sat.Pos(1), sat.Neg(2)}}}
	if _, _, err := RelevanceInstance225(mixed); err == nil {
		t.Fatal("non-(2+,2−,4+−) formula accepted")
	}
	noPos := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{sat.Neg(1), sat.Neg(2)}}}
	if _, _, err := RelevanceInstance225(noPos); err == nil {
		t.Fatal("formula without positive 2-clause accepted")
	}
}

// --- Proposition 5.8: relevance of qSAT ---

func TestRelevanceInstance3SATMatchesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	u := QSAT()
	for trial := 0; trial < 10; trial++ {
		f := sat.Random3CNF(rng, 2+rng.Intn(3), 2+rng.Intn(5))
		d, target, err := RelevanceInstance3SAT(f)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := relevance.IsRelevantBrute(d, u, target)
		if err != nil {
			t.Fatal(err)
		}
		if rel != f.Satisfiable() {
			t.Fatalf("relevant=%v but satisfiable=%v for %s\nDB:\n%s", rel, f.Satisfiable(), f, d)
		}
	}
	// A canonical unsatisfiable 3CNF.
	f := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{
		{sat.Pos(1), sat.Pos(1), sat.Pos(1)},
		{sat.Neg(1), sat.Neg(1), sat.Neg(1)},
	}}
	d, target, err := RelevanceInstance3SAT(f)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := relevance.IsRelevantBrute(d, u, target)
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Fatal("unsatisfiable 3CNF must make R(0) irrelevant")
	}
}

func TestRelevanceInstance3SATRejectsNon3CNF(t *testing.T) {
	f := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{sat.Pos(1), sat.Pos(2)}}}
	if _, _, err := RelevanceInstance3SAT(f); err == nil {
		t.Fatal("non-3CNF accepted")
	}
}

// --- Lemma D.1: the SAT reduction chain ---

func TestSatChainAgainstColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tested3colorable, testedNot := false, false
	graphsToTest := []*graphs.Graph{
		graphs.CompleteGraph(3),
		graphs.CompleteGraph(4),
		{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}},
	}
	for trial := 0; trial < 6; trial++ {
		graphsToTest = append(graphsToTest, graphs.RandomGraph(rng, 4+rng.Intn(3), 0.6))
	}
	for _, g := range graphsToTest {
		colorable := g.ThreeColoring() != nil
		f32, err := ThreeColorToSAT(g)
		if err != nil {
			t.Fatal(err)
		}
		if !f32.IsThreePosTwoNeg() {
			t.Fatalf("encoding is not (3+,2−): %s", f32)
		}
		if got := f32.Satisfiable(); got != colorable {
			t.Fatalf("(3+,2−) encoding satisfiable=%v, colorable=%v", got, colorable)
		}
		f224, err := ThreePosTwoNegToTwoTwoFour(f32)
		if err != nil {
			t.Fatal(err)
		}
		if !f224.IsTwoTwoFour() {
			t.Fatalf("chain output is not (2+,2−,4+−): %s", f224)
		}
		if got := f224.Satisfiable(); got != colorable {
			t.Fatalf("(2+,2−,4+−) output satisfiable=%v, colorable=%v", got, colorable)
		}
		if colorable {
			tested3colorable = true
			model := f32.Solve()
			colors := ColoringFromAssignment(g, model)
			if !g.IsProperColoring(colors) {
				t.Fatalf("decoded coloring %v is not proper", colors)
			}
		} else {
			testedNot = true
		}
	}
	if !tested3colorable || !testedNot {
		t.Fatal("test fixtures must cover both outcomes")
	}
}

func TestChainRejectsWrongForm(t *testing.T) {
	f := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{sat.Pos(1), sat.Neg(2)}}}
	if _, err := ThreePosTwoNegToTwoTwoFour(f); err == nil {
		t.Fatal("non-(3+,2−) formula accepted")
	}
}

// --- Lemmas B.1, B.2 and the triplet embedding ---

func TestDualityQRSTvsNegRSNegT(t *testing.T) {
	// Lemma B.1: Shapley(D, qRST, f) = −Shapley(D, q¬RS¬T, f) whenever every
	// S-fact is exogenous and has both endpoints present. The reversal
	// bijection additionally needs every R- and T-fact to be endogenous
	// (presence before f in σ corresponds to absence before f in the
	// reversed permutation only for players), which the hardness instances
	// of Lemma B.3 satisfy.
	qrst := query.MustParse("qRST() :- R(x), S(x, y), T(y)")
	qneg := query.MustParse("qn() :- !R(x), S(x, y), !T(y)")
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 10; trial++ {
		d := RandomBaseInstance(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.7, 1.1)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		for _, f := range d.EndoFacts() {
			a, err := core.BruteForceShapley(d, qrst, f)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.BruteForceShapley(d, qneg, f)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cmp(new(big.Rat).Neg(b)) != 0 {
				t.Fatalf("duality violated for %s: qRST %s, q¬RS¬T %s\nDB:\n%s",
					f, a.RatString(), b.RatString(), d)
			}
		}
	}
}

func TestComplementSInstanceLemmaB2(t *testing.T) {
	qrst := query.MustParse("qRST() :- R(x), S(x, y), T(y)")
	qrnst := query.MustParse("qRnST() :- R(x), !S(x, y), T(y)")
	rng := rand.New(rand.NewSource(222))
	for trial := 0; trial < 10; trial++ {
		d := RandomBaseInstance(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.5, 0.7)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		d2, err := ComplementSInstance(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range d.EndoFacts() {
			a, err := core.BruteForceShapley(d, qrst, f)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.BruteForceShapley(d2, qrnst, f)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cmp(b) != 0 {
				t.Fatalf("Lemma B.2 violated for %s: %s vs %s\nD:\n%s\nD':\n%s",
					f, a.RatString(), b.RatString(), d, d2)
			}
		}
	}
}

func TestComplementSRejectsEndogenousS(t *testing.T) {
	d := db.New()
	d.MustAddEndo(db.F("S", "a", "b"))
	if _, err := ComplementSInstance(d); err == nil {
		t.Fatal("endogenous S-fact accepted")
	}
}

func baseQueryFor(b query.BaseHardQuery) *query.CQ {
	switch b {
	case query.BaseRST:
		return query.MustParse("b() :- R(x), S(x, y), T(y)")
	case query.BaseNegRSNegT:
		return query.MustParse("b() :- !R(x), S(x, y), !T(y)")
	case query.BaseRNegST:
		return query.MustParse("b() :- R(x), !S(x, y), T(y)")
	default:
		return query.MustParse("b() :- R(x), S(x, y), !T(y)")
	}
}

func TestEmbedTripletPreservesShapley(t *testing.T) {
	// Lemma B.4 instances: self-join-free non-hierarchical CQ¬s.
	targets := []*query.CQ{
		query.MustParse("t1() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)"),
		query.MustParse("t2() :- A(x), B(x, y), C(y), D(x, y, z)"),
		query.MustParse("t3() :- A(x), !B(x, y), C(y)"),
	}
	rng := rand.New(rand.NewSource(333))
	for _, target := range targets {
		tr, base, ok := target.ReductionTriplet()
		if !ok {
			t.Fatalf("%s must have a reduction triplet", target)
		}
		bq := baseQueryFor(base)
		for trial := 0; trial < 6; trial++ {
			d := RandomBaseInstance(rng, 1+rng.Intn(3), 1+rng.Intn(2), 0.6, 0.7)
			if d.NumEndo() == 0 || d.NumEndo() > 8 {
				continue
			}
			var d2 *db.Database
			var mapping map[string]db.Fact
			var err error
			if base == query.BaseRNegST {
				// The base instance for qR¬ST assumes a complemented S; the
				// embedding still consumes the direct instance shape.
				d2, mapping, err = EmbedTriplet(d, target, tr)
			} else {
				d2, mapping, err = EmbedTriplet(d, target, tr)
			}
			if err != nil {
				t.Fatalf("%s: %v", target, err)
			}
			if d2.NumEndo() != d.NumEndo() {
				t.Fatalf("%s: endo count %d vs %d", target, d2.NumEndo(), d.NumEndo())
			}
			for _, f := range d.EndoFacts() {
				img, ok := mapping[f.Key()]
				if !ok {
					t.Fatalf("%s: endogenous fact %s has no image", target, f)
				}
				a, err := core.BruteForceShapley(d, bq, f)
				if err != nil {
					t.Fatal(err)
				}
				b, err := core.BruteForceShapley(d2, target, img)
				if err != nil {
					t.Fatal(err)
				}
				if a.Cmp(b) != 0 {
					t.Fatalf("%s (base %v): Shapley(%s)=%s but Shapley(%s)=%s\nD:\n%s\nD':\n%s",
						target, base, f, a.RatString(), img, b.RatString(), d, d2)
				}
			}
		}
	}
}

func TestEmbedTripletSelfJoinTheoremB5(t *testing.T) {
	// ¬R(x), S(x,y), ¬R(y): αx and αy share relation R; base q¬RS¬T.
	target := query.MustParse("sj() :- !R(x), S(x, y), !R(y)")
	tr := query.Triplet{AtomX: 0, AtomXY: 1, AtomY: 2, X: "x", Y: "y"}
	bq := query.MustParse("b() :- !R(x), S(x, y), !T(y)")
	rng := rand.New(rand.NewSource(444))
	for trial := 0; trial < 8; trial++ {
		d := RandomBaseInstance(rng, 1+rng.Intn(3), 1+rng.Intn(2), 0.6, 0.7)
		if d.NumEndo() == 0 || d.NumEndo() > 8 {
			continue
		}
		d2, mapping, err := EmbedTriplet(d, target, tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range d.EndoFacts() {
			a, err := core.BruteForceShapley(d, bq, f)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.BruteForceShapley(d2, target, mapping[f.Key()])
			if err != nil {
				t.Fatal(err)
			}
			if a.Cmp(b) != 0 {
				t.Fatalf("Theorem B.5 embedding: Shapley(%s)=%s vs %s\nD:\n%s\nD':\n%s",
					f, a.RatString(), b.RatString(), d, d2)
			}
		}
	}
}

func TestEmbedTripletErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := RandomBaseInstance(rng, 2, 2, 1.0, 1.0)
	// Shared domains with shared relation αx = αy.
	dBad := db.New()
	dBad.MustAddEndo(db.F("R", "v"))
	dBad.MustAddEndo(db.F("T", "v"))
	dBad.MustAddExo(db.F("S", "v", "v"))
	target := query.MustParse("sj() :- !R(x), S(x, y), !R(y)")
	tr := query.Triplet{AtomX: 0, AtomXY: 1, AtomY: 2, X: "x", Y: "y"}
	if _, _, err := EmbedTriplet(dBad, target, tr); err == nil {
		t.Fatal("shared R/T domain accepted for self-join embedding")
	}
	// Endogenous S fact.
	dBad2 := db.New()
	dBad2.MustAddEndo(db.F("S", "a", "b"))
	if _, _, err := EmbedTriplet(dBad2, target, tr); err == nil {
		t.Fatal("endogenous S accepted")
	}
	_ = d
}
