package reductions

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

// checkPathEmbedding verifies Shapley preservation for the Appendix C
// construction on random base instances (all R/T facts endogenous, as the
// hardness instances require).
func checkPathEmbedding(t *testing.T, target *query.CQ, exo map[string]bool, wantBase query.BaseHardQuery, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	trials := 0
	for trials < 5 {
		d := RandomBaseInstance(rng, 1+rng.Intn(2), 1+rng.Intn(2), 0.7, 1.1)
		if d.NumEndo() == 0 || d.NumEndo() > 7 {
			continue
		}
		trials++
		d2, mapping, base, err := EmbedPath(d, target, exo)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if base != wantBase {
			t.Fatalf("%s: base %v, want %v", target, base, wantBase)
		}
		bq := baseQueryFor(base)
		for _, f := range d.EndoFacts() {
			img, ok := mapping[f.Key()]
			if !ok {
				t.Fatalf("%s: no image for %s", target, f)
			}
			a, err := core.BruteForceShapley(d, bq, f)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.BruteForceShapley(d2, target, img)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cmp(b) != 0 {
				t.Fatalf("%s (base %v): Shapley(%s)=%s but embedded %s=%s\nD:\n%s\nD'':\n%s",
					target, base, f, a.RatString(), img, b.RatString(), d, d2)
			}
		}
	}
}

func TestEmbedPathSection41QPrime(t *testing.T) {
	// §4.1's q': mixed endpoint polarity → base qRS¬T.
	target := query.MustParse("qp() :- !R2(x, w), S2(z, x), !P2(z, y), T2(y, w)")
	exo := map[string]bool{"S2": true, "P2": true}
	checkPathEmbedding(t, target, exo, query.BaseRSNegT, 71)
}

func TestEmbedPathBothPositive(t *testing.T) {
	target := query.MustParse("qq() :- R2(x, w), S2(z, x), P2(z, y), T2(y, w)")
	exo := map[string]bool{"S2": true, "P2": true}
	checkPathEmbedding(t, target, exo, query.BaseRST, 72)
}

func TestEmbedPathBothNegative(t *testing.T) {
	// Both endpoints negated; W(w) keeps the query safe.
	target := query.MustParse("qn() :- !R2(x, w), S2(z, x), P2(z, y), !T2(y, w), W(w)")
	exo := map[string]bool{"S2": true, "P2": true, "W": true}
	checkPathEmbedding(t, target, exo, query.BaseNegRSNegT, 73)
}

func TestEmbedPathErrors(t *testing.T) {
	// No non-hierarchical path: the §4.1 tractable query.
	tractable := query.MustParse("q() :- !R2(x, w), S2(z, x), !P2(z, w), T2(y, w)")
	exo := map[string]bool{"S2": true, "P2": true}
	rng := rand.New(rand.NewSource(74))
	d := RandomBaseInstance(rng, 2, 2, 1.0, 1.1)
	if _, _, _, err := EmbedPath(d, tractable, exo); err == nil {
		t.Fatal("tractable query accepted by EmbedPath")
	}
	// Self-join rejected.
	sj := query.MustParse("q() :- R2(x, w), S2(z, x), R2(z, y), T2(y, w)")
	if _, _, _, err := EmbedPath(d, sj, nil); err == nil {
		t.Fatal("self-join accepted by EmbedPath")
	}
	// Exogenous R-fact in the base instance rejected.
	dBad := RandomBaseInstance(rng, 2, 2, 1.0, 0.0) // all R/T exogenous
	hard := query.MustParse("qp() :- !R2(x, w), S2(z, x), !P2(z, y), T2(y, w)")
	if _, _, _, err := EmbedPath(dBad, hard, exo); err == nil {
		t.Fatal("exogenous R/T facts accepted by EmbedPath")
	}
}
