// Package reductions implements the paper's proofs as executable,
// testable constructions: the Theorem 5.1 gap-property witness, the
// Lemma B.3 #IS-from-Shapley-oracle reduction with its exact equation
// system, the Lemma B.2 complement instance, the Lemma B.4 / Theorem B.5
// triplet-embedding reduction, the Proposition 5.5 and 5.8 CNF-to-relevance
// databases, and the Lemma D.1 SAT reduction chain. Each is validated
// against an independent brute-force oracle in the tests.
package reductions

import (
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/query"
)

// GapWitness builds the database D_n of Theorem 5.1 for a satisfiable,
// positively connected, constant-free CQ¬ q with at least one negated atom,
// and returns it together with the distinguished endogenous fact f0 whose
// Shapley value is exactly n!·n!/(2n+1)! — strictly positive yet
// exponentially small, violating the gap property.
//
// The construction assembles n disjoint copies of a database D_q with a
// fact f_i such that D_q \ {f_i} ⊨ q but D_q ⊭ q, and n+1 disjoint copies
// of a minimal satisfying database D'_q with a fact f_i whose removal
// breaks satisfaction; all facts are exogenous except the 2n+1 f_i.
func GapWitness(q *query.CQ, n int) (*db.Database, db.Fact, error) {
	if n < 1 {
		return nil, db.Fact{}, fmt.Errorf("reductions: gap parameter n must be positive")
	}
	if err := q.Validate(); err != nil {
		return nil, db.Fact{}, err
	}
	if len(q.Negative()) == 0 {
		return nil, db.Fact{}, fmt.Errorf("reductions: %s has no negated atom (Theorem 5.1 needs one)", q.Name())
	}
	for _, a := range q.Atoms {
		for _, tm := range a.Args {
			if !tm.IsVar() {
				return nil, db.Fact{}, fmt.Errorf("reductions: %s has constants (Theorem 5.1 assumes none)", q.Name())
			}
		}
	}
	if !q.IsPositivelyConnected() {
		return nil, db.Fact{}, fmt.Errorf("reductions: %s is not positively connected", q.Name())
	}

	frozen := frozenPositives(q)
	if !q.Eval(frozen) {
		return nil, db.Fact{}, fmt.Errorf("reductions: %s is unsatisfiable", q.Name())
	}

	// D'_q: a minimal satisfying database (every fact's removal breaks
	// satisfaction), with its first fact as the distinguished one.
	minimal := minimize(q, frozen)
	satFact := minimal.Facts()[0]

	// D_q: grow the negative relations one missing tuple at a time until the
	// query fails; the last added fact is the distinguished one.
	broken, breakFact, err := breakSatisfaction(q, frozen)
	if err != nil {
		return nil, db.Fact{}, err
	}

	out := db.New()
	var f0 db.Fact
	addCopy := func(src *db.Database, endoFact db.Fact, idx int) db.Fact {
		rename := func(f db.Fact) db.Fact {
			args := make([]db.Const, len(f.Args))
			for i, c := range f.Args {
				args[i] = db.Const(fmt.Sprintf("%s#%d", c, idx))
			}
			return db.Fact{Rel: f.Rel, Args: args}
		}
		target := rename(endoFact)
		for _, f := range src.Facts() {
			nf := rename(f)
			out.MustAdd(nf, nf.Equal(target))
		}
		return target
	}
	f0 = addCopy(minimal, satFact, 0)
	for i := 1; i <= n; i++ {
		addCopy(broken, breakFact, i)
	}
	for i := n + 1; i <= 2*n; i++ {
		addCopy(minimal, satFact, i)
	}
	return out, f0, nil
}

// frozenPositives builds the canonical database of q's positive atoms with
// each variable frozen to its own constant. For a constant-free CQ¬ this
// satisfies q iff q is satisfiable.
func frozenPositives(q *query.CQ) *db.Database {
	d := db.New()
	for _, i := range q.Positive() {
		a := q.Atoms[i]
		args := make([]db.Const, len(a.Args))
		for j, tm := range a.Args {
			args[j] = db.Const("c_" + tm.Var)
		}
		f := db.Fact{Rel: a.Rel, Args: args}
		if !d.Contains(f) {
			d.MustAddExo(f)
		}
	}
	return d
}

// minimize greedily removes facts while the query stays satisfied.
func minimize(q *query.CQ, d *db.Database) *db.Database {
	cur := d.Clone()
	for {
		removed := false
		for _, f := range cur.Facts() {
			smaller, err := cur.Without(f)
			if err != nil {
				continue
			}
			if q.Eval(smaller) {
				cur = smaller
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// breakSatisfaction adds missing tuples over Dom(d) to the negative
// relations of q, one at a time, until the query fails; it returns the
// resulting database and the last added fact. Safety guarantees every
// homomorphism's negative images lie within Dom(d)-tuples, so filling all
// of them must break satisfaction.
func breakSatisfaction(q *query.CQ, d *db.Database) (*db.Database, db.Fact, error) {
	cur := d.Clone()
	dom := d.Domain()
	negRels := q.NegativeRels()
	sort.Strings(negRels)
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	for _, rel := range negRels {
		var missing []db.Fact
		collect := func(tuple []db.Const) {
			f := db.Fact{Rel: rel, Args: append([]db.Const(nil), tuple...)}
			if !cur.Contains(f) {
				missing = append(missing, f)
			}
		}
		forEachTuple(dom, arity[rel], collect)
		for _, f := range missing {
			cur.MustAddExo(f)
			if !q.Eval(cur) {
				return cur, f, nil
			}
		}
	}
	return nil, db.Fact{}, fmt.Errorf("reductions: internal error: filling negative relations of %s never broke satisfaction", q.Name())
}

func forEachTuple(dom []db.Const, k int, fn func([]db.Const)) {
	if k == 0 {
		fn(nil)
		return
	}
	if len(dom) == 0 {
		return
	}
	tuple := make([]db.Const, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			fn(tuple)
			return
		}
		for _, c := range dom {
			tuple[i] = c
			rec(i + 1)
		}
	}
	rec(0)
}
