package reductions

import (
	"fmt"

	"repro/internal/graphs"
	"repro/internal/sat"
)

// ThreeColorToSAT encodes 3-colorability of g as a (3+,2−)-CNF formula
// (Lemma D.1, first reduction): variable x_{v,c} (numbered 3v+c+1) says
// vertex v gets color c; one all-positive 3-clause per vertex forces a
// color, all-negative 2-clauses forbid monochromatic edges and double
// colors.
func ThreeColorToSAT(g *graphs.Graph) (*sat.Formula, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	x := func(v, c int) int { return 3*v + c + 1 }
	f := &sat.Formula{NumVars: 3 * g.N}
	for v := 0; v < g.N; v++ {
		f.Clauses = append(f.Clauses, sat.Clause{sat.Pos(x(v, 0)), sat.Pos(x(v, 1)), sat.Pos(x(v, 2))})
	}
	for _, e := range g.Edges {
		for c := 0; c < 3; c++ {
			f.Clauses = append(f.Clauses, sat.Clause{sat.Neg(x(e[0], c)), sat.Neg(x(e[1], c))})
		}
	}
	for v := 0; v < g.N; v++ {
		for c := 0; c < 3; c++ {
			for c2 := c + 1; c2 < 3; c2++ {
				f.Clauses = append(f.Clauses, sat.Clause{sat.Neg(x(v, c)), sat.Neg(x(v, c2))})
			}
		}
	}
	return f, nil
}

// ColoringFromAssignment decodes a model of ThreeColorToSAT(g) back into a
// coloring (for verifying the reduction end to end).
func ColoringFromAssignment(g *graphs.Graph, assignment []bool) []int {
	colors := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		colors[v] = -1
		for c := 0; c < 3; c++ {
			if assignment[3*v+c+1] {
				colors[v] = c
				break
			}
		}
	}
	return colors
}

// ThreePosTwoNegToTwoTwoFour rewrites a (3+,2−)-CNF into an equisatisfiable
// (2+,2−,4+−)-CNF (Lemma D.1, second reduction): each positive 3-clause
// (xi∨xj∨xk) becomes (xi∨xj∨¬y∨¬y) ∧ (xk∨y) ∧ (¬xk∨¬y) with a fresh
// variable y; negative 2-clauses are copied.
func ThreePosTwoNegToTwoTwoFour(f *sat.Formula) (*sat.Formula, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if !f.IsThreePosTwoNeg() {
		return nil, fmt.Errorf("reductions: formula is not in (3+,2−)-CNF")
	}
	out := &sat.Formula{NumVars: f.NumVars}
	for _, c := range f.Clauses {
		if len(c) == 2 {
			out.Clauses = append(out.Clauses, sat.Clause{c[0], c[1]})
			continue
		}
		out.NumVars++
		y := out.NumVars
		xi, xj, xk := c[0].Var, c[1].Var, c[2].Var
		out.Clauses = append(out.Clauses,
			sat.Clause{sat.Pos(xi), sat.Pos(xj), sat.Neg(y), sat.Neg(y)},
			sat.Clause{sat.Pos(xk), sat.Pos(y)},
			sat.Clause{sat.Neg(xk), sat.Neg(y)},
		)
	}
	return out, nil
}
