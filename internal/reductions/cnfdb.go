package reductions

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/sat"
)

// QRSTNegR is the Proposition 5.5 query
// qRST¬R() :- T(z), ¬R(x), ¬R(y), R(z), R(w), S(x,y,z,w).
func QRSTNegR() *query.CQ {
	return query.MustParse("qRSTnR() :- T(z), !R(x), !R(y), R(z), R(w), S(x, y, z, w)")
}

// RelevanceInstance225 builds the Proposition 5.5 database for a
// (2+,2−,4+−)-CNF formula φ (Figure 4 shows the instance for
// (x1∨x2) ∧ (¬x1∨¬x3) ∧ (x3∨x4∨¬x1∨¬x2)). The returned endogenous fact
// f = T(c) is relevant to qRST¬R iff φ is satisfiable.
//
// The reduction assumes φ contains at least one positive 2-clause
// (otherwise the all-false assignment trivially satisfies φ and the
// reduction is unnecessary); an error is returned if it does not.
func RelevanceInstance225(f *sat.Formula) (*db.Database, db.Fact, error) {
	if err := f.Validate(); err != nil {
		return nil, db.Fact{}, err
	}
	if !f.IsTwoTwoFour() {
		return nil, db.Fact{}, fmt.Errorf("reductions: formula is not in (2+,2−,4+−)-CNF")
	}
	if !f.HasPositiveTwoClause() {
		return nil, db.Fact{}, fmt.Errorf("reductions: Proposition 5.5 assumes a positive 2-clause (the formula is trivially satisfiable without one)")
	}
	d := db.New()
	v := func(i int) db.Const { return db.Const(fmt.Sprintf("v%d", i)) }
	for i := 1; i <= f.NumVars; i++ {
		d.MustAddEndo(db.NewFact("R", v(i)))
		d.MustAddExo(db.NewFact("T", v(i)))
	}
	addS := func(a, b, c, e db.Const) {
		fact := db.NewFact("S", a, b, c, e)
		if !d.Contains(fact) {
			d.MustAddExo(fact)
		}
	}
	for _, clause := range f.Clauses {
		switch {
		case len(clause) == 2 && !clause[0].Neg:
			addS(v(clause[0].Var), v(clause[1].Var), "a", "a")
		case len(clause) == 2:
			addS("b", "b", v(clause[0].Var), v(clause[1].Var))
		default: // (xi ∨ xj ∨ ¬xk ∨ ¬xl)
			addS(v(clause[0].Var), v(clause[1].Var), v(clause[2].Var), v(clause[3].Var))
		}
	}
	d.MustAddExo(db.F("R", "a"))
	d.MustAddExo(db.F("T", "a"))
	d.MustAddExo(db.F("R", "c"))
	d.MustAddExo(db.F("S", "d", "d", "c", "c"))
	target := db.F("T", "c")
	d.MustAddEndo(target)
	return d, target, nil
}

// AssignmentSubset maps a satisfying assignment of φ to the witness subset
// E = {R(v_i) | z(x_i) = 1} of the Proposition 5.5 proof (exported so tests
// and experiments can exhibit the witness).
func AssignmentSubset(f *sat.Formula, assignment []bool) []db.Fact {
	var out []db.Fact
	for i := 1; i <= f.NumVars; i++ {
		if assignment[i] {
			out = append(out, db.NewFact("R", db.Const(fmt.Sprintf("v%d", i))))
		}
	}
	return out
}

// QSAT is the Proposition 5.8 union qSAT = q1 ∨ q2 ∨ q3 ∨ q4. Every
// disjunct is polarity consistent; the union is not (T flips polarity).
func QSAT() *query.UCQ {
	return query.MustParseUCQ(`
q1() :- C(x1, x2, x3, v1, v2, v3), T(x1, v1), T(x2, v2), T(x3, v3)
q2() :- V(x), !T(x, 1), !T(x, 0)
q3() :- T(x, 1), T(x, 0)
q4() :- R(0)`)
}

// RelevanceInstance3SAT builds the Proposition 5.8 database for a 3CNF
// formula φ. The returned endogenous fact f = R(0) is relevant to qSAT iff
// φ is satisfiable.
func RelevanceInstance3SAT(f *sat.Formula) (*db.Database, db.Fact, error) {
	if err := f.Validate(); err != nil {
		return nil, db.Fact{}, err
	}
	if !f.Is3CNF() {
		return nil, db.Fact{}, fmt.Errorf("reductions: formula is not in 3CNF")
	}
	d := db.New()
	v := func(i int) db.Const { return db.Const(fmt.Sprintf("v%d", i)) }
	for i := 1; i <= f.NumVars; i++ {
		d.MustAddExo(db.NewFact("V", v(i)))
		d.MustAddEndo(db.NewFact("T", v(i), "1"))
		d.MustAddEndo(db.NewFact("T", v(i), "0"))
	}
	pol := func(l sat.Literal) db.Const {
		if l.Neg {
			return "1"
		}
		return "0"
	}
	for _, clause := range f.Clauses {
		fact := db.NewFact("C",
			v(clause[0].Var), v(clause[1].Var), v(clause[2].Var),
			pol(clause[0]), pol(clause[1]), pol(clause[2]))
		if !d.Contains(fact) {
			d.MustAddExo(fact)
		}
	}
	target := db.F("R", "0")
	d.MustAddEndo(target)
	return d, target, nil
}
