package paperex

import (
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

func TestRunningExampleShape(t *testing.T) {
	d := RunningExample()
	if d.NumFacts() != 20 {
		t.Fatalf("Figure 1 has 20 facts, got %d", d.NumFacts())
	}
	if d.NumEndo() != 8 {
		t.Fatalf("Figure 1 has 8 endogenous facts (3 TA + 5 Reg), got %d", d.NumEndo())
	}
	for _, rel := range []string{"Stud", "Course", "Adv"} {
		if d.RelationEndogenous(rel) {
			t.Errorf("%s must be exogenous (Example 2.3)", rel)
		}
	}
	if len(Example23Values) != 8 {
		t.Fatalf("Example 2.3 lists 8 values, got %d", len(Example23Values))
	}
}

func TestQueriesValidateAndClassify(t *testing.T) {
	cases := []struct {
		q            *query.CQ
		selfJoinFree bool
		hierarchical bool
	}{
		{Q1(), true, true},
		{Q2(), true, false},
		{Q3(), false, false},
		{Q4(), false, false},
		{QRST(), true, false},
		{QNegRSNegT(), true, false},
		{QRNegST(), true, false},
		{QRSNegT(), true, false},
		{Section41Q(), true, false},
		{Section41QPrime(), true, false},
		{Example41Query(), true, false},
		{Example42Q(), true, false},
		{Example42QPrime(), true, false},
		{GapQuery(), false, false},
		// Example 5.3's query has a self-join but IS hierarchical
		// (A_x = A_y = both atoms); Theorem 3.1 does not cover it because
		// of the self-join, not because of hierarchy.
		{Example53Query(), false, true},
		{QRSTNegR(), false, false},
		{IntroQuery(), true, false},
		{AggregateQuery(), true, true},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if got := !c.q.HasSelfJoin(); got != c.selfJoinFree {
			t.Errorf("%s: self-join-free = %v, want %v", c.q, got, c.selfJoinFree)
		}
		if got := c.q.IsHierarchical(); got != c.hierarchical {
			t.Errorf("%s: hierarchical = %v, want %v", c.q, got, c.hierarchical)
		}
	}
}

func TestQSATShape(t *testing.T) {
	u := QSAT()
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 4 {
		t.Fatalf("qSAT has 4 disjuncts, got %d", len(u.Disjuncts))
	}
	for _, q := range u.Disjuncts {
		if !q.IsPolarityConsistent() {
			t.Errorf("disjunct %s must be polarity consistent", q)
		}
	}
	if u.IsPolarityConsistent() {
		t.Error("the union must not be polarity consistent (T flips)")
	}
}

func TestGapDatabaseShape(t *testing.T) {
	for n := 1; n <= 4; n++ {
		d, f := GapDatabase(n)
		if d.NumEndo() != 2*n+1 {
			t.Fatalf("n=%d: %d endogenous facts, want 2n+1", n, d.NumEndo())
		}
		if !d.IsEndogenous(f) {
			t.Fatalf("n=%d: distinguished fact %s not endogenous", n, f)
		}
		if len(d.RelationFacts("S")) != 2*n+1 {
			t.Fatalf("n=%d: %d S facts, want 2n+1", n, len(d.RelationFacts("S")))
		}
		// Dx must satisfy the query (the proof's starting point).
		dx := d.Restrict(func(_ db.Fact, endo bool) bool { return !endo })
		if !GapQuery().Eval(dx) {
			t.Fatalf("n=%d: Dx must satisfy the gap query", n)
		}
	}
}

func TestExogenousDeclarationsMatchData(t *testing.T) {
	if IntroDatabase().RelationEndogenous("Grows") {
		t.Error("Grows must be exogenous in the intro instance")
	}
	if AggregateDatabase().RelationEndogenous("Profit") {
		t.Error("Profit must be exogenous in the aggregate instance")
	}
	for rel := range Example42QPrimeExo() {
		if !map[string]bool{"R": true, "S": true, "O": true, "P": true}[rel] {
			t.Errorf("unexpected exogenous relation %s", rel)
		}
	}
}
