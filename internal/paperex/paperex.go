// Package paperex provides the concrete databases and queries that appear in
// the paper, as reusable fixtures: the running example of Figure 1, the
// queries of Examples 2.2 and 4.2, the four basic hard queries of §3, the
// §4.1 tractable/intractable pair, the gap-property construction of §5.1,
// the hard relevance queries qRST¬R and qSAT of §5.2, and the expected exact
// Shapley values of Example 2.3.
package paperex

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/db"
	"repro/internal/query"
)

// UniversityDBText is the database of Figure 1 in the textual format
// understood by db.Parse. It is exported so that fixtures outside this
// package (notably cmd/shapley/testdata/university.db) can be generated
// from the single authoritative copy; see WriteUniversityDB.
const UniversityDBText = `# Figure 1: the university database
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
exo  Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
exo  Course(OS, EE)
exo  Course(IC, EE)
exo  Course(DB, CS)
exo  Course(AI, CS)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
exo  Adv(Michael, Adam)
exo  Adv(Michael, Ben)
exo  Adv(Naomi, Caroline)
exo  Adv(Michael, David)
`

// RunningExample builds the database of Figure 1. Facts in Stud, Course and
// Adv are exogenous; facts in TA and Reg are endogenous (Example 2.3).
func RunningExample() *db.Database {
	return db.MustParse(UniversityDBText)
}

// WriteUniversityDB writes the Figure 1 database to path in the textual
// format, creating parent directories as needed. Test fixtures that read
// the university database from disk are generated through this helper so
// they can never drift from the in-code copy.
func WriteUniversityDB(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(UniversityDBText), 0o644)
}

// Q1 returns q1() :- Stud(x), ¬TA(x), Reg(x,y) — hierarchical.
func Q1() *query.CQ { return query.MustParse("q1() :- Stud(x), !TA(x), Reg(x, y)") }

// Q2 returns q2() :- Stud(x), ¬TA(x), Reg(x,y), ¬Course(y,CS) — not
// hierarchical; tractable only with Stud and Course exogenous (§4).
func Q2() *query.CQ {
	return query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
}

// Q3 returns the self-join query q3 of Example 2.2.
func Q3() *query.CQ {
	return query.MustParse("q3() :- Adv(x, y), Adv(x, z), !TA(y), !TA(z), Reg(y, IC), Reg(z, DB)")
}

// Q4 returns the polarity-inconsistent query q4 of Example 2.2.
func Q4() *query.CQ {
	return query.MustParse("q4() :- Adv(x, y), Adv(x, z), TA(y), !TA(z), Reg(z, w), !Reg(y, w)")
}

// Example23Values maps fact keys to the exact Shapley values of Example 2.3
// (main text; Appendix A omits the subset {f2t, f3t} in the f1r calculation,
// but the main-text value 37/210 is the correct one and is what both our
// algorithms produce).
var Example23Values = map[string]string{
	"TA(Adam)":         "-3/28",
	"TA(Ben)":          "-2/35",
	"TA(David)":        "0",
	"Reg(Adam,OS)":     "37/210",
	"Reg(Adam,AI)":     "37/210",
	"Reg(Ben,OS)":      "27/140",
	"Reg(Caroline,DB)": "13/42",
	"Reg(Caroline,IC)": "13/42",
}

// QRST returns qRST() :- R(x), S(x,y), T(y), the canonical hard query.
func QRST() *query.CQ { return query.MustParse("qRST() :- R(x), S(x, y), T(y)") }

// QNegRSNegT returns q¬RS¬T() :- ¬R(x), S(x,y), ¬T(y).
func QNegRSNegT() *query.CQ { return query.MustParse("qnRSnT() :- !R(x), S(x, y), !T(y)") }

// QRNegST returns qR¬ST() :- R(x), ¬S(x,y), T(y).
func QRNegST() *query.CQ { return query.MustParse("qRnST() :- R(x), !S(x, y), T(y)") }

// QRSNegT returns qRS¬T() :- R(x), S(x,y), ¬T(y).
func QRSNegT() *query.CQ { return query.MustParse("qRSnT() :- R(x), S(x, y), !T(y)") }

// Section41Q returns the §4.1 query q() :- ¬R(x,w), S(z,x), ¬P(z,w), T(y,w),
// tractable with X = {S, P}.
func Section41Q() *query.CQ {
	return query.MustParse("q() :- !R(x, w), S(z, x), !P(z, w), T(y, w)")
}

// Section41QPrime returns q'() :- ¬R(x,w), S(z,x), ¬P(z,y), T(y,w), which is
// FP#P-hard even with X = {S, P}.
func Section41QPrime() *query.CQ {
	return query.MustParse("qp() :- !R(x, w), S(z, x), !P(z, y), T(y, w)")
}

// Section41Exo is the exogenous relation set {S, P} of §4.1.
func Section41Exo() map[string]bool { return map[string]bool{"S": true, "P": true} }

// Example41Query returns the academic-publications query of Example 4.1:
// q() :- Author(x,y), Pub(x,z), Citations(z,w) with Pub and Citations
// exogenous.
func Example41Query() *query.CQ {
	return query.MustParse("q() :- Author(x, y), Pub(x, z), Citations(z, w)")
}

// Example41Exo is {Pub, Citations}.
func Example41Exo() map[string]bool { return map[string]bool{"Pub": true, "Citations": true} }

// Example42Q returns the query q of Example 4.2 (Figure 2a), which has a
// non-hierarchical path with X = {Q, S, U, P}.
func Example42Q() *query.CQ {
	return query.MustParse("q() :- !R(x), Q(x, v), S(x, z), U(z, w), !P(w, y), T(y, v)")
}

// Example42QExo is {Q, S, U, P}.
func Example42QExo() map[string]bool {
	return map[string]bool{"Q": true, "S": true, "U": true, "P": true}
}

// Example42QPrime returns the query q' of Example 4.2 (Figures 2b and 3),
// which has no non-hierarchical path with X = {R, S, O, P}.
func Example42QPrime() *query.CQ {
	return query.MustParse("qp() :- U(t, r), !T(y), Q(y, w), !V(t), R(x, y), !S(x, z), O(z), P(u, y, w)")
}

// Example42QPrimeExo is {R, S, O, P}.
func Example42QPrimeExo() map[string]bool {
	return map[string]bool{"R": true, "S": true, "O": true, "P": true}
}

// GapQuery returns the §5.1 query q() :- R(x), S(x,y), ¬R(y) used to break
// the gap property.
func GapQuery() *query.CQ { return query.MustParse("q() :- R(x), S(x, y), !R(y)") }

// GapDatabase builds the §5.1 construction for parameter n and returns the
// database together with the distinguished fact f = R(c0_x), whose Shapley
// value is exactly n!·n!/(2n+1)! ≤ 2^−n.
func GapDatabase(n int) (*db.Database, db.Fact) {
	d := db.New()
	cx := func(i int) db.Const { return db.Const(fmt.Sprintf("x%d", i)) }
	cy := func(i int) db.Const { return db.Const(fmt.Sprintf("y%d", i)) }
	for i := 0; i <= 2*n; i++ {
		d.MustAddExo(db.NewFact("S", cx(i), cy(i)))
	}
	for i := 1; i <= n; i++ {
		d.MustAddExo(db.NewFact("R", cx(i)))
		d.MustAddEndo(db.NewFact("R", cy(i)))
	}
	d.MustAddEndo(db.NewFact("R", cx(0)))
	for i := n + 1; i <= 2*n; i++ {
		d.MustAddEndo(db.NewFact("R", cx(i)))
	}
	return d, db.NewFact("R", cx(0))
}

// Example53Query returns q() :- R(x,y), ¬R(y,x) and Example53Database the
// two-fact database where R(1,2) is relevant yet has Shapley value 0.
func Example53Query() *query.CQ { return query.MustParse("q() :- R(x, y), !R(y, x)") }

// Example53Database returns {R(1,2), R(2,1)}, both endogenous.
func Example53Database() *db.Database {
	d := db.New()
	d.MustAddEndo(db.F("R", "1", "2"))
	d.MustAddEndo(db.F("R", "2", "1"))
	return d
}

// QRSTNegR returns the §5.2 query
// qRST¬R() :- T(z), ¬R(x), ¬R(y), R(z), R(w), S(x,y,z,w)
// for which relevance of a T-fact is NP-complete (Proposition 5.5).
func QRSTNegR() *query.CQ {
	return query.MustParse("qRSTnR() :- T(z), !R(x), !R(y), R(z), R(w), S(x, y, z, w)")
}

// QSAT returns the §5.2 UCQ¬ qSAT = q1 ∨ q2 ∨ q3 ∨ q4 for which relevance of
// R(0) is NP-complete (Proposition 5.8). Each disjunct is polarity
// consistent; the union is not.
func QSAT() *query.UCQ {
	return query.MustParseUCQ(`
q1() :- C(x1, x2, x3, v1, v2, v3), T(x1, v1), T(x2, v2), T(x3, v3)
q2() :- V(x), !T(x, 1), !T(x, 0)
q3() :- T(x, 1), T(x, 0)
q4() :- R(0)`)
}

// IntroQuery returns the introduction's farmer query
// q() :- Farmer(m), Export(m,p,c), ¬Grows(c,p).
func IntroQuery() *query.CQ {
	return query.MustParse("q() :- Farmer(m), Export(m, p, c), !Grows(c, p)")
}

// IntroDatabase builds a small agricultural-exports instance for the
// introduction's query: farmers exporting products to countries, with the
// Grows relation exogenous (the tractable reading of §4).
func IntroDatabase() *db.Database {
	return db.MustParse(`
exo  Farmer(Miller)
exo  Farmer(Sato)
endo Export(Miller, Wheat, Japan)
endo Export(Miller, Corn, France)
endo Export(Sato, Rice, France)
endo Export(Sato, Wheat, Brazil)
exo  Grows(Japan, Rice)
exo  Grows(France, Wheat)
exo  Grows(France, Corn)
exo  Grows(Brazil, Corn)
`)
}

// AggregateQuery returns the §3 remark's aggregate body
// q(p, c, r) :- Export(p, c), ¬Grows(c, p), Profit(c, p, r), whose Sum over
// r is tractable by Theorem 3.1 (the body is hierarchical once grounded per
// answer; here the body itself is hierarchical).
func AggregateQuery() *query.CQ {
	return query.MustParse("q(p, c, r) :- Export(p, c), !Grows(c, p), Profit(c, p, r)")
}

// AggregateDatabase builds an instance for AggregateQuery with integer
// profits.
func AggregateDatabase() *db.Database {
	return db.MustParse(`
endo Export(Wheat, Japan)
endo Export(Rice, Japan)
endo Export(Corn, France)
exo  Grows(Japan, Rice)
exo  Profit(Japan, Wheat, 10)
exo  Profit(Japan, Rice, 7)
exo  Profit(France, Corn, 5)
`)
}
