// Package db implements the relational database substrate of the paper:
// databases are finite sets of facts over a relational schema, where every
// fact is marked endogenous or exogenous (D = Dx ∪ Dn in the paper's
// notation). Exogenous facts are taken as given; endogenous facts are the
// players of the Shapley cooperative game.
//
// Databases preserve insertion order so that all algorithms in this
// repository are deterministic, while maintaining hash indexes for O(1)
// membership tests. Arity consistency per relation symbol is enforced.
package db

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Const is a database constant (an element of the paper's set Const).
type Const string

// Fact is a fact R(c1, ..., ck) over relation symbol R.
type Fact struct {
	Rel  string
	Args []Const
}

// NewFact builds a fact from a relation symbol and constants.
func NewFact(rel string, args ...Const) Fact {
	return Fact{Rel: rel, Args: args}
}

// F is a convenience constructor taking plain strings.
func F(rel string, args ...string) Fact {
	cs := make([]Const, len(args))
	for i, a := range args {
		cs[i] = Const(a)
	}
	return Fact{Rel: rel, Args: cs}
}

// Key returns a canonical map key for the fact.
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Rel)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(a))
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the fact as R(c1,...,ck).
func (f Fact) String() string { return f.Key() }

// Arity returns the number of arguments.
func (f Fact) Arity() int { return len(f.Args) }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

type storedFact struct {
	fact Fact
	key  string // cached fact.Key(), computed once at insertion
	endo bool
}

// Database is a finite set of facts partitioned into exogenous and
// endogenous subsets. The zero value is not usable; call New.
type Database struct {
	byKey   map[string]*storedFact
	order   []*storedFact            // insertion order
	rels    map[string][]*storedFact // per-relation, insertion order
	arity   map[string]int
	flagged []FlaggedFact // insertion order, maintained by Add
}

// New returns an empty database.
func New() *Database {
	return &Database{
		byKey: make(map[string]*storedFact),
		rels:  make(map[string][]*storedFact),
		arity: make(map[string]int),
	}
}

// newSized returns an empty database pre-sized for the bulk-copy paths
// (Clone, Apply, Restrict): maps and slices are allocated at their final
// capacity so copying a large database never rehashes.
func newSized(facts, rels int) *Database {
	return &Database{
		byKey:   make(map[string]*storedFact, facts),
		rels:    make(map[string][]*storedFact, rels),
		arity:   make(map[string]int, rels),
		order:   make([]*storedFact, 0, facts),
		flagged: make([]FlaggedFact, 0, facts),
	}
}

// Add inserts a fact with the given endogeneity. It returns an error on a
// duplicate fact (even with the same flag) or an arity clash, so that
// construction bugs surface early.
func (d *Database) Add(f Fact, endogenous bool) error {
	return d.addKeyed(f, f.Key(), endogenous)
}

// AddFlagged is Add for a fact whose canonical key is already rendered
// (the bulk shape FlaggedFacts returns), skipping the re-render.
func (d *Database) AddFlagged(ff FlaggedFact) error {
	return d.addKeyed(ff.Fact, ff.Key, ff.Endo)
}

func (d *Database) addKeyed(f Fact, key string, endogenous bool) error {
	if f.Rel == "" {
		return fmt.Errorf("db: fact with empty relation symbol")
	}
	if _, dup := d.byKey[key]; dup {
		return fmt.Errorf("db: duplicate fact %s", key)
	}
	if a, seen := d.arity[f.Rel]; seen {
		if a != len(f.Args) {
			return fmt.Errorf("db: arity clash for %s: %d vs %d", f.Rel, a, len(f.Args))
		}
	} else {
		d.arity[f.Rel] = len(f.Args)
	}
	sf := &storedFact{fact: f, key: key, endo: endogenous}
	d.byKey[key] = sf
	d.order = append(d.order, sf)
	d.rels[f.Rel] = append(d.rels[f.Rel], sf)
	d.flagged = append(d.flagged, FlaggedFact{Fact: f, Key: key, Endo: endogenous})
	return nil
}

// AddExo inserts an exogenous fact (see Add for error conditions).
func (d *Database) AddExo(f Fact) error { return d.Add(f, false) }

// AddEndo inserts an endogenous fact (see Add for error conditions).
func (d *Database) AddEndo(f Fact) error { return d.Add(f, true) }

// MustAdd inserts a fact and panics on error; intended for fixtures.
func (d *Database) MustAdd(f Fact, endogenous bool) {
	if err := d.Add(f, endogenous); err != nil {
		panic(err)
	}
}

// MustAddExo is MustAdd with endogenous=false.
func (d *Database) MustAddExo(f Fact) { d.MustAdd(f, false) }

// MustAddEndo is MustAdd with endogenous=true.
func (d *Database) MustAddEndo(f Fact) { d.MustAdd(f, true) }

// Contains reports whether the fact is in the database.
func (d *Database) Contains(f Fact) bool {
	_, ok := d.byKey[f.Key()]
	return ok
}

// IsEndogenous reports whether f is present and endogenous.
func (d *Database) IsEndogenous(f Fact) bool {
	sf, ok := d.byKey[f.Key()]
	return ok && sf.endo
}

// IsExogenous reports whether f is present and exogenous.
func (d *Database) IsExogenous(f Fact) bool {
	sf, ok := d.byKey[f.Key()]
	return ok && !sf.endo
}

// Facts returns all facts in insertion order.
func (d *Database) Facts() []Fact {
	out := make([]Fact, 0, len(d.order))
	for _, sf := range d.order {
		out = append(out, sf.fact)
	}
	return out
}

// EndoFacts returns the endogenous facts (Dn) in insertion order.
func (d *Database) EndoFacts() []Fact {
	var out []Fact
	for _, sf := range d.order {
		if sf.endo {
			out = append(out, sf.fact)
		}
	}
	return out
}

// ExoFacts returns the exogenous facts (Dx) in insertion order.
func (d *Database) ExoFacts() []Fact {
	var out []Fact
	for _, sf := range d.order {
		if !sf.endo {
			out = append(out, sf.fact)
		}
	}
	return out
}

// FlaggedFact is one fact together with its endogeneity flag and its
// cached canonical key. It is the bulk-iteration shape the compute layer
// consumes: the key is rendered once at insertion, so content hashing and
// membership bookkeeping over large databases never re-render it.
type FlaggedFact struct {
	Fact Fact
	Key  string
	Endo bool
}

// FlaggedFacts returns all facts in insertion order with their flags and
// cached keys. The returned slice is shared with the database and must
// not be mutated or appended to by callers.
func (d *Database) FlaggedFacts() []FlaggedFact {
	return d.flagged[:len(d.flagged):len(d.flagged)]
}

// RelationFacts returns the facts of one relation in insertion order.
func (d *Database) RelationFacts(rel string) []Fact {
	sfs := d.rels[rel]
	out := make([]Fact, 0, len(sfs))
	for _, sf := range sfs {
		out = append(out, sf.fact)
	}
	return out
}

// Relations returns the relation symbols in sorted order.
func (d *Database) Relations() []string {
	out := make([]string, 0, len(d.rels))
	for r := range d.rels {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Arity returns the arity of a relation symbol and whether it is known.
func (d *Database) Arity(rel string) (int, bool) {
	a, ok := d.arity[rel]
	return a, ok
}

// NumFacts returns the total number of facts.
func (d *Database) NumFacts() int { return len(d.order) }

// NumEndo returns |Dn|.
func (d *Database) NumEndo() int {
	n := 0
	for _, sf := range d.order {
		if sf.endo {
			n++
		}
	}
	return n
}

// Domain returns the active domain Dom(D): all constants appearing in any
// fact, sorted and deduplicated.
func (d *Database) Domain() []Const {
	seen := make(map[Const]bool)
	var out []Const
	for _, sf := range d.order {
		for _, a := range sf.fact.Args {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RelationEndogenous reports whether relation rel contains at least one
// endogenous fact. A relation with only exogenous facts is an "exogenous
// relation" instance-wise (the schema-level declaration lives with queries).
func (d *Database) RelationEndogenous(rel string) bool {
	for _, sf := range d.rels[rel] {
		if sf.endo {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	out := newSized(len(d.order), len(d.rels))
	for _, sf := range d.order {
		if err := out.addKeyed(sf.fact, sf.key, sf.endo); err != nil {
			panic(err)
		}
	}
	return out
}

// WithExogenous returns a copy of d in which f (which must be an endogenous
// fact of d) has been moved to the exogenous side.
func (d *Database) WithExogenous(f Fact) (*Database, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("db: %s is not an endogenous fact", f)
	}
	out := newSized(len(d.order), len(d.rels))
	key := f.Key()
	for _, sf := range d.order {
		endo := sf.endo
		if sf.key == key {
			endo = false
		}
		if err := out.addKeyed(sf.fact, sf.key, endo); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Without returns a copy of d with fact f removed. It is an error if f is
// not present.
func (d *Database) Without(f Fact) (*Database, error) {
	if !d.Contains(f) {
		return nil, fmt.Errorf("db: %s is not a fact of the database", f)
	}
	out := newSized(len(d.order)-1, len(d.rels))
	key := f.Key()
	for _, sf := range d.order {
		if sf.key == key {
			continue
		}
		if err := out.addKeyed(sf.fact, sf.key, sf.endo); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Restrict returns a copy of d containing only the facts for which keep
// returns true.
func (d *Database) Restrict(keep func(f Fact, endogenous bool) bool) *Database {
	out := newSized(len(d.order), len(d.rels))
	for _, sf := range d.order {
		if keep(sf.fact, sf.endo) {
			if err := out.addKeyed(sf.fact, sf.key, sf.endo); err != nil {
				panic(err)
			}
		}
	}
	return out
}

// Fingerprint returns a content hash of the database: two databases have
// equal fingerprints iff they contain the same facts with the same
// endogeneity flags, regardless of insertion order. It is the database
// component of cross-query plan-cache keys.
func (d *Database) Fingerprint() string {
	lines := make([]string, 0, len(d.order))
	for _, sf := range d.order {
		if sf.endo {
			lines = append(lines, "n "+sf.fact.Key())
		} else {
			lines = append(lines, "x "+sf.fact.Key())
		}
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// String renders the database in the textual format understood by Parse.
func (d *Database) String() string {
	var b strings.Builder
	for _, sf := range d.order {
		if sf.endo {
			b.WriteString("endo ")
		} else {
			b.WriteString("exo  ")
		}
		b.WriteString(sf.fact.String())
		b.WriteByte('\n')
	}
	return b.String()
}
