// Package db implements the relational database substrate of the paper:
// databases are finite sets of facts over a relational schema, where every
// fact is marked endogenous or exogenous (D = Dx ∪ Dn in the paper's
// notation). Exogenous facts are taken as given; endogenous facts are the
// players of the Shapley cooperative game.
//
// Databases preserve insertion order so that all algorithms in this
// repository are deterministic, while maintaining hash indexes for O(1)
// membership tests. Arity consistency per relation symbol is enforced.
package db

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/maphash"
	"maps"
	"slices"
	"sort"
	"strings"
)

// Const is a database constant (an element of the paper's set Const).
type Const string

// Fact is a fact R(c1, ..., ck) over relation symbol R.
type Fact struct {
	Rel  string
	Args []Const
}

// NewFact builds a fact from a relation symbol and constants.
func NewFact(rel string, args ...Const) Fact {
	return Fact{Rel: rel, Args: args}
}

// F is a convenience constructor taking plain strings.
func F(rel string, args ...string) Fact {
	cs := make([]Const, len(args))
	for i, a := range args {
		cs[i] = Const(a)
	}
	return Fact{Rel: rel, Args: cs}
}

// Key returns a canonical map key for the fact.
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Rel)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(a))
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the fact as R(c1,...,ck).
func (f Fact) String() string { return f.Key() }

// Arity returns the number of arguments.
func (f Fact) Arity() int { return len(f.Args) }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Digest is a 256-bit per-fact content digest over (endogeneity flag,
// canonical key), stored as four little-endian words so that digests of
// disjoint fact sets combine by plain word-wise wrapping addition (an
// additive multiset hash in the LtHash style). The compute layer derives
// DP-node content addresses from these sums, which is what makes
// re-keying a large sub-instance O(facts) word additions instead of
// re-rendering and re-hashing every fact: the SHA-256 per fact is paid
// once, at insertion.
type Digest [4]uint64

// zero digests mark "not yet computed"; SHA-256 emitting the all-zero
// digest is beyond astronomically unlikely, so the sentinel is safe.
var zeroDigest Digest

// Add combines two digests word-wise (wrapping), the multiset union.
func (d Digest) Add(o Digest) Digest {
	return Digest{d[0] + o[0], d[1] + o[1], d[2] + o[2], d[3] + o[3]}
}

// digestSeeds are the four independent lanes of the per-fact digest: one
// maphash (SipHash-family) seed per word. Seeds are drawn once per
// process; digests are only ever compared within a process (they feed
// the in-memory DP-node memo), so cross-process stability is not needed.
var digestSeeds = [4]maphash.Seed{maphash.MakeSeed(), maphash.MakeSeed(), maphash.MakeSeed(), maphash.MakeSeed()}

// digestOf computes the content digest of one (key, flag) pair: four
// independently seeded 64-bit strong hashes. This runs once per fact
// insertion (including the transient databases the ExoShap transform
// builds), so it uses maphash rather than a cryptographic hash — a
// multiset-sum collision across lanes would need 256 bits of
// simultaneous coincidence on non-adversarial input.
func digestOf(key string, endo bool) Digest {
	flag := "x "
	if endo {
		flag = "n "
	}
	var d Digest
	for i := range d {
		var h maphash.Hash
		h.SetSeed(digestSeeds[i])
		h.WriteString(flag)
		h.WriteString(key)
		d[i] = h.Sum64()
	}
	return d
}

type storedFact struct {
	fact Fact
	key  string // cached fact.Key(), computed once at insertion
	dig  Digest // cached digestOf(key, endo), computed once at insertion
	endo bool
}

// Database is a finite set of facts partitioned into exogenous and
// endogenous subsets. The zero value is not usable; call New.
type Database struct {
	byKey   map[string]*storedFact
	order   []*storedFact            // insertion order
	rels    map[string][]*storedFact // per-relation, insertion order
	arity   map[string]int
	flagged []FlaggedFact // insertion order, maintained by Add

	// idx caches lazily built hash indexes (see index.go). The zero value
	// is an empty cache, so the copy-on-write constructors below leave it
	// out of their struct literals and every copy starts cold.
	idx indexCache
}

// New returns an empty database.
func New() *Database {
	return &Database{
		byKey: make(map[string]*storedFact),
		rels:  make(map[string][]*storedFact),
		arity: make(map[string]int),
	}
}

// newSized returns an empty database pre-sized for the bulk-copy paths
// (Clone, Apply, Restrict): maps and slices are allocated at their final
// capacity so copying a large database never rehashes.
func newSized(facts, rels int) *Database {
	return &Database{
		byKey:   make(map[string]*storedFact, facts),
		rels:    make(map[string][]*storedFact, rels),
		arity:   make(map[string]int, rels),
		order:   make([]*storedFact, 0, facts),
		flagged: make([]FlaggedFact, 0, facts),
	}
}

// Add inserts a fact with the given endogeneity. It returns an error on a
// duplicate fact (even with the same flag) or an arity clash, so that
// construction bugs surface early.
func (d *Database) Add(f Fact, endogenous bool) error {
	return d.addKeyed(f, f.Key(), zeroDigest, endogenous)
}

// AddFlagged is Add for a fact whose canonical key (and content digest)
// is already rendered — the bulk shape FlaggedFacts returns — skipping
// the re-render and the re-hash.
func (d *Database) AddFlagged(ff FlaggedFact) error {
	return d.addKeyed(ff.Fact, ff.Key, ff.Dig, ff.Endo)
}

func (d *Database) addKeyed(f Fact, key string, dig Digest, endogenous bool) error {
	if f.Rel == "" {
		return fmt.Errorf("db: fact with empty relation symbol")
	}
	if _, dup := d.byKey[key]; dup {
		return fmt.Errorf("db: duplicate fact %s", key)
	}
	if a, seen := d.arity[f.Rel]; seen {
		if a != len(f.Args) {
			return fmt.Errorf("db: arity clash for %s: %d vs %d", f.Rel, a, len(f.Args))
		}
	} else {
		d.arity[f.Rel] = len(f.Args)
	}
	if dig == zeroDigest {
		dig = digestOf(key, endogenous)
	}
	sf := &storedFact{fact: f, key: key, dig: dig, endo: endogenous}
	d.byKey[key] = sf
	d.order = append(d.order, sf)
	d.rels[f.Rel] = append(d.rels[f.Rel], sf)
	d.flagged = append(d.flagged, FlaggedFact{Fact: f, Key: key, Dig: dig, Endo: endogenous})
	return nil
}

// AddExo inserts an exogenous fact (see Add for error conditions).
func (d *Database) AddExo(f Fact) error { return d.Add(f, false) }

// AddEndo inserts an endogenous fact (see Add for error conditions).
func (d *Database) AddEndo(f Fact) error { return d.Add(f, true) }

// MustAdd inserts a fact and panics on error; intended for fixtures.
func (d *Database) MustAdd(f Fact, endogenous bool) {
	if err := d.Add(f, endogenous); err != nil {
		panic(err)
	}
}

// MustAddExo is MustAdd with endogenous=false.
func (d *Database) MustAddExo(f Fact) { d.MustAdd(f, false) }

// MustAddEndo is MustAdd with endogenous=true.
func (d *Database) MustAddEndo(f Fact) { d.MustAdd(f, true) }

// Contains reports whether the fact is in the database.
func (d *Database) Contains(f Fact) bool {
	_, ok := d.byKey[f.Key()]
	return ok
}

// IsEndogenous reports whether f is present and endogenous.
func (d *Database) IsEndogenous(f Fact) bool {
	sf, ok := d.byKey[f.Key()]
	return ok && sf.endo
}

// IsExogenous reports whether f is present and exogenous.
func (d *Database) IsExogenous(f Fact) bool {
	sf, ok := d.byKey[f.Key()]
	return ok && !sf.endo
}

// Facts returns all facts in insertion order.
func (d *Database) Facts() []Fact {
	out := make([]Fact, 0, len(d.order))
	for _, sf := range d.order {
		out = append(out, sf.fact)
	}
	return out
}

// EndoFacts returns the endogenous facts (Dn) in insertion order.
func (d *Database) EndoFacts() []Fact {
	var out []Fact
	for _, sf := range d.order {
		if sf.endo {
			out = append(out, sf.fact)
		}
	}
	return out
}

// ExoFacts returns the exogenous facts (Dx) in insertion order.
func (d *Database) ExoFacts() []Fact {
	var out []Fact
	for _, sf := range d.order {
		if !sf.endo {
			out = append(out, sf.fact)
		}
	}
	return out
}

// FlaggedFact is one fact together with its endogeneity flag, its cached
// canonical key and its cached content digest. It is the bulk-iteration
// shape the compute layer consumes: key and digest are rendered once at
// insertion, so content addressing and membership bookkeeping over large
// databases never re-render or re-hash a fact.
type FlaggedFact struct {
	Fact Fact
	Key  string
	Dig  Digest
	Endo bool
}

// MakeFlaggedFact builds the bulk shape for a fact outside any database
// (tests, ad-hoc tree construction), rendering key and digest once.
func MakeFlaggedFact(f Fact, endo bool) FlaggedFact {
	key := f.Key()
	return FlaggedFact{Fact: f, Key: key, Dig: digestOf(key, endo), Endo: endo}
}

// ContentDigest returns the fact's (flag, key) digest, computing it when
// the cached field is absent (hand-built literals). Pointer receiver: the
// hot content-addressing loops call this per fact, and the struct is
// several cache lines wide.
func (ff *FlaggedFact) ContentDigest() Digest {
	if ff.Dig != zeroDigest {
		return ff.Dig
	}
	return digestOf(ff.Key, ff.Endo)
}

// FlaggedFacts returns all facts in insertion order with their flags and
// cached keys. The returned slice is shared with the database and must
// not be mutated or appended to by callers.
func (d *Database) FlaggedFacts() []FlaggedFact {
	return d.flagged[:len(d.flagged):len(d.flagged)]
}

// RelationFacts returns the facts of one relation in insertion order.
func (d *Database) RelationFacts(rel string) []Fact {
	sfs := d.rels[rel]
	out := make([]Fact, 0, len(sfs))
	for _, sf := range sfs {
		out = append(out, sf.fact)
	}
	return out
}

// Relations returns the relation symbols in sorted order.
func (d *Database) Relations() []string {
	out := make([]string, 0, len(d.rels))
	for r := range d.rels {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Arity returns the arity of a relation symbol and whether it is known.
func (d *Database) Arity(rel string) (int, bool) {
	a, ok := d.arity[rel]
	return a, ok
}

// NumFacts returns the total number of facts.
func (d *Database) NumFacts() int { return len(d.order) }

// NumEndo returns |Dn|.
func (d *Database) NumEndo() int {
	n := 0
	for _, sf := range d.order {
		if sf.endo {
			n++
		}
	}
	return n
}

// Domain returns the active domain Dom(D): all constants appearing in any
// fact, sorted and deduplicated.
func (d *Database) Domain() []Const {
	seen := make(map[Const]bool)
	var out []Const
	for _, sf := range d.order {
		for _, a := range sf.fact.Args {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RelationEndogenous reports whether relation rel contains at least one
// endogenous fact. A relation with only exogenous facts is an "exogenous
// relation" instance-wise (the schema-level declaration lives with queries).
func (d *Database) RelationEndogenous(rel string) bool {
	for _, sf := range d.rels[rel] {
		if sf.endo {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the database. Stored facts are
// immutable after insertion (every mutating operation — WithExogenous,
// Without, Apply — builds new entries), so the copy shares them and only
// the indexes are duplicated: O(n) word copies instead of n re-insertions.
func (d *Database) Clone() *Database {
	rels := make(map[string][]*storedFact, len(d.rels))
	for r, sfs := range d.rels {
		rels[r] = slices.Clone(sfs)
	}
	return &Database{
		byKey:   maps.Clone(d.byKey),
		order:   slices.Clone(d.order),
		rels:    rels,
		arity:   maps.Clone(d.arity),
		flagged: slices.Clone(d.flagged),
	}
}

// WithExogenous returns a copy of d in which f (which must be an endogenous
// fact of d) has been moved to the exogenous side.
func (d *Database) WithExogenous(f Fact) (*Database, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("db: %s is not an endogenous fact", f)
	}
	out := newSized(len(d.order), len(d.rels))
	key := f.Key()
	for _, sf := range d.order {
		endo, dig := sf.endo, sf.dig
		if sf.key == key {
			endo, dig = false, zeroDigest // the flag flips; re-derive the digest
		}
		if err := out.addKeyed(sf.fact, sf.key, dig, endo); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Without returns a copy of d with fact f removed. It is an error if f is
// not present.
func (d *Database) Without(f Fact) (*Database, error) {
	if !d.Contains(f) {
		return nil, fmt.Errorf("db: %s is not a fact of the database", f)
	}
	out := newSized(len(d.order)-1, len(d.rels))
	key := f.Key()
	for _, sf := range d.order {
		if sf.key == key {
			continue
		}
		if err := out.addKeyed(sf.fact, sf.key, sf.dig, sf.endo); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WithoutRelation returns a copy of d with every fact of rel removed.
// Unlike Restrict it never re-inserts the surviving facts: indexes are
// cloned and filtered (the ExoShap transform drops relations repeatedly
// while rewriting a database, which made per-fact re-insertion its
// dominant cost).
func (d *Database) WithoutRelation(rel string) *Database {
	drop := d.rels[rel]
	if len(drop) == 0 {
		return d.Clone()
	}
	byKey := maps.Clone(d.byKey)
	for _, sf := range drop {
		delete(byKey, sf.key)
	}
	rels := make(map[string][]*storedFact, len(d.rels))
	for r, sfs := range d.rels {
		if r != rel {
			rels[r] = slices.Clone(sfs)
		}
	}
	arity := maps.Clone(d.arity)
	delete(arity, rel)
	order := make([]*storedFact, 0, len(d.order)-len(drop))
	flagged := make([]FlaggedFact, 0, len(d.flagged)-len(drop))
	for i, sf := range d.order {
		if sf.fact.Rel == rel {
			continue
		}
		order = append(order, sf)
		flagged = append(flagged, d.flagged[i])
	}
	return &Database{byKey: byKey, order: order, rels: rels, arity: arity, flagged: flagged}
}

// Restrict returns a copy of d containing only the facts for which keep
// returns true.
func (d *Database) Restrict(keep func(f Fact, endogenous bool) bool) *Database {
	out := newSized(len(d.order), len(d.rels))
	for _, sf := range d.order {
		if keep(sf.fact, sf.endo) {
			if err := out.addKeyed(sf.fact, sf.key, sf.dig, sf.endo); err != nil {
				panic(err)
			}
		}
	}
	return out
}

// Fingerprint returns a content hash of the database: two databases have
// equal fingerprints iff they contain the same facts with the same
// endogeneity flags, regardless of insertion order. It is the database
// component of cross-query plan-cache keys.
func (d *Database) Fingerprint() string {
	lines := make([]string, 0, len(d.order))
	for _, sf := range d.order {
		if sf.endo {
			lines = append(lines, "n "+sf.fact.Key())
		} else {
			lines = append(lines, "x "+sf.fact.Key())
		}
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// String renders the database in the textual format understood by Parse.
func (d *Database) String() string {
	var b strings.Builder
	for _, sf := range d.order {
		if sf.endo {
			b.WriteString("endo ")
		} else {
			b.WriteString("exo  ")
		}
		b.WriteString(sf.fact.String())
		b.WriteByte('\n')
	}
	return b.String()
}
