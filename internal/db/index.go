package db

import "sync"

// RelIndex is a hash index over the facts of one relation, keyed by the
// argument values at a fixed tuple of positions. Buckets preserve insertion
// order, so index-driven evaluation visits facts in exactly the order a full
// relation scan would. A RelIndex is a snapshot: it reflects the facts
// present when Index returned it (databases are append-only, so a snapshot
// is never wrong about the facts it contains).
type RelIndex struct {
	positions []int
	buckets   map[string][]Fact
}

// indexCache is the per-database cache of lazily built RelIndexes. The zero
// value is ready to use, which is what gives the copy-on-write constructors
// (Clone, WithoutRelation, Restrict, ...) a fresh empty cache for free.
type indexCache struct {
	mu sync.Mutex
	m  map[string]*cachedIndex
}

type cachedIndex struct {
	n   int // relation fact count at build time; append-only ⇒ staleness test
	idx *RelIndex
}

// indexKey renders the cache key for (rel, positions). Arities are tiny, so
// one byte per position is always enough.
func indexKey(rel string, positions []int) string {
	b := make([]byte, 0, len(rel)+1+len(positions))
	b = append(b, rel...)
	b = append(b, 0)
	for _, p := range positions {
		b = append(b, byte(p))
	}
	return string(b)
}

// Index returns a hash index over rel keyed by the argument values at the
// given positions, building and caching it on first use. Positions must be
// valid argument indices for the relation's arity; they need not be sorted
// but the same tuple should be passed in the same order to hit the cache.
// The index reflects the facts present at call time; facts added later are
// invisible to the returned handle (the cache rebuilds automatically on the
// next Index call once the relation has grown).
func (d *Database) Index(rel string, positions []int) *RelIndex {
	sfs := d.rels[rel]
	d.idx.mu.Lock()
	defer d.idx.mu.Unlock()
	key := indexKey(rel, positions)
	if d.idx.m == nil {
		d.idx.m = make(map[string]*cachedIndex)
	}
	if c, ok := d.idx.m[key]; ok && c.n == len(sfs) {
		return c.idx
	}
	idx := &RelIndex{
		positions: append([]int(nil), positions...),
		buckets:   make(map[string][]Fact, len(sfs)),
	}
	var buf []byte
	for _, sf := range sfs {
		buf = buf[:0]
		for i, p := range positions {
			if i > 0 {
				buf = append(buf, 0)
			}
			buf = append(buf, sf.fact.Args[p]...)
		}
		idx.buckets[string(buf)] = append(idx.buckets[string(buf)], sf.fact)
	}
	d.idx.m[key] = &cachedIndex{n: len(sfs), idx: idx}
	return idx
}

// Lookup returns the facts whose arguments at the index's positions equal
// vals (aligned with the positions passed to Index), in insertion order.
// The returned slice is shared with the index and must not be mutated.
// scratch, if non-nil, is reused as the probe-key buffer so warm lookups
// allocate nothing; pass the returned buffer back on the next call.
func (x *RelIndex) Lookup(vals []Const, scratch []byte) ([]Fact, []byte) {
	scratch = scratch[:0]
	for i, v := range vals {
		if i > 0 {
			scratch = append(scratch, 0)
		}
		scratch = append(scratch, v...)
	}
	return x.buckets[string(scratch)], scratch
}

// LookupKey is Lookup for a probe key already rendered by a previous Lookup
// (or by joining the values with NUL bytes); it exists for callers that
// build keys incrementally.
func (x *RelIndex) LookupKey(key []byte) []Fact {
	return x.buckets[string(key)]
}

// Positions returns the argument positions the index is keyed on. The
// returned slice is shared and must not be mutated.
func (x *RelIndex) Positions() []int { return x.positions }

// RelationSize returns the number of facts of rel without copying them
// (RelationFacts copies; the planners only need the count).
func (d *Database) RelationSize(rel string) int { return len(d.rels[rel]) }
