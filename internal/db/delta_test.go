package db

import (
	"strings"
	"testing"
)

func TestDeltaApplyAddRemove(t *testing.T) {
	d := MustParse("exo Stud(Ann)\nendo TA(Ann)\nendo Reg(Ann, OS)")
	out, err := d.Apply(Delta{
		AddEndo: []Fact{F("TA", "Bob")},
		AddExo:  []Fact{F("Stud", "Bob")},
		Remove:  []Fact{F("Reg", "Ann", "OS")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Original is untouched.
	if d.NumFacts() != 3 || !d.Contains(F("Reg", "Ann", "OS")) {
		t.Fatalf("delta mutated the receiver: %v", d)
	}
	if out.NumFacts() != 4 || out.Contains(F("Reg", "Ann", "OS")) {
		t.Fatalf("unexpected result: %v", out)
	}
	if !out.IsEndogenous(F("TA", "Bob")) || !out.IsExogenous(F("Stud", "Bob")) {
		t.Fatalf("added facts carry wrong flags: %v", out)
	}
	// Insertion order: survivors first, then AddEndo, then AddExo.
	keys := make([]string, 0, 4)
	for _, f := range out.Facts() {
		keys = append(keys, f.Key())
	}
	want := "Stud(Ann) TA(Ann) TA(Bob) Stud(Bob)"
	if got := strings.Join(keys, " "); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestDeltaApplyFlipEndogeneity(t *testing.T) {
	d := MustParse("endo TA(Ann)\nendo TA(Bob)")
	out, err := d.Apply(Delta{
		Remove: []Fact{F("TA", "Ann")},
		AddExo: []Fact{F("TA", "Ann")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsExogenous(F("TA", "Ann")) || out.NumEndo() != 1 {
		t.Fatalf("flip failed: %v", out)
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	d := MustParse("endo TA(Ann)")
	cases := []struct {
		name string
		dl   Delta
	}{
		{"remove absent", Delta{Remove: []Fact{F("TA", "Zoe")}}},
		{"remove twice", Delta{Remove: []Fact{F("TA", "Ann"), F("TA", "Ann")}}},
		{"duplicate add", Delta{AddEndo: []Fact{F("TA", "Ann")}}},
		{"duplicate within delta", Delta{AddEndo: []Fact{F("TA", "Zoe")}, AddExo: []Fact{F("TA", "Zoe")}}},
		{"arity clash", Delta{AddEndo: []Fact{F("TA", "Zoe", "CS")}}},
	}
	for _, tc := range cases {
		if _, err := d.Apply(tc.dl); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	// Errors must not leave partial state behind on the receiver.
	if d.NumFacts() != 1 {
		t.Fatalf("receiver mutated on error: %v", d)
	}
}

func TestDeltaEmptyAndSize(t *testing.T) {
	if !(Delta{}).Empty() || (Delta{}).Size() != 0 {
		t.Fatal("zero delta must be empty")
	}
	dl := Delta{AddEndo: []Fact{F("R", "a")}, Remove: []Fact{F("S", "b")}}
	if dl.Empty() || dl.Size() != 2 {
		t.Fatalf("Empty/Size wrong for %v", dl)
	}
	d := MustParse("endo R(a)")
	out, err := d.Apply(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint() != d.Fingerprint() {
		t.Fatal("empty delta changed content")
	}
}
