package db

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndMembership(t *testing.T) {
	d := New()
	if err := d.AddExo(F("R", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEndo(F("S", "a")); err != nil {
		t.Fatal(err)
	}
	if !d.Contains(F("R", "a", "b")) || !d.Contains(F("S", "a")) {
		t.Fatal("missing inserted facts")
	}
	if d.Contains(F("R", "b", "a")) {
		t.Fatal("phantom fact")
	}
	if !d.IsExogenous(F("R", "a", "b")) || d.IsEndogenous(F("R", "a", "b")) {
		t.Fatal("wrong endogeneity for R(a,b)")
	}
	if !d.IsEndogenous(F("S", "a")) {
		t.Fatal("wrong endogeneity for S(a)")
	}
	if d.IsEndogenous(F("T", "x")) || d.IsExogenous(F("T", "x")) {
		t.Fatal("absent fact reported present")
	}
}

func TestDuplicateRejected(t *testing.T) {
	d := New()
	d.MustAddExo(F("R", "a"))
	if err := d.AddExo(F("R", "a")); err == nil {
		t.Fatal("duplicate exo accepted")
	}
	if err := d.AddEndo(F("R", "a")); err == nil {
		t.Fatal("duplicate with different flag accepted")
	}
}

func TestArityClash(t *testing.T) {
	d := New()
	d.MustAddExo(F("R", "a"))
	if err := d.AddExo(F("R", "a", "b")); err == nil {
		t.Fatal("arity clash accepted")
	}
	if a, ok := d.Arity("R"); !ok || a != 1 {
		t.Fatalf("Arity(R) = %d,%v want 1,true", a, ok)
	}
	if _, ok := d.Arity("Z"); ok {
		t.Fatal("unknown relation has arity")
	}
}

func TestEmptyRelationSymbolRejected(t *testing.T) {
	d := New()
	if err := d.Add(Fact{Rel: ""}, false); err == nil {
		t.Fatal("empty relation symbol accepted")
	}
}

func TestPartitionAndOrder(t *testing.T) {
	d := New()
	d.MustAddExo(F("R", "1"))
	d.MustAddEndo(F("R", "2"))
	d.MustAddExo(F("S", "3"))
	d.MustAddEndo(F("R", "4"))

	endo := d.EndoFacts()
	if len(endo) != 2 || endo[0].Key() != "R(2)" || endo[1].Key() != "R(4)" {
		t.Fatalf("EndoFacts order wrong: %v", endo)
	}
	exo := d.ExoFacts()
	if len(exo) != 2 || exo[0].Key() != "R(1)" || exo[1].Key() != "S(3)" {
		t.Fatalf("ExoFacts order wrong: %v", exo)
	}
	if d.NumFacts() != 4 || d.NumEndo() != 2 {
		t.Fatalf("counts: %d facts, %d endo", d.NumFacts(), d.NumEndo())
	}
	rf := d.RelationFacts("R")
	if len(rf) != 3 || rf[0].Key() != "R(1)" || rf[2].Key() != "R(4)" {
		t.Fatalf("RelationFacts order wrong: %v", rf)
	}
	rels := d.Relations()
	if len(rels) != 2 || rels[0] != "R" || rels[1] != "S" {
		t.Fatalf("Relations = %v", rels)
	}
}

func TestDomainSortedDeduped(t *testing.T) {
	d := New()
	d.MustAddExo(F("R", "b", "a"))
	d.MustAddEndo(F("S", "a", "c"))
	dom := d.Domain()
	want := []Const{"a", "b", "c"}
	if len(dom) != 3 {
		t.Fatalf("domain %v", dom)
	}
	for i := range want {
		if dom[i] != want[i] {
			t.Fatalf("domain %v, want %v", dom, want)
		}
	}
}

func TestRelationEndogenous(t *testing.T) {
	d := New()
	d.MustAddExo(F("R", "a"))
	d.MustAddEndo(F("S", "b"))
	if d.RelationEndogenous("R") {
		t.Fatal("R should be all-exogenous")
	}
	if !d.RelationEndogenous("S") {
		t.Fatal("S has an endogenous fact")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New()
	d.MustAddEndo(F("R", "a"))
	c := d.Clone()
	c.MustAddEndo(F("R", "b"))
	if d.Contains(F("R", "b")) {
		t.Fatal("clone shares storage with original")
	}
}

func TestWithExogenous(t *testing.T) {
	d := New()
	d.MustAddEndo(F("R", "a"))
	d.MustAddEndo(F("R", "b"))
	d2, err := d.WithExogenous(F("R", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.IsExogenous(F("R", "a")) || !d2.IsEndogenous(F("R", "b")) {
		t.Fatal("WithExogenous moved wrong facts")
	}
	if !d.IsEndogenous(F("R", "a")) {
		t.Fatal("WithExogenous mutated original")
	}
	if _, err := d.WithExogenous(F("R", "z")); err == nil {
		t.Fatal("WithExogenous accepted absent fact")
	}
	if _, err := d2.WithExogenous(F("R", "a")); err == nil {
		t.Fatal("WithExogenous accepted exogenous fact")
	}
}

func TestWithout(t *testing.T) {
	d := New()
	d.MustAddEndo(F("R", "a"))
	d.MustAddExo(F("R", "b"))
	d2, err := d.Without(F("R", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Contains(F("R", "a")) || !d2.Contains(F("R", "b")) {
		t.Fatal("Without removed wrong facts")
	}
	if _, err := d.Without(F("R", "z")); err == nil {
		t.Fatal("Without accepted absent fact")
	}
}

func TestRestrict(t *testing.T) {
	d := New()
	d.MustAddEndo(F("R", "a"))
	d.MustAddExo(F("S", "b"))
	only := d.Restrict(func(f Fact, endo bool) bool { return endo })
	if only.NumFacts() != 1 || !only.Contains(F("R", "a")) {
		t.Fatalf("Restrict kept %v", only.Facts())
	}
}

func TestFactEqualAndKey(t *testing.T) {
	a := F("R", "x", "y")
	b := F("R", "x", "y")
	if !a.Equal(b) {
		t.Fatal("equal facts not Equal")
	}
	if a.Equal(F("R", "x")) || a.Equal(F("S", "x", "y")) || a.Equal(F("R", "x", "z")) {
		t.Fatal("unequal facts Equal")
	}
	if a.Key() != "R(x,y)" || a.Arity() != 2 {
		t.Fatalf("Key=%s Arity=%d", a.Key(), a.Arity())
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
# running example fragment
exo  Stud(Adam)
endo TA(Adam)
endo Reg(Adam, OS)
exo  Course(OS, EE)
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFacts() != 4 || d.NumEndo() != 2 {
		t.Fatalf("parsed %d facts, %d endo", d.NumFacts(), d.NumEndo())
	}
	d2, err := Parse(d.String())
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if d2.String() != d.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", d.String(), d2.String())
	}
}

func TestParseQuotedConstants(t *testing.T) {
	d, err := Parse("exo R('hello world', 'a,b')")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Contains(NewFact("R", "hello world", "a,b")) {
		t.Fatalf("quoted constants mis-parsed: %v", d.Facts())
	}
}

func TestParseZeroAry(t *testing.T) {
	d, err := Parse("endo Flag()")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Contains(NewFact("Flag")) {
		t.Fatal("zero-ary fact mis-parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"R(a)",               // missing marker
		"both R(a)",          // bad marker
		"exo R(a",            // missing paren
		"exo (a)",            // missing relation
		"exo R(a, 'oops)",    // unterminated quote
		"exo R(,a)",          // empty constant
		"exo R(a) exo R(b)",  // trailing junk becomes bad constant list
		"endo 9R(a)",         // relation starts with digit
		"exo R(a)\nexo R(a)", // duplicate
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("nonsense")
}

func TestParseFactWhitespace(t *testing.T) {
	f, err := ParseFact("R( a ,  b )")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(F("R", "a", "b")) {
		t.Fatalf("got %v", f)
	}
}

// Property: String/Parse round-trips databases built from arbitrary small
// fact sets.
func TestQuickRoundTrip(t *testing.T) {
	rels := []string{"R", "S", "T"}
	f := func(spec []uint8) bool {
		d := New()
		for _, b := range spec {
			rel := rels[int(b)%3]
			arg := Const(strings.Repeat("a", int(b)%4+1))
			fact := Fact{Rel: rel, Args: []Const{arg}}
			if d.Contains(fact) {
				continue
			}
			d.MustAdd(fact, b%2 == 0)
		}
		d2, err := Parse(d.String())
		return err == nil && d2.String() == d.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Fingerprint must be insertion-order independent, flag sensitive and
// content sensitive — it keys the serving layer's cross-query plan cache.
func TestFingerprint(t *testing.T) {
	a := New()
	a.MustAddExo(F("R", "x"))
	a.MustAddEndo(F("S", "y"))
	b := New()
	b.MustAddEndo(F("S", "y"))
	b.MustAddExo(F("R", "x"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint must not depend on insertion order")
	}
	c := New()
	c.MustAddEndo(F("R", "x")) // same facts, R flipped to endogenous
	c.MustAddEndo(F("S", "y"))
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint must distinguish endogenous from exogenous")
	}
	d := New()
	d.MustAddExo(F("R", "x"))
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("fingerprint must depend on the fact set")
	}
	if len(a.Fingerprint()) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(a.Fingerprint()))
	}
}
