package db

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a database from its textual format: one fact per line,
// prefixed with "exo" or "endo", e.g.
//
//	# the running example (fragment)
//	exo  Stud(Adam)
//	endo TA(Adam)
//	endo Reg(Adam, OS)
//
// Blank lines and lines starting with '#' or '%' are ignored. Constants are
// bare identifiers (letters, digits, '_', '-', '.', '<', '>') or
// single-quoted strings (which may contain any character except a quote).
func Parse(text string) (*Database, error) {
	d := New()
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("db: line %d: want '<exo|endo> Fact(...)', got %q", lineNo+1, line)
		}
		var endo bool
		switch strings.TrimSpace(fields[0]) {
		case "exo":
			endo = false
		case "endo":
			endo = true
		default:
			return nil, fmt.Errorf("db: line %d: unknown marker %q (want exo or endo)", lineNo+1, fields[0])
		}
		f, err := ParseFact(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("db: line %d: %v", lineNo+1, err)
		}
		if err := d.Add(f, endo); err != nil {
			return nil, fmt.Errorf("db: line %d: %v", lineNo+1, err)
		}
	}
	return d, nil
}

// MustParse is Parse that panics on error; intended for fixtures.
func MustParse(text string) *Database {
	d, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseFact parses a single fact "R(c1, c2, ...)". Zero-ary facts are
// written "R()".
func ParseFact(s string) (Fact, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Fact{}, fmt.Errorf("malformed fact %q", s)
	}
	rel := strings.TrimSpace(s[:open])
	if !validIdent(rel) {
		return Fact{}, fmt.Errorf("malformed relation symbol %q", rel)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return Fact{Rel: rel}, nil
	}
	parts, err := splitArgs(inner)
	if err != nil {
		return Fact{}, fmt.Errorf("fact %q: %v", s, err)
	}
	args := make([]Const, len(parts))
	for i, p := range parts {
		c, err := parseConst(p)
		if err != nil {
			return Fact{}, fmt.Errorf("fact %q: %v", s, err)
		}
		args[i] = c
	}
	return Fact{Rel: rel, Args: args}, nil
}

// splitArgs splits a comma-separated argument list, honoring single quotes.
func splitArgs(s string) ([]string, error) {
	var parts []string
	var cur strings.Builder
	inQuote := false
	for _, r := range s {
		switch {
		case r == '\'':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			parts = append(parts, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in %q", s)
	}
	parts = append(parts, strings.TrimSpace(cur.String()))
	return parts, nil
}

func parseConst(s string) (Const, error) {
	if s == "" {
		return "", fmt.Errorf("empty constant")
	}
	if strings.HasPrefix(s, "'") {
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return "", fmt.Errorf("malformed quoted constant %q", s)
		}
		return Const(s[1 : len(s)-1]), nil
	}
	if !validConstToken(s) {
		return "", fmt.Errorf("malformed constant %q", s)
	}
	return Const(s), nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && (unicode.IsDigit(r) || r == '\'')) {
			continue
		}
		return false
	}
	return true
}

func validConstToken(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) ||
			r == '_' || r == '-' || r == '.' || r == '<' || r == '>' || r == '$' {
			continue
		}
		return false
	}
	return s != ""
}
