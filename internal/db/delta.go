package db

import "fmt"

// Version is a monotone database version number. Handles that maintain
// state derived from a database (core.Plan, the serving layer's registered
// databases) bump it on every applied Delta, so cached artifacts can be
// revalidated with a single integer comparison instead of re-hashing the
// content.
type Version uint64

// Delta is a batch of fact insertions and removals to apply to a database.
// Removals are applied before insertions, so a single delta can flip a
// fact's endogeneity by listing it in Remove and in AddExo (or AddEndo).
type Delta struct {
	// AddEndo lists facts to insert as endogenous (new Shapley players).
	AddEndo []Fact
	// AddExo lists facts to insert as exogenous.
	AddExo []Fact
	// Remove lists facts to delete; each must be present (with either flag).
	Remove []Fact
}

// Empty reports whether the delta performs no mutation at all.
func (dl Delta) Empty() bool {
	return len(dl.AddEndo) == 0 && len(dl.AddExo) == 0 && len(dl.Remove) == 0
}

// Size returns the number of individual fact mutations in the delta.
func (dl Delta) Size() int {
	return len(dl.AddEndo) + len(dl.AddExo) + len(dl.Remove)
}

// String renders the delta compactly for error messages and logs.
func (dl Delta) String() string {
	return fmt.Sprintf("delta{+endo:%d +exo:%d -:%d}", len(dl.AddEndo), len(dl.AddExo), len(dl.Remove))
}

// Apply returns a new database with the delta applied; d is unchanged. The
// relative insertion order of surviving facts is preserved and added facts
// append in AddEndo-then-AddExo order, so all downstream algorithms remain
// deterministic. It is an error to remove an absent fact, to insert a
// duplicate (against the post-removal state), or to violate per-relation
// arity consistency.
func (d *Database) Apply(dl Delta) (*Database, error) {
	removed := make(map[string]bool, len(dl.Remove))
	for _, f := range dl.Remove {
		key := f.Key()
		if !d.Contains(f) {
			return nil, fmt.Errorf("db: delta removes %s, which is not a fact of the database", key)
		}
		if removed[key] {
			return nil, fmt.Errorf("db: delta removes %s twice", key)
		}
		removed[key] = true
	}
	out := newSized(len(d.order)+len(dl.AddEndo)+len(dl.AddExo), len(d.rels))
	for _, sf := range d.order {
		if removed[sf.key] {
			continue
		}
		if err := out.addKeyed(sf.fact, sf.key, sf.dig, sf.endo); err != nil {
			return nil, err
		}
	}
	for _, f := range dl.AddEndo {
		if err := out.Add(f, true); err != nil {
			return nil, fmt.Errorf("db: delta add endo: %w", err)
		}
	}
	for _, f := range dl.AddExo {
		if err := out.Add(f, false); err != nil {
			return nil, fmt.Errorf("db: delta add exo: %w", err)
		}
	}
	return out, nil
}
