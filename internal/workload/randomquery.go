package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
)

// RandomCQConfig shapes random query generation.
type RandomCQConfig struct {
	MaxAtoms  int     // at most this many atoms (at least 1 positive)
	MaxVars   int     // variable pool size
	MaxArity  int     // per-relation arity
	NegProb   float64 // probability an eligible atom is negated
	ExoProb   float64 // probability a relation is declared exogenous
	ConstProb float64 // probability an argument is a constant
}

// DefaultRandomCQConfig is tuned for differential testing: small queries
// with a healthy mix of negation, constants and exogenous declarations.
func DefaultRandomCQConfig() RandomCQConfig {
	return RandomCQConfig{MaxAtoms: 4, MaxVars: 3, MaxArity: 2, NegProb: 0.4, ExoProb: 0.4, ConstProb: 0.15}
}

// RandomCQ generates a random safe self-join-free CQ¬ together with a
// random exogenous-relation declaration. Safety is enforced by negating
// only atoms whose variables are covered by the positive atoms.
func RandomCQ(rng *rand.Rand, cfg RandomCQConfig) (*query.CQ, map[string]bool) {
	nAtoms := 1 + rng.Intn(cfg.MaxAtoms)
	q := &query.CQ{Label: "rand"}
	for i := 0; i < nAtoms; i++ {
		arity := 1 + rng.Intn(cfg.MaxArity)
		args := make([]query.Term, arity)
		for j := range args {
			if rng.Float64() < cfg.ConstProb {
				args[j] = query.C(fmt.Sprintf("K%d", rng.Intn(2)))
			} else {
				args[j] = query.V(fmt.Sprintf("v%d", rng.Intn(cfg.MaxVars)))
			}
		}
		q.Atoms = append(q.Atoms, query.Atom{Rel: fmt.Sprintf("R%d", i), Args: args})
	}
	// Negate a subset of atoms, keeping the query safe: a variable may end
	// up negated-only, in which case we flip the offending atoms back.
	for i := range q.Atoms {
		if rng.Float64() < cfg.NegProb {
			q.Atoms[i].Negated = true
		}
	}
	for {
		posVars := make(map[string]bool)
		for _, i := range q.Positive() {
			for _, x := range q.Atoms[i].Vars() {
				posVars[x] = true
			}
		}
		fixed := false
		for i := range q.Atoms {
			if !q.Atoms[i].Negated {
				continue
			}
			for _, x := range q.Atoms[i].Vars() {
				if !posVars[x] {
					q.Atoms[i].Negated = false
					fixed = true
					break
				}
			}
		}
		if !fixed {
			break
		}
	}
	exo := make(map[string]bool)
	for _, rel := range q.Relations() {
		if rng.Float64() < cfg.ExoProb {
			exo[rel] = true
		}
	}
	return q, exo
}
