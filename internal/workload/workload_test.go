package workload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

func TestRandomForQueryShape(t *testing.T) {
	q := query.MustParse("q() :- R(x), S(x, y), !T(y)")
	rng := rand.New(rand.NewSource(1))
	d := RandomForQuery(rng, q, 4, 5, map[string]bool{"S": true}, 0.8)
	if a, ok := d.Arity("S"); ok && a != 2 {
		t.Fatalf("S arity %d, want 2", a)
	}
	for _, f := range d.RelationFacts("S") {
		if d.IsEndogenous(f) {
			t.Fatalf("exogenous relation S got endogenous fact %s", f)
		}
	}
	if d.NumFacts() == 0 {
		t.Fatal("empty instance")
	}
}

func TestRandomForQueryDeterministic(t *testing.T) {
	q := query.MustParse("q() :- R(x, y)")
	a := RandomForQuery(rand.New(rand.NewSource(7)), q, 3, 6, nil, 0.5)
	b := RandomForQuery(rand.New(rand.NewSource(7)), q, 3, 6, nil, 0.5)
	if a.String() != b.String() {
		t.Fatal("same seed must yield the same instance")
	}
}

func TestUniversityInstanceIsQ1Tractable(t *testing.T) {
	d := University(UniversityConfig{Students: 30, Courses: 8, RegPerStudent: 2, TAFraction: 0.4, Seed: 3})
	if d.NumEndo() == 0 {
		t.Fatal("no endogenous facts")
	}
	q1 := query.MustParse("q1() :- Stud(x), !TA(x), Reg(x, y)")
	// The hierarchical algorithm must handle instances far beyond brute
	// force: 60+ endogenous facts here.
	f := d.EndoFacts()[0]
	if _, err := core.ShapleyHierarchical(d, q1, f); err != nil {
		t.Fatal(err)
	}
	// Schema endogeneity invariants.
	for _, rel := range []string{"Stud", "Course", "Adv"} {
		if d.RelationEndogenous(rel) {
			t.Fatalf("%s must be all-exogenous", rel)
		}
	}
}

func TestUniversityRegCap(t *testing.T) {
	d := University(UniversityConfig{Students: 3, Courses: 2, RegPerStudent: 10, TAFraction: 0, Seed: 1})
	if got := len(d.RelationFacts("Reg")); got != 6 {
		t.Fatalf("Reg facts = %d, want 3 students × 2 courses", got)
	}
}

func TestExportsInstance(t *testing.T) {
	d := Exports(4, 3, 3, 2, 9)
	q := query.MustParse("q() :- Farmer(m), Export(m, p, c), !Grows(c, p)")
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, f := range d.RelationFacts("Export") {
		if !d.IsEndogenous(f) {
			t.Fatalf("Export fact %s must be endogenous", f)
		}
	}
	for _, rel := range []string{"Farmer", "Grows"} {
		if d.RelationEndogenous(rel) {
			t.Fatalf("%s must be all-exogenous", rel)
		}
	}
}
