package workload

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

func TestRandomCQAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cfg := DefaultRandomCQConfig()
	negSeen, exoSeen, constSeen := false, false, false
	for trial := 0; trial < 500; trial++ {
		q, exo := RandomCQ(rng, cfg)
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid random query %s: %v", q, err)
		}
		if q.HasSelfJoin() {
			t.Fatalf("random query has self-join: %s", q)
		}
		for rel := range exo {
			found := false
			for _, r := range q.Relations() {
				if r == rel {
					found = true
				}
			}
			if !found {
				t.Fatalf("exogenous declaration %s not a relation of %s", rel, q)
			}
		}
		if len(q.Negative()) > 0 {
			negSeen = true
		}
		if len(exo) > 0 {
			exoSeen = true
		}
		for _, a := range q.Atoms {
			for _, tm := range a.Args {
				if !tm.IsVar() {
					constSeen = true
				}
			}
		}
	}
	if !negSeen || !exoSeen || !constSeen {
		t.Fatalf("generator diversity too low: neg=%v exo=%v const=%v", negSeen, exoSeen, constSeen)
	}
}

func TestRandomCQRoundTripsThroughParser(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	cfg := DefaultRandomCQConfig()
	for trial := 0; trial < 200; trial++ {
		q, _ := RandomCQ(rng, cfg)
		q.Label = "rt"
		parsed, err := query.Parse(q.String())
		if err != nil {
			t.Fatalf("round trip of %q: %v", q.String(), err)
		}
		if parsed.String() != q.String() {
			t.Fatalf("round trip changed query: %q vs %q", q.String(), parsed.String())
		}
	}
}

func TestRandomCQDeterministic(t *testing.T) {
	a, _ := RandomCQ(rand.New(rand.NewSource(9)), DefaultRandomCQConfig())
	b, _ := RandomCQ(rand.New(rand.NewSource(9)), DefaultRandomCQConfig())
	if a.String() != b.String() {
		t.Fatalf("same seed should give same query: %s vs %s", a, b)
	}
}
