// Package workload generates databases for tests, experiments and
// benchmarks: generic random instances shaped to a query's schema, scaled
// university instances matching the paper's running example, and scaled
// instances of the §4.1 and intro queries.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/db"
	"repro/internal/query"
)

// RandomForQuery builds a random database over the relations of q: perRel
// random facts per relation over a domain of domSize constants. Relations
// in exo get only exogenous facts; other facts are endogenous with
// probability endoProb.
func RandomForQuery(rng *rand.Rand, q *query.CQ, domSize, perRel int, exo map[string]bool, endoProb float64) *db.Database {
	d := db.New()
	dom := make([]db.Const, domSize)
	for i := range dom {
		dom[i] = db.Const(fmt.Sprintf("d%d", i))
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	for _, rel := range q.Relations() {
		for i := 0; i < perRel; i++ {
			args := make([]db.Const, arity[rel])
			for j := range args {
				args[j] = dom[rng.Intn(domSize)]
			}
			f := db.Fact{Rel: rel, Args: args}
			if d.Contains(f) {
				continue
			}
			endo := !exo[rel] && rng.Float64() < endoProb
			d.MustAdd(f, endo)
		}
	}
	return d
}

// UniversityConfig parameterizes the scaled running-example generator.
type UniversityConfig struct {
	Students      int
	Courses       int
	RegPerStudent int     // registrations per student (capped by Courses)
	TAFraction    float64 // fraction of students that are TAs

	// ExoRegFraction makes this share of registrations exogenous. The
	// large bench workloads use it to scale total facts (tree size, and
	// so Prepare cost) independently of the endogenous count that sets
	// the Shapley coefficient-vector length: 50k facts with every Reg
	// endogenous would put five-digit-length big-integer vectors in
	// every convolution, which measures bignum arithmetic rather than
	// tree construction. Zero (the default) keeps the original
	// all-endogenous behavior — and the original random stream, so
	// seeded instances from earlier baselines are unchanged.
	ExoRegFraction float64

	Seed int64
}

// University builds a scaled instance of the Figure 1 schema: exogenous
// Stud, Course and Adv facts, endogenous TA and Reg facts. It is the
// workload for the dichotomy-scaling experiments: q1 stays polynomial on it
// while brute force explodes with the number of endogenous facts.
func University(cfg UniversityConfig) *db.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := db.New()
	for c := 0; c < cfg.Courses; c++ {
		faculty := "EE"
		if c%2 == 1 {
			faculty = "CS"
		}
		d.MustAddExo(db.NewFact("Course", course(c), db.Const(faculty)))
	}
	for s := 0; s < cfg.Students; s++ {
		d.MustAddExo(db.NewFact("Stud", student(s)))
		d.MustAddExo(db.NewFact("Adv", advisor(s%7), student(s)))
		if rng.Float64() < cfg.TAFraction {
			d.MustAddEndo(db.NewFact("TA", student(s)))
		}
		regs := cfg.RegPerStudent
		if regs > cfg.Courses {
			regs = cfg.Courses
		}
		for _, c := range rng.Perm(cfg.Courses)[:regs] {
			f := db.NewFact("Reg", student(s), course(c))
			if cfg.ExoRegFraction > 0 && rng.Float64() < cfg.ExoRegFraction {
				d.MustAddExo(f)
			} else {
				d.MustAddEndo(f)
			}
		}
	}
	return d
}

func student(i int) db.Const { return db.Const(fmt.Sprintf("S%d", i)) }
func course(i int) db.Const  { return db.Const(fmt.Sprintf("C%d", i)) }
func advisor(i int) db.Const { return db.Const(fmt.Sprintf("A%d", i)) }

// Exports builds a scaled instance of the introduction's farmer schema:
// exogenous Farmer and Grows facts, endogenous Export facts.
func Exports(farmers, products, countries, exportsPerFarmer int, seed int64) *db.Database {
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	for f := 0; f < farmers; f++ {
		d.MustAddExo(db.NewFact("Farmer", db.Const(fmt.Sprintf("F%d", f))))
	}
	for c := 0; c < countries; c++ {
		for p := 0; p < products; p++ {
			if rng.Intn(2) == 0 {
				d.MustAddExo(db.NewFact("Grows",
					db.Const(fmt.Sprintf("K%d", c)), db.Const(fmt.Sprintf("P%d", p))))
			}
		}
	}
	for f := 0; f < farmers; f++ {
		for i := 0; i < exportsPerFarmer; i++ {
			fact := db.NewFact("Export",
				db.Const(fmt.Sprintf("F%d", f)),
				db.Const(fmt.Sprintf("P%d", rng.Intn(products))),
				db.Const(fmt.Sprintf("K%d", rng.Intn(countries))))
			if !d.Contains(fact) {
				d.MustAddEndo(fact)
			}
		}
	}
	return d
}
