package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
		"E20",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d has ID %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Paper == "" || all[i].Run == nil {
			t.Errorf("experiment %s is incomplete", all[i].ID)
		}
	}
	if _, ok := ByID("E01"); !ok {
		t.Fatal("ByID(E01) not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) should not exist")
	}
}

// TestAllExperimentsRun executes every experiment; each runner validates its
// own paper-derived expectations and returns an error on any mismatch, so
// this is the end-to-end reproduction check.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestE01OutputMentionsPaperValues(t *testing.T) {
	e, _ := ByID("E01")
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, v := range []string{"-3/28", "-2/35", "37/210", "27/140", "13/42"} {
		if !strings.Contains(out, v) {
			t.Errorf("E01 output missing paper value %s:\n%s", v, out)
		}
	}
}

func TestE03OutputCoversBothOutcomes(t *testing.T) {
	e, _ := ByID("E03")
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "yes") || !strings.Contains(out, "no") {
		t.Errorf("E03 should report both path outcomes:\n%s", out)
	}
}
