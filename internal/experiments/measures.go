package experiments

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/measures"
	"repro/internal/paperex"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Shapley value vs. causal effect vs. responsibility",
		Paper: "§1 (the measures the Shapley framework is positioned against)",
		Run:   runE19,
	})
}

// runE19 compares the three contribution measures the introduction
// discusses on the running example, and checks the structural relationships
// that must hold: sign agreement between Shapley value and causal effect
// for this polarity-consistent query, zero-for-zero on the irrelevant fact,
// and efficiency holding only for the Shapley value.
func runE19(w io.Writer) error {
	d := paperex.RunningExample()
	q1 := paperex.Q1()
	solver := &core.Solver{}
	t := newTable(w, "fact", "Shapley", "causal effect", "responsibility")
	shapleySum := new(big.Rat)
	ceSum := new(big.Rat)
	for _, f := range d.EndoFacts() {
		sv, err := solver.Shapley(d, q1, f)
		if err != nil {
			return err
		}
		ce, err := measures.CausalEffect(d, q1, f)
		if err != nil {
			return err
		}
		rho, err := measures.Responsibility(d, q1, f)
		if err != nil {
			return err
		}
		if sv.Value.Sign() != ce.Sign() {
			return fmt.Errorf("%s: Shapley sign %d disagrees with causal effect sign %d", f, sv.Value.Sign(), ce.Sign())
		}
		if (sv.Value.Sign() == 0) != (rho.Sign() == 0) {
			return fmt.Errorf("%s: zero Shapley value must coincide with zero responsibility here", f)
		}
		if rho.Sign() < 0 || rho.Cmp(big.NewRat(1, 1)) > 0 {
			return fmt.Errorf("%s: responsibility %s outside [0,1]", f, rho.RatString())
		}
		t.row(f.Key(), sv.Value.RatString(), ce.RatString(), rho.RatString())
		shapleySum.Add(shapleySum, sv.Value)
		ceSum.Add(ceSum, ce)
	}
	if err := t.flush(); err != nil {
		return err
	}
	if shapleySum.Cmp(big.NewRat(1, 1)) != 0 {
		return fmt.Errorf("Shapley efficiency violated: sum %s", shapleySum.RatString())
	}
	fmt.Fprintf(w, "\nShapley values sum to %s (efficiency); causal effects sum to %s (no efficiency);\n",
		shapleySum.RatString(), ceSum.RatString())
	fmt.Fprintln(w, "responsibility is sign-blind (TA and Reg facts both get positive scores).")

	// Divergence: responsibility ranks TA(Adam) and TA(Ben) equally (both
	// 1/3) although the Shapley value separates them (−3/28 vs −2/35) —
	// the granularity argument the Shapley framework makes in §1.
	ta1, err := measures.Responsibility(d, q1, db.F("TA", "Adam"))
	if err != nil {
		return err
	}
	ta2, err := measures.Responsibility(d, q1, db.F("TA", "Ben"))
	if err != nil {
		return err
	}
	if ta1.Cmp(ta2) == 0 {
		fmt.Fprintln(w, "responsibility cannot separate TA(Adam) from TA(Ben); the Shapley value can.")
	}
	return nil
}
