package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/paperex"
	"repro/internal/server"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Cluster mode: request coalescing and replica failover",
		Paper: "systems companion to §3 (per-fact independence makes the attribution service shardable and batchable)",
		Run:   runE20,
	})
}

// runE20 stands up a real cluster — a coalescing router in front of three
// shapleyd workers, replication 2 — and measures the two properties the
// cluster architecture claims: (1) a burst of concurrent identical
// single-fact requests collapses to a tiny number of worker sweeps (the
// paper's per-fact independence is what makes merging them sound), and
// (2) killing a replica mid-fleet costs availability nothing — requests
// fail over and answers stay correct, with recovery measured end to end.
func runE20(w io.Writer) error {
	const (
		workers     = 3
		replication = 2
		burst       = 48
		window      = 25 * time.Millisecond
	)

	cfg := &cluster.Config{Replication: replication}
	fleet := map[string]*server.Server{}
	listeners := map[string]*httptest.Server{}
	for i := 1; i <= workers; i++ {
		name := fmt.Sprintf("w%d", i)
		srv := server.New(server.Options{})
		hs := httptest.NewServer(srv)
		defer hs.Close()
		fleet[name] = srv
		listeners[name] = hs
		cfg.Workers = append(cfg.Workers, cluster.Worker{Name: name, URL: hs.URL})
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Config:         cfg,
		CoalesceWindow: window,
		ProbeInterval:  -1, // health transitions driven by request outcomes
	})
	if err != nil {
		return err
	}

	post := func(path string, body map[string]any) (int, []byte, error) {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes(), nil
	}

	if code, body, err := post("/v1/databases", map[string]any{
		"id": "uni", "text": paperex.UniversityDBText,
	}); err != nil || code != http.StatusCreated {
		return fmt.Errorf("register: code %d (%v): %s", code, err, body)
	}

	// Phase 1: the coalescing window. A burst of identical single-fact
	// requests should merge into very few worker computations.
	q1 := "q1() :- Stud(x), !TA(x), Reg(x, y)"
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures int
	)
	t0 := time.Now()
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, err := post("/v1/databases/uni/shapley", map[string]any{
				"query": q1, "fact": "TA(Adam)",
			})
			ok := err == nil && code == http.StatusOK &&
				bytes.Contains(body, []byte(`"shapley": "-3/28"`))
			if !ok {
				mu.Lock()
				failures++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	burstDur := time.Since(t0)
	computed := int64(0)
	for _, srv := range fleet {
		computed += srv.ValuesComputed()
	}
	coalesced := rt.CoalescedWindow()

	t := newTable(w, "phase", "requests", "worker sweeps", "coalesced", "ratio", "wall time")
	t.row("identical burst", fmt.Sprint(burst), fmt.Sprint(computed),
		fmt.Sprint(coalesced), fmt.Sprintf("%.1f:1", float64(burst)/float64(computed)),
		burstDur.Round(time.Millisecond).String())
	if err := t.flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d burst requests failed or returned a wrong value", failures, burst)
	}
	if computed >= int64(burst)/2 {
		return fmt.Errorf("coalescing ineffective: %d worker sweeps for %d identical requests", computed, burst)
	}
	if coalesced == 0 {
		return fmt.Errorf("no requests were window-coalesced across a %d-request burst", burst)
	}

	// Phase 2: failover. Kill the primary replica of "uni" and time how
	// long until a request succeeds again through the router (first
	// request eats the transport error and retries a peer in-line, so
	// recovery should be one round trip, not a probe interval).
	primary := rt.Ring().Owners("uni")[0]
	listeners[primary].Close()
	t1 := time.Now()
	code, body, err := post("/v1/databases/uni/shapley", map[string]any{
		"query": q1, "fact": "TA(Ben)",
	})
	recovery := time.Since(t1)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("request after killing %s: code %d (%v): %s", primary, code, err, body)
	}
	if !bytes.Contains(body, []byte(`"shapley": "-2/35"`)) {
		return fmt.Errorf("post-failover answer is wrong: %s", body)
	}

	fmt.Fprintf(w, "\nfailover: killed primary replica %s; next request served by a peer in %s (failovers counted: %d)\n",
		primary, recovery.Round(time.Microsecond), rt.Failovers())
	fmt.Fprintf(w, "coalescing merged %d of %d identical requests; every response carried the exact value -3/28 (Example 2.3)\n",
		coalesced, burst)
	return nil
}
