package experiments

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E01",
		Title: "Exact Shapley values on the running example",
		Paper: "Figure 1, Example 2.3 (and Appendix A)",
		Run:   runE01,
	})
	register(Experiment{
		ID:    "E02",
		Title: "Theorem 3.1 dichotomy: classification and scaling",
		Paper: "Theorem 3.1, Example 2.2",
		Run:   runE02,
	})
	register(Experiment{
		ID:    "E03",
		Title: "Non-hierarchical path detection",
		Paper: "Figure 2, Example 4.2",
		Run:   runE03,
	})
	register(Experiment{
		ID:    "E04",
		Title: "ExoShap transformation stages",
		Paper: "Figure 3, Examples 4.5-4.9, Algorithm 1",
		Run:   runE04,
	})
	register(Experiment{
		ID:    "E05",
		Title: "Exogenous relations flip tractability",
		Paper: "Section 4.1 (queries q and q'), Example 4.1",
		Run:   runE05,
	})
}

func runE01(w io.Writer) error {
	d := paperex.RunningExample()
	q1 := paperex.Q1()
	solver := &core.Solver{}
	// The all-facts workload goes through the batched engine (the same path
	// ShapleyAll takes, with an explicit worker pool); the table below then
	// pins every value against the paper and the brute-force oracle.
	vals, err := solver.ShapleyAllBatch(d, q1, core.BatchOptions{Workers: 4})
	if err != nil {
		return err
	}
	t := newTable(w, "fact", "Shapley (exact)", "decimal", "paper", "brute force agrees")
	sum := new(big.Rat)
	for _, v := range vals {
		want, ok := paperex.Example23Values[v.Fact.Key()]
		if !ok {
			return fmt.Errorf("unexpected endogenous fact %s", v.Fact)
		}
		wantRat, _ := new(big.Rat).SetString(want)
		if v.Value.Cmp(wantRat) != 0 {
			return fmt.Errorf("Shapley(%s) = %s, paper says %s", v.Fact, v.Value.RatString(), want)
		}
		brute, err := core.BruteForceShapley(d, q1, v.Fact)
		if err != nil {
			return err
		}
		agree := "yes"
		if brute.Cmp(v.Value) != 0 {
			agree = "NO"
		}
		f64, _ := v.Value.Float64()
		t.row(v.Fact.Key(), v.Value.RatString(), fmt.Sprintf("%+.6f", f64), want, agree)
		sum.Add(sum, v.Value)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsum of values = %s (efficiency: q(D) - q(Dx) = 1)\n", sum.RatString())
	if sum.Cmp(big.NewRat(1, 1)) != 0 {
		return fmt.Errorf("efficiency violated: sum = %s", sum.RatString())
	}
	return nil
}

func runE02(w io.Writer) error {
	queries := []*query.CQ{
		paperex.Q1(), paperex.Q2(), paperex.Q3(), paperex.Q4(),
		paperex.QRST(), paperex.QNegRSNegT(), paperex.QRNegST(), paperex.QRSNegT(),
	}
	t := newTable(w, "query", "self-join-free", "hierarchical", "Theorem 3.1 verdict")
	for _, q := range queries {
		c := core.Classify(q, nil)
		verdict := "FP#P-complete"
		if c.Hierarchical {
			verdict = "polynomial time"
		} else if !c.SelfJoinFree {
			verdict = "open (self-joins); hard by Thm B.5 patterns"
		}
		t.row(q.String(), yesNo(c.SelfJoinFree), yesNo(c.Hierarchical), verdict)
	}
	if err := t.flush(); err != nil {
		return err
	}

	// Scaling: the hierarchical algorithm vs brute force on q1 instances.
	fmt.Fprintf(w, "\nScaling on q1 (university workload), exact Shapley of one fact:\n")
	t2 := newTable(w, "endogenous facts", "hierarchical alg", "brute force")
	for _, students := range []int{3, 5, 7, 20, 60} {
		d := workload.University(workload.UniversityConfig{
			Students: students, Courses: 4, RegPerStudent: 1, TAFraction: 0.5, Seed: 42,
		})
		q1 := paperex.Q1()
		f := d.EndoFacts()[0]
		start := time.Now()
		if _, err := core.ShapleyHierarchical(d, q1, f); err != nil {
			return err
		}
		fast := time.Since(start)
		bruteCell := "skipped (exponential)"
		if d.NumEndo() <= 16 {
			start = time.Now()
			if _, err := core.BruteForceShapley(d, q1, f); err != nil {
				return err
			}
			bruteCell = time.Since(start).String()
		}
		t2.row(fmt.Sprintf("%d", d.NumEndo()), fast.String(), bruteCell)
	}
	return t2.flush()
}

func runE03(w io.Writer) error {
	t := newTable(w, "query", "exogenous relations", "non-hierarchical path", "witness")
	type pathCase struct {
		q    *query.CQ
		exo  map[string]bool
		want bool
	}
	cases := []pathCase{
		{paperex.Example42Q(), paperex.Example42QExo(), true},
		{paperex.Example42QPrime(), paperex.Example42QPrimeExo(), false},
		{paperex.Section41Q(), paperex.Section41Exo(), false},
		{paperex.Section41QPrime(), paperex.Section41Exo(), true},
		{paperex.Q2(), map[string]bool{"Stud": true, "Course": true}, false},
		{paperex.Example41Query(), paperex.Example41Exo(), false},
	}
	for _, c := range cases {
		witness, got := c.q.FindNonHierarchicalPath(c.exo)
		if got != c.want {
			return fmt.Errorf("%s: path=%v, paper says %v", c.q, got, c.want)
		}
		cell := "-"
		if got {
			cell = fmt.Sprintf("%s via %v", witness.X+"→"+witness.Y, witness.Path)
		}
		t.row(c.q.String(), fmt.Sprintf("%v", core.SortedRelNames(c.exo)), yesNo(got), cell)
	}
	return t.flush()
}

func runE04(w io.Writer) error {
	qp := paperex.Example42QPrime()
	exo := paperex.Example42QPrimeExo()
	rng := rand.New(rand.NewSource(4))
	d := workload.RandomForQuery(rng, qp, 2, 3, exo, 0.8)
	d2, q2, stages, err := core.ExoShapTransform(d, qp, exo)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "ExoShap stages on Example 4.2's q' (compare Figure 3):")
	for i, s := range stages {
		fmt.Fprintf(w, "  stage %d (%s):\n    %s\n", i, s.Description, s.Query)
	}
	fmt.Fprintf(w, "\nfinal query hierarchical: %v\n", q2.IsHierarchical())
	if !q2.IsHierarchical() {
		return fmt.Errorf("ExoShap output is not hierarchical")
	}
	// Verify value preservation on the sample instance.
	for _, f := range d.EndoFacts() {
		if d.NumEndo() > 10 {
			break
		}
		orig, err := core.BruteForceShapley(d, qp, f)
		if err != nil {
			return err
		}
		via, err := core.ShapleyHierarchical(d2, q2, f)
		if err != nil {
			return err
		}
		if orig.Cmp(via) != 0 {
			return fmt.Errorf("value changed for %s: %s vs %s", f, orig.RatString(), via.RatString())
		}
	}
	fmt.Fprintf(w, "Shapley values preserved on a random instance with %d endogenous facts: yes\n", d.NumEndo())
	return nil
}

func runE05(w io.Writer) error {
	t := newTable(w, "query", "X", "Theorem 4.3 verdict", "checked against brute force")
	type c45 struct {
		q   *query.CQ
		exo map[string]bool
	}
	rng := rand.New(rand.NewSource(45))
	for _, c := range []c45{
		{paperex.Section41Q(), paperex.Section41Exo()},
		{paperex.Section41QPrime(), paperex.Section41Exo()},
		{paperex.Example41Query(), paperex.Example41Exo()},
		{paperex.Q2(), map[string]bool{"Stud": true, "Course": true}},
	} {
		cls := core.Classify(c.q, c.exo)
		verdict := "FP#P-complete"
		if cls.Tractable {
			verdict = "polynomial time"
		}
		checked := "-"
		if cls.Tractable {
			d := workload.RandomForQuery(rng, c.q, 3, 3, c.exo, 0.7)
			solver := &core.Solver{ExoRelations: c.exo}
			ok := true
			for _, f := range d.EndoFacts() {
				if d.NumEndo() > 10 {
					break
				}
				v, err := solver.Shapley(d, c.q, f)
				if err != nil {
					return err
				}
				brute, err := core.BruteForceShapley(d, c.q, f)
				if err != nil {
					return err
				}
				if v.Value.Cmp(brute) != 0 {
					ok = false
				}
			}
			checked = yesNo(ok)
			if !ok {
				return fmt.Errorf("%s: ExoShap disagrees with brute force", c.q)
			}
		}
		t.row(c.q.String(), fmt.Sprintf("%v", core.SortedRelNames(c.exo)), verdict, checked)
	}
	return t.flush()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// ratStr formats a big.Rat with its decimal approximation.
func ratStr(r *big.Rat) string {
	f, _ := r.Float64()
	return fmt.Sprintf("%s (~%.4g)", r.RatString(), f)
}
