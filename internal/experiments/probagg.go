package experiments

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/probdb"
	"repro/internal/query"
)

func init() {
	register(Experiment{
		ID:    "E06",
		Title: "Probabilistic query evaluation with deterministic relations",
		Paper: "Theorem 4.10 (§4.3)",
		Run:   runE06,
	})
	register(Experiment{
		ID:    "E17",
		Title: "Aggregate Shapley values over CQ¬s by linearity",
		Paper: "§3 remark (Sum/Count over CQ¬), introduction's export query",
		Run:   runE17,
	})
}

func runE06(w io.Writer) error {
	q2 := paperex.Q2()
	deterministic := map[string]bool{"Stud": true, "Course": true}
	fmt.Fprintf(w, "query: %s, deterministic relations: Stud, Course\n\n", q2)
	t := newTable(w, "instance", "uncertain facts", "P(q) lifted (Thm 4.10)", "P(q) world enumeration", "agree")
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 4; i++ {
		pd := probdb.New()
		dom := []db.Const{"a", "b", "c"}
		for _, c := range dom {
			pd.MustAdd(db.NewFact("Stud", c), big.NewRat(1, 1))
			if rng.Intn(2) == 0 {
				pd.MustAdd(db.NewFact("TA", c), big.NewRat(int64(1+rng.Intn(3)), 4))
			}
			for _, c2 := range dom {
				if rng.Intn(3) == 0 {
					pd.MustAdd(db.NewFact("Reg", c, c2), big.NewRat(int64(1+rng.Intn(3)), 4))
				}
			}
			if rng.Intn(2) == 0 {
				pd.MustAdd(db.NewFact("Course", c, "CS"), big.NewRat(1, 1))
			}
		}
		fast, err := probdb.EvalWithDeterministic(pd, q2, deterministic)
		if err != nil {
			return err
		}
		slow, err := probdb.BruteForceProbability(pd, q2)
		if err != nil {
			return err
		}
		if fast.Cmp(slow) != 0 {
			return fmt.Errorf("instance %d: lifted %s != brute %s", i, fast.RatString(), slow.RatString())
		}
		t.row(fmt.Sprintf("I%d", i), fmt.Sprintf("%d", len(pd.UncertainFacts())),
			ratStr(fast), ratStr(slow), "yes")
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nWithout the deterministic declaration, q2 is non-hierarchical and its evaluation")
	fmt.Fprintln(w, "is FP#P-complete (Fink & Olteanu); Theorem 4.10 recovers tractability exactly when")
	fmt.Fprintln(w, "no non-hierarchical path survives.")
	return nil
}

func runE17(w io.Writer) error {
	// Count{c | Farmer(m), Export(m,p,c), ¬Grows(c,p)}: the introduction's
	// aggregate. Sum over profits: the §3 remark's query.
	d := paperex.IntroDatabase()
	countQ := query.MustParse("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)")
	solver := &core.Solver{AllowBruteForce: true}
	fmt.Fprintf(w, "Count{c | %s} on the intro instance:\n\n", countQ)
	t := newTable(w, "endogenous fact", "Shapley (linearity)", "Shapley (direct game)", "agree")
	for _, f := range d.EndoFacts() {
		fast, err := solver.CountShapley(d, countQ, f)
		if err != nil {
			return err
		}
		slow, err := core.BruteForceAggregate(d, countQ, f, core.WeightOne)
		if err != nil {
			return err
		}
		if fast.Cmp(slow) != 0 {
			return fmt.Errorf("count aggregate mismatch for %s", f)
		}
		t.row(f.Key(), ratStr(fast), ratStr(slow), "yes")
	}
	if err := t.flush(); err != nil {
		return err
	}

	sumQ := paperex.AggregateQuery()
	d2 := paperex.AggregateDatabase()
	fmt.Fprintf(w, "\nSum{r | %s}:\n\n", sumQ)
	t2 := newTable(w, "endogenous fact", "Shapley of the Sum")
	for _, f := range d2.EndoFacts() {
		v, err := solver.SumShapley(d2, sumQ, "r", f)
		if err != nil {
			return err
		}
		slow, err := core.BruteForceAggregate(d2, sumQ, f, func(row []db.Const) (*big.Rat, error) {
			w, ok := new(big.Rat).SetString(string(row[2]))
			if !ok {
				return nil, fmt.Errorf("non-numeric profit %q", row[2])
			}
			return w, nil
		})
		if err != nil {
			return err
		}
		if v.Cmp(slow) != 0 {
			return fmt.Errorf("sum aggregate mismatch for %s", f)
		}
		t2.row(f.Key(), ratStr(v))
	}
	return t2.flush()
}
