// Package experiments regenerates every figure and quantitative claim of
// the paper. Each experiment is a self-contained runner that prints a table
// (the analogue of the paper's figures/examples) and fails with an error if
// a paper-derived expectation is violated, so the suite doubles as an
// end-to-end verification harness. EXPERIMENTS.md records the outputs.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string // e.g. "E01"
	Title string
	Paper string // which figure/example/theorem it reproduces
	Run   func(w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// table is a small helper around tabwriter.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer, headers ...string) *table {
	t := &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
	t.row(headers...)
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() error { return t.tw.Flush() }

func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
	fmt.Fprintf(w, "reproduces: %s\n\n", e.Paper)
}
