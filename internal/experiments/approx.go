package experiments

//repolint:allow-file numericpurity: §5 gap-construction arithmetic on closed-form factorials, not CntSat count vectors — the kernel's promotion lattice is not in play

import (
	"fmt"
	"io"
	"math"
	"math/big"
	"math/rand"

	"repro/internal/combinat"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/reductions"
)

func init() {
	register(Experiment{
		ID:    "E07",
		Title: "Gap-property violation: the explicit §5.1 construction",
		Paper: "Section 5.1 (q() :- R(x), S(x,y), ¬R(y))",
		Run:   runE07,
	})
	register(Experiment{
		ID:    "E08",
		Title: "Gap-property violation: the generic Theorem 5.1 witness",
		Paper: "Theorem 5.1",
		Run:   runE08,
	})
	register(Experiment{
		ID:    "E09",
		Title: "Additive Monte-Carlo FPRAS: Hoeffding bounds and measured error",
		Paper: "Section 5.1 (additive FPRAS for CQ¬s)",
		Run:   runE09,
	})
	register(Experiment{
		ID:    "E15",
		Title: "A relevant fact with Shapley value zero",
		Paper: "Example 5.3",
		Run:   runE15,
	})
}

func gapValue(n int) *big.Rat {
	num := new(big.Int).Mul(combinat.Factorial(n), combinat.Factorial(n))
	return new(big.Rat).SetFrac(num, combinat.Factorial(2*n+1))
}

func runE07(w io.Writer) error {
	q := paperex.GapQuery()
	t := newTable(w, "n", "|D|", "Shapley(f) = n!n!/(2n+1)!", "2^-n bound", "brute force agrees")
	for n := 1; n <= 10; n++ {
		d, f := paperex.GapDatabase(n)
		want := gapValue(n)
		agree := "skipped"
		if n <= 4 {
			got, err := core.BruteForceShapley(d, q, f)
			if err != nil {
				return err
			}
			if got.Cmp(want) != 0 {
				return fmt.Errorf("n=%d: brute force %s != closed form %s", n, got.RatString(), want.RatString())
			}
			agree = "yes"
		}
		bound := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), uint(n)))
		if want.Sign() <= 0 || want.Cmp(bound) > 0 {
			return fmt.Errorf("n=%d: value %s outside (0, 2^-n]", n, want.RatString())
		}
		f64, _ := want.Float64()
		b64, _ := bound.Float64()
		t.row(fmt.Sprintf("%d", n), fmt.Sprintf("%d", d.NumFacts()),
			fmt.Sprintf("%s (~%.3g)", want.RatString(), f64),
			fmt.Sprintf("%.3g", b64), agree)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nConsequence: an additive FPRAS needs 2^Θ(n) samples to separate these values from 0,")
	fmt.Fprintln(w, "so the positive-CQ route to a multiplicative FPRAS fails under negation.")
	return nil
}

func runE08(w io.Writer) error {
	queries := []*query.CQ{
		query.MustParse("g1() :- R(x), S(x, y), !R(y)"),
		query.MustParse("g2() :- !R(x), S(x, y), !T(y)"),
		query.MustParse("g3() :- Stud(x), !TA(x), Reg(x, y)"),
	}
	t := newTable(w, "query", "n", "endo facts", "Shapley(f0)", "n!n!/(2n+1)!", "agree")
	for _, q := range queries {
		for n := 1; n <= 2; n++ {
			d, f0, err := reductions.GapWitness(q, n)
			if err != nil {
				return err
			}
			got, err := core.BruteForceShapley(d, q, f0)
			if err != nil {
				return err
			}
			want := gapValue(n)
			if got.Cmp(want) != 0 {
				return fmt.Errorf("%s n=%d: %s != %s", q, n, got.RatString(), want.RatString())
			}
			t.row(q.String(), fmt.Sprintf("%d", n), fmt.Sprintf("%d", d.NumEndo()),
				got.RatString(), want.RatString(), "yes")
		}
	}
	return t.flush()
}

func runE09(w io.Writer) error {
	d := paperex.RunningExample()
	q1 := paperex.Q1()
	f := db.F("TA", "Adam")
	exact := -3.0 / 28.0
	fmt.Fprintf(w, "target: Shapley(TA(Adam)) = -3/28 = %.6f\n\n", exact)
	t := newTable(w, "ε", "δ", "Hoeffding samples", "estimate", "|error|", "within ε")
	rng := rand.New(rand.NewSource(9))
	for _, c := range []struct{ eps, delta float64 }{
		{0.3, 0.1}, {0.2, 0.05}, {0.1, 0.05}, {0.05, 0.01},
	} {
		res, err := core.MonteCarloShapley(d, q1, f, c.eps, c.delta, rng)
		if err != nil {
			return err
		}
		errAbs := math.Abs(res.Estimate - exact)
		t.row(fmt.Sprintf("%.2f", c.eps), fmt.Sprintf("%.2f", c.delta),
			fmt.Sprintf("%d", res.Samples), fmt.Sprintf("%+.5f", res.Estimate),
			fmt.Sprintf("%.5f", errAbs), yesNo(errAbs <= c.eps))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nConvergence with fixed sample counts:")
	t2 := newTable(w, "samples", "estimate", "|error|")
	for _, n := range []int{100, 1000, 10000} {
		res, err := core.MonteCarloShapleyN(d, q1, f, n, rng)
		if err != nil {
			return err
		}
		t2.row(fmt.Sprintf("%d", n), fmt.Sprintf("%+.5f", res.Estimate),
			fmt.Sprintf("%.5f", math.Abs(res.Estimate-exact)))
	}
	return t2.flush()
}

func runE15(w io.Writer) error {
	q := paperex.Example53Query()
	d := paperex.Example53Database()
	f := db.F("R", "1", "2")
	v, err := core.BruteForceShapley(d, q, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "query: %s over D = {R(1,2), R(2,1)} (both endogenous)\n", q)
	fmt.Fprintf(w, "Shapley(R(1,2)) = %s\n", v.RatString())
	if v.Sign() != 0 {
		return fmt.Errorf("Example 5.3 expects Shapley value 0, got %s", v.RatString())
	}
	// Yet the fact is relevant in both directions.
	fmt.Fprintln(w, "positively relevant with E = {}: adding R(1,2) makes the query true")
	fmt.Fprintln(w, "negatively relevant with E = {R(2,1)}: adding R(1,2) makes the query false")
	fmt.Fprintln(w, "=> relevance does not imply a nonzero Shapley value when a relation is polarity-inconsistent")
	return nil
}

var _ = ratStr
