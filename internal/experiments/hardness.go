package experiments

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/graphs"
	"repro/internal/query"
	"repro/internal/reductions"
	"repro/internal/relevance"
	"repro/internal/sat"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "NP-hardness of relevance: qRST¬R vs (2+,2−,4+−)-SAT",
		Paper: "Proposition 5.5, Figure 4",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "The SAT reduction chain behind Proposition 5.5",
		Paper: "Lemma D.1 (3-colorability → (3+,2−)-SAT → (2+,2−,4+−)-SAT)",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Polynomial relevance for polarity-consistent CQ¬s",
		Paper: "Proposition 5.7, Algorithms 2 and 3",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "NP-hardness of relevance for a union of polarity-consistent CQ¬s",
		Paper: "Proposition 5.8 (qSAT)",
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Title: "#IS recovered from a Shapley oracle for qRS¬T",
		Paper: "Lemma 3.3 / Lemma B.3 (equation system)",
		Run:   runE14,
	})
	register(Experiment{
		ID:    "E16",
		Title: "Reductions among the basic hard queries",
		Paper: "Lemmas B.1 and B.2",
		Run:   runE16,
	})
	register(Experiment{
		ID:    "E18",
		Title: "Triplet embedding and the self-join extension",
		Paper: "Lemma B.4, Theorem B.5",
		Run:   runE18,
	})
}

func runE10(w io.Writer) error {
	q := reductions.QRSTNegR()
	fmt.Fprintf(w, "query: %s\n\n", q)
	t := newTable(w, "formula", "satisfiable", "T(c) relevant", "agree")
	// Figure 4's formula first.
	fig4 := &sat.Formula{NumVars: 4, Clauses: []sat.Clause{
		{sat.Pos(1), sat.Pos(2)},
		{sat.Neg(1), sat.Neg(3)},
		{sat.Pos(3), sat.Pos(4), sat.Neg(1), sat.Neg(2)},
	}}
	formulas := []*sat.Formula{fig4}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 6; i++ {
		formulas = append(formulas, sat.RandomTwoTwoFour(rng, 3+rng.Intn(3), 3+rng.Intn(4)))
	}
	// A guaranteed-unsatisfiable instance.
	formulas = append(formulas, &sat.Formula{NumVars: 2, Clauses: []sat.Clause{
		{sat.Pos(1), sat.Pos(2)}, {sat.Neg(1), sat.Neg(1)}, {sat.Neg(2), sat.Neg(2)},
	}})
	for _, f := range formulas {
		d, target, err := reductions.RelevanceInstance225(f)
		if err != nil {
			return err
		}
		rel, err := relevance.IsRelevantBrute(d, q, target)
		if err != nil {
			return err
		}
		satisfiable := f.Satisfiable()
		if rel != satisfiable {
			return fmt.Errorf("reduction broken for %s: sat=%v relevant=%v", f, satisfiable, rel)
		}
		t.row(f.String(), yesNo(satisfiable), yesNo(rel), "yes")
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nConsequence (Cor. 5.6): deciding Shapley(D,qRST¬R,f) = 0 is NP-complete,")
	fmt.Fprintln(w, "so no multiplicative FPRAS exists for qRST¬R unless NP ⊆ BPP.")
	return nil
}

func runE11(w io.Writer) error {
	t := newTable(w, "graph", "3-colorable", "(3+,2-) sat", "(2+,2-,4+-) sat", "agree")
	rng := rand.New(rand.NewSource(11))
	cases := []*graphs.Graph{
		graphs.CompleteGraph(3),
		graphs.CompleteGraph(4),
		{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}},
	}
	for i := 0; i < 4; i++ {
		cases = append(cases, graphs.RandomGraph(rng, 4+rng.Intn(3), 0.5))
	}
	for i, g := range cases {
		colorable := g.ThreeColoring() != nil
		f32, err := reductions.ThreeColorToSAT(g)
		if err != nil {
			return err
		}
		f224, err := reductions.ThreePosTwoNegToTwoTwoFour(f32)
		if err != nil {
			return err
		}
		s32, s224 := f32.Satisfiable(), f224.Satisfiable()
		if s32 != colorable || s224 != colorable {
			return fmt.Errorf("chain broken on graph %d: colorable=%v sat32=%v sat224=%v", i, colorable, s32, s224)
		}
		t.row(fmt.Sprintf("G%d (n=%d, m=%d)", i, g.N, len(g.Edges)),
			yesNo(colorable), yesNo(s32), yesNo(s224), "yes")
	}
	return t.flush()
}

func runE12(w io.Writer) error {
	q := query.MustParse("p() :- Stud(x), !TA(x), Reg(x, y)")
	fmt.Fprintf(w, "query: %s (polarity consistent)\n\n", q)
	t := newTable(w, "endo facts", "relevant/total", "Algorithms 2+3", "brute force", "agree")
	rng := rand.New(rand.NewSource(12))
	for _, students := range []int{4, 8, 16, 40} {
		d := workload.University(workload.UniversityConfig{
			Students: students, Courses: 4, RegPerStudent: 1, TAFraction: 0.5, Seed: rng.Int63(),
		})
		relevantCount := 0
		start := time.Now()
		for _, f := range d.EndoFacts() {
			rel, err := relevance.IsRelevant(d, q, f)
			if err != nil {
				return err
			}
			if rel {
				relevantCount++
			}
		}
		polyTime := time.Since(start)
		bruteCell := "skipped (exponential)"
		agree := "-"
		if d.NumEndo() <= 14 {
			start = time.Now()
			match := true
			for _, f := range d.EndoFacts() {
				fast, err := relevance.IsRelevant(d, q, f)
				if err != nil {
					return err
				}
				slow, err := relevance.IsRelevantBrute(d, q, f)
				if err != nil {
					return err
				}
				if fast != slow {
					match = false
				}
			}
			bruteCell = time.Since(start).String()
			agree = yesNo(match)
			if !match {
				return fmt.Errorf("polynomial relevance disagrees with brute force")
			}
		}
		t.row(fmt.Sprintf("%d", d.NumEndo()),
			fmt.Sprintf("%d/%d", relevantCount, d.NumEndo()),
			polyTime.String(), bruteCell, agree)
	}
	return t.flush()
}

func runE13(w io.Writer) error {
	u := reductions.QSAT()
	fmt.Fprintf(w, "query: %s\n", u)
	fmt.Fprintln(w, "each disjunct is polarity consistent; the union is not (T flips polarity)")
	fmt.Fprintln(w)
	t := newTable(w, "3CNF formula", "satisfiable", "R(0) relevant", "agree")
	rng := rand.New(rand.NewSource(13))
	formulas := []*sat.Formula{
		{NumVars: 1, Clauses: []sat.Clause{
			{sat.Pos(1), sat.Pos(1), sat.Pos(1)},
			{sat.Neg(1), sat.Neg(1), sat.Neg(1)},
		}},
	}
	for i := 0; i < 5; i++ {
		formulas = append(formulas, sat.Random3CNF(rng, 2+rng.Intn(3), 2+rng.Intn(4)))
	}
	for _, f := range formulas {
		d, target, err := reductions.RelevanceInstance3SAT(f)
		if err != nil {
			return err
		}
		rel, err := relevance.IsRelevantBrute(d, u, target)
		if err != nil {
			return err
		}
		satisfiable := f.Satisfiable()
		if rel != satisfiable {
			return fmt.Errorf("reduction broken for %s", f)
		}
		t.row(f.String(), yesNo(satisfiable), yesNo(rel), "yes")
	}
	return t.flush()
}

func runE14(w io.Writer) error {
	q := reductions.QRSNegT()
	oracle := func(d *db.Database, f db.Fact) (*big.Rat, error) {
		return core.BruteForceShapley(d, q, f)
	}
	t := newTable(w, "bipartite graph", "|IS| via Shapley oracle", "|IS| brute force", "agree")
	rng := rand.New(rand.NewSource(14))
	cases := []*graphs.Bipartite{
		{Left: 1, Right: 1, Edges: [][2]int{{0, 0}}},
		{Left: 2, Right: 2, Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}},
		{Left: 2, Right: 2, Edges: [][2]int{{0, 0}, {1, 1}}},
	}
	for i := 0; i < 2; i++ {
		cases = append(cases, graphs.RandomBipartite(rng, 1+rng.Intn(2), 1+rng.Intn(2), 0.6))
	}
	for i, g := range cases {
		via, err := reductions.CountISViaShapley(g, oracle)
		if err != nil {
			return err
		}
		brute := g.CountIndependentSets()
		if via.Cmp(brute) != 0 {
			return fmt.Errorf("graph %d: %s != %s", i, via, brute)
		}
		t.row(fmt.Sprintf("G%d (%d+%d vertices, %d edges)", i, g.Left, g.Right, len(g.Edges)),
			via.String(), brute.String(), "yes")
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nEvery row required solving the (N+1)×(N+1) exact linear system of Lemma B.3;")
	fmt.Fprintln(w, "a polynomial Shapley oracle for qRS¬T would therefore count independent sets.")
	return nil
}

func runE16(w io.Writer) error {
	qrst := query.MustParse("qRST() :- R(x), S(x, y), T(y)")
	qneg := query.MustParse("qn() :- !R(x), S(x, y), !T(y)")
	qrnst := query.MustParse("qRnST() :- R(x), !S(x, y), T(y)")
	rng := rand.New(rand.NewSource(16))
	trials, checks := 0, 0
	for trials < 6 {
		d := reductions.RandomBaseInstance(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.6, 1.1)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		trials++
		d2, err := reductions.ComplementSInstance(d)
		if err != nil {
			return err
		}
		for _, f := range d.EndoFacts() {
			a, err := core.BruteForceShapley(d, qrst, f)
			if err != nil {
				return err
			}
			b, err := core.BruteForceShapley(d, qneg, f)
			if err != nil {
				return err
			}
			if a.Cmp(new(big.Rat).Neg(b)) != 0 {
				return fmt.Errorf("Lemma B.1 duality failed for %s", f)
			}
			c, err := core.BruteForceShapley(d2, qrnst, f)
			if err != nil {
				return err
			}
			if a.Cmp(c) != 0 {
				return fmt.Errorf("Lemma B.2 complement reduction failed for %s", f)
			}
			checks += 2
		}
	}
	fmt.Fprintf(w, "Lemma B.1: Shapley(D, qRST, f) = -Shapley(D, q¬RS¬T, f)\n")
	fmt.Fprintf(w, "Lemma B.2: Shapley(D, qRST, f) = Shapley(complement(D), qR¬ST, f)\n")
	fmt.Fprintf(w, "verified on %d random instances (%d equalities), all exact\n", trials, checks)
	return nil
}

func runE18(w io.Writer) error {
	target := query.MustParse("sj() :- !R(x), S(x, y), !R(y)")
	tr := query.Triplet{AtomX: 0, AtomXY: 1, AtomY: 2, X: "x", Y: "y"}
	base := query.MustParse("b() :- !R(x), S(x, y), !T(y)")
	rng := rand.New(rand.NewSource(18))
	trials, checks := 0, 0
	for trials < 6 {
		d := reductions.RandomBaseInstance(rng, 1+rng.Intn(3), 1+rng.Intn(2), 0.6, 0.8)
		if d.NumEndo() == 0 || d.NumEndo() > 8 {
			continue
		}
		trials++
		d2, mapping, err := reductions.EmbedTriplet(d, target, tr)
		if err != nil {
			return err
		}
		for _, f := range d.EndoFacts() {
			a, err := core.BruteForceShapley(d, base, f)
			if err != nil {
				return err
			}
			b, err := core.BruteForceShapley(d2, target, mapping[f.Key()])
			if err != nil {
				return err
			}
			if a.Cmp(b) != 0 {
				return fmt.Errorf("Theorem B.5 embedding failed for %s", f)
			}
			checks++
		}
	}
	fmt.Fprintf(w, "target query with self-join: %s\n", target)
	fmt.Fprintf(w, "base query: %s\n", base)
	fmt.Fprintf(w, "Shapley values preserved on %d random instances (%d equalities)\n", trials, checks)
	fmt.Fprintln(w, "=> computing the Shapley value for ¬R(x), S(x,y), ¬R(y) is FP#P-complete (Theorem B.5)")
	return nil
}
