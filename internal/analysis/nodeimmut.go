package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NodeImmut enforces post-intern immutability of content-addressed
// structures: a DP-tree node is identified by the hash of its input
// content, interned in the generational memo, and shared freely across
// plan versions, seeded plans and concurrent readers. A field write
// after interning silently corrupts the content addressing — the node's
// stored output no longer matches its key, and every later memo hit
// resurrects the corruption (no test that compares against a fresh
// recompute of the same tree can see it).
//
// A struct type opts in with a //repolint:immutable marker on its type
// declaration. Every write to a field of a marked type (including
// writes through a field's slice or map, n.children[i] = x) is flagged
// unless the enclosing function carries //repolint:allow nodeimmut:
// <reason> — which is how the constructor/interning path in dptree.go
// declares itself, keeping the full set of mutating functions greppable.
var NodeImmut = &Analyzer{
	Name: "nodeimmut",
	Doc:  "no writes to fields of //repolint:immutable structs outside their annotated constructor/interning path",
	Run:  runNodeImmut,
}

const immutableMarker = "//repolint:immutable"

// immutableTypes collects the named struct types of this package whose
// declarations carry the marker (in the GenDecl doc, the TypeSpec doc,
// or a trailing line comment).
func immutableTypes(pass *Pass) map[*types.TypeName]bool {
	marked := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				t := strings.TrimRight(c.Text, " \t")
				if t == immutableMarker || strings.HasPrefix(t, immutableMarker+" ") {
					return true
				}
			}
		}
		return false
	}
	out := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !marked(gd.Doc, ts.Doc, ts.Comment) {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

func runNodeImmut(pass *Pass) error {
	marked := immutableTypes(pass)
	if len(marked) == 0 {
		return nil
	}
	// fieldOfMarked peels index/star/paren layers off an assignment
	// target down to a selector, and reports the marked type and field
	// name if the selector reads a field of a marked struct. Peeling
	// means writes *through* a field (n.children[i] = c, n.relOf[k] = v)
	// count as writes to the node: they mutate state the content hash
	// stands for.
	var fieldOfMarked func(e ast.Expr) (string, string, bool)
	fieldOfMarked = func(e ast.Expr) (string, string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return fieldOfMarked(e.X)
		case *ast.StarExpr:
			return fieldOfMarked(e.X)
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return "", "", false
			}
			if n := namedFrom(sel.Recv()); n != nil && marked[n.Obj()] {
				return n.Obj().Name(), e.Sel.Name, true
			}
			// A selector chain like n.shape.child checks the innermost
			// receiver too via the recursive field lookup on e.X.
			return fieldOfMarked(e.X)
		}
		return "", "", false
	}
	check := func(target ast.Expr) {
		if typeName, field, ok := fieldOfMarked(target); ok {
			pass.Reportf(target.Pos(), "write to field %s.%s of immutable (content-addressed) type outside its constructor path: a post-intern mutation desynchronizes the node from its content hash", typeName, field)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					check(lhs)
				}
			case *ast.IncDecStmt:
				check(n.X)
			}
			return true
		})
	}
	return nil
}
