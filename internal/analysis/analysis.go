// Package analysis implements repolint, a repo-specific static-analysis
// suite that mechanically enforces the invariants this reproduction's
// correctness rests on but the compiler cannot see: exact counting stays
// bit-identical to the paper's CntSat recursion only while DP-tree nodes
// are immutable after interning (content addressing), while all count
// arithmetic flows through the audited internal/numeric kernel (the
// promotion lattice), while context.Context threads through every
// blocking path (cancellation), and while no ordered or encoded output
// derives from Go's randomized map iteration (determinism).
//
// The framework is a deliberately small, dependency-free re-creation of
// the golang.org/x/tools go/analysis shape (the container vendors no
// modules, so x/tools is unavailable): an Analyzer holds a Run function
// over a type-checked Pass, the driver loads packages with `go list` plus
// go/types, and analysistest-style fixture tests assert diagnostics
// against // want comments. See docs/analysis.md for the catalogue of
// analyzers and the invariant each one guards.
//
// # Suppressing a finding
//
// A diagnostic is suppressed by an allow directive with a mandatory
// reason:
//
//	//repolint:allow <analyzer>: <reason>       (line or function doc)
//	//repolint:allow-file <analyzer>: <reason>  (whole file)
//
// A line directive covers its own line and the line below it (so it can
// sit above the flagged statement); a directive in a function's doc
// comment covers the whole function. Directives without a reason, and
// directives that suppress nothing, are themselves reported — the
// allowlist is audited, not a silencer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a named checker with a Run
// function executed once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow directives. Lowercase letters only.
	Name string
	// Doc is the one-paragraph description shown by `repolint help`.
	Doc string
	// Run inspects the pass and reports findings via Pass.Reportf.
	Run func(*Pass) error
}

// A Pass is the single-package unit of work handed to an Analyzer: the
// parsed files and full type information of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PathHasSuffix reports whether the slash-separated import path ends with
// the given suffix on a path-segment boundary ("repro/internal/numeric"
// has suffix "internal/numeric" but not "ternal/numeric"). Analyzers
// match their target and allowed packages this way so that fixture
// packages under testdata/src can mimic any real package's position in
// the tree.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// directiveKind distinguishes the two allow scopes.
type directiveKind int

const (
	directiveLine directiveKind = iota // this line and the next
	directiveFunc                      // the enclosing function declaration
	directiveFile                      // the whole file
)

// directive is one parsed //repolint:allow comment.
type directive struct {
	kind     directiveKind
	analyzer string
	reason   string
	pos      token.Position
	fromLine int // inclusive line range covered (same file as pos)
	toLine   int
	used     bool
	bad      string // non-empty: malformed, with the problem text
}

const (
	allowPrefix     = "//repolint:allow "
	allowFilePrefix = "//repolint:allow-file "
	markerPrefix    = "//repolint:" // any repolint: comment must parse
)

// parseDirectives extracts every repolint directive of one file.
// Function-doc directives are widened to the function's line range.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	// Map from comment position to the function whose doc it belongs to.
	funcDoc := make(map[*ast.Comment]*ast.FuncDecl)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Doc != nil {
			for _, c := range fd.Doc.List {
				funcDoc[c] = fd
			}
		}
	}
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimRight(c.Text, " \t")
			if !strings.HasPrefix(text, markerPrefix) {
				continue
			}
			if text == "//repolint:immutable" || strings.HasPrefix(text, "//repolint:immutable ") {
				continue // nodeimmut marker, not an allow directive
			}
			d := &directive{pos: fset.Position(c.Pos())}
			var rest string
			switch {
			case strings.HasPrefix(text, allowFilePrefix):
				d.kind = directiveFile
				rest = strings.TrimPrefix(text, allowFilePrefix)
			case strings.HasPrefix(text, allowPrefix):
				d.kind = directiveLine
				rest = strings.TrimPrefix(text, allowPrefix)
			default:
				d.bad = fmt.Sprintf("unknown repolint directive %q (want //repolint:allow, //repolint:allow-file or //repolint:immutable)", text)
				out = append(out, d)
				continue
			}
			name, reason, ok := strings.Cut(rest, ":")
			d.analyzer = strings.TrimSpace(name)
			d.reason = strings.TrimSpace(reason)
			switch {
			case !ok || d.reason == "":
				d.bad = fmt.Sprintf("repolint:allow directive for %q is missing its mandatory reason (want //repolint:allow %s: <reason>)", d.analyzer, d.analyzer)
			case d.analyzer == "":
				d.bad = "repolint:allow directive names no analyzer"
			}
			if d.bad != "" {
				out = append(out, d)
				continue
			}
			switch d.kind {
			case directiveFile:
				d.fromLine = 1
				d.toLine = 1 << 30
			default:
				if fd, isDoc := funcDoc[c]; isDoc {
					d.kind = directiveFunc
					d.fromLine = fset.Position(fd.Pos()).Line
					d.toLine = fset.Position(fd.End()).Line
				} else {
					d.fromLine = d.pos.Line
					d.toLine = d.pos.Line + 1
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// covers reports whether the directive suppresses a diagnostic of the
// named analyzer at position p.
func (d *directive) covers(analyzer string, p token.Position) bool {
	return d.bad == "" &&
		d.analyzer == analyzer &&
		d.pos.Filename == p.Filename &&
		d.fromLine <= p.Line && p.Line <= d.toLine
}

// Run executes the analyzers over the loaded packages whose Target flag
// is set, applies the allow directives, and returns the surviving
// diagnostics sorted by position. Directive hygiene (malformed or unused
// directives) is reported under the pseudo-analyzer name "repolint".
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		var dirs []*directive
		for _, f := range pkg.Files {
			dirs = append(dirs, parseDirectives(pkg.Fset, f)...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		diags:
			for _, d := range pass.diags {
				for _, dir := range dirs {
					if dir.covers(a.Name, d.Pos) {
						dir.used = true
						continue diags
					}
				}
				all = append(all, d)
			}
		}
		for _, dir := range dirs {
			switch {
			case dir.bad != "":
				all = append(all, Diagnostic{Pos: dir.pos, Analyzer: "repolint", Message: dir.bad})
			case !dir.used && ran[dir.analyzer]:
				all = append(all, Diagnostic{
					Pos: dir.pos, Analyzer: "repolint",
					Message: fmt.Sprintf("unused //repolint:allow directive: no %s finding here to suppress", dir.analyzer),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
