package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file is the suite's miniature of golang.org/x/tools'
// go/analysis/analysistest: fixture packages live under
// testdata/src/<importpath>, diagnostics are asserted with // want
// comments on the offending line, and the allow-directive machinery runs
// exactly as in production (so fixtures can pin the escape hatch and the
// directive-hygiene diagnostics too).
//
//	x := bad() // want `regexp matching the message`
//
// Multiple backquoted (or double-quoted) patterns on one line expect
// multiple diagnostics. Every diagnostic must be wanted and every want
// must fire; mismatches fail the test with a positioned report.

// RunFixtures loads each fixture package (path relative to
// testdata/src) with full type information, runs the analyzer plus
// directive filtering over all of them together, and matches the
// resulting diagnostics against the fixtures' want comments.
func RunFixtures(t *testing.T, a *Analyzer, fixtures ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &fixtureLoader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*Package),
		std:  importer.Default(),
	}
	var pkgs []*Package
	for _, fix := range fixtures {
		pkg, err := ld.load(fix)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fix, err)
		}
		pkg.Target = true
		pkgs = append(pkgs, pkg)
	}
	diags, err := Run([]*Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, ld.fset, pkgs)
	matchDiagnostics(t, diags, wants)
}

// fixtureLoader resolves fixture import paths to testdata/src
// directories, falling back to the compiler's export data for the
// standard library.
type fixtureLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*Package
	std  types.Importer // shared: preserves type identity across fixtures
}

func (ld *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files}
	ld.pkgs[path] = pkg // pre-register: fixtures must not import cyclically
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: fixtureImporter{ld}}
	tp, err := conf.Check(path, ld.fset, files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	pkg.Types = tp
	return pkg, nil
}

type fixtureImporter struct{ ld *fixtureLoader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(fi.ld.root, filepath.FromSlash(path))); err == nil {
		pkg, err := fi.ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.ld.std.Import(path)
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("// want (.*)$")

// collectWants scans fixture comments for want expectations.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*Package) []*want {
	t.Helper()
	var out []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, pat := range splitPatterns(t, pos, m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}
	return out
}

// splitPatterns parses the sequence of backquoted or double-quoted
// patterns after "// want".
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated backquoted want pattern", pos)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			rest := s[1:]
			end := -1
			for i := 0; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated quoted want pattern", pos)
			}
			unq, err := strconv.Unquote(s[:end+2])
			if err != nil {
				t.Fatalf("%s: bad quoted want pattern: %v", pos, err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want patterns must be backquoted or quoted, got %q", pos, s)
		}
	}
	return out
}

// matchDiagnostics pairs diagnostics with wants one-to-one by line.
func matchDiagnostics(t *testing.T, diags []Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
