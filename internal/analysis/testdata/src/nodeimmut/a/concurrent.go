package a

import "sync"

// Concurrent interning, the parallel-builder pattern: a sharded
// content-addressed store whose store operation returns the canonical
// node (first-store-wins). Construction writes stay confined to
// constructor-allowed functions; anything a goroutine writes after a
// node came back from the store is a mutation of published state and
// must be flagged.

type shard struct {
	mu  sync.Mutex
	cur map[string]*node
}

type store struct {
	shards [4]shard
}

// intern is the canonical-copy store: under the shard lock it only
// touches the map, never the node's fields.
func (s *store) intern(n *node) *node {
	sh := &s.shards[len(n.key)%4]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prior, ok := sh.cur[n.key]; ok {
		return prior
	}
	sh.cur[n.key] = n
	return n
}

// buildConcurrent is the builder-goroutine shape: each worker constructs
// its node through the allowed constructor, interns it, and treats the
// returned canonical node as read-only.
func buildConcurrent(s *store, keys []string) []*node {
	out := make([]*node, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k string) {
			defer wg.Done()
			out[i] = s.intern(newNode(k))
		}(i, k)
	}
	wg.Wait()
	return out
}

// patchAfterIntern races a write against every reader of the canonical
// node: flagged even though it happens under the shard lock — the lock
// guards the map, not the published node.
func (s *store) patchAfterIntern(n *node) {
	sh := &s.shards[len(n.key)%4]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	canonical := sh.cur[n.key]
	canonical.endo++ // want `write to field node.endo of immutable`
}

// fixupInGoroutine: publishing first and repairing concurrently is the
// exact bug class the marker exists for.
func fixupInGoroutine(s *store, n *node) {
	canonical := s.intern(n)
	go func() {
		canonical.key = "late" // want `write to field node.key of immutable`
	}()
}
