// Package a exercises nodeimmut: writes to fields of a marked
// (content-addressed) struct are flagged everywhere except functions that
// carry the constructor allow directive; unmarked types stay writable.
package a

// node is a content-addressed tree node: its fields stand for the hash it
// is interned under.
//
//repolint:immutable
type node struct {
	key      string
	endo     int
	children []*node
	relOf    map[string]int
}

// plain is not marked: writes to it are nobody's business.
type plain struct{ n int }

// newNode is the constructor/interning path.
//
//repolint:allow nodeimmut: fixture constructor — fields are written before the node is interned
func newNode(key string) *node {
	n := &node{}
	n.key = key
	n.relOf = make(map[string]int)
	return n
}

func mutate(n, c *node) {
	n.key = "changed"                  // want `write to field node.key of immutable`
	n.endo++                           // want `write to field node.endo of immutable`
	n.children[0] = c                  // want `write to field node.children of immutable`
	n.relOf["R"] = 1                   // want `write to field node.relOf of immutable`
	n.children = append(n.children, c) // want `write to field node.children of immutable`
}

// Writes through a chain still mutate a marked node.
func mutateDeep(n *node) {
	n.children[0].key = "x" // want `write to field node.key of immutable`
}

// Reads are free, and unmarked structs stay writable.
func clean(n *node, p *plain) int {
	p.n++
	return len(n.children) + p.n
}
