// Package obs mirrors the real tracing package's position in the import
// tree (internal/obs), so the spanend analyzer both recognises
// obs.Start by its package-path suffix and exempts this package itself.
package obs

import "context"

// Attr is a key/value span annotation.
type Attr struct {
	Key   string
	Value any
}

// Int mirrors the real attribute constructor.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Span is the recorded unit of work. The real implementation is nil-safe;
// the fixture only needs the method set.
type Span struct {
	ended bool
}

// End closes the span. The analyzer under test checks that every path
// reaches a call to this method.
func (s *Span) End() {
	if s != nil {
		s.ended = true
	}
}

// SetAttrs annotates the span.
func (s *Span) SetAttrs(attrs ...Attr) {}

// Recording reports whether a recorder is attached.
func (s *Span) Recording() bool { return s != nil }

// Start opens a span. The fixture returns a live span unconditionally;
// spanend only cares about the call shape.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// internalHelper deliberately discards a Start result: the obs package
// itself is exempt (it implements the lifecycle), so this must NOT be
// reported. There is no want comment here on purpose.
func internalHelper(ctx context.Context) {
	_, _ = Start(ctx, "internal")
}
