// Package core exercises the spanend analyzer: every span returned by
// obs.Start must be ended on all paths out of the scope that opened it.
package core

import (
	"context"
	"errors"

	"spanend/internal/obs"
)

var cond bool

func work(ctx context.Context) error { return ctx.Err() }

// DeferOK is the canonical shape: End deferred immediately after Start.
func DeferOK(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "defer-ok")
	defer sp.End()
	if cond {
		return errors.New("early")
	}
	return work(ctx)
}

// PerReturnOK ends the span explicitly on every path.
func PerReturnOK(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "per-return")
	if err := work(ctx); err != nil {
		sp.End()
		return err
	}
	sp.SetAttrs(obs.Int("facts", 1))
	sp.End()
	return nil
}

// LeakOnErrorPath ends the span on the happy path only: the early return
// inside the if block escapes with the span still open.
func LeakOnErrorPath(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "leaky")
	if err := work(ctx); err != nil {
		return err // want `return without ending span sp`
	}
	sp.End()
	return nil
}

// Discarded throws the span away at the call site.
func Discarded(ctx context.Context) {
	obs.Start(ctx, "discarded") // want `result of obs.Start is discarded`
}

// Blanked binds the span to the blank identifier.
func Blanked(ctx context.Context) context.Context {
	ctx, _ = obs.Start(ctx, "blanked") // want `span returned by obs.Start is assigned to _`
	return ctx
}

// FallsOffEnd never returns explicitly and never ends the span.
func FallsOffEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, "fall-off") // want `span sp is not ended before the function falls off the end`
	sp.SetAttrs(obs.Int("facts", 2))
}

// FallOffOK ends the span before control falls off the end.
func FallOffOK(ctx context.Context) {
	_, sp := obs.Start(ctx, "fall-off-ok")
	sp.End()
}

// TransferByReturn hands the open span to its caller: the wrapper-helper
// shape. The caller owns the End; no diagnostic here.
func TransferByReturn(ctx context.Context) (context.Context, *obs.Span) {
	ctx, sp := obs.Start(ctx, "transfer")
	return ctx, sp
}

// TransferToClosure ends the span inside a deferred closure (the
// worker-goroutine idiom): ownership moves into the literal.
func TransferToClosure(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "closure")
	processed := 0
	defer func() {
		if sp.Recording() {
			sp.SetAttrs(obs.Int("facts", processed))
		}
		sp.End()
	}()
	processed++
	return work(ctx)
}

// ClosureScope checks that a function literal is its own scope: the span
// started inside it must be ended inside it.
func ClosureScope(ctx context.Context) {
	run := func() {
		_, inner := obs.Start(ctx, "inner") // want `span inner is not ended before the function falls off the end`
		inner.SetAttrs(obs.Int("facts", 3))
	}
	run()
}

// BranchLeak starts a span inside a block and lets the block end without
// closing it: the span is unreachable afterwards.
func BranchLeak(ctx context.Context) {
	if cond {
		_, sp := obs.Start(ctx, "branch") // want `span sp started in this block is not ended before the block ends`
		sp.SetAttrs(obs.Int("facts", 4))
	}
}

// BranchOK starts and ends a span within the same block.
func BranchOK(ctx context.Context) {
	if cond {
		_, sp := obs.Start(ctx, "branch-ok")
		sp.End()
	}
}

// SwitchPerCaseOK ends the span in every switch case that returns.
func SwitchPerCaseOK(ctx context.Context, mode string) error {
	ctx, sp := obs.Start(ctx, "switch")
	switch mode {
	case "all":
		sp.End()
		return work(ctx)
	default:
		sp.End()
		return nil
	}
}

// StoredForLater stashes the span in a struct ended by another component;
// the lexical analyzer cannot see that, so the leak is acknowledged.
//
//repolint:allow spanend: span ownership moves into the sink struct, which ends it on Close
func StoredForLater(ctx context.Context, sink *struct{ Sp *obs.Span }) {
	_, sp := obs.Start(ctx, "stored")
	sink.Sp = sp
}
