// Package a exercises the directive hygiene reported under the
// pseudo-analyzer "repolint": unknown directives, directives without the
// mandatory reason, and allow directives that suppress nothing.
package a

import "math/big"

//repolint:frobnicate // want `unknown repolint directive`

//repolint:allow numericpurity // want `missing its mandatory reason`

//repolint:allow numericpurity: nothing on the next line needs suppressing // want `unused //repolint:allow directive`

// used has a real finding; its directive is consumed, so no hygiene
// diagnostic fires for it.
func used(x, y *big.Int) *big.Int {
	//repolint:allow numericpurity: fixture — directive consumed by the finding below
	return new(big.Int).Add(x, y)
}
