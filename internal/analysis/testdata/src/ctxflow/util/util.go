// Package util sits outside the ctxflow target packages: the
// exported-API rule does not apply here, but minting an unrooted context
// in library code is still flagged.
package util

import "context"

func work(ctx context.Context) error { return ctx.Err() }

func Fire() error {
	return work(context.Background()) // want `context.Background.. in library code`
}
