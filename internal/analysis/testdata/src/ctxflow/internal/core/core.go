// Package core mirrors the real compute package's position in the import
// tree: its exported API surface must thread context.Context through
// every blocking path.
package core

import "context"

// blockingWork takes a context: by repo convention that marks it as a
// blocking path.
func blockingWork(ctx context.Context) error {
	return ctx.Err()
}

func Run(d string) error { // want `exported Run calls context-taking .blocking. blockingWork but has no context.Context parameter`
	return blockingWork(context.Background()) // want `context.Background.. in library code`
}

// RunCtx forwards its caller's context: the shape the rule wants.
func RunCtx(ctx context.Context, d string) error {
	return blockingWork(ctx)
}

func Detached(ctx context.Context) error {
	return blockingWork(context.Background()) // want `context.Background.. inside a function that has a context parameter`
}

// RunLegacy is a deliberate compatibility shim: the function-doc
// directive covers both the missing-parameter and the Background finding.
//
//repolint:allow ctxflow: fixture compatibility shim kept deliberately uncancellable
func RunLegacy(d string) error {
	return blockingWork(context.Background())
}
