// Package a exercises numericpurity: raw math/big arithmetic, ad-hoc
// count-vector construction and []uint64 convolution loops are flagged;
// construction, comparison, rendering and big.Rat stay legal.
package a

import "math/big"

func addCounts(x, y *big.Int) *big.Int {
	sum := new(big.Int).Add(x, y) // want `big.Int arithmetic .Add. outside internal/numeric`
	return sum
}

func shiftCount(x *big.Int) *big.Int {
	return new(big.Int).Lsh(x, 3) // want `big.Int arithmetic .Lsh. outside internal/numeric`
}

func newVector(n int) []*big.Int {
	return make([]*big.Int, n) // want `count-vector construction .make ...big.Int. outside internal/numeric`
}

func convolve(a, b []uint64) []uint64 {
	out := make([]uint64, len(a)+len(b)-1)
	for i := range a {
		for j := range b {
			out[i+j] += a[i] * b[j] // want `raw ..uint64 multiply-accumulate loop outside internal/numeric`
		}
	}
	return out
}

// Construction, conversion, comparison and rendering are not arithmetic.
func clean(x, y *big.Int) bool {
	z := new(big.Int).Set(x)
	return z.Cmp(y) == 0 && z.String() != ""
}

// Rationals are the probability/final-weighting domain, out of scope.
func cleanRat(p, q *big.Rat) *big.Rat {
	return new(big.Rat).Mul(p, q)
}

// Plain uint64 sums (no multiply of indexed words) are not convolutions.
func cleanSum(a []uint64) uint64 {
	var s uint64
	for _, w := range a {
		s += w
	}
	return s
}

func allowed(x, y *big.Int) *big.Int {
	//repolint:allow numericpurity: fixture exercising the audited escape hatch
	return new(big.Int).Mul(x, y)
}
