// Package numeric mirrors the real kernel's position in the import tree
// (the import path ends in internal/numeric), so the allowlist exempts it
// wholesale: this is where big.Int arithmetic is supposed to live.
package numeric

import "math/big"

// Mul is kernel-side arithmetic: never flagged here.
func Mul(x, y *big.Int) *big.Int {
	return new(big.Int).Mul(x, y)
}

// Convolve is a kernel-side u64 convolution loop: never flagged here.
func Convolve(a, b []uint64) []uint64 {
	out := make([]uint64, len(a)+len(b)-1)
	for i := range a {
		for j := range b {
			out[i+j] += a[i] * b[j]
		}
	}
	return out
}
