package server

import (
	"context"
	"sync"
)

// Sharded-store shapes from the parallel DP-tree builder: many small
// mutexes, each held only for its own map operations. The held-lock rule
// wants every blocking call pushed outside the shard critical section,
// and the copy rules keep shard arrays from being passed around by
// value (a copied shard's mutex guards nothing).

type memoShard struct {
	mu  sync.Mutex
	cur map[string]int
}

type shardedMemo struct {
	shards [8]memoShard
}

// lookupThenPromote is the correct shape: the shard lock covers only the
// map read; the follow-up blocking work runs after the unlock.
func (m *shardedMemo) lookupThenPromote(ctx context.Context, key string) (int, error) {
	sh := &m.shards[len(key)%8]
	sh.mu.Lock()
	v, ok := sh.cur[key]
	sh.mu.Unlock()
	if !ok {
		return 0, prepare(ctx)
	}
	return v, nil
}

// buildUnderShardLock serializes every sibling builder behind one shard:
// the blocking construction must happen before taking the lock.
func (m *shardedMemo) buildUnderShardLock(ctx context.Context, key string) error {
	sh := &m.shards[len(key)%8]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := prepare(ctx); err != nil { // want `blocking call .context-taking call prepare. while holding sh.mu`
		return err
	}
	sh.cur[key] = 1
	return nil
}

// shardByValue copies the mutex out of the store: flagged everywhere,
// not just in serving packages.
func shardByValue(sh memoShard) int { // want `shardByValue receives a value containing a sync mutex by value`
	return len(sh.cur)
}

// sweepShards must range by index: ranging over the array copies each
// shard's mutex.
func (m *shardedMemo) sweepShards() int {
	n := 0
	for _, sh := range m.shards { // want `range copies elements containing a sync mutex`
		n += len(sh.cur)
	}
	return n
}

// sweepShardsByIndex is the legal sweep.
func (m *shardedMemo) sweepShardsByIndex() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.cur)
		sh.mu.Unlock()
	}
	return n
}
