// Package server mirrors the real serving layer's position in the import
// tree: the held-lock rule applies here (the copy-by-value rules apply in
// every package).
package server

import (
	"context"
	"sync"
	"time"
)

type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// prepare takes a context: by repo convention that marks it as blocking.
func prepare(ctx context.Context) error { return ctx.Err() }

func (c *cache) slowUnderLock(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond) // want `blocking call .time.Sleep. while holding c.mu`
	return prepare(ctx)          // want `blocking call .context-taking call prepare. while holding c.mu`
}

// Releasing before the blocking work is the shape the rule wants.
func (c *cache) fast(ctx context.Context) error {
	c.mu.Lock()
	c.m["k"] = 1
	c.mu.Unlock()
	return prepare(ctx)
}

func (c *cache) allowedHold(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//repolint:allow lockscope: fixture — deliberate hold serializing on a dedicated mutex
	return prepare(ctx)
}

func byValue(c cache) int { // want `byValue receives a value containing a sync mutex by value`
	return len(c.m)
}

func copyAssign(c *cache) int {
	snapshot := *c // want `assignment copies a value containing a sync mutex`
	return len(snapshot.m)
}

func rangeCopy(cs []cache) int {
	n := 0
	for _, c := range cs { // want `range copies elements containing a sync mutex`
		n += len(c.m)
	}
	return n
}

// Pointers carry no lock state of their own: all of this is legal.
func rangePtr(cs []*cache) int {
	n := 0
	for _, c := range cs {
		c.mu.Lock()
		n += len(c.m)
		c.mu.Unlock()
	}
	return n
}
