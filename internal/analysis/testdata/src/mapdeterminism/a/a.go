// Package a exercises mapdeterminism: ordered sinks and escaping
// unsorted collects inside map-range loops are flagged; sorted collects,
// additive folds and loop-local slices are legal.
package a

import (
	"fmt"
	"io"
	"sort"
)

func leaky(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration order leaks into ordered output .fmt.Fprintf.`
	}
}

func hashLeak(m map[string]bool, h io.Writer) {
	for k := range m {
		h.Write([]byte(k)) // want `map iteration order leaks into ordered output .Write on`
	}
}

func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `slice out collects map keys/values in iteration order and is never sorted in collectUnsorted`
	}
	return out
}

// Sorting after the loop makes the collect deterministic.
func collectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Order-independent folds are the digest pattern and stay legal.
func additive(m map[string]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v
	}
	return sum
}

// A slice that lives and dies inside the loop body leaks no order.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func allowedLeak(w io.Writer, m map[string]int) {
	for k := range m {
		//repolint:allow mapdeterminism: fixture — output order deliberately irrelevant here
		fmt.Fprintln(w, k)
	}
}
