package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockScope polices the serving layer's locking discipline (ROADMAP
// direction 1, sharded serving, multiplies this surface): no blocking
// work while a mutex is held, and no mutex copied by value. The server
// deliberately splits its locks so that real DP work never runs under
// the lock readers contend on; a blocking call that creeps under a
// mutex serializes the whole request plane behind one preparation.
//
// "Blocking" reuses the repo's context convention (see ctxflow): any
// callee that takes a context.Context is a blocking path, plus the
// obvious externals (time.Sleep, net and net/http calls). The scan is
// linear per block: a statement between x.Lock() and the matching
// x.Unlock() — or after a deferred unlock — is "under the lock".
// Deliberate holds (the PATCH maintenance sweep serializing on its
// dedicated patchMu) carry //repolint:allow lockscope: <reason>.
//
// Copy-by-value: a parameter, range value or plain assignment that
// copies a value whose type (transitively) contains a sync.Mutex or
// sync.RWMutex duplicates lock state — the copy guards nothing.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no blocking (context-taking, sleeping, network) calls while a mutex is held; no mutex copied by value",
	Run:  runLockScope,
}

// lockTargetPkgs scope the held-lock rule to the serving layer, where
// lock contention is the latency story. The copy-by-value rule runs
// everywhere (a copied mutex is a bug in any package).
var lockTargetPkgs = []string{"internal/server", "internal/servercache"}

// lockMethod classifies a call as mutex acquisition/release via the
// method's defining package (catches embedded mutexes too).
func lockMethod(info *types.Info, call *ast.CallExpr) (recv string, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return "", "", false
	}
	obj := s.Obj()
	if objPkgPath(obj) != "sync" {
		return "", "", false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		// Lock/Unlock via an embedded mutex also resolves to the sync
		// method; the rendered receiver names the outer expression,
		// which is the granularity the held-set matching needs.
		return exprString(sel.X), obj.Name(), true
	}
	return "", "", false
}

// exprString renders an expression for lock-identity matching
// ("s.mu", "c.mu"). Syntactic identity is the right granularity here:
// within one function the same lock is spelled the same way.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

// blockingCall explains why a call is considered blocking, or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj != nil {
		switch objPkgPath(obj) {
		case "sync", "sync/atomic", "context":
			return ""
		case "time":
			if obj.Name() == "Sleep" {
				return "time.Sleep"
			}
			return ""
		case "net/http", "net":
			// Pure accessors on request/response values do no I/O.
			switch obj.Name() {
			case "Context", "Header", "URL", "UserAgent", "Referer":
				return ""
			}
			return objPkgPath(obj) + "." + obj.Name()
		}
	}
	if sig := calleeSignature(info, call); takesContext(sig) {
		name := "function value"
		if obj != nil {
			name = obj.Name()
		}
		return "context-taking call " + name
	}
	return ""
}

// containsLock reports whether a value of type t embeds lock state.
// Pointers never do: copying a pointer shares the pointee's lock instead
// of duplicating it.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	if isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func runLockScope(pass *Pass) error {
	target := false
	for _, p := range lockTargetPkgs {
		if PathHasSuffix(pass.Pkg.Path(), p) {
			target = true
		}
	}
	info := pass.TypesInfo
	hasLock := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && containsLock(tv.Type, map[types.Type]bool{})
	}

	for _, fd := range funcDecls(pass.Files) {
		// Copy-by-value: parameters (and receivers) of lock-containing
		// value types.
		fields := []*ast.FieldList{fd.Recv, fd.Type.Params}
		for _, fl := range fields {
			if fl == nil {
				continue
			}
			for _, field := range fl.List {
				tv, ok := info.Types[field.Type]
				if ok && containsLock(tv.Type, map[types.Type]bool{}) {
					pass.Reportf(field.Pos(), "%s receives a value containing a sync mutex by value: the copy's lock guards nothing — pass a pointer", fd.Name.Name)
				}
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					switch ast.Unparen(rhs).(type) {
					case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
						if hasLock(rhs) {
							pass.Reportf(n.Pos(), "assignment copies a value containing a sync mutex: the copy's lock state is duplicated — use a pointer")
						}
					}
				}
			case *ast.RangeStmt:
				// The range value is usually a defining ident, so its type
				// lives in Defs/Uses rather than the expression Types map.
				var vt types.Type
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						vt = obj.Type()
					} else if obj := info.Uses[id]; obj != nil {
						vt = obj.Type()
					}
				} else if n.Value != nil {
					if tv, ok := info.Types[n.Value]; ok {
						vt = tv.Type
					}
				}
				if vt != nil && containsLock(vt, map[types.Type]bool{}) {
					pass.Reportf(n.Value.Pos(), "range copies elements containing a sync mutex by value — iterate by index or store pointers")
				}
			}
			return true
		})
		if target {
			checkHeldLocks(pass, fd.Body, map[string]bool{})
		}
	}
	return nil
}

// checkHeldLocks scans a block linearly, tracking which locks are held
// at each statement; nested blocks inherit (a copy of) the current held
// set. A deferred unlock keeps the lock in the held set to the end of
// the block — which is exactly the window the code holds it for.
func checkHeldLocks(pass *Pass, block *ast.BlockStmt, heldAtEntry map[string]bool) {
	held := make(map[string]bool, len(heldAtEntry))
	for k := range heldAtEntry {
		held[k] = true
	}
	reportBlocking := func(n ast.Node) {
		if n == nil || len(held) == 0 {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, _, isLockOp := lockMethod(pass.TypesInfo, call); isLockOp {
				return true
			}
			if why := blockingCall(pass.TypesInfo, call); why != "" {
				pass.Reportf(call.Pos(), "blocking call (%s) while holding %s: move the work outside the critical section or split the lock", why, sortJoin(held))
				return false
			}
			return true
		})
	}
	for _, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, name, ok := lockMethod(pass.TypesInfo, call); ok {
					switch name {
					case "Lock", "RLock":
						held[recv] = true
					case "Unlock", "RUnlock":
						delete(held, recv)
					}
					continue
				}
			}
			reportBlocking(s)
		case *ast.DeferStmt:
			// defer mu.Unlock() does not release for the rest of the
			// block; anything else deferred is checked as a call made
			// at exit, under whatever is then held.
			if _, name, ok := lockMethod(pass.TypesInfo, s.Call); ok && (name == "Unlock" || name == "RUnlock") {
				continue
			}
			reportBlocking(s)
		case *ast.BlockStmt:
			checkHeldLocks(pass, s, held)
		case *ast.IfStmt:
			if s.Init != nil {
				reportBlocking(s.Init)
			}
			reportBlocking(s.Cond)
			checkHeldLocks(pass, s.Body, held)
			switch els := s.Else.(type) {
			case *ast.BlockStmt:
				checkHeldLocks(pass, els, held)
			case *ast.IfStmt:
				checkHeldLocks(pass, &ast.BlockStmt{List: []ast.Stmt{els}}, held)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				reportBlocking(s.Init)
			}
			reportBlocking(s.Cond)
			checkHeldLocks(pass, s.Body, held)
		case *ast.RangeStmt:
			reportBlocking(s.X)
			checkHeldLocks(pass, s.Body, held)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Init statements and tag expressions run under the lock; case
			// bodies inherit the current held set.
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				if sw.Init != nil {
					reportBlocking(sw.Init)
				}
				if sw.Tag != nil {
					reportBlocking(sw.Tag)
				}
			case *ast.TypeSwitchStmt:
				if sw.Init != nil {
					reportBlocking(sw.Init)
				}
			}
			ast.Inspect(s, func(m ast.Node) bool {
				if cc, ok := m.(*ast.CaseClause); ok {
					for _, st := range cc.Body {
						checkHeldLocks(pass, &ast.BlockStmt{List: []ast.Stmt{st}}, held)
					}
					return false
				}
				if cc, ok := m.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						checkHeldLocks(pass, &ast.BlockStmt{List: []ast.Stmt{st}}, held)
					}
					return false
				}
				return true
			})
		default:
			reportBlocking(stmt)
		}
	}
}

// sortJoin renders a held-lock set deterministically.
func sortJoin(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
