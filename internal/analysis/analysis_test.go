package analysis

import (
	"go/token"
	"testing"
)

func TestNumericPurityFixtures(t *testing.T) {
	RunFixtures(t, NumericPurity, "numericpurity/a", "numericpurity/internal/numeric")
}

func TestNodeImmutFixtures(t *testing.T) {
	RunFixtures(t, NodeImmut, "nodeimmut/a")
}

func TestCtxFlowFixtures(t *testing.T) {
	RunFixtures(t, CtxFlow, "ctxflow/internal/core", "ctxflow/util")
}

func TestMapDeterminismFixtures(t *testing.T) {
	RunFixtures(t, MapDeterminism, "mapdeterminism/a")
}

func TestLockScopeFixtures(t *testing.T) {
	RunFixtures(t, LockScope, "lockscope/internal/server")
}

// TestSpanEndFixtures also loads the fixture obs package itself: it
// deliberately discards a Start result and carries no want comments, so
// the run doubles as a check that internal/obs is exempt.
func TestSpanEndFixtures(t *testing.T) {
	RunFixtures(t, SpanEnd, "spanend/internal/core", "spanend/internal/obs")
}

// TestDirectiveHygiene pins the pseudo-analyzer "repolint" findings:
// unknown directives, missing reasons and unused allows are themselves
// diagnostics, so the allowlist stays audited and self-cleaning.
func TestDirectiveHygiene(t *testing.T) {
	RunFixtures(t, NumericPurity, "directives/a")
}

func TestRegistry(t *testing.T) {
	names := []string{"numericpurity", "nodeimmut", "ctxflow", "mapdeterminism", "lockscope", "spanend"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(names))
	}
	for i, want := range names {
		if all[i].Name != want {
			t.Errorf("All()[%d].Name = %q, want %q", i, all[i].Name, want)
		}
		if ByName(want) != all[i] {
			t.Errorf("ByName(%q) did not return the registered analyzer", want)
		}
		if all[i].Doc == "" || all[i].Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", want)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName returned an analyzer for an unknown name")
	}
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"repro/internal/numeric", "internal/numeric", true},
		{"internal/numeric", "internal/numeric", true},
		{"fixture/internal/numeric", "internal/numeric", true},
		{"repro/internal/xnumeric", "internal/numeric", false},
		{"repro/ternal/numeric", "internal/numeric", false},
		{"repro/internal/numeric/sub", "internal/numeric", false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

// TestLoadRepo loads this repository's own analysis package through the
// go list driver and checks that type information arrived intact — the
// shared-importer setup is what keeps stdlib type identity consistent
// across packages.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	pkgs, err := Load(".", ".")
	if err != nil {
		t.Fatal(err)
	}
	var target *Package
	for _, p := range pkgs {
		if p.Target {
			target = p
		}
	}
	if target == nil {
		t.Fatal("no target package loaded")
	}
	if !PathHasSuffix(target.Path, "internal/analysis") {
		t.Fatalf("target package is %q, want internal/analysis", target.Path)
	}
	if target.Types == nil || target.Info == nil || len(target.Files) == 0 {
		t.Fatal("target package loaded without type information")
	}
	if target.Fset.Position(token.Pos(1)).Filename == "" {
		t.Fatal("file set is empty")
	}
}
