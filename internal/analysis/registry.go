package analysis

// All returns the full repolint suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		NumericPurity,
		NodeImmut,
		CtxFlow,
		MapDeterminism,
		LockScope,
		SpanEnd,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
