package analysis

import (
	"go/ast"
)

// CtxFlow enforces the cancellation invariant: context.Context threads
// through every blocking path. Since PR 3 the whole compute stack
// (Prepare/Apply/ShapleyAll/brute force) and every server handler is
// context-aware, so a request disconnect or daemon drain aborts
// in-flight work; one dropped context anywhere in the chain quietly
// detaches everything below it. The repo's convention — relied on by
// lockscope too — is that "takes a context.Context" is the marker for
// "can block".
//
// Flagged:
//   - context.Background() / context.TODO() in library code (any
//     non-main package): a library must accept its caller's context,
//     not mint an unrooted one. Detaching deliberately is what
//     context.WithoutCancel is for, and compatibility shims carry a
//     //repolint:allow ctxflow: <reason> directive;
//   - a call that could forward the enclosing function's context
//     parameter but passes Background()/TODO() instead;
//   - an exported function in internal/core or internal/server that
//     has no context parameter yet directly calls a context-taking
//     (blocking) callee — the API hides a blocking path it cannot
//     cancel.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "blocking paths must accept and forward context.Context; no context.Background()/TODO() in library code",
	Run:  runCtxFlow,
}

// ctxTargetPkgs are the packages whose *exported* API surface must be
// context-threaded (the compute stack and the serving layer).
var ctxTargetPkgs = []string{"internal/core", "internal/server"}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // binaries own their root context
	}
	target := false
	for _, p := range ctxTargetPkgs {
		if PathHasSuffix(pass.Pkg.Path(), p) {
			target = true
		}
	}

	isBackgroundCall := func(n ast.Node) (string, bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return "", false
		}
		obj := calleeObj(pass.TypesInfo, call)
		if obj == nil || objPkgPath(obj) != "context" {
			return "", false
		}
		if name := obj.Name(); name == "Background" || name == "TODO" {
			return name, true
		}
		return "", false
	}

	for _, fd := range funcDecls(pass.Files) {
		fnHasCtx := false
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
					fnHasCtx = true
				}
			}
		}

		reportedMissing := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if name, ok := isBackgroundCall(n); ok {
				if fnHasCtx {
					pass.Reportf(n.Pos(), "context.%s() inside a function that has a context parameter: forward the caller's context (or detach explicitly with context.WithoutCancel)", name)
				} else {
					pass.Reportf(n.Pos(), "context.%s() in library code: accept a context.Context from the caller and forward it down the blocking path", name)
				}
				return true
			}
			// Exported, context-less API in a target package calling a
			// blocking (context-taking) callee directly.
			if target && !fnHasCtx && !reportedMissing && fd.Name.IsExported() {
				if call, ok := n.(*ast.CallExpr); ok {
					callee := calleeObj(pass.TypesInfo, call)
					if callee != nil && objPkgPath(callee) != "context" && objPkgPath(callee) != "" {
						if sig := calleeSignature(pass.TypesInfo, call); takesContext(sig) {
							reportedMissing = true
							pass.Reportf(fd.Name.Pos(), "exported %s calls context-taking (blocking) %s but has no context.Context parameter: the API cannot be cancelled — accept and forward a context", fd.Name.Name, callee.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
