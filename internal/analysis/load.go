package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and fully type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet // shared across the whole load
	Files []*ast.File    // non-test files, in GoFiles order
	Types *types.Package
	Info  *types.Info
	// Target marks packages matched by the load patterns (as opposed to
	// dependencies pulled in only for type information). Analyzers run on
	// target packages only.
	Target bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, which
// must lie inside a module), parses their non-test sources and
// type-checks them together with their in-module dependencies. Standard
// library imports resolve through the compiler's export data
// (importer.Default), so only repo code is parsed. Deps come back from
// `go list -deps` in dependency order, which is exactly the order
// type-checking needs.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*Package)
	// One shared stdlib importer for the whole load: per-package importers
	// would each materialize their own math/big etc., breaking type
	// identity across repo packages.
	std := importer.Default()
	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg := &Package{
			Path:   lp.ImportPath,
			Dir:    lp.Dir,
			Fset:   fset,
			Files:  files,
			Target: !lp.DepOnly,
		}
		if err := pkg.typeCheck(byPath, std); err != nil {
			return nil, err
		}
		byPath[pkg.Path] = pkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// chainImporter resolves repo-internal imports from the already-checked
// package map and everything else (the standard library) from export data.
type chainImporter struct {
	loaded map[string]*Package
	std    types.Importer
}

func (ci chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.loaded[path]; ok {
		return p.Types, nil
	}
	return ci.std.Import(path)
}

// typeCheck type-checks the package against the packages loaded so far.
func (pkg *Package) typeCheck(loaded map[string]*Package, std types.Importer) error {
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: chainImporter{loaded: loaded, std: std},
	}
	tp, err := conf.Check(pkg.Path, pkg.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tp
	return nil
}
