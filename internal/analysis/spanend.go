package analysis

import (
	"go/ast"
	"go/types"
)

// SpanEnd enforces the tracing invariant introduced with internal/obs:
// every span returned by obs.Start must be ended on every path out of the
// scope that started it. A span only attaches to its parent (and so to
// the ?trace=1 output) when End runs; a path that returns without ending
// the span silently drops the subtree it recorded — the trace stays
// well-formed and nobody notices the hole. The analyzer accepts the two
// idioms the repo uses: `defer sp.End()` (or a deferred closure that
// calls it) immediately after Start, and an explicit sp.End() on every
// return path. Spans handed to a closure (a worker goroutine ending its
// own span) or returned to the caller transfer ownership and are not
// flagged in the starting scope.
//
// The walk is per-function and lexical: nested blocks are analyzed with a
// copy of the open-span set, so a span ended inside only one branch of an
// if/switch is still open on the fallthrough path and gets reported at
// the return that leaks it. Deliberate transfers the analyzer cannot see
// (a span stored in a struct and ended elsewhere) carry a
// //repolint:allow spanend: <reason> directive.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every obs.Start span must be ended on all paths (defer sp.End() or an explicit End per return)",
	Run:  runSpanEnd,
}

// obsPkgSuffix is the span package itself, which is exempt (it implements
// the lifecycle the rule enforces).
const obsPkgSuffix = "internal/obs"

func runSpanEnd(pass *Pass) error {
	if PathHasSuffix(pass.Pkg.Path(), obsPkgSuffix) {
		return nil
	}
	w := &spanWalker{pass: pass}
	for _, fd := range funcDecls(pass.Files) {
		w.scope(fd.Body)
	}
	return nil
}

type spanWalker struct {
	pass *Pass
}

// openSpan tracks one started, not-yet-ended span variable.
type openSpan struct {
	obj  types.Object // the span variable
	name string       // its source name, for diagnostics
}

// isObsStart reports whether call invokes obs.Start.
func (w *spanWalker) isObsStart(call *ast.CallExpr) bool {
	obj := calleeObj(w.pass.TypesInfo, call)
	return obj != nil && obj.Name() == "Start" && PathHasSuffix(objPkgPath(obj), obsPkgSuffix)
}

// spanEndTarget returns the object whose End method the statement-level
// call invokes (sp.End()), or nil.
func (w *spanWalker) spanEndTarget(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return w.pass.TypesInfo.Uses[id]
}

// scope analyzes one function body (a FuncDecl's or a FuncLit's) as an
// independent span scope.
func (w *spanWalker) scope(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	open := make(map[types.Object]*openSpan)
	terminated := w.block(body.List, open, nil)
	if !terminated {
		for _, sp := range open {
			w.pass.Reportf(sp.obj.Pos(), "span %s is not ended before the function falls off the end: defer %s.End() after obs.Start, or call it on every path", sp.name, sp.name)
		}
	}
}

// block walks a statement list sequentially, mutating open, and reports
// spans still open at each return. openedHere collects the spans this
// block opened (nil for the outermost call, whose leaks scope() reports).
// It returns true when the list ends in a statement that leaves the
// enclosing function (return, panic) or the block (break/continue/goto),
// meaning the fall-off-the-end leak check does not apply.
func (w *spanWalker) block(stmts []ast.Stmt, open map[types.Object]*openSpan, openedHere *[]types.Object) bool {
	for _, stmt := range stmts {
		// Closures: a FuncLit anywhere in the statement is (a) its own
		// scope for spans it starts, and (b) an ownership transfer for any
		// currently-open span it ends (worker goroutines, deferred
		// cleanup closures).
		w.visitFuncLits(stmt, open)

		switch st := stmt.(type) {
		case *ast.AssignStmt:
			w.recordStarts(st, open, openedHere)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						w.recordDeclStarts(vs, open, openedHere)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				if w.isObsStart(call) {
					w.pass.Reportf(call.Pos(), "result of obs.Start is discarded: the returned span can never be ended")
					continue
				}
				if obj := w.spanEndTarget(call); obj != nil {
					delete(open, obj)
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		case *ast.DeferStmt:
			// defer sp.End() — or a deferred closure calling it — covers
			// every path from here on; visitFuncLits already handled the
			// closure form, so only the direct form remains.
			if obj := w.spanEndTarget(st.Call); obj != nil {
				delete(open, obj)
			}
		case *ast.ReturnStmt:
			w.reportAtReturn(st, open)
			return true
		case *ast.BranchStmt:
			// break/continue/goto leave the block; the paths they reach
			// are beyond this lexical walk, so stay silent rather than
			// guess.
			return true
		case *ast.BlockStmt:
			if w.nested(st.List, open) {
				return true
			}
		case *ast.IfStmt:
			// An if whose branches all terminate makes the rest of this
			// block dead — the End-per-case idiom (every branch does
			// sp.End(); return ...) must not trip the fall-off check.
			bodyTerm := w.nested(st.Body.List, open)
			elseTerm := false
			if st.Else != nil {
				elseTerm = w.nested([]ast.Stmt{st.Else}, open)
			}
			if bodyTerm && elseTerm {
				return true
			}
		case *ast.ForStmt:
			w.nested(st.Body.List, open)
		case *ast.RangeStmt:
			w.nested(st.Body.List, open)
		case *ast.SwitchStmt:
			if w.caseClauses(st.Body, open) {
				return true
			}
		case *ast.TypeSwitchStmt:
			if w.caseClauses(st.Body, open) {
				return true
			}
		case *ast.SelectStmt:
			allTerm := len(st.Body.List) > 0
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if !w.nested(cc.Body, open) {
						allTerm = false
					}
				}
			}
			if allTerm {
				return true
			}
		case *ast.LabeledStmt:
			if w.block([]ast.Stmt{st.Stmt}, open, openedHere) {
				return true
			}
		}
	}
	return false
}

// caseClauses analyzes each case body of a switch and reports whether the
// switch as a whole terminates: a default clause exists and every clause
// terminates, so no path falls through to the statements after it.
func (w *spanWalker) caseClauses(body *ast.BlockStmt, open map[types.Object]*openSpan) bool {
	allTerm := len(body.List) > 0
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		if !w.nested(cc.Body, open) {
			allTerm = false
		}
	}
	return allTerm && hasDefault
}

// nested analyzes a subordinate block with a copy of the open set (ending
// a span inside one branch does not end it on the others) and reports
// spans the branch itself opened and leaked. It returns true when the
// branch terminates (its leaks were already handled at its return).
func (w *spanWalker) nested(stmts []ast.Stmt, outer map[types.Object]*openSpan) bool {
	open := make(map[types.Object]*openSpan, len(outer))
	for k, v := range outer {
		open[k] = v
	}
	var openedHere []types.Object
	terminated := w.block(stmts, open, &openedHere)
	if !terminated {
		for _, obj := range openedHere {
			if sp, still := open[obj]; still {
				w.pass.Reportf(sp.obj.Pos(), "span %s started in this block is not ended before the block ends", sp.name)
			}
		}
	}
	return terminated
}

// recordStarts tracks the span variable of `_, sp := obs.Start(...)`.
func (w *spanWalker) recordStarts(st *ast.AssignStmt, open map[types.Object]*openSpan, openedHere *[]types.Object) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok || !w.isObsStart(call) {
		return
	}
	if len(st.Lhs) != 2 {
		return
	}
	id, ok := ast.Unparen(st.Lhs[1]).(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		w.pass.Reportf(id.Pos(), "span returned by obs.Start is assigned to _: the span can never be ended")
		return
	}
	obj := w.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Uses[id] // plain `=` re-assignment
	}
	if obj == nil {
		return
	}
	open[obj] = &openSpan{obj: obj, name: id.Name}
	if openedHere != nil {
		*openedHere = append(*openedHere, obj)
	}
}

// recordDeclStarts is recordStarts for `var ctx, sp = obs.Start(...)`.
func (w *spanWalker) recordDeclStarts(vs *ast.ValueSpec, open map[types.Object]*openSpan, openedHere *[]types.Object) {
	if len(vs.Values) != 1 || len(vs.Names) != 2 {
		return
	}
	call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
	if !ok || !w.isObsStart(call) {
		return
	}
	id := vs.Names[1]
	if id.Name == "_" {
		w.pass.Reportf(id.Pos(), "span returned by obs.Start is assigned to _: the span can never be ended")
		return
	}
	obj := w.pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	open[obj] = &openSpan{obj: obj, name: id.Name}
	if openedHere != nil {
		*openedHere = append(*openedHere, obj)
	}
}

// reportAtReturn flags every span still open at a return, except spans
// the return hands to the caller (ownership transfer, the wrapper-helper
// shape).
func (w *spanWalker) reportAtReturn(ret *ast.ReturnStmt, open map[types.Object]*openSpan) {
	returned := make(map[types.Object]bool)
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
					returned[obj] = true
				}
			}
			return true
		})
	}
	for _, sp := range open {
		if returned[sp.obj] {
			continue
		}
		w.pass.Reportf(ret.Pos(), "return without ending span %s (started at obs.Start): call %s.End() before returning or defer it", sp.name, sp.name)
	}
}

// visitFuncLits finds every function literal in the statement, treats the
// spans it ends as transferred out of the current scope, and analyzes its
// body as an independent scope.
func (w *spanWalker) visitFuncLits(stmt ast.Stmt, open map[types.Object]*openSpan) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if obj := w.spanEndTarget(call); obj != nil {
					delete(open, obj)
				}
			}
			return true
		})
		w.scope(fl.Body)
		return false // the literal's own spans were handled by scope()
	})
}
