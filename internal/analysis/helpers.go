package analysis

import (
	"go/ast"
	"go/types"
)

// namedFrom unwraps pointers and aliases down to a named type, or nil.
func namedFrom(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (after pointer/alias unwrapping) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// takesContext reports whether the signature has a context.Context
// parameter (by convention the repo's marker for "this call can block").
func takesContext(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeObj resolves the function or method object a call expression
// invokes, or nil for builtins, conversions and indirect calls through
// function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Func.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// calleeSignature returns the static signature of the call's callee when
// one is known (including calls through function-typed values).
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if obj := calleeObj(info, call); obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			return sig
		}
	}
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// objPkgPath returns the import path of the object's package ("" for
// builtins and universe-scope objects).
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// funcDecls yields every function declaration of the pass's files.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// sliceOf reports whether t is a slice with the given element predicate.
func sliceOf(t types.Type, elem func(types.Type) bool) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && elem(s.Elem())
}

// isUint64 reports whether t is exactly uint64.
func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}
