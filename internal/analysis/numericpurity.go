package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NumericPurity enforces the numeric-boundary invariant: all count
// arithmetic flows through the adaptive exact kernel (internal/numeric)
// or the audited big.Int reference combinatorics differentially pinned
// against it (internal/combinat). A raw math/big arithmetic path, a
// hand-rolled []uint64 convolution loop, or ad-hoc count-vector
// construction anywhere else can silently diverge from the kernel's
// promotion lattice — exactly the class of bug the representation-
// boundary fuzzers exist to catch, except outside their reach.
//
// Flagged outside the allowed packages (escape hatch: //repolint:allow
// numericpurity: <reason>):
//   - calls to big.Int arithmetic methods (Add, Mul, Quo, Lsh, ...);
//   - make([]*big.Int, ...) count-vector construction;
//   - multiply-accumulate loops over []uint64 words (the shape of a
//     convolution inner loop re-implemented outside the kernel's
//     overflow-checked paths).
//
// big.Rat is deliberately out of scope: rationals are the probability
// and final Shapley-weighting domain, which never enters the promotion
// lattice (the kernel hands off to big.Rat exactly once, at the output
// boundary).
var NumericPurity = &Analyzer{
	Name: "numericpurity",
	Doc:  "count arithmetic must flow through internal/numeric (or the audited internal/combinat reference), never raw math/big or []uint64 loops",
	Run:  runNumericPurity,
}

// numericAllowedPkgs are the packages whose whole point is big.Int/u64
// arithmetic: the kernel itself and the reference combinatorics it is
// differentially pinned against.
var numericAllowedPkgs = []string{"internal/numeric", "internal/combinat"}

// bigIntArith is the set of big.Int methods that compute (as opposed to
// construct, convert, compare or render). Calling one outside the kernel
// is a parallel arithmetic path.
var bigIntArith = map[string]bool{
	"Add": true, "Sub": true, "Mul": true, "MulRange": true,
	"Quo": true, "Rem": true, "QuoRem": true, "Div": true, "Mod": true,
	"DivMod": true, "Exp": true, "GCD": true, "Binomial": true,
	"Lsh": true, "Rsh": true, "Neg": true, "Abs": true, "Sqrt": true,
	"ModInverse": true, "ModSqrt": true,
	"And": true, "Or": true, "Xor": true, "AndNot": true, "Not": true,
}

func runNumericPurity(pass *Pass) error {
	for _, allowed := range numericAllowedPkgs {
		if PathHasSuffix(pass.Pkg.Path(), allowed) {
			return nil
		}
	}
	isU64Slice := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && sliceOf(tv.Type, isUint64)
	}
	// u64 multiply-accumulate: lhs[i] += a[j] * b[k] (or lhs[i] = lhs[i] +
	// a[j]*b[k]) over uint64 words — the convolution inner-loop shape.
	isU64Index := func(e ast.Expr) bool {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		return ok && isU64Slice(ix.X)
	}
	hasU64Mul := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.MUL && isU64Index(b.X) && isU64Index(b.Y) {
				found = true
			}
			return !found
		})
		return found
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if s, ok := pass.TypesInfo.Selections[sel]; ok && bigIntArith[sel.Sel.Name] && isNamedType(s.Recv(), "math/big", "Int") {
						pass.Reportf(n.Pos(), "big.Int arithmetic (%s) outside internal/numeric: count arithmetic must go through the exact kernel so it cannot diverge from the promotion lattice", sel.Sel.Name)
					}
				}
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.IsType() && sliceOf(tv.Type, func(e types.Type) bool {
						return isNamedType(e, "math/big", "Int")
					}) {
						pass.Reportf(n.Pos(), "count-vector construction (make []*big.Int) outside internal/numeric: build vectors on numeric.Vec (or combinat.ZeroVector at the reference boundary)")
					}
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isU64Index(n.Lhs[0]) && hasU64Mul(n.Rhs[0]) {
					pass.Reportf(n.Pos(), "raw []uint64 multiply-accumulate loop outside internal/numeric: this is a convolution path without the kernel's overflow promotion")
				}
				if n.Tok == token.ASSIGN && len(n.Lhs) == 1 && isU64Index(n.Lhs[0]) && hasU64Mul(n.Rhs[0]) {
					pass.Reportf(n.Pos(), "raw []uint64 multiply-accumulate loop outside internal/numeric: this is a convolution path without the kernel's overflow promotion")
				}
			}
			return true
		})
	}
	return nil
}
