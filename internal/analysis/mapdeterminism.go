package analysis

import (
	"go/ast"
	"go/types"
)

// MapDeterminism enforces the ordering invariant: nothing ordered,
// encoded or hashed may derive from Go's randomized map iteration. The
// engine's output contracts (Facts()-ordered batch results, sorted
// bucket values, canonical query renderings, the Prometheus exposition)
// are all deterministic, and the PR 5 digest/label paths are safe under
// map iteration only because they combine by order-independent addition
// — a pattern this analyzer deliberately does not flag.
//
// Flagged inside a `for ... range m` over a map:
//   - writes to ordered sinks: fmt printing, io/hash/builder Write*,
//     json Encode — the iteration order leaks straight into output or
//     into an order-dependent hash state;
//   - appends to a slice declared outside the loop that is never sorted
//     later in the same function — the slice's order is the iteration
//     order, and it escapes unsorted.
//
// Order-independent folds (counter increments, additive digests, map
// inserts) are not flagged. False positives (e.g. a caller that sorts)
// take //repolint:allow mapdeterminism: <reason>.
var MapDeterminism = &Analyzer{
	Name: "mapdeterminism",
	Doc:  "no ordered output, hashing or encoding may derive from map iteration order; collected slices must be sorted",
	Run:  runMapDeterminism,
}

// orderedSinkCall classifies calls whose argument order becomes output
// order (or order-dependent hash state).
func orderedSinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(info, call)
	if obj == nil {
		return "", false
	}
	name := obj.Name()
	switch objPkgPath(obj) {
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "fmt." + name, true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recv := namedFrom(s.Recv())
			switch name {
			case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo":
				return "Write on " + types.TypeString(s.Recv(), types.RelativeTo(nil)), true
			case "Encode":
				if recv != nil && recv.Obj().Name() == "Encoder" {
					return "Encoder.Encode", true
				}
			}
		}
	}
	return "", false
}

// sortCalls are the functions recognized as establishing a deterministic
// order over a collected slice.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil {
		return false
	}
	switch objPkgPath(obj) {
	case "sort":
		return true // sort.Strings/Ints/Slice/Sort/Stable/...
	case "slices":
		switch obj.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

func runMapDeterminism(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, fd, rng)
			return true
		})
	}
	return nil
}

// checkMapRange inspects one map-range loop for ordered sinks.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sink, ok := orderedSinkCall(info, n); ok {
				pass.Reportf(n.Pos(), "map iteration order leaks into ordered output (%s): iterate a sorted key slice instead", sink)
			}
		case *ast.AssignStmt:
			// s = append(s, ...) where s outlives the loop.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(n.Lhs) <= i {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				target, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[target]
				if obj == nil {
					obj = info.Uses[target]
				}
				if obj == nil || obj.Parent() == nil {
					continue
				}
				// Declared inside the loop body: dies with the iteration.
				if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
					continue
				}
				if !sortedAfter(pass, fd, rng, obj) {
					pass.Reportf(n.Pos(), "slice %s collects map keys/values in iteration order and is never sorted in %s: sort it before it escapes, or sort the keys and iterate those", target.Name, fd.Name.Name)
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether obj (the collected slice) is passed to a
// recognized sort call somewhere after the range loop in the same
// function.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || !isSortCall(pass.TypesInfo, call) {
			return !found
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if u := pass.TypesInfo.Uses[id]; u == obj {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}
