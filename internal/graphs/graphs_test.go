package graphs

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/combinat"
)

func TestCountIndependentSetsSmall(t *testing.T) {
	// Single edge between one left and one right vertex: subsets of {l, r}
	// minus {l, r} itself = 3.
	g := &Bipartite{Left: 1, Right: 1, Edges: [][2]int{{0, 0}}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.CountIndependentSets(); got.Int64() != 3 {
		t.Fatalf("IS count = %s, want 3", got)
	}
	// No edges: every subset is independent.
	g = &Bipartite{Left: 2, Right: 3}
	if got := g.CountIndependentSets(); got.Int64() != 32 {
		t.Fatalf("edge-free IS count = %s, want 2^5", got)
	}
	// Complete bipartite K2,2: choose a side or nothing per side...
	// IS = subsets with left part empty (2^2) + nonempty left with empty
	// right (2^2 − 1) = 7.
	g = &Bipartite{Left: 2, Right: 2, Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}}
	if got := g.CountIndependentSets(); got.Int64() != 7 {
		t.Fatalf("K2,2 IS count = %s, want 7", got)
	}
}

func TestSFamilyEqualsIS(t *testing.T) {
	// |S(g)| = |IS(g)| (the bijection in Lemma B.3).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		g := RandomBipartite(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.4)
		is := g.CountIndependentSets()
		s := g.CountSFamily()
		if is.Cmp(s) != 0 {
			t.Fatalf("|IS| = %s but |S| = %s for %+v", is, s, g)
		}
		// And the size-stratified counts sum to the total.
		sum := combinat.SumVector(g.SFamilySizeCounts())
		if sum.Cmp(is) != 0 {
			t.Fatalf("Σ|S(g,k)| = %s, want %s", sum, is)
		}
	}
}

func TestSFamilySizeCountsSmall(t *testing.T) {
	// Single edge (l0, r0): S = {∅, {r}, {l, r}} ∪ ... wait, S requires
	// chosen-left ⇒ all neighbors chosen: subsets are ∅, {r0}, {l0, r0} and
	// {l0} is excluded. Sizes: 1 of size 0, 1 of size 1, 1 of size 2.
	g := &Bipartite{Left: 1, Right: 1, Edges: [][2]int{{0, 0}}}
	s := g.SFamilySizeCounts()
	want := []int64{1, 1, 1}
	for k, w := range want {
		if s[k].Int64() != w {
			t.Fatalf("|S(g,%d)| = %s, want %d", k, s[k], w)
		}
	}
}

func TestRandomBipartiteNoIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := RandomBipartite(rng, 1+rng.Intn(5), 1+rng.Intn(5), 0.2)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if g.HasIsolatedVertex() {
			t.Fatalf("generator left an isolated vertex: %+v", g)
		}
	}
}

func TestBipartiteValidate(t *testing.T) {
	g := &Bipartite{Left: 1, Right: 1, Edges: [][2]int{{1, 0}}}
	if g.Validate() == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestThreeColoring(t *testing.T) {
	// A 4-cycle is 2-colorable, hence 3-colorable.
	c4 := &Graph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}
	if colors := c4.ThreeColoring(); colors == nil || !c4.IsProperColoring(colors) {
		t.Fatal("C4 should be 3-colorable")
	}
	// K3 is 3-colorable, K4 is not.
	if CompleteGraph(3).ThreeColoring() == nil {
		t.Fatal("K3 should be 3-colorable")
	}
	if CompleteGraph(4).ThreeColoring() != nil {
		t.Fatal("K4 should not be 3-colorable")
	}
	// An odd cycle (C5) is 3-colorable but not 2-colorable.
	c5 := &Graph{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}}
	colors := c5.ThreeColoring()
	if colors == nil || !c5.IsProperColoring(colors) {
		t.Fatal("C5 should be 3-colorable")
	}
}

func TestIsProperColoringRejects(t *testing.T) {
	g := CompleteGraph(3)
	if g.IsProperColoring([]int{0, 0, 1}) {
		t.Fatal("monochromatic edge accepted")
	}
	if g.IsProperColoring([]int{0, 1}) {
		t.Fatal("wrong length accepted")
	}
	if g.IsProperColoring([]int{0, 1, 5}) {
		t.Fatal("out-of-range color accepted")
	}
	if !g.IsProperColoring([]int{0, 1, 2}) {
		t.Fatal("proper coloring rejected")
	}
}

func TestGraphValidate(t *testing.T) {
	g := &Graph{N: 2, Edges: [][2]int{{0, 0}}}
	if g.Validate() == nil {
		t.Fatal("self-loop accepted")
	}
	g = &Graph{N: 2, Edges: [][2]int{{0, 5}}}
	if g.Validate() == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestCountISMatchesSubsetEnumeration(t *testing.T) {
	// Independent cross-check of CountIndependentSets against full 2^(L+R)
	// enumeration.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		g := RandomBipartite(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.5)
		n := g.Left + g.Right
		count := new(big.Int)
		for mask := 0; mask < 1<<uint(n); mask++ {
			ok := true
			for _, e := range g.Edges {
				if mask&(1<<uint(e[0])) != 0 && mask&(1<<uint(g.Left+e[1])) != 0 {
					ok = false
					break
				}
			}
			if ok {
				count.Add(count, big.NewInt(1))
			}
		}
		if got := g.CountIndependentSets(); got.Cmp(count) != 0 {
			t.Fatalf("fast count %s != enumeration %s for %+v", got, count, g)
		}
	}
}
