// Package graphs provides the graph substrate of the paper's reductions:
// bipartite graphs with independent-set counting (the #P-complete problem
// behind Lemma B.3), the set family S(g) from that proof, and undirected
// graphs with 3-colorability (the problem behind Lemma D.1).
package graphs

//repolint:allow-file numericpurity: independent-set and coloring counters for the hardness reductions — combinatorial reference arithmetic, not Shapley count vectors

import (
	"fmt"
	"math/big"
	"math/rand"
)

// Bipartite is a bipartite graph with Left and Right vertex counts and
// edges (l, r) with 0 ≤ l < Left, 0 ≤ r < Right.
type Bipartite struct {
	Left, Right int
	Edges       [][2]int
}

// Validate checks edge endpoints.
func (g *Bipartite) Validate() error {
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.Left || e[1] < 0 || e[1] >= g.Right {
			return fmt.Errorf("graphs: edge %v out of range %dx%d", e, g.Left, g.Right)
		}
	}
	return nil
}

// HasIsolatedVertex reports whether some vertex touches no edge (the
// Lemma B.3 construction assumes none do).
func (g *Bipartite) HasIsolatedVertex() bool {
	degL := make([]int, g.Left)
	degR := make([]int, g.Right)
	for _, e := range g.Edges {
		degL[e[0]]++
		degR[e[1]]++
	}
	for _, d := range degL {
		if d == 0 {
			return true
		}
	}
	for _, d := range degR {
		if d == 0 {
			return true
		}
	}
	return false
}

// CountIndependentSets returns |IS(g)|: the number of subsets of vertices
// with no edge inside. For a bipartite graph this enumerates the 2^Left
// choices of left part and counts the free right vertices, so it is exact
// and fast for Left ≤ ~24.
func (g *Bipartite) CountIndependentSets() *big.Int {
	if g.Left > 24 {
		panic("graphs: CountIndependentSets limited to 24 left vertices")
	}
	neighbors := make([]uint64, g.Left) // right-neighborhood bitmask per left vertex
	for _, e := range g.Edges {
		neighbors[e[0]] |= 1 << uint(e[1])
	}
	total := new(big.Int)
	one := big.NewInt(1)
	for mask := 0; mask < 1<<uint(g.Left); mask++ {
		var blocked uint64
		for l := 0; l < g.Left; l++ {
			if mask&(1<<uint(l)) != 0 {
				blocked |= neighbors[l]
			}
		}
		free := g.Right - popcount(blocked)
		term := new(big.Int).Lsh(one, uint(free))
		total.Add(total, term)
	}
	return total
}

// CountSFamily returns |S(g)| from the Lemma B.3 proof: subsets A′ ∪ B′
// such that every neighbor of a chosen left vertex is chosen. The proof
// shows |S(g)| = |IS(g)| via B′ ↦ B \ B′; this method counts S directly so
// the bijection can be tested.
func (g *Bipartite) CountSFamily() *big.Int {
	if g.Left > 24 {
		panic("graphs: CountSFamily limited to 24 left vertices")
	}
	neighbors := make([]uint64, g.Left)
	for _, e := range g.Edges {
		neighbors[e[0]] |= 1 << uint(e[1])
	}
	total := new(big.Int)
	one := big.NewInt(1)
	for mask := 0; mask < 1<<uint(g.Left); mask++ {
		var required uint64
		for l := 0; l < g.Left; l++ {
			if mask&(1<<uint(l)) != 0 {
				required |= neighbors[l]
			}
		}
		free := g.Right - popcount(required)
		total.Add(total, new(big.Int).Lsh(one, uint(free)))
	}
	return total
}

// SFamilySizeCounts returns the vector s[k] = |S(g,k)| for k = 0..Left+Right
// (brute force over both sides; Left+Right ≤ 20), used to validate the
// equation system of the Lemma B.3 reduction.
func (g *Bipartite) SFamilySizeCounts() []*big.Int {
	n := g.Left + g.Right
	if n > 20 {
		panic("graphs: SFamilySizeCounts limited to 20 vertices")
	}
	neighbors := make([]uint64, g.Left)
	for _, e := range g.Edges {
		neighbors[e[0]] |= 1 << uint(e[1])
	}
	out := make([]*big.Int, n+1)
	for i := range out {
		out[i] = new(big.Int)
	}
	for mask := 0; mask < 1<<uint(n); mask++ {
		leftMask := mask & (1<<uint(g.Left) - 1)
		rightMask := uint64(mask >> uint(g.Left))
		ok := true
		for l := 0; l < g.Left && ok; l++ {
			if leftMask&(1<<uint(l)) != 0 && neighbors[l]&^rightMask != 0 {
				ok = false
			}
		}
		if ok {
			out[popcount(uint64(mask))].Add(out[popcount(uint64(mask))], big.NewInt(1))
		}
	}
	return out
}

// RandomBipartite generates a bipartite graph where each of the left×right
// edges is present with probability p; vertices left isolated are then
// connected to a random partner so the Lemma B.3 assumption holds.
func RandomBipartite(rng *rand.Rand, left, right int, p float64) *Bipartite {
	g := &Bipartite{Left: left, Right: right}
	seen := make(map[[2]int]bool)
	add := func(l, r int) {
		e := [2]int{l, r}
		if !seen[e] {
			seen[e] = true
			g.Edges = append(g.Edges, e)
		}
	}
	for l := 0; l < left; l++ {
		for r := 0; r < right; r++ {
			if rng.Float64() < p {
				add(l, r)
			}
		}
	}
	degL := make([]int, left)
	degR := make([]int, right)
	for _, e := range g.Edges {
		degL[e[0]]++
		degR[e[1]]++
	}
	for l := 0; l < left; l++ {
		if degL[l] == 0 && right > 0 {
			r := rng.Intn(right)
			add(l, r)
			degR[r]++
		}
	}
	for r := 0; r < right; r++ {
		if degR[r] == 0 && left > 0 {
			add(rng.Intn(left), r)
		}
	}
	return g
}

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// Validate checks edge endpoints.
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N || e[0] == e[1] {
			return fmt.Errorf("graphs: bad edge %v in graph of %d vertices", e, g.N)
		}
	}
	return nil
}

// ThreeColoring returns a proper 3-coloring (vertex → 0..2) or nil if none
// exists, by backtracking.
func (g *Graph) ThreeColoring() []int {
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	var assign func(v int) bool
	assign = func(v int) bool {
		if v == g.N {
			return true
		}
		for c := 0; c < 3; c++ {
			ok := true
			for _, u := range adj[v] {
				if colors[u] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if assign(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	if !assign(0) {
		return nil
	}
	return colors
}

// IsProperColoring verifies a candidate coloring.
func (g *Graph) IsProperColoring(colors []int) bool {
	if len(colors) != g.N {
		return false
	}
	for _, c := range colors {
		if c < 0 || c > 2 {
			return false
		}
	}
	for _, e := range g.Edges {
		if colors[e[0]] == colors[e[1]] {
			return false
		}
	}
	return true
}

// RandomGraph generates a simple graph with edge probability p.
func RandomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := &Graph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	return g
}

// CompleteGraph returns K_n (3-colorable iff n ≤ 3).
func CompleteGraph(n int) *Graph {
	g := &Graph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Edges = append(g.Edges, [2]int{i, j})
		}
	}
	return g
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
