// Package measures implements the two earlier contribution measures the
// paper positions the Shapley value against in §1: the causal effect of
// Salimi et al. (the change in expected query value between assuming the
// presence and the absence of a fact, with endogenous facts removed
// independently and uniformly) and the responsibility of Meliou et al.
// (inversely proportional to the smallest contingency set making the fact
// counterfactual). They share the endogenous/exogenous fact model and are
// useful baselines when comparing attribution schemes.
package measures

import (
	"fmt"
	"math/big"

	"repro/internal/db"
	"repro/internal/probdb"
	"repro/internal/query"
)

var half = big.NewRat(1, 2)

// CausalEffect computes the causal effect of the endogenous fact f on the
// Boolean CQ¬ q:
//
//	CE(f) = E[q | f present] − E[q | f absent],
//
// where every other endogenous fact is present independently with
// probability 1/2 and exogenous facts are always present. For hierarchical
// self-join-free queries the two expectations are computed by exact lifted
// inference; otherwise by possible-world enumeration (exponential).
//
// For a Boolean game this quantity coincides with the Banzhaf power index
// of f (the uniform-subset analogue of the Shapley value), which is why
// causal effect inherits tractability exactly where probabilistic query
// evaluation is tractable.
func CausalEffect(d *db.Database, q *query.CQ, f db.Fact) (*big.Rat, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("measures: %s is not an endogenous fact", f)
	}
	build := func(withF bool) *probdb.ProbDatabase {
		pd := probdb.New()
		for _, g := range d.Facts() {
			switch {
			case g.Key() == f.Key():
				if withF {
					pd.MustAdd(g, big.NewRat(1, 1))
				}
			case d.IsEndogenous(g):
				pd.MustAdd(g, half)
			default:
				pd.MustAdd(g, big.NewRat(1, 1))
			}
		}
		return pd
	}
	eval := func(pd *probdb.ProbDatabase) (*big.Rat, error) {
		if !q.HasSelfJoin() && q.IsHierarchical() {
			return probdb.LiftedProbability(pd, q)
		}
		return probdb.BruteForceProbability(pd, q)
	}
	with, err := eval(build(true))
	if err != nil {
		return nil, err
	}
	without, err := eval(build(false))
	if err != nil {
		return nil, err
	}
	return new(big.Rat).Sub(with, without), nil
}

// maxResponsibilityFacts caps the contingency-set search.
const maxResponsibilityFacts = 22

// Responsibility computes Meliou et al.'s responsibility of the endogenous
// fact f for the answer of q on D:
//
//	ρ(f) = 1 / (1 + min |Γ|)
//
// over contingency sets Γ ⊆ Dn \ {f} such that removing Γ from D leaves f
// counterfactual (q(D−Γ) ≠ q(D−Γ−{f})), and 0 if no such Γ exists. The
// search enumerates candidate sets in order of increasing size, so the
// returned minimum is exact.
func Responsibility(d *db.Database, q *query.CQ, f db.Fact) (*big.Rat, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("measures: %s is not an endogenous fact", f)
	}
	var others []db.Fact
	for _, e := range d.EndoFacts() {
		if e.Key() != f.Key() {
			others = append(others, e)
		}
	}
	if len(others) > maxResponsibilityFacts {
		return nil, fmt.Errorf("measures: %d endogenous facts exceed the responsibility search limit", len(others)+1)
	}
	for size := 0; size <= len(others); size++ {
		found := false
		forEachSubsetOfSize(len(others), size, func(idx []int) bool {
			remove := make(map[string]bool, size)
			for _, i := range idx {
				remove[others[i].Key()] = true
			}
			reduced := d.Restrict(func(g db.Fact, _ bool) bool { return !remove[g.Key()] })
			withF := q.Eval(reduced)
			minusF, err := reduced.Without(f)
			if err != nil {
				return true
			}
			if withF != q.Eval(minusF) {
				found = true
				return false
			}
			return true
		})
		if found {
			return big.NewRat(1, int64(1+size)), nil
		}
	}
	return new(big.Rat), nil
}

// forEachSubsetOfSize enumerates the k-subsets of {0..n-1} in lexicographic
// order; fn returns false to stop.
func forEachSubsetOfSize(n, k int, fn func([]int) bool) {
	idx := make([]int, k)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			return fn(idx)
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			if !rec(i+1, depth+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}
