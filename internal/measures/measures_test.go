package measures

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/probdb"
	"repro/internal/query"
)

func runningExample() *db.Database {
	return db.MustParse(`
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
exo  Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
`)
}

var q1 = query.MustParse("q1() :- Stud(x), !TA(x), Reg(x, y)")

func TestCausalEffectSigns(t *testing.T) {
	d := runningExample()
	// Registrations have positive causal effect, TA facts negative,
	// TA(David) exactly zero — matching the Shapley sign structure.
	pos, err := CausalEffect(d, q1, db.F("Reg", "Caroline", "DB"))
	if err != nil {
		t.Fatal(err)
	}
	if pos.Sign() <= 0 {
		t.Fatalf("CE(Reg(Caroline,DB)) = %s, want > 0", pos.RatString())
	}
	neg, err := CausalEffect(d, q1, db.F("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if neg.Sign() >= 0 {
		t.Fatalf("CE(TA(Adam)) = %s, want < 0", neg.RatString())
	}
	zero, err := CausalEffect(d, q1, db.F("TA", "David"))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Sign() != 0 {
		t.Fatalf("CE(TA(David)) = %s, want 0", zero.RatString())
	}
}

func TestCausalEffectLiftedMatchesBrute(t *testing.T) {
	// Force the brute path by using a self-join query, and compare the
	// lifted path against manual world enumeration on q1.
	d := runningExample()
	f := db.F("Reg", "Ben", "OS")
	fast, err := CausalEffect(d, q1, f)
	if err != nil {
		t.Fatal(err)
	}
	// Manual enumeration.
	pdWith := probdb.New()
	pdWithout := probdb.New()
	for _, g := range d.Facts() {
		p := big.NewRat(1, 1)
		if d.IsEndogenous(g) {
			p = big.NewRat(1, 2)
		}
		if g.Key() == f.Key() {
			pdWith.MustAdd(g, big.NewRat(1, 1))
			continue
		}
		pdWith.MustAdd(g, p)
		pdWithout.MustAdd(g, p)
	}
	a, err := probdb.BruteForceProbability(pdWith, q1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := probdb.BruteForceProbability(pdWithout, q1)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).Sub(a, b)
	if fast.Cmp(want) != 0 {
		t.Fatalf("CE = %s, enumeration gives %s", fast.RatString(), want.RatString())
	}
}

func TestCausalEffectSelfJoinBrutePath(t *testing.T) {
	q := query.MustParse("q() :- R(x, y), !R(y, x)")
	d := db.New()
	d.MustAddEndo(db.F("R", "1", "2"))
	d.MustAddEndo(db.F("R", "2", "1"))
	ce, err := CausalEffect(d, q, db.F("R", "1", "2"))
	if err != nil {
		t.Fatal(err)
	}
	// By symmetry with Example 5.3 the effect is positive here: adding
	// R(1,2) helps when R(2,1) is absent (prob 1/2) and hurts when present
	// and... enumerate: f present: worlds over R(2,1): p=1/2 each:
	// {f}: true; {f, R(2,1)}: false → E = 1/2. f absent: {}: false;
	// {R(2,1)}: true → E = 1/2. CE = 0, mirroring the zero Shapley value.
	if ce.Sign() != 0 {
		t.Fatalf("CE = %s, want 0 by symmetry", ce.RatString())
	}
}

func TestCausalEffectRejectsNonEndogenous(t *testing.T) {
	d := runningExample()
	if _, err := CausalEffect(d, q1, db.F("Stud", "Adam")); err == nil {
		t.Fatal("exogenous fact accepted")
	}
	if _, err := Responsibility(d, q1, db.F("Stud", "Adam")); err == nil {
		t.Fatal("exogenous fact accepted")
	}
}

func TestResponsibilityRunningExample(t *testing.T) {
	d := runningExample()
	// q1(D) is true (Caroline). Reg(Caroline,DB) becomes counterfactual
	// after removing {Reg(Caroline,IC)}: ρ = 1/2.
	r, err := Responsibility(d, q1, db.F("Reg", "Caroline", "DB"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("ρ(Reg(Caroline,DB)) = %s, want 1/2", r.RatString())
	}
	// TA(David) can never be counterfactual: ρ = 0.
	r, err = Responsibility(d, q1, db.F("TA", "David"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Sign() != 0 {
		t.Fatalf("ρ(TA(David)) = %s, want 0", r.RatString())
	}
	// TA(Adam): with Γ = {Reg(Caroline,DB), Reg(Caroline,IC)} the query is
	// false (Ben and David are blocked anyway), and removing TA(Adam) frees
	// Adam's registrations: counterfactual with |Γ| = 2, so ρ = 1/3.
	r, err = Responsibility(d, q1, db.F("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(big.NewRat(1, 3)) != 0 {
		t.Fatalf("ρ(TA(Adam)) = %s, want 1/3 (two removals needed)", r.RatString())
	}
}

func TestResponsibilityCounterfactualDirectly(t *testing.T) {
	// A fact that is counterfactual outright has responsibility 1.
	d := db.New()
	d.MustAddExo(db.F("Stud", "A"))
	d.MustAddEndo(db.F("Reg", "A", "C"))
	q := query.MustParse("q() :- Stud(x), Reg(x, y)")
	r, err := Responsibility(d, q, db.F("Reg", "A", "C"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("ρ = %s, want 1", r.RatString())
	}
}

func TestForEachSubsetOfSize(t *testing.T) {
	var got [][]int
	forEachSubsetOfSize(4, 2, func(idx []int) bool {
		got = append(got, append([]int(nil), idx...))
		return true
	})
	if len(got) != 6 {
		t.Fatalf("C(4,2) = 6 subsets, got %d", len(got))
	}
	n := 0
	forEachSubsetOfSize(5, 2, func([]int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop at 3, got %d", n)
	}
}

func TestCausalEffectRandomAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := query.MustParse("q() :- R(x), !S(x)")
	for trial := 0; trial < 6; trial++ {
		d := db.New()
		for i := 0; i < 4; i++ {
			c := db.Const(string(rune('a' + rng.Intn(3))))
			f := db.NewFact("R", c)
			if !d.Contains(f) {
				d.MustAdd(f, rng.Intn(2) == 0)
			}
			g := db.NewFact("S", c)
			if !d.Contains(g) && rng.Intn(2) == 0 {
				d.MustAdd(g, true)
			}
		}
		if d.NumEndo() == 0 {
			continue
		}
		f := d.EndoFacts()[0]
		ce, err := CausalEffect(d, q, f)
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate directly.
		var others []db.Fact
		for _, e := range d.EndoFacts() {
			if e.Key() != f.Key() {
				others = append(others, e)
			}
		}
		dx := d.Restrict(func(_ db.Fact, e bool) bool { return !e })
		diff := new(big.Rat)
		for mask := 0; mask < 1<<uint(len(others)); mask++ {
			sub := dx.Clone()
			for i, e := range others {
				if mask&(1<<uint(i)) != 0 {
					sub.MustAddEndo(e)
				}
			}
			without := 0
			if q.Eval(sub) {
				without = 1
			}
			sub.MustAddEndo(f)
			with := 0
			if q.Eval(sub) {
				with = 1
			}
			diff.Add(diff, big.NewRat(int64(with-without), 1))
		}
		diff.Mul(diff, big.NewRat(1, 1<<uint(len(others))))
		if ce.Cmp(diff) != 0 {
			t.Fatalf("CE = %s, enumeration %s\nDB:\n%s", ce.RatString(), diff.RatString(), d)
		}
	}
}
