package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help.", "", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // ≤ 0.001
	h.Observe(time.Millisecond)       // boundary: still ≤ 0.001
	h.Observe(5 * time.Millisecond)   // ≤ 0.01
	h.Observe(time.Second)            // +Inf
	if got := h.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != time.Second+6*time.Millisecond+500*time.Microsecond {
		t.Errorf("Sum = %v", got)
	}
	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_seconds help.",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.001"} 2`,
		`test_seconds_bucket{le="0.01"} 3`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		"test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabelsAndFamilies(t *testing.T) {
	r := NewRegistry()
	hb := r.Histogram("dur_seconds", "durations.", Labels("route", "b"), []float64{1})
	ha := r.Histogram("dur_seconds", "durations.", Labels("route", "a"), []float64{1})
	other := r.Histogram("other_seconds", "other.", "", []float64{1})
	ha.Observe(time.Millisecond)
	hb.Observe(2 * time.Second)
	other.Observe(time.Millisecond)
	var b strings.Builder
	r.Expose(&b)
	out := b.String()

	// One HELP/TYPE pair per family, label sets sorted within it.
	if strings.Count(out, "# TYPE dur_seconds histogram") != 1 {
		t.Errorf("family TYPE emitted more than once:\n%s", out)
	}
	ia := strings.Index(out, `dur_seconds_bucket{route="a",le="1"} 1`)
	ib := strings.Index(out, `dur_seconds_bucket{route="b",le="1"} 0`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("label sets missing or unsorted (a@%d, b@%d):\n%s", ia, ib, out)
	}
	if !strings.Contains(out, `dur_seconds_bucket{route="b",le="+Inf"} 1`) {
		t.Errorf("labeled +Inf bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `dur_seconds_sum{route="b"} 2`) {
		t.Errorf("labeled sum missing:\n%s", out)
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels("route", `POST "x"\y`, "status", "200")
	want := `route="POST \"x\"\\y",status="200"`
	if got != want {
		t.Errorf("Labels = %s, want %s", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "c.", "", DefaultDurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("Count = %d, want 8000", got)
	}
}

func TestNilHistogramObserve(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
}
