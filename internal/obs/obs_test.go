package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartWithoutRecorderAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	got, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("Start without a recorder returned a live span")
	}
	if got != ctx {
		t.Error("Start without a recorder derived a new context")
	}
	// The nil span accepts the full API.
	sp.SetAttrs(String("k", "v"), Int("n", 1), Bool("b", true))
	sp.End()
	if sp.Recording() {
		t.Error("nil span reports Recording")
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, s := Start(ctx, "x")
		s.End()
	})
	if allocs != 0 {
		t.Errorf("unrecorded Start/End allocates %v times per call, want 0", allocs)
	}
}

func TestNilContext(t *testing.T) {
	//nolint — deliberately nil: Start must tolerate it.
	if _, sp := Start(nil, "x"); sp != nil { //lint:ignore SA1012 nil-tolerance is part of the contract under test
		t.Fatal("Start(nil) returned a live span")
	}
	if RecorderFrom(nil) != nil {
		t.Error("RecorderFrom(nil) != nil")
	}
	if TraceIDFrom(nil) != "" {
		t.Error("TraceIDFrom(nil) != \"\"")
	}
}

func TestSpanTreeShape(t *testing.T) {
	rec := NewRecorder("tid-1", "request")
	ctx := WithRecorder(context.Background(), rec)

	pctx, parent := Start(ctx, "parent")
	parent.SetAttrs(String("cache", "hit"), Int("facts", 3))
	_, child := Start(pctx, "child")
	child.End()
	parent.End()
	_, sib := Start(ctx, "sibling")
	sib.End()

	tr := rec.Finish()
	if tr.TraceID != "tid-1" {
		t.Errorf("TraceID = %q", tr.TraceID)
	}
	root := tr.Root
	if root.Name != "request" || len(root.Children) != 2 {
		t.Fatalf("root = %+v", root)
	}
	p := root.Children[0]
	if p.Name != "parent" || len(p.Children) != 1 || p.Children[0].Name != "child" {
		t.Fatalf("parent subtree = %+v", p)
	}
	if p.Attrs["cache"] != "hit" || p.Attrs["facts"] != int64(3) {
		t.Errorf("parent attrs = %v", p.Attrs)
	}
	if root.Children[1].Name != "sibling" {
		t.Errorf("second child = %q", root.Children[1].Name)
	}
	if root.DurationNS <= 0 || p.DurationNS <= 0 {
		t.Error("durations not recorded")
	}
	// The tree serializes as JSON (the ?trace=1 response body payload).
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestLeafSpansMerge(t *testing.T) {
	rec := NewRecorder("tid", "request")
	ctx := WithRecorder(context.Background(), rec)
	wctx, w := Start(ctx, "worker")
	for i := 0; i < 5; i++ {
		_, sp := Start(wctx, "tree.toggle")
		sp.End()
		_, sp = Start(wctx, "weight")
		sp.End()
	}
	w.End()
	got := rec.Finish().Root.Children[0]
	if len(got.Children) != 2 {
		t.Fatalf("merged children = %d, want 2 (%+v)", len(got.Children), got.Children)
	}
	for _, c := range got.Children {
		if c.Count != 5 {
			t.Errorf("%s merged count = %d, want 5", c.Name, c.Count)
		}
	}
	// Attributed leaves must NOT merge: each occurrence is distinct.
	_, a := Start(ctx, "attr-leaf")
	a.SetAttrs(Int("i", 0))
	a.End()
	_, b := Start(ctx, "attr-leaf")
	b.SetAttrs(Int("i", 1))
	b.End()
	root := rec.Finish().Root
	n := 0
	for _, c := range root.Children {
		if c.Name == "attr-leaf" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("attributed leaves merged: %d children, want 2", n)
	}
}

func TestConcurrentSpans(t *testing.T) {
	rec := NewRecorder("tid", "request")
	ctx := WithRecorder(context.Background(), rec)
	pctx, parent := Start(ctx, "batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx, ws := Start(pctx, "worker")
			for i := 0; i < 50; i++ {
				_, sp := Start(wctx, "leaf")
				sp.End()
			}
			ws.End()
		}()
	}
	wg.Wait()
	parent.End()
	tr := rec.Finish()
	var workers, leaves int64
	var walk func(s *SpanJSON)
	walk = func(s *SpanJSON) {
		if s.Name == "worker" {
			workers++
		}
		if s.Name == "leaf" {
			n := s.Count
			if n == 0 {
				n = 1
			}
			leaves += n
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	if workers != 8 || leaves != 400 {
		t.Errorf("workers=%d leaves=%d, want 8 and 400", workers, leaves)
	}
}

func TestEndIdempotent(t *testing.T) {
	rec := NewRecorder("tid", "request")
	ctx := WithRecorder(context.Background(), rec)
	_, sp := Start(ctx, "x")
	sp.End()
	sp.End()
	if n := len(rec.Finish().Root.Children); n != 1 {
		t.Errorf("double End adopted the span %d times", n)
	}
}

func TestTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Errorf("trace id lengths: %q %q", a, b)
	}
	if a == b {
		t.Errorf("consecutive trace ids collide: %q", a)
	}
	ctx := WithTraceID(context.Background(), a)
	if got := TraceIDFrom(ctx); got != a {
		t.Errorf("TraceIDFrom = %q, want %q", got, a)
	}
	if TraceIDFrom(context.Background()) != "" {
		t.Error("TraceIDFrom on a bare context is non-empty")
	}
}

func TestWriteText(t *testing.T) {
	tr := &Trace{
		TraceID: "deadbeef00000000",
		Root: &SpanJSON{
			Name: "request", DurationNS: int64(12 * time.Millisecond),
			Children: []*SpanJSON{
				{Name: "plan.lookup", DurationNS: int64(time.Millisecond),
					Attrs: map[string]any{"cache": "hit"}},
				{Name: "shapley.all", DurationNS: int64(10 * time.Millisecond),
					Children: []*SpanJSON{
						{Name: "tree.toggle", DurationNS: int64(8 * time.Millisecond), Count: 94},
					}},
			},
		},
	}
	var b strings.Builder
	WriteText(&b, tr)
	out := b.String()
	for _, want := range []string{"trace deadbeef00000000", "plan.lookup", "{cache=hit}", "shapley.all", "tree.toggle", "×94", "└─", "├─"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestAttrValues(t *testing.T) {
	cases := []struct {
		attr Attr
		want any
	}{
		{String("s", "v"), "v"},
		{Int("i", 7), int64(7)},
		{Int64("i64", -9), int64(-9)},
		{Bool("t", true), true},
		{Bool("f", false), false},
	}
	for _, c := range cases {
		if got := c.attr.Value(); got != c.want {
			t.Errorf("%s.Value() = %v (%T), want %v", c.attr.Key, got, got, c.want)
		}
	}
}
