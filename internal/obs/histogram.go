package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultDurationBuckets are the fixed latency boundaries (seconds)
// shared by every duration histogram of the repo: 100µs to 10s in a
// 1-2.5-5 progression. Fixed boundaries keep bucket counters plain
// atomics and make scrapes from different processes comparable.
var DefaultDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-boundary latency histogram: one atomic counter
// per bucket plus an atomic nanosecond sum. Observe is lock-free and
// allocation-free, so histograms sit directly on request hot paths.
// Boundaries are upper bounds in seconds, strictly increasing; an
// implicit +Inf bucket catches the tail.
type Histogram struct {
	name   string
	labels string // pre-rendered `k="v",...` block, possibly empty
	help   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Int64    // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	secs := float64(ns) / 1e9
	i := sort.SearchFloat64s(h.bounds, secs)
	h.counts[i].Add(1)
	h.sum.Add(ns)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Registry holds the histograms a server exposes on /metrics.
// Registration locks; scrapes read registered histograms lock-free.
type Registry struct {
	mu    sync.Mutex
	hists []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Histogram registers (and returns) a histogram under name with a
// pre-rendered label block (see Labels; empty for none) and the given
// bucket boundaries. Histograms sharing a name must share boundaries
// and help text — they expose as one metric family with different
// label sets.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	h := &Histogram{
		name:   name,
		labels: labels,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// Labels renders key/value pairs as a Prometheus label block body
// (`k1="v1",k2="v2"`), escaping values. Pairs must alternate key,
// value.
func Labels(pairs ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", pairs[i], strconv.Quote(pairs[i+1]))
	}
	return b.String()
}

// Expose writes every registered histogram in the Prometheus text
// exposition format: HELP/TYPE once per metric family, then per label
// set the cumulative `_bucket` series ending at le="+Inf", `_sum`
// (seconds) and `_count`. Families appear in registration order and
// label sets sort within a family, so the output is deterministic.
func (r *Registry) Expose(w io.Writer) {
	r.mu.Lock()
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()

	// Group into families preserving first-registration order.
	order := make([]string, 0, len(hists))
	families := make(map[string][]*Histogram, len(hists))
	for _, h := range hists {
		if _, ok := families[h.name]; !ok {
			order = append(order, h.name)
		}
		families[h.name] = append(families[h.name], h)
	}
	for _, name := range order {
		fam := families[name]
		sort.Slice(fam, func(i, j int) bool { return fam[i].labels < fam[j].labels })
		fmt.Fprintf(w, "# HELP %s %s\n", name, fam[0].help)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for _, h := range fam {
			h.expose(w)
		}
	}
}

// expose writes one histogram's series. Buckets are cumulative per the
// exposition format; counters load in ascending bucket order, so a
// concurrent Observe can at worst make a later cumulative count larger,
// never smaller — the output stays well-formed under load.
func (h *Histogram) expose(w io.Writer) {
	sep := ""
	if h.labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", h.name, h.labels, sep,
			strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.name, h.labels, sep, cum)
	if h.labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", h.name, float64(h.sum.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", h.name, h.labels, float64(h.sum.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", h.name, h.labels, cum)
	}
}
