// Package obs is the stdlib-only observability layer of the repo: a
// context-carried tracing facility (per-request span trees with wall
// durations and typed attributes) and fixed-boundary latency histograms
// with a scrape registry, shared by the compute stack (internal/core),
// the serving layer (internal/server + cmd/shapleyd) and the CLI
// (cmd/shapley -trace).
//
// The design constraint is that instrumentation stays always-on: a span
// is allocated only when a Recorder is attached to the context, so the
// uninstrumented fast path of Start is one context value lookup and a
// nil return, and every Span method is safe (and free) on a nil
// receiver. Histograms are arrays of atomic buckets — no locks, no
// allocation per observation — so they sit directly on request hot
// paths.
//
// Tracing model: Start(ctx, name) opens a span as a child of the
// context's current span (or of the recorder's root) and returns a
// derived context carrying the new span; End closes it and attaches it
// to its parent. Repeated leaf spans of the same name under one parent
// (per-fact "tree.toggle"/"weight" spans of a batch, for example) merge
// into a single child with a summed duration and an occurrence count,
// so a 10⁶-fact batch serializes as a handful of nodes, not 2·10⁶.
//
// Trace identifiers travel independently of recorders: WithTraceID /
// TraceIDFrom tag every request (for access logs and response headers)
// whether or not a span tree is being recorded.
package obs

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// ctxKey is the private context key space of the package.
type ctxKey int

const (
	recorderKey ctxKey = iota
	spanKey
	traceIDKey
)

// attrKind discriminates the typed attribute payload.
type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrBool
)

// Attr is one typed key/value annotation on a span: tree depth, memo
// hits, numeric promotions, fallback reason, cache disposition.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  int64
}

// String makes a string attribute.
func String(key, value string) Attr { return Attr{Key: key, kind: attrString, str: value} }

// Int makes an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, kind: attrInt, num: int64(value)} }

// Int64 makes an integer attribute from an int64.
func Int64(key string, value int64) Attr { return Attr{Key: key, kind: attrInt, num: value} }

// Bool makes a boolean attribute.
func Bool(key string, value bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if value {
		a.num = 1
	}
	return a
}

// Value returns the attribute's payload as the natural dynamic type
// (string, int64 or bool).
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.num
	case attrBool:
		return a.num != 0
	default:
		return a.str
	}
}

// Span is one timed region of a request. Spans are created by Start and
// closed by End; between the two, SetAttrs annotates. A nil *Span (what
// Start returns when no recorder is attached) accepts every method as a
// no-op, so instrumented code never branches on whether tracing is on.
type Span struct {
	name   string
	start  time.Time
	parent *Span

	mu       sync.Mutex
	ended    bool
	dur      time.Duration
	count    int64 // merged occurrences (1 for an unmerged span)
	attrs    []Attr
	children []*Span
}

// Recording reports whether the span is live (non-nil), so callers can
// gate attribute computations that are themselves expensive (tree
// walks, stats snapshots) on tracing being active.
func (s *Span) Recording() bool { return s != nil }

// SetAttrs appends typed attributes to the span. Call before End: a
// leaf span that carries attributes is excluded from merging, and
// attributes set after End may not surface if the span was merged.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End closes the span, fixing its wall duration, and attaches it to its
// parent. End is idempotent; a second call is ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.parent != nil {
		s.parent.adopt(s)
	}
}

// adopt attaches an ended child, merging repeated leaf spans of the
// same name (no children, no attributes) into one occurrence-counted
// entry so hot per-fact spans do not bloat the serialized tree.
func (p *Span) adopt(c *Span) {
	c.mu.Lock()
	mergeable := len(c.children) == 0 && len(c.attrs) == 0
	cdur, ccount := c.dur, c.count
	c.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if mergeable {
		for _, prev := range p.children {
			if prev.name == c.name && prev.mergeableLocked() {
				prev.mu.Lock()
				prev.dur += cdur
				prev.count += ccount
				prev.mu.Unlock()
				return
			}
		}
	}
	p.children = append(p.children, c)
}

// mergeableLocked reports whether the (already adopted, hence ended and
// no longer written concurrently except under its parent's lock) span
// is a bare leaf.
func (s *Span) mergeableLocked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.children) == 0 && len(s.attrs) == 0
}

// Start opens a span named name under the context's current span (or
// under the recorder's root when the context carries none) and returns
// a context with the new span as current. When the context carries no
// Recorder — the always-on production fast path — it allocates nothing
// and returns (ctx, nil); all Span methods no-op on the nil span. A nil
// context is tolerated and behaves like an unrecorded one.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	rec, _ := ctx.Value(recorderKey).(*Recorder)
	if rec == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	if parent == nil {
		parent = rec.root
	}
	s := &Span{name: name, start: time.Now(), parent: parent, count: 1}
	return context.WithValue(ctx, spanKey, s), s
}

// Recorder collects one request's span tree. Create with NewRecorder,
// attach with WithRecorder, and serialize with Finish once the traced
// region is over.
type Recorder struct {
	// TraceID labels the trace; it is carried into the serialized tree.
	TraceID string

	root *Span
}

// NewRecorder returns a recorder whose root span (named name, typically
// "request" or "cli") starts now.
func NewRecorder(traceID, name string) *Recorder {
	return &Recorder{
		TraceID: traceID,
		root:    &Span{name: name, start: time.Now(), count: 1},
	}
}

// WithRecorder attaches the recorder to the context: spans Started
// under the returned context are recorded into r's tree.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom returns the context's recorder, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey).(*Recorder)
	return rec
}

// AdoptRemote grafts a serialized span tree — a Trace root returned by
// another process, typically a shapleyd worker answering a routed
// request — under this span as an already-ended child. It is how the
// cluster router links cross-process hops into one trace: the router's
// "worker.call" span adopts the worker's own "request" tree, so ?trace=1
// at the router shows the remote preparation and toggle spans inline.
// Durations are preserved as reported by the remote process (they are
// wall time there; no clock alignment is attempted). A nil receiver or
// nil remote is a no-op.
func (s *Span) AdoptRemote(remote *SpanJSON) {
	if s == nil || remote == nil {
		return
	}
	s.adopt(spanFromJSON(remote))
}

// spanFromJSON rebuilds an ended Span subtree from its wire form.
func spanFromJSON(sj *SpanJSON) *Span {
	s := &Span{
		name:  sj.Name,
		ended: true,
		dur:   time.Duration(sj.DurationNS),
		count: max(sj.Count, 1),
	}
	if len(sj.Attrs) > 0 {
		// Deterministic attr order: JSON object keys come back unordered.
		keys := make([]string, 0, len(sj.Attrs))
		for k := range sj.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := sj.Attrs[k].(type) {
			case bool:
				s.attrs = append(s.attrs, Bool(k, v))
			case float64:
				// encoding/json decodes every number as float64; integral
				// values (the only kind this package emits) round-trip.
				if v == float64(int64(v)) {
					s.attrs = append(s.attrs, Int64(k, int64(v)))
				} else {
					s.attrs = append(s.attrs, String(k, fmt.Sprintf("%v", v)))
				}
			case int64:
				s.attrs = append(s.attrs, Int64(k, v))
			default:
				s.attrs = append(s.attrs, String(k, fmt.Sprintf("%v", v)))
			}
		}
	}
	for _, c := range sj.Children {
		s.children = append(s.children, spanFromJSON(c))
	}
	return s
}

// Root exposes the recorder's root span, letting serving layers attach
// work (or adopt remote trees) directly under the request root when no
// narrower span is current.
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Trace is the serialized form of a recorded request: the trace id plus
// the root of the span tree.
type Trace struct {
	TraceID string    `json:"trace_id"`
	Root    *SpanJSON `json:"root"`
}

// SpanJSON is the wire form of one span. Durations are nanoseconds of
// wall time; Count is the number of merged occurrences when > 1.
type SpanJSON struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	Count      int64          `json:"count,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanJSON    `json:"children,omitempty"`
}

// Finish ends the recorder's root span (fixing the trace's wall
// duration; spans still open elsewhere are simply absent from the tree)
// and returns the serialized trace. It may be called more than once;
// the root duration is fixed by the first call.
func (r *Recorder) Finish() *Trace {
	r.root.mu.Lock()
	if !r.root.ended {
		r.root.ended = true
		r.root.dur = time.Since(r.root.start)
	}
	r.root.mu.Unlock()
	return &Trace{TraceID: r.TraceID, Root: r.root.snapshot()}
}

// snapshot renders the subtree under lock.
func (s *Span) snapshot() *SpanJSON {
	s.mu.Lock()
	out := &SpanJSON{Name: s.name, DurationNS: int64(s.dur)}
	if s.count > 1 {
		out.Count = s.count
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// WriteText renders the trace as an indented tree for terminals (the
// CLI's -trace output):
//
//	trace 4bf92f3577b34da6 (12.4ms)
//	└─ engine.prepare 10.1ms {method=hierarchical}
func WriteText(w io.Writer, t *Trace) {
	fmt.Fprintf(w, "trace %s (%s)\n", t.TraceID, time.Duration(t.Root.DurationNS))
	var walk func(s *SpanJSON, prefix string, last bool)
	walk = func(s *SpanJSON, prefix string, last bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(w, "%s%s%s %s%s%s\n", prefix, branch, s.Name,
			time.Duration(s.DurationNS), countSuffix(s.Count), attrSuffix(s.Attrs))
		for i, c := range s.Children {
			walk(c, childPrefix, i == len(s.Children)-1)
		}
	}
	for i, c := range t.Root.Children {
		walk(c, "", i == len(t.Root.Children)-1)
	}
}

func countSuffix(n int64) string {
	if n <= 1 {
		return ""
	}
	return fmt.Sprintf(" ×%d", n)
}

func attrSuffix(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" {")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%v", k, attrs[k])
	}
	b.WriteString("}")
	return b.String()
}

// NewTraceID returns a 16-hex-character request identifier. It is not
// cryptographic: ids only need to be unique enough to correlate log
// lines, response headers and traces.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// WithTraceID tags the context with a request trace id; unlike a
// Recorder this is attached to every request, recorded or not.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceIDFrom returns the context's trace id, or "".
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}
