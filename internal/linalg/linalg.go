// Package linalg provides exact linear algebra over big.Rat: Gaussian
// elimination with partial pivoting and determinants. It is used to solve
// the independent-system of equations in the Lemma B.3 reduction, where
// floating point would destroy the exact counts.
package linalg

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrSingular is returned for singular or non-square systems.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve returns x with A·x = b, for a square nonsingular A, by Gaussian
// elimination over exact rationals. A and b are not modified.
func Solve(a [][]*big.Rat, b []*big.Rat) ([]*big.Rat, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("linalg: bad system shape (%d equations, %d rhs)", n, len(b))
	}
	m := make([][]*big.Rat, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = make([]*big.Rat, n+1)
		for j := range a[i] {
			m[i][j] = new(big.Rat).Set(a[i][j])
		}
		m[i][n] = new(big.Rat).Set(b[i])
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for row := col; row < n; row++ {
			if m[row][col].Sign() != 0 {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := new(big.Rat).Inv(m[col][col])
		for j := col; j <= n; j++ {
			m[col][j].Mul(m[col][j], inv)
		}
		for row := 0; row < n; row++ {
			if row == col || m[row][col].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Set(m[row][col])
			for j := col; j <= n; j++ {
				t := new(big.Rat).Mul(factor, m[col][j])
				m[row][j].Sub(m[row][j], t)
			}
		}
	}
	x := make([]*big.Rat, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x, nil
}

// Det returns the determinant of a square matrix by fraction-free-ish
// elimination over big.Rat. A is not modified.
func Det(a [][]*big.Rat) (*big.Rat, error) {
	n := len(a)
	m := make([][]*big.Rat, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = make([]*big.Rat, n)
		for j := range a[i] {
			m[i][j] = new(big.Rat).Set(a[i][j])
		}
	}
	det := big.NewRat(1, 1)
	for col := 0; col < n; col++ {
		pivot := -1
		for row := col; row < n; row++ {
			if m[row][col].Sign() != 0 {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return new(big.Rat), nil
		}
		if pivot != col {
			m[col], m[pivot] = m[pivot], m[col]
			det.Neg(det)
		}
		det.Mul(det, m[col][col])
		inv := new(big.Rat).Inv(m[col][col])
		for j := col; j < n; j++ {
			m[col][j].Mul(m[col][j], inv)
		}
		for row := col + 1; row < n; row++ {
			if m[row][col].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Set(m[row][col])
			for j := col; j < n; j++ {
				t := new(big.Rat).Mul(factor, m[col][j])
				m[row][j].Sub(m[row][j], t)
			}
		}
	}
	return det, nil
}

// MulVec returns A·x (used to verify solutions in tests).
func MulVec(a [][]*big.Rat, x []*big.Rat) ([]*big.Rat, error) {
	out := make([]*big.Rat, len(a))
	for i, row := range a {
		if len(row) != len(x) {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(row), len(x))
		}
		s := new(big.Rat)
		for j, v := range row {
			s.Add(s, new(big.Rat).Mul(v, x[j]))
		}
		out[i] = s
	}
	return out, nil
}

// IntRat converts an int64 to a big.Rat (test and reduction convenience).
func IntRat(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }
