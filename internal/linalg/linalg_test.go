package linalg

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

func ratMat(rows [][]int64) [][]*big.Rat {
	out := make([][]*big.Rat, len(rows))
	for i, r := range rows {
		out[i] = make([]*big.Rat, len(r))
		for j, v := range r {
			out[i][j] = IntRat(v)
		}
	}
	return out
}

func ratVec(vs ...int64) []*big.Rat {
	out := make([]*big.Rat, len(vs))
	for i, v := range vs {
		out[i] = IntRat(v)
	}
	return out
}

func TestSolve2x2(t *testing.T) {
	// x + y = 3; x - y = 1 → x=2, y=1.
	a := ratMat([][]int64{{1, 1}, {1, -1}})
	x, err := Solve(a, ratVec(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if x[0].Cmp(IntRat(2)) != 0 || x[1].Cmp(IntRat(1)) != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// First pivot is zero; partial pivoting must swap rows.
	a := ratMat([][]int64{{0, 1}, {1, 0}})
	x, err := Solve(a, ratVec(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if x[0].Cmp(IntRat(7)) != 0 || x[1].Cmp(IntRat(5)) != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := ratMat([][]int64{{1, 2}, {2, 4}})
	if _, err := Solve(a, ratVec(1, 2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	a := ratMat([][]int64{{1, 2}})
	if _, err := Solve(a, ratVec(1)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	a = ratMat([][]int64{{1, 0}, {0, 1}})
	if _, err := Solve(a, ratVec(1)); err == nil {
		t.Fatal("rhs length mismatch accepted")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := ratMat([][]int64{{2, 1}, {1, 3}})
	b := ratVec(4, 5)
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0].Cmp(IntRat(2)) != 0 || b[1].Cmp(IntRat(5)) != 0 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		a := make([][]*big.Rat, n)
		for i := range a {
			a[i] = make([]*big.Rat, n)
			for j := range a[i] {
				a[i][j] = IntRat(int64(rng.Intn(21) - 10))
			}
		}
		det, err := Det(a)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]*big.Rat, n)
		for i := range b {
			b[i] = IntRat(int64(rng.Intn(21) - 10))
		}
		x, err := Solve(a, b)
		if det.Sign() == 0 {
			if !errors.Is(err, ErrSingular) {
				t.Fatalf("singular matrix not detected: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ax, err := MulVec(a, x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if ax[i].Cmp(b[i]) != 0 {
				t.Fatalf("A·x ≠ b at row %d: %s vs %s", i, ax[i], b[i])
			}
		}
	}
}

func TestDetKnownValues(t *testing.T) {
	d, err := Det(ratMat([][]int64{{1, 2}, {3, 4}}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Cmp(IntRat(-2)) != 0 {
		t.Fatalf("det = %s, want -2", d)
	}
	d, err = Det(ratMat([][]int64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Cmp(IntRat(24)) != 0 {
		t.Fatalf("det = %s, want 24", d)
	}
	// Row swap flips the sign.
	d, err = Det(ratMat([][]int64{{0, 1}, {1, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Cmp(IntRat(-1)) != 0 {
		t.Fatalf("det = %s, want -1", d)
	}
}

func TestMulVecShape(t *testing.T) {
	if _, err := MulVec(ratMat([][]int64{{1, 2}}), ratVec(1)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
