// Package numeric is the exact count-vector kernel of the repository: the
// arithmetic substrate the production DP engines (the DP-tree IR, the
// CntSat recursion, the UCQ¬ union path and the batched per-fact toggles)
// run on.
//
// Every quantity these engines manipulate is a subset count |Sat(D, q, k)|
// bounded by C(m, k) ≤ 2^m for the m endogenous facts in scope, so the
// counts of any workload with at most 64 facts in a scope fit a machine
// word and anything up to 128 facts fits two. Package combinat keeps the
// audited math/big implementation (the reference the kernel is
// differentially tested against, and the substrate of the final rational
// Shapley weighting); this package provides the same operations over a
// tagged representation lattice
//
//	u64  ⊂  u128  ⊂  big
//
// with automatic promotion on overflow and demotion to the minimal
// representation on every operation, so results are bit-identical to the
// pure-big computation by construction while the common case runs on flat
// machine-word slices with no per-coefficient heap allocation.
//
// Exactness is structural, not probabilistic: fixed-width paths accumulate
// convolutions in wider carry-chained accumulators (192 bits over u64
// inputs, 320 bits over u128 inputs) that cannot overflow for any vector
// length below 2^64, and the final representation is chosen after the
// exact result is known. No operation ever rounds, saturates or wraps.
//
// Vectors are immutable values: no exported operation mutates an input,
// and accessors hand out fresh big.Ints, so vectors — including the shared
// cached binomial rows — may be read concurrently without synchronization.
package numeric

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Rep identifies one level of the kernel's representation lattice.
type Rep uint8

const (
	// RepU64 stores one machine word per coefficient.
	RepU64 Rep = iota
	// RepU128 stores a two-word (hi, lo) pair per coefficient.
	RepU128
	// RepBig stores arbitrary-precision integers; the fallback that makes
	// the kernel total.
	RepBig
)

// String renders the representation tag for stats and -explain output.
func (r Rep) String() string {
	switch r {
	case RepU64:
		return "u64"
	case RepU128:
		return "u128"
	default:
		return "big"
	}
}

// Vec is an immutable vector of non-negative exact integers indexed by
// subset size, held in its minimal representation: RepU64 iff every entry
// fits one word, RepU128 iff every entry fits two, RepBig otherwise. The
// zero Vec has length 0 and doubles as the "no vector" sentinel (the zero
// polynomial in contexts like leave-one-out products).
type Vec struct {
	rep Rep
	u   []uint64
	w   []Uint128
	b   []*big.Int
}

// Zero returns the all-zero vector of length n+1 (indices 0..n).
func Zero(n int) Vec {
	return Vec{rep: RepU64, u: make([]uint64, n+1)}
}

// oneVec is the shared convolution identity; immutability makes sharing
// safe (no kernel operation writes through an input vector).
var oneVec = Vec{rep: RepU64, u: []uint64{1}}

// One returns the length-1 vector [1], the convolution identity (the
// unique 0-subset of the empty set).
func One() Vec { return oneVec }

// isOne reports whether v is the convolution identity [1].
func (v Vec) isOne() bool {
	return v.rep == RepU64 && len(v.u) == 1 && v.u[0] == 1
}

// FromUint64s builds a vector from word-sized entries (copied).
func FromUint64s(ws []uint64) Vec {
	if len(ws) == 0 {
		return Vec{}
	}
	return Vec{rep: RepU64, u: append([]uint64(nil), ws...)}
}

// FromBig builds a vector from big.Int entries (copied, minimal
// representation). Negative entries panic: the kernel holds counts. A nil
// or empty slice yields the empty Vec.
func FromBig(v []*big.Int) Vec {
	if len(v) == 0 {
		return Vec{}
	}
	rep := RepU64
	for _, x := range v {
		if x.Sign() < 0 {
			panic("numeric: negative count")
		}
		switch bl := x.BitLen(); {
		case bl > 128:
			rep = RepBig
		case bl > 64 && rep != RepBig:
			rep = RepU128
		}
		if rep == RepBig {
			break
		}
	}
	switch rep {
	case RepU64:
		u := make([]uint64, len(v))
		for i, x := range v {
			u[i] = x.Uint64()
		}
		return Vec{rep: RepU64, u: u}
	case RepU128:
		w := make([]Uint128, len(v))
		for i, x := range v {
			w[i] = bigToU128(x)
		}
		return Vec{rep: RepU128, w: w}
	default:
		b := make([]*big.Int, len(v))
		for i, x := range v {
			b[i] = new(big.Int).Set(x)
		}
		return Vec{rep: RepBig, b: b}
	}
}

// Len returns the number of entries (degree + 1); 0 for the empty Vec.
func (v Vec) Len() int {
	switch v.rep {
	case RepU64:
		return len(v.u)
	case RepU128:
		return len(v.w)
	default:
		return len(v.b)
	}
}

// IsEmpty reports whether v is the zero-length sentinel.
func (v Vec) IsEmpty() bool { return v.Len() == 0 }

// Rep returns the vector's (minimal) representation tag.
func (v Vec) Rep() Rep { return v.rep }

// IsZero reports whether every entry is zero (vacuously true for the
// empty Vec) — the zero polynomial.
func (v Vec) IsZero() bool {
	switch v.rep {
	case RepU64:
		for _, x := range v.u {
			if x != 0 {
				return false
			}
		}
	case RepU128:
		for _, x := range v.w {
			if x.Hi != 0 || x.Lo != 0 {
				return false
			}
		}
	default:
		for _, x := range v.b {
			if x.Sign() != 0 {
				return false
			}
		}
	}
	return true
}

// AtInto sets out to entry k and returns it; an out-of-range k yields 0
// (count vectors are zero beyond their length).
func (v Vec) AtInto(k int, out *big.Int) *big.Int {
	if k < 0 || k >= v.Len() {
		return out.SetUint64(0)
	}
	switch v.rep {
	case RepU64:
		return out.SetUint64(v.u[k])
	case RepU128:
		return u128ToBig(v.w[k], out)
	default:
		return out.Set(v.b[k])
	}
}

// At returns entry k as a fresh big.Int (0 when out of range).
func (v Vec) At(k int) *big.Int { return v.AtInto(k, new(big.Int)) }

// Big converts the vector to a fresh []*big.Int (nil for the empty Vec).
// It is the bridge to the math/big reference substrate and to callers of
// the stable []*big.Int APIs.
func (v Vec) Big() []*big.Int {
	n := v.Len()
	if n == 0 {
		return nil
	}
	backing := make([]big.Int, n)
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = v.AtInto(i, &backing[i])
	}
	return out
}

// Sum returns the sum of all entries as a fresh big.Int.
func (v Vec) Sum() *big.Int {
	out := new(big.Int)
	switch v.rep {
	case RepU64:
		var lo, hi, c uint64
		for _, x := range v.u {
			lo, c = bits.Add64(lo, x, 0)
			hi += c
		}
		return u128ToBig(Uint128{Hi: hi, Lo: lo}, out)
	case RepU128:
		var acc [3]uint64
		for _, x := range v.w {
			var c uint64
			acc[0], c = bits.Add64(acc[0], x.Lo, 0)
			acc[1], c = bits.Add64(acc[1], x.Hi, c)
			acc[2] += c
		}
		return wordsToBig(acc[:], out)
	default:
		for _, x := range v.b {
			out.Add(out, x)
		}
		return out
	}
}

// Equal reports entry-wise equality, independent of representation (two
// vectors holding the same values always have the same rep by the minimal-
// representation invariant, but Equal does not rely on it).
func (v Vec) Equal(o Vec) bool {
	if v.Len() != o.Len() {
		return false
	}
	x, y := new(big.Int), new(big.Int)
	for k := 0; k < v.Len(); k++ {
		if v.AtInto(k, x).Cmp(o.AtInto(k, y)) != 0 {
			return false
		}
	}
	return true
}

// String renders the vector for error messages and debugging.
func (v Vec) String() string {
	return fmt.Sprintf("numeric.Vec(%s)%v", v.rep, v.Big())
}

// --- internal representation views ---

// asU128 returns the vector's entries as Uint128 pairs; for a RepU64
// vector this materializes a widened copy (the caller treats it as
// read-only either way). Panics on RepBig.
func (v Vec) asU128() []Uint128 {
	switch v.rep {
	case RepU128:
		return v.w
	case RepU64:
		out := make([]Uint128, len(v.u))
		for i, x := range v.u {
			out[i].Lo = x
		}
		return out
	default:
		panic("numeric: asU128 on a big vector")
	}
}

// asBig returns the entries as []*big.Int, materializing a copy for the
// fixed-width representations. The result of a RepBig vector aliases the
// vector's storage and must not be mutated.
func (v Vec) asBig() []*big.Int {
	if v.rep == RepBig {
		return v.b
	}
	return v.Big()
}

// maxRep returns the wider of two representation tags.
func maxRep(a, b Rep) Rep {
	if a > b {
		return a
	}
	return b
}
