package numeric

import (
	"encoding/binary"
	"math/big"
	"testing"
)

// decodeVecs turns fuzz bytes into two small count vectors whose entries
// deliberately straddle the u64/u128/big boundaries: each entry is 1–3
// words drawn from the input, so single-word, two-word and three-word
// coefficients all occur.
func decodeVecs(data []byte) (a, b []*big.Int) {
	la := 1
	lb := 1
	if len(data) > 0 {
		la = 1 + int(data[0]%6)
	}
	if len(data) > 1 {
		lb = 1 + int(data[1]%6)
	}
	data = data[min(len(data), 2):]
	next := func() *big.Int {
		words := 1
		if len(data) > 0 {
			words = 1 + int(data[0]%3)
			data = data[1:]
		}
		out := new(big.Int)
		t := new(big.Int)
		for w := 0; w < words; w++ {
			var buf [8]byte
			copy(buf[:], data)
			data = data[min(len(data), 8):]
			out.Lsh(out, 64)
			out.Or(out, t.SetUint64(binary.LittleEndian.Uint64(buf[:])))
		}
		return out
	}
	a = make([]*big.Int, la)
	for i := range a {
		a[i] = next()
	}
	b = make([]*big.Int, lb)
	for i := range b {
		b[i] = next()
	}
	return a, b
}

// FuzzConvolve checks Convolve against the pure-big reference for
// arbitrary vectors across all representation mixes, and that
// Deconvolve inverts it whenever the divisor is non-zero.
func FuzzConvolve(f *testing.F) {
	f.Add([]byte{3, 2, 1, 1, 2, 3})
	f.Add([]byte{6, 6, 2, 255, 255, 255, 255, 255, 255, 255, 255, 3, 7})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeVecs(data)
		av, bv := FromBig(a), FromBig(b)
		got := Convolve(av, bv)
		want := refConvolve(a, b)
		if !eqBig(got.Big(), want) {
			t.Fatalf("Convolve mismatch:\na=%v\nb=%v\ngot=%v\nwant=%v", a, b, got.Big(), want)
		}
		if !bv.IsZero() {
			back := Deconvolve(got, bv)
			if !eqBig(back.Big(), a) {
				t.Fatalf("Deconvolve did not invert:\na=%v\nb=%v\nback=%v", a, b, back.Big())
			}
		}
	})
}

// FuzzComplement checks the complement pair against the reference for
// arbitrary valid subset counts (entries are reduced modulo C(n,k)+1 so
// the binomial bound holds by construction).
func FuzzComplement(f *testing.F) {
	f.Add([]byte{70, 1, 2, 3, 4})
	f.Add([]byte{140, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 1
		if len(data) > 0 {
			n = 1 + int(data[0])%150
			data = data[1:]
		}
		raw, _ := decodeVecs(append([]byte{byte(min(n, 5)), 1}, data...))
		v := make([]*big.Int, min(len(raw), n+1))
		bound := new(big.Int)
		for k := range v {
			bound.Add(binomialBig(n, k), big.NewInt(1))
			v[k] = new(big.Int).Mod(raw[k], bound)
		}
		got := ComplementTotal(FromBig(v), n)
		if !eqBig(got.Big(), refComplement(v, n)) {
			t.Fatalf("complement mismatch at n=%d, v=%v", n, v)
		}
	})
}

func binomialBig(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}
