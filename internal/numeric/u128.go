package numeric

import (
	"math/big"
	"math/bits"
)

// Uint128 is an unsigned 128-bit integer in (hi, lo) word form. It is the
// coefficient type of the RepU128 representation: wide enough for every
// subset count over up to 128 endogenous facts (C(n, k) ≤ 2^n).
type Uint128 struct {
	Hi, Lo uint64
}

// isZero reports whether x == 0.
func (x Uint128) isZero() bool { return x.Hi == 0 && x.Lo == 0 }

// cmp128 returns -1, 0 or 1 as a < b, a == b or a > b.
func cmp128(a, b Uint128) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// sub128 returns a - b and the borrow out (1 when b > a).
func sub128(a, b Uint128) (Uint128, uint64) {
	lo, borrow := bits.Sub64(a.Lo, b.Lo, 0)
	hi, borrow := bits.Sub64(a.Hi, b.Hi, borrow)
	return Uint128{Hi: hi, Lo: lo}, borrow
}

// mul128 returns the full 256-bit product of a and b as four little-endian
// words, built from math/bits.Mul64 carry chains.
func mul128(a, b Uint128) (p [4]uint64) {
	hi, lo := bits.Mul64(a.Lo, b.Lo)
	p[0] = lo
	p[1] = hi

	hi, lo = bits.Mul64(a.Lo, b.Hi)
	var c uint64
	p[1], c = bits.Add64(p[1], lo, 0)
	p[2], c = bits.Add64(p[2], hi, c)
	p[3] += c

	hi, lo = bits.Mul64(a.Hi, b.Lo)
	p[1], c = bits.Add64(p[1], lo, 0)
	p[2], c = bits.Add64(p[2], hi, c)
	p[3] += c

	hi, lo = bits.Mul64(a.Hi, b.Hi)
	p[2], c = bits.Add64(p[2], lo, 0)
	p[3] = p[3] + hi + c
	return p
}

// div128 returns the quotient and remainder of n / d. It panics on d == 0.
func div128(n, d Uint128) (q, r Uint128) {
	if d.isZero() {
		panic("numeric: division by zero")
	}
	if d.Hi == 0 {
		// Two-word by one-word division via bits.Div64.
		qHi := n.Hi / d.Lo
		rem := n.Hi % d.Lo
		qLo, rLo := bits.Div64(rem, n.Lo, d.Lo)
		return Uint128{Hi: qHi, Lo: qLo}, Uint128{Lo: rLo}
	}
	// d ≥ 2^64, so the quotient fits one word; plain binary long division
	// over the 128 bits of n. This path is rare (it needs a convolution
	// factor whose anchor coefficient exceeds 64 bits), so simplicity wins
	// over a normalized two-word algorithm.
	r = Uint128{}
	for i := 127; i >= 0; i-- {
		r.Hi = r.Hi<<1 | r.Lo>>63
		r.Lo <<= 1
		if i >= 64 {
			r.Lo |= n.Hi >> uint(i-64) & 1
		} else {
			r.Lo |= n.Lo >> uint(i) & 1
		}
		if cmp128(r, d) >= 0 {
			r, _ = sub128(r, d)
			if i >= 64 {
				q.Hi |= 1 << uint(i-64)
			} else {
				q.Lo |= 1 << uint(i)
			}
		}
	}
	return q, r
}

// u128ToBig sets out to the value of x and returns it.
func u128ToBig(x Uint128, out *big.Int) *big.Int {
	if x.Hi == 0 {
		return out.SetUint64(x.Lo)
	}
	out.SetUint64(x.Hi)
	out.Lsh(out, 64)
	var lo big.Int
	return out.Or(out, lo.SetUint64(x.Lo))
}

// bigToU128 converts a big.Int known to fit 128 bits. Word-size agnostic:
// it walks x's words, which never straddle the 64-bit boundary on either
// 32- or 64-bit platforms.
func bigToU128(x *big.Int) Uint128 {
	var r Uint128
	for i, w := range x.Bits() {
		v := uint64(w)
		s := uint(i) * uint(bits.UintSize)
		if s < 64 {
			r.Lo |= v << s
		} else {
			r.Hi |= v << (s - 64)
		}
	}
	return r
}

// wordsToBig sets out to the value of the little-endian word slice ws.
func wordsToBig(ws []uint64, out *big.Int) *big.Int {
	out.SetUint64(0)
	var t big.Int
	for i := len(ws) - 1; i >= 0; i-- {
		out.Lsh(out, 64)
		out.Or(out, t.SetUint64(ws[i]))
	}
	return out
}
