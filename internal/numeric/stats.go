package numeric

import "sync/atomic"

// Promotion counters: one event per kernel operation whose exact result
// needed a wider representation than every input had. A steady stream of
// promotions to big on a workload that should fit 128 bits is the
// regression signal the serving layer's /metrics and -explain surface.
var (
	promotionsU128 atomic.Uint64
	promotionsBig  atomic.Uint64
)

// notePromotion records that an operation over `in`-representation inputs
// produced an `out`-representation result.
func notePromotion(out, in Rep) {
	if out <= in {
		return
	}
	switch out {
	case RepU128:
		promotionsU128.Add(1)
	case RepBig:
		promotionsBig.Add(1)
	}
}

// KernelStats is a snapshot of the kernel's process-wide promotion
// counters.
type KernelStats struct {
	// PromotionsU128 counts operations whose result left the single-word
	// path and needed 128-bit coefficients.
	PromotionsU128 uint64
	// PromotionsBig counts operations whose result left the fixed-width
	// paths entirely and fell back to arbitrary precision.
	PromotionsBig uint64
}

// Stats returns the current promotion counters. They are cumulative for
// the process (the kernel is shared by all plans and engines), monotone,
// and safe to read concurrently.
func Stats() KernelStats {
	return KernelStats{
		PromotionsU128: promotionsU128.Load(),
		PromotionsBig:  promotionsBig.Load(),
	}
}
