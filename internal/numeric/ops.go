package numeric

import (
	"math/big"
	"math/bits"
	"sync"

	"repro/internal/combinat"
)

// This file implements the kernel operations the DP engines convolve,
// complement and divide count vectors with. Every operation:
//
//   - is exact by construction (fixed-width paths accumulate in wider
//     carry-chained accumulators that cannot overflow, and the big path is
//     the arbitrary-precision reference itself);
//   - never mutates an input vector (vectors, including the shared cached
//     binomial rows, are immutable values);
//   - returns its result in the minimal representation, recording a
//     promotion when that representation is wider than both inputs'.

// Convolve returns c[k] = Σ_j a[j]·b[k-j]. If a counts j-subsets of a
// ground set A with some property and b counts j-subsets of a disjoint
// ground set B, the result counts k-subsets of A ∪ B whose A-part and
// B-part both have the property. An empty operand yields the empty Vec.
func Convolve(a, b Vec) Vec {
	if a.IsEmpty() || b.IsEmpty() {
		return Vec{}
	}
	// Identity shortcuts: convolving with [1] is the other operand. The
	// result aliases it, which immutability makes safe.
	if a.isOne() {
		return b
	}
	if b.isOne() {
		return a
	}
	in := maxRep(a.rep, b.rep)
	switch in {
	case RepU64:
		return convolveU64(a.u, b.u)
	case RepU128:
		return convolveU128(a.asU128(), b.asU128())
	default:
		return convolveBig(a.asBig(), b.asBig())
	}
}

// ConvolveAll folds Convolve over a list of vectors. An empty list yields
// the identity vector [1]; a singleton list yields its (shared) element.
func ConvolveAll(vs []Vec) Vec {
	if len(vs) == 0 {
		return One()
	}
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = Convolve(acc, v)
	}
	return acc
}

// acc192 is a 192-bit accumulator: wide enough for any sum of fewer than
// 2^64 products of word-sized coefficients.
type acc192 struct {
	w0, w1, w2 uint64
}

// The wide-accumulator scratch of the convolution kernels is recycled
// through sync.Pools: accumulators are dead once the minimal-representation
// result is extracted, yet on Prepare/Apply-heavy paths they were among the
// largest allocation sites (one O(n) array per convolution). Only the
// scratch is pooled — result slices always escape into immutable Vecs and
// are never recycled. Pooled memory is dirty, so it is cleared on the way
// out of the pool; an O(n) clear ahead of an O(n²) accumulation. The scalar
// reference kernels (ops_scalar.go) stay pool-free on purpose: they are the
// differential baseline the pooled paths are checked against.
var (
	acc192Pool = sync.Pool{New: func() any { return new([]acc192) }}
	acc320Pool = sync.Pool{New: func() any { return new([]acc320) }}
)

// getAcc192 returns a zeroed accumulator array of length n.
func getAcc192(n int) *[]acc192 {
	p := acc192Pool.Get().(*[]acc192)
	if cap(*p) < n {
		*p = make([]acc192, n)
		return p
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

func putAcc192(p *[]acc192) { acc192Pool.Put(p) }

// getAcc320 returns a zeroed accumulator array of length n.
func getAcc320(n int) *[]acc320 {
	p := acc320Pool.Get().(*[]acc320)
	if cap(*p) < n {
		*p = make([]acc320, n)
		return p
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

func putAcc320(p *[]acc320) { acc320Pool.Put(p) }

// convolveU64 first attempts the common case — the result also fits
// machine words — in a single pass with one output allocation; any
// overflow restarts on the wide accumulator path (rare: it happens once
// per promotion, and promoted vectors never come back through this
// path). The inner loop is unrolled 4-wide: four independent multiplies
// and adds per step, with the per-step branch on overflow replaced by an
// OR-accumulated flag checked once per row — the result is garbage past
// the first overflow, but the whole output is discarded and recomputed
// wide in that case, so only exact rows are ever returned. Bit-identical
// to convolveU64Scalar (ops_scalar.go) by the differential tests.
func convolveU64(a, b []uint64) Vec {
	out := make([]uint64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := out[i : i+len(b)]
		var bad uint64
		j := 0
		for ; j+4 <= len(b); j += 4 {
			bq := b[j : j+4 : j+4] // one slice check instead of four load checks
			rq := row[j : j+4 : j+4]
			hi0, lo0 := bits.Mul64(ai, bq[0])
			hi1, lo1 := bits.Mul64(ai, bq[1])
			hi2, lo2 := bits.Mul64(ai, bq[2])
			hi3, lo3 := bits.Mul64(ai, bq[3])
			s0, c0 := bits.Add64(rq[0], lo0, 0)
			s1, c1 := bits.Add64(rq[1], lo1, 0)
			s2, c2 := bits.Add64(rq[2], lo2, 0)
			s3, c3 := bits.Add64(rq[3], lo3, 0)
			rq[0], rq[1], rq[2], rq[3] = s0, s1, s2, s3
			bad |= hi0 | hi1 | hi2 | hi3 | c0 | c1 | c2 | c3
		}
		for ; j < len(b); j++ {
			hi, lo := bits.Mul64(ai, b[j])
			var c uint64
			row[j], c = bits.Add64(row[j], lo, 0)
			bad |= hi | c
		}
		if bad != 0 {
			return convolveU64Wide(a, b)
		}
	}
	return Vec{rep: RepU64, u: out}
}

// add192 accumulates one 128-bit product into a 192-bit slot.
func add192(p *acc192, hi, lo uint64) {
	var c uint64
	p.w0, c = bits.Add64(p.w0, lo, 0)
	p.w1, c = bits.Add64(p.w1, hi, c)
	p.w2 += c
}

// convolveU64Wide is the 192-bit accumulator path, unrolled 4-wide like
// convolveU64 (the four accumulation slots per step are distinct, so the
// carry chains are independent).
func convolveU64Wide(a, b []uint64) Vec {
	accP := getAcc192(len(a) + len(b) - 1)
	defer putAcc192(accP)
	acc := *accP
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := acc[i : i+len(b)]
		j := 0
		for ; j+4 <= len(b); j += 4 {
			bq := b[j : j+4 : j+4]
			rq := row[j : j+4 : j+4]
			hi0, lo0 := bits.Mul64(ai, bq[0])
			hi1, lo1 := bits.Mul64(ai, bq[1])
			hi2, lo2 := bits.Mul64(ai, bq[2])
			hi3, lo3 := bits.Mul64(ai, bq[3])
			add192(&rq[0], hi0, lo0)
			add192(&rq[1], hi1, lo1)
			add192(&rq[2], hi2, lo2)
			add192(&rq[3], hi3, lo3)
		}
		for ; j < len(b); j++ {
			hi, lo := bits.Mul64(ai, b[j])
			add192(&row[j], hi, lo)
		}
	}
	out := RepU64
	for i := range acc {
		if acc[i].w2 != 0 {
			out = RepBig
			break
		}
		if acc[i].w1 != 0 {
			out = RepU128
		}
	}
	switch out {
	case RepU64:
		u := make([]uint64, len(acc))
		for i := range acc {
			u[i] = acc[i].w0
		}
		return Vec{rep: RepU64, u: u}
	case RepU128:
		notePromotion(RepU128, RepU64)
		w := make([]Uint128, len(acc))
		for i := range acc {
			w[i] = Uint128{Hi: acc[i].w1, Lo: acc[i].w0}
		}
		return Vec{rep: RepU128, w: w}
	default:
		notePromotion(RepBig, RepU64)
		b := make([]*big.Int, len(acc))
		for i := range acc {
			b[i] = wordsToBig([]uint64{acc[i].w0, acc[i].w1, acc[i].w2}, new(big.Int))
		}
		return Vec{rep: RepBig, b: b}
	}
}

// acc320 is a 320-bit accumulator: wide enough for any sum of fewer than
// 2^64 products of 128-bit coefficients.
type acc320 struct {
	w [5]uint64
}

// convolveU128 keeps one product in flight (a 256-bit product plus its
// five-word accumulator chain is all the registers hold — wider unrolls
// spill and measured slower than scalar) but fuses the mul128 carry
// chains into the loop body: mul128 is not inlinable, so the scalar
// reference pays a call and a [4]uint64 memory round-trip per product
// that the fused chain avoids. Bit-identical to convolveU128Scalar: both
// accumulate the exact 256-bit products into exact 320-bit slots, and
// exact sums do not depend on accumulation order.
func convolveU128(a, b []Uint128) Vec {
	accP := getAcc320(len(a) + len(b) - 1)
	defer putAcc320(accP)
	acc := *accP
	for i := range a {
		ai := a[i]
		if ai.isZero() {
			continue
		}
		row := acc[i : i+len(b)]
		for j := range b {
			bj := b[j]
			// p3:p2:p1:p0 = ai·bj, the mul128 chains inlined.
			ph, p0 := bits.Mul64(ai.Lo, bj.Lo)
			p1 := ph
			var p2, p3, pl, c uint64
			ph, pl = bits.Mul64(ai.Lo, bj.Hi)
			p1, c = bits.Add64(p1, pl, 0)
			p2, c = bits.Add64(p2, ph, c)
			p3 += c
			ph, pl = bits.Mul64(ai.Hi, bj.Lo)
			p1, c = bits.Add64(p1, pl, 0)
			p2, c = bits.Add64(p2, ph, c)
			p3 += c
			ph, pl = bits.Mul64(ai.Hi, bj.Hi)
			p2, c = bits.Add64(p2, pl, 0)
			p3 = p3 + ph + c
			t := &row[j]
			t.w[0], c = bits.Add64(t.w[0], p0, 0)
			t.w[1], c = bits.Add64(t.w[1], p1, c)
			t.w[2], c = bits.Add64(t.w[2], p2, c)
			t.w[3], c = bits.Add64(t.w[3], p3, c)
			t.w[4] += c
		}
	}
	return vecFromAcc320(acc, RepU128)
}

// vecFromAcc320 picks the minimal representation for a 320-bit
// accumulator array, noting a promotion past the input representation.
func vecFromAcc320(acc []acc320, in Rep) Vec {
	out := RepU64
	for i := range acc {
		if acc[i].w[2] != 0 || acc[i].w[3] != 0 || acc[i].w[4] != 0 {
			out = RepBig
			break
		}
		if acc[i].w[1] != 0 {
			out = RepU128
		}
	}
	notePromotion(out, in)
	switch out {
	case RepU64:
		u := make([]uint64, len(acc))
		for i := range acc {
			u[i] = acc[i].w[0]
		}
		return Vec{rep: RepU64, u: u}
	case RepU128:
		w := make([]Uint128, len(acc))
		for i := range acc {
			w[i] = Uint128{Hi: acc[i].w[1], Lo: acc[i].w[0]}
		}
		return Vec{rep: RepU128, w: w}
	default:
		b := make([]*big.Int, len(acc))
		for i := range acc {
			b[i] = wordsToBig(acc[i].w[:], new(big.Int))
		}
		return Vec{rep: RepBig, b: b}
	}
}

func convolveBig(a, b []*big.Int) Vec {
	backing := make([]big.Int, len(a)+len(b)-1)
	out := make([]*big.Int, len(backing))
	for i := range out {
		out[i] = &backing[i]
	}
	tmp := new(big.Int)
	for i, ai := range a {
		if ai.Sign() == 0 {
			continue
		}
		for j, bj := range b {
			if bj.Sign() == 0 {
				continue
			}
			tmp.Mul(ai, bj)
			out[i+j].Add(out[i+j], tmp)
		}
	}
	return fromBigMin(out, RepBig)
}

// fromBigMin wraps a freshly computed (never aliased) []*big.Int in its
// minimal representation, noting a promotion past the input rep.
func fromBigMin(v []*big.Int, in Rep) Vec {
	rep := RepU64
	for _, x := range v {
		switch bl := x.BitLen(); {
		case bl > 128:
			rep = RepBig
		case bl > 64 && rep == RepU64:
			rep = RepU128
		}
		if rep == RepBig {
			break
		}
	}
	notePromotion(rep, in)
	switch rep {
	case RepU64:
		u := make([]uint64, len(v))
		for i, x := range v {
			u[i] = x.Uint64()
		}
		return Vec{rep: RepU64, u: u}
	case RepU128:
		w := make([]Uint128, len(v))
		for i, x := range v {
			w[i] = bigToU128(x)
		}
		return Vec{rep: RepU128, w: w}
	default:
		return Vec{rep: RepBig, b: v}
	}
}

// Complement returns [C(n,k) − v[k]] for k = 0..n: if v counts the
// k-subsets of an n-element set with some property, the result counts
// those without it. It panics if v.Len() != n+1 or an entry exceeds its
// binomial bound.
func Complement(v Vec, n int) Vec {
	if v.Len() != n+1 {
		panic("numeric: complement vector length mismatch")
	}
	return complementRow(v, n)
}

// ComplementTotal is Complement for a v that may be shorter than n+1 (or
// empty): missing entries are zero, so out[k] = C(n,k) for k ≥ v.Len().
// It is the "total minus violating" step of the bucket recursion, where
// the violating-count product may be the zero polynomial.
func ComplementTotal(v Vec, n int) Vec {
	return complementRow(v, n)
}

func complementRow(v Vec, n int) Vec {
	row := Binomial(n)
	in := maxRep(row.rep, v.rep)
	switch in {
	case RepU64:
		u := make([]uint64, n+1)
		for k := 0; k <= n; k++ {
			var x uint64
			if k < len(v.u) {
				x = v.u[k]
			}
			if x > row.u[k] {
				panic("numeric: subset count exceeds binomial bound")
			}
			u[k] = row.u[k] - x
		}
		return Vec{rep: RepU64, u: u}
	case RepU128:
		rw := row.asU128()
		var vw []Uint128
		if !v.IsEmpty() {
			vw = v.asU128()
		}
		w := make([]Uint128, n+1)
		demote := true
		for k := 0; k <= n; k++ {
			var x Uint128
			if k < len(vw) {
				x = vw[k]
			}
			d, borrow := sub128(rw[k], x)
			if borrow != 0 {
				panic("numeric: subset count exceeds binomial bound")
			}
			w[k] = d
			if d.Hi != 0 {
				demote = false
			}
		}
		if demote {
			u := make([]uint64, n+1)
			for k := range w {
				u[k] = w[k].Lo
			}
			return Vec{rep: RepU64, u: u}
		}
		return Vec{rep: RepU128, w: w}
	default:
		rb := row.asBig()
		backing := make([]big.Int, n+1)
		out := make([]*big.Int, n+1)
		x := new(big.Int)
		for k := 0; k <= n; k++ {
			out[k] = backing[k].Sub(rb[k], v.AtInto(k, x))
			if out[k].Sign() < 0 {
				panic("numeric: subset count exceeds binomial bound")
			}
		}
		return fromBigMin(out, in)
	}
}

// Deconvolve is the exact inverse of Convolve in its first argument:
// given p = Convolve(q, v) for some count vector q and a not-identically-
// zero v, it recovers q by synthetic division anchored at v's lowest
// non-zero coefficient, in O(p.Len()·v.Len()) words. The division must be
// exact (p really has v as a convolution factor); a non-exact input
// panics, since it can only arise from an internal invariant violation,
// never from user data. The quotient's entries are bounded by p's (each
// q[k]·v[anchor] is one term of a p entry), so the computation never
// leaves p's representation.
func Deconvolve(p, v Vec) Vec {
	switch maxRep(p.rep, v.rep) {
	case RepU64:
		return deconvolveU64(p.u, v.u)
	case RepU128:
		return deconvolveU128(p.asU128(), v.asU128())
	default:
		return deconvolveBig(p.asBig(), v.asBig())
	}
}

func deconvolveU64(p, v []uint64) Vec {
	lead := -1
	for i, x := range v {
		if x != 0 {
			lead = i
			break
		}
	}
	if lead < 0 {
		panic("numeric: Deconvolve by the zero vector")
	}
	n := len(p) - len(v) + 1
	if n < 1 {
		panic("numeric: Deconvolve length mismatch")
	}
	d := v[lead]
	out := make([]uint64, n)
	for k := 0; k < n; k++ {
		// p[lead+k] = Σ_j out[j]·v[lead+k-j]; solve for out[k]. Every
		// partial remainder is a tail of that non-negative sum, so the
		// subtraction chain can never underflow on exact input. The loop
		// is unrolled 4-wide: a group of four products is summed and
		// subtracted at once. On exact input the group sum is itself a
		// partial tail of the entry, so it fits a word and stays ≤ acc
		// and the check never fires; on corrupt input the group check
		// fires iff some scalar step in the group would (a group sum
		// exceeding acc means some prefix step exceeded its remainder).
		// Panic-equivalent and bit-identical to deconvolveU64Scalar.
		acc := p[lead+k]
		lo := 0
		if k+lead >= len(v) {
			lo = k + lead - len(v) + 1
		}
		j := lo
		for ; j+4 <= k; j += 4 {
			oq := out[j : j+4 : j+4]
			vq := v[lead+k-j-3 : lead+k-j+1] // v window, reversed order
			hi0, t0 := bits.Mul64(oq[0], vq[3])
			hi1, t1 := bits.Mul64(oq[1], vq[2])
			hi2, t2 := bits.Mul64(oq[2], vq[1])
			hi3, t3 := bits.Mul64(oq[3], vq[0])
			s01, c0 := bits.Add64(t0, t1, 0)
			s23, c1 := bits.Add64(t2, t3, 0)
			s, c2 := bits.Add64(s01, s23, 0)
			if hi0|hi1|hi2|hi3|c0|c1|c2 != 0 || s > acc {
				panic("numeric: Deconvolve of a non-multiple")
			}
			acc -= s
		}
		for ; j < k; j++ {
			hi, t := bits.Mul64(out[j], v[lead+k-j])
			if hi != 0 || t > acc {
				panic("numeric: Deconvolve of a non-multiple")
			}
			acc -= t
		}
		if acc%d != 0 {
			panic("numeric: Deconvolve of a non-multiple")
		}
		out[k] = acc / d
	}
	return Vec{rep: RepU64, u: out}
}

// add128 adds two 128-bit values, returning the sum and the carry out.
func add128(a, b Uint128) (Uint128, uint64) {
	lo, c := bits.Add64(a.Lo, b.Lo, 0)
	hi, c := bits.Add64(a.Hi, b.Hi, c)
	return Uint128{Hi: hi, Lo: lo}, c
}

func deconvolveU128(p, v []Uint128) Vec {
	lead := -1
	for i := range v {
		if !v[i].isZero() {
			lead = i
			break
		}
	}
	if lead < 0 {
		panic("numeric: Deconvolve by the zero vector")
	}
	n := len(p) - len(v) + 1
	if n < 1 {
		panic("numeric: Deconvolve length mismatch")
	}
	d := v[lead]
	out := make([]Uint128, n)
	demote := true
	for k := 0; k < n; k++ {
		acc := p[lead+k]
		lo := 0
		if k+lead >= len(v) {
			lo = k + lead - len(v) + 1
		}
		// Unrolled 4-wide like deconvolveU64: a group of four 256-bit
		// products is range-checked, summed in 128 bits and subtracted
		// at once. The same tail-of-a-sum argument makes the group
		// checks panic-equivalent to the scalar per-step checks.
		j := lo
		for ; j+4 <= k; j += 4 {
			oq := out[j : j+4 : j+4]
			vq := v[lead+k-j-3 : lead+k-j+1] // v window, reversed order
			t0 := mul128(oq[0], vq[3])
			t1 := mul128(oq[1], vq[2])
			t2 := mul128(oq[2], vq[1])
			t3 := mul128(oq[3], vq[0])
			if t0[2]|t0[3]|t1[2]|t1[3]|t2[2]|t2[3]|t3[2]|t3[3] != 0 {
				panic("numeric: Deconvolve of a non-multiple")
			}
			s01, c0 := add128(Uint128{Hi: t0[1], Lo: t0[0]}, Uint128{Hi: t1[1], Lo: t1[0]})
			s23, c1 := add128(Uint128{Hi: t2[1], Lo: t2[0]}, Uint128{Hi: t3[1], Lo: t3[0]})
			s, c2 := add128(s01, s23)
			next, borrow := sub128(acc, s)
			if c0|c1|c2|borrow != 0 {
				panic("numeric: Deconvolve of a non-multiple")
			}
			acc = next
		}
		for ; j < k; j++ {
			t := mul128(out[j], v[lead+k-j])
			if t[2] != 0 || t[3] != 0 {
				panic("numeric: Deconvolve of a non-multiple")
			}
			next, borrow := sub128(acc, Uint128{Hi: t[1], Lo: t[0]})
			if borrow != 0 {
				panic("numeric: Deconvolve of a non-multiple")
			}
			acc = next
		}
		q, r := div128(acc, d)
		if !r.isZero() {
			panic("numeric: Deconvolve of a non-multiple")
		}
		out[k] = q
		if q.Hi != 0 {
			demote = false
		}
	}
	if demote {
		u := make([]uint64, n)
		for i := range out {
			u[i] = out[i].Lo
		}
		return Vec{rep: RepU64, u: u}
	}
	return Vec{rep: RepU128, w: out}
}

func deconvolveBig(p, v []*big.Int) Vec {
	lead := -1
	for i, x := range v {
		if x.Sign() != 0 {
			lead = i
			break
		}
	}
	if lead < 0 {
		panic("numeric: Deconvolve by the zero vector")
	}
	n := len(p) - len(v) + 1
	if n < 1 {
		panic("numeric: Deconvolve length mismatch")
	}
	backing := make([]big.Int, n)
	out := make([]*big.Int, n)
	tmp := new(big.Int)
	rem := new(big.Int)
	for k := 0; k < n; k++ {
		acc := backing[k].Set(p[lead+k])
		lo := 0
		if k+lead >= len(v) {
			lo = k + lead - len(v) + 1
		}
		for j := lo; j < k; j++ {
			acc.Sub(acc, tmp.Mul(out[j], v[lead+k-j]))
		}
		out[k], rem = acc.QuoRem(acc, v[lead], rem)
		if rem.Sign() != 0 {
			panic("numeric: Deconvolve of a non-multiple")
		}
	}
	return fromBigMin(out, RepBig)
}

// WeightedDifference returns Σ_k ShapleyWeight(k, m)·(with[k] −
// without[k]): the Shapley value reconstruction from |Sat| count vectors.
// This is the one place exact rationals enter — an O(m) epilogue after all
// counting ran on the kernel representations. All m weights share the
// denominator m!, so the sum is accumulated as the integer numerator
// Σ_k (with[k]−without[k])·k!·(m−1−k)! and normalized by a single GCD at
// the end — identical to the term-by-term big.Rat sum (rationals have a
// canonical form), but without m intermediate GCD normalizations over
// factorial-sized operands, which dominated whole-batch profiles.
func WeightedDifference(with, without Vec, m int) *big.Rat {
	if m == 0 {
		return new(big.Rat)
	}
	fact := combinat.FactorialRow(m) // shared, read-only
	num := new(big.Int)
	w, wo := new(big.Int), new(big.Int)
	diff := new(big.Int)
	term := new(big.Int)
	for k := 0; k < m; k++ {
		diff.Sub(with.AtInto(k, w), without.AtInto(k, wo))
		if diff.Sign() == 0 {
			continue
		}
		term.Mul(diff, fact[k])
		term.Mul(term, fact[m-1-k])
		num.Add(num, term)
	}
	return new(big.Rat).SetFrac(num, fact[m])
}

// WeightSignedCounts folds per-coalition-size signed flip counts into the
// exact rational Shapley value Σ_k counts[k]·k!(m−1−k)!/m!. It is the
// brute-force sibling of WeightedDifference: the subset enumeration has
// already collapsed with/without satisfaction into machine-word signed
// counts per size, so only the factorial weighting remains. The same
// single-normalization scheme applies — one numerator over the common
// denominator m!, one GCD at the end.
func WeightSignedCounts(counts []int64, m int) *big.Rat {
	if m == 0 {
		return new(big.Rat)
	}
	fact := combinat.FactorialRow(m) // shared, read-only
	num := new(big.Int)
	term := new(big.Int)
	c64 := new(big.Int)
	for k, c := range counts {
		if c == 0 {
			continue
		}
		term.Mul(c64.SetInt64(c), fact[k])
		term.Mul(term, fact[m-1-k])
		num.Add(num, term)
	}
	return new(big.Rat).SetFrac(num, fact[m])
}
