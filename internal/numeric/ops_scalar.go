package numeric

import (
	"math/big"
	"math/bits"
)

// This file keeps the original scalar inner loops of the fixed-width
// kernel operations, verbatim, as the audited differential references for
// the 4-wide unrolled production variants in ops.go. The unrolled loops
// must be bit-identical to these on every input (and panic exactly when
// these panic); the pinning lives in ops_unroll_test.go and the kernel
// fuzz targets. They are reachable only from tests and benchmarks — the
// dispatchers (Convolve, Deconvolve) call the unrolled variants.

// convolveU64Scalar is the pre-unroll convolveU64: one multiply, one
// overflow-checked add per step, restarting on the wide accumulator path
// at the first overflow.
func convolveU64Scalar(a, b []uint64) Vec {
	out := make([]uint64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			if bj == 0 {
				continue
			}
			hi, lo := bits.Mul64(ai, bj)
			if hi != 0 {
				return convolveU64WideScalar(a, b)
			}
			s, c := bits.Add64(out[i+j], lo, 0)
			if c != 0 {
				return convolveU64WideScalar(a, b)
			}
			out[i+j] = s
		}
	}
	return Vec{rep: RepU64, u: out}
}

// convolveU64WideScalar is the pre-unroll convolveU64Wide: a scalar
// 192-bit accumulation chain per product.
func convolveU64WideScalar(a, b []uint64) Vec {
	acc := make([]acc192, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			if bj == 0 {
				continue
			}
			hi, lo := bits.Mul64(ai, bj)
			p := &acc[i+j]
			var c uint64
			p.w0, c = bits.Add64(p.w0, lo, 0)
			p.w1, c = bits.Add64(p.w1, hi, c)
			p.w2 += c
		}
	}
	out := RepU64
	for i := range acc {
		if acc[i].w2 != 0 {
			out = RepBig
			break
		}
		if acc[i].w1 != 0 {
			out = RepU128
		}
	}
	switch out {
	case RepU64:
		u := make([]uint64, len(acc))
		for i := range acc {
			u[i] = acc[i].w0
		}
		return Vec{rep: RepU64, u: u}
	case RepU128:
		notePromotion(RepU128, RepU64)
		w := make([]Uint128, len(acc))
		for i := range acc {
			w[i] = Uint128{Hi: acc[i].w1, Lo: acc[i].w0}
		}
		return Vec{rep: RepU128, w: w}
	default:
		notePromotion(RepBig, RepU64)
		b := make([]*big.Int, len(acc))
		for i := range acc {
			b[i] = wordsToBig([]uint64{acc[i].w0, acc[i].w1, acc[i].w2}, new(big.Int))
		}
		return Vec{rep: RepBig, b: b}
	}
}

// convolveU128Scalar is the pre-unroll convolveU128: a scalar 320-bit
// accumulation chain per 256-bit product.
func convolveU128Scalar(a, b []Uint128) Vec {
	acc := make([]acc320, len(a)+len(b)-1)
	for i := range a {
		ai := a[i]
		if ai.isZero() {
			continue
		}
		for j := range b {
			bj := b[j]
			if bj.isZero() {
				continue
			}
			p := mul128(ai, bj)
			t := &acc[i+j]
			var c uint64
			t.w[0], c = bits.Add64(t.w[0], p[0], 0)
			t.w[1], c = bits.Add64(t.w[1], p[1], c)
			t.w[2], c = bits.Add64(t.w[2], p[2], c)
			t.w[3], c = bits.Add64(t.w[3], p[3], c)
			t.w[4] += c
		}
	}
	return vecFromAcc320(acc, RepU128)
}

// deconvolveU64Scalar is the pre-unroll deconvolveU64: one product, one
// bound check, one subtraction per back-substitution step.
func deconvolveU64Scalar(p, v []uint64) Vec {
	lead := -1
	for i, x := range v {
		if x != 0 {
			lead = i
			break
		}
	}
	if lead < 0 {
		panic("numeric: Deconvolve by the zero vector")
	}
	n := len(p) - len(v) + 1
	if n < 1 {
		panic("numeric: Deconvolve length mismatch")
	}
	d := v[lead]
	out := make([]uint64, n)
	for k := 0; k < n; k++ {
		// p[lead+k] = Σ_j out[j]·v[lead+k-j]; solve for out[k]. Every
		// partial remainder is a tail of that non-negative sum, so the
		// subtraction chain can never underflow on exact input.
		acc := p[lead+k]
		lo := 0
		if k+lead >= len(v) {
			lo = k + lead - len(v) + 1
		}
		for j := lo; j < k; j++ {
			hi, t := bits.Mul64(out[j], v[lead+k-j])
			if hi != 0 || t > acc {
				panic("numeric: Deconvolve of a non-multiple")
			}
			acc -= t
		}
		if acc%d != 0 {
			panic("numeric: Deconvolve of a non-multiple")
		}
		out[k] = acc / d
	}
	return Vec{rep: RepU64, u: out}
}

// deconvolveU128Scalar is the pre-unroll deconvolveU128.
func deconvolveU128Scalar(p, v []Uint128) Vec {
	lead := -1
	for i := range v {
		if !v[i].isZero() {
			lead = i
			break
		}
	}
	if lead < 0 {
		panic("numeric: Deconvolve by the zero vector")
	}
	n := len(p) - len(v) + 1
	if n < 1 {
		panic("numeric: Deconvolve length mismatch")
	}
	d := v[lead]
	out := make([]Uint128, n)
	demote := true
	for k := 0; k < n; k++ {
		acc := p[lead+k]
		lo := 0
		if k+lead >= len(v) {
			lo = k + lead - len(v) + 1
		}
		for j := lo; j < k; j++ {
			t := mul128(out[j], v[lead+k-j])
			if t[2] != 0 || t[3] != 0 {
				panic("numeric: Deconvolve of a non-multiple")
			}
			next, borrow := sub128(acc, Uint128{Hi: t[1], Lo: t[0]})
			if borrow != 0 {
				panic("numeric: Deconvolve of a non-multiple")
			}
			acc = next
		}
		q, r := div128(acc, d)
		if !r.isZero() {
			panic("numeric: Deconvolve of a non-multiple")
		}
		out[k] = q
		if q.Hi != 0 {
			demote = false
		}
	}
	if demote {
		u := make([]uint64, n)
		for i := range out {
			u[i] = out[i].Lo
		}
		return Vec{rep: RepU64, u: u}
	}
	return Vec{rep: RepU128, w: out}
}
