package numeric

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/combinat"
)

// --- pure-big.Int reference implementations ---
//
// The kernel's contract is bit-identity with arbitrary-precision
// arithmetic. These references are deliberately independent of the kernel
// code paths (plain math/big loops, mirroring combinat's audited
// algorithms), so every randomized test below is a true differential.

func refConvolve(a, b []*big.Int) []*big.Int {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]*big.Int, len(a)+len(b)-1)
	for i := range out {
		out[i] = new(big.Int)
	}
	tmp := new(big.Int)
	for i, ai := range a {
		for j, bj := range b {
			tmp.Mul(ai, bj)
			out[i+j].Add(out[i+j], tmp)
		}
	}
	return out
}

func refComplement(v []*big.Int, n int) []*big.Int {
	out := make([]*big.Int, n+1)
	for k := 0; k <= n; k++ {
		out[k] = combinat.Binomial(n, k)
		if k < len(v) {
			out[k].Sub(out[k], v[k])
		}
	}
	return out
}

// randBig returns a uniformly random integer with the given bit length
// (exactly: the top bit is set), or zero for bits == 0.
func randBig(rng *rand.Rand, bitlen int) *big.Int {
	if bitlen <= 0 {
		return new(big.Int)
	}
	out := new(big.Int).SetBit(new(big.Int), bitlen-1, 1)
	for i := 0; i < bitlen-1; i++ {
		if rng.Intn(2) == 1 {
			out.SetBit(out, i, 1)
		}
	}
	return out
}

// randVec draws a vector whose entries straddle the representation
// thresholds: bit lengths cluster around 0, 64 and 128 so u64→u128→big
// promotions happen constantly.
func randVec(rng *rand.Rand, n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		var bl int
		switch rng.Intn(6) {
		case 0:
			bl = 0
		case 1:
			bl = rng.Intn(64)
		case 2:
			bl = 60 + rng.Intn(9) // straddles the u64 boundary
		case 3:
			bl = 64 + rng.Intn(60)
		case 4:
			bl = 124 + rng.Intn(9) // straddles the u128 boundary
		default:
			bl = 128 + rng.Intn(60)
		}
		out[i] = randBig(rng, bl)
	}
	return out
}

func eqBig(a, b []*big.Int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			return false
		}
	}
	return true
}

func TestFromBigRoundTripAndMinimalRep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		in := randVec(rng, 1+rng.Intn(12))
		v := FromBig(in)
		if !eqBig(v.Big(), in) {
			t.Fatalf("round trip broke: %v vs %v", v.Big(), in)
		}
		// The stored representation must be minimal for the content.
		maxBits := 0
		for _, x := range in {
			if bl := x.BitLen(); bl > maxBits {
				maxBits = bl
			}
		}
		want := RepU64
		if maxBits > 128 {
			want = RepBig
		} else if maxBits > 64 {
			want = RepU128
		}
		if v.Rep() != want {
			t.Fatalf("rep %v for max bit length %d, want %v", v.Rep(), maxBits, want)
		}
	}
}

func TestConvolveDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		a := randVec(rng, 1+rng.Intn(10))
		b := randVec(rng, 1+rng.Intn(10))
		got := Convolve(FromBig(a), FromBig(b))
		want := refConvolve(a, b)
		if !eqBig(got.Big(), want) {
			t.Fatalf("Convolve(%v, %v) = %v, want %v", a, b, got.Big(), want)
		}
	}
}

// TestConvolveThresholds pins the exact promotion boundaries: products and
// sums landing one unit below, at, and above 2^64 and 2^128.
func TestConvolveThresholds(t *testing.T) {
	maxU64 := new(big.Int).SetUint64(^uint64(0))
	one := big.NewInt(1)
	cases := [][2][]*big.Int{
		// (2^64-1)·1: stays u64.
		{{maxU64}, {one}},
		// (2^64-1)+1 via convolution of [1, max] and [1, 1] at index 1.
		{{one, maxU64}, {one, one}},
		// (2^64-1)^2: needs u128.
		{{maxU64}, {maxU64}},
		// (2^128-1)·(2^128-1): needs big.
		{{new(big.Int).Lsh(one, 128)}, {new(big.Int).Lsh(one, 128)}},
		// max u128 times 1: stays u128.
		{{new(big.Int).Sub(new(big.Int).Lsh(one, 128), one)}, {one}},
	}
	for i, c := range cases {
		got := Convolve(FromBig(c[0]), FromBig(c[1]))
		want := refConvolve(c[0], c[1])
		if !eqBig(got.Big(), want) {
			t.Fatalf("case %d: %v, want %v", i, got.Big(), want)
		}
	}
	// Accumulation overflow past 128 bits inside the u64 path: many
	// maximal products summed at one index.
	a := make([]*big.Int, 8)
	b := make([]*big.Int, 8)
	for i := range a {
		a[i] = new(big.Int).Set(maxU64)
		b[i] = new(big.Int).Set(maxU64)
	}
	got := Convolve(FromBig(a), FromBig(b))
	if !eqBig(got.Big(), refConvolve(a, b)) {
		t.Fatal("u64 accumulator overflow mishandled")
	}
}

func TestDeconvolveDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		q := randVec(rng, 1+rng.Intn(8))
		v := randVec(rng, 1+rng.Intn(8))
		// v must not be identically zero.
		nonzero := false
		for _, x := range v {
			if x.Sign() != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			v[rng.Intn(len(v))] = big.NewInt(1 + int64(rng.Intn(100)))
		}
		qv, vv := FromBig(q), FromBig(v)
		p := Convolve(qv, vv)
		got := Deconvolve(p, vv)
		if !eqBig(got.Big(), q) {
			t.Fatalf("Deconvolve(Convolve(q, v), v) != q:\nq=%v\nv=%v\ngot=%v", q, v, got.Big())
		}
		// Cross-check against the audited combinat implementation.
		want := combinat.Deconvolve(p.Big(), v)
		if !eqBig(got.Big(), want) {
			t.Fatalf("kernel and combinat deconvolution disagree: %v vs %v", got.Big(), want)
		}
	}
}

func TestDeconvolveNonMultiplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for a non-multiple")
		}
	}()
	Deconvolve(FromUint64s([]uint64{1, 3, 1}), FromUint64s([]uint64{2, 1}))
}

func TestComplementDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		// n crosses both thresholds: C(n, n/2) needs u128 past n = 67 and
		// big past n = 134.
		n := 1 + rng.Intn(150)
		v := make([]*big.Int, n+1)
		for k := 0; k <= n; k++ {
			// A valid subset count: uniform in [0, C(n,k)].
			bound := combinat.Binomial(n, k)
			v[k] = new(big.Int).Rand(rng, new(big.Int).Add(bound, big.NewInt(1)))
		}
		got := Complement(FromBig(v), n)
		if !eqBig(got.Big(), refComplement(v, n)) {
			t.Fatalf("n=%d: complement mismatch", n)
		}
		// ComplementTotal with a truncated vector.
		cut := rng.Intn(n + 2)
		got2 := ComplementTotal(FromBig(v[:cut]), n)
		if !eqBig(got2.Big(), refComplement(v[:cut], n)) {
			t.Fatalf("n=%d cut=%d: complement-total mismatch", n, cut)
		}
	}
	// Empty vector: the complement of the zero polynomial is the full row.
	n := 70
	if !eqBig(ComplementTotal(Vec{}, n).Big(), refComplement(nil, n)) {
		t.Fatal("complement-total of the empty vector is not the binomial row")
	}
}

func TestComplementOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for a count above its binomial bound")
		}
	}()
	Complement(FromUint64s([]uint64{2, 1}), 1) // 2 > C(1,0)
}

func TestWeightedDifferenceMatchesCombinat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(20)
		with := randVec(rng, 1+rng.Intn(m+2))
		without := randVec(rng, 1+rng.Intn(m+2))
		got := WeightedDifference(FromBig(with), FromBig(without), m)
		want := combinat.WeightedDifference(with, without, m)
		if got.Cmp(want) != 0 {
			t.Fatalf("m=%d: %s, want %s", m, got.RatString(), want.RatString())
		}
	}
	if WeightedDifference(One(), One(), 0).Sign() != 0 {
		t.Fatal("m=0 must yield 0")
	}
}

// TestWeightSignedCountsMatchesTermByTerm pins the single-normalization
// fold against the definitional term-by-term rational sum
// Σ_k counts[k]·ShapleyWeight(k, m). This is the brute-force epilogue
// that used to live (as raw big.Int arithmetic) in internal/core; the
// numericpurity analyzer now keeps it here.
func TestWeightSignedCountsMatchesTermByTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(20)
		counts := make([]int64, m)
		for k := range counts {
			counts[k] = rng.Int63n(1<<40) - (1 << 39) // signed, both signs
		}
		got := WeightSignedCounts(counts, m)
		want := new(big.Rat)
		for k, c := range counts {
			term := combinat.ShapleyWeight(k, m)
			term.Mul(term, new(big.Rat).SetInt64(c))
			want.Add(want, term)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("m=%d counts=%v: got %s, want %s", m, counts, got.RatString(), want.RatString())
		}
	}
	if WeightSignedCounts(nil, 0).Sign() != 0 {
		t.Fatal("m=0 must yield 0")
	}
}

func TestBinomialRowsAndShifted(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 65, 67, 68, 128, 129, 140} {
		row := Binomial(n)
		want := combinat.BinomialRow(n)
		if !eqBig(row.Big(), want) {
			t.Fatalf("Binomial(%d) mismatch", n)
		}
	}
	// Representation boundaries: C(67, 33) is the largest central
	// coefficient under 2^64; C(128, 64) still fits 128 bits.
	if got := Binomial(67).Rep(); got != RepU64 {
		t.Fatalf("Binomial(67) rep %v, want u64", got)
	}
	if got := Binomial(68).Rep(); got != RepU128 {
		t.Fatalf("Binomial(68) rep %v, want u128", got)
	}
	if got := Binomial(128).Rep(); got != RepU128 {
		t.Fatalf("Binomial(128) rep %v, want u128", got)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(140)
		free := rng.Intn(n + 1)
		shift := rng.Intn(n - free + 1)
		got := ShiftedBinomial(free, shift, n)
		x := new(big.Int)
		for k := 0; k <= n; k++ {
			want := combinat.Binomial(free, k-shift)
			if got.AtInto(k, x).Cmp(want) != 0 {
				t.Fatalf("ShiftedBinomial(%d, %d, %d)[%d] = %s, want %s", free, shift, n, k, x, want)
			}
		}
	}
}

func TestSumEqualAndAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		in := randVec(rng, 1+rng.Intn(10))
		v := FromBig(in)
		want := new(big.Int)
		for _, x := range in {
			want.Add(want, x)
		}
		if v.Sum().Cmp(want) != 0 {
			t.Fatalf("Sum %s, want %s", v.Sum(), want)
		}
		if !v.Equal(FromBig(in)) {
			t.Fatal("Equal(self) is false")
		}
		if v.At(v.Len()).Sign() != 0 || v.At(-1).Sign() != 0 {
			t.Fatal("out-of-range At must be 0")
		}
		if v.IsZero() != combinat.IsZeroVector(in) {
			t.Fatal("IsZero disagrees with combinat")
		}
	}
	if !(Vec{}).IsZero() || !(Vec{}).IsEmpty() || Zero(3).IsEmpty() {
		t.Fatal("empty-vector semantics broken")
	}
}

func TestU128Division(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nb, db := new(big.Int), new(big.Int)
	for trial := 0; trial < 2000; trial++ {
		n := Uint128{Hi: rng.Uint64() >> uint(rng.Intn(64)), Lo: rng.Uint64()}
		d := Uint128{Hi: rng.Uint64() >> uint(rng.Intn(70)), Lo: rng.Uint64()}
		if d.isZero() {
			continue
		}
		q, r := div128(n, d)
		u128ToBig(n, nb)
		u128ToBig(d, db)
		wantQ, wantR := new(big.Int).QuoRem(nb, db, new(big.Int))
		if u128ToBig(q, new(big.Int)).Cmp(wantQ) != 0 || u128ToBig(r, new(big.Int)).Cmp(wantR) != 0 {
			t.Fatalf("div128(%v, %v): q=%v r=%v, want %s %s", n, d, q, r, wantQ, wantR)
		}
	}
}

// TestPromotionCounters pins that crossing a representation boundary is
// recorded exactly once per promoting operation.
func TestPromotionCounters(t *testing.T) {
	before := Stats()
	maxU64 := FromBig([]*big.Int{new(big.Int).SetUint64(^uint64(0))})
	_ = Convolve(maxU64, maxU64) // u64 inputs, u128 result
	mid := Stats()
	if mid.PromotionsU128 != before.PromotionsU128+1 {
		t.Fatalf("u128 promotions %d, want %d", mid.PromotionsU128, before.PromotionsU128+1)
	}
	big128 := FromBig([]*big.Int{new(big.Int).Lsh(big.NewInt(1), 127)})
	_ = Convolve(big128, big128) // u128 inputs, big result
	after := Stats()
	if after.PromotionsBig != mid.PromotionsBig+1 {
		t.Fatalf("big promotions %d, want %d", after.PromotionsBig, mid.PromotionsBig+1)
	}
	// A non-promoting op must not move the counters.
	_ = Convolve(One(), One())
	if s := Stats(); s != after {
		t.Fatalf("identity convolution moved the counters: %+v vs %+v", s, after)
	}
}
