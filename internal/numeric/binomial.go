package numeric

import (
	"sync"

	"repro/internal/combinat"
)

// maxCachedBinomialRow mirrors combinat's cache bound: rows are retained
// for n up to this limit, so a long-running process serving workloads of
// many sizes cannot grow the cache without bound.
const maxCachedBinomialRow = 512

var (
	binMu   sync.RWMutex
	binRows = make(map[int]Vec) // n -> [C(n,0)..C(n,n)] in minimal rep
)

// Binomial returns the Pascal row [C(n,0), ..., C(n,n)] in its minimal
// kernel representation. The returned Vec is shared and cached (for n up
// to maxCachedBinomialRow); Vec's immutability makes concurrent use by
// independent plans safe — no kernel operation ever writes through an
// input vector. Rows up to n = 64 are single-word, rows up to n = 128 are
// two-word (C(n,k) ≤ 2^n), larger rows fall back to big.
func Binomial(n int) Vec {
	if n < 0 {
		panic("numeric: negative binomial row")
	}
	if n > maxCachedBinomialRow {
		return FromBig(combinat.BinomialRow(n))
	}
	binMu.RLock()
	row, ok := binRows[n]
	binMu.RUnlock()
	if ok {
		return row
	}
	row = FromBig(combinat.BinomialRow(n))
	binMu.Lock()
	binRows[n] = row
	binMu.Unlock()
	return row
}

// ShiftedBinomial returns the length-(n+1) vector with out[k] =
// C(free, k−shift) (zero elsewhere): the ground base case of the CntSat
// recursion, where `shift` endogenous facts are forced into every
// satisfying subset and `free` choose freely. shift+free must not exceed
// n.
func ShiftedBinomial(free, shift, n int) Vec {
	if free < 0 || shift < 0 || shift+free > n {
		panic("numeric: ShiftedBinomial out of range")
	}
	row := Binomial(free)
	switch row.rep {
	case RepU64:
		u := make([]uint64, n+1)
		copy(u[shift:], row.u)
		return Vec{rep: RepU64, u: u}
	case RepU128:
		w := make([]Uint128, n+1)
		copy(w[shift:], row.w)
		return Vec{rep: RepU128, w: w}
	default:
		b := Zero(n).Big()
		for k := 0; k <= free; k++ {
			b[shift+k].Set(row.b[k])
		}
		return Vec{rep: RepBig, b: b}
	}
}
