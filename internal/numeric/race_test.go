package numeric

import (
	"math/big"
	"sync"
	"testing"

	"repro/internal/combinat"
)

// TestSharedRowsConcurrentUse is the race gate for the kernel's sharing
// contract: cached binomial rows (and vectors derived from them) are
// handed to every plan in the process, so concurrent convolutions,
// complements and divisions over the same rows must never write through
// them. Run under -race (CI does) this fails on any mutation; the value
// checks additionally catch torn reuse on non-race runs.
func TestSharedRowsConcurrentUse(t *testing.T) {
	ns := []int{8, 64, 67, 68, 90, 128, 140}
	// Snapshot expected row contents before spawning workers.
	want := make(map[int][]*big.Int, len(ns))
	for _, n := range ns {
		want[n] = combinat.BinomialRow(n)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 40; iter++ {
				n := ns[(w+iter)%len(ns)]
				row := Binomial(n)
				// Ops that read the shared row from every code path.
				half := ComplementTotal(Vec{}, n) // materializes the row
				if !half.Equal(row) {
					t.Errorf("complement of zero is not the row for n=%d", n)
					return
				}
				prod := Convolve(row, row)
				back := Deconvolve(prod, row)
				if !back.Equal(row) {
					t.Errorf("deconvolve did not invert over the shared row, n=%d", n)
					return
				}
				_ = ShiftedBinomial(n/2, n/4, n)
				_ = WeightedDifference(row, half, n+1)
			}
		}(w)
	}
	wg.Wait()
	// The shared rows must be bit-identical to the pre-spawn snapshot.
	for _, n := range ns {
		if !eqBig(Binomial(n).Big(), want[n]) {
			t.Fatalf("shared binomial row %d was mutated", n)
		}
	}
}
