package numeric

import (
	"math/rand"
	"testing"
)

// Differential pinning of the 4-wide unrolled kernel loops in ops.go
// against their verbatim scalar references in ops_scalar.go. "Pinned"
// means bit-identical: same representation, same entries, and — for
// Deconvolve on corrupt input — a panic exactly when the scalar panics.

// randU64s draws word slices whose entries straddle the overflow
// boundary of the fast convolveU64 path: mostly small, sometimes huge so
// the wide restart triggers, sometimes zero so the zero-skip asymmetry
// between scalar and unrolled code is exercised.
func randU64s(rng *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		switch rng.Intn(5) {
		case 0:
			// zero: the scalar loops skip these, the unrolled loops don't
		case 1:
			out[i] = rng.Uint64() >> 40
		case 2:
			out[i] = rng.Uint64() >> 2
		default:
			out[i] = rng.Uint64()
		}
	}
	return out
}

func randU128s(rng *rand.Rand, n int, maxShift uint) []Uint128 {
	out := make([]Uint128, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			// zero
		case 1:
			out[i] = Uint128{Lo: rng.Uint64() >> (maxShift % 64)}
		default:
			out[i] = Uint128{Hi: rng.Uint64() >> maxShift, Lo: rng.Uint64()}
		}
	}
	return out
}

func sameVec(t *testing.T, got, want Vec, what string) {
	t.Helper()
	if got.Rep() != want.Rep() {
		t.Fatalf("%s: rep %v, scalar reference has %v", what, got.Rep(), want.Rep())
	}
	if !got.Equal(want) {
		t.Fatalf("%s: %v != scalar reference %v", what, got.Big(), want.Big())
	}
}

func TestUnrolledConvolveU64MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 2000; trial++ {
		// Lengths cover every tail residue of the 4-wide loop, including
		// the all-tail lengths 1..3.
		a := randU64s(rng, 1+rng.Intn(13))
		b := randU64s(rng, 1+rng.Intn(13))
		sameVec(t, convolveU64(a, b), convolveU64Scalar(a, b), "convolveU64")
		sameVec(t, convolveU64Wide(a, b), convolveU64WideScalar(a, b), "convolveU64Wide")
	}
}

func TestUnrolledConvolveU128MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 1500; trial++ {
		a := randU128s(rng, 1+rng.Intn(11), uint(rng.Intn(64)))
		b := randU128s(rng, 1+rng.Intn(11), uint(rng.Intn(64)))
		sameVec(t, convolveU128(a, b), convolveU128Scalar(a, b), "convolveU128")
	}
}

func panics(f func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	f()
	return false
}

func TestUnrolledDeconvolveU64MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 2000; trial++ {
		// Exact inputs: p = q * v with entries small enough that the
		// product provably fits words (≤ 13 products of < 2^29 values).
		q := make([]uint64, 1+rng.Intn(13))
		v := make([]uint64, 1+rng.Intn(13))
		for i := range q {
			q[i] = uint64(rng.Intn(1 << 29))
		}
		for i := range v {
			v[i] = uint64(rng.Intn(1 << 29))
		}
		allZero := true
		for _, x := range v {
			allZero = allZero && x == 0
		}
		if allZero {
			v[rng.Intn(len(v))] = 1 + uint64(rng.Intn(100))
		}
		p := convolveU64Scalar(q, v)
		if p.Rep() != RepU64 {
			t.Fatalf("test setup overflowed u64")
		}
		pu := append([]uint64(nil), p.u...)
		sameVec(t, deconvolveU64(pu, v), deconvolveU64Scalar(pu, v), "deconvolveU64")

		// Corrupt inputs: the unrolled group checks must panic exactly
		// when the scalar per-step checks do.
		pu[rng.Intn(len(pu))] = rng.Uint64()
		var got, want Vec
		gp := panics(func() { got = deconvolveU64(pu, v) })
		wp := panics(func() { want = deconvolveU64Scalar(pu, v) })
		if gp != wp {
			t.Fatalf("deconvolveU64 corrupt input: unrolled panic=%v, scalar panic=%v (p=%v v=%v)", gp, wp, pu, v)
		}
		if !gp {
			sameVec(t, got, want, "deconvolveU64 (corrupt, non-panicking)")
		}
	}
}

func TestUnrolledDeconvolveU128MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 1500; trial++ {
		// Entries < 2^60: products < 2^120 and ≤ 13-term sums < 2^124,
		// so the exact product provably fits 128 bits.
		q := randU128s(rng, 1+rng.Intn(13), 64)
		v := randU128s(rng, 1+rng.Intn(13), 64)
		for i := range q {
			q[i].Lo >>= 4
		}
		for i := range v {
			v[i].Lo >>= 4
		}
		allZero := true
		for i := range v {
			allZero = allZero && v[i].isZero()
		}
		if allZero {
			v[rng.Intn(len(v))] = Uint128{Lo: 1 + uint64(rng.Intn(100))}
		}
		p := convolveU128Scalar(q, v)
		if p.Rep() == RepBig {
			t.Fatalf("test setup overflowed u128")
		}
		pw := p.asU128()
		sameVec(t, deconvolveU128(pw, v), deconvolveU128Scalar(pw, v), "deconvolveU128")

		pw[rng.Intn(len(pw))] = Uint128{Hi: rng.Uint64(), Lo: rng.Uint64()}
		var got, want Vec
		gp := panics(func() { got = deconvolveU128(pw, v) })
		wp := panics(func() { want = deconvolveU128Scalar(pw, v) })
		if gp != wp {
			t.Fatalf("deconvolveU128 corrupt input: unrolled panic=%v, scalar panic=%v", gp, wp)
		}
		if !gp {
			sameVec(t, got, want, "deconvolveU128 (corrupt, non-panicking)")
		}
	}
}

// BenchmarkConvolve compares the unrolled production kernels against the
// scalar references on 94-length vectors — the university example's endo
// fact count, i.e. the vector length the engine actually convolves at.
func BenchmarkConvolve(b *testing.B) {
	rng := rand.New(rand.NewSource(95))
	const n = 94
	u := make([]uint64, n)
	for i := range u {
		u[i] = uint64(rng.Intn(1 << 25)) // never overflows: fast path end to end
	}
	w := make([]Uint128, n)
	for i := range w {
		w[i] = Uint128{Hi: rng.Uint64() >> 16, Lo: rng.Uint64()}
	}
	b.Run("u64-94/unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			convolveU64(u, u)
		}
	})
	b.Run("u64-94/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			convolveU64Scalar(u, u)
		}
	})
	b.Run("u64wide-94/unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			convolveU64Wide(u, u)
		}
	})
	b.Run("u64wide-94/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			convolveU64WideScalar(u, u)
		}
	})
	b.Run("u128-94/unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			convolveU128(w, w)
		}
	})
	b.Run("u128-94/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			convolveU128Scalar(w, w)
		}
	})
}

// BenchmarkDeconvolve divides a 94-length product by a 47-length factor —
// the shape of a spine rebuild peeling one bucket's vector out of the
// root product.
func BenchmarkDeconvolve(b *testing.B) {
	rng := rand.New(rand.NewSource(96))
	q := make([]uint64, 48)
	for i := range q {
		q[i] = uint64(rng.Intn(1 << 25))
	}
	v := make([]uint64, 47)
	for i := range v {
		v[i] = uint64(rng.Intn(1 << 25))
	}
	v[0] |= 1
	p := convolveU64Scalar(q, v)
	b.Run("u64-94/unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			deconvolveU64(p.u, v)
		}
	})
	b.Run("u64-94/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			deconvolveU64Scalar(p.u, v)
		}
	})
}
