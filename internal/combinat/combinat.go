// Package combinat provides exact combinatorial arithmetic over math/big
// integers and rationals: factorials, binomial coefficients, vector
// convolutions over subset-size-indexed counts, and the Shapley permutation
// weights k!(m-1-k)!/m!.
//
// All Shapley computations in this repository are exact; this package is the
// shared arithmetic substrate. Factorials and binomials are cached behind a
// mutex so concurrent benchmarks can share the tables.
package combinat

import (
	"math/big"
	"sync"
)

var (
	factMu    sync.Mutex
	factCache = []*big.Int{big.NewInt(1)} // factCache[i] = i!
)

// Factorial returns n! as a fresh big.Int. It panics if n < 0.
func Factorial(n int) *big.Int {
	factMu.Lock()
	defer factMu.Unlock()
	return new(big.Int).Set(factorialLocked(n))
}

// FactorialRow returns the shared table [0!, 1!, ..., n!]. The slice and
// its entries are strictly read-only: the Shapley weighting loops consume
// m of them per fact, and sharing the cache avoids m big copies per call.
func FactorialRow(n int) []*big.Int {
	factMu.Lock()
	defer factMu.Unlock()
	factorialLocked(n)
	return factCache[: n+1 : n+1]
}

func factorialLocked(n int) *big.Int {
	if n < 0 {
		panic("combinat: negative factorial")
	}
	for len(factCache) <= n {
		i := len(factCache)
		next := new(big.Int).Mul(factCache[i-1], big.NewInt(int64(i)))
		factCache = append(factCache, next)
	}
	return factCache[n]
}

// maxCachedBinomialRow bounds the Pascal-row cache: rows are retained
// only for n up to this limit (at most ~131k cached coefficients in
// total), so a long-running process serving workloads of many sizes
// cannot grow the cache without bound. Larger rows are built on demand
// and not retained.
const maxCachedBinomialRow = 512

var (
	binMu   sync.Mutex
	binRows = make(map[int][]*big.Int) // n -> Pascal row [C(n,0)..C(n,n)]
)

// binomialRow returns the Pascal row for n, cached for n up to
// maxCachedBinomialRow. Rows are built in O(n) big operations and
// shared; callers must copy entries before mutating. The cache matters
// because the DP engines complement count vectors against C(n, ·) on
// every node rebuild and every per-fact toggle — recomputing each
// coefficient from scratch dominated those paths.
func binomialRow(n int) []*big.Int {
	if n <= maxCachedBinomialRow {
		binMu.Lock()
		defer binMu.Unlock()
		if r, ok := binRows[n]; ok {
			return r
		}
		r := buildBinomialRow(n)
		binRows[n] = r
		return r
	}
	return buildBinomialRow(n)
}

func buildBinomialRow(n int) []*big.Int {
	r := make([]*big.Int, n+1)
	r[0] = big.NewInt(1)
	num := new(big.Int)
	for k := 1; k <= n; k++ {
		// C(n,k) = C(n,k-1) · (n-k+1) / k, an exact division.
		num.SetInt64(int64(n - k + 1))
		v := new(big.Int).Mul(r[k-1], num)
		num.SetInt64(int64(k))
		v.Quo(v, num)
		r[k] = v
	}
	return r
}

// BinomialRow returns the cached Pascal row [C(n,0)..C(n,n)] itself.
// The row is shared: callers must treat it as strictly read-only.
func BinomialRow(n int) []*big.Int {
	if n < 0 {
		panic("combinat: negative binomial row")
	}
	return binomialRow(n)
}

// Binomial returns C(n, k) as a fresh big.Int. Out-of-range k yields 0.
func Binomial(n, k int) *big.Int {
	if k < 0 || n < 0 || k > n {
		return new(big.Int)
	}
	if n > maxCachedBinomialRow {
		// A single coefficient of a row too large to cache: computing it
		// directly beats building the whole row.
		return new(big.Int).Binomial(int64(n), int64(k))
	}
	return new(big.Int).Set(binomialRow(n)[k])
}

// BinomialVector returns the vector [C(n,0), C(n,1), ..., C(n,n)].
func BinomialVector(n int) []*big.Int {
	row := binomialRow(n)
	out := ZeroVector(n)
	for k := 0; k <= n; k++ {
		out[k].Set(row[k])
	}
	return out
}

// ZeroVector returns a vector of n+1 zero big.Ints (indices 0..n). The
// entries share one backing array (a single allocation instead of n+1);
// each big.Int is still independently mutable.
func ZeroVector(n int) []*big.Int {
	backing := make([]big.Int, n+1)
	out := make([]*big.Int, n+1)
	for i := range out {
		out[i] = &backing[i]
	}
	return out
}

// Convolve returns the convolution c[k] = sum_j a[j]*b[k-j] of two
// subset-count vectors. If a counts j-subsets of a ground set A with some
// property and b counts j-subsets of a disjoint ground set B, the result
// counts k-subsets of A ∪ B whose A-part and B-part both have the property.
func Convolve(a, b []*big.Int) []*big.Int {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := ZeroVector(len(a) + len(b) - 2)
	tmp := new(big.Int)
	for i, ai := range a {
		if ai.Sign() == 0 {
			continue
		}
		for j, bj := range b {
			if bj.Sign() == 0 {
				continue
			}
			tmp.Mul(ai, bj)
			out[i+j].Add(out[i+j], tmp)
		}
	}
	return out
}

// ConvolveAll folds Convolve over a list of vectors. An empty list yields
// the identity vector [1] (the unique 0-subset of the empty set).
func ConvolveAll(vs [][]*big.Int) []*big.Int {
	acc := []*big.Int{big.NewInt(1)}
	for _, v := range vs {
		acc = Convolve(acc, v)
	}
	return acc
}

// ComplementVector returns [C(n,k) - v[k]] for k = 0..n; i.e. if v counts
// the k-subsets of an n-element set with some property, the result counts
// those without it. It panics if len(v) != n+1 or some entry exceeds C(n,k).
func ComplementVector(v []*big.Int, n int) []*big.Int {
	if len(v) != n+1 {
		panic("combinat: complement vector length mismatch")
	}
	row := binomialRow(n)
	out := ZeroVector(n)
	for k := 0; k <= n; k++ {
		out[k].Sub(row[k], v[k])
		if out[k].Sign() < 0 {
			panic("combinat: subset count exceeds binomial bound")
		}
	}
	return out
}

// ShapleyWeight returns k!(m-1-k)!/m!, the probability that, in a uniformly
// random permutation of m players, a fixed player is preceded by a fixed set
// of k players. It panics unless 0 <= k < m.
func ShapleyWeight(k, m int) *big.Rat {
	if k < 0 || m <= 0 || k >= m {
		panic("combinat: ShapleyWeight requires 0 <= k < m")
	}
	num := Factorial(k)
	num.Mul(num, Factorial(m-1-k))
	return new(big.Rat).SetFrac(num, Factorial(m))
}

// WeightedDifference returns sum_k ShapleyWeight(k, m) * (with[k] - without[k]).
// with and without must each have at least m entries (indices 0..m-1 are
// used); this is the Shapley value reconstruction from |Sat| count vectors.
func WeightedDifference(with, without []*big.Int, m int) *big.Rat {
	total := new(big.Rat)
	if m == 0 {
		return total
	}
	diff := new(big.Int)
	term := new(big.Rat)
	for k := 0; k < m; k++ {
		var w, wo *big.Int
		if k < len(with) {
			w = with[k]
		} else {
			w = new(big.Int)
		}
		if k < len(without) {
			wo = without[k]
		} else {
			wo = new(big.Int)
		}
		diff.Sub(w, wo)
		if diff.Sign() == 0 {
			continue
		}
		term.SetInt(diff)
		term.Mul(term, ShapleyWeight(k, m))
		total.Add(total, term)
	}
	return total
}

// SumVector returns the sum of all entries of v.
func SumVector(v []*big.Int) *big.Int {
	out := new(big.Int)
	for _, x := range v {
		out.Add(out, x)
	}
	return out
}

// IsZeroVector reports whether every entry of v is zero (the zero
// polynomial; the Sat vector of an unsatisfiable sub-instance or the
// NonSat vector of an always-satisfied one).
func IsZeroVector(v []*big.Int) bool {
	for _, x := range v {
		if x.Sign() != 0 {
			return false
		}
	}
	return true
}

// Deconvolve is the exact inverse of Convolve in its first argument: given
// p = Convolve(q, v) for some subset-count vector q and a not-identically-
// zero v, it recovers q. It is how the batched engines divide one bucket's
// factor out of a leave-one-out product in O(len(p)·len(v)) instead of
// re-convolving all other factors: synthetic division anchored at v's
// lowest non-zero coefficient. The division must be exact (p really has v
// as a convolution factor); a non-exact input panics, since it can only
// arise from an internal invariant violation, never from user data.
func Deconvolve(p, v []*big.Int) []*big.Int {
	lead := -1
	for i, x := range v {
		if x.Sign() != 0 {
			lead = i
			break
		}
	}
	if lead < 0 {
		panic("combinat: Deconvolve by the zero vector")
	}
	n := len(p) - len(v) + 1
	if n < 1 {
		panic("combinat: Deconvolve length mismatch")
	}
	backing := make([]big.Int, n)
	out := make([]*big.Int, n)
	tmp := new(big.Int)
	rem := new(big.Int)
	for k := 0; k < n; k++ {
		// p[lead+k] = Σ_j out[j]·v[lead+k-j]; solve for out[k].
		acc := backing[k].Set(p[lead+k])
		lo := 0
		if k+lead >= len(v) {
			lo = k + lead - len(v) + 1
		}
		for j := lo; j < k; j++ {
			acc.Sub(acc, tmp.Mul(out[j], v[lead+k-j]))
		}
		out[k], rem = acc.QuoRem(acc, v[lead], rem)
		if rem.Sign() != 0 {
			panic("combinat: Deconvolve of a non-multiple")
		}
	}
	return out
}
