package combinat

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorialSmall(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got.Int64() != w {
			t.Errorf("Factorial(%d) = %s, want %d", n, got, w)
		}
	}
}

func TestFactorialDoesNotAliasCache(t *testing.T) {
	a := Factorial(5)
	a.SetInt64(-1)
	if got := Factorial(5); got.Int64() != 120 {
		t.Fatalf("cache corrupted: Factorial(5) = %s after mutation", got)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 3, 10},
		{5, 6, 0}, {5, -1, 0}, {-1, 0, 0}, {10, 4, 210},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Int64() != c.want {
			t.Errorf("Binomial(%d,%d) = %s, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k), checked via testing/quick.
	f := func(n8, k8 uint8) bool {
		n := int(n8%40) + 1
		k := int(k8) % (n + 1)
		lhs := Binomial(n, k)
		rhs := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialVectorSumsToPowerOfTwo(t *testing.T) {
	for n := 0; n <= 12; n++ {
		v := BinomialVector(n)
		sum := SumVector(v)
		want := new(big.Int).Lsh(big.NewInt(1), uint(n))
		if sum.Cmp(want) != 0 {
			t.Errorf("sum of BinomialVector(%d) = %s, want %s", n, sum, want)
		}
	}
}

func intVec(xs ...int64) []*big.Int {
	out := make([]*big.Int, len(xs))
	for i, x := range xs {
		out[i] = big.NewInt(x)
	}
	return out
}

func TestConvolveBasic(t *testing.T) {
	// (1 + x)^2 * (1 + x) = 1 + 3x + 3x^2 + x^3
	got := Convolve(intVec(1, 2, 1), intVec(1, 1))
	want := intVec(1, 3, 3, 1)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Errorf("coefficient %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestConvolveBinomialIdentity(t *testing.T) {
	// Vandermonde: conv(C(a,·), C(b,·)) = C(a+b,·).
	f := func(a8, b8 uint8) bool {
		a, b := int(a8%15), int(b8%15)
		got := Convolve(BinomialVector(a), BinomialVector(b))
		want := BinomialVector(a + b)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Cmp(want[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvolveAllIdentity(t *testing.T) {
	got := ConvolveAll(nil)
	if len(got) != 1 || got[0].Int64() != 1 {
		t.Fatalf("ConvolveAll(nil) = %v, want [1]", got)
	}
}

func TestComplementVector(t *testing.T) {
	v := intVec(1, 2, 0)
	got := ComplementVector(v, 2)
	want := intVec(0, 0, 1)
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Errorf("complement[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestComplementVectorPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for count exceeding binomial")
		}
	}()
	ComplementVector(intVec(2, 0), 1)
}

func TestShapleyWeightsSumToOne(t *testing.T) {
	// sum_k C(m-1,k) * k!(m-1-k)!/m! = 1: each subset size weighted by the
	// number of subsets of that size partitions all permutations.
	for m := 1; m <= 10; m++ {
		total := new(big.Rat)
		for k := 0; k < m; k++ {
			w := ShapleyWeight(k, m)
			w.Mul(w, new(big.Rat).SetInt(Binomial(m-1, k)))
			total.Add(total, w)
		}
		if total.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("m=%d: weights sum to %s, want 1", m, total)
		}
	}
}

func TestShapleyWeightExample(t *testing.T) {
	// 1!*6!/8! from Example 2.3's calculation.
	got := ShapleyWeight(1, 8)
	want := big.NewRat(720, 40320)
	if got.Cmp(want) != 0 {
		t.Fatalf("ShapleyWeight(1,8) = %s, want %s", got, want)
	}
}

func TestShapleyWeightPanics(t *testing.T) {
	for _, c := range []struct{ k, m int }{{-1, 3}, {3, 3}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShapleyWeight(%d,%d) should panic", c.k, c.m)
				}
			}()
			ShapleyWeight(c.k, c.m)
		}()
	}
}

func TestWeightedDifference(t *testing.T) {
	// m=2, with=[1,?], without=[0,?]: value = 0!*1!/2! * 1 = 1/2.
	got := WeightedDifference(intVec(1, 0), intVec(0, 0), 2)
	if got.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("got %s, want 1/2", got)
	}
	// Short vectors are treated as zero-padded.
	got = WeightedDifference(intVec(1), intVec(0), 3)
	if got.Cmp(big.NewRat(1, 3)) != 0 {
		t.Fatalf("got %s, want 1/3", got)
	}
	if w := WeightedDifference(nil, nil, 0); w.Sign() != 0 {
		t.Fatalf("m=0 should give 0, got %s", w)
	}
}

func TestZeroVector(t *testing.T) {
	v := ZeroVector(3)
	if len(v) != 4 {
		t.Fatalf("length %d, want 4", len(v))
	}
	for i, x := range v {
		if x.Sign() != 0 {
			t.Errorf("entry %d = %s, want 0", i, x)
		}
	}
}

func BenchmarkFactorial100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Factorial(100)
	}
}

func BenchmarkConvolve64(b *testing.B) {
	v := BinomialVector(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Convolve(v, v)
	}
}

// TestDeconvolveRoundTrip: Deconvolve(Convolve(a, b), b) must recover a
// exactly, including factors with leading zeros and interior zeros.
func TestDeconvolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := make([]*big.Int, 1+rng.Intn(6))
		b := make([]*big.Int, 1+rng.Intn(6))
		nz := false
		for i := range a {
			a[i] = big.NewInt(int64(rng.Intn(5)))
		}
		for i := range b {
			b[i] = big.NewInt(int64(rng.Intn(5)))
			nz = nz || b[i].Sign() != 0
		}
		if !nz {
			b[rng.Intn(len(b))] = big.NewInt(1 + int64(rng.Intn(4)))
		}
		p := Convolve(a, b)
		got := Deconvolve(p, b)
		if len(got) != len(a) {
			t.Fatalf("len %d, want %d (a=%v b=%v)", len(got), len(a), a, b)
		}
		for i := range a {
			if got[i].Cmp(a[i]) != 0 {
				t.Fatalf("entry %d = %v, want %v (a=%v b=%v)", i, got[i], a[i], a, b)
			}
		}
	}
}

// TestDeconvolvePanics: the zero divisor and non-multiples are internal
// invariant violations and must panic loudly.
func TestDeconvolvePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	expectPanic("zero divisor", func() {
		Deconvolve([]*big.Int{big.NewInt(1)}, []*big.Int{big.NewInt(0)})
	})
	expectPanic("non-multiple", func() {
		Deconvolve([]*big.Int{big.NewInt(1), big.NewInt(1)}, []*big.Int{big.NewInt(2), big.NewInt(1)})
	})
}
