// Package servercache provides the thread-safe LRU cache behind the
// serving layer's cross-query plan cache: entries are keyed by strings
// combining a database fingerprint with a canonicalized query, and hold
// prepared computation state (validated classification plus the shared
// CntSat dynamic-programming tables) so repeated queries over a registered
// database skip the fact-independent setup entirely.
package servercache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a fixed-capacity least-recently-used cache with hit/miss
// accounting. All methods are safe for concurrent use. The zero value is
// not usable; call New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      atomic.Int64
	partials  atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type entry[V any] struct {
	key string
	val V
}

// New returns an empty cache holding at most capacity entries; a
// non-positive capacity is treated as 1 (a cache that can never hold an
// entry would turn every warm request cold, which is never what a serving
// layer wants).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the value cached under key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry[V]).val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Lookup classifies the outcome of a revalidating cache read.
type Lookup int

const (
	// LookupMiss reports that no entry exists under the key at all — a
	// truly cold path that must build its state from nothing.
	LookupMiss Lookup = iota
	// LookupPartial reports an entry that exists but failed revalidation.
	// The stale value is returned so the caller can reuse whatever of its
	// state still applies (the serving layer seeds the replacement plan's
	// DP-tree from it, reusing every content-unchanged node); the entry is
	// neither promoted in the LRU order nor removed — maintenance or a Put
	// will replace it.
	LookupPartial
	// LookupHit reports a valid entry, promoted to most recently used.
	LookupHit
)

// GetRevalidated is the revalidating read (superseding the old boolean
// GetIf): valid decides whether the cached entry may be served as-is.
// The three outcomes are counted separately (Hits, Partials, Misses), so
// hits+partials+misses always equals the number of lookups and a
// revalidation failure that still reuses state — the node-sharing path
// seeds the replacement plan from the stale entry — is distinguishable
// from a cold miss. An entry that fails valid is not promoted and is
// left in place for maintenance paths to repair or a Put to replace.
func (c *Cache[V]) GetRevalidated(key string, valid func(V) bool) (V, Lookup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		v := el.Value.(*entry[V]).val
		if valid(v) {
			c.ll.MoveToFront(el)
			c.hits.Add(1)
			return v, LookupHit
		}
		c.partials.Add(1)
		return v, LookupPartial
	}
	c.misses.Add(1)
	var zero V
	return zero, LookupMiss
}

// Put inserts or replaces the value under key, evicting the least recently
// used entry when the cache is full.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	for c.ll.Len() > c.capacity {
		c.evictOldest()
	}
}

// evictOldest removes the back of the list; callers hold c.mu.
func (c *Cache[V]) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	delete(c.items, el.Value.(*entry[V]).key)
	c.evictions.Add(1)
}

// Peek returns the value cached under key without touching the LRU order
// or the hit/miss counters. Maintenance paths (patching every plan of a
// database in place) use it so bookkeeping traffic does not distort the
// recency ordering or the cache metrics.
func (c *Cache[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Remove drops the entry under key, reporting whether it was present.
func (c *Cache[V]) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
	return ok
}

// RemoveIf drops every entry whose key satisfies pred, returning the
// number removed. Used to drop a database's plans when it is deregistered.
func (c *Cache[V]) RemoveIf(pred func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if k := el.Value.(*entry[V]).key; pred(k) {
			c.ll.Remove(el)
			delete(c.items, k)
			n++
		}
		el = next
	}
	return n
}

// Purge empties the cache (counters are kept).
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the cached keys, most recently used first.
func (c *Cache[V]) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[V]).key)
	}
	return out
}

// Hits returns the number of Get calls that found their key.
func (c *Cache[V]) Hits() int64 { return c.hits.Load() }

// Partials returns the number of revalidating reads that found an entry
// which failed validation (its state may still have been partially
// reused).
func (c *Cache[V]) Partials() int64 { return c.partials.Load() }

// Misses returns the number of Get calls that missed.
func (c *Cache[V]) Misses() int64 { return c.misses.Load() }

// Evictions returns the number of entries displaced by capacity pressure
// (Remove/RemoveIf/Purge do not count).
func (c *Cache[V]) Evictions() int64 { return c.evictions.Load() }
