package servercache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestServerCacheLRUEviction(t *testing.T) {
	c := New[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Touch "a" so "b" is the least recently used.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %t", v, ok)
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as the LRU entry")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived eviction", k)
		}
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
	if got := c.Keys(); len(got) != 3 {
		t.Fatalf("Keys = %v, want 3 entries", got)
	}
}

func TestServerCacheCounters(t *testing.T) {
	c := New[string](2)
	c.Put("x", "1")
	c.Get("x")
	c.Get("x")
	c.Get("missing")
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", c.Hits(), c.Misses())
	}
}

func TestServerCachePutReplaces(t *testing.T) {
	c := New[int](2)
	c.Put("k", 1)
	c.Put("k", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replacement", c.Len())
	}
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("Get(k) = %d, want the replaced value 2", v)
	}
}

func TestServerCacheRemove(t *testing.T) {
	c := New[int](8)
	for i := 0; i < 6; i++ {
		prefix := "odd"
		if i%2 == 0 {
			prefix = "even"
		}
		c.Put(fmt.Sprintf("%s-%d", prefix, i), i)
	}
	if !c.Remove("odd-1") {
		t.Fatal("Remove(odd-1) should report presence")
	}
	if c.Remove("odd-1") {
		t.Fatal("double Remove should report absence")
	}
	if n := c.RemoveIf(func(k string) bool { return strings.HasPrefix(k, "even-") }); n != 3 {
		t.Fatalf("RemoveIf removed %d, want 3", n)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Purge, want 0", c.Len())
	}
}

func TestServerCacheMinimumCapacity(t *testing.T) {
	c := New[int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a capacity-0 cache must clamp to 1 and keep the entry")
	}
}

// TestServerCacheConcurrentAccess drives the cache from many goroutines; run with
// -race this is the memory-safety check behind the server's shared plan
// cache.
func TestServerCacheConcurrentAccess(t *testing.T) {
	c := New[int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%24)
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
				if i%50 == 0 {
					c.Keys()
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}

func TestGetRevalidated(t *testing.T) {
	c := New[int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, st := c.GetRevalidated("a", func(v int) bool { return v == 1 }); st != LookupHit || v != 1 {
		t.Fatalf("valid read = %d, %v; want 1, LookupHit", v, st)
	}
	// "b" is now the LRU tail; an invalid read must not promote it, and
	// must surface the stale value for node-sharing callers to seed from.
	if v, st := c.GetRevalidated("b", func(int) bool { return false }); st != LookupPartial || v != 2 {
		t.Fatalf("stale read = %d, %v; want 2, LookupPartial", v, st)
	}
	if _, st := c.GetRevalidated("absent", func(int) bool { return true }); st != LookupMiss {
		t.Fatalf("absent read = %v, want LookupMiss", st)
	}
	// One hit, one partial hit (present but invalid — its state is still
	// reusable by node-sharing callers), one cold miss (absent).
	if h, p, m := c.Hits(), c.Partials(), c.Misses(); h != 1 || p != 1 || m != 1 {
		t.Fatalf("hits=%d partials=%d misses=%d, want 1/1/1", h, p, m)
	}
	// The invalid entry is left in place (maintenance may repair it) but
	// stays least recently used: filling past capacity evicts it first.
	if _, ok := c.Peek("b"); !ok {
		t.Fatal("invalid entry must remain for maintenance paths")
	}
	c.Put("c", 3)
	c.Put("d", 4)
	c.Put("e", 5) // capacity 4: evicts the least recently used
	if _, ok := c.Peek("b"); ok {
		t.Fatal("invalid read must not refresh LRU recency")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("validly read entry should have been promoted past eviction")
	}
}
