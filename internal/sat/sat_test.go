package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvalBasics(t *testing.T) {
	// (x1 | !x2) & (x2 | x3)
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{Pos(1), Neg(2)},
		{Pos(2), Pos(3)},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{false, true, false, false}, false}, // x1 only: second clause fails
		{[]bool{false, true, true, false}, true},   // x1, x2
		{[]bool{false, false, false, true}, true},  // x3 only
		{[]bool{false, false, true, false}, false}, // x2 only: first clause fails
	}
	for _, c := range cases {
		if got := f.Eval(c.a); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Formula{
		{NumVars: 1, Clauses: []Clause{{}}},
		{NumVars: 1, Clauses: []Clause{{Pos(2)}}},
		{NumVars: 1, Clauses: []Clause{{Pos(0)}}},
		{NumVars: -1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("formula %d should fail validation", i)
		}
	}
}

func TestSolveSatisfiable(t *testing.T) {
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{Pos(1), Pos(2)},
		{Neg(1), Pos(3)},
		{Neg(2), Neg(3)},
	}}
	a := f.Solve()
	if a == nil {
		t.Fatal("formula is satisfiable")
	}
	if !f.Eval(a) {
		t.Fatalf("returned assignment %v does not satisfy the formula", a)
	}
}

func TestSolveUnsatisfiable(t *testing.T) {
	// x1 & !x1
	f := &Formula{NumVars: 1, Clauses: []Clause{{Pos(1)}, {Neg(1)}}}
	if f.Solve() != nil {
		t.Fatal("x ∧ ¬x is unsatisfiable")
	}
	// Pigeonhole-ish: x1|x2, !x1|x2, x1|!x2, !x1|!x2.
	f = &Formula{NumVars: 2, Clauses: []Clause{
		{Pos(1), Pos(2)}, {Neg(1), Pos(2)}, {Pos(1), Neg(2)}, {Neg(1), Neg(2)},
	}}
	if f.Satisfiable() {
		t.Fatal("all four 2-clauses over two variables are unsatisfiable")
	}
}

func TestSolveAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		f := Random3CNF(rng, 3+rng.Intn(6), 2+rng.Intn(12))
		fast := f.Solve()
		slow := f.SolveBrute()
		if (fast == nil) != (slow == nil) {
			t.Fatalf("DPLL sat=%v brute sat=%v for %s", fast != nil, slow != nil, f)
		}
		if fast != nil && !f.Eval(fast) {
			t.Fatalf("DPLL returned non-model %v for %s", fast, f)
		}
	}
}

func TestSolveTwoTwoFourRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		f := RandomTwoTwoFour(rng, 3+rng.Intn(5), 2+rng.Intn(10))
		if !f.IsTwoTwoFour() {
			t.Fatalf("generator produced non-(2+,2−,4+−) formula %s", f)
		}
		if !f.HasPositiveTwoClause() {
			t.Fatalf("generator must include a positive 2-clause: %s", f)
		}
		fast := f.Solve()
		slow := f.SolveBrute()
		if (fast == nil) != (slow == nil) {
			t.Fatalf("DPLL sat=%v brute sat=%v for %s", fast != nil, slow != nil, f)
		}
	}
}

func TestFormRecognizers(t *testing.T) {
	three := &Formula{NumVars: 3, Clauses: []Clause{{Pos(1), Pos(2), Pos(3)}}}
	if !three.Is3CNF() || !three.IsThreePosTwoNeg() {
		t.Fatal("all-positive 3-clause misclassified")
	}
	mixed := &Formula{NumVars: 3, Clauses: []Clause{{Pos(1), Neg(2), Pos(3)}}}
	if !mixed.Is3CNF() || mixed.IsThreePosTwoNeg() {
		t.Fatal("mixed 3-clause misclassified")
	}
	ttf := &Formula{NumVars: 4, Clauses: []Clause{
		{Pos(1), Pos(2)},
		{Neg(1), Neg(3)},
		{Pos(3), Pos(4), Neg(1), Neg(2)},
	}}
	if !ttf.IsTwoTwoFour() {
		t.Fatal("(2+,2−,4+−) formula misclassified")
	}
	notTTF := &Formula{NumVars: 2, Clauses: []Clause{{Pos(1), Neg(2)}}}
	if notTTF.IsTwoTwoFour() {
		t.Fatal("mixed 2-clause accepted as (2+,2−,4+−)")
	}
	if !ttf.HasPositiveTwoClause() {
		t.Fatal("positive 2-clause not found")
	}
	onlyNeg := &Formula{NumVars: 2, Clauses: []Clause{{Neg(1), Neg(2)}}}
	if onlyNeg.HasPositiveTwoClause() {
		t.Fatal("phantom positive 2-clause")
	}
}

func TestVars(t *testing.T) {
	f := &Formula{NumVars: 9, Clauses: []Clause{{Pos(7), Neg(2)}, {Pos(2), Pos(5)}}}
	vs := f.Vars()
	want := []int{2, 5, 7}
	if len(vs) != len(want) {
		t.Fatalf("Vars = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vs, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{{Pos(1), Neg(2)}}}
	if f.String() != "(x1 | !x2)" {
		t.Fatalf("String = %q", f.String())
	}
}

// Property: the all-false assignment satisfies any (2+,2−,4+−) formula with
// no positive 2-clause (the observation behind the Prop 5.5 assumption).
func TestAllFalseSatisfiesWithoutPositiveTwoClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed + rng.Int63()))
		formula := RandomTwoTwoFour(r, 4, 8)
		// Strip positive 2-clauses.
		var kept []Clause
		for _, c := range formula.Clauses {
			if len(c) == 2 && !c[0].Neg && !c[1].Neg {
				continue
			}
			kept = append(kept, c)
		}
		formula.Clauses = kept
		if len(kept) == 0 {
			return true
		}
		assignment := make([]bool, formula.NumVars+1)
		return formula.Eval(assignment)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
