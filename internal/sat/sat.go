// Package sat provides the propositional-logic substrate used by the
// paper's hardness reductions (§5.2, Appendix D): CNF formulas, a DPLL
// solver with unit propagation, a brute-force solver for cross-validation,
// recognizers for the special clause forms the paper reduces between
// ((3+,2−)-CNF and (2+,2−,4+−)-CNF), and random formula generators.
package sat

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Literal is a possibly negated propositional variable. Variables are
// numbered 1..NumVars.
type Literal struct {
	Var int
	Neg bool
}

// Pos returns a positive literal.
func Pos(v int) Literal { return Literal{Var: v} }

// Neg returns a negative literal.
func Neg(v int) Literal { return Literal{Var: v, Neg: true} }

// String renders the literal as x3 or ¬x3.
func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("!x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Clause is a disjunction of literals.
type Clause []Literal

// String renders (l1 | l2 | ...).
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// Formula is a CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks variable indices.
func (f *Formula) Validate() error {
	if f.NumVars < 0 {
		return fmt.Errorf("sat: negative variable count")
	}
	for _, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("sat: empty clause")
		}
		for _, l := range c {
			if l.Var < 1 || l.Var > f.NumVars {
				return fmt.Errorf("sat: literal %s out of range 1..%d", l, f.NumVars)
			}
		}
	}
	return nil
}

// String renders the conjunction.
func (f *Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " & ")
}

// Eval evaluates the formula under assignment (indexed 1..NumVars;
// assignment[0] is ignored).
func (f *Formula) Eval(assignment []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assignment[l.Var] != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// SolveBrute finds a satisfying assignment by exhaustive search (for
// cross-validating Solve); nil if unsatisfiable.
func (f *Formula) SolveBrute() []bool {
	if f.NumVars > 24 {
		panic("sat: SolveBrute limited to 24 variables")
	}
	assignment := make([]bool, f.NumVars+1)
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		for v := 1; v <= f.NumVars; v++ {
			assignment[v] = mask&(1<<uint(v-1)) != 0
		}
		if f.Eval(assignment) {
			out := make([]bool, f.NumVars+1)
			copy(out, assignment)
			return out
		}
	}
	return nil
}

// value is the tri-state of a variable during DPLL.
type value int8

const (
	unset value = iota
	vTrue
	vFalse
)

// Solve runs DPLL with unit propagation and pure-literal-free branching.
// It returns a satisfying assignment (indexed 1..NumVars) or nil.
func (f *Formula) Solve() []bool {
	vals := make([]value, f.NumVars+1)
	if !dpll(f, vals) {
		return nil
	}
	out := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = vals[v] == vTrue
	}
	return out
}

// Satisfiable reports whether the formula has a model.
func (f *Formula) Satisfiable() bool { return f.Solve() != nil }

func dpll(f *Formula, vals []value) bool {
	// Unit propagation to a fixed point.
	var trail []int
	assign := func(v int, b bool) {
		if b {
			vals[v] = vTrue
		} else {
			vals[v] = vFalse
		}
		trail = append(trail, v)
	}
	undo := func() {
		for _, v := range trail {
			vals[v] = unset
		}
	}
	for {
		progress := false
		for _, c := range f.Clauses {
			satisfied := false
			var unit *Literal
			unassigned := 0
			for i := range c {
				l := c[i]
				switch vals[l.Var] {
				case unset:
					unassigned++
					unit = &c[i]
				case vTrue:
					if !l.Neg {
						satisfied = true
					}
				case vFalse:
					if l.Neg {
						satisfied = true
					}
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				undo()
				return false // conflict
			}
			if unassigned == 1 {
				assign(unit.Var, !unit.Neg)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Pick a branching variable.
	branch := 0
	for v := 1; v <= f.NumVars; v++ {
		if vals[v] == unset {
			branch = v
			break
		}
	}
	if branch == 0 {
		// All assigned; clauses checked during propagation, but a clause
		// might have been fully assigned satisfied — re-verify cheaply.
		assignment := make([]bool, f.NumVars+1)
		for v := 1; v <= f.NumVars; v++ {
			assignment[v] = vals[v] == vTrue
		}
		if f.Eval(assignment) {
			return true
		}
		undo()
		return false
	}
	for _, b := range []bool{true, false} {
		if b {
			vals[branch] = vTrue
		} else {
			vals[branch] = vFalse
		}
		if dpll(f, vals) {
			return true
		}
		vals[branch] = unset
	}
	undo()
	return false
}

// Is3CNF reports whether every clause has exactly three literals.
func (f *Formula) Is3CNF() bool {
	for _, c := range f.Clauses {
		if len(c) != 3 {
			return false
		}
	}
	return true
}

// IsThreePosTwoNeg reports whether the formula is a (3+,2−)-CNF: every
// clause is either three positive literals or two negative literals.
func (f *Formula) IsThreePosTwoNeg() bool {
	for _, c := range f.Clauses {
		switch {
		case len(c) == 3 && !c[0].Neg && !c[1].Neg && !c[2].Neg:
		case len(c) == 2 && c[0].Neg && c[1].Neg:
		default:
			return false
		}
	}
	return true
}

// IsTwoTwoFour reports whether the formula is a (2+,2−,4+−)-CNF: every
// clause is (x∨y), (¬x∨¬y), or (x∨y∨¬z∨¬w). Repeated literals are allowed
// (the Lemma D.1 reduction emits (xi∨xj∨¬y∨¬y)).
func (f *Formula) IsTwoTwoFour() bool {
	for _, c := range f.Clauses {
		switch {
		case len(c) == 2 && !c[0].Neg && !c[1].Neg:
		case len(c) == 2 && c[0].Neg && c[1].Neg:
		case len(c) == 4 && !c[0].Neg && !c[1].Neg && c[2].Neg && c[3].Neg:
		default:
			return false
		}
	}
	return true
}

// HasPositiveTwoClause reports whether some clause is of the form (x∨y);
// Proposition 5.5's reduction assumes one exists (otherwise the all-false
// assignment satisfies every (2+,2−,4+−)-CNF).
func (f *Formula) HasPositiveTwoClause() bool {
	for _, c := range f.Clauses {
		if len(c) == 2 && !c[0].Neg && !c[1].Neg {
			return true
		}
	}
	return false
}

// Vars returns the sorted distinct variables mentioned by the formula.
func (f *Formula) Vars() []int {
	seen := make(map[int]bool)
	for _, c := range f.Clauses {
		for _, l := range c {
			seen[l.Var] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Random3CNF generates a random 3CNF formula with the given shape.
func Random3CNF(rng *rand.Rand, numVars, numClauses int) *Formula {
	f := &Formula{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		c := make(Clause, 3)
		for j := range c {
			c[j] = Literal{Var: rng.Intn(numVars) + 1, Neg: rng.Intn(2) == 0}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// RandomTwoTwoFour generates a random (2+,2−,4+−)-CNF formula containing at
// least one positive 2-clause.
func RandomTwoTwoFour(rng *rand.Rand, numVars, numClauses int) *Formula {
	f := &Formula{NumVars: numVars}
	v := func() int { return rng.Intn(numVars) + 1 }
	f.Clauses = append(f.Clauses, Clause{Pos(v()), Pos(v())})
	for len(f.Clauses) < numClauses {
		switch rng.Intn(3) {
		case 0:
			f.Clauses = append(f.Clauses, Clause{Pos(v()), Pos(v())})
		case 1:
			f.Clauses = append(f.Clauses, Clause{Neg(v()), Neg(v())})
		default:
			f.Clauses = append(f.Clauses, Clause{Pos(v()), Pos(v()), Neg(v()), Neg(v())})
		}
	}
	return f
}
