package core

import (
	"math/big"
	"testing"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// Appendix A works out Example 2.3 by enumerating, for each fact, the
// subsets that may precede it in a permutation where it flips the answer.
// This test reproduces those families exactly (including the f1r slip the
// appendix makes: the correct family has six subsets, not five — see
// EXPERIMENTS.md).
func TestCriticalSubsetsMatchAppendixA(t *testing.T) {
	d := runningExample()
	// fact -> (#false→true witnesses, #true→false witnesses)
	expected := map[string][2]int{
		"TA(Adam)":         {0, 18}, // 2·1!6! + 5·2!5! + 6·3!4! + 4·4!3! + 5!2!
		"TA(Ben)":          {0, 10}, // 1!6! + 2·2!5! + 3·(3!4! + 4!3!) + 5!2!
		"TA(David)":        {0, 0},
		"Reg(Adam,OS)":     {6, 0}, // corrected Appendix A family
		"Reg(Adam,AI)":     {6, 0},
		"Reg(Ben,OS)":      {10, 0}, // the appendix's "ten possible subsets"
		"Reg(Caroline,DB)": {30, 0}, // the appendix's "thirty possible subsets"
		"Reg(Caroline,IC)": {30, 0},
	}
	m := d.NumEndo()
	for key, want := range expected {
		f, _ := db.ParseFact(key)
		pos, neg, err := CriticalSubsets(d, q1, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(pos) != want[0] || len(neg) != want[1] {
			t.Errorf("%s: %d positive / %d negative witnesses, want %d / %d",
				key, len(pos), len(neg), want[0], want[1])
		}
		// Reconstruct the Shapley value from the witnesses, as the appendix
		// does by hand.
		total := new(big.Rat)
		for _, e := range pos {
			total.Add(total, combinat.ShapleyWeight(len(e), m))
		}
		for _, e := range neg {
			total.Sub(total, combinat.ShapleyWeight(len(e), m))
		}
		exact, err := ShapleyHierarchical(d, q1, f)
		if err != nil {
			t.Fatal(err)
		}
		if total.Cmp(exact) != 0 {
			t.Errorf("%s: witness reconstruction %s != exact %s", key, total.RatString(), exact.RatString())
		}
	}
}

func TestCriticalSubsetsSpecificFamily(t *testing.T) {
	// The appendix's family for f2t = TA(Ben): the base subsets are
	// {f3r}, {f3r,f1t}, {f3r,f1r,f1t}, {f3r,f2r,f1t}, {f3r,f2r,f1r,f1t},
	// each optionally extended with f3t.
	d := runningExample()
	_, neg, err := CriticalSubsets(d, q1, db.F("TA", "Ben"))
	if err != nil {
		t.Fatal(err)
	}
	// Every negative witness must contain Reg(Ben,OS) and not contain
	// either of Caroline's registrations.
	for _, e := range neg {
		hasBenReg := false
		for _, f := range e {
			if f.Key() == "Reg(Ben,OS)" {
				hasBenReg = true
			}
			if f.Key() == "Reg(Caroline,DB)" || f.Key() == "Reg(Caroline,IC)" {
				t.Fatalf("witness %v contains a Caroline registration (query would stay true)", e)
			}
		}
		if !hasBenReg {
			t.Fatalf("witness %v lacks Reg(Ben,OS); TA(Ben) could not flip the answer", e)
		}
	}
}

func TestCriticalSubsetsBothDirections(t *testing.T) {
	// Example 5.3: R(1,2) has one positive witness (∅) and one negative
	// ({R(2,1)}), so the value cancels to zero.
	d := db.New()
	d.MustAddEndo(db.F("R", "1", "2"))
	d.MustAddEndo(db.F("R", "2", "1"))
	q := query.MustParse("q() :- R(x, y), !R(y, x)")
	pos, neg, err := CriticalSubsets(d, q, db.F("R", "1", "2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 1 || len(neg) != 1 {
		t.Fatalf("got %d positive, %d negative witnesses, want 1 and 1", len(pos), len(neg))
	}
	if len(pos[0]) != 0 {
		t.Fatalf("positive witness should be the empty set, got %v", pos[0])
	}
	if len(neg[0]) != 1 || neg[0][0].Key() != "R(2,1)" {
		t.Fatalf("negative witness should be {R(2,1)}, got %v", neg[0])
	}
}

func TestCriticalSubsetsErrors(t *testing.T) {
	d := runningExample()
	if _, _, err := CriticalSubsets(d, q1, db.F("Stud", "Adam")); err == nil {
		t.Fatal("exogenous fact accepted")
	}
}
