package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/db"
	"repro/internal/query"
)

// ExoShapStage records one step of the ExoShap transformation for
// inspection (Figure 3 of the paper shows these stages).
type ExoShapStage struct {
	Description string
	Query       *query.CQ
}

// ExoShapTransform implements the preprocessing pipeline of Algorithm 1
// (ExoShap): given a self-join-free CQ¬ q without a non-hierarchical path
// with respect to the exogenous relations exo, it produces an equivalent
// instance (D', q') where q' is hierarchical, so that
// Shapley(D, q, f) = Shapley(D', q', f) for every endogenous fact f.
//
// The three steps (Lemmas C.3, 4.6, 4.8):
//  1. negated exogenous atoms are replaced by positive atoms over the
//     complement relation (with respect to Dom(D));
//  2. each connected component of the exogenous atom graph g_x(q) is joined
//     into a single exogenous atom over the union of its variables;
//  3. exogenous variables are projected away and each exogenous atom is
//     padded (by Cartesian product with Dom(D)) to the exact variable set of
//     a covering non-exogenous atom, which exists by Lemma 4.4.
//
// The endogenous facts of D are carried over untouched.
//
// This public entry point materializes the transform densely: (D', q') is a
// self-contained instance any algorithm — including the brute-force
// reference — can evaluate directly, which is what the API, experiment and
// differential-test callers rely on. The prepare path uses exoShapIndexed
// (exoshap_indexed.go) instead, which represents complements implicitly and
// defers Step-3 padding to the DP-tree builder; exoShapDense below is kept
// verbatim as its differential reference.
func ExoShapTransform(d *db.Database, q *query.CQ, exo map[string]bool) (*db.Database, *query.CQ, []ExoShapStage, error) {
	return exoShapDense(d, q, exo)
}

// exoShapDense is the dense materialization of Algorithm 1 (see
// ExoShapTransform for the contract).
func exoShapDense(d *db.Database, q *query.CQ, exo map[string]bool) (*db.Database, *query.CQ, []ExoShapStage, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if q.HasSelfJoin() {
		return nil, nil, nil, ErrNotSelfJoinFree
	}
	if q.HasNonHierarchicalPath(exo) {
		return nil, nil, nil, ErrIntractable
	}
	for rel := range exo {
		if d.RelationEndogenous(rel) {
			return nil, nil, nil, fmt.Errorf("%w: %s", ErrExoViolated, rel)
		}
	}

	// The working domain is fixed once: the active domain of D extended with
	// the constants of q. (Extending matters for queries like q2's
	// ¬Course(y, CS) when CS does not occur in the data: the complement
	// relation must contain tuples ending in CS for the pattern to match.
	// Spurious constants cannot create new satisfying homomorphisms, because
	// every variable retains a positive occurrence over real data or a
	// non-exogenous atom.)
	dom := d.Domain()
	seen := make(map[db.Const]bool, len(dom))
	for _, c := range dom {
		seen[c] = true
	}
	for _, a := range q.Atoms {
		for _, tm := range a.Args {
			if !tm.IsVar() && !seen[tm.Const] {
				seen[tm.Const] = true
				dom = append(dom, tm.Const)
			}
		}
	}
	sort.Slice(dom, func(i, j int) bool { return dom[i] < dom[j] })
	cur := q.Clone()
	work := d.Clone()
	curExo := make(map[string]bool, len(exo))
	for r := range exo {
		curExo[r] = true
	}
	stages := []ExoShapStage{{Description: "input", Query: cur.Clone()}}

	// If the query has no non-exogenous atoms, no endogenous fact can ever
	// matter; downstream the hierarchical algorithm still works (the query
	// is then a conjunction over exogenous relations and hierarchical
	// trivially only if structured so). Reject explicitly for clarity.
	nonExoCount := 0
	for _, a := range cur.Atoms {
		if !curExo[a.Rel] {
			nonExoCount++
		}
	}
	if nonExoCount == 0 {
		return nil, nil, nil, fmt.Errorf("core: every atom of %s is over an exogenous relation; all Shapley values are trivially 0", q.Name())
	}

	// Step 1: complement negated exogenous atoms (Lemma C.3).
	for i := range cur.Atoms {
		a := cur.Atoms[i]
		if !a.Negated || !curExo[a.Rel] {
			continue
		}
		fresh := freshRel(work, cur, a.Rel+"_c")
		var compFacts []db.Fact
		forEachTuple(dom, len(a.Args), func(tuple []db.Const) {
			f := db.Fact{Rel: a.Rel, Args: append([]db.Const(nil), tuple...)}
			if !work.Contains(f) {
				compFacts = append(compFacts, db.Fact{Rel: fresh, Args: f.Args})
			}
		})
		work = dropRelation(work, a.Rel)
		for _, f := range compFacts {
			work.MustAddExo(f)
		}
		cur.Atoms[i] = query.Atom{Rel: fresh, Args: a.Args, Negated: false}
		curExo[fresh] = true
	}
	stages = append(stages, ExoShapStage{Description: "complement negated exogenous atoms", Query: cur.Clone()})

	// Step 2: join each connected component of g_x(q) into one atom
	// (Lemma 4.6).
	comps := cur.ExoAtomComponents(curExo)
	if len(comps) > 0 {
		newQ := &query.CQ{Label: cur.Label, Head: append([]string(nil), cur.Head...)}
		inComp := make(map[int]int) // atom index -> component id
		for ci, comp := range comps {
			for _, ai := range comp {
				inComp[ai] = ci
			}
		}
		compAtom := make([]query.Atom, len(comps))
		for ci, comp := range comps {
			// Union of variables in first-occurrence order.
			var vars []string
			seen := make(map[string]bool)
			for _, ai := range comp {
				for _, x := range cur.Atoms[ai].Vars() {
					if !seen[x] {
						seen[x] = true
						vars = append(vars, x)
					}
				}
			}
			joinQ := &query.CQ{Label: "join", Head: vars}
			for _, ai := range comp {
				joinQ.Atoms = append(joinQ.Atoms, cur.Atoms[ai])
			}
			fresh := freshRel(work, cur, fmt.Sprintf("XJ%d", ci+1))
			rows := joinQ.Answers(work)
			terms := make([]query.Term, len(vars))
			for i, x := range vars {
				terms[i] = query.V(x)
			}
			compAtom[ci] = query.NewAtom(fresh, terms...)
			for _, ai := range comp {
				work = dropRelation(work, cur.Atoms[ai].Rel)
			}
			for _, row := range rows {
				work.MustAddExo(db.Fact{Rel: fresh, Args: row})
			}
			curExo[fresh] = true
		}
		emitted := make(map[int]bool)
		for ai, a := range cur.Atoms {
			if ci, isExo := inComp[ai]; isExo {
				if !emitted[ci] {
					emitted[ci] = true
					newQ.Atoms = append(newQ.Atoms, compAtom[ci])
				}
				continue
			}
			newQ.Atoms = append(newQ.Atoms, a)
		}
		cur = newQ
	}
	stages = append(stages, ExoShapStage{Description: "join exogenous components", Query: cur.Clone()})

	// Step 3: remove exogenous variables and pad each exogenous atom to the
	// variable set of a covering non-exogenous atom (Lemma 4.8).
	exoVars := make(map[string]bool)
	for _, x := range cur.ExogenousVars(curExo) {
		exoVars[x] = true
	}
	for i := range cur.Atoms {
		a := cur.Atoms[i]
		if !curExo[a.Rel] {
			continue
		}
		// Non-exogenous variables of a, in order.
		var keep []string
		seen := make(map[string]bool)
		for _, x := range a.Vars() {
			if !exoVars[x] && !seen[x] {
				seen[x] = true
				keep = append(keep, x)
			}
		}
		beta, ok := coveringAtom(cur, curExo, keep)
		if !ok {
			return nil, nil, nil, fmt.Errorf("core: internal error: no covering non-exogenous atom for %s (Lemma 4.4 violated?)", a)
		}
		var pad []string
		for _, x := range beta.Vars() {
			if !seen[x] {
				pad = append(pad, x)
			}
		}
		// Project the relation onto the kept variables, then pad.
		projQ := &query.CQ{Label: "proj", Head: keep, Atoms: []query.Atom{a}}
		rows := projQ.Answers(work)
		fresh := freshRel(work, cur, a.Rel+"_p")
		work = dropRelation(work, a.Rel)
		for _, row := range rows {
			forEachTuple(dom, len(pad), func(tail []db.Const) {
				args := make([]db.Const, 0, len(row)+len(tail))
				args = append(args, row...)
				args = append(args, tail...)
				work.MustAddExo(db.Fact{Rel: fresh, Args: args})
			})
		}
		terms := make([]query.Term, 0, len(keep)+len(pad))
		for _, x := range keep {
			terms = append(terms, query.V(x))
		}
		for _, x := range pad {
			terms = append(terms, query.V(x))
		}
		cur.Atoms[i] = query.NewAtom(fresh, terms...)
		curExo[fresh] = true
	}
	stages = append(stages, ExoShapStage{Description: "project exogenous variables and pad to covering atoms", Query: cur.Clone()})

	if !cur.IsHierarchical() {
		return nil, nil, nil, fmt.Errorf("core: internal error: ExoShap output %s is not hierarchical", cur)
	}
	return work, cur, stages, nil
}

// coveringAtom finds a non-exogenous atom whose variables include all of
// vars (Lemma 4.4 guarantees one exists for component variable sets).
func coveringAtom(q *query.CQ, exo map[string]bool, vars []string) (query.Atom, bool) {
	for _, a := range q.Atoms {
		if exo[a.Rel] {
			continue
		}
		all := true
		for _, x := range vars {
			if !a.HasVar(x) {
				all = false
				break
			}
		}
		if all {
			return a, true
		}
	}
	return query.Atom{}, false
}

// freshRel derives a relation name not used by the database or the query.
// Database membership is an O(1) arity-map probe (the transform calls this
// once per rewritten atom over progressively rebuilt databases, so the old
// sorted-Relations sweep was O(relations²) across one transform).
func freshRel(d *db.Database, q *query.CQ, base string) string {
	base = strings.ReplaceAll(base, " ", "_")
	inQ := make(map[string]bool, len(q.Atoms))
	for _, a := range q.Atoms {
		inQ[a.Rel] = true
	}
	used := func(name string) bool {
		if inQ[name] {
			return true
		}
		_, ok := d.Arity(name)
		return ok
	}
	if !used(base) {
		return base
	}
	for i := 2; ; i++ {
		if cand := fmt.Sprintf("%s%d", base, i); !used(cand) {
			return cand
		}
	}
}

// dropRelation returns a copy of d without the given relation's facts.
func dropRelation(d *db.Database, rel string) *db.Database {
	return d.WithoutRelation(rel)
}

// forEachTuple enumerates dom^k in lexicographic order.
func forEachTuple(dom []db.Const, k int, fn func([]db.Const)) {
	tuple := make([]db.Const, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			fn(tuple)
			return
		}
		for _, c := range dom {
			tuple[i] = c
			rec(i + 1)
		}
	}
	if k == 0 {
		fn(nil)
		return
	}
	if len(dom) == 0 {
		return
	}
	rec(0)
}

// SortedRelNames is a small helper used by experiments to display the
// transformed schema deterministically.
func SortedRelNames(exo map[string]bool) []string {
	out := make([]string, 0, len(exo))
	for r := range exo {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
