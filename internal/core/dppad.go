package core

import (
	"fmt"
	"sync"

	"repro/internal/db"
)

// This file implements lazy Step-3 padding for the indexed ExoShap
// transform (exoshap_indexed.go). A padded relation holds one row per
// *projected* component-join answer (arity = the kept variables), but the
// transformed query's atom for it carries extra pad variables — the dense
// transform materializes dom^pad copies of every row to make the atom
// unconstraining on those positions. Instead, the rows travel through the
// DP-tree construction as padGroups beside the ordinary fact lists and
// behave as if every pad extension existed:
//
//   - at a bucket level whose root variable sits at a kept position, the
//     group subdivides by hash lookup on that position (rows with other
//     values cannot be the atom's image in that bucket);
//   - at a bucket level whose root variable sits at a pad position, every
//     value child receives the group unchanged (the dense padding has every
//     value there);
//   - bucket values that only dense pad tuples would create are omitted
//     entirely: the transform guarantees a positive covering atom with
//     exactly the padded atom's variable set, so such a bucket has no fact
//     of that (or any) relation, its subtree satisfies nothing, and its
//     non-satisfying factor is the convolution identity [1] — omission is
//     value-identical (and the padded rows are exogenous, so no Shapley
//     value is lost);
//   - at a ground leaf, all kept positions have been pinned by the descent,
//     so a group carries at most one row, which joins the leaf's fact list
//     and is matched by relation identity in groundBaseFacts like any other
//     exogenous fact.
//
// Content keys stay consistent because nodeKey is an additive multiset
// digest: a node's key folds in Σ row digests of its attached groups, so
// it equals the key the same rows would produce inside the fact list, and
// subdividing a group never changes the digest sum of what a child sees.

// padGroup is a shared, immutable view of (a subdivision of) one padded
// relation's rows. The rows slice and dig never change after the group is
// published; byPos is a lazily built cache of per-position subdivisions,
// guarded by mu because sibling subtrees built by parallel builders share
// the group. Whichever builder wins the race constructs the subgroups from
// the immutable rows, so the cache content is deterministic.
type padGroup struct {
	rel  string        // the padded relation
	keep int           // stored row arity (= kept variables of the atom)
	rows []*taggedFact // shared, exogenous, insertion order
	dig  db.Digest     // Σ row content digests (see nodeKey)

	mu    sync.Mutex
	byPos map[int]map[db.Const]*padGroup
}

// at returns the subgroup of rows whose argument at pos equals v, or nil
// when no row has that value (the caller then simply does not attach the
// group to that child). pos must be a kept position (< keep).
func (g *padGroup) at(pos int, v db.Const) *padGroup {
	g.mu.Lock()
	defer g.mu.Unlock()
	sub, ok := g.byPos[pos]
	if !ok {
		sub = make(map[db.Const]*padGroup)
		for _, tf := range g.rows {
			val := tf.Fact.Args[pos]
			s := sub[val]
			if s == nil {
				s = &padGroup{rel: g.rel, keep: g.keep}
				sub[val] = s
			}
			s.rows = append(s.rows, tf)
			s.dig = s.dig.Add(tf.ContentDigest())
		}
		if g.byPos == nil {
			g.byPos = make(map[int]map[db.Const]*padGroup)
		}
		g.byPos[pos] = sub
	}
	return sub[v]
}

// splitPadGroups separates the rows of lazily padded relations (marked by
// the indexed ExoShap transform) out of a fact list into shared padGroups,
// in first-occurrence order. With no padded relations the input list is
// returned as is — the hierarchical, UCQ and dense-ExoShap paths pay one
// nil check and nothing else.
func splitPadGroups(facts []*taggedFact, padded map[string]bool) ([]*taggedFact, []*padGroup) {
	if len(padded) == 0 {
		return facts, nil
	}
	groupOf := make(map[string]*padGroup, len(padded))
	var groups []*padGroup
	rest := make([]*taggedFact, 0, len(facts))
	for _, tf := range facts {
		if !padded[tf.Fact.Rel] {
			rest = append(rest, tf)
			continue
		}
		g := groupOf[tf.Fact.Rel]
		if g == nil {
			g = &padGroup{rel: tf.Fact.Rel, keep: len(tf.Fact.Args)}
			groupOf[tf.Fact.Rel] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, tf)
		g.dig = g.dig.Add(tf.ContentDigest())
	}
	return rest, groups
}

// routePadsBuckets distributes a bucket node's pad groups over its value
// children: a group whose relation carries the root variable at a kept
// position subdivides per value, one carrying it at a pad position is
// universal there and every child receives it whole. A nil result (no
// groups, or no surviving subgroups) adds nothing to any child.
func routePadsBuckets(shape *dpShape, values []db.Const, pads []*padGroup) ([][]*padGroup, error) {
	if len(pads) == 0 {
		return nil, nil
	}
	out := make([][]*padGroup, len(values))
	for _, g := range pads {
		pos, ok := shape.posOf[g.rel]
		if !ok {
			return nil, fmt.Errorf("core: internal error: padded relation %s missing from bucket shape", g.rel)
		}
		if pos >= g.keep {
			for bi := range values {
				out[bi] = append(out[bi], g)
			}
			continue
		}
		for bi, v := range values {
			if sub := g.at(pos, v); sub != nil {
				out[bi] = append(out[bi], sub)
			}
		}
	}
	return out, nil
}

// routePadsProduct distributes a product node's pad groups to the
// component owning each padded relation.
func routePadsProduct(shape *dpShape, ncomp int, pads []*padGroup) ([][]*padGroup, error) {
	if len(pads) == 0 {
		return nil, nil
	}
	out := make([][]*padGroup, ncomp)
	for _, g := range pads {
		ci, ok := shape.relOf[g.rel]
		if !ok {
			return nil, fmt.Errorf("core: internal error: padded relation %s outside every component", g.rel)
		}
		out[ci] = append(out[ci], g)
	}
	return out, nil
}

// groundPadRows materializes a ground leaf's fact list with its pad rows
// appended. Every kept position of a group reaching ground depth has been
// pinned by the bucket descent (each of the padded atom's variables occurs
// exactly once, kept ones at positions < keep), so a group holds at most
// one row here. relevant is copied before appending: child fact slices
// share backing arrays with their siblings.
func groundPadRows(relevant []*taggedFact, pads []*padGroup) ([]*taggedFact, error) {
	if len(pads) == 0 {
		return relevant, nil
	}
	out := make([]*taggedFact, len(relevant), len(relevant)+len(pads))
	copy(out, relevant)
	for _, g := range pads {
		if len(g.rows) > 1 {
			return nil, fmt.Errorf("core: internal error: pad group %s reached a ground leaf with %d rows", g.rel, len(g.rows))
		}
		out = append(out, g.rows...)
	}
	return out, nil
}
