package core

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/query"
)

// BatchOptions configures Solver.ShapleyAllBatch.
type BatchOptions struct {
	// Workers is the number of goroutines computing per-fact values
	// concurrently. Zero or negative means runtime.GOMAXPROCS(0). The
	// computed values are independent of Workers.
	Workers int
	// OnResult, if non-nil, receives each completed value as soon as it and
	// every earlier fact (in d.EndoFacts() order) have completed, so the
	// callbacks arrive in the same deterministic order as the returned
	// slice. Calls are serialized; the callback must not block for long.
	OnResult func(*ShapleyValue)
}

// ShapleyAllBatch computes the Shapley value of every endogenous fact with
// work shared across the batch: the query is validated and classified once,
// the ExoShap transformation (when needed) runs once instead of once per
// fact, the CntSat dynamic program is materialized once as a DP-tree
// (dptree.go), and the remaining per-fact D+f / D−f toggles — each of
// which recomputes only the tree spine containing the fact — are fanned
// across a worker pool. Results are returned in d.EndoFacts() order and
// are bit-for-bit identical to calling Shapley on each fact.
//
// It is PrepareAll followed by PreparedBatch.ShapleyAll; callers serving
// many requests over one database should hold on to a handle instead —
// a Plan from Engine.Prepare (or the deprecated PreparedBatch) — which
// amortizes the preparation across calls.
//
// On error, in-flight work is cancelled and the error of the lowest-indexed
// fact observed to fail is returned (query- and declaration-level errors
// surface before any per-fact work starts).
func (s *Solver) ShapleyAllBatch(d *db.Database, q *query.CQ, opts BatchOptions) ([]*ShapleyValue, error) {
	p, err := s.PrepareAll(d, q)
	if err != nil {
		return nil, err
	}
	return p.ShapleyAll(opts)
}

// satCountContext is the compute handle for a hierarchical self-join-free
// CQ¬ over one database snapshot: the DP-tree for the whole instance plus
// the snapshot per-fact queries validate against. It is immutable after
// construction and safe for concurrent use.
type satCountContext struct {
	q     *query.CQ
	d     *db.Database // the snapshot (never mutated after preparation)
	m     int          // |Dn| of the full database
	root  *dpNode      // the cntSat(D, q) computation
	build BuildStats   // memo traffic of this construction
}

// newSatCountContext validates q and materializes the DP-tree for q over
// d. A non-nil memo reuses every subtree whose input content (sub-query
// plus facts) is unchanged — it is how Plan.Apply recomputes only the
// root-to-leaf spines a delta touches, no matter how deep below the top
// bucket the change lands. prev, when non-nil, is the context of the
// immediately preceding snapshot of the same plan: its tree guides child
// matching and lets interior nodes update their convolution products by
// exact division (combinat.Deconvolve) instead of re-convolving. Passing
// nil for both computes everything from scratch. cfg carries the builder
// concurrency, spawn-cost threshold and scratch pool (see buildConfig).
// padded names the relations the indexed ExoShap transform emitted at
// projected arity: their rows are split into lazily expanded pad groups
// before construction (see dppad.go); nil everywhere else.
func newSatCountContext(d *db.Database, q *query.CQ, padded map[string]bool, memo *satMemo, prev *satCountContext, cfg buildConfig) (*satCountContext, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.HasSelfJoin() {
		return nil, ErrNotSelfJoinFree
	}
	if !q.IsHierarchical() {
		return nil, ErrNotHierarchical
	}
	c := &satCountContext{q: q, d: d, m: d.NumEndo()}
	var (
		prevRoot *dpNode
		label    string
	)
	if prev != nil && prev.root != nil && prev.q.String() == q.String() {
		prevRoot, label = prev.root, prev.root.label
	}
	b := newTreeBuilder(memo, cfg)
	facts, pads := splitPadGroups(factPtrs(d), padded)
	root, err := b.build(q, nil, label, facts, pads, false, prevRoot, 0)
	if err != nil {
		return nil, err
	}
	c.root, c.build = root, b.stats
	return c, nil
}

// shapley computes Shapley(D, q, f) for an endogenous fact of the
// context's database, reusing the materialized DP-tree: only the spine of
// nodes containing f is recomputed, with sibling subtrees combined through
// the per-node leave-one-out products. The context carries the request's
// obs recorder (when tracing is on) so the tree work and the weighting
// epilogue surface as distinct merged spans; it is not consulted for
// cancellation — a single toggle is far below cancellation granularity.
func (c *satCountContext) shapley(ctx context.Context, f db.Fact) (*big.Rat, error) {
	if !c.d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	// A fact matching no atom pattern can never change the query value:
	// its Shapley value is identically zero (it is a free filler on both
	// sides of the reduction, so the weighted difference cancels).
	if !c.root.matchesAny(f) {
		return new(big.Rat), nil
	}
	_, tsp := obs.Start(ctx, "tree.toggle")
	with, without, err := c.root.toggle(f)
	tsp.End()
	if err != nil {
		return nil, err
	}
	_, wsp := obs.Start(ctx, "weight")
	v := numeric.WeightedDifference(with, without, c.m)
	wsp.End()
	return v, nil
}
