package core

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// BatchOptions configures Solver.ShapleyAllBatch.
type BatchOptions struct {
	// Workers is the number of goroutines computing per-fact values
	// concurrently. Zero or negative means runtime.GOMAXPROCS(0). The
	// computed values are independent of Workers.
	Workers int
	// OnResult, if non-nil, receives each completed value as soon as it and
	// every earlier fact (in d.EndoFacts() order) have completed, so the
	// callbacks arrive in the same deterministic order as the returned
	// slice. Calls are serialized; the callback must not block for long.
	OnResult func(*ShapleyValue)
}

// ShapleyAllBatch computes the Shapley value of every endogenous fact with
// work shared across the batch: the query is validated and classified once,
// the ExoShap transformation (when needed) runs once instead of once per
// fact, the parts of the CntSat dynamic program that do not depend on which
// fact is toggled are hoisted into a reusable satCountContext, and the
// remaining per-fact D+f / D−f computations are fanned across a worker
// pool. Results are returned in d.EndoFacts() order and are bit-for-bit
// identical to calling Shapley on each fact.
//
// It is PrepareAll followed by PreparedBatch.ShapleyAll; callers serving
// many requests over one database should hold on to a handle instead —
// a Plan from Engine.Prepare (or the deprecated PreparedBatch) — which
// amortizes the preparation across calls.
//
// On error, in-flight work is cancelled and the error of the lowest-indexed
// fact observed to fail is returned (query- and declaration-level errors
// surface before any per-fact work starts).
func (s *Solver) ShapleyAllBatch(d *db.Database, q *query.CQ, opts BatchOptions) ([]*ShapleyValue, error) {
	p, err := s.PrepareAll(d, q)
	if err != nil {
		return nil, err
	}
	return p.ShapleyAll(opts)
}

// satMemo carries content-keyed sub-DP vectors across plan versions: the
// per-bucket NonSat vectors (and per-component / per-pool vectors) of a
// satCountContext or ucqSatContext, keyed by the exact computation they are
// the result of — the substituted query plus the unit's facts with their
// endogeneity flags. When Plan.Apply rebuilds a context after a delta,
// every bucket whose content is untouched finds its vector in the memo and
// skips the recursive dynamic program entirely; only the buckets the delta
// touches are recomputed. Stored vectors are shared across versions and
// must never be mutated (every combinat operation allocates fresh output).
//
// The memo is generational: lookups read the previous version's entries
// (prev) and promote hits into the current generation (cur), so entries for
// buckets that no longer exist are dropped at the next rollover instead of
// accumulating forever.
type satMemo struct {
	prev map[string][]*big.Int // previous version's entries (read-only)
	cur  map[string][]*big.Int // entries used or created by this version
}

// newSatMemo returns an empty memo for a first preparation.
func newSatMemo() *satMemo { return &satMemo{cur: make(map[string][]*big.Int)} }

// next rolls the memo over for the successor version: everything the
// current construction used becomes the lookup set.
func (mm *satMemo) next() *satMemo {
	if mm == nil {
		return newSatMemo()
	}
	return &satMemo{prev: mm.cur, cur: make(map[string][]*big.Int)}
}

// lookup returns the vector cached under key, promoting a previous-version
// hit into the current generation. A nil memo never hits.
func (mm *satMemo) lookup(key string) ([]*big.Int, bool) {
	if mm == nil {
		return nil, false
	}
	if v, ok := mm.cur[key]; ok {
		return v, true
	}
	if v, ok := mm.prev[key]; ok {
		mm.cur[key] = v
		return v, true
	}
	return nil, false
}

// store records a vector in the current generation (also used to keep
// reused units alive across rollovers).
func (mm *satMemo) store(key string, v []*big.Int) {
	if mm != nil {
		mm.cur[key] = v
	}
}

// taggedFact is one fact of a sub-unit with its endogeneity flag.
type taggedFact struct {
	f    db.Fact
	endo bool
}

// subUnit is one unit of the top-level DP decomposition — a root-variable
// bucket of a connected query, a connected component of a disconnected
// one, or a disjunct pool of a UCQ — together with its memo key and its
// contribution vector (NonSat counts for buckets and pools, Sat counts for
// components).
type subUnit struct {
	q     *query.CQ
	key   string
	facts []taggedFact
	endo  int        // endogenous facts in the unit
	vec   []*big.Int // never mutated; shared across plan versions
	zero  bool       // vec is the zero polynomial
}

// database materializes the unit's facts (memo misses and toggles only;
// the steady state never builds these).
func dbOf(facts []taggedFact) *db.Database {
	d := db.New()
	for _, tf := range facts {
		d.MustAdd(tf.f, tf.endo)
	}
	return d
}

// memoKey identifies one sub-DP exactly: kind tag ('b'ucket, 'c'omponent,
// 'u'cq pool), the substituted or component query, and the unit's facts
// with flags in insertion order. Equal keys denote the identical
// computation, so reuse is trivially bit-identical; an order-only change
// merely misses and recomputes.
func memoKey(kind byte, q *query.CQ, facts []taggedFact) string {
	var b strings.Builder
	b.WriteByte(kind)
	b.WriteByte(0)
	b.WriteString(q.String())
	b.WriteByte(0)
	for _, tf := range facts {
		if tf.endo {
			b.WriteString("n ")
		} else {
			b.WriteString("x ")
		}
		b.WriteString(tf.f.Key())
		b.WriteByte('\n')
	}
	return b.String()
}

// topoKind identifies the top-level shape of the CntSat dynamic program.
type topoKind int

const (
	topoGround     topoKind = iota // all-ground conjunction (Lemma 3.2 base case)
	topoComponents                 // disconnected query: independent components
	topoBuckets                    // connected query: root-variable buckets
)

// satCountContext hoists every part of the |Sat(D, q, k)| computation that
// is independent of which endogenous fact is toggled: the atom-of-relation
// map, the relevance partition of D, the binomial convolution vector for
// free fillers, and the per-bucket (or per-component) DP vectors together
// with the convolution product over all of them. Toggling a fact f between
// endogenous, exogenous and absent only changes the one bucket or component
// containing f, so a per-fact query divides that unit's factor out of the
// total product (exact polynomial division, O(n·|bucket|)) and convolves
// the toggled unit back in, instead of running two full dynamic programs
// over all of D.
//
// The same leave-one-out product is what makes Plan.Apply incremental: a
// delta that touches one bucket divides the stale factor out, convolves the
// recomputed one in, and reuses every other unit's vector through the
// content-keyed satMemo.
//
// The context is immutable after construction and safe for concurrent use.
type satCountContext struct {
	q        *query.CQ
	m        int             // |Dn| of the full database
	relevant *db.Database    // materialized for topoGround only
	relEndo  map[string]bool // keys of relevant endogenous facts
	freeKeys map[string]bool // keys of endogenous facts matching no atom pattern
	freeVec  []*big.Int      // BinomialVector(len(freeKeys)), nil when empty

	kind topoKind
	n    int // relevant endogenous count

	units  []subUnit
	unitOf map[string]int // topoBuckets: relevant endogenous fact key -> unit
	relOf  map[string]int // topoComponents: relation -> unit

	// Leave-one-out product state: prod is the convolution of every unit
	// vector that is not identically zero; zeros counts the zero ones.
	prod  []*big.Int
	zeros int

	// topoBuckets bookkeeping reused by incremental maintenance.
	rootVar string
	posOf   map[string]int         // relation -> root-variable position
	values  []db.Const             // bucket values, sorted, aligned with units
	subQ    map[db.Const]*query.CQ // value -> substituted query (construction-only cache)
}

// newSatCountContext validates q and precomputes the shared DP state for
// batched Shapley computation over d. A non-nil memo caches the per-unit
// vectors by content; when prev is the context of the immediately preceding
// plan version and delta is the change between the two snapshots, the
// bucket structure itself is maintained incrementally — only the buckets
// the delta touches are re-partitioned and recomputed. Passing nil memo and
// nil prev computes everything from scratch.
func newSatCountContext(d *db.Database, q *query.CQ, memo *satMemo, prev *satCountContext, delta db.Delta, haveDelta bool) (*satCountContext, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.HasSelfJoin() {
		return nil, ErrNotSelfJoinFree
	}
	if !q.IsHierarchical() {
		return nil, ErrNotHierarchical
	}
	if haveDelta && prev != nil && prev.kind == topoBuckets && prev.q == q {
		return incrementalBucketContext(d, q, memo, prev, delta)
	}
	c := &satCountContext{
		q:        q,
		m:        d.NumEndo(),
		relEndo:  make(map[string]bool),
		freeKeys: make(map[string]bool),
	}
	atomOf := make(map[string]query.Atom)
	for _, a := range q.Atoms {
		atomOf[a.Rel] = a
	}
	var relevant []taggedFact
	for _, f := range d.Facts() {
		endo := d.IsEndogenous(f)
		a, inQuery := atomOf[f.Rel]
		if inQuery && query.MatchesAtom(a, f) {
			relevant = append(relevant, taggedFact{f, endo})
			if endo {
				c.relEndo[f.Key()] = true
			}
		} else if endo {
			c.freeKeys[f.Key()] = true
		}
	}
	if len(c.freeKeys) > 0 {
		c.freeVec = combinat.BinomialVector(len(c.freeKeys))
	}
	c.n = len(c.relEndo)

	// Mirror the top-level branching of cntSatCore exactly, so that the
	// per-fact incremental recomputation follows the same decomposition as
	// the from-scratch dynamic program.
	comps := q.AtomComponents()
	switch {
	case len(comps) > 1:
		c.kind = topoComponents
		c.relOf = make(map[string]int)
		for ci, comp := range comps {
			sub := q.SubQuery(comp)
			rels := make(map[string]bool)
			for _, a := range sub.Atoms {
				rels[a.Rel] = true
				c.relOf[a.Rel] = ci
			}
			var facts []taggedFact
			endoN := 0
			for _, tf := range relevant {
				if rels[tf.f.Rel] {
					facts = append(facts, tf)
					if tf.endo {
						endoN++
					}
				}
			}
			u := subUnit{q: sub, facts: facts, endo: endoN, key: memoKey('c', sub, facts)}
			v, ok := memo.lookup(u.key)
			if !ok {
				var err error
				if v, err = cntSat(dbOf(facts), sub); err != nil {
					return nil, err
				}
				memo.store(u.key, v)
			}
			u.vec, u.zero = v, combinat.IsZeroVector(v)
			c.units = append(c.units, u)
		}

	case len(q.Vars()) == 0:
		c.kind = topoGround
		c.relevant = dbOf(relevant)

	default:
		c.kind = topoBuckets
		roots := q.RootVariables()
		if len(roots) == 0 {
			return nil, ErrNotHierarchical
		}
		c.rootVar = roots[0]
		c.posOf = make(map[string]int)
		for _, a := range q.Atoms {
			for i, t := range a.Args {
				if t.IsVar() && t.Var == c.rootVar {
					c.posOf[a.Rel] = i
					break
				}
			}
		}
		buckets := make(map[db.Const][]taggedFact)
		for _, tf := range relevant {
			v := tf.f.Args[c.posOf[tf.f.Rel]]
			buckets[v] = append(buckets[v], tf)
		}
		c.values = make([]db.Const, 0, len(buckets))
		for v := range buckets {
			c.values = append(c.values, v)
		}
		sort.Slice(c.values, func(i, j int) bool { return c.values[i] < c.values[j] })
		c.subQ = make(map[db.Const]*query.CQ, len(c.values))
		c.unitOf = make(map[string]int)
		for bi, v := range c.values {
			u, err := c.buildBucket(v, buckets[v], memo)
			if err != nil {
				return nil, err
			}
			for _, tf := range u.facts {
				if tf.endo {
					c.unitOf[tf.f.Key()] = bi
				}
			}
			c.units = append(c.units, u)
		}
	}
	c.computeProd(prev)
	return c, nil
}

// buildBucket assembles one bucket unit: substituted query (cached by
// value), memo key, and NonSat vector (from the memo when the content is
// unchanged, recomputed otherwise).
func (c *satCountContext) buildBucket(v db.Const, facts []taggedFact, memo *satMemo) (subUnit, error) {
	qv, ok := c.subQ[v]
	if !ok {
		qv = c.q.SubstituteVar(c.rootVar, v)
		c.subQ[v] = qv
	}
	endoN := 0
	for _, tf := range facts {
		if tf.endo {
			endoN++
		}
	}
	u := subUnit{q: qv, facts: facts, endo: endoN, key: memoKey('b', qv, facts)}
	nonSat, hit := memo.lookup(u.key)
	if !hit {
		sat, err := cntSat(dbOf(facts), qv)
		if err != nil {
			return subUnit{}, err
		}
		nonSat = combinat.ComplementVector(sat, endoN)
		memo.store(u.key, nonSat)
	}
	u.vec, u.zero = nonSat, combinat.IsZeroVector(nonSat)
	return u, nil
}

// incrementalBucketContext rebuilds a topoBuckets context after a delta by
// touching only the buckets the delta's facts fall into: the relevance
// partition is patched fact by fact, untouched units are reused wholesale
// (facts, key and vector), and only touched buckets are re-keyed and — on
// a memo miss — recomputed.
func incrementalBucketContext(d *db.Database, q *query.CQ, memo *satMemo, prev *satCountContext, delta db.Delta) (*satCountContext, error) {
	// subQ is rebuilt per version (seeded below from the surviving
	// buckets) rather than shared, so constants whose buckets vanished do
	// not accumulate substituted queries for the life of the plan.
	c := &satCountContext{
		q:        q,
		m:        d.NumEndo(),
		kind:     topoBuckets,
		relEndo:  cloneSet(prev.relEndo),
		freeKeys: cloneSet(prev.freeKeys),
		rootVar:  prev.rootVar,
		posOf:    prev.posOf,
		subQ:     make(map[db.Const]*query.CQ, len(prev.values)),
	}
	atomOf := make(map[string]query.Atom)
	for _, a := range q.Atoms {
		atomOf[a.Rel] = a
	}
	classify := func(f db.Fact) (db.Const, bool) {
		if a, in := atomOf[f.Rel]; in && query.MatchesAtom(a, f) {
			return f.Args[c.posOf[f.Rel]], true
		}
		return "", false
	}
	touched := make(map[db.Const]bool)
	removed := make(map[string]bool)
	for _, f := range delta.Remove {
		if v, rel := classify(f); rel {
			touched[v] = true
			removed[f.Key()] = true
			delete(c.relEndo, f.Key())
		} else {
			delete(c.freeKeys, f.Key())
		}
	}
	added := make(map[db.Const][]taggedFact)
	addFact := func(f db.Fact, endo bool) {
		if v, rel := classify(f); rel {
			touched[v] = true
			added[v] = append(added[v], taggedFact{f, endo})
			if endo {
				c.relEndo[f.Key()] = true
			}
		} else if endo {
			c.freeKeys[f.Key()] = true
		}
	}
	for _, f := range delta.AddEndo {
		addFact(f, true)
	}
	for _, f := range delta.AddExo {
		addFact(f, false)
	}
	c.n = len(c.relEndo)
	if len(c.freeKeys) > 0 {
		c.freeVec = combinat.BinomialVector(len(c.freeKeys))
	}

	// Assemble the new bucket list: surviving facts keep their relative
	// order and added facts append (AddEndo before AddExo), exactly
	// matching what a fresh partition of the post-delta database yields.
	factsOf := make(map[db.Const][]taggedFact, len(touched))
	for v := range touched {
		var facts []taggedFact
		if bi, ok := indexOfValue(prev.values, v); ok {
			for _, tf := range prev.units[bi].facts {
				if !removed[tf.f.Key()] {
					facts = append(facts, tf)
				}
			}
		}
		facts = append(facts, added[v]...)
		factsOf[v] = facts
	}
	values := make([]db.Const, 0, len(prev.values)+len(added))
	for _, v := range prev.values {
		if !touched[v] || len(factsOf[v]) > 0 {
			values = append(values, v)
		}
	}
	for v := range touched {
		if _, existed := indexOfValue(prev.values, v); !existed && len(factsOf[v]) > 0 {
			values = append(values, v)
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	c.values = values
	c.unitOf = make(map[string]int, c.n)
	for bi, v := range values {
		var u subUnit
		if !touched[v] {
			pi, _ := indexOfValue(prev.values, v)
			u = prev.units[pi]
			memo.store(u.key, u.vec) // keep alive across rollovers
			c.subQ[v] = u.q
		} else {
			if qv, ok := prev.subQ[v]; ok {
				c.subQ[v] = qv // reuse the substitution for a rebuilt bucket
			}
			var err error
			if u, err = c.buildBucket(v, factsOf[v], memo); err != nil {
				return nil, err
			}
		}
		for _, tf := range u.facts {
			if tf.endo {
				c.unitOf[tf.f.Key()] = bi
			}
		}
		c.units = append(c.units, u)
	}
	c.computeProd(prev)
	return c, nil
}

// indexOfValue finds v in the sorted bucket-value list.
func indexOfValue(values []db.Const, v db.Const) (int, bool) {
	i := sort.Search(len(values), func(i int) bool { return values[i] >= v })
	if i < len(values) && values[i] == v {
		return i, true
	}
	return 0, false
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// computeProd fills the leave-one-out product state. When prev is a
// context of the same shape, the product is updated by dividing out the
// factors that disappeared and convolving in the new ones (O(n·|bucket|)
// per changed unit); otherwise it is the full convolution chain. Both
// routes yield the identical integer vector, since convolution of
// subset-count vectors is commutative and exact.
func (c *satCountContext) computeProd(prev *satCountContext) {
	for i := range c.units {
		if c.units[i].zero {
			c.zeros++
		}
	}
	if prev != nil && prev.kind == c.kind && prev.prod != nil {
		c.prod = updateProd(prev.prod, prev.units, c.units)
		return
	}
	vecs := make([][]*big.Int, 0, len(c.units))
	for i := range c.units {
		if !c.units[i].zero {
			vecs = append(vecs, c.units[i].vec)
		}
	}
	c.prod = combinat.ConvolveAll(vecs)
}

// updateProd maintains the non-zero-factor product across a unit-set
// change, diffing by memo key (keys are unique within a context: bucket
// keys embed the substituted constant, component and pool keys the
// sub-query).
func updateProd(prod []*big.Int, old, cur []subUnit) []*big.Int {
	oldKeys := make(map[string]bool, len(old))
	for i := range old {
		oldKeys[old[i].key] = true
	}
	curKeys := make(map[string]bool, len(cur))
	for i := range cur {
		curKeys[cur[i].key] = true
	}
	for i := range old {
		if u := &old[i]; !curKeys[u.key] && !u.zero {
			prod = combinat.Deconvolve(prod, u.vec)
		}
	}
	for i := range cur {
		if u := &cur[i]; !oldKeys[u.key] && !u.zero {
			prod = combinat.Convolve(prod, u.vec)
		}
	}
	return prod
}

// shapley computes Shapley(D, q, f) for an endogenous fact of the context's
// database, reusing the precomputed DP state.
func (c *satCountContext) shapley(f db.Fact) (*big.Rat, error) {
	if !c.relEndo[f.Key()] {
		// A fact matching no atom pattern can never change the query value:
		// its Shapley value is identically zero (it is a free filler on both
		// sides of the reduction, so the weighted difference cancels).
		if c.freeKeys[f.Key()] {
			return new(big.Rat), nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	with, without, err := c.satPair(f)
	if err != nil {
		return nil, err
	}
	return combinat.WeightedDifference(with, without, c.m), nil
}

// othersFor returns the convolution of every unit's vector except unit
// i's, or nil when that leave-one-out product is the zero polynomial
// (some other unit's vector is identically zero).
func (c *satCountContext) othersFor(i int) []*big.Int {
	return leaveOneOut(c.prod, c.zeros, &c.units[i])
}

func leaveOneOut(prod []*big.Int, zeros int, u *subUnit) []*big.Int {
	if u.zero {
		if zeros == 1 {
			return prod
		}
		return nil
	}
	if zeros > 0 {
		return nil
	}
	return combinat.Deconvolve(prod, u.vec)
}

// satPair returns the vectors |Sat(D+f, q, k)| and |Sat(D−f, q, k)| for a
// relevant endogenous fact f, recomputing only the bucket or component that
// contains f.
func (c *satCountContext) satPair(f db.Fact) (with, without []*big.Int, err error) {
	var coreWith, coreWithout []*big.Int
	switch c.kind {
	case topoGround:
		dw, err := c.relevant.WithExogenous(f)
		if err != nil {
			return nil, nil, err
		}
		if coreWith, err = groundBase(dw, c.q); err != nil {
			return nil, nil, err
		}
		dwo, err := c.relevant.Without(f)
		if err != nil {
			return nil, nil, err
		}
		if coreWithout, err = groundBase(dwo, c.q); err != nil {
			return nil, nil, err
		}

	case topoComponents:
		ci, ok := c.relOf[f.Rel]
		if !ok {
			return nil, nil, fmt.Errorf("core: internal error: relevant fact %s outside every component", f)
		}
		vW, vWo, err := toggledSat(&c.units[ci], f)
		if err != nil {
			return nil, nil, err
		}
		if others := c.othersFor(ci); others == nil {
			coreWith = combinat.ZeroVector(c.n - 1)
			coreWithout = combinat.ZeroVector(c.n - 1)
		} else {
			coreWith = combinat.Convolve(others, vW)
			coreWithout = combinat.Convolve(others, vWo)
		}
		if len(coreWith) != c.n || len(coreWithout) != c.n {
			return nil, nil, fmt.Errorf("core: internal error: component convolution length %d/%d, want %d", len(coreWith), len(coreWithout), c.n)
		}

	case topoBuckets:
		bi, ok := c.unitOf[f.Key()]
		if !ok {
			return nil, nil, fmt.Errorf("core: internal error: relevant fact %s outside every bucket", f)
		}
		u := &c.units[bi]
		sW, sWo, err := toggledSat(u, f)
		if err != nil {
			return nil, nil, err
		}
		bn := u.endo - 1
		nonW := combinat.ComplementVector(sW, bn)
		nonWo := combinat.ComplementVector(sWo, bn)
		var allW, allWo []*big.Int
		if others := c.othersFor(bi); others == nil {
			allW = combinat.ZeroVector(c.n - 1)
			allWo = allW
		} else {
			allW = combinat.Convolve(others, nonW)
			allWo = combinat.Convolve(others, nonWo)
		}
		coreWith = complementTotal(allW, c.n-1)
		coreWithout = complementTotal(allWo, c.n-1)
	}
	if c.freeVec != nil {
		return combinat.Convolve(coreWith, c.freeVec), combinat.Convolve(coreWithout, c.freeVec), nil
	}
	return coreWith, coreWithout, nil
}

// toggledSat recomputes one unit's sub-DP twice: once with f moved to the
// exogenous side and once with f removed.
func toggledSat(u *subUnit, f db.Fact) (satWith, satWithout []*big.Int, err error) {
	key := f.Key()
	dw, dwo := db.New(), db.New()
	found := false
	for _, tf := range u.facts {
		if tf.f.Key() == key {
			if !tf.endo {
				return nil, nil, fmt.Errorf("db: %s is not an endogenous fact", f)
			}
			found = true
			dw.MustAdd(tf.f, false)
			continue
		}
		dw.MustAdd(tf.f, tf.endo)
		dwo.MustAdd(tf.f, tf.endo)
	}
	if !found {
		return nil, nil, fmt.Errorf("db: %s is not a fact of the database", f)
	}
	if satWith, err = cntSat(dw, u.q); err != nil {
		return nil, nil, err
	}
	if satWithout, err = cntSat(dwo, u.q); err != nil {
		return nil, nil, err
	}
	return satWith, satWithout, nil
}

// complementTotal turns a non-satisfying count vector over an n-element
// endogenous set into the satisfying counts: out[k] = C(n, k) − nonSat[k].
func complementTotal(nonSat []*big.Int, n int) []*big.Int {
	out := make([]*big.Int, n+1)
	for k := 0; k <= n; k++ {
		out[k] = combinat.Binomial(n, k)
		if k < len(nonSat) {
			out[k].Sub(out[k], nonSat[k])
		}
	}
	return out
}
