package core

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// BatchOptions configures Solver.ShapleyAllBatch.
type BatchOptions struct {
	// Workers is the number of goroutines computing per-fact values
	// concurrently. Zero or negative means runtime.GOMAXPROCS(0). The
	// computed values are independent of Workers.
	Workers int
	// OnResult, if non-nil, receives each completed value as soon as it and
	// every earlier fact (in d.EndoFacts() order) have completed, so the
	// callbacks arrive in the same deterministic order as the returned
	// slice. Calls are serialized; the callback must not block for long.
	OnResult func(*ShapleyValue)
}

// ShapleyAllBatch computes the Shapley value of every endogenous fact with
// work shared across the batch: the query is validated and classified once,
// the ExoShap transformation (when needed) runs once instead of once per
// fact, the parts of the CntSat dynamic program that do not depend on which
// fact is toggled are hoisted into a reusable satCountContext, and the
// remaining per-fact D+f / D−f computations are fanned across a worker
// pool. Results are returned in d.EndoFacts() order and are bit-for-bit
// identical to calling Shapley on each fact.
//
// It is PrepareAll followed by PreparedBatch.ShapleyAll; callers serving
// many requests over one database should hold on to the PreparedBatch
// instead, which amortizes the preparation across calls.
//
// On error, in-flight work is cancelled and the error of the lowest-indexed
// fact observed to fail is returned (query- and declaration-level errors
// surface before any per-fact work starts).
func (s *Solver) ShapleyAllBatch(d *db.Database, q *query.CQ, opts BatchOptions) ([]*ShapleyValue, error) {
	p, err := s.PrepareAll(d, q)
	if err != nil {
		return nil, err
	}
	return p.ShapleyAll(opts)
}

// topoKind identifies the top-level shape of the CntSat dynamic program.
type topoKind int

const (
	topoGround     topoKind = iota // all-ground conjunction (Lemma 3.2 base case)
	topoComponents                 // disconnected query: independent components
	topoBuckets                    // connected query: root-variable buckets
)

// satCountContext hoists every part of the |Sat(D, q, k)| computation that
// is independent of which endogenous fact is toggled: the atom-of-relation
// map, the relevance partition of D, the binomial convolution vector for
// free fillers, and the per-bucket (or per-component) DP vectors together
// with their prefix/suffix convolution products. Toggling a fact f between
// endogenous, exogenous and absent only changes the one bucket or component
// containing f, so a per-fact query costs two sub-DP recomputations plus a
// constant number of full-length convolutions, instead of two full dynamic
// programs over all of D.
//
// The context is immutable after construction and safe for concurrent use.
type satCountContext struct {
	q        *query.CQ
	m        int // |Dn| of the full database
	relevant *db.Database
	relEndo  map[string]bool // keys of relevant endogenous facts
	freeKeys map[string]bool // keys of endogenous facts matching no atom pattern
	freeVec  []*big.Int      // BinomialVector(len(freeKeys)), nil when empty

	kind topoKind
	n    int // relevant endogenous count

	// topoComponents: per-component sub-query, sub-database and Sat vector.
	compQ     []*query.CQ
	compDB    []*db.Database
	compOfRel map[string]int

	// topoBuckets: per-bucket substituted query, sub-database and NonSat
	// vector (complement of Sat within the bucket).
	bucketQ  []*query.CQ
	bucketDB []*db.Database
	bucketOf map[string]int // relevant endogenous fact key -> bucket index

	// Prefix/suffix convolution products over the per-component Sat vectors
	// (topoComponents) or per-bucket NonSat vectors (topoBuckets):
	// pre[i] = vec[0] ⊛ ... ⊛ vec[i-1], suf[i] = vec[i+1] ⊛ ... ⊛ vec[last].
	pre, suf [][]*big.Int
}

// newSatCountContext validates q and precomputes the shared DP state for
// batched Shapley computation over d.
func newSatCountContext(d *db.Database, q *query.CQ) (*satCountContext, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.HasSelfJoin() {
		return nil, ErrNotSelfJoinFree
	}
	if !q.IsHierarchical() {
		return nil, ErrNotHierarchical
	}
	c := &satCountContext{
		q:        q,
		m:        d.NumEndo(),
		relevant: db.New(),
		relEndo:  make(map[string]bool),
		freeKeys: make(map[string]bool),
	}
	atomOf := make(map[string]query.Atom)
	for _, a := range q.Atoms {
		atomOf[a.Rel] = a
	}
	for _, f := range d.Facts() {
		a, inQuery := atomOf[f.Rel]
		if inQuery && query.MatchesAtom(a, f) {
			c.relevant.MustAdd(f, d.IsEndogenous(f))
			if d.IsEndogenous(f) {
				c.relEndo[f.Key()] = true
			}
		} else if d.IsEndogenous(f) {
			c.freeKeys[f.Key()] = true
		}
	}
	if len(c.freeKeys) > 0 {
		c.freeVec = combinat.BinomialVector(len(c.freeKeys))
	}
	c.n = c.relevant.NumEndo()

	// Mirror the top-level branching of cntSatCore exactly, so that the
	// per-fact incremental recomputation follows the same decomposition as
	// the from-scratch dynamic program.
	comps := q.AtomComponents()
	switch {
	case len(comps) > 1:
		c.kind = topoComponents
		c.compOfRel = make(map[string]int)
		vecs := make([][]*big.Int, 0, len(comps))
		for ci, comp := range comps {
			sub := q.SubQuery(comp)
			rels := make(map[string]bool)
			for _, a := range sub.Atoms {
				rels[a.Rel] = true
				c.compOfRel[a.Rel] = ci
			}
			subDB := c.relevant.Restrict(func(f db.Fact, _ bool) bool { return rels[f.Rel] })
			v, err := cntSat(subDB, sub)
			if err != nil {
				return nil, err
			}
			c.compQ = append(c.compQ, sub)
			c.compDB = append(c.compDB, subDB)
			vecs = append(vecs, v)
		}
		c.pre, c.suf = prefixSuffixConv(vecs)

	case len(q.Vars()) == 0:
		c.kind = topoGround

	default:
		c.kind = topoBuckets
		roots := q.RootVariables()
		if len(roots) == 0 {
			return nil, ErrNotHierarchical
		}
		x := roots[0]
		posOf := make(map[string]int)
		for _, a := range q.Atoms {
			for i, t := range a.Args {
				if t.IsVar() && t.Var == x {
					posOf[a.Rel] = i
					break
				}
			}
		}
		buckets := make(map[db.Const]*db.Database)
		var values []db.Const
		for _, f := range c.relevant.Facts() {
			v := f.Args[posOf[f.Rel]]
			if buckets[v] == nil {
				buckets[v] = db.New()
				values = append(values, v)
			}
			buckets[v].MustAdd(f, c.relevant.IsEndogenous(f))
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		c.bucketOf = make(map[string]int)
		vecs := make([][]*big.Int, 0, len(values))
		for bi, v := range values {
			bucket := buckets[v]
			qv := q.SubstituteVar(x, v)
			sat, err := cntSat(bucket, qv)
			if err != nil {
				return nil, err
			}
			for _, f := range bucket.EndoFacts() {
				c.bucketOf[f.Key()] = bi
			}
			c.bucketQ = append(c.bucketQ, qv)
			c.bucketDB = append(c.bucketDB, bucket)
			vecs = append(vecs, combinat.ComplementVector(sat, bucket.NumEndo()))
		}
		c.pre, c.suf = prefixSuffixConv(vecs)
	}
	return c, nil
}

// shapley computes Shapley(D, q, f) for an endogenous fact of the context's
// database, reusing the precomputed DP state.
func (c *satCountContext) shapley(f db.Fact) (*big.Rat, error) {
	if !c.relEndo[f.Key()] {
		// A fact matching no atom pattern can never change the query value:
		// its Shapley value is identically zero (it is a free filler on both
		// sides of the reduction, so the weighted difference cancels).
		if c.freeKeys[f.Key()] {
			return new(big.Rat), nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	with, without, err := c.satPair(f)
	if err != nil {
		return nil, err
	}
	return combinat.WeightedDifference(with, without, c.m), nil
}

// satPair returns the vectors |Sat(D+f, q, k)| and |Sat(D−f, q, k)| for a
// relevant endogenous fact f, recomputing only the bucket or component that
// contains f.
func (c *satCountContext) satPair(f db.Fact) (with, without []*big.Int, err error) {
	var coreWith, coreWithout []*big.Int
	switch c.kind {
	case topoGround:
		dw, err := c.relevant.WithExogenous(f)
		if err != nil {
			return nil, nil, err
		}
		if coreWith, err = groundBase(dw, c.q); err != nil {
			return nil, nil, err
		}
		dwo, err := c.relevant.Without(f)
		if err != nil {
			return nil, nil, err
		}
		if coreWithout, err = groundBase(dwo, c.q); err != nil {
			return nil, nil, err
		}

	case topoComponents:
		ci, ok := c.compOfRel[f.Rel]
		if !ok {
			return nil, nil, fmt.Errorf("core: internal error: relevant fact %s outside every component", f)
		}
		vW, vWo, err := c.toggledSat(c.compDB[ci], c.compQ[ci], f)
		if err != nil {
			return nil, nil, err
		}
		coreWith = convolve3(c.pre[ci], vW, c.suf[ci])
		coreWithout = convolve3(c.pre[ci], vWo, c.suf[ci])
		if len(coreWith) != c.n || len(coreWithout) != c.n {
			return nil, nil, fmt.Errorf("core: internal error: component convolution length %d/%d, want %d", len(coreWith), len(coreWithout), c.n)
		}

	case topoBuckets:
		bi, ok := c.bucketOf[f.Key()]
		if !ok {
			return nil, nil, fmt.Errorf("core: internal error: relevant fact %s outside every bucket", f)
		}
		bucket := c.bucketDB[bi]
		sW, sWo, err := c.toggledSat(bucket, c.bucketQ[bi], f)
		if err != nil {
			return nil, nil, err
		}
		bn := bucket.NumEndo() - 1
		nonW := combinat.ComplementVector(sW, bn)
		nonWo := combinat.ComplementVector(sWo, bn)
		coreWith = complementTotal(convolve3(c.pre[bi], nonW, c.suf[bi]), c.n-1)
		coreWithout = complementTotal(convolve3(c.pre[bi], nonWo, c.suf[bi]), c.n-1)
	}
	if c.freeVec != nil {
		return combinat.Convolve(coreWith, c.freeVec), combinat.Convolve(coreWithout, c.freeVec), nil
	}
	return coreWith, coreWithout, nil
}

// toggledSat recomputes one sub-DP twice: once with f moved to the
// exogenous side and once with f removed.
func (c *satCountContext) toggledSat(sub *db.Database, q *query.CQ, f db.Fact) (satWith, satWithout []*big.Int, err error) {
	dw, err := sub.WithExogenous(f)
	if err != nil {
		return nil, nil, err
	}
	if satWith, err = cntSat(dw, q); err != nil {
		return nil, nil, err
	}
	dwo, err := sub.Without(f)
	if err != nil {
		return nil, nil, err
	}
	if satWithout, err = cntSat(dwo, q); err != nil {
		return nil, nil, err
	}
	return satWith, satWithout, nil
}

// prefixSuffixConv returns, for each index i, the convolution of all
// vectors before i (pre[i]) and after i (suf[i]); the identity vector [1]
// at the ends.
func prefixSuffixConv(vecs [][]*big.Int) (pre, suf [][]*big.Int) {
	k := len(vecs)
	pre = make([][]*big.Int, k)
	suf = make([][]*big.Int, k)
	acc := []*big.Int{big.NewInt(1)}
	for i := 0; i < k; i++ {
		pre[i] = acc
		acc = combinat.Convolve(acc, vecs[i])
	}
	acc = []*big.Int{big.NewInt(1)}
	for i := k - 1; i >= 0; i-- {
		suf[i] = acc
		acc = combinat.Convolve(acc, vecs[i])
	}
	return pre, suf
}

// convolve3 convolves three subset-count vectors.
func convolve3(a, b, c []*big.Int) []*big.Int {
	return combinat.Convolve(combinat.Convolve(a, b), c)
}

// complementTotal turns a non-satisfying count vector over an n-element
// endogenous set into the satisfying counts: out[k] = C(n, k) − nonSat[k].
func complementTotal(nonSat []*big.Int, n int) []*big.Int {
	out := make([]*big.Int, n+1)
	for k := 0; k <= n; k++ {
		out[k] = combinat.Binomial(n, k)
		if k < len(nonSat) {
			out[k].Sub(out[k], nonSat[k])
		}
	}
	return out
}
