package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

// snapshotFixture is one (engine policy, database, query) triple covering
// a distinct preparation path.
type snapshotFixture struct {
	name   string
	dbText string
	cq     string
	ucq    string
	opts   []EngineOption
	method Method
}

func snapshotFixtures() []snapshotFixture {
	return []snapshotFixture{
		{
			name: "hierarchical",
			dbText: "exo Stud(Ann)\nexo Stud(Bob)\nendo TA(Ann)\n" +
				"endo Reg(Ann, OS)\nendo Reg(Ann, AI)\nendo Reg(Bob, OS)\nendo Free(x1)\n",
			cq:     "q() :- Stud(x), !TA(x), Reg(x, y)",
			method: MethodHierarchical,
		},
		{
			name: "exoshap",
			dbText: "endo Author(a1, j1)\nendo Author(a2, j1)\nendo Author(a2, j2)\n" +
				"exo Pub(a1, p1)\nexo Pub(a2, p2)\nexo Citations(p1, c1)\nexo Citations(p2, c1)\nexo Citations(p2, c2)\n",
			cq:     "q() :- Author(x, y), Pub(x, z), Citations(z, w)",
			opts:   []EngineOption{WithExoRelations("Pub", "Citations")},
			method: MethodExoShap,
		},
		{
			name: "ucq",
			dbText: "endo R(a)\nendo R(b)\nendo S(a, b)\nexo S(b, b)\n" +
				"endo T(a, c)\nendo T(c, c)\nendo Free(x1)\n",
			ucq:    "q1() :- R(x), S(x, y) | q2() :- T(x, y)",
			method: MethodHierarchical,
		},
		{
			name:   "brute",
			dbText: "endo R(a)\nendo R(b)\nendo S(a, b)\nendo S(b, a)\n",
			cq:     "q() :- R(x), S(x, y), R(y)",
			opts:   []EngineOption{WithBruteForce(true)},
			method: MethodBruteForce,
		},
		{
			name:   "empty",
			dbText: "exo Stud(Ann)\nexo TA(Ann)\n",
			cq:     "q() :- Stud(x), !TA(x)",
			method: MethodHierarchical,
		},
	}
}

// prepareFixture builds the fixture's plan on a fresh engine.
func prepareFixture(t *testing.T, fx snapshotFixture) (*Engine, *Plan) {
	t.Helper()
	eng := NewEngine(fx.opts...)
	d := db.MustParse(fx.dbText)
	var (
		p   *Plan
		err error
	)
	if fx.cq != "" {
		p, err = eng.Prepare(context.Background(), d, query.MustParse(fx.cq))
	} else {
		p, err = eng.PrepareUCQ(context.Background(), d, query.MustParseUCQ(fx.ucq))
	}
	if err != nil {
		t.Fatalf("prepare %s: %v", fx.name, err)
	}
	if got := p.Method(); got != fx.method {
		t.Fatalf("%s: method %s, want %s", fx.name, got, fx.method)
	}
	return eng, p
}

// TestPlanExportImportRoundTrip pins that a snapshot exported in one
// engine and imported into another (fresh per-process seeds are exercised
// implicitly: the importer re-derives every label and key) yields
// bit-identical Shapley values on every preparation path of the
// dichotomy dispatch.
func TestPlanExportImportRoundTrip(t *testing.T) {
	for _, fx := range snapshotFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			_, p := prepareFixture(t, fx)
			want, err := p.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
			if err != nil {
				t.Fatalf("direct all: %v", err)
			}
			snap, err := p.Export()
			if err != nil {
				t.Fatalf("export: %v", err)
			}

			eng2 := NewEngine(fx.opts...)
			p2, err := eng2.ImportPlan(context.Background(), snap)
			if err != nil {
				t.Fatalf("import: %v", err)
			}
			if got := p2.Method(); got != fx.method {
				t.Fatalf("imported method %s, want %s", got, fx.method)
			}
			got, err := p2.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
			if err != nil {
				t.Fatalf("imported all: %v", err)
			}
			assertSameValues(t, "imported", got, want)
		})
	}
}

// TestPlanImportThenApply pins that an imported plan is a first-class
// Plan: an Apply against it behaves exactly like one against the
// original (same structure, same memo reuse), which would not hold if
// the injected vectors disagreed.
func TestPlanImportThenApply(t *testing.T) {
	for _, fx := range snapshotFixtures() {
		if fx.name == "empty" || fx.name == "brute" {
			continue // no tree to maintain
		}
		t.Run(fx.name, func(t *testing.T) {
			_, p := prepareFixture(t, fx)
			snap, err := p.Export()
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			eng2 := NewEngine(fx.opts...)
			p2, err := eng2.ImportPlan(context.Background(), snap)
			if err != nil {
				t.Fatalf("import: %v", err)
			}

			delta := db.Delta{
				AddEndo: []db.Fact{db.F("Extra", "e1")},
				AddExo:  []db.Fact{db.F("Extra2", "e2")},
			}
			if _, err := p.Apply(context.Background(), delta); err != nil {
				t.Fatalf("apply original: %v", err)
			}
			if v, err := p2.Apply(context.Background(), delta); err != nil {
				t.Fatalf("apply imported: %v", err)
			} else if v != 2 {
				t.Fatalf("imported version after apply = %d, want 2", v)
			}
			want, err := p.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
			if err != nil {
				t.Fatalf("original all: %v", err)
			}
			got, err := p2.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
			if err != nil {
				t.Fatalf("imported all: %v", err)
			}
			assertSameValues(t, "after apply", got, want)
		})
	}
}

// TestPlanImportDetectsTampering pins that structural disagreement
// between the snapshot payload and the replayed tree fails with
// ErrSnapshotMismatch instead of silently producing a wrong plan.
func TestPlanImportDetectsTampering(t *testing.T) {
	fx := snapshotFixtures()[0]
	_, p := prepareFixture(t, fx)

	tamper := []struct {
		name string
		mod  func(s *PlanSnapshot)
	}{
		{"relN", func(s *PlanSnapshot) { s.Root.RelN++ }},
		{"kind", func(s *PlanSnapshot) { s.Root.Kind ^= 1 }},
		{"children", func(s *PlanSnapshot) { s.Root.Children = s.Root.Children[:len(s.Root.Children)-1] }},
		{"query", func(s *PlanSnapshot) { s.Query = "q() :- Stud(x), Reg(x, y)" }},
		{"missing-root", func(s *PlanSnapshot) { s.Root = nil }},
		{"bad-db", func(s *PlanSnapshot) { s.DBText = "endo Broken(" }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			snap, err := p.Export() // fresh copy; mods mutate it freely
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			tc.mod(snap)
			if _, err := NewEngine().ImportPlan(context.Background(), snap); !errors.Is(err, ErrSnapshotMismatch) {
				t.Fatalf("import after %s tamper: err = %v, want ErrSnapshotMismatch", tc.name, err)
			}
		})
	}

	// Policy mismatch: importing under different exo declarations or a
	// different brute-force setting must refuse.
	t.Run("policy", func(t *testing.T) {
		snap, err := p.Export()
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		if _, err := NewEngine(WithExoRelations("Stud")).ImportPlan(context.Background(), snap); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("import under different exo: err = %v, want ErrSnapshotMismatch", err)
		}
		if _, err := NewEngine(WithBruteForce(true)).ImportPlan(context.Background(), snap); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("import under different brute policy: err = %v, want ErrSnapshotMismatch", err)
		}
	})
}

// TestPlanViewShapleySubset pins the batched single-fact path the cluster
// router's coalescing front rides on: a subset request returns the same
// values as the corresponding single-fact calls, in request order.
func TestPlanViewShapleySubset(t *testing.T) {
	for _, fx := range snapshotFixtures() {
		if fx.name == "empty" {
			continue
		}
		t.Run(fx.name, func(t *testing.T) {
			_, p := prepareFixture(t, fx)
			view := p.View()
			facts := view.Facts()
			// Reverse order: the subset answers in request order, not
			// snapshot order.
			rev := make([]db.Fact, len(facts))
			for i, f := range facts {
				rev[len(facts)-1-i] = f
			}
			got, err := view.ShapleySubset(context.Background(), rev, BatchOptions{Workers: 2})
			if err != nil {
				t.Fatalf("subset: %v", err)
			}
			if len(got) != len(rev) {
				t.Fatalf("subset returned %d values, want %d", len(got), len(rev))
			}
			for i, f := range rev {
				want, err := view.Shapley(context.Background(), f)
				if err != nil {
					t.Fatalf("single %s: %v", f, err)
				}
				if got[i].Fact.Key() != f.Key() || got[i].Value.Cmp(want.Value) != 0 || got[i].Method != want.Method {
					t.Fatalf("subset[%d] = %s %s, want %s %s",
						i, got[i].Fact, got[i].Value.RatString(), want.Fact, want.Value.RatString())
				}
			}

			// A non-endogenous fact fails the whole batch, like Shapley.
			if _, err := view.ShapleySubset(context.Background(), []db.Fact{db.F("Nope", "z")}, BatchOptions{}); err == nil {
				t.Fatal("subset with non-endogenous fact: no error")
			}
		})
	}
}
