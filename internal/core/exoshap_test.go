package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

func TestExoShapStagesExample42QPrime(t *testing.T) {
	// Figure 3: the pipeline on q' of Example 4.2.
	qp := query.MustParse("qp() :- U(t, r), !T(y), Q(y, w), !V(t), R(x, y), !S(x, z), O(z), P(u, y, w)")
	exo := map[string]bool{"R": true, "S": true, "O": true, "P": true}
	d := db.New()
	// Small instance over a 2-element domain.
	d.MustAddEndo(db.F("U", "a", "b"))
	d.MustAddEndo(db.F("T", "a"))
	d.MustAddEndo(db.F("Q", "a", "b"))
	d.MustAddEndo(db.F("V", "b"))
	d.MustAddExo(db.F("R", "a", "a"))
	d.MustAddExo(db.F("S", "a", "b"))
	d.MustAddExo(db.F("O", "b"))
	d.MustAddExo(db.F("P", "a", "a", "b"))

	d2, q2, stages, err := ExoShapTransform(d, qp, exo)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("got %d stages, want 4 (input + three steps)", len(stages))
	}
	if !q2.IsHierarchical() {
		t.Fatalf("ExoShap output not hierarchical: %s", q2)
	}
	// Endogenous facts must be untouched.
	if d2.NumEndo() != d.NumEndo() {
		t.Fatalf("endogenous facts changed: %d vs %d", d2.NumEndo(), d.NumEndo())
	}
	for _, f := range d.EndoFacts() {
		if !d2.IsEndogenous(f) {
			t.Fatalf("endogenous fact %s lost", f)
		}
	}
	// After step 1 no negated exogenous atoms remain; after step 3 every
	// exogenous atom's variables equal a covering non-exogenous atom's.
	step1 := stages[1].Query
	for _, a := range step1.Atoms {
		if a.Negated && exo[a.Rel] {
			t.Fatalf("negated exogenous atom survived step 1: %s", a)
		}
	}
}

// checkExoShapEquivalence verifies Shapley(D,q,f) = Shapley(D',q',f) for all
// endogenous facts via brute force on both sides.
func checkExoShapEquivalence(t *testing.T, d *db.Database, q *query.CQ, exo map[string]bool) {
	t.Helper()
	d2, q2, _, err := ExoShapTransform(d, q, exo)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if !q2.IsHierarchical() {
		t.Fatalf("%s: output %s not hierarchical", q, q2)
	}
	for _, f := range d.EndoFacts() {
		orig, err := BruteForceShapley(d, q, f)
		if err != nil {
			t.Fatal(err)
		}
		viaHier, err := ShapleyHierarchical(d2, q2, f)
		if err != nil {
			t.Fatalf("%s: transformed instance: %v", q, err)
		}
		if orig.Cmp(viaHier) != 0 {
			t.Fatalf("%s / %s: Shapley(%s) original %s != transformed %s\nDB:\n%s\nDB':\n%s",
				q, q2, f, orig.RatString(), viaHier.RatString(), d, d2)
		}
	}
}

func TestExoShapEquivalenceSection41Q(t *testing.T) {
	q := query.MustParse("q() :- !R(x, w), S(z, x), !P(z, w), T(y, w)")
	exo := map[string]bool{"S": true, "P": true}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		d := randomInstance(rng, q, 2, 3, exo)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		checkExoShapEquivalence(t, d, q, exo)
	}
}

func TestExoShapEquivalenceQ2(t *testing.T) {
	q2 := query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	exo := map[string]bool{"Stud": true, "Course": true}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		d := randomInstance(rng, q2, 3, 3, exo)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		checkExoShapEquivalence(t, d, q2, exo)
	}
	// And on the running example itself.
	checkExoShapEquivalence(t, runningExample(), q2, exo)
}

func TestExoShapEquivalenceExample41(t *testing.T) {
	// Author(x,y), Pub(x,z), Citations(z,w) with Pub, Citations exogenous.
	q := query.MustParse("q() :- Author(x, y), Pub(x, z), Citations(z, w)")
	exo := map[string]bool{"Pub": true, "Citations": true}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		d := randomInstance(rng, q, 3, 3, exo)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		checkExoShapEquivalence(t, d, q, exo)
	}
}

func TestExoShapEquivalenceCitationsOnly(t *testing.T) {
	// Example 4.1's second claim: exogenous Citations alone already makes
	// the query tractable.
	q := query.MustParse("q() :- Author(x, y), Pub(x, z), Citations(z, w)")
	exo := map[string]bool{"Citations": true}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		d := randomInstance(rng, q, 2, 3, exo)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		checkExoShapEquivalence(t, d, q, exo)
	}
}

func TestExoShapEquivalenceExample42QPrime(t *testing.T) {
	qp := query.MustParse("qp() :- U(t, r), !T(y), Q(y, w), !V(t), R(x, y), !S(x, z), O(z), P(u, y, w)")
	exo := map[string]bool{"R": true, "S": true, "O": true, "P": true}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		d := randomInstance(rng, qp, 2, 2, exo)
		if d.NumEndo() == 0 || d.NumEndo() > 8 {
			continue
		}
		checkExoShapEquivalence(t, d, qp, exo)
	}
}

func TestExoShapRejectsNonHierPath(t *testing.T) {
	qp := query.MustParse("qp() :- !R(x, w), S(z, x), !P(z, y), T(y, w)")
	exo := map[string]bool{"S": true, "P": true}
	d := db.New()
	d.MustAddEndo(db.F("R", "a", "b"))
	d.MustAddEndo(db.F("T", "a", "b"))
	d.MustAddExo(db.F("S", "a", "b"))
	d.MustAddExo(db.F("P", "a", "b"))
	if _, _, _, err := ExoShapTransform(d, qp, exo); !errors.Is(err, ErrIntractable) {
		t.Fatalf("want ErrIntractable for §4.1 q', got %v", err)
	}
}

func TestExoShapRejectsSelfJoin(t *testing.T) {
	q := query.MustParse("q() :- R(x), S(x, y), !R(y)")
	d := db.New()
	d.MustAddEndo(db.F("R", "a"))
	d.MustAddExo(db.F("S", "a", "b"))
	if _, _, _, err := ExoShapTransform(d, q, map[string]bool{"S": true}); !errors.Is(err, ErrNotSelfJoinFree) {
		t.Fatalf("want ErrNotSelfJoinFree, got %v", err)
	}
}

func TestExoShapRejectsEndogenousFactsInExoRelation(t *testing.T) {
	q := query.MustParse("q() :- Author(x, y), Pub(x, z)")
	d := db.New()
	d.MustAddEndo(db.F("Author", "a", "b"))
	d.MustAddEndo(db.F("Pub", "a", "c")) // violates the declaration
	if _, _, _, err := ExoShapTransform(d, q, map[string]bool{"Pub": true}); !errors.Is(err, ErrExoViolated) {
		t.Fatalf("want ErrExoViolated, got %v", err)
	}
}

func TestExoShapRejectsAllExogenousQuery(t *testing.T) {
	q := query.MustParse("q() :- Pub(x, z)")
	d := db.New()
	d.MustAddExo(db.F("Pub", "a", "c"))
	if _, _, _, err := ExoShapTransform(d, q, map[string]bool{"Pub": true}); err == nil {
		t.Fatal("want error for all-exogenous query")
	}
}

func TestExoShapHierarchicalInputIsStable(t *testing.T) {
	// A hierarchical query without exogenous relations passes through with
	// the same answers (no components, no padding).
	d := runningExample()
	d2, q2, _, err := ExoShapTransform(d, q1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range d.EndoFacts() {
		a, err := ShapleyHierarchical(d, q1, f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ShapleyHierarchical(d2, q2, f)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cmp(b) != 0 {
			t.Fatalf("pass-through changed Shapley(%s): %s vs %s", f, a.RatString(), b.RatString())
		}
	}
}

func TestFreshRelAvoidsClashes(t *testing.T) {
	d := db.New()
	d.MustAddExo(db.F("R_c", "a"))
	q := query.MustParse("q() :- R_c(x), Z(x)")
	name := freshRel(d, q, "R_c")
	if name == "R_c" || name == "" {
		t.Fatalf("freshRel returned clashing name %q", name)
	}
}

func TestForEachTuple(t *testing.T) {
	dom := []db.Const{"a", "b"}
	var got [][]db.Const
	forEachTuple(dom, 2, func(t []db.Const) {
		got = append(got, append([]db.Const(nil), t...))
	})
	if len(got) != 4 {
		t.Fatalf("got %d tuples, want 4", len(got))
	}
	n := 0
	forEachTuple(dom, 0, func(t []db.Const) { n++ })
	if n != 1 {
		t.Fatalf("dom^0 should have exactly one (empty) tuple, got %d", n)
	}
	n = 0
	forEachTuple(nil, 2, func(t []db.Const) { n++ })
	if n != 0 {
		t.Fatalf("empty domain with k>0 should yield nothing, got %d", n)
	}
}
