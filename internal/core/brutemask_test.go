package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestBruteForceMaskRangeDifferential: the parallel mask-range split must
// be bit-identical to the sequential shared-cache scan, across random
// queries (including self-joins, which only brute force handles) and
// worker counts exceeding both fact count and chunk count.
func TestBruteForceMaskRangeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	queries := []query.BooleanQuery{
		paperex.Q1(),
		paperex.Q3(), // self-join
		paperex.QRST(),
		query.MustParseUCQ("a() :- R(x), !S(x) | b() :- S(x)"),
	}
	for trial := 0; trial < 12; trial++ {
		q := queries[trial%len(queries)]
		var d *db.Database
		if cq, ok := q.(*query.CQ); ok {
			d = workload.RandomForQuery(rng, cq, 2, 2, nil, 0.7)
		} else {
			d = db.New()
			for _, rel := range []string{"R", "S"} {
				for _, c := range []string{"a", "b", "c"} {
					if rng.Float64() < 0.7 {
						d.MustAdd(db.F(rel, c), rng.Float64() < 0.8)
					}
				}
			}
		}
		if d.NumEndo() == 0 || d.NumEndo() > 10 {
			continue
		}
		want, err := BruteForceShapleyAll(context.Background(), d, q)
		if err != nil {
			t.Fatalf("sequential: %v\nDB:\n%s", err, d)
		}
		for _, workers := range []int{2, 3, 16} {
			got, err := BruteForceShapleyAllWorkers(context.Background(), d, q, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v\nDB:\n%s", workers, err, d)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d: %d values, want %d", workers, len(got), len(want))
			}
			for i := range want {
				if got[i].Fact.Key() != want[i].Fact.Key() || got[i].Value.Cmp(want[i].Value) != 0 {
					t.Fatalf("workers=%d: %s = %s, want %s = %s\nDB:\n%s", workers,
						got[i].Fact, got[i].Value.RatString(), want[i].Fact, want[i].Value.RatString(), d)
				}
			}
		}
	}
}

// TestBruteForceMaskRangeCancellation: a cancelled context aborts the
// mask-range scan between chunks.
func TestBruteForceMaskRangeCancellation(t *testing.T) {
	d := db.New()
	for i := 0; i < 18; i++ {
		d.MustAddEndo(db.F("R", string(rune('a'+i))))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := bruteForceShapleyAll(ctx, d, query.MustParse("q() :- R(x)"), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestBruteForceMaskRangeLimit: the player bound applies on the parallel
// path exactly as on the sequential one.
func TestBruteForceMaskRangeLimit(t *testing.T) {
	d := db.New()
	for i := 0; i < maxBruteForcePlayers+1; i++ {
		d.MustAddEndo(db.F("R", string(rune('a'+i))))
	}
	if _, err := BruteForceShapleyAllWorkers(context.Background(), d, query.MustParse("q() :- R(x)"), 4); err == nil {
		t.Fatal("want player-limit error")
	}
}
