package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/db"
	"repro/internal/query"
)

// MCResult is the outcome of a Monte-Carlo Shapley estimation.
type MCResult struct {
	Estimate float64
	Samples  int
}

// HoeffdingSamples returns the number of random permutations sufficient for
// an additive (ε, δ)-approximation of the Shapley value. The per-permutation
// marginal contribution lies in [−1, 1], so Hoeffding's inequality gives
// P(|estimate − value| ≥ ε) ≤ 2·exp(−n·ε²/2); solving for n yields
// n = ⌈2·ln(2/δ)/ε²⌉ (the O(log(1/δ)/ε²) bound of §5.1).
func HoeffdingSamples(eps, delta float64) (int, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("core: ε and δ must lie in (0,1); got ε=%v δ=%v", eps, delta)
	}
	return int(math.Ceil(2 * math.Log(2/delta) / (eps * eps))), nil
}

// MonteCarloShapley estimates Shapley(D, q, f) within additive error ε with
// probability at least 1−δ, by averaging the marginal contribution of f over
// random permutations of the endogenous facts (the additive FPRAS of §5.1,
// which applies verbatim to CQ¬s and UCQ¬s: the per-permutation contribution
// is a random variable in {−1, 0, 1}).
//
// The paper's Theorem 5.1 explains why this is NOT a multiplicative FPRAS
// once negation is present: the value can be exponentially small while
// nonzero, so distinguishing it from zero needs exponentially many samples.
func MonteCarloShapley(d *db.Database, q query.BooleanQuery, f db.Fact, eps, delta float64, rng *rand.Rand) (MCResult, error) {
	n, err := HoeffdingSamples(eps, delta)
	if err != nil {
		return MCResult{}, err
	}
	return MonteCarloShapleyN(d, q, f, n, rng)
}

// MonteCarloShapleyN estimates Shapley(D, q, f) from exactly samples random
// permutations.
func MonteCarloShapleyN(d *db.Database, q query.BooleanQuery, f db.Fact, samples int, rng *rand.Rand) (MCResult, error) {
	if !d.IsEndogenous(f) {
		return MCResult{}, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	if samples <= 0 {
		return MCResult{}, fmt.Errorf("core: sample count must be positive, got %d", samples)
	}
	if rng == nil {
		return MCResult{}, fmt.Errorf("core: nil random source")
	}
	endo := d.EndoFacts()
	fi := -1
	for i, e := range endo {
		if e.Key() == f.Key() {
			fi = i
			break
		}
	}
	if fi < 0 {
		return MCResult{}, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	exoBase := d.Restrict(func(_ db.Fact, endogenous bool) bool { return !endogenous })

	sum := 0
	for s := 0; s < samples; s++ {
		perm := rng.Perm(len(endo))
		prefix := exoBase.Clone()
		for _, p := range perm {
			if p == fi {
				break
			}
			prefix.MustAddEndo(endo[p])
		}
		without := q.Eval(prefix)
		prefix.MustAddEndo(endo[fi])
		with := q.Eval(prefix)
		switch {
		case with && !without:
			sum++
		case !with && without:
			sum--
		}
	}
	return MCResult{Estimate: float64(sum) / float64(samples), Samples: samples}, nil
}
