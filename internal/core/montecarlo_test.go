package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

func TestHoeffdingSamplesFormula(t *testing.T) {
	n, err := HoeffdingSamples(0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(2 * math.Log(2/0.05) / 0.01))
	if n != want {
		t.Fatalf("HoeffdingSamples(0.1, 0.05) = %d, want %d", n, want)
	}
	// Monotone: tighter ε needs more samples.
	n2, _ := HoeffdingSamples(0.05, 0.05)
	if n2 <= n {
		t.Fatalf("halving ε should raise the sample count: %d vs %d", n2, n)
	}
	for _, c := range []struct{ e, d float64 }{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-1, 0.5}} {
		if _, err := HoeffdingSamples(c.e, c.d); err == nil {
			t.Errorf("HoeffdingSamples(%v,%v) should fail", c.e, c.d)
		}
	}
}

func TestMonteCarloConvergesOnRunningExample(t *testing.T) {
	d := runningExample()
	rng := rand.New(rand.NewSource(42))
	f := db.F("TA", "Adam") // exact value −3/28 ≈ −0.1071
	res, err := MonteCarloShapleyN(d, q1, f, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact := -3.0 / 28.0
	if math.Abs(res.Estimate-exact) > 0.04 {
		t.Fatalf("estimate %.4f too far from exact %.4f", res.Estimate, exact)
	}
	if res.Samples != 4000 {
		t.Fatalf("samples = %d", res.Samples)
	}
}

func TestMonteCarloEpsDelta(t *testing.T) {
	d := runningExample()
	rng := rand.New(rand.NewSource(7))
	f := db.F("Reg", "Caroline", "DB") // exact 13/42 ≈ 0.3095
	res, err := MonteCarloShapley(d, q1, f, 0.15, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-13.0/42.0) > 0.15 {
		t.Fatalf("estimate %.4f outside ε=0.15 of 13/42", res.Estimate)
	}
	want, _ := HoeffdingSamples(0.15, 0.1)
	if res.Samples != want {
		t.Fatalf("samples = %d, want %d", res.Samples, want)
	}
}

func TestMonteCarloZeroFact(t *testing.T) {
	// TA(David) has Shapley value exactly 0; every sampled contribution is 0.
	d := runningExample()
	rng := rand.New(rand.NewSource(1))
	res, err := MonteCarloShapleyN(d, q1, db.F("TA", "David"), 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("estimate = %v, want exactly 0", res.Estimate)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	d := runningExample()
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarloShapleyN(d, q1, db.F("Stud", "Adam"), 10, rng); err == nil {
		t.Fatal("exogenous fact accepted")
	}
	if _, err := MonteCarloShapleyN(d, q1, db.F("TA", "Adam"), 0, rng); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := MonteCarloShapleyN(d, q1, db.F("TA", "Adam"), 10, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestMonteCarloNegationBothDirections(t *testing.T) {
	// With self-joins and negation a fact can contribute in both directions
	// (Example 5.3); the estimator must average them to ~0.
	q := query.MustParse("q() :- R(x, y), !R(y, x)")
	d := db.New()
	d.MustAddEndo(db.F("R", "1", "2"))
	d.MustAddEndo(db.F("R", "2", "1"))
	rng := rand.New(rand.NewSource(9))
	res, err := MonteCarloShapleyN(d, q, db.F("R", "1", "2"), 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate) > 0.05 {
		t.Fatalf("estimate %.4f should be near 0", res.Estimate)
	}
}
