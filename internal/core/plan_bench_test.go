package core

import (
	"context"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/workload"
)

// BenchmarkPlanApplyDelta measures the tentpole claim: maintaining a Plan
// under a single-fact delta (content-keyed bucket reuse) against paying a
// full re-preparation of the post-delta database, on the 94-endogenous-fact
// university workload. The values are asserted bit-identical first.
func BenchmarkPlanApplyDelta(b *testing.B) {
	d := workload.University(workload.UniversityConfig{
		Students: 40, Courses: 8, RegPerStudent: 2, TAFraction: 0.4, Seed: 7,
	})
	q := paperex.Q1()
	eng := NewEngine()
	ctx := context.Background()

	newFact := db.F("Reg", "student-delta", "course-delta")
	add := db.Delta{AddEndo: []db.Fact{newFact}}
	remove := db.Delta{Remove: []db.Fact{newFact}}

	// Correctness gate: one add/remove round-trip must be bit-identical to
	// fresh preparation at both versions.
	plan, err := eng.Prepare(ctx, d, q)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := plan.Apply(ctx, add); err != nil {
		b.Fatal(err)
	}
	got, err := plan.ShapleyAll(ctx, BatchOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	fresh, err := eng.Prepare(ctx, plan.Snapshot(), q)
	if err != nil {
		b.Fatal(err)
	}
	want, err := fresh.ShapleyAll(ctx, BatchOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if len(got) != len(want) {
		b.Fatalf("%d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Fact.Key() != want[i].Fact.Key() || got[i].Value.Cmp(want[i].Value) != 0 {
			b.Fatalf("delta batch diverges at %s", want[i].Fact)
		}
	}
	if _, err := plan.Apply(ctx, remove); err != nil {
		b.Fatal(err)
	}

	b.Run("apply-delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Apply(ctx, add); err != nil {
				b.Fatal(err)
			}
			if _, err := plan.Apply(ctx, remove); err != nil {
				b.Fatal(err)
			}
		}
	})
	dPlus, err := d.Apply(add)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh-prepare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Prepare(ctx, dPlus, q); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Prepare(ctx, d, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
