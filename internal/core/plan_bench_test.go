package core

import (
	"context"
	"testing"

	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

// BenchmarkPlanApplyDelta measures the tentpole claim: maintaining a Plan
// under a single-fact delta (content-keyed bucket reuse) against paying a
// full re-preparation of the post-delta database, on the 94-endogenous-fact
// university workload. The values are asserted bit-identical first.
func BenchmarkPlanApplyDelta(b *testing.B) {
	d := workload.University(workload.UniversityConfig{
		Students: 40, Courses: 8, RegPerStudent: 2, TAFraction: 0.4, Seed: 7,
	})
	q := paperex.Q1()
	eng := NewEngine()
	ctx := context.Background()

	newFact := db.F("Reg", "student-delta", "course-delta")
	add := db.Delta{AddEndo: []db.Fact{newFact}}
	remove := db.Delta{Remove: []db.Fact{newFact}}

	// Correctness gate: one add/remove round-trip must be bit-identical to
	// fresh preparation at both versions.
	plan, err := eng.Prepare(ctx, d, q)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := plan.Apply(ctx, add); err != nil {
		b.Fatal(err)
	}
	got, err := plan.ShapleyAll(ctx, BatchOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	fresh, err := eng.Prepare(ctx, plan.Snapshot(), q)
	if err != nil {
		b.Fatal(err)
	}
	want, err := fresh.ShapleyAll(ctx, BatchOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if len(got) != len(want) {
		b.Fatalf("%d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Fact.Key() != want[i].Fact.Key() || got[i].Value.Cmp(want[i].Value) != 0 {
			b.Fatalf("delta batch diverges at %s", want[i].Fact)
		}
	}
	if _, err := plan.Apply(ctx, remove); err != nil {
		b.Fatal(err)
	}

	b.Run("apply-delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Apply(ctx, add); err != nil {
				b.Fatal(err)
			}
			if _, err := plan.Apply(ctx, remove); err != nil {
				b.Fatal(err)
			}
		}
	})
	dPlus, err := d.Apply(add)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh-prepare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Prepare(ctx, dPlus, q); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Prepare(ctx, d, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanApplyDeepDelta measures what the DP-tree IR buys over the
// previous engine's top-level-only reuse: a delta confined to one
// sub-bucket (a single registration of one student, two levels below the
// plan's top x-bucket) on a 94-endogenous-fact university workload whose
// weight sits inside few heavy buckets. "deep-reuse" is the normal Apply
// (only the touched root-to-leaf spine is rebuilt; untouched course
// leaves and the sibling student's whole subtree hit the memo);
// "root-bucket-recompute" emulates the pre-tree engine by restricting the
// memo to the top decomposition level, so the touched student's entire
// bucket DP is recomputed from scratch. Values are asserted bit-identical
// to a fresh preparation before timing.
func BenchmarkPlanApplyDeepDelta(b *testing.B) {
	cfg := workload.UniversityConfig{
		Students: 2, Courses: 46, RegPerStudent: 46, TAFraction: 1, Seed: 7,
	}
	d := workload.University(cfg)
	q := paperex.Q1()
	eng := NewEngine()
	ctx := context.Background()
	if n := d.NumEndo(); n != 94 {
		b.Fatalf("workload has %d endogenous facts, want 94", n)
	}

	newFact := db.F("Reg", "S0", "C-delta")
	add := db.Delta{AddEndo: []db.Fact{newFact}}
	remove := db.Delta{Remove: []db.Fact{newFact}}

	prepare := func(shallow bool) *Plan {
		plan, err := eng.Prepare(ctx, d, q)
		if err != nil {
			b.Fatal(err)
		}
		plan.memo.shallow = shallow
		return plan
	}

	// Correctness gate: one add/remove round-trip must be bit-identical to
	// fresh preparation, in both modes.
	for _, shallow := range []bool{false, true} {
		plan := prepare(shallow)
		if _, err := plan.Apply(ctx, add); err != nil {
			b.Fatal(err)
		}
		got, err := plan.ShapleyAll(ctx, BatchOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		fresh, err := eng.Prepare(ctx, plan.Snapshot(), q)
		if err != nil {
			b.Fatal(err)
		}
		want, err := fresh.ShapleyAll(ctx, BatchOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(want) {
			b.Fatalf("%d values, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Fact.Key() != want[i].Fact.Key() || got[i].Value.Cmp(want[i].Value) != 0 {
				b.Fatalf("shallow=%v: deep-delta batch diverges at %s", shallow, want[i].Fact)
			}
		}
	}

	bench := func(shallow bool) func(*testing.B) {
		return func(b *testing.B) {
			plan := prepare(shallow)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Apply(ctx, add); err != nil {
					b.Fatal(err)
				}
				if _, err := plan.Apply(ctx, remove); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("apply/deep-reuse", bench(false))
	b.Run("apply/root-bucket-recompute", bench(true))

	// The recompute of the touched bucket itself, isolated from the plan
	// maintenance both engines share (snapshot apply, re-partition, root
	// product): "spine-rebuild" is the tree route — every sub-bucket the
	// delta leaves untouched hits the content-addressed memo — while
	// "from-scratch" is the pre-tree engine's unit recompute, the full
	// reference recursion over the bucket. This pair is the direct measure
	// of the deep-reuse claim.
	plan := prepare(false)
	root := plan.pb.ctx.root
	bi, ok := indexOfValue(root.values, "S0")
	if !ok {
		b.Fatal("no bucket for student S0")
	}
	prevChild := root.children[bi]
	atomOf := make(map[string]query.Atom, len(q.Atoms))
	for _, a := range q.Atoms {
		atomOf[a.Rel] = a
	}
	var bucketFacts []*taggedFact
	for _, ff := range factPtrs(plan.d) {
		a, in := atomOf[ff.Fact.Rel]
		if in && query.MatchesAtom(a, ff.Fact) && ff.Fact.Args[root.shape.posOf[ff.Fact.Rel]] == "S0" {
			bucketFacts = append(bucketFacts, ff)
		}
	}
	newFlagged := db.MakeFlaggedFact(newFact, true)
	bucketFacts = append(bucketFacts, &newFlagged)
	bucketQ := q.SubstituteVar(root.shape.rootVar, "S0")

	b.Run("touched-bucket/spine-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh fork per iteration: the post-delta spine nodes are
			// genuinely absent (the plan is pre-delta), everything below
			// them hits.
			bld := &treeBuilder{memo: plan.memo.fork()}
			if _, err := bld.build(nil, prevChild.shape, prevChild.label, bucketFacts, nil, true, prevChild, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("touched-bucket/from-scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sat, err := cntSat(dbOf(bucketFacts), bucketQ)
			if err != nil {
				b.Fatal(err)
			}
			numeric.Complement(sat, prevChild.endo+1)
		}
	})
}
