package core

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// The polynomial algorithm must handle instances three orders of magnitude
// beyond the brute-force horizon. This is the "shape" claim of Theorem 3.1:
// hierarchical queries scale, non-hierarchical ones do not.
func TestHierarchicalScalesToLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("large-instance scaling test skipped with -short")
	}
	d := workload.University(workload.UniversityConfig{
		Students: 400, Courses: 20, RegPerStudent: 3, TAFraction: 0.4, Seed: 99,
	})
	m := d.NumEndo()
	if m < 1000 {
		t.Fatalf("instance too small: %d endogenous facts", m)
	}
	f := d.EndoFacts()[0]
	start := time.Now()
	v, err := ShapleyHierarchical(d, q1, f)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Minute {
		t.Fatalf("polynomial algorithm too slow at m=%d: %v", m, elapsed)
	}
	if v.Denom().Sign() == 0 {
		t.Fatal("degenerate value")
	}
	// Sanity: a Reg fact's value is non-negative, a TA fact's non-positive.
	switch f.Rel {
	case "Reg":
		if v.Sign() < 0 {
			t.Fatalf("Reg fact with negative value %s", v.RatString())
		}
	case "TA":
		if v.Sign() > 0 {
			t.Fatalf("TA fact with positive value %s", v.RatString())
		}
	}
	t.Logf("m=%d endogenous facts: Shapley(%s) computed in %v", m, f, elapsed)
}
