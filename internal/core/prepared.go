package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/query"
)

// PreparedBatch is a reusable handle over everything in a Shapley
// computation that does not depend on which fact is queried: the validated
// query, the Classification, the ExoShap transformation (when the dichotomy
// requires it) and the shared CntSat dynamic-programming tables
// (satCountContext). Preparing once and serving many per-fact or all-facts
// requests from the same handle is what lets a long-lived server amortize
// the fact-independent setup across requests.
//
// A PreparedBatch is immutable after construction and safe for concurrent
// use. It snapshots the database it was prepared against: mutating or
// re-parsing the database afterwards does not invalidate the handle, it
// simply answers for the snapshot.
type PreparedBatch struct {
	class  Classification
	method Method
	facts  []db.Fact // d.EndoFacts() order

	// Tractable CQ path (hierarchical directly, or after ExoShap).
	ctx *satCountContext

	// Tractable UCQ path (relation-disjoint union of hierarchical CQ¬s).
	uctx *ucqSatContext

	// Brute-force fallback (AllowBruteForce on an intractable query). The
	// database is a clone, honoring the snapshot semantics above.
	bruteDB *db.Database
	bruteQ  query.BooleanQuery

	// empty marks a snapshot with no endogenous facts: ShapleyAll returns
	// the empty batch without touching any algorithm (matching
	// ShapleyAllBatch's historical short-circuit, which applied even to
	// queries on the intractable side of the dichotomy).
	empty bool
}

// Classification reports where the prepared query fell in the dichotomies.
// For a UCQ prepared via PrepareAllUCQ the CQ-specific fields summarize the
// disjuncts (SelfJoinFree/Hierarchical hold iff they hold for every
// disjunct).
func (p *PreparedBatch) Classification() Classification { return p.class }

// Method reports which algorithm the handle will use.
func (p *PreparedBatch) Method() Method { return p.method }

// Facts returns the endogenous facts of the prepared snapshot, in the
// deterministic order ShapleyAll results follow.
func (p *PreparedBatch) Facts() []db.Fact { return append([]db.Fact(nil), p.facts...) }

// NumFacts returns the number of endogenous facts in the snapshot.
func (p *PreparedBatch) NumFacts() int { return len(p.facts) }

// Shapley computes the value of a single endogenous fact, reusing the
// prepared tables. It is bit-for-bit identical to Solver.Shapley on the
// prepared database and query.
//
// Deprecated-style shim: new code should hold a Plan and call
// Plan.Shapley (or PlanView.Shapley), which additionally accepts a
// context for cancellation and tracing; this method runs untraced.
//
//repolint:allow ctxflow: documented uncancellable compatibility shim, kept until PreparedBatch callers migrate to Plan
func (p *PreparedBatch) Shapley(f db.Fact) (*ShapleyValue, error) {
	return p.shapleyOne(context.Background(), f)
}

// shapleyOne is the context-aware single-fact engine shared by the
// deprecated PreparedBatch.Shapley shim and PlanView.Shapley.
func (p *PreparedBatch) shapleyOne(ctx context.Context, f db.Fact) (*ShapleyValue, error) {
	switch {
	case p.empty:
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	case p.ctx != nil:
		v, err := p.ctx.shapley(ctx, f)
		if err != nil {
			return nil, err
		}
		return &ShapleyValue{Fact: f, Value: v, Method: p.method}, nil
	case p.uctx != nil:
		v, err := p.uctx.shapley(ctx, f)
		if err != nil {
			return nil, err
		}
		return &ShapleyValue{Fact: f, Value: v, Method: p.method}, nil
	default:
		_, sp := obs.Start(ctx, "brute.force")
		v, err := BruteForceShapley(p.bruteDB, p.bruteQ, f)
		sp.End()
		if err != nil {
			return nil, err
		}
		return &ShapleyValue{Fact: f, Value: v, Method: MethodBruteForce}, nil
	}
}

// ShapleyAll computes the value of every endogenous fact of the prepared
// snapshot, fanning the per-fact work across opts.Workers goroutines.
// Results are in Facts() order and identical to Solver.ShapleyAll.
//
// Deprecated-style shim: new code should hold a Plan (Engine.Prepare) and
// call Plan.ShapleyAll, which additionally accepts a context for
// cancellation; this method runs uncancellably.
//
//repolint:allow ctxflow: documented uncancellable compatibility shim, kept until PreparedBatch callers migrate to Plan
func (p *PreparedBatch) ShapleyAll(opts BatchOptions) ([]*ShapleyValue, error) {
	return p.shapleyAll(context.Background(), opts)
}

// shapleyAll is the context-aware batch engine shared by the deprecated
// PreparedBatch.ShapleyAll shim and Plan.ShapleyAll.
func (p *PreparedBatch) shapleyAll(ctx context.Context, opts BatchOptions) ([]*ShapleyValue, error) {
	switch {
	case p.empty:
		return []*ShapleyValue{}, nil
	case p.ctx != nil:
		return runFactPool(ctx, p.facts, opts, p.method, p.ctx.shapley)
	case p.uctx != nil:
		return runFactPool(ctx, p.facts, opts, p.method, p.uctx.shapley)
	default:
		bctx, sp := obs.Start(ctx, "brute.force")
		vals, err := bruteForceShapleyAll(bctx, p.bruteDB, p.bruteQ, opts.Workers)
		sp.End()
		if err != nil {
			return nil, err
		}
		if opts.OnResult != nil {
			for _, v := range vals {
				opts.OnResult(v)
			}
		}
		return vals, nil
	}
}

// shapleySubset computes the values of an explicit fact list, in order,
// through the same worker pool as shapleyAll. Facts that are not
// endogenous in the prepared snapshot fail with ErrNotEndogenous, exactly
// as in shapleyOne.
func (p *PreparedBatch) shapleySubset(ctx context.Context, facts []db.Fact, opts BatchOptions) ([]*ShapleyValue, error) {
	switch {
	case p.empty:
		if len(facts) == 0 {
			return []*ShapleyValue{}, nil
		}
		return nil, fmt.Errorf("%s: %w: %s", facts[0], ErrNotEndogenous, facts[0])
	case p.ctx != nil:
		return runFactPool(ctx, facts, opts, p.method, p.ctx.shapley)
	case p.uctx != nil:
		return runFactPool(ctx, facts, opts, p.method, p.uctx.shapley)
	default:
		return runFactPool(ctx, facts, opts, MethodBruteForce, func(ctx context.Context, f db.Fact) (*big.Rat, error) {
			_, sp := obs.Start(ctx, "brute.force")
			defer sp.End()
			return BruteForceShapley(p.bruteDB, p.bruteQ, f)
		})
	}
}

// PrepareAll validates, classifies and precomputes the shared state for
// Shapley computation of q over d, returning a reusable handle. The
// returned PreparedBatch serves any number of Shapley / ShapleyAll calls
// without re-running validation, classification, ExoShap or the
// fact-independent CntSat tables. Queries on the intractable side of the
// dichotomy yield ErrIntractable unless s.AllowBruteForce is set.
//
// Deprecated-style shim: new code should use Engine.Prepare, whose Plan
// handle additionally supports context cancellation and incremental
// maintenance under database deltas (Plan.Apply); this method is kept as a
// thin wrapper over the same preparation path.
func (s *Solver) PrepareAll(d *db.Database, q *query.CQ) (*PreparedBatch, error) {
	// Clone: the prepared state retains the snapshot, and the handle's
	// contract is that later mutations of d do not affect it.
	return prepareCQ(d.Clone(), q, s.ExoRelations, s.AllowBruteForce, prepExtras{})
}

// PrepareAllUCQ is PrepareAll for a union of CQ¬s. The exact algorithm
// requires the disjuncts to be hierarchical, self-join-free and pairwise
// relation-disjoint; other unions fall back to brute force when
// s.AllowBruteForce is set and fail with the structural error otherwise.
//
// Deprecated-style shim: new code should use Engine.PrepareUCQ (see
// PrepareAll).
func (s *Solver) PrepareAllUCQ(d *db.Database, u *query.UCQ) (*PreparedBatch, error) {
	return prepareUCQ(d.Clone(), u, s.ExoRelations, s.AllowBruteForce, prepExtras{})
}

// prepExtras carries the optional incremental-maintenance inputs into the
// preparation path: the content-addressed node memo and — when rebuilding
// after Plan.Apply or seeding from a sibling plan — the previous state
// whose DP-tree guides the construction. No delta is needed: reuse is
// decided per subtree by content hash, so any unchanged subtree is found
// regardless of how the snapshots differ. The zero value means a cold
// from-scratch preparation.
type prepExtras struct {
	memo *satMemo
	prev *PreparedBatch

	// cfg carries the resolved DP-tree builder tuning: concurrency (see
	// WithPrepareParallelism), the spawn-cost threshold driving token
	// fan-out (WithSpawnCost) and the engine's scratch pool. The zero
	// value builds sequentially without recycling.
	cfg buildConfig
}

func (ex prepExtras) prevCtx() *satCountContext {
	if ex.prev == nil {
		return nil
	}
	return ex.prev.ctx
}

func (ex prepExtras) prevUCtx() *ucqSatContext {
	if ex.prev == nil {
		return nil
	}
	return ex.prev.uctx
}

// buildStats reports the memo traffic of the construction that produced
// this state (zero for brute-force and empty-snapshot handles).
func (p *PreparedBatch) buildStats() BuildStats {
	switch {
	case p.ctx != nil:
		return p.ctx.build
	case p.uctx != nil:
		return p.uctx.build
	}
	return BuildStats{}
}

// treeRoot returns the DP-tree root behind this state, or nil when the
// handle has none (brute force, empty snapshot).
func (p *PreparedBatch) treeRoot() *dpNode {
	switch {
	case p.ctx != nil:
		return p.ctx.root
	case p.uctx != nil:
		return p.uctx.root
	}
	return nil
}

// checkExoRelations verifies that every relation declared exogenous holds
// no endogenous facts in d.
func checkExoRelations(d *db.Database, exo map[string]bool) error {
	for rel := range exo {
		if d.RelationEndogenous(rel) {
			return fmt.Errorf("%w: %s", ErrExoViolated, rel)
		}
	}
	return nil
}

// prepareCQ is the preparation path shared by Solver.PrepareAll (nil memo)
// and Engine.Prepare / Plan.Apply (generational memo): validation,
// classification, dichotomy dispatch and construction of the shared CntSat
// tables.
func prepareCQ(d *db.Database, q *query.CQ, exo map[string]bool, brute bool, ex prepExtras) (*PreparedBatch, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := checkExoRelations(d, exo); err != nil {
		return nil, err
	}
	c := Classify(q, exo)
	p := &PreparedBatch{class: c, facts: d.EndoFacts()}
	if len(p.facts) == 0 {
		p.empty, p.method = true, MethodHierarchical
		return p, nil
	}
	switch {
	case c.SelfJoinFree && c.Hierarchical:
		ctx, err := newSatCountContext(d, q, nil, ex.memo, ex.prevCtx(), ex.cfg)
		if err != nil {
			return nil, err
		}
		p.ctx, p.method = ctx, MethodHierarchical
	case c.SelfJoinFree && !c.HasNonHierPath:
		ctx, err := prepareExoShap(d, q, exo, ex)
		if err != nil {
			return nil, err
		}
		p.ctx, p.method = ctx, MethodExoShap
	case brute:
		p.bruteDB, p.bruteQ, p.method = d.Clone(), q, MethodBruteForce
	default:
		return nil, ErrIntractable
	}
	return p, nil
}

// prepareExoShap runs the ExoShap arm of the dichotomy: the indexed
// transform (implicit complements, lazy Step-3 padding; see
// exoshap_indexed.go) unless shallow emulation is on — shallow units
// recompute sub-instances with the reference recursion, which cannot see
// lazily padded relations — or the instance needs padding without a
// positive covering atom, in which case the dense transform is the exact
// (if slower) fallback. The transformed query is rebuilt per version;
// since the rebuild is deterministic, the previous version's tree still
// matches by content and every subtree the transform leaves unchanged is
// reused through the memo — and each version makes the same
// dense-vs-indexed choice, so pad state never needs to be carried over.
func prepareExoShap(d *db.Database, q *query.CQ, exo map[string]bool, ex prepExtras) (*satCountContext, error) {
	if ex.memo == nil || !ex.memo.shallow {
		d2, q2, padded, err := exoShapIndexed(d, q, exo)
		if err == nil {
			return newSatCountContext(d2, q2, padded, ex.memo, ex.prevCtx(), ex.cfg)
		}
		if !errors.Is(err, errDenseFallback) {
			return nil, err
		}
	}
	d2, q2, _, err := exoShapDense(d, q, exo)
	if err != nil {
		return nil, err
	}
	return newSatCountContext(d2, q2, nil, ex.memo, ex.prevCtx(), ex.cfg)
}

// prepareUCQ is prepareCQ for unions of CQ¬s.
func prepareUCQ(d *db.Database, u *query.UCQ, exo map[string]bool, brute bool, ex prepExtras) (*PreparedBatch, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if err := checkExoRelations(d, exo); err != nil {
		return nil, err
	}
	p := &PreparedBatch{facts: d.EndoFacts(), class: classifyUCQ(u)}
	if len(p.facts) == 0 {
		p.empty, p.method = true, MethodHierarchical
		return p, nil
	}
	ctx, err := newUCQSatContext(d, u, ex.memo, ex.prevUCtx(), ex.cfg)
	if err != nil {
		if isUCQStructuralError(err) && brute {
			p.bruteDB, p.bruteQ, p.method = d.Clone(), u, MethodBruteForce
			return p, nil
		}
		return nil, err
	}
	p.uctx, p.method = ctx, MethodHierarchical
	return p, nil
}

// classifyUCQ summarizes a union in Classification terms in one walk over
// the disjuncts: the CQ-specific structural fields hold iff they hold for
// every disjunct, and Tractable additionally requires pairwise
// relation-disjointness (the exact algorithm's precondition; see
// newUCQSatContext, which enforces the same three checks with specific
// errors).
func classifyUCQ(u *query.UCQ) Classification {
	c := Classification{
		SelfJoinFree:       true,
		Hierarchical:       true,
		PolarityConsistent: u.IsPolarityConsistent(),
	}
	disjoint := true
	seen := make(map[string]int)
	for i, q := range u.Disjuncts {
		if q.HasSelfJoin() {
			c.SelfJoinFree = false
		}
		if !q.IsHierarchical() {
			c.Hierarchical = false
		}
		for _, rel := range q.Relations() {
			if j, dup := seen[rel]; dup && j != i {
				disjoint = false
			}
			seen[rel] = i
		}
	}
	c.Tractable = c.SelfJoinFree && c.Hierarchical && disjoint
	return c
}

// runFactPool fans compute over the facts with opts.Workers goroutines,
// preserving deterministic output order and in-order OnResult delivery, and
// cancelling in-flight work on the first (lowest-indexed) error or on ctx
// cancellation. On cancellation the partial results are discarded and
// ctx.Err() is returned (a compute error observed first takes precedence);
// OnResult callbacks already delivered are not unwound.
func runFactPool(ctx context.Context, facts []db.Fact, opts BatchOptions, method Method, compute func(context.Context, db.Fact) (*big.Rat, error)) ([]*ShapleyValue, error) {
	out := make([]*ShapleyValue, len(facts))
	if len(facts) == 0 {
		return out, nil
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		done = ctx.Done()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(facts) {
		workers = len(facts)
	}
	var (
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		emitted  int
		next     int64 = -1
		cancel         = make(chan struct{})
		once     sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker is one span; the per-fact spans the compute
			// functions open underneath merge into occurrence-counted
			// leaves, keeping traces small for arbitrarily large batches.
			wctx, wsp := obs.Start(ctx, "batch.worker")
			processed := 0
			defer func() {
				if wsp.Recording() {
					wsp.SetAttrs(obs.Int("facts", processed))
				}
				wsp.End()
			}()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(facts) {
					return
				}
				select {
				case <-cancel:
					return
				default:
				}
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				v, err := compute(wctx, facts[i])
				processed++
				mu.Lock()
				if err != nil {
					if firstIdx == -1 || i < firstIdx {
						firstIdx, firstErr = i, fmt.Errorf("%s: %w", facts[i], err)
					}
					mu.Unlock()
					once.Do(func() { close(cancel) })
					return
				}
				out[i] = &ShapleyValue{Fact: facts[i], Value: v, Method: method}
				if opts.OnResult != nil {
					for emitted < len(out) && out[emitted] != nil {
						opts.OnResult(out[emitted])
						emitted++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
