package core

import (
	"fmt"
	"math/big"
	"slices"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/query"
)

// SatCountVector computes the vector sat[k] = |Sat(D, q, k)| for
// k = 0..|Dn|: the number of k-subsets E of the endogenous facts such that
// (Dx ∪ E) |= q. This is the CntSat algorithm of Livshits et al., extended
// to safe negation per Lemma 3.2 (with the base case corrected for
// endogenous negative facts; see DESIGN.md).
//
// This file is the reference implementation: the plain recursion, easy to
// audit against the paper. The production engines (Plan, PreparedBatch,
// the serving layer) run the same computation through the materialized
// DP-tree IR of dptree.go, whose root output vector is asserted equal to
// this function's result by the differential tests; the recursion also
// serves as the baseline unit recompute in benchmark emulation of the
// pre-tree engine.
//
// The arithmetic substrate is the exact numeric kernel (internal/numeric):
// counts live in the minimal of u64/u128/big and promote automatically, so
// the returned values are bit-identical to pure math/big arithmetic by
// construction (the kernel is differentially pinned against combinat).
//
// q must be a self-join-free hierarchical CQ¬.
func SatCountVector(d *db.Database, q *query.CQ) ([]*big.Int, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.HasSelfJoin() {
		return nil, ErrNotSelfJoinFree
	}
	if !q.IsHierarchical() {
		return nil, ErrNotHierarchical
	}
	sat, err := cntSat(d, q)
	if err != nil {
		return nil, err
	}
	return sat.Big(), nil
}

// ShapleyHierarchical computes Shapley(D, q, f) in polynomial time for a
// hierarchical self-join-free CQ¬ via the reduction to |Sat| counting:
//
//	Shapley(f) = Σ_k k!(m−1−k)!/m! · (|Sat(D+f, q, k)| − |Sat(D−f, q, k)|)
//
// where D+f moves f to the exogenous side and D−f removes it (both over the
// remaining m−1 endogenous facts).
func ShapleyHierarchical(d *db.Database, q *query.CQ, f db.Fact) (*big.Rat, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	m := d.NumEndo()
	dWith, err := d.WithExogenous(f)
	if err != nil {
		return nil, err
	}
	satWith, err := SatCountVector(dWith, q)
	if err != nil {
		return nil, err
	}
	dWithout, err := d.Without(f)
	if err != nil {
		return nil, err
	}
	satWithout, err := SatCountVector(dWithout, q)
	if err != nil {
		return nil, err
	}
	return combinat.WeightedDifference(satWith, satWithout, m), nil
}

// cntSat handles fact-relevance filtering, then delegates to cntSatCore.
// A fact is relevant iff it can be the image of the (unique, by
// self-join-freeness) atom over its relation; all other endogenous facts are
// free fillers folded in by binomial convolution.
func cntSat(d *db.Database, q *query.CQ) (numeric.Vec, error) {
	atomOf := make(map[string]query.Atom)
	for _, a := range q.Atoms {
		atomOf[a.Rel] = a
	}
	relevant := db.New()
	freeEndo := 0
	for _, f := range d.Facts() {
		a, inQuery := atomOf[f.Rel]
		if inQuery && query.MatchesAtom(a, f) {
			relevant.MustAdd(f, d.IsEndogenous(f))
		} else if d.IsEndogenous(f) {
			freeEndo++
		}
	}
	core, err := cntSatCore(relevant, q)
	if err != nil {
		return numeric.Vec{}, err
	}
	if freeEndo == 0 {
		return core, nil
	}
	return numeric.Convolve(core, numeric.Binomial(freeEndo)), nil
}

// cntSatCore assumes every fact of d matches its atom's pattern.
func cntSatCore(d *db.Database, q *query.CQ) (numeric.Vec, error) {
	n := d.NumEndo()

	// Disconnected query: the conjunction must hold componentwise, and the
	// components touch disjoint relations (self-join-freeness), hence
	// disjoint facts; satisfying counts convolve.
	comps := q.AtomComponents()
	if len(comps) > 1 {
		vecs := make([]numeric.Vec, 0, len(comps))
		for _, comp := range comps {
			sub := q.SubQuery(comp)
			rels := make(map[string]bool)
			for _, a := range sub.Atoms {
				rels[a.Rel] = true
			}
			subDB := d.Restrict(func(f db.Fact, _ bool) bool { return rels[f.Rel] })
			v, err := cntSat(subDB, sub)
			if err != nil {
				return numeric.Vec{}, err
			}
			vecs = append(vecs, v)
		}
		out := numeric.ConvolveAll(vecs)
		if out.Len() != n+1 {
			return numeric.Vec{}, fmt.Errorf("core: internal error: component convolution length %d, want %d", out.Len(), n+1)
		}
		return out, nil
	}

	// Ground base case (single component with no variables means a single
	// ground atom; but handle any all-ground conjunction defensively).
	if len(q.Vars()) == 0 {
		return groundBase(d, q)
	}

	// Connected with variables: a hierarchical connected query has a root
	// variable occurring in every atom.
	roots := q.RootVariables()
	if len(roots) == 0 {
		return numeric.Vec{}, ErrNotHierarchical
	}
	x := roots[0]

	// Partition facts by their x-value. Every atom contains x, and every
	// fact matches its atom, so each fact determines a unique x-value.
	posOf := make(map[string]int) // relation -> first position of x
	for _, a := range q.Atoms {
		for i, t := range a.Args {
			if t.IsVar() && t.Var == x {
				posOf[a.Rel] = i
				break
			}
		}
	}
	buckets := make(map[db.Const]*db.Database)
	var values []db.Const
	for _, f := range d.Facts() {
		v := f.Args[posOf[f.Rel]]
		if buckets[v] == nil {
			buckets[v] = db.New()
			values = append(values, v)
		}
		buckets[v].MustAdd(f, d.IsEndogenous(f))
	}
	slices.Sort(values)

	// q = ∨_v q[x→v], where q[x→v] depends only on bucket v; count the
	// subsets violating every disjunct by convolution and complement.
	nonSat := make([]numeric.Vec, 0, len(values))
	for _, v := range values {
		bucket := buckets[v]
		sat, err := cntSat(bucket, q.SubstituteVar(x, v))
		if err != nil {
			return numeric.Vec{}, err
		}
		nonSat = append(nonSat, numeric.Complement(sat, bucket.NumEndo()))
	}
	allNonSat := numeric.ConvolveAll(nonSat)
	return numeric.ComplementTotal(allNonSat, n), nil
}

// groundBase counts satisfying k-subsets for an all-ground conjunction of
// literals (the corrected Lemma 3.2 base case): with A+ the positive ground
// atoms that are endogenous facts and A− the negative ground atoms that are
// endogenous facts,
//
//	sat[k] = C(|Dn| − |A+| − |A−|, k − |A+|),
//
// and the count is 0 for all k when a positive atom is missing from D or a
// negative atom is an exogenous fact.
func groundBase(d *db.Database, q *query.CQ) (numeric.Vec, error) {
	n := d.NumEndo()

	mustHave := 0  // |A+|
	mustAvoid := 0 // |A−|
	for _, a := range q.Atoms {
		f := a.GroundFact()
		switch {
		case !a.Negated && !d.Contains(f):
			return numeric.Zero(n), nil
		case !a.Negated && d.IsEndogenous(f):
			mustHave++
		case a.Negated && d.IsExogenous(f):
			return numeric.Zero(n), nil
		case a.Negated && d.IsEndogenous(f):
			mustAvoid++
		}
	}
	free := n - mustHave - mustAvoid
	return numeric.ShiftedBinomial(free, mustHave, n), nil
}
