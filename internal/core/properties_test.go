package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/workload"
)

// Sign structure (discussed around equation (1) of the paper): for a
// polarity-consistent CQ¬, facts of positive-only relations have
// non-negative Shapley values and facts of negative-only relations have
// non-positive ones.
func TestShapleySignsFollowPolarity(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	queries := []*query.CQ{
		query.MustParse("s1() :- Stud(x), !TA(x), Reg(x, y)"),
		query.MustParse("s2() :- R(x, y), !S(y)"),
		query.MustParse("s3() :- R(x), S(x, y), !T(x, y)"),
	}
	for _, q := range queries {
		negRels := make(map[string]bool)
		for _, r := range q.NegativeRels() {
			negRels[r] = true
		}
		for trial := 0; trial < 8; trial++ {
			d := randomInstance(rng, q, 3, 4, nil)
			if d.NumEndo() == 0 || d.NumEndo() > 12 {
				continue
			}
			for _, f := range d.EndoFacts() {
				v, err := ShapleyHierarchical(d, q, f)
				if err != nil {
					t.Fatal(err)
				}
				if negRels[f.Rel] && v.Sign() > 0 {
					t.Fatalf("%s: negative-relation fact %s has positive value %s\nDB:\n%s", q, f, v.RatString(), d)
				}
				if !negRels[f.Rel] && v.Sign() < 0 {
					t.Fatalf("%s: positive-relation fact %s has negative value %s\nDB:\n%s", q, f, v.RatString(), d)
				}
			}
		}
	}
}

// For a monotone query (no negation), the fraction sat[k]/C(m,k) of
// satisfying k-subsets is non-decreasing in k.
func TestSatFractionMonotoneForPositiveQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	q := query.MustParse("m1() :- R(x), S(x, y)")
	for trial := 0; trial < 10; trial++ {
		d := randomInstance(rng, q, 3, 5, nil)
		m := d.NumEndo()
		sat, err := SatCountVector(d, q)
		if err != nil {
			t.Fatal(err)
		}
		prev := new(big.Rat)
		for k := 0; k <= m; k++ {
			binom := combinat.Binomial(m, k)
			if binom.Sign() == 0 {
				continue
			}
			frac := new(big.Rat).SetFrac(sat[k], binom)
			if frac.Cmp(prev) < 0 {
				t.Fatalf("monotone query has decreasing sat fraction at k=%d: %s < %s\nDB:\n%s",
					k, frac.RatString(), prev.RatString(), d)
			}
			prev = frac
		}
	}
}

// Sat counts are preserved under renaming of constants (the algorithms
// must not depend on constant identity).
func TestSatCountInvariantUnderRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	q := query.MustParse("r1() :- R(x), S(x, y), !T(x, y)")
	for trial := 0; trial < 8; trial++ {
		d := randomInstance(rng, q, 3, 4, nil)
		sat1, err := SatCountVector(d, q)
		if err != nil {
			t.Fatal(err)
		}
		d3 := cloneWithRenamedConstants(d)
		sat2, err := SatCountVector(d3, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(sat1) != len(sat2) {
			t.Fatal("length mismatch after renaming")
		}
		for k := range sat1 {
			if sat1[k].Cmp(sat2[k]) != 0 {
				t.Fatalf("sat[%d] changed under constant renaming: %s vs %s", k, sat1[k], sat2[k])
			}
		}
	}
}

// cloneWithRenamedConstants prefixes every constant with "z_", preserving
// structure but changing every identity (and hence the sort order of bucket
// values inside the counting recursion).
func cloneWithRenamedConstants(d *db.Database) *db.Database {
	out := db.New()
	for _, f := range d.Facts() {
		args := make([]db.Const, len(f.Args))
		for i, c := range f.Args {
			args[i] = "z_" + c
		}
		out.MustAdd(db.Fact{Rel: f.Rel, Args: args}, d.IsEndogenous(f))
	}
	return out
}

// The Monte-Carlo estimator is an unbiased average of {−1,0,1} samples, so
// its estimate times the sample count is always an integer in range.
func TestMonteCarloEstimateRange(t *testing.T) {
	d := runningExample()
	rng := rand.New(rand.NewSource(94))
	for _, f := range d.EndoFacts() {
		res, err := MonteCarloShapleyN(d, q1, f, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Estimate < -1 || res.Estimate > 1 {
			t.Fatalf("estimate %v out of [-1,1]", res.Estimate)
		}
		scaled := res.Estimate * float64(res.Samples)
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("estimate %v is not a multiple of 1/samples", res.Estimate)
		}
	}
}

// Random hierarchical fragments of random queries: whenever RandomCQ
// produces a hierarchical query, SatCountVector must agree with brute-force
// counting (complements the dichotomy-driven differential test).
func TestSatCountRandomHierarchicalQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	cfg := workload.DefaultRandomCQConfig()
	checked := 0
	for trial := 0; trial < 200 && checked < 25; trial++ {
		q, _ := workload.RandomCQ(rng, cfg)
		if !q.IsHierarchical() || q.HasSelfJoin() {
			continue
		}
		d := workload.RandomForQuery(rng, q, 2, 3, nil, 0.7)
		if d.NumEndo() == 0 || d.NumEndo() > 12 {
			continue
		}
		checked++
		checkSatVector(t, d, q)
	}
	if checked < 10 {
		t.Fatalf("too few hierarchical random queries checked: %d", checked)
	}
}
