package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

// assertSameValues fails unless the two batches are bit-for-bit identical
// (facts, exact rationals and methods, in order).
func assertSameValues(t *testing.T, label string, got, want []*ShapleyValue) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Fact.Key() != want[i].Fact.Key() ||
			got[i].Value.Cmp(want[i].Value) != 0 ||
			got[i].Method != want[i].Method {
			t.Fatalf("%s: value %d = %s %s [%s], want %s %s [%s]",
				label, i,
				got[i].Fact, got[i].Value.RatString(), got[i].Method,
				want[i].Fact, want[i].Value.RatString(), want[i].Method)
		}
	}
}

// freshAll prepares a plan from scratch over d and returns its batch.
func freshAll(t *testing.T, eng *Engine, d *db.Database, q *query.CQ, u *query.UCQ) []*ShapleyValue {
	t.Helper()
	var (
		p   *Plan
		err error
	)
	if q != nil {
		p, err = eng.Prepare(context.Background(), d, q)
	} else {
		p, err = eng.PrepareUCQ(context.Background(), d, u)
	}
	if err != nil {
		t.Fatalf("fresh prepare: %v", err)
	}
	vals, err := p.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("fresh all: %v", err)
	}
	return vals
}

// randomDelta builds a random valid delta against d: removals of existing
// facts and insertions over the relations of q (plus an out-of-query
// relation, exercising the free-filler partition). Insertions into exo
// relations are always exogenous so the delta stays applicable.
func randomDelta(rng *rand.Rand, d *db.Database, q *query.CQ, exo map[string]bool) db.Delta {
	var dl db.Delta
	facts := d.Facts()
	for _, f := range facts {
		if rng.Float64() < 0.15 {
			dl.Remove = append(dl.Remove, f)
		}
	}
	removed := make(map[string]bool)
	for _, f := range dl.Remove {
		removed[f.Key()] = true
	}
	dom := []db.Const{"a", "b", "c", "zz1", "zz2"}
	arity := map[string]int{"Free": 1}
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	rels := append(q.Relations(), "Free")
	for trial := 0; trial < 4; trial++ {
		rel := rels[rng.Intn(len(rels))]
		args := make([]db.Const, arity[rel])
		for j := range args {
			args[j] = dom[rng.Intn(len(dom))]
		}
		f := db.Fact{Rel: rel, Args: args}
		if (d.Contains(f) && !removed[f.Key()]) || removed[f.Key()] {
			continue
		}
		dup := false
		for _, g := range append(dl.AddEndo, dl.AddExo...) {
			if g.Key() == f.Key() {
				dup = true
			}
		}
		if dup {
			continue
		}
		if exo[rel] || rng.Float64() < 0.3 {
			dl.AddExo = append(dl.AddExo, f)
		} else {
			dl.AddEndo = append(dl.AddEndo, f)
		}
	}
	return dl
}

// TestPlanApplyDifferentialRandom is the tentpole's correctness gate:
// across random tractable queries (hierarchical and ExoShap), a chain of
// random deltas applied incrementally must stay bit-identical to preparing
// from scratch over the evolved snapshot at every step.
func TestPlanApplyDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(451))
	cfg := workload.DefaultRandomCQConfig()
	checked := 0
	for trial := 0; trial < 120 && checked < 40; trial++ {
		q, exo := workload.RandomCQ(rng, cfg)
		if !Classify(q, exo).Tractable {
			continue
		}
		d := workload.RandomForQuery(rng, q, 2, 2, exo, 0.8)
		exoList := make([]string, 0, len(exo))
		for r := range exo {
			exoList = append(exoList, r)
		}
		eng := NewEngine(WithExoRelations(exoList...))
		plan, err := eng.Prepare(context.Background(), d, q)
		if err != nil {
			t.Fatalf("%s (exo %v): %v\nDB:\n%s", q, exo, err, d)
		}
		for step := 0; step < 3; step++ {
			dl := randomDelta(rng, plan.Snapshot(), q, exo)
			if _, err := plan.Apply(context.Background(), dl); err != nil {
				t.Fatalf("%s step %d: apply %v: %v\nDB:\n%s", q, step, dl, err, plan.Snapshot())
			}
			got, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
			if err != nil {
				t.Fatalf("%s step %d: %v", q, step, err)
			}
			want := freshAll(t, eng, plan.Snapshot(), q, nil)
			assertSameValues(t, fmt.Sprintf("%s (exo %v) step %d", q, exo, step), got, want)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("differential coverage too thin: %d query chains", checked)
	}
}

// TestPlanApplyRemoveQueriedFact: after a delta removes a fact, asking the
// plan for that fact's value must fail with ErrNotEndogenous, and the fact
// must leave Facts().
func TestPlanApplyRemoveQueriedFact(t *testing.T) {
	d := paperex.RunningExample()
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, paperex.Q1())
	if err != nil {
		t.Fatal(err)
	}
	f := db.F("TA", "Adam")
	v, err := plan.Shapley(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value.RatString() != paperex.Example23Values["TA(Adam)"] {
		t.Fatalf("pre-delta value %s", v.Value.RatString())
	}
	ver, err := plan.Apply(context.Background(), db.Delta{Remove: []db.Fact{f}})
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 {
		t.Fatalf("version %d, want 2", ver)
	}
	if _, err := plan.Shapley(context.Background(), f); !errors.Is(err, ErrNotEndogenous) {
		t.Fatalf("want ErrNotEndogenous, got %v", err)
	}
	for _, g := range plan.Facts() {
		if g.Key() == f.Key() {
			t.Fatalf("%s still listed after removal", f)
		}
	}
}

// TestPlanApplyEmptyDelta: an empty delta is a no-op that keeps the version.
func TestPlanApplyEmptyDelta(t *testing.T) {
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), paperex.RunningExample(), paperex.Q1())
	if err != nil {
		t.Fatal(err)
	}
	before := plan.Version()
	ver, err := plan.Apply(context.Background(), db.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if ver != before || plan.Version() != before {
		t.Fatalf("empty delta moved version %d → %d", before, ver)
	}
}

// TestPlanApplyFailureLeavesPlanIntact: a bad delta (removing an absent
// fact, or endogenously growing a declared exogenous relation) must leave
// the plan serving its current version.
func TestPlanApplyFailureLeavesPlanIntact(t *testing.T) {
	d := paperex.RunningExample()
	eng := NewEngine(WithExoRelations("Stud", "Course"))
	plan, err := eng.Prepare(context.Background(), d, paperex.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method() != MethodExoShap {
		t.Fatalf("method %v, want exoshap", plan.Method())
	}
	want, err := plan.ShapleyAll(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Apply(context.Background(), db.Delta{Remove: []db.Fact{db.F("TA", "Nobody")}}); err == nil {
		t.Fatal("removing an absent fact must fail")
	}
	if _, err := plan.Apply(context.Background(), db.Delta{AddEndo: []db.Fact{db.F("Stud", "Zoe")}}); !errors.Is(err, ErrExoViolated) {
		t.Fatalf("want ErrExoViolated, got %v", err)
	}
	if plan.Version() != 1 {
		t.Fatalf("failed applies moved the version to %d", plan.Version())
	}
	got, err := plan.ShapleyAll(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameValues(t, "after failed applies", got, want)
}

// TestPlanApplyPartitionFlip exercises deltas that change the relevance
// partition and the bucket structure: new buckets appear, a whole bucket
// vanishes, free fillers come and go, and the endogenous set drains to
// empty and refills.
func TestPlanApplyPartitionFlip(t *testing.T) {
	q := paperex.Q1()
	d := db.MustParse(`
exo  Stud(Ann)
endo TA(Ann)
endo Reg(Ann, OS)
endo Free(x1)
`)
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	steps := []db.Delta{
		// A brand-new bucket (student Bob) plus one more free filler.
		{AddExo: []db.Fact{db.F("Stud", "Bob")}, AddEndo: []db.Fact{db.F("Reg", "Bob", "AI"), db.F("Free", "x2")}},
		// Remove Ann's bucket entirely; her free fillers stay.
		{Remove: []db.Fact{db.F("TA", "Ann"), db.F("Reg", "Ann", "OS")}},
		// Drain every endogenous fact.
		{Remove: []db.Fact{db.F("Reg", "Bob", "AI"), db.F("Free", "x1"), db.F("Free", "x2")}},
		// Refill: Ann returns as a pure filler target, Bob gets a TA fact.
		{AddEndo: []db.Fact{db.F("TA", "Bob"), db.F("Reg", "Bob", "AI")}},
	}
	for i, dl := range steps {
		if _, err := plan.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, err := plan.ShapleyAll(context.Background(), BatchOptions{})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want := freshAll(t, eng, plan.Snapshot(), q, nil)
		assertSameValues(t, fmt.Sprintf("step %d", i), got, want)
	}
	if plan.Version() != db.Version(1+len(steps)) {
		t.Fatalf("version %d after %d applies", plan.Version(), len(steps))
	}
}

// TestPlanUCQApplyDifferential: deltas over a relation-disjoint union must
// stay bit-identical to fresh preparation, through pool flips and drains.
func TestPlanUCQApplyDifferential(t *testing.T) {
	u := query.MustParseUCQ("a() :- R(x), !S(x) | b() :- T(x, y)")
	d := db.MustParse(`
endo R(a)
endo S(a)
endo T(a, b)
exo  T(b, b)
endo Free(z)
`)
	eng := NewEngine()
	plan, err := eng.PrepareUCQ(context.Background(), d, u)
	if err != nil {
		t.Fatal(err)
	}
	steps := []db.Delta{
		{AddEndo: []db.Fact{db.F("R", "b"), db.F("T", "c", "c")}},
		{Remove: []db.Fact{db.F("S", "a"), db.F("T", "a", "b")}},
		{Remove: []db.Fact{db.F("Free", "z")}, AddExo: []db.Fact{db.F("S", "b")}},
	}
	for i, dl := range steps {
		if _, err := plan.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want := freshAll(t, eng, plan.Snapshot(), nil, u)
		assertSameValues(t, fmt.Sprintf("ucq step %d", i), got, want)
	}
}

// TestPlanBruteApplyDifferential: plans on the brute-force fallback (here a
// non-relation-disjoint union) must track deltas too.
func TestPlanBruteApplyDifferential(t *testing.T) {
	u := query.MustParseUCQ("a() :- R(x), !S(x) | b() :- S(x)")
	d := db.MustParse("endo R(a)\nendo S(a)\nendo S(b)")
	eng := NewEngine(WithBruteForce(true))
	plan, err := eng.PrepareUCQ(context.Background(), d, u)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method() != MethodBruteForce {
		t.Fatalf("method %v, want brute-force", plan.Method())
	}
	dl := db.Delta{AddEndo: []db.Fact{db.F("R", "b")}, Remove: []db.Fact{db.F("S", "a")}}
	if _, err := plan.Apply(context.Background(), dl); err != nil {
		t.Fatal(err)
	}
	got, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := freshAll(t, eng, plan.Snapshot(), nil, u)
	assertSameValues(t, "brute ucq", got, want)
}

// TestPlanShapleyAllCancellation: a context cancelled mid-batch must abort
// the in-flight ShapleyAll with ctx.Err(), and a pre-cancelled context must
// not start any work.
func TestPlanShapleyAllCancellation(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 40, Courses: 8, RegPerStudent: 2, TAFraction: 0.4, Seed: 7,
	})
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, paperex.Q1())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int64
	_, err = plan.ShapleyAll(ctx, BatchOptions{
		Workers: 2,
		OnResult: func(*ShapleyValue) {
			if emitted.Add(1) == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := emitted.Load(); n == 0 || n >= int64(plan.NumFacts()) {
		t.Fatalf("cancellation delivered %d/%d results", n, plan.NumFacts())
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := plan.ShapleyAll(pre, BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: want context.Canceled, got %v", err)
	}
	if _, err := plan.Shapley(pre, d.EndoFacts()[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled single fact: want context.Canceled, got %v", err)
	}
	if _, err := eng.Prepare(pre, d, paperex.Q1()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled prepare: want context.Canceled, got %v", err)
	}

	// The plan stays fully usable after an aborted batch.
	vals, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil || len(vals) != plan.NumFacts() {
		t.Fatalf("post-cancel batch: %d values, err %v", len(vals), err)
	}
}

// TestPlanConcurrentApplyAndRead: reads pin the version they started on
// while Apply installs the next; run with -race this doubles as the data
// race gate for the versioned handle.
func TestPlanConcurrentApplyAndRead(t *testing.T) {
	d := paperex.RunningExample()
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, paperex.Q1())
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		defer close(errCh)
		for i := 0; i < 20; i++ {
			f := db.F("Free", fmt.Sprintf("x%d", i))
			if _, err := plan.Apply(context.Background(), db.Delta{AddEndo: []db.Fact{f}}); err != nil {
				errCh <- err
				return
			}
			if _, err := plan.Apply(context.Background(), db.Delta{Remove: []db.Fact{f}}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for done := false; !done; {
		select {
		case err, ok := <-errCh:
			if ok && err != nil {
				t.Fatal(err)
			}
			done = true
		default:
			vals, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			// Every read sees a consistent version: either 8 endogenous
			// facts (between applies) or 9 (with the extra filler present).
			if len(vals) != 8 && len(vals) != 9 {
				t.Fatalf("torn read: %d values", len(vals))
			}
		}
	}
}
