package core

import (
	"context"
	"fmt"
	"math/big"
	"testing"

	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

// These tests pin the numeric kernel's behavior at the representation
// boundaries *through the whole engine*, not just the kernel's own unit
// tests: workloads sized to land on the u64, u128 and big tiers, with the
// values checked against representation-independent ground truth.

// TestTreeStatsRepMix: the 94-endogenous-fact university workload must
// straddle the u64/u128 boundary — small leaves on machine words, the
// root (whose counts reach C(94, k) > 2^64) on two-word coefficients —
// and never fall off the fixed-width paths.
func TestTreeStatsRepMix(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 40, Courses: 8, RegPerStudent: 2, TAFraction: 0.4, Seed: 7,
	})
	if n := d.NumEndo(); n != 94 {
		t.Fatalf("workload has %d endogenous facts, want 94", n)
	}
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, paperex.Q1())
	if err != nil {
		t.Fatal(err)
	}
	ts := plan.TreeStats()
	if ts.U64Nodes == 0 || ts.U128Nodes == 0 {
		t.Fatalf("expected a u64/u128 mix at 94 endo facts: %+v", ts)
	}
	if ts.BigNodes != 0 {
		t.Fatalf("94 endo facts must not need big coefficients: %+v", ts)
	}
	if ts.U64Nodes+ts.U128Nodes+ts.BigNodes != ts.Nodes {
		t.Fatalf("representation mix does not partition the nodes: %+v", ts)
	}
}

// TestBigTierEndToEnd drives the engine onto the big path: 140 free
// endogenous fillers push the root |Sat| coefficients to C(140, k) >
// 2^128. The Shapley values have closed forms independent of every
// counting path: R(a) flips the query in every permutation the moment it
// joins (value exactly 1), and the fillers never change anything
// (value 0).
func TestBigTierEndToEnd(t *testing.T) {
	d := db.New()
	d.MustAddEndo(db.F("R", "a"))
	for i := 0; i < 140; i++ {
		d.MustAddEndo(db.F("Free", db.F("x", fmt.Sprint(i)).Key()))
	}
	q := query.MustParse("q() :- R(a)")
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	ts := plan.TreeStats()
	if ts.BigNodes == 0 {
		t.Fatalf("141 endo facts in one scope must exceed 128 bits: %+v", ts)
	}
	v, err := plan.Shapley(context.Background(), db.F("R", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewRat(1, 1); v.Value.Cmp(want) != 0 {
		t.Fatalf("Shapley(R(a)) = %s, want %s", v.Value.RatString(), want.RatString())
	}
	free, err := plan.Shapley(context.Background(), db.F("Free", "x(0)"))
	if err != nil {
		t.Fatal(err)
	}
	if free.Value.Sign() != 0 {
		t.Fatalf("free filler must have Shapley value 0, got %s", free.Value.RatString())
	}
	// The root |Sat| vector itself must match the reference recursion
	// (which runs on the same kernel but through an independent code
	// path) and the closed form sat[k] = C(140, k-1).
	sat, err := SatCountVector(d, q)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 141; k++ {
		want := new(big.Int).Binomial(140, int64(k-1))
		if k == 0 {
			want.SetInt64(0)
		}
		if sat[k].Cmp(want) != 0 {
			t.Fatalf("sat[%d] = %s, want %s", k, sat[k], want)
		}
	}
}

// TestBigPromotionRecorded drives an *operation-level* promotion: two
// disconnected components of ~70 endogenous facts each sit comfortably in
// u128, but the product node convolving them spans 141 facts, so that one
// convolution must leave the fixed-width paths — and the kernel must
// count it. Efficiency pins the values.
func TestBigPromotionRecorded(t *testing.T) {
	d := db.New()
	for i := 0; i < 70; i++ {
		d.MustAddEndo(db.F("R", fmt.Sprintf("r%d", i)))
	}
	for i := 0; i < 71; i++ {
		d.MustAddEndo(db.F("S", fmt.Sprintf("s%d", i)))
	}
	q := query.MustParse("q() :- R(x), S(y)")
	before := numeric.Stats()
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	after := numeric.Stats()
	if after.PromotionsBig == before.PromotionsBig {
		t.Fatal("convolving two u128 components into a 141-fact scope must promote to big")
	}
	ts := plan.TreeStats()
	if ts.BigNodes == 0 || ts.U128Nodes == 0 {
		t.Fatalf("expected u128 components under a big product root: %+v", ts)
	}
	vals, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum := new(big.Rat)
	for _, v := range vals {
		sum.Add(sum, v.Value)
	}
	// q needs one R and one S: v(D) − v(∅) = 1 − 0.
	if want := big.NewRat(1, 1); sum.Cmp(want) != 0 {
		t.Fatalf("efficiency axiom violated: Σ = %s, want %s", sum.RatString(), want.RatString())
	}
}

// TestU128TierEfficiencyAxiom checks the u128 tier end-to-end on a ~70
// endogenous fact instance via the Shapley efficiency axiom: the values
// over all endogenous facts must sum to q(D) − q(Dx), a ground truth
// requiring no counting at all.
func TestU128TierEfficiencyAxiom(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 30, Courses: 6, RegPerStudent: 2, TAFraction: 0.5, Seed: 13,
	})
	m := d.NumEndo()
	if m <= 67 {
		t.Fatalf("instance too small to exercise u128 (%d endo facts)", m)
	}
	q := paperex.Q1()
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum := new(big.Rat)
	for _, v := range vals {
		sum.Add(sum, v.Value)
	}
	full := 0
	if q.Eval(d) {
		full = 1
	}
	exoOnly := 0
	if q.Eval(d.Restrict(func(_ db.Fact, endo bool) bool { return !endo })) {
		exoOnly = 1
	}
	if want := big.NewRat(int64(full-exoOnly), 1); sum.Cmp(want) != 0 {
		t.Fatalf("efficiency axiom violated: Σ = %s, want %s", sum.RatString(), want.RatString())
	}
	if ts := plan.TreeStats(); ts.U128Nodes == 0 {
		t.Fatalf("expected u128 nodes at %d endo facts: %+v", m, ts)
	}
}
