package core

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/query"
)

// CriticalSubsets enumerates the witness subsets behind a Shapley value:
// the subsets E ⊆ Dn \ {f} such that adding f to Dx ∪ E changes the query
// answer, split by direction (false→true and true→false). These are exactly
// the subset families Appendix A enumerates when working out Example 2.3 by
// hand; the Shapley value is Σ_E |E|!(m−1−|E|)!/m! over positive witnesses
// minus the same sum over negative ones.
//
// The enumeration is exponential and intended for explanation and debugging
// on small databases.
func CriticalSubsets(d *db.Database, q query.BooleanQuery, f db.Fact) (posE, negE [][]db.Fact, err error) {
	if !d.IsEndogenous(f) {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	g, err := newGameCache(d, q)
	if err != nil {
		return nil, nil, err
	}
	fi, err := g.indexOf(f)
	if err != nil {
		return nil, nil, err
	}
	m := len(g.endo)
	fbit := uint64(1) << uint(fi)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		if mask&fbit != 0 {
			continue
		}
		with, without := g.value(mask|fbit), g.value(mask)
		if with == without {
			continue
		}
		var subset []db.Fact
		for i, e := range g.endo {
			if mask&(1<<uint(i)) != 0 {
				subset = append(subset, e)
			}
		}
		if with {
			posE = append(posE, subset)
		} else {
			negE = append(negE, subset)
		}
	}
	return posE, negE, nil
}
