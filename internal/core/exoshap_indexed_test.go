package core

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/workload"
)

// denseReferenceValues computes Shapley(D, q, f) for every endogenous fact
// through the dense ExoShap transform and the hierarchical per-fact
// algorithm — the reference path the indexed transform must match value for
// value (tree keys may legitimately differ; the instances do).
func denseReferenceValues(t *testing.T, d *db.Database, q *query.CQ, exo map[string]bool) map[string]*big.Rat {
	t.Helper()
	d2, q2, _, err := exoShapDense(d, q, exo)
	if err != nil {
		t.Fatalf("%s: dense transform: %v", q, err)
	}
	out := make(map[string]*big.Rat)
	for _, f := range d.EndoFacts() {
		v, err := ShapleyHierarchical(d2, q2, f)
		if err != nil {
			t.Fatalf("%s: dense reference Shapley(%s): %v", q, f, err)
		}
		out[f.Key()] = v
	}
	return out
}

// indexedPlanValues computes the same values through the engine prepare
// path, which dispatches to the indexed transform with lazy padding.
func indexedPlanValues(t *testing.T, d *db.Database, q *query.CQ, exo map[string]bool, opts ...EngineOption) map[string]*big.Rat {
	t.Helper()
	eng := NewEngine(append([]EngineOption{WithExoRelations(sortedKeys(exo)...)}, opts...)...)
	plan, err := eng.Prepare(context.Background(), d, q)
	if err != nil {
		t.Fatalf("%s: prepare: %v", q, err)
	}
	if got := plan.Method(); got != MethodExoShap {
		t.Fatalf("%s: prepared with method %s, want %s", q, got, MethodExoShap)
	}
	vals, err := plan.ShapleyAll(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatalf("%s: ShapleyAll: %v", q, err)
	}
	out := make(map[string]*big.Rat, len(vals))
	for _, v := range vals {
		out[v.Fact.Key()] = v.Value
	}
	return out
}

func sortedKeys(m map[string]bool) []string { return SortedRelNames(m) }

func compareValueMaps(t *testing.T, q *query.CQ, d *db.Database, got, want map[string]*big.Rat) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values via indexed path, %d via dense reference\nDB:\n%s", q, len(got), len(want), d)
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: fact %s missing from indexed-path values\nDB:\n%s", q, k, d)
		}
		if g.Cmp(w) != 0 {
			t.Fatalf("%s: Shapley(%s) indexed %s != dense %s\nDB:\n%s", q, k, g.RatString(), w.RatString(), d)
		}
	}
}

// TestExoShapIndexedMatchesDenseFixedQueries pins the indexed transform to
// the dense reference on the paper's ExoShap queries over randomized
// instances — including parallel builds with an aggressive spawn threshold,
// which exercises concurrent pad-group subdivision.
func TestExoShapIndexedMatchesDenseFixedQueries(t *testing.T) {
	cases := []struct {
		q   *query.CQ
		exo map[string]bool
	}{
		{query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)"),
			map[string]bool{"Stud": true, "Course": true}},
		{query.MustParse("q() :- !R(x, w), S(z, x), !P(z, w), T(y, w)"),
			map[string]bool{"S": true, "P": true}},
		{query.MustParse("q() :- Author(x, y), Pub(x, z), Citations(z, w)"),
			map[string]bool{"Pub": true, "Citations": true}},
		{query.MustParse("qp() :- U(t, r), !T(y), Q(y, w), !V(t), R(x, y), !S(x, z), O(z), P(u, y, w)"),
			map[string]bool{"R": true, "S": true, "O": true, "P": true}},
	}
	rng := rand.New(rand.NewSource(41))
	for ci, tc := range cases {
		for trial := 0; trial < 6; trial++ {
			d := randomInstance(rng, tc.q, 3, 4, tc.exo)
			if d.NumEndo() == 0 {
				continue
			}
			want := denseReferenceValues(t, d, tc.q, tc.exo)
			compareValueMaps(t, tc.q, d, indexedPlanValues(t, d, tc.q, tc.exo), want)
			if ci == 0 || trial == 0 {
				par := indexedPlanValues(t, d, tc.q, tc.exo, WithPrepareParallelism(4), WithSpawnCost(1))
				compareValueMaps(t, tc.q, d, par, want)
			}
		}
	}
	// And the running example itself.
	q2 := cases[0].q
	d := runningExample()
	compareValueMaps(t, q2, d, indexedPlanValues(t, d, q2, cases[0].exo), denseReferenceValues(t, d, q2, cases[0].exo))
}

// TestExoShapIndexedMatchesDenseRandom fuzzes the equivalence over random
// CQ¬s that land on the ExoShap arm of the dichotomy (self-join-free,
// non-hierarchical, no non-hierarchical endogenous path).
func TestExoShapIndexedMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cfg := workload.DefaultRandomCQConfig()
	cfg.ExoProb = 0.55
	checked := 0
	for trial := 0; trial < 4000 && checked < 60; trial++ {
		q, exo := workload.RandomCQ(rng, cfg)
		if q.Validate() != nil || q.HasSelfJoin() || q.IsHierarchical() {
			continue
		}
		if q.HasNonHierarchicalPath(exo) {
			continue
		}
		nonExo := 0
		for _, a := range q.Atoms {
			if !exo[a.Rel] {
				nonExo++
			}
		}
		if nonExo == 0 {
			continue
		}
		d := randomInstance(rng, q, 3, 3, exo)
		if d.NumEndo() == 0 {
			continue
		}
		checked++
		want := denseReferenceValues(t, d, q, exo)
		compareValueMaps(t, q, d, indexedPlanValues(t, d, q, exo), want)
	}
	if checked < 20 {
		t.Fatalf("only %d random ExoShap-arm instances exercised; generator drifted", checked)
	}
}

// TestExoShapIndexedDeltaChain evolves an ExoShap plan through a chain of
// deltas and pins every version's values against a dense reference computed
// fresh on the evolved snapshot — the transform (and its pad routing) is
// re-run per version, so this covers the incremental spine-rebuild path.
func TestExoShapIndexedDeltaChain(t *testing.T) {
	q2 := query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	exo := map[string]bool{"Stud": true, "Course": true}
	d := runningExample()
	eng := NewEngine(WithExoRelations("Stud", "Course"), WithPrepareParallelism(2), WithSpawnCost(1))
	plan, err := eng.Prepare(context.Background(), d, q2)
	if err != nil {
		t.Fatal(err)
	}
	steps := []db.Delta{
		{AddEndo: []db.Fact{db.F("Reg", "David", "DB")}},
		{AddExo: []db.Fact{db.F("Stud", "Eve"), db.F("Course", "ML", "CS")}, AddEndo: []db.Fact{db.F("Reg", "Eve", "ML")}},
		{Remove: []db.Fact{db.F("TA", "Ben")}},
		{Remove: []db.Fact{db.F("Reg", "Eve", "ML")}, AddEndo: []db.Fact{db.F("Reg", "Eve", "AI"), db.F("TA", "Eve")}},
	}
	for si, dl := range steps {
		if _, err := plan.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
		vals, err := plan.ShapleyAll(context.Background(), BatchOptions{})
		if err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
		got := make(map[string]*big.Rat, len(vals))
		for _, v := range vals {
			got[v.Fact.Key()] = v.Value
		}
		snap := plan.Snapshot()
		compareValueMaps(t, q2, snap, got, denseReferenceValues(t, snap, q2, exo))
	}
}

// TestExoShapIndexedDenseFallback pins the errDenseFallback contract: a
// component that needs padding but has only a negated covering atom cannot
// be represented lazily, and the prepare path silently falls back to the
// dense transform with unchanged values.
func TestExoShapIndexedDenseFallback(t *testing.T) {
	q := query.MustParse("q() :- !N(x, y), X(x, u), P(y)")
	exo := map[string]bool{"X": true}
	rng := rand.New(rand.NewSource(47))
	checked := false
	for trial := 0; trial < 12; trial++ {
		d := randomInstance(rng, q, 3, 3, exo)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		if _, _, _, err := exoShapIndexed(d, q, exo); !errors.Is(err, errDenseFallback) {
			if err != nil && (errors.Is(err, ErrIntractable) || errors.Is(err, ErrNotSelfJoinFree)) {
				t.Fatalf("query drifted off the ExoShap arm: %v", err)
			}
			t.Fatalf("want errDenseFallback, got %v", err)
		}
		checked = true
		// The full prepare path must still answer — via the dense
		// transform — and agree with brute force.
		eng := NewEngine(WithExoRelations("X"))
		plan, err := eng.Prepare(context.Background(), d, q)
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.Method(); got != MethodExoShap {
			t.Fatalf("fallback prepared with method %s, want %s", got, MethodExoShap)
		}
		for _, f := range d.EndoFacts() {
			want, err := BruteForceShapley(d, q, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Shapley(context.Background(), f)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value.Cmp(want) != 0 {
				t.Fatalf("fallback Shapley(%s) = %s, brute force %s\nDB:\n%s", f, got.Value.RatString(), want.RatString(), d)
			}
		}
	}
	if !checked {
		t.Fatal("no instance exercised the dense fallback")
	}
}

// TestExoShapIndexedScalesTo50k prepares the ~50k-fact ExoShap workload —
// three orders of magnitude beyond what the dense transform's
// domain-quadratic materializations could finish — and pins the result two
// independent ways: the parallel build is bit-identical to the sequential
// one, and the full value vector satisfies the Shapley efficiency axiom
// Σ_f Shapley(D, q, f) = v(D) − v(Dx), checked against direct query
// evaluation on the untransformed instance.
func TestExoShapIndexedScalesTo50k(t *testing.T) {
	if testing.Short() {
		t.Skip("large-instance scaling test skipped with -short")
	}
	d := workload.University(workload.UniversityConfig{
		Students: 4500, Courses: 120, RegPerStudent: 9, TAFraction: 0.06,
		ExoRegFraction: 0.995, Seed: 37,
	})
	q2 := query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	ctx := context.Background()
	par := NewEngine(WithExoRelations("Stud", "Course"), WithPrepareParallelism(-1))
	plan, err := par.Prepare(ctx, d, q2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method() != MethodExoShap {
		t.Fatalf("prepared with method %s, want %s", plan.Method(), MethodExoShap)
	}
	seq, err := NewEngine(WithExoRelations("Stud", "Course"), WithPrepareParallelism(1)).Prepare(ctx, d, q2)
	if err != nil {
		t.Fatal(err)
	}
	if pr, sr := plan.pb.treeRoot(), seq.pb.treeRoot(); pr == nil || sr == nil || pr.key != sr.key {
		t.Fatal("parallel Prepare is not bit-identical to sequential at 50k")
	}
	vals, err := plan.ShapleyAll(ctx, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := new(big.Rat)
	for _, v := range vals {
		sum.Add(sum, v.Value)
	}
	vFull := 0
	if q2.Eval(d) {
		vFull = 1
	}
	exoOnly := db.New()
	for _, ff := range d.FlaggedFacts() {
		if !ff.Endo {
			exoOnly.MustAddExo(ff.Fact)
		}
	}
	vEmpty := 0
	if q2.Eval(exoOnly) {
		vEmpty = 1
	}
	want := new(big.Rat).SetInt64(int64(vFull - vEmpty))
	if sum.Cmp(want) != 0 {
		t.Fatalf("efficiency axiom violated at 50k: Σ Shapley = %s, v(D)−v(Dx) = %s", sum.RatString(), want.RatString())
	}
}

// TestExoShapIndexedSnapshotRoundTrip exports an indexed-transform plan and
// re-imports it, pinning the round trip on a lazily padded tree.
func TestExoShapIndexedSnapshotRoundTrip(t *testing.T) {
	q2 := query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	d := runningExample()
	eng := NewEngine(WithExoRelations("Stud", "Course"))
	plan, err := eng.Prepare(context.Background(), d, q2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := plan.Export()
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := eng.ImportPlan(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.ShapleyAll(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan2.ShapleyAll(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip changed value count: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Fact.Key() != want[i].Fact.Key() || got[i].Value.Cmp(want[i].Value) != 0 {
			t.Fatalf("round trip changed %s: %s vs %s", want[i].Fact, got[i].Value.RatString(), want[i].Value.RatString())
		}
	}
}
