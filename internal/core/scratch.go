package core

import "sync"

// scratchPool recycles the short-lived slices and maps of DP-tree
// construction — the per-node buildChild work lists and maintainProd's
// child-key diff sets — across the builds of one Engine. Warm Prepare,
// Apply and seeded-preparation paths allocate these at every interior
// node, and on steady-state serving workloads they dominated allocs/op.
// All methods are safe on a nil receiver (plain allocation, nothing
// recycled), which is what the zero prepExtras of the deprecated Solver
// shims and direct treeBuilder literals in tests get. sync.Pool makes the
// recycling race-safe under parallel builders; recycled memory is cleared
// on the way in so the pool never retains node or fact references.
type scratchPool struct {
	kids sync.Pool // *[]buildChild
	keys sync.Pool // map[string]bool
}

// getKids returns a zeroed work list of n buildChild slots.
func (p *scratchPool) getKids(n int) []buildChild {
	if p != nil {
		if v := p.kids.Get(); v != nil {
			if s := *(v.(*[]buildChild)); cap(s) >= n {
				return s[:n]
			}
		}
	}
	return make([]buildChild, n)
}

// putKids recycles a work list once buildChildren has joined (no spawned
// builder holds a pointer into it after that). Slots are cleared so the
// pool does not pin fact slices or previous-version nodes.
func (p *scratchPool) putKids(kids []buildChild) {
	if p == nil {
		return
	}
	for i := range kids {
		kids[i] = buildChild{}
	}
	kids = kids[:0]
	p.kids.Put(&kids)
}

// getKeys returns an empty string-set for maintainProd's child diffs.
func (p *scratchPool) getKeys() map[string]bool {
	if p != nil {
		if v := p.keys.Get(); v != nil {
			return v.(map[string]bool)
		}
	}
	return make(map[string]bool)
}

// putKeys recycles a diff set.
func (p *scratchPool) putKeys(m map[string]bool) {
	if p == nil {
		return
	}
	clear(m)
	p.keys.Put(m)
}
