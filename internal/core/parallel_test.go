package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

// These tests pin the defining contract of WithPrepareParallelism: the
// parallel build is an execution strategy, not a semantic knob. Trees,
// build statistics and Shapley values must be bit-identical to the
// sequential build at every worker count, and the whole surface must be
// clean under -race (the CI test job runs with -race enabled).

// assertPlansIdentical compares two plans structurally (tree root content
// key — equality means the entire trees are content-identical) and
// behaviorally (memo-traffic counters and every Shapley value).
func assertPlansIdentical(t *testing.T, label string, seqPlan, parPlan *Plan) {
	t.Helper()
	sr, pr := seqPlan.pb.treeRoot(), parPlan.pb.treeRoot()
	if (sr == nil) != (pr == nil) {
		t.Fatalf("%s: tree presence differs: sequential %v, parallel %v", label, sr != nil, pr != nil)
	}
	if sr != nil && sr.key != pr.key {
		t.Fatalf("%s: tree root content keys differ between sequential and parallel build", label)
	}
	if ss, ps := seqPlan.pb.buildStats(), parPlan.pb.buildStats(); ss != ps {
		t.Fatalf("%s: build stats differ: sequential %+v, parallel %+v", label, ss, ps)
	}
	got, err := parPlan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("%s: parallel plan ShapleyAll: %v", label, err)
	}
	want, err := seqPlan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("%s: sequential plan ShapleyAll: %v", label, err)
	}
	assertSameValues(t, label, got, want)
}

// TestParallelPrepareRandomDifferential sweeps random hierarchical
// CQ¬s/instances and checks parallel Prepare against sequential.
func TestParallelPrepareRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(417))
	cfg := workload.DefaultRandomCQConfig()
	seq := NewEngine(WithPrepareParallelism(1))
	par := NewEngine(WithPrepareParallelism(4))
	checked := 0
	for trial := 0; trial < 200 && checked < 50; trial++ {
		q, exo := workload.RandomCQ(rng, cfg)
		if q.HasSelfJoin() || !q.IsHierarchical() {
			continue
		}
		d := workload.RandomForQuery(rng, q, 4, 6, exo, 0.7)
		if d.NumEndo() == 0 {
			continue
		}
		sp, err := seq.Prepare(context.Background(), d, q)
		if err != nil {
			continue // e.g. declared-exogenous relation with endo facts
		}
		pp, err := par.Prepare(context.Background(), d, q)
		if err != nil {
			t.Fatalf("%s: parallel Prepare failed where sequential succeeded: %v", q, err)
		}
		assertPlansIdentical(t, fmt.Sprintf("trial %d (%s)", trial, q), sp, pp)
		checked++
	}
	if checked < 30 {
		t.Fatalf("coverage too thin: %d instances", checked)
	}
}

// TestParallelPrepareModes pins the three planner modes the parallel
// builder serves — hierarchical, ExoShap and relation-disjoint UCQ¬ — on
// the paper's university example, across worker counts.
func TestParallelPrepareModes(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 30, Courses: 8, RegPerStudent: 3, TAFraction: 0.4, Seed: 11,
	})
	u := query.MustParseUCQ("a() :- Stud(x), !TA(x) | b() :- Reg(x, y), !Course(y, CS)")
	for _, workers := range []int{2, 4, -1} {
		seq := NewEngine(WithPrepareParallelism(1))
		par := NewEngine(WithPrepareParallelism(workers))
		sp, err := seq.Prepare(context.Background(), d, paperex.Q1())
		if err != nil {
			t.Fatal(err)
		}
		pp, err := par.Prepare(context.Background(), d, paperex.Q1())
		if err != nil {
			t.Fatal(err)
		}
		assertPlansIdentical(t, fmt.Sprintf("hierarchical workers=%d", workers), sp, pp)

		seqX := NewEngine(WithPrepareParallelism(1), WithExoRelations("Stud", "Course"))
		parX := NewEngine(WithPrepareParallelism(workers), WithExoRelations("Stud", "Course"))
		sp, err = seqX.Prepare(context.Background(), d, paperex.Q2())
		if err != nil {
			t.Fatal(err)
		}
		pp, err = parX.Prepare(context.Background(), d, paperex.Q2())
		if err != nil {
			t.Fatal(err)
		}
		if sp.Method() != MethodExoShap {
			t.Fatalf("expected ExoShap plan, got %v", sp.Method())
		}
		assertPlansIdentical(t, fmt.Sprintf("exoshap workers=%d", workers), sp, pp)

		sp, err = seq.PrepareUCQ(context.Background(), d, u)
		if err != nil {
			t.Fatal(err)
		}
		pp, err = par.PrepareUCQ(context.Background(), d, u)
		if err != nil {
			t.Fatal(err)
		}
		assertPlansIdentical(t, fmt.Sprintf("ucq workers=%d", workers), sp, pp)
	}
}

// TestParallelApplyDifferential drives sequential and parallel plans
// through the same deep-delta chain (bucket births/deaths, endogeneity
// flips, sub-bucket mutations) and demands identical trees, stats and
// values at every version — the concurrent-spine Apply contract.
func TestParallelApplyDifferential(t *testing.T) {
	d := deepInstance()
	seq := NewEngine(WithPrepareParallelism(1))
	par := NewEngine(WithPrepareParallelism(4))
	sp, err := seq.Prepare(context.Background(), d, deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := par.Prepare(context.Background(), d, deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i, dl := range deepDeltas() {
		if _, err := sp.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d: sequential Apply: %v", i, err)
		}
		if _, err := pp.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d: parallel Apply: %v", i, err)
		}
		assertPlansIdentical(t, fmt.Sprintf("apply step %d", i), sp, pp)
	}
}

// TestParallelPrepareFromDifferential seeds a parallel preparation from a
// sequential plan (and vice versa) across a snapshot gap, pinning the
// PrepareFrom path's fan-out.
func TestParallelPrepareFromDifferential(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 25, Courses: 6, RegPerStudent: 3, TAFraction: 0.5, Seed: 3,
	})
	d2, err := d.Apply(db.Delta{
		AddEndo: []db.Fact{db.F("Reg", "S1", "C-new"), db.F("TA", "S2")},
		Remove:  []db.Fact{db.F("Reg", "S3", "C1")},
	})
	if err != nil {
		// The removed fact may not exist under this seed; fall back to adds only.
		d2, err = d.Apply(db.Delta{AddEndo: []db.Fact{db.F("Reg", "S1", "C-new"), db.F("TA", "S2")}})
		if err != nil {
			t.Fatal(err)
		}
	}
	seq := NewEngine(WithPrepareParallelism(1))
	par := NewEngine(WithPrepareParallelism(4))
	seed, err := seq.Prepare(context.Background(), d, paperex.Q1())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := seq.PrepareFrom(context.Background(), d2, seed)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := par.PrepareFrom(context.Background(), d2, seed)
	if err != nil {
		t.Fatal(err)
	}
	assertPlansIdentical(t, "prepare-from", sp, pp)
}

// TestConcurrentPrepareApplyShapleyStress exercises the full concurrent
// surface at once: a parallel-build plan serving ShapleyAll readers on
// pinned views while Apply (itself fanning spine rebuilds over builder
// goroutines) and seeded parallel Prepares run alongside. Run with -race
// this is the data-race gate for the sharded memo and token fan-out.
func TestConcurrentPrepareApplyShapleyStress(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 20, Courses: 6, RegPerStudent: 3, TAFraction: 0.5, Seed: 5,
	})
	eng := NewEngine(WithPrepareParallelism(4))
	plan, err := eng.Prepare(context.Background(), d, paperex.Q1())
	if err != nil {
		t.Fatal(err)
	}
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2}); err != nil {
					errc <- fmt.Errorf("reader: %w", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			f := db.F("Reg", "S0", fmt.Sprintf("C-stress-%d", i))
			if _, err := plan.Apply(context.Background(), db.Delta{AddEndo: []db.Fact{f}}); err != nil {
				errc <- fmt.Errorf("apply add: %w", err)
				return
			}
			if _, err := plan.Apply(context.Background(), db.Delta{Remove: []db.Fact{f}}); err != nil {
				errc <- fmt.Errorf("apply remove: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := eng.PrepareFrom(context.Background(), plan.Snapshot(), plan); err != nil {
				errc <- fmt.Errorf("prepare-from: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The plan must still be bit-identical to a fresh preparation.
	got, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := freshAll(t, eng, plan.Snapshot(), paperex.Q1(), nil)
	assertSameValues(t, "post-stress", got, want)
}
