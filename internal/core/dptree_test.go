package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestDPTreeRootMatchesSatCountVector pins the defining invariant of the
// IR: the root node's output vector is exactly |Sat(D, q, k)| as computed
// by the reference recursion in cntsat.go, across random hierarchical
// self-join-free queries and instances.
func TestDPTreeRootMatchesSatCountVector(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := workload.DefaultRandomCQConfig()
	checked := 0
	for trial := 0; trial < 200 && checked < 60; trial++ {
		q, _ := workload.RandomCQ(rng, cfg)
		if q.HasSelfJoin() || !q.IsHierarchical() {
			continue
		}
		d := workload.RandomForQuery(rng, q, 3, 3, nil, 0.7)
		want, err := SatCountVector(d, q)
		if err != nil {
			t.Fatalf("%s: reference: %v\nDB:\n%s", q, err, d)
		}
		c, err := newSatCountContext(d, q, nil, newSatMemo(), nil, buildConfig{par: 1})
		if err != nil {
			t.Fatalf("%s: tree: %v\nDB:\n%s", q, err, d)
		}
		if c.root.sat.Len() != len(want) {
			t.Fatalf("%s: tree sat length %d, reference %d\nDB:\n%s", q, c.root.sat.Len(), len(want), d)
		}
		for k := range want {
			if got := c.root.sat.At(k); got.Cmp(want[k]) != 0 {
				t.Fatalf("%s: sat[%d] = %s, reference %s\nDB:\n%s", q, k, got, want[k], d)
			}
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("coverage too thin: %d instances", checked)
	}
}

// deepQuery has a four-level tree on the university-style schema: a root
// bucket over x, a per-student component product, a y-bucket inside the
// Reg/Drop component, and two-fact ground leaves — so deltas on Reg/Drop
// facts land two levels below the top bucket.
var deepQuery = query.MustParse("dq() :- Stud(x), !TA(x), Reg(x, y), !Drop(x, y)")

// deepInstance builds a small database for deepQuery with nested
// structure: students with several registrations, some dropped, some TAs,
// plus a free-filler relation.
func deepInstance() *db.Database {
	d := db.New()
	students := []string{"S1", "S2", "S3", "S4"}
	courses := []string{"C1", "C2", "C3"}
	for _, s := range students {
		d.MustAddExo(db.F("Stud", s))
	}
	d.MustAddEndo(db.F("TA", "S1"))
	d.MustAddEndo(db.F("TA", "S3"))
	for i, s := range students {
		for j, c := range courses {
			if (i+j)%2 == 0 {
				d.MustAddEndo(db.F("Reg", s, c))
			}
		}
	}
	d.MustAddEndo(db.F("Drop", "S1", "C1"))
	d.MustAddExo(db.F("Drop", "S2", "C2"))
	d.MustAddEndo(db.F("Free", "z1"))
	return d
}

// deepDeltas returns a 24-step mixed add/remove chain whose mutations land
// deep below the top x-bucket (single Reg/Drop facts of one student), plus
// bucket births and deaths, endogeneity flips and free-filler churn.
func deepDeltas() []db.Delta {
	f := db.F
	return []db.Delta{
		{AddEndo: []db.Fact{f("Reg", "S1", "C2")}},
		{Remove: []db.Fact{f("Reg", "S1", "C2")}},
		{AddEndo: []db.Fact{f("Drop", "S1", "C3")}},
		{AddEndo: []db.Fact{f("Reg", "S2", "C1")}},
		{Remove: []db.Fact{f("Drop", "S1", "C1")}, AddExo: []db.Fact{f("Drop", "S1", "C1")}}, // flip endo→exo
		{AddEndo: []db.Fact{f("Reg", "S5", "C1")}, AddExo: []db.Fact{f("Stud", "S5")}},       // new bucket
		{AddEndo: []db.Fact{f("TA", "S5")}},
		{Remove: []db.Fact{f("Reg", "S5", "C1"), f("TA", "S5")}}, // bucket dies (Stud stays exo)
		{AddEndo: []db.Fact{f("Free", "z2")}},
		{Remove: []db.Fact{f("Free", "z1")}},
		{AddEndo: []db.Fact{f("Drop", "S4", "C2")}},
		{Remove: []db.Fact{f("Drop", "S4", "C2")}, AddEndo: []db.Fact{f("Reg", "S4", "C3")}},
		{Remove: []db.Fact{f("Drop", "S1", "C1")}, AddEndo: []db.Fact{f("Drop", "S1", "C1")}}, // flip exo→endo
		{Remove: []db.Fact{f("Reg", "S3", "C3")}},
		{AddEndo: []db.Fact{f("Reg", "S3", "C3")}},
		{Remove: []db.Fact{f("TA", "S3")}},
		{AddEndo: []db.Fact{f("TA", "S3")}},
		{AddEndo: []db.Fact{f("Drop", "S2", "C1")}},
		{Remove: []db.Fact{f("Drop", "S2", "C1")}},
		{AddEndo: []db.Fact{f("Reg", "S2", "C3")}},
		{Remove: []db.Fact{f("Reg", "S2", "C3")}},
		{AddEndo: []db.Fact{f("Drop", "S4", "C3")}},
		{Remove: []db.Fact{f("Drop", "S4", "C3")}},
		{Remove: []db.Fact{f("Free", "z2")}},
	}
}

// TestPlanApplyDeepDeltaDifferential chains 24 mixed deltas that land deep
// below the top bucket through a hierarchical plan, asserting at every
// step that the incrementally maintained plan is bit-identical to a fresh
// preparation over the evolved snapshot — and, every fourth step, to the
// brute-force reference.
func TestPlanApplyDeepDeltaDifferential(t *testing.T) {
	d := deepInstance()
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method() != MethodHierarchical {
		t.Fatalf("method %v, want hierarchical", plan.Method())
	}
	for i, dl := range deepDeltas() {
		if _, err := plan.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d (%v): %v", i, dl, err)
		}
		got, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want := freshAll(t, eng, plan.Snapshot(), deepQuery, nil)
		assertSameValues(t, fmt.Sprintf("deep step %d", i), got, want)
		if i%4 == 0 {
			snap := plan.Snapshot()
			for _, v := range got {
				brute, err := BruteForceShapley(snap, deepQuery, v.Fact)
				if err != nil {
					t.Fatalf("step %d: brute %s: %v", i, v.Fact, err)
				}
				if v.Value.Cmp(brute) != 0 {
					t.Fatalf("step %d: %s = %s, brute %s", i, v.Fact, v.Value.RatString(), brute.RatString())
				}
			}
		}
	}
	// The chain must have actually exercised deep reuse: on the last
	// applies, most of the tree survives each delta.
	ts := plan.TreeStats()
	if ts.MemoHits == 0 {
		t.Fatalf("no memo hits across the chain: %+v", ts)
	}
}

// TestPlanApplyDeepDeltaExoShap runs a 20-step delta chain through an
// ExoShap-transformed plan (the transformation reruns per version; the
// content-addressed memo still reuses every subtree the transform leaves
// unchanged), asserting bit-identity with fresh preparation throughout.
func TestPlanApplyDeepDeltaExoShap(t *testing.T) {
	d := paperex.RunningExample()
	eng := NewEngine(WithExoRelations("Stud", "Course"))
	plan, err := eng.Prepare(context.Background(), d, paperex.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method() != MethodExoShap {
		t.Fatalf("method %v, want exoshap", plan.Method())
	}
	f := db.F
	steps := []db.Delta{
		{AddEndo: []db.Fact{f("Reg", "Adam", "DB2")}},
		{Remove: []db.Fact{f("Reg", "Adam", "DB2")}},
		{AddEndo: []db.Fact{f("TA", "Caroline")}},
		{Remove: []db.Fact{f("TA", "Caroline")}},
		{AddEndo: []db.Fact{f("Reg", "Ben", "AI")}},
		{AddExo: []db.Fact{f("Stud", "Dana")}},
		{AddEndo: []db.Fact{f("Reg", "Dana", "OS")}},
		{Remove: []db.Fact{f("Reg", "Dana", "OS")}},
		{AddEndo: []db.Fact{f("TA", "Dana")}},
		{Remove: []db.Fact{f("TA", "Dana")}},
		{AddEndo: []db.Fact{f("Free", "w1")}},
		{Remove: []db.Fact{f("Free", "w1")}},
		{Remove: []db.Fact{f("Reg", "Ben", "AI")}},
		{AddEndo: []db.Fact{f("Reg", "Caroline", "DB2")}},
		{Remove: []db.Fact{f("Reg", "Caroline", "DB2")}},
		{Remove: []db.Fact{f("TA", "Ben")}},
		{AddEndo: []db.Fact{f("TA", "Ben")}},
		{AddEndo: []db.Fact{f("Reg", "Adam", "PL")}},
		{Remove: []db.Fact{f("Reg", "Adam", "PL")}},
		{Remove: []db.Fact{f("TA", "Adam")}},
	}
	for i, dl := range steps {
		if _, err := plan.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d (%v): %v", i, dl, err)
		}
		got, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want := freshAll(t, eng, plan.Snapshot(), paperex.Q2(), nil)
		assertSameValues(t, fmt.Sprintf("exoshap step %d", i), got, want)
	}
}

// TestPlanApplyDeepDeltaUCQ runs a 20-step chain through a union plan
// whose disjuncts themselves have nested bucket structure, asserting
// bit-identity with fresh preparation at each version.
func TestPlanApplyDeepDeltaUCQ(t *testing.T) {
	u := query.MustParseUCQ("a() :- R(x), S(x, y) | b() :- T(x, y), !U(x, y)")
	d := db.MustParse(`
endo R(a)
endo S(a, p)
endo S(a, q)
exo  R(b)
endo S(b, p)
endo T(m, n)
endo U(m, n)
exo  T(m, o)
endo Free(z)
`)
	eng := NewEngine()
	plan, err := eng.PrepareUCQ(context.Background(), d, u)
	if err != nil {
		t.Fatal(err)
	}
	f := db.F
	steps := []db.Delta{
		{AddEndo: []db.Fact{f("S", "a", "r")}},
		{Remove: []db.Fact{f("S", "a", "r")}},
		{AddEndo: []db.Fact{f("T", "m", "p2")}},
		{Remove: []db.Fact{f("T", "m", "p2")}},
		{AddEndo: []db.Fact{f("U", "m", "o")}},
		{Remove: []db.Fact{f("U", "m", "n")}, AddExo: []db.Fact{f("U", "m", "n")}},
		{AddEndo: []db.Fact{f("R", "c"), f("S", "c", "p")}},
		{Remove: []db.Fact{f("S", "c", "p")}},
		{Remove: []db.Fact{f("R", "c")}},
		{AddEndo: []db.Fact{f("T", "w", "w")}},
		{Remove: []db.Fact{f("T", "w", "w")}},
		{AddEndo: []db.Fact{f("Free", "z2")}},
		{Remove: []db.Fact{f("Free", "z")}},
		{Remove: []db.Fact{f("U", "m", "n")}, AddEndo: []db.Fact{f("U", "m", "n")}},
		{AddEndo: []db.Fact{f("S", "b", "q")}},
		{Remove: []db.Fact{f("S", "b", "q")}},
		{AddEndo: []db.Fact{f("U", "q1", "q2")}},
		{Remove: []db.Fact{f("U", "q1", "q2")}},
		{Remove: []db.Fact{f("U", "m", "o")}},
		{Remove: []db.Fact{f("Free", "z2")}},
	}
	for i, dl := range steps {
		if _, err := plan.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d (%v): %v", i, dl, err)
		}
		got, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want := freshAll(t, eng, plan.Snapshot(), nil, u)
		assertSameValues(t, fmt.Sprintf("ucq step %d", i), got, want)
	}
}

// TestPlanApplyDeepDeltaBruteReference chains 20 deltas through a small
// hierarchical plan and checks every step against the brute-force
// reference directly (independent of the recursion and the tree alike).
func TestPlanApplyDeepDeltaBruteReference(t *testing.T) {
	d := db.New()
	d.MustAddExo(db.F("Stud", "S1"))
	d.MustAddExo(db.F("Stud", "S2"))
	d.MustAddEndo(db.F("TA", "S1"))
	d.MustAddEndo(db.F("Reg", "S1", "C1"))
	d.MustAddEndo(db.F("Reg", "S2", "C1"))
	d.MustAddEndo(db.F("Drop", "S2", "C1"))
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	f := db.F
	steps := []db.Delta{
		{AddEndo: []db.Fact{f("Reg", "S1", "C2")}},
		{AddEndo: []db.Fact{f("Drop", "S1", "C2")}},
		{Remove: []db.Fact{f("Drop", "S1", "C2")}},
		{Remove: []db.Fact{f("Reg", "S1", "C2")}},
		{AddEndo: []db.Fact{f("TA", "S2")}},
		{Remove: []db.Fact{f("TA", "S2")}},
		{AddEndo: []db.Fact{f("Reg", "S2", "C2")}},
		{AddEndo: []db.Fact{f("Drop", "S2", "C2")}},
		{Remove: []db.Fact{f("Drop", "S2", "C2")}},
		{Remove: []db.Fact{f("Reg", "S2", "C2")}},
		{AddEndo: []db.Fact{f("Free", "q")}},
		{Remove: []db.Fact{f("Free", "q")}},
		{Remove: []db.Fact{f("Drop", "S2", "C1")}, AddExo: []db.Fact{f("Drop", "S2", "C1")}},
		{Remove: []db.Fact{f("Drop", "S2", "C1")}, AddEndo: []db.Fact{f("Drop", "S2", "C1")}},
		{AddEndo: []db.Fact{f("Reg", "S1", "C3")}},
		{Remove: []db.Fact{f("Reg", "S1", "C3")}},
		{Remove: []db.Fact{f("TA", "S1")}},
		{AddEndo: []db.Fact{f("TA", "S1")}},
		{AddEndo: []db.Fact{f("Drop", "S1", "C1")}},
		{Remove: []db.Fact{f("Drop", "S1", "C1")}},
	}
	for i, dl := range steps {
		if _, err := plan.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d (%v): %v", i, dl, err)
		}
		got, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 1})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		snap := plan.Snapshot()
		for _, v := range got {
			brute, err := BruteForceShapley(snap, deepQuery, v.Fact)
			if err != nil {
				t.Fatalf("step %d: brute %s: %v", i, v.Fact, err)
			}
			if v.Value.Cmp(brute) != 0 {
				t.Fatalf("step %d: %s = %s, brute %s\nDB:\n%s", i, v.Fact, v.Value.RatString(), brute.RatString(), snap)
			}
		}
	}
}

// TestPlanConcurrentDeepApplyAndShapley is the race gate for the shared
// memo: one goroutine chains deep deltas (each Apply rolls the memo over
// and promotes surviving subtrees) while readers run single-fact and
// batch queries plus TreeStats against whatever version they pin. Run
// with -race this must be clean; values must match one of the versions.
func TestPlanConcurrentDeepApplyAndShapley(t *testing.T) {
	d := deepInstance()
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	base := plan.NumFacts()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		fNew := db.F("Drop", "S3", "C2")
		for i := 0; i < 30; i++ {
			if _, err := plan.Apply(context.Background(), db.Delta{AddEndo: []db.Fact{fNew}}); err != nil {
				errCh <- err
				return
			}
			if _, err := plan.Apply(context.Background(), db.Delta{Remove: []db.Fact{fNew}}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				vals, err := plan.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
				if err != nil {
					errCh <- err
					return
				}
				if len(vals) != base && len(vals) != base+1 {
					errCh <- fmt.Errorf("torn read: %d values", len(vals))
					return
				}
				view := plan.View()
				if _, err := view.Shapley(context.Background(), db.F("TA", "S1")); err != nil {
					errCh <- err
					return
				}
				_ = plan.TreeStats()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestEnginePrepareFrom: a seeded preparation over an evolved snapshot
// must be bit-identical to a cold one, reuse unchanged subtrees (memo
// hits), and leave the seed plan untouched.
func TestEnginePrepareFrom(t *testing.T) {
	d := deepInstance()
	eng := NewEngine()
	seed, err := eng.Prepare(context.Background(), d, deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	seedVals, err := seed.ShapleyAll(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := d.Apply(db.Delta{AddEndo: []db.Fact{db.F("Reg", "S2", "C3")}})
	if err != nil {
		t.Fatal(err)
	}
	derived, err := eng.PrepareFrom(context.Background(), d2, seed)
	if err != nil {
		t.Fatal(err)
	}
	if derived.Version() != 1 {
		t.Fatalf("derived plan starts at version %d, want 1", derived.Version())
	}
	got, err := derived.ShapleyAll(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := freshAll(t, eng, d2, deepQuery, nil)
	assertSameValues(t, "seeded preparation", got, want)
	ts := derived.TreeStats()
	if ts.MemoHits == 0 {
		t.Fatalf("seeded preparation reused nothing: %+v", ts)
	}
	// The seed still answers for its own snapshot.
	again, err := seed.ShapleyAll(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameValues(t, "seed after PrepareFrom", again, seedVals)

	// Seeding a UCQ plan works the same way.
	u := query.MustParseUCQ("a() :- R(x) | b() :- T(x, y)")
	ud := db.MustParse("endo R(a)\nendo T(m, n)\nendo T(m, o)")
	useed, err := eng.PrepareUCQ(context.Background(), ud, u)
	if err != nil {
		t.Fatal(err)
	}
	ud2, err := ud.Apply(db.Delta{AddEndo: []db.Fact{db.F("T", "p", "q")}})
	if err != nil {
		t.Fatal(err)
	}
	uderived, err := eng.PrepareFrom(context.Background(), ud2, useed)
	if err != nil {
		t.Fatal(err)
	}
	ugot, err := uderived.ShapleyAll(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	uwant := freshAll(t, eng, ud2, nil, u)
	assertSameValues(t, "seeded ucq preparation", ugot, uwant)
}

// TestSatMemoShallowEmulation guards the benchmark's baseline: a memo in
// shallow mode (top-level reuse only, the pre-tree engine's behavior)
// must still produce bit-identical values through a delta chain.
func TestSatMemoShallowEmulation(t *testing.T) {
	d := deepInstance()
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	plan.memo.shallow = true
	for i, dl := range deepDeltas()[:8] {
		if _, err := plan.Apply(context.Background(), dl); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, err := plan.ShapleyAll(context.Background(), BatchOptions{})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want := freshAll(t, eng, plan.Snapshot(), deepQuery, nil)
		assertSameValues(t, fmt.Sprintf("shallow step %d", i), got, want)
	}
}

// TestPlanTreeStats sanity-checks the IR introspection: the university
// workload's q1 tree has one bucket level per student value, per-student
// component products and ground leaves; a deep delta reuses most nodes.
func TestPlanTreeStats(t *testing.T) {
	d := paperex.RunningExample()
	eng := NewEngine()
	plan, err := eng.Prepare(context.Background(), d, paperex.Q1())
	if err != nil {
		t.Fatal(err)
	}
	ts := plan.TreeStats()
	if ts.Nodes == 0 || ts.BucketNodes == 0 || ts.GroundNodes == 0 || ts.Depth < 3 {
		t.Fatalf("implausible tree stats: %+v", ts)
	}
	if ts.MemoHits != 0 || ts.MemoMisses != uint64(ts.Nodes) {
		t.Fatalf("fresh build should miss exactly once per node: %+v", ts)
	}
	if ts.MemoEntries != ts.Nodes {
		t.Fatalf("live entries %d, want %d", ts.MemoEntries, ts.Nodes)
	}
	if _, err := plan.Apply(context.Background(), db.Delta{AddEndo: []db.Fact{db.F("Reg", "Adam", "DB2")}}); err != nil {
		t.Fatal(err)
	}
	ts2 := plan.TreeStats()
	if ts2.MemoHits == 0 || ts2.MemoMisses >= uint64(ts2.Nodes) {
		t.Fatalf("deep delta should reuse most of the tree: %+v", ts2)
	}

	// Brute-force and empty plans have no tree.
	bruteEng := NewEngine(WithBruteForce(true))
	bplan, err := bruteEng.Prepare(context.Background(), d, query.MustParse("q() :- Reg(x, y), !Reg(y, x)"))
	if err != nil {
		t.Fatal(err)
	}
	if ts := bplan.TreeStats(); ts.Nodes != 0 {
		t.Fatalf("brute plan reports a tree: %+v", ts)
	}
}
