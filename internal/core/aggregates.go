package core

import (
	"fmt"
	"math/big"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// Aggregate Shapley values (the §3 remark): for a numerical query
// α(D') = Σ over distinct answers ā of q(x̄) of weight(ā), the game
// v(E) = α(Dx ∪ E) − α(Dx) is a linear combination of the Boolean games of
// the grounded queries q[x̄ → ā]; by linearity of the Shapley value,
//
//	Shapley_α(D, f) = Σ_ā weight(ā) · Shapley(D, q[x̄→ā], f).
//
// The candidate answers are the head projections of homomorphisms of the
// positive part of q into the full database: with safe negation, any answer
// over Dx ∪ E embeds its positive atoms into D, so this set is exhaustive.
// Grounding head variables preserves self-join-freeness and hierarchy, so
// each Boolean Shapley value is computed by the dichotomy-driven Solver.

// CountShapley computes the Shapley value of f for the aggregate
// Count{ x̄ | q } counting distinct answers of q (head variables required).
func (s *Solver) CountShapley(d *db.Database, q *query.CQ, f db.Fact) (*big.Rat, error) {
	return s.aggregateShapley(d, q, f, func([]db.Const) (*big.Rat, error) {
		return big.NewRat(1, 1), nil
	})
}

// SumShapley computes the Shapley value of f for the aggregate
// Sum{ v | q } where v is one of q's head variables whose bindings must be
// integer constants.
func (s *Solver) SumShapley(d *db.Database, q *query.CQ, sumVar string, f db.Fact) (*big.Rat, error) {
	pos := -1
	for i, h := range q.Head {
		if h == sumVar {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("core: sum variable %s is not a head variable of %s", sumVar, q.Name())
	}
	return s.aggregateShapley(d, q, f, func(row []db.Const) (*big.Rat, error) {
		w, ok := new(big.Rat).SetString(string(row[pos]))
		if !ok {
			return nil, fmt.Errorf("core: non-numeric value %q for sum variable %s", row[pos], sumVar)
		}
		return w, nil
	})
}

func (s *Solver) aggregateShapley(d *db.Database, q *query.CQ, f db.Fact, weight func([]db.Const) (*big.Rat, error)) (*big.Rat, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Head) == 0 {
		return nil, fmt.Errorf("core: aggregate query %s must have head variables", q.Name())
	}
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	// Candidate answers: positive part of q over the full database.
	posPart := q.SubQuery(q.Positive())
	posPart.Head = append([]string(nil), q.Head...)
	answers := posPart.Answers(d)

	total := new(big.Rat)
	for _, row := range answers {
		ground := q.Clone()
		ground.Label = fmt.Sprintf("%s@%v", q.Name(), row)
		for i, x := range q.Head {
			ground = ground.SubstituteVar(x, row[i])
		}
		ground.Head = nil
		sv, err := s.Shapley(d, ground, f)
		if err != nil {
			return nil, fmt.Errorf("core: grounded query %s: %w", ground.Name(), err)
		}
		w, err := weight(row)
		if err != nil {
			return nil, err
		}
		total.Add(total, new(big.Rat).Mul(w, sv.Value))
	}
	return total, nil
}

// BruteForceAggregate computes the aggregate game's Shapley value directly
// from the definition, for validating the linearity decomposition. The
// aggregate is Σ over distinct answers of weight(answer).
func BruteForceAggregate(d *db.Database, q *query.CQ, f db.Fact, weight func([]db.Const) (*big.Rat, error)) (*big.Rat, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	endo := d.EndoFacts()
	m := len(endo)
	if m > 20 {
		return nil, fmt.Errorf("core: %d endogenous facts exceed the aggregate brute-force limit", m)
	}
	fi := -1
	for i, e := range endo {
		if e.Key() == f.Key() {
			fi = i
		}
	}
	agg := func(mask uint64) (*big.Rat, error) {
		sub := d.Restrict(func(_ db.Fact, endogenous bool) bool { return !endogenous })
		for i, e := range endo {
			if mask&(1<<uint(i)) != 0 {
				sub.MustAddEndo(e)
			}
		}
		out := new(big.Rat)
		for _, row := range q.Answers(sub) {
			w, err := weight(row)
			if err != nil {
				return nil, err
			}
			out.Add(out, w)
		}
		return out, nil
	}
	cache := make(map[uint64]*big.Rat)
	cachedAgg := func(mask uint64) (*big.Rat, error) {
		if v, ok := cache[mask]; ok {
			return v, nil
		}
		v, err := agg(mask)
		if err != nil {
			return nil, err
		}
		cache[mask] = v
		return v, nil
	}
	total := new(big.Rat)
	fbit := uint64(1) << uint(fi)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		if mask&fbit != 0 {
			continue
		}
		with, err := cachedAgg(mask | fbit)
		if err != nil {
			return nil, err
		}
		without, err := cachedAgg(mask)
		if err != nil {
			return nil, err
		}
		diff := new(big.Rat).Sub(with, without)
		if diff.Sign() == 0 {
			continue
		}
		total.Add(total, diff.Mul(diff, combinat.ShapleyWeight(popcount(mask), m)))
	}
	return total, nil
}

// WeightOne is the Count weight function.
func WeightOne([]db.Const) (*big.Rat, error) { return big.NewRat(1, 1), nil }
