package core

import (
	"math/big"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

func aggregateFixture() (*db.Database, *query.CQ) {
	d := db.MustParse(`
endo Export(Wheat, Japan)
endo Export(Rice, Japan)
endo Export(Corn, France)
exo  Grows(Japan, Rice)
exo  Profit(Japan, Wheat, 10)
exo  Profit(Japan, Rice, 7)
exo  Profit(France, Corn, 5)
`)
	q := query.MustParse("q(p, c, r) :- Export(p, c), !Grows(c, p), Profit(c, p, r)")
	return d, q
}

func TestSumShapleyAgainstBruteForce(t *testing.T) {
	d, q := aggregateFixture()
	s := &Solver{}
	weight := func(row []db.Const) (*big.Rat, error) {
		v, err := strconv.Atoi(string(row[2]))
		if err != nil {
			return nil, err
		}
		return big.NewRat(int64(v), 1), nil
	}
	for _, f := range d.EndoFacts() {
		fast, err := s.SumShapley(d, q, "r", f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		slow, err := BruteForceAggregate(d, q, f, weight)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(slow) != 0 {
			t.Errorf("SumShapley(%s) = %s, brute force %s", f, fast.RatString(), slow.RatString())
		}
	}
	// Each Export fact is the lone contributor to its profit rows:
	// Export(Wheat,Japan) alone yields answer (Wheat,Japan,10) → value 10.
	v, err := s.SumShapley(d, q, "r", db.F("Export", "Wheat", "Japan"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Cmp(big.NewRat(10, 1)) != 0 {
		t.Errorf("Shapley for Export(Wheat,Japan) = %s, want 10", v.RatString())
	}
	// Export(Rice,Japan) is blocked by Grows(Japan,Rice): value 0.
	v, err = s.SumShapley(d, q, "r", db.F("Export", "Rice", "Japan"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Sign() != 0 {
		t.Errorf("Shapley for blocked export = %s, want 0", v.RatString())
	}
}

func TestCountShapleyAgainstBruteForce(t *testing.T) {
	// Count over q1 answers (x, y): how many registrations of non-TAs.
	d := runningExample()
	q := query.MustParse("q(x, y) :- Stud(x), !TA(x), Reg(x, y)")
	s := &Solver{}
	for _, f := range d.EndoFacts() {
		fast, err := s.CountShapley(d, q, f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		slow, err := BruteForceAggregate(d, q, f, WeightOne)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(slow) != 0 {
			t.Errorf("CountShapley(%s) = %s, brute force %s", f, fast.RatString(), slow.RatString())
		}
	}
}

func TestCountShapleyRandom(t *testing.T) {
	q := query.MustParse("q(x) :- R(x, y), !S(y)")
	rng := rand.New(rand.NewSource(31))
	s := &Solver{}
	for trial := 0; trial < 6; trial++ {
		d := randomInstance(rng, q, 3, 3, nil)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		for _, f := range d.EndoFacts() {
			fast, err := s.CountShapley(d, q, f)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := BruteForceAggregate(d, q, f, WeightOne)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Cmp(slow) != 0 {
				t.Fatalf("CountShapley(%s) = %s != brute %s\nDB:\n%s", f, fast.RatString(), slow.RatString(), d)
			}
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	d, q := aggregateFixture()
	s := &Solver{}
	if _, err := s.SumShapley(d, q, "zz", db.F("Export", "Wheat", "Japan")); err == nil {
		t.Fatal("unknown sum variable accepted")
	}
	boolean := query.MustParse("q() :- Export(p, c), !Grows(c, p)")
	if _, err := s.CountShapley(d, boolean, db.F("Export", "Wheat", "Japan")); err == nil {
		t.Fatal("aggregate over Boolean query accepted")
	}
	if _, err := s.CountShapley(d, q, db.F("Grows", "Japan", "Rice")); err == nil {
		t.Fatal("exogenous fact accepted")
	}
	// Non-numeric sum values must error.
	d2 := db.MustParse(`
endo Export(Wheat, Japan)
exo  Profit(Japan, Wheat, NotANumber)
`)
	q2 := query.MustParse("q(p, c, r) :- Export(p, c), Profit(c, p, r)")
	if _, err := s.SumShapley(d2, q2, "r", db.F("Export", "Wheat", "Japan")); err == nil {
		t.Fatal("non-numeric sum value accepted")
	}
}
