package core

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestSolverDifferentialRandomQueries is the broad end-to-end check: random
// safe self-join-free CQ¬s with random exogenous declarations and random
// data. Whenever the dichotomy declares the query tractable, the solver's
// exact value must match brute force for every endogenous fact; whenever it
// declares it intractable, the solver must refuse (and the brute-force
// fallback must engage).
func TestSolverDifferentialRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	cfg := workload.DefaultRandomCQConfig()
	tractableSeen, intractableSeen := 0, 0
	for trial := 0; trial < 300; trial++ {
		q, exo := workload.RandomCQ(rng, cfg)
		if err := q.Validate(); err != nil {
			t.Fatalf("generator produced invalid query %s: %v", q, err)
		}
		if q.HasSelfJoin() {
			t.Fatalf("generator produced self-join %s", q)
		}
		d := workload.RandomForQuery(rng, q, 2, 2, exo, 0.8)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		c := Classify(q, exo)
		solver := &Solver{ExoRelations: exo}
		if c.Tractable {
			tractableSeen++
			for _, f := range d.EndoFacts() {
				v, err := solver.Shapley(d, q, f)
				if err != nil {
					t.Fatalf("%s (exo %v): %v\nDB:\n%s", q, exo, err, d)
				}
				brute, err := BruteForceShapley(d, q, f)
				if err != nil {
					t.Fatal(err)
				}
				if v.Value.Cmp(brute) != 0 {
					t.Fatalf("%s (exo %v, method %v): Shapley(%s) = %s, brute %s\nDB:\n%s",
						q, exo, v.Method, f, v.Value.RatString(), brute.RatString(), d)
				}
			}
		} else {
			intractableSeen++
			f := d.EndoFacts()[0]
			if _, err := solver.Shapley(d, q, f); !errors.Is(err, ErrIntractable) {
				t.Fatalf("%s (exo %v): want ErrIntractable, got %v", q, exo, err)
			}
			fallback := &Solver{ExoRelations: exo, AllowBruteForce: true}
			if _, err := fallback.Shapley(d, q, f); err != nil {
				t.Fatalf("%s: brute-force fallback failed: %v", q, err)
			}
		}
	}
	if tractableSeen < 30 || intractableSeen < 8 {
		t.Fatalf("differential test coverage too thin: %d tractable, %d intractable", tractableSeen, intractableSeen)
	}
}

// TestShapleyAxioms checks the game-theoretic axioms the Shapley value is
// defined by, on the polynomial algorithm's output.
func TestShapleyAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	q := query.MustParse("ax() :- R(x), S(x, y), !T(x, y)")
	for trial := 0; trial < 10; trial++ {
		d := randomInstance(rng, q, 3, 4, nil)
		m := d.NumEndo()
		if m == 0 || m > 10 {
			continue
		}
		// Efficiency: Σ Shapley = q(D) − q(Dx).
		sum := new(big.Rat)
		values := make(map[string]*big.Rat)
		for _, f := range d.EndoFacts() {
			v, err := ShapleyHierarchical(d, q, f)
			if err != nil {
				t.Fatal(err)
			}
			values[f.Key()] = v
			sum.Add(sum, v)
		}
		dx := d.Restrict(func(_ db.Fact, e bool) bool { return !e })
		want := new(big.Rat)
		if q.Eval(d) {
			want.Add(want, big.NewRat(1, 1))
		}
		if q.Eval(dx) {
			want.Sub(want, big.NewRat(1, 1))
		}
		if sum.Cmp(want) != 0 {
			t.Fatalf("efficiency: Σ=%s, want %s\nDB:\n%s", sum.RatString(), want.RatString(), d)
		}
		// Null player: a fact that is never relevant has value 0 (checked
		// via brute-force relevance to stay independent of Algorithms 2/3).
		for _, f := range d.EndoFacts() {
			relevant := false
			others := make([]db.Fact, 0, m-1)
			for _, e := range d.EndoFacts() {
				if e.Key() != f.Key() {
					others = append(others, e)
				}
			}
			for mask := 0; mask < 1<<uint(len(others)); mask++ {
				sub := dx.Clone()
				for i, e := range others {
					if mask&(1<<uint(i)) != 0 {
						sub.MustAddEndo(e)
					}
				}
				before := q.Eval(sub)
				sub.MustAddEndo(f)
				if q.Eval(sub) != before {
					relevant = true
					break
				}
			}
			if !relevant && values[f.Key()].Sign() != 0 {
				t.Fatalf("null player %s has value %s\nDB:\n%s", f, values[f.Key()].RatString(), d)
			}
		}
	}
}

// TestShapleySymmetryAxiom: symmetric players get equal values. Two Reg
// facts for students in identical situations are interchangeable.
func TestShapleySymmetryAxiom(t *testing.T) {
	d := db.MustParse(`
exo  Stud(A)
exo  Stud(B)
endo TA(A)
endo TA(B)
endo Reg(A, C1)
endo Reg(B, C2)
`)
	q := query.MustParse("q() :- Stud(x), !TA(x), Reg(x, y)")
	vA, err := ShapleyHierarchical(d, q, db.F("Reg", "A", "C1"))
	if err != nil {
		t.Fatal(err)
	}
	vB, err := ShapleyHierarchical(d, q, db.F("Reg", "B", "C2"))
	if err != nil {
		t.Fatal(err)
	}
	if vA.Cmp(vB) != 0 {
		t.Fatalf("symmetric facts differ: %s vs %s", vA.RatString(), vB.RatString())
	}
	tA, err := ShapleyHierarchical(d, q, db.F("TA", "A"))
	if err != nil {
		t.Fatal(err)
	}
	tB, err := ShapleyHierarchical(d, q, db.F("TA", "B"))
	if err != nil {
		t.Fatal(err)
	}
	if tA.Cmp(tB) != 0 {
		t.Fatalf("symmetric TA facts differ: %s vs %s", tA.RatString(), tB.RatString())
	}
}
