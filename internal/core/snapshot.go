package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"slices"
	"sort"

	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/query"
)

// This file implements memo snapshots: a structured, process-independent
// export of a Plan's DP-tree that lets another shapleyd replica warm up
// without repeating the preparation's convolution work. The subtlety is
// that nothing address-like survives a process boundary — node keys,
// derived labels and fact digests are all built on per-process maphash
// seeds (see nodeKey / db.Digest) — so a snapshot cannot ship the memo
// itself. Instead it ships the database, the query and the *numeric
// payload* of every node in deterministic tree order, and the importer
// replays the exact structural descent of treeBuilder.build (relevance
// split, bucket partition by sorted value, component split) over its own
// parse of the database: the replay re-derives local labels, keys and
// digests, while the expensive outputs — the core/sat/nonSat vectors and
// the interior convolution products — are injected from the snapshot
// instead of recomputed. Ground leaves are recomputed from the Lemma 3.2
// base case (they are cheap, and doing so cross-validates the routing).
//
// The imported plan is a first-class Plan: its nodes live in a fresh
// content-addressed memo under local keys, so Plan.Apply and
// Engine.PrepareFrom work on it exactly as on a locally prepared plan.

// ErrSnapshotMismatch reports that a PlanSnapshot does not structurally
// agree with the tree the importer derives from the snapshot's own
// database and query — a corrupted or version-skewed snapshot. Importers
// should fall back to a cold preparation.
var ErrSnapshotMismatch = errors.New("core: snapshot does not match the replayed tree structure")

// PlanSnapshot is the wire-encodable export of one Plan: everything a
// peer process needs to rebuild an equivalent plan without redoing the
// numeric work. It is deliberately free of process-local state (keys,
// labels, digests); see the file comment.
type PlanSnapshot struct {
	// Query is the canonical rendering of the plan's query (CQ¬, or a
	// UCQ¬ with '|' between disjuncts when IsUCQ is set).
	Query string
	IsUCQ bool
	// Exo and Brute are the engine policy the plan was prepared under;
	// the importing engine must match.
	Exo   []string
	Brute bool
	// DBText is the plan's database snapshot in the textual format
	// (db.Database.String(), which round-trips through db.Parse in
	// insertion order — order matters: it fixes EndoFacts order and hence
	// result order).
	DBText string
	// Root is the DP-tree payload in deterministic structural order; nil
	// for brute-force and empty-snapshot plans (whose preparation is a
	// clone, not a DP build).
	Root *NodeSnapshot
}

// NodeSnapshot is one DP-tree node's portable payload. Routing state
// (bucket values, relation maps, fact lists) is not shipped: the importer
// recomputes it from the database, and the child order is pinned by the
// same determinism that pins it locally (sorted bucket values, component
// index, disjunct index).
type NodeSnapshot struct {
	Kind uint8
	RelN int
	Free int
	// Core, Sat, NonSat are the node's output vectors and Prod the
	// interior convolution product, one big-endian magnitude per
	// coefficient; nil means the empty (identically zero) vector. Ground
	// leaves ship nothing (all four nil) and are recomputed on import.
	Core     [][]byte
	Sat      [][]byte
	NonSat   [][]byte
	Prod     [][]byte
	Children []*NodeSnapshot
}

// vecToBytes serializes a numeric vector; nil means the empty vector.
func vecToBytes(v numeric.Vec) [][]byte {
	if v.IsEmpty() {
		return nil
	}
	big := v.Big()
	out := make([][]byte, len(big))
	for i, c := range big {
		out[i] = c.Bytes()
	}
	return out
}

// vecFromBytes deserializes a vector written by vecToBytes.
func vecFromBytes(bs [][]byte) numeric.Vec {
	if len(bs) == 0 {
		return numeric.Vec{}
	}
	//repolint:allow numericpurity: wire-deserialization boundary — the bytes decode into a []*big.Int only to enter the numeric kernel via FromBig, which re-runs representation selection
	coeffs := make([]*big.Int, len(bs))
	for i, b := range bs {
		coeffs[i] = new(big.Int).SetBytes(b)
	}
	return numeric.FromBig(coeffs)
}

// Export serializes the plan's current version as a PlanSnapshot. Plans
// whose tree contains opaque benchmark-emulation nodes cannot be
// exported.
func (p *Plan) Export() (*PlanSnapshot, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	snap := &PlanSnapshot{
		Exo:    p.eng.ExoRelations(),
		Brute:  p.eng.brute,
		DBText: p.d.String(),
	}
	if p.cq != nil {
		snap.Query = p.cq.String()
	} else {
		snap.Query, snap.IsUCQ = p.ucq.String(), true
	}
	if root := p.pb.treeRoot(); root != nil {
		ns, err := exportNode(root)
		if err != nil {
			return nil, err
		}
		snap.Root = ns
	}
	return snap, nil
}

// exportNode walks the immutable tree, capturing the numeric payload in
// structural order.
func exportNode(n *dpNode) (*NodeSnapshot, error) {
	if n.kind == nodeOpaque {
		return nil, fmt.Errorf("core: cannot export a plan with opaque (shallow-emulation) nodes")
	}
	ns := &NodeSnapshot{Kind: uint8(n.kind), RelN: n.relN, Free: n.free}
	if n.kind != nodeGround {
		ns.Core = vecToBytes(n.core)
		ns.Sat = vecToBytes(n.sat)
		ns.NonSat = vecToBytes(n.nonSat)
		ns.Prod = vecToBytes(n.prod)
		ns.Children = make([]*NodeSnapshot, len(n.children))
		for i, c := range n.children {
			cs, err := exportNode(c)
			if err != nil {
				return nil, err
			}
			ns.Children[i] = cs
		}
	}
	return ns, nil
}

// ImportPlan rebuilds a Plan from a snapshot exported by Plan.Export in
// another process (or this one). The engine's policy must match the
// snapshot's (exogenous declarations and brute-force flag); the import
// replays the preparation's structural descent over the snapshot's
// database — re-deriving local content addresses — and injects the
// snapshot's vectors instead of re-running the convolutions. On any
// structural disagreement it fails with ErrSnapshotMismatch and the
// caller should prepare cold.
func (e *Engine) ImportPlan(ctx context.Context, snap *PlanSnapshot) (*Plan, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	_, sp := obs.Start(ctx, "engine.import")
	defer sp.End()
	if err := e.matchesPolicy(snap); err != nil {
		return nil, err
	}
	d, err := db.Parse(snap.DBText)
	if err != nil {
		return nil, fmt.Errorf("%w: database: %v", ErrSnapshotMismatch, err)
	}
	u, err := query.ParseUCQ(snap.Query)
	if err != nil {
		return nil, fmt.Errorf("%w: query: %v", ErrSnapshotMismatch, err)
	}
	var (
		cq  *query.CQ
		ucq *query.UCQ
	)
	if snap.IsUCQ {
		ucq = u
	} else {
		if len(u.Disjuncts) != 1 {
			return nil, fmt.Errorf("%w: query %q is a union but IsUCQ is unset", ErrSnapshotMismatch, snap.Query)
		}
		cq = u.Disjuncts[0]
	}
	memo := newSatMemo()
	var pb *PreparedBatch
	if cq != nil {
		pb, err = importCQ(d, cq, e.exo, e.brute, snap.Root, memo)
	} else {
		pb, err = importUCQ(d, ucq, e.exo, e.brute, snap.Root, memo)
	}
	if err != nil {
		return nil, err
	}
	annotatePrepare(sp, pb)
	return &Plan{eng: e, cq: cq, ucq: ucq, d: d, version: 1, pb: pb, memo: memo}, nil
}

// matchesPolicy verifies the engine was constructed for this snapshot.
func (e *Engine) matchesPolicy(snap *PlanSnapshot) error {
	want := append([]string(nil), snap.Exo...)
	sort.Strings(want)
	got := e.ExoRelations()
	mismatch := len(got) != len(want) || e.brute != snap.Brute
	if !mismatch {
		for i := range got {
			if got[i] != want[i] {
				mismatch = true
				break
			}
		}
	}
	if mismatch {
		return fmt.Errorf("%w: engine policy (exo=%v brute=%t) does not match snapshot (exo=%v brute=%t)",
			ErrSnapshotMismatch, got, e.brute, want, snap.Brute)
	}
	return nil
}

// importCQ mirrors prepareCQ's dichotomy dispatch for a snapshot import.
func importCQ(d *db.Database, q *query.CQ, exo map[string]bool, brute bool, root *NodeSnapshot, memo *satMemo) (*PreparedBatch, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := checkExoRelations(d, exo); err != nil {
		return nil, err
	}
	c := Classify(q, exo)
	p := &PreparedBatch{class: c, facts: d.EndoFacts()}
	if len(p.facts) == 0 {
		p.empty, p.method = true, MethodHierarchical
		return p, nil
	}
	switch {
	case c.SelfJoinFree && c.Hierarchical:
		ctx, err := importSatCountContext(d, q, nil, root, memo)
		if err != nil {
			return nil, err
		}
		p.ctx, p.method = ctx, MethodHierarchical
	case c.SelfJoinFree && !c.HasNonHierPath:
		// The DP-tree was built over the ExoShap-transformed instance; the
		// transformation is deterministic — including the prepare path's
		// indexed-vs-dense choice, which depends only on the query — so
		// replaying it yields the same tree the exporter walked.
		ctx, err := importExoShap(d, q, exo, root, memo)
		if err != nil {
			return nil, err
		}
		p.ctx, p.method = ctx, MethodExoShap
	case brute:
		if root != nil {
			return nil, fmt.Errorf("%w: brute-force plan carries a DP-tree payload", ErrSnapshotMismatch)
		}
		p.bruteDB, p.bruteQ, p.method = d.Clone(), q, MethodBruteForce
	default:
		return nil, ErrIntractable
	}
	return p, nil
}

// importUCQ mirrors prepareUCQ for a snapshot import.
func importUCQ(d *db.Database, u *query.UCQ, exo map[string]bool, brute bool, root *NodeSnapshot, memo *satMemo) (*PreparedBatch, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if err := checkExoRelations(d, exo); err != nil {
		return nil, err
	}
	p := &PreparedBatch{facts: d.EndoFacts(), class: classifyUCQ(u)}
	if len(p.facts) == 0 {
		p.empty, p.method = true, MethodHierarchical
		return p, nil
	}
	uctx, err := importUCQSatContext(d, u, root, memo)
	if err != nil {
		if isUCQStructuralError(err) && brute {
			if root != nil {
				return nil, fmt.Errorf("%w: brute-force union plan carries a DP-tree payload", ErrSnapshotMismatch)
			}
			p.bruteDB, p.bruteQ, p.method = d.Clone(), u, MethodBruteForce
			return p, nil
		}
		return nil, err
	}
	p.uctx, p.method = uctx, MethodHierarchical
	return p, nil
}

// importExoShap mirrors prepareExoShap's transform dispatch for a snapshot
// import: indexed first, dense when the instance cannot be represented
// lazily. Both sides of the choice are pure functions of (d, q, exo), so
// importer and exporter always agree on which tree they are walking.
func importExoShap(d *db.Database, q *query.CQ, exo map[string]bool, root *NodeSnapshot, memo *satMemo) (*satCountContext, error) {
	d2, q2, padded, err := exoShapIndexed(d, q, exo)
	if err == nil {
		return importSatCountContext(d2, q2, padded, root, memo)
	}
	if !errors.Is(err, errDenseFallback) {
		return nil, err
	}
	d2, q2, _, err2 := exoShapDense(d, q, exo)
	if err2 != nil {
		return nil, err2
	}
	return importSatCountContext(d2, q2, nil, root, memo)
}

// importSatCountContext mirrors newSatCountContext with the snapshot
// replay in place of the builder.
func importSatCountContext(d *db.Database, q *query.CQ, padded map[string]bool, root *NodeSnapshot, memo *satMemo) (*satCountContext, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.HasSelfJoin() {
		return nil, ErrNotSelfJoinFree
	}
	if !q.IsHierarchical() {
		return nil, ErrNotHierarchical
	}
	if root == nil {
		return nil, fmt.Errorf("%w: tractable plan without a DP-tree payload", ErrSnapshotMismatch)
	}
	im := &treeImporter{b: &treeBuilder{memo: memo}}
	facts, pads := splitPadGroups(factPtrs(d), padded)
	node, err := im.node(q, nil, "", facts, pads, false, root)
	if err != nil {
		return nil, err
	}
	return &satCountContext{q: q, d: d, m: d.NumEndo(), root: node, build: im.b.stats}, nil
}

// importUCQSatContext mirrors newUCQSatContext with the snapshot replay.
func importUCQSatContext(d *db.Database, u *query.UCQ, root *NodeSnapshot, memo *satMemo) (*ucqSatContext, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	relOf := make(map[string]int)
	for i, q := range u.Disjuncts {
		if q.HasSelfJoin() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotSelfJoinFree, q.Name())
		}
		if !q.IsHierarchical() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotHierarchical, q.Name())
		}
		for _, rel := range q.Relations() {
			if j, dup := relOf[rel]; dup && j != i {
				return nil, fmt.Errorf("%w: %s", ErrUCQNotDisjoint, rel)
			}
			relOf[rel] = i
		}
	}
	if root == nil {
		return nil, fmt.Errorf("%w: tractable union plan without a DP-tree payload", ErrSnapshotMismatch)
	}
	im := &treeImporter{b: &treeBuilder{memo: memo}}
	node, err := im.union(u, relOf, factPtrs(d), root)
	if err != nil {
		return nil, err
	}
	return &ucqSatContext{u: u, d: d, m: d.NumEndo(), root: node, build: im.b.stats}, nil
}

// treeImporter replays treeBuilder.build's structural descent, injecting
// snapshot vectors.
type treeImporter struct {
	b *treeBuilder
}

// node rebuilds the dpNode for (q/shape, facts), mirroring
// treeBuilder.build's routing decisions line for line (so that the
// resulting tree — child order included — is exactly what a local
// preparation would construct) while validating each step against sn.
//
//repolint:allow nodeimmut: node construction — fields are written before the node is interned and published
func (im *treeImporter) node(q *query.CQ, shape *dpShape, label string, facts []*taggedFact, pads []*padGroup, prefiltered bool, sn *NodeSnapshot) (*dpNode, error) {
	if sn == nil {
		return nil, fmt.Errorf("%w: missing node payload", ErrSnapshotMismatch)
	}
	b := im.b
	if label == "" {
		label = hashLabel(q.String())
	}
	key := b.key(label, facts, pads)
	if n, ok := b.lookup(key, 0); ok {
		return n, nil
	}
	b.miss()
	if shape == nil {
		var err error
		if shape, err = shapeFrom(q); err != nil {
			return nil, err
		}
	}
	if uint8(shape.kind) != sn.Kind {
		return nil, fmt.Errorf("%w: node kind %d, snapshot has %d", ErrSnapshotMismatch, shape.kind, sn.Kind)
	}

	n := &dpNode{key: key, label: label, kind: shape.kind, q: q, shape: shape}

	// Relevance split, exactly as in build.
	var relevant []*taggedFact
	if prefiltered {
		relevant = facts
		for _, tf := range facts {
			if tf.Endo {
				n.relN++
			}
		}
	} else {
		atomOf := make(map[string]query.Atom, len(q.Atoms))
		for _, a := range q.Atoms {
			atomOf[a.Rel] = a
		}
		for _, tf := range facts {
			if a, in := atomOf[tf.Fact.Rel]; in && query.MatchesAtom(a, tf.Fact) {
				relevant = append(relevant, tf)
				if tf.Endo {
					n.relN++
				}
			} else if tf.Endo {
				n.free++
			}
		}
	}
	n.endo = n.relN + n.free
	if n.relN != sn.RelN || n.free != sn.Free {
		return nil, fmt.Errorf("%w: node has relN=%d free=%d, snapshot has relN=%d free=%d",
			ErrSnapshotMismatch, n.relN, n.free, sn.RelN, sn.Free)
	}

	switch shape.kind {
	case nodeProduct:
		if len(sn.Children) != len(shape.children) {
			return nil, fmt.Errorf("%w: product node with %d components, snapshot has %d",
				ErrSnapshotMismatch, len(shape.children), len(sn.Children))
		}
		childPads, err := routePadsProduct(shape, len(shape.children), pads)
		if err != nil {
			return nil, err
		}
		n.children = make([]*dpNode, len(shape.children))
		for ci := range shape.children {
			rels := shape.compRels[ci]
			var childFacts []*taggedFact
			for _, tf := range relevant {
				if rels[tf.Fact.Rel] {
					childFacts = append(childFacts, tf)
				}
			}
			var kp []*padGroup
			if childPads != nil {
				kp = childPads[ci]
			}
			child, err := im.node(nil, shape.children[ci], b.componentChildLabel(label, ci), childFacts, kp, true, sn.Children[ci])
			if err != nil {
				return nil, err
			}
			n.children[ci] = child
		}
		if err := n.inject(sn); err != nil {
			return nil, err
		}

	case nodeGround:
		// Leaves are recomputed from the base case: cheap, and the
		// recomputation cross-validates that fact routing agreed with the
		// exporter all the way down.
		leafFacts, err := groundPadRows(relevant, pads)
		if err != nil {
			return nil, err
		}
		n.facts = leafFacts
		n.core = groundBaseFacts(leafFacts, shape.lits)
		n.finish()

	default: // nodeBuckets
		buckets := make(map[db.Const][]*taggedFact)
		for _, tf := range relevant {
			v := tf.Fact.Args[shape.posOf[tf.Fact.Rel]]
			buckets[v] = append(buckets[v], tf)
		}
		if len(sn.Children) != len(buckets) {
			return nil, fmt.Errorf("%w: bucket node with %d values, snapshot has %d children",
				ErrSnapshotMismatch, len(buckets), len(sn.Children))
		}
		n.values = make([]db.Const, 0, len(buckets))
		for v := range buckets {
			n.values = append(n.values, v)
		}
		slices.Sort(n.values)
		childPads, err := routePadsBuckets(shape, n.values, pads)
		if err != nil {
			return nil, err
		}
		n.children = make([]*dpNode, len(n.values))
		for bi, v := range n.values {
			childShape, err := shape.bucketChildShape(v)
			if err != nil {
				return nil, err
			}
			var kp []*padGroup
			if childPads != nil {
				kp = childPads[bi]
			}
			child, err := im.node(nil, childShape, b.bucketChildLabel(label, v), buckets[v], kp, true, sn.Children[bi])
			if err != nil {
				return nil, err
			}
			n.children[bi] = child
		}
		if err := n.inject(sn); err != nil {
			return nil, err
		}
	}
	b.store(n, 0)
	return n, nil
}

// union rebuilds a UCQ¬ root, mirroring treeBuilder.buildUnion.
//
//repolint:allow nodeimmut: node construction — fields are written before the node is interned and published
func (im *treeImporter) union(u *query.UCQ, relOf map[string]int, facts []*taggedFact, sn *NodeSnapshot) (*dpNode, error) {
	b := im.b
	label := hashLabel(unionLabelPrefix + u.String())
	key := b.key(label, facts, nil)
	if n, ok := b.lookup(key, 0); ok {
		return n, nil
	}
	b.miss()
	if uint8(nodeUnion) != sn.Kind {
		return nil, fmt.Errorf("%w: union root, snapshot has kind %d", ErrSnapshotMismatch, sn.Kind)
	}
	if len(sn.Children) != len(u.Disjuncts) {
		return nil, fmt.Errorf("%w: union with %d disjuncts, snapshot has %d",
			ErrSnapshotMismatch, len(u.Disjuncts), len(sn.Children))
	}
	n := &dpNode{key: key, label: label, kind: nodeUnion, u: u, relOf: relOf}
	pools := make([][]*taggedFact, len(u.Disjuncts))
	for _, tf := range facts {
		if i, ok := relOf[tf.Fact.Rel]; ok {
			pools[i] = append(pools[i], tf)
			if tf.Endo {
				n.relN++
			}
		} else if tf.Endo {
			n.free++
		}
	}
	n.endo = n.relN + n.free
	if n.relN != sn.RelN || n.free != sn.Free {
		return nil, fmt.Errorf("%w: union has relN=%d free=%d, snapshot has relN=%d free=%d",
			ErrSnapshotMismatch, n.relN, n.free, sn.RelN, sn.Free)
	}
	n.children = make([]*dpNode, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		child, err := im.node(q, nil, b.componentChildLabel(label, i), pools[i], nil, false, sn.Children[i])
		if err != nil {
			return nil, err
		}
		n.children[i] = child
	}
	if err := n.inject(sn); err != nil {
		return nil, err
	}
	b.store(n, 0)
	return n, nil
}

// inject installs the snapshot's vectors on an interior node and derives
// the cheap flags (zero markers, zero-factor count) locally — the
// counterpart of combine+finish without the convolution work.
//
//repolint:allow nodeimmut: construction epilogue — runs on the not-yet-interned node being built
func (n *dpNode) inject(sn *NodeSnapshot) error {
	n.core = vecFromBytes(sn.Core)
	n.sat = vecFromBytes(sn.Sat)
	n.nonSat = vecFromBytes(sn.NonSat)
	n.prod = vecFromBytes(sn.Prod)
	n.satZero = n.sat.IsZero()
	n.nonSatZero = n.nonSat.IsZero()
	for i := range n.children {
		if n.childFactorZero(i) {
			n.zeros++
		}
	}
	// The sat vector spans the node's endogenous facts; a length clash
	// means the payload belongs to a different tree.
	if !n.sat.IsEmpty() && n.sat.Len() != n.endo+1 {
		return fmt.Errorf("%w: sat vector length %d over %d endogenous facts", ErrSnapshotMismatch, n.sat.Len(), n.endo)
	}
	return nil
}
