package core

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// runningExample mirrors Figure 1 (kept local to avoid an import cycle with
// paperex, which is exercised in the experiments tests).
func runningExample() *db.Database {
	return db.MustParse(`
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
exo  Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
exo  Course(OS, EE)
exo  Course(IC, EE)
exo  Course(DB, CS)
exo  Course(AI, CS)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
exo  Adv(Michael, Adam)
exo  Adv(Michael, Ben)
exo  Adv(Naomi, Caroline)
exo  Adv(Michael, David)
`)
}

var q1 = query.MustParse("q1() :- Stud(x), !TA(x), Reg(x, y)")

var example23 = map[string]string{
	"TA(Adam)":         "-3/28",
	"TA(Ben)":          "-2/35",
	"TA(David)":        "0",
	"Reg(Adam,OS)":     "37/210",
	"Reg(Adam,AI)":     "37/210",
	"Reg(Ben,OS)":      "27/140",
	"Reg(Caroline,DB)": "13/42",
	"Reg(Caroline,IC)": "13/42",
}

func mustRat(t *testing.T, s string) *big.Rat {
	t.Helper()
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		t.Fatalf("bad rational %q", s)
	}
	return r
}

func TestExample23HierarchicalExact(t *testing.T) {
	d := runningExample()
	for key, want := range example23 {
		f, err := db.ParseFact(key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ShapleyHierarchical(d, q1, f)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if got.Cmp(mustRat(t, want)) != 0 {
			t.Errorf("Shapley(%s) = %s, want %s", key, got.RatString(), want)
		}
	}
}

func TestExample23BruteForceAgrees(t *testing.T) {
	d := runningExample()
	vals, err := BruteForceShapleyAll(context.Background(), d, q1)
	if err != nil {
		t.Fatal(err)
	}
	sum := new(big.Rat)
	for _, v := range vals {
		want, ok := example23[v.Fact.Key()]
		if !ok {
			t.Fatalf("unexpected endogenous fact %s", v.Fact)
		}
		if v.Value.Cmp(mustRat(t, want)) != 0 {
			t.Errorf("brute Shapley(%s) = %s, want %s", v.Fact, v.Value.RatString(), want)
		}
		sum.Add(sum, v.Value)
	}
	// Efficiency: the values sum to q(D) − q(Dx) = 1 (noted in Example 2.3).
	if sum.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("sum of Shapley values = %s, want 1", sum.RatString())
	}
}

func TestPermutationDefinitionAgrees(t *testing.T) {
	d := runningExample()
	for _, key := range []string{"TA(Ben)", "Reg(Ben,OS)"} {
		f, _ := db.ParseFact(key)
		perm, err := PermutationShapley(d, q1, f)
		if err != nil {
			t.Fatal(err)
		}
		if perm.Cmp(mustRat(t, example23[key])) != 0 {
			t.Errorf("permutation Shapley(%s) = %s, want %s", key, perm.RatString(), example23[key])
		}
	}
}

// bruteSatCount enumerates |Sat(D,q,k)| directly, as ground truth for the
// CntSat algorithm.
func bruteSatCount(t *testing.T, d *db.Database, q *query.CQ) []*big.Int {
	t.Helper()
	endo := d.EndoFacts()
	n := len(endo)
	if n > 16 {
		t.Fatalf("bruteSatCount: too many endogenous facts (%d)", n)
	}
	out := combinat.ZeroVector(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		sub := d.Restrict(func(_ db.Fact, e bool) bool { return !e })
		k := 0
		for i, f := range endo {
			if mask&(1<<uint(i)) != 0 {
				sub.MustAddEndo(f)
				k++
			}
		}
		if q.Eval(sub) {
			out[k].Add(out[k], big.NewInt(1))
		}
	}
	return out
}

func checkSatVector(t *testing.T, d *db.Database, q *query.CQ) {
	t.Helper()
	got, err := SatCountVector(d, q)
	if err != nil {
		t.Fatalf("SatCountVector(%s): %v", q, err)
	}
	want := bruteSatCount(t, d, q)
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", q, len(got), len(want))
	}
	for k := range want {
		if got[k].Cmp(want[k]) != 0 {
			t.Fatalf("%s: sat[%d] = %s, want %s\nDB:\n%s", q, k, got[k], want[k], d)
		}
	}
}

func TestSatCountVectorRunningExample(t *testing.T) {
	checkSatVector(t, runningExample(), q1)
}

func TestSatCountVectorGroundNegation(t *testing.T) {
	// The corrected base case: q() :- Stud(C), ¬TA(C) with TA(C) endogenous
	// has sat[0] = 1 (the paper's literal base case would give 0).
	d := db.New()
	d.MustAddExo(db.F("Stud", "C"))
	d.MustAddEndo(db.F("TA", "C"))
	q := query.MustParse("q() :- Stud(C), !TA(C)")
	sat, err := SatCountVector(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if sat[0].Int64() != 1 || sat[1].Int64() != 0 {
		t.Fatalf("sat = [%s %s], want [1 0]", sat[0], sat[1])
	}
	checkSatVector(t, d, q)
}

// randomInstance builds a random database for the relations of q.
func randomInstance(rng *rand.Rand, q *query.CQ, domSize, perRel int, exo map[string]bool) *db.Database {
	d := db.New()
	dom := make([]db.Const, domSize)
	for i := range dom {
		dom[i] = db.Const(string(rune('a' + i)))
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	for _, rel := range q.Relations() {
		for i := 0; i < perRel; i++ {
			args := make([]db.Const, arity[rel])
			for j := range args {
				args[j] = dom[rng.Intn(domSize)]
			}
			f := db.Fact{Rel: rel, Args: args}
			if d.Contains(f) {
				continue
			}
			endogenous := !exo[rel] && rng.Intn(3) > 0
			d.MustAdd(f, endogenous)
		}
	}
	return d
}

var hierarchicalQueries = []*query.CQ{
	query.MustParse("h1() :- R(x), S(x, y)"),
	query.MustParse("h2() :- R(x, y), !S(y)"),
	query.MustParse("h3() :- R(x), S(x, y), !T(x, y)"),
	query.MustParse("h4() :- R(x), !S(x), T(x, y), U(z)"),
	query.MustParse("h5() :- R(x, x), !S(x, A)"),
	query.MustParse("h6() :- Stud(x), !TA(x), Reg(x, y)"),
	query.MustParse("h7() :- R(x), S(y)"),
	query.MustParse("h8() :- R(x, y), !S(y, x)"),
}

func TestSatCountVectorRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, q := range hierarchicalQueries {
		if !q.IsHierarchical() || q.HasSelfJoin() {
			t.Fatalf("%s must be hierarchical and self-join-free", q)
		}
		for trial := 0; trial < 15; trial++ {
			d := randomInstance(rng, q, 3, 4, nil)
			if d.NumEndo() > 12 {
				continue
			}
			checkSatVector(t, d, q)
		}
	}
}

func TestShapleyHierarchicalRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, q := range hierarchicalQueries {
		for trial := 0; trial < 6; trial++ {
			d := randomInstance(rng, q, 3, 3, nil)
			if d.NumEndo() == 0 || d.NumEndo() > 10 {
				continue
			}
			for _, f := range d.EndoFacts() {
				fast, err := ShapleyHierarchical(d, q, f)
				if err != nil {
					t.Fatalf("%s %s: %v", q, f, err)
				}
				slow, err := BruteForceShapley(d, q, f)
				if err != nil {
					t.Fatal(err)
				}
				if fast.Cmp(slow) != 0 {
					t.Fatalf("%s: Shapley(%s) fast %s != brute %s\nDB:\n%s", q, f, fast.RatString(), slow.RatString(), d)
				}
			}
		}
	}
}

func TestEfficiencyAxiom(t *testing.T) {
	// Σ_f Shapley(f) = q(D) − q(Dx) for every instance.
	rng := rand.New(rand.NewSource(13))
	for _, q := range hierarchicalQueries[:4] {
		for trial := 0; trial < 4; trial++ {
			d := randomInstance(rng, q, 3, 3, nil)
			if d.NumEndo() == 0 {
				continue
			}
			sum := new(big.Rat)
			for _, f := range d.EndoFacts() {
				v, err := ShapleyHierarchical(d, q, f)
				if err != nil {
					t.Fatal(err)
				}
				sum.Add(sum, v)
			}
			dx := d.Restrict(func(_ db.Fact, e bool) bool { return !e })
			want := big.NewRat(0, 1)
			if q.Eval(d) {
				want.Add(want, big.NewRat(1, 1))
			}
			if q.Eval(dx) {
				want.Sub(want, big.NewRat(1, 1))
			}
			if sum.Cmp(want) != 0 {
				t.Fatalf("%s: efficiency violated: sum %s, want %s\nDB:\n%s", q, sum.RatString(), want.RatString(), d)
			}
		}
	}
}

func TestSatCountVectorRejections(t *testing.T) {
	d := runningExample()
	if _, err := SatCountVector(d, query.MustParse("q() :- R(x), S(x, y), T(y)")); !errors.Is(err, ErrNotHierarchical) {
		t.Fatalf("want ErrNotHierarchical, got %v", err)
	}
	if _, err := SatCountVector(d, query.MustParse("q() :- R(x, y), !R(y, x)")); !errors.Is(err, ErrNotSelfJoinFree) {
		t.Fatalf("want ErrNotSelfJoinFree, got %v", err)
	}
}

func TestShapleyErrorsOnNonEndogenous(t *testing.T) {
	d := runningExample()
	if _, err := ShapleyHierarchical(d, q1, db.F("Stud", "Adam")); !errors.Is(err, ErrNotEndogenous) {
		t.Fatalf("want ErrNotEndogenous, got %v", err)
	}
	if _, err := BruteForceShapley(d, q1, db.F("TA", "Zoe")); !errors.Is(err, ErrNotEndogenous) {
		t.Fatalf("want ErrNotEndogenous, got %v", err)
	}
}

func TestExample53ZeroValue(t *testing.T) {
	q := query.MustParse("q() :- R(x, y), !R(y, x)")
	d := db.New()
	d.MustAddEndo(db.F("R", "1", "2"))
	d.MustAddEndo(db.F("R", "2", "1"))
	for _, f := range d.EndoFacts() {
		v, err := BruteForceShapley(d, q, f)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() != 0 {
			t.Errorf("Shapley(%s) = %s, want 0 (Example 5.3)", f, v.RatString())
		}
	}
}

func TestGapConstructionValue(t *testing.T) {
	// §5.1: Shapley(D, q, R(x0)) = n!·n!/(2n+1)! for the explicit gap
	// construction; verified by brute force for small n.
	q := query.MustParse("q() :- R(x), S(x, y), !R(y)")
	for n := 1; n <= 3; n++ {
		d := db.New()
		for i := 0; i <= 2*n; i++ {
			d.MustAddExo(db.F("S", "x"+string(rune('0'+i)), "y"+string(rune('0'+i))))
		}
		for i := 1; i <= n; i++ {
			d.MustAddExo(db.F("R", "x"+string(rune('0'+i))))
			d.MustAddEndo(db.F("R", "y"+string(rune('0'+i))))
		}
		d.MustAddEndo(db.F("R", "x0"))
		for i := n + 1; i <= 2*n; i++ {
			d.MustAddEndo(db.F("R", "x"+string(rune('0'+i))))
		}
		got, err := BruteForceShapley(d, q, db.F("R", "x0"))
		if err != nil {
			t.Fatal(err)
		}
		num := new(big.Int).Mul(combinat.Factorial(n), combinat.Factorial(n))
		want := new(big.Rat).SetFrac(num, combinat.Factorial(2*n+1))
		if got.Cmp(want) != 0 {
			t.Errorf("n=%d: Shapley = %s, want n!n!/(2n+1)! = %s", n, got.RatString(), want.RatString())
		}
	}
}

// --- Solver dispatch ---

func TestSolverDispatchHierarchical(t *testing.T) {
	d := runningExample()
	s := &Solver{}
	v, err := s.Shapley(d, q1, db.F("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != MethodHierarchical {
		t.Fatalf("method = %v, want hierarchical", v.Method)
	}
	if v.Value.Cmp(mustRat(t, "-3/28")) != 0 {
		t.Fatalf("value = %s", v.Value.RatString())
	}
}

func TestSolverDispatchExoShap(t *testing.T) {
	d := runningExample()
	q2 := query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	s := &Solver{ExoRelations: map[string]bool{"Stud": true, "Course": true}}
	v, err := s.Shapley(d, q2, db.F("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != MethodExoShap {
		t.Fatalf("method = %v, want exoshap", v.Method)
	}
	slow, err := BruteForceShapley(d, q2, db.F("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Value.Cmp(slow) != 0 {
		t.Fatalf("ExoShap value %s != brute force %s", v.Value.RatString(), slow.RatString())
	}
}

func TestSolverIntractableWithoutFallback(t *testing.T) {
	d := runningExample()
	q2 := query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	s := &Solver{} // no exogenous declarations: q2 is FP#P-hard
	if _, err := s.Shapley(d, q2, db.F("TA", "Adam")); !errors.Is(err, ErrIntractable) {
		t.Fatalf("want ErrIntractable, got %v", err)
	}
	s.AllowBruteForce = true
	v, err := s.Shapley(d, q2, db.F("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != MethodBruteForce {
		t.Fatalf("method = %v, want brute-force", v.Method)
	}
}

func TestSolverExoViolation(t *testing.T) {
	d := runningExample() // TA has endogenous facts
	s := &Solver{ExoRelations: map[string]bool{"TA": true}}
	if _, err := s.Shapley(d, q1, db.F("Reg", "Adam", "OS")); !errors.Is(err, ErrExoViolated) {
		t.Fatalf("want ErrExoViolated, got %v", err)
	}
}

func TestSolverShapleyAllSumsToDelta(t *testing.T) {
	d := runningExample()
	s := &Solver{}
	vals, err := s.ShapleyAll(d, q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 8 {
		t.Fatalf("got %d values, want 8", len(vals))
	}
	sum := new(big.Rat)
	for _, v := range vals {
		sum.Add(sum, v.Value)
	}
	if sum.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("sum = %s, want 1", sum.RatString())
	}
}

func TestClassifyPaperQueries(t *testing.T) {
	c := Classify(q1, nil)
	if !c.Hierarchical || !c.SelfJoinFree || !c.Tractable || c.HasNonHierPath {
		t.Fatalf("q1 classification wrong: %+v", c)
	}
	q2 := query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	c = Classify(q2, nil)
	if c.Hierarchical || c.Tractable || !c.HasNonHierPath {
		t.Fatalf("q2 with X=∅ classification wrong: %+v", c)
	}
	c = Classify(q2, map[string]bool{"Stud": true, "Course": true})
	if !c.Tractable || c.HasNonHierPath {
		t.Fatalf("q2 with X={Stud,Course} should be tractable: %+v", c)
	}
}

func TestClassificationMethodString(t *testing.T) {
	if MethodHierarchical.String() != "hierarchical" ||
		MethodExoShap.String() != "exoshap" ||
		MethodBruteForce.String() != "brute-force" ||
		Method(99).String() != "?" {
		t.Fatal("Method.String mismatch")
	}
}

// TestExoRelationsSorted pins the deterministic-order contract on the
// engine accessor: the declared set is stored as a map, so the accessor
// must sort rather than leak map iteration order.
func TestExoRelationsSorted(t *testing.T) {
	eng := NewEngine(WithExoRelations("Stud", "Course", "Adv", "Zeta", "Course"))
	got := eng.ExoRelations()
	want := []string{"Adv", "Course", "Stud", "Zeta"}
	if len(got) != len(want) {
		t.Fatalf("ExoRelations() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExoRelations() = %v, want %v", got, want)
		}
	}
}

// TestBruteForceShapleyAllCancel pins the context plumbing on the newly
// context-aware exported brute-force API: a pre-cancelled context must
// surface context.Canceled instead of enumerating 2^n permutations.
func TestBruteForceShapleyAllCancel(t *testing.T) {
	d := runningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BruteForceShapleyAll(ctx, d, q1); !errors.Is(err, context.Canceled) {
		t.Fatalf("BruteForceShapleyAll with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := BruteForceShapleyAllWorkers(ctx, d, q1, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("BruteForceShapleyAllWorkers with cancelled ctx: err = %v, want context.Canceled", err)
	}
}
