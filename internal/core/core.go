// Package core implements the paper's primary contribution: computing the
// Shapley value of database facts for Boolean conjunctive queries with safe
// negation (CQ¬).
//
// It provides:
//   - the definitional ground truth (permutation and subset-sum brute force),
//   - the polynomial-time exact algorithm for hierarchical self-join-free
//     CQ¬s via the reduction to |Sat(D,q,k)| counting (Theorem 3.1,
//     Lemma 3.2),
//   - the ExoShap algorithm (Algorithm 1) extending tractability to every
//     self-join-free CQ¬ without a non-hierarchical path when some relations
//     are declared exogenous (Theorem 4.3),
//   - a dichotomy-driven solver that picks the right algorithm (or reports
//     FP#P-hardness),
//   - the additive Monte-Carlo FPRAS of §5.1, and
//   - aggregate (Count/Sum) Shapley values over CQ¬s by linearity (§3).
package core

import (
	"errors"
	"fmt"

	"repro/internal/db"
	"repro/internal/query"
)

// Errors reported by the exact algorithms.
var (
	// ErrNotSelfJoinFree: the exact algorithms require self-join-free queries.
	ErrNotSelfJoinFree = errors.New("core: query has self-joins")
	// ErrNotHierarchical: the CntSat algorithm requires a hierarchical query.
	ErrNotHierarchical = errors.New("core: query is not hierarchical")
	// ErrIntractable: the query falls on the FP#P-hard side of the dichotomy.
	ErrIntractable = errors.New("core: query is FP#P-hard for exact Shapley computation (Theorems 3.1/4.3)")
	// ErrNotEndogenous: Shapley values are defined for endogenous facts only.
	ErrNotEndogenous = errors.New("core: fact is not an endogenous fact of the database")
	// ErrExoViolated: a relation declared exogenous contains endogenous facts.
	ErrExoViolated = errors.New("core: declared exogenous relation contains endogenous facts")
)

// Method identifies which algorithm produced a Shapley value.
type Method int

const (
	// MethodHierarchical is the polynomial CntSat-based algorithm.
	MethodHierarchical Method = iota
	// MethodExoShap is ExoShap preprocessing followed by the hierarchical
	// algorithm.
	MethodExoShap
	// MethodBruteForce is exponential subset enumeration.
	MethodBruteForce
)

func (m Method) String() string {
	switch m {
	case MethodHierarchical:
		return "hierarchical"
	case MethodExoShap:
		return "exoshap"
	case MethodBruteForce:
		return "brute-force"
	}
	return "?"
}

// Classification records where a query falls in the paper's dichotomies.
type Classification struct {
	SelfJoinFree       bool
	Hierarchical       bool
	HasNonHierPath     bool                       // w.r.t. the declared exogenous relations
	PathWitness        *query.NonHierarchicalPath // set iff HasNonHierPath
	PolarityConsistent bool
	// Tractable reports polynomial-time exact computability per Theorem 4.3
	// (which subsumes Theorem 3.1 when no relations are exogenous). It is
	// only meaningful for self-join-free queries; with self-joins the
	// dichotomy is open (§6) and Tractable is true only in the hierarchical
	// case, which remains tractable regardless.
	Tractable bool
}

// Classify applies the dichotomies of Theorems 3.1 and 4.3 to q with the
// declared exogenous relations exo (may be nil).
func Classify(q *query.CQ, exo map[string]bool) Classification {
	c := Classification{
		SelfJoinFree:       !q.HasSelfJoin(),
		Hierarchical:       q.IsHierarchical(),
		PolarityConsistent: q.IsPolarityConsistent(),
	}
	if w, ok := q.FindNonHierarchicalPath(exo); ok {
		c.HasNonHierPath = true
		c.PathWitness = &w
	}
	if c.Hierarchical {
		c.Tractable = true
	} else if c.SelfJoinFree && !c.HasNonHierPath {
		c.Tractable = true
	}
	return c
}

// Solver computes Shapley values, selecting the algorithm the dichotomy
// permits. The zero value is a valid solver with no exogenous relations and
// no brute-force fallback.
type Solver struct {
	// ExoRelations declares the schema-level exogenous relations (the set X
	// of §4). Every fact of these relations must be exogenous in the data.
	ExoRelations map[string]bool
	// AllowBruteForce enables exponential subset enumeration for queries on
	// the intractable side (or with self-joins). Without it such queries
	// yield ErrIntractable.
	AllowBruteForce bool
}

// checkExo verifies the declared exogenous relations against the data.
func (s *Solver) checkExo(d *db.Database) error {
	return checkExoRelations(d, s.ExoRelations)
}

// Shapley computes Shapley(D, q, f) exactly, reporting the method used.
func (s *Solver) Shapley(d *db.Database, q *query.CQ, f db.Fact) (*ShapleyValue, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	if err := s.checkExo(d); err != nil {
		return nil, err
	}
	c := Classify(q, s.ExoRelations)
	switch {
	case c.SelfJoinFree && c.Hierarchical:
		v, err := ShapleyHierarchical(d, q, f)
		if err != nil {
			return nil, err
		}
		return &ShapleyValue{Fact: f, Value: v, Method: MethodHierarchical}, nil
	case c.SelfJoinFree && !c.HasNonHierPath:
		d2, q2, _, err := ExoShapTransform(d, q, s.ExoRelations)
		if err != nil {
			return nil, err
		}
		v, err := ShapleyHierarchical(d2, q2, f)
		if err != nil {
			return nil, err
		}
		return &ShapleyValue{Fact: f, Value: v, Method: MethodExoShap}, nil
	case s.AllowBruteForce:
		v, err := BruteForceShapley(d, q, f)
		if err != nil {
			return nil, err
		}
		return &ShapleyValue{Fact: f, Value: v, Method: MethodBruteForce}, nil
	default:
		return nil, ErrIntractable
	}
}

// ShapleyAll computes the Shapley value of every endogenous fact. It
// delegates to the batch engine (ShapleyAllBatch), so the query and the
// exogenous declarations are validated once up front — a bad batch fails
// fast with a single error instead of after partial per-fact work — and
// the classification, ExoShap transformation and shared CntSat tables are
// computed once for the whole batch.
func (s *Solver) ShapleyAll(d *db.Database, q *query.CQ) ([]*ShapleyValue, error) {
	return s.ShapleyAllBatch(d, q, BatchOptions{})
}
