package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/query"
)

// ucqSatContext is the compute handle for a relation-disjoint union of
// hierarchical self-join-free CQ¬s: a DP-tree whose root is a union node
// (one child per disjunct pool, combined like a bucket node: the union is
// violated iff every disjunct is), built by the same treeBuilder — and
// stored in the same content-addressed memo — as the CQ and ExoShap paths.
// Per-fact queries toggle the spine containing the fact; Plan.Apply reuses
// every subtree a delta leaves untouched.
//
// The context is immutable after construction and safe for concurrent use.
type ucqSatContext struct {
	u     *query.UCQ
	d     *db.Database // the snapshot (never mutated after preparation)
	m     int          // |Dn| of the full database
	root  *dpNode      // the union-node computation
	build BuildStats   // memo traffic of this construction
}

// isUCQStructuralError reports whether err is one of the structural
// preconditions of the exact UCQ algorithm (as opposed to a data-level
// error), i.e. the cases a brute-force fallback can still answer.
func isUCQStructuralError(err error) bool {
	return errors.Is(err, ErrNotSelfJoinFree) ||
		errors.Is(err, ErrNotHierarchical) ||
		errors.Is(err, ErrUCQNotDisjoint)
}

// newUCQSatContext validates u and materializes the union DP-tree over d.
// memo, prev and cfg play the same roles as in newSatCountContext. The UCQ
// path never runs ExoShap, so there are no padded relations here.
func newUCQSatContext(d *db.Database, u *query.UCQ, memo *satMemo, prev *ucqSatContext, cfg buildConfig) (*ucqSatContext, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	relOf := make(map[string]int)
	for i, q := range u.Disjuncts {
		if q.HasSelfJoin() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotSelfJoinFree, q.Name())
		}
		if !q.IsHierarchical() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotHierarchical, q.Name())
		}
		for _, rel := range q.Relations() {
			if j, dup := relOf[rel]; dup && j != i {
				return nil, fmt.Errorf("%w: %s", ErrUCQNotDisjoint, rel)
			}
			relOf[rel] = i
		}
	}
	c := &ucqSatContext{u: u, d: d, m: d.NumEndo()}
	var prevRoot *dpNode
	if prev != nil && prev.root != nil && prev.u.String() == u.String() {
		prevRoot = prev.root
	}
	b := newTreeBuilder(memo, cfg)
	root, err := b.buildUnion(u, relOf, factPtrs(d), prevRoot)
	if err != nil {
		return nil, err
	}
	c.root, c.build = root, b.stats
	return c, nil
}

// shapley computes Shapley(D, u, f) for an endogenous fact of the
// context's database, reusing the materialized DP-tree. It is bit-for-bit
// identical to ShapleyHierarchicalUCQ(d, u, f).
func (c *ucqSatContext) shapley(ctx context.Context, f db.Fact) (*big.Rat, error) {
	if !c.d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	// A fact of a relation outside every disjunct can never change the
	// union's value, so its Shapley value is identically zero (it is a
	// free filler on both sides of the weighted difference).
	if !c.root.matchesAny(f) {
		return new(big.Rat), nil
	}
	_, tsp := obs.Start(ctx, "tree.toggle")
	with, without, err := c.root.toggle(f)
	tsp.End()
	if err != nil {
		return nil, err
	}
	_, wsp := obs.Start(ctx, "weight")
	v := numeric.WeightedDifference(with, without, c.m)
	wsp.End()
	return v, nil
}

// ShapleyAllUCQ computes the Shapley value of every endogenous fact for a
// union of CQ¬s, mirroring ShapleyAllBatch: the union is validated once,
// the per-disjunct pool DP-tree is shared across the batch, and the
// per-fact toggles fan across opts.Workers goroutines with deterministic
// output order. Unions outside the exact algorithm's reach (self-joins,
// non-hierarchical disjuncts, shared relations) fall back to brute force
// when s.AllowBruteForce is set.
func (s *Solver) ShapleyAllUCQ(d *db.Database, u *query.UCQ, opts BatchOptions) ([]*ShapleyValue, error) {
	p, err := s.PrepareAllUCQ(d, u)
	if err != nil {
		return nil, err
	}
	return p.ShapleyAll(opts)
}
