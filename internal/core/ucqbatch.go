package core

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// ucqSatContext hoists the fact-independent parts of the
// SatCountVectorUCQ computation for batched Shapley values over a
// relation-disjoint union of hierarchical self-join-free CQ¬s: the
// relation→disjunct map, the per-disjunct fact pools, the per-pool
// non-satisfying count vectors and their prefix/suffix convolution
// products, and the binomial vector for endogenous facts matching no
// disjunct. Toggling a fact between endogenous, exogenous and absent only
// changes the pool of its own disjunct, so a per-fact query costs two
// single-pool Sat recomputations plus a constant number of full-length
// convolutions instead of two full SatCountVectorUCQ runs.
//
// The context is immutable after construction and safe for concurrent use.
type ucqSatContext struct {
	u *query.UCQ
	m int // |Dn| of the full database

	poolQ    []*query.CQ
	poolDB   []*db.Database
	poolOf   map[string]int  // endogenous fact key -> pool index
	freeKeys map[string]bool // endogenous facts of relations outside every disjunct
	freeVec  []*big.Int      // BinomialVector(len(freeKeys)), nil when empty

	// pre[i] / suf[i]: convolution of the per-pool NonSat vectors before /
	// after pool i.
	pre, suf [][]*big.Int
}

// isUCQStructuralError reports whether err is one of the structural
// preconditions of the exact UCQ algorithm (as opposed to a data-level
// error), i.e. the cases a brute-force fallback can still answer.
func isUCQStructuralError(err error) bool {
	return errors.Is(err, ErrNotSelfJoinFree) ||
		errors.Is(err, ErrNotHierarchical) ||
		errors.Is(err, ErrUCQNotDisjoint)
}

// newUCQSatContext validates u and precomputes the shared DP state for
// batched Shapley computation over d.
func newUCQSatContext(d *db.Database, u *query.UCQ) (*ucqSatContext, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	relOf := make(map[string]int)
	for i, q := range u.Disjuncts {
		if q.HasSelfJoin() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotSelfJoinFree, q.Name())
		}
		if !q.IsHierarchical() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotHierarchical, q.Name())
		}
		for _, rel := range q.Relations() {
			if j, dup := relOf[rel]; dup && j != i {
				return nil, fmt.Errorf("%w: %s", ErrUCQNotDisjoint, rel)
			}
			relOf[rel] = i
		}
	}
	c := &ucqSatContext{
		u:        u,
		m:        d.NumEndo(),
		poolOf:   make(map[string]int),
		freeKeys: make(map[string]bool),
	}
	pools := make([]*db.Database, len(u.Disjuncts))
	for i := range pools {
		pools[i] = db.New()
	}
	for _, f := range d.Facts() {
		if i, ok := relOf[f.Rel]; ok {
			pools[i].MustAdd(f, d.IsEndogenous(f))
			if d.IsEndogenous(f) {
				c.poolOf[f.Key()] = i
			}
		} else if d.IsEndogenous(f) {
			c.freeKeys[f.Key()] = true
		}
	}
	if len(c.freeKeys) > 0 {
		c.freeVec = combinat.BinomialVector(len(c.freeKeys))
	}
	vecs := make([][]*big.Int, 0, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		sat, err := SatCountVector(pools[i], q)
		if err != nil {
			return nil, err
		}
		c.poolQ = append(c.poolQ, q)
		c.poolDB = append(c.poolDB, pools[i])
		vecs = append(vecs, combinat.ComplementVector(sat, pools[i].NumEndo()))
	}
	c.pre, c.suf = prefixSuffixConv(vecs)
	return c, nil
}

// shapley computes Shapley(D, u, f) for an endogenous fact of the
// context's database, reusing the precomputed DP state. It is bit-for-bit
// identical to ShapleyHierarchicalUCQ(d, u, f).
func (c *ucqSatContext) shapley(f db.Fact) (*big.Rat, error) {
	i, ok := c.poolOf[f.Key()]
	if !ok {
		// A fact of a relation outside every disjunct can never change the
		// union's value, so its Shapley value is identically zero (it is a
		// free filler on both sides of the weighted difference).
		if c.freeKeys[f.Key()] {
			return new(big.Rat), nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	with, err := c.toggledUnionSat(i, f, true)
	if err != nil {
		return nil, err
	}
	without, err := c.toggledUnionSat(i, f, false)
	if err != nil {
		return nil, err
	}
	return combinat.WeightedDifference(with, without, c.m), nil
}

// toggledUnionSat returns |Sat(D±f, u, k)| for k = 0..m−1, recomputing only
// the pool of disjunct i: f is moved to the exogenous side when asExo is
// true and removed otherwise.
func (c *ucqSatContext) toggledUnionSat(i int, f db.Fact, asExo bool) ([]*big.Int, error) {
	pool := c.poolDB[i]
	var (
		toggled *db.Database
		err     error
	)
	if asExo {
		toggled, err = pool.WithExogenous(f)
	} else {
		toggled, err = pool.Without(f)
	}
	if err != nil {
		return nil, err
	}
	sat, err := SatCountVector(toggled, c.poolQ[i])
	if err != nil {
		return nil, err
	}
	nonSat := combinat.ComplementVector(sat, pool.NumEndo()-1)
	all := convolve3(c.pre[i], nonSat, c.suf[i])
	if c.freeVec != nil {
		all = combinat.Convolve(all, c.freeVec)
	}
	return complementTotal(all, c.m-1), nil
}

// ShapleyAllUCQ computes the Shapley value of every endogenous fact for a
// union of CQ¬s, mirroring ShapleyAllBatch: the union is validated once,
// the per-disjunct pools and NonSat tables are shared across the batch,
// and the per-fact toggles fan across opts.Workers goroutines with
// deterministic output order. Unions outside the exact algorithm's reach
// (self-joins, non-hierarchical disjuncts, shared relations) fall back to
// brute force when s.AllowBruteForce is set.
func (s *Solver) ShapleyAllUCQ(d *db.Database, u *query.UCQ, opts BatchOptions) ([]*ShapleyValue, error) {
	p, err := s.PrepareAllUCQ(d, u)
	if err != nil {
		return nil, err
	}
	return p.ShapleyAll(opts)
}
