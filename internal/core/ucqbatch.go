package core

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// ucqSatContext hoists the fact-independent parts of the
// SatCountVectorUCQ computation for batched Shapley values over a
// relation-disjoint union of hierarchical self-join-free CQ¬s: the
// relation→disjunct map, the per-disjunct fact pools, the per-pool
// non-satisfying count vectors with their leave-one-out convolution
// product, and the binomial vector for endogenous facts matching no
// disjunct. Toggling a fact between endogenous, exogenous and absent only
// changes the pool of its own disjunct, so a per-fact query costs two
// single-pool Sat recomputations plus one exact polynomial division and
// convolution instead of two full SatCountVectorUCQ runs. The same
// structure makes Plan.Apply incremental: per-pool vectors are keyed by
// pool content (satMemo) and the product is updated by dividing out stale
// factors.
//
// The context is immutable after construction and safe for concurrent use.
type ucqSatContext struct {
	u *query.UCQ
	m int // |Dn| of the full database

	units    []subUnit       // one per disjunct; vec = pool NonSat
	poolOf   map[string]int  // endogenous fact key -> pool index
	freeKeys map[string]bool // endogenous facts of relations outside every disjunct
	freeVec  []*big.Int      // BinomialVector(len(freeKeys)), nil when empty

	relN  int // endogenous facts inside the pools
	prod  []*big.Int
	zeros int
}

// isUCQStructuralError reports whether err is one of the structural
// preconditions of the exact UCQ algorithm (as opposed to a data-level
// error), i.e. the cases a brute-force fallback can still answer.
func isUCQStructuralError(err error) bool {
	return errors.Is(err, ErrNotSelfJoinFree) ||
		errors.Is(err, ErrNotHierarchical) ||
		errors.Is(err, ErrUCQNotDisjoint)
}

// newUCQSatContext validates u and precomputes the shared DP state for
// batched Shapley computation over d. A non-nil memo caches the per-pool
// NonSat vectors by content, and a prev context lets the leave-one-out
// product update by division instead of a full re-convolution, so
// Plan.Apply recomputes only the pools a delta touches.
func newUCQSatContext(d *db.Database, u *query.UCQ, memo *satMemo, prev *ucqSatContext) (*ucqSatContext, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	relOf := make(map[string]int)
	for i, q := range u.Disjuncts {
		if q.HasSelfJoin() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotSelfJoinFree, q.Name())
		}
		if !q.IsHierarchical() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotHierarchical, q.Name())
		}
		for _, rel := range q.Relations() {
			if j, dup := relOf[rel]; dup && j != i {
				return nil, fmt.Errorf("%w: %s", ErrUCQNotDisjoint, rel)
			}
			relOf[rel] = i
		}
	}
	c := &ucqSatContext{
		u:        u,
		m:        d.NumEndo(),
		poolOf:   make(map[string]int),
		freeKeys: make(map[string]bool),
	}
	pools := make([][]taggedFact, len(u.Disjuncts))
	for _, f := range d.Facts() {
		endo := d.IsEndogenous(f)
		if i, ok := relOf[f.Rel]; ok {
			pools[i] = append(pools[i], taggedFact{f, endo})
			if endo {
				c.poolOf[f.Key()] = i
				c.relN++
			}
		} else if endo {
			c.freeKeys[f.Key()] = true
		}
	}
	if len(c.freeKeys) > 0 {
		c.freeVec = combinat.BinomialVector(len(c.freeKeys))
	}
	for i, q := range u.Disjuncts {
		endoN := 0
		for _, tf := range pools[i] {
			if tf.endo {
				endoN++
			}
		}
		unit := subUnit{q: q, facts: pools[i], endo: endoN, key: memoKey('u', q, pools[i])}
		nonSat, hit := memo.lookup(unit.key)
		if !hit {
			sat, err := SatCountVector(dbOf(pools[i]), q)
			if err != nil {
				return nil, err
			}
			nonSat = combinat.ComplementVector(sat, endoN)
			memo.store(unit.key, nonSat)
		}
		unit.vec, unit.zero = nonSat, combinat.IsZeroVector(nonSat)
		c.units = append(c.units, unit)
	}
	for i := range c.units {
		if c.units[i].zero {
			c.zeros++
		}
	}
	if prev != nil && prev.prod != nil {
		c.prod = updateProd(prev.prod, prev.units, c.units)
	} else {
		vecs := make([][]*big.Int, 0, len(c.units))
		for i := range c.units {
			if !c.units[i].zero {
				vecs = append(vecs, c.units[i].vec)
			}
		}
		c.prod = combinat.ConvolveAll(vecs)
	}
	return c, nil
}

// shapley computes Shapley(D, u, f) for an endogenous fact of the
// context's database, reusing the precomputed DP state. It is bit-for-bit
// identical to ShapleyHierarchicalUCQ(d, u, f).
func (c *ucqSatContext) shapley(f db.Fact) (*big.Rat, error) {
	i, ok := c.poolOf[f.Key()]
	if !ok {
		// A fact of a relation outside every disjunct can never change the
		// union's value, so its Shapley value is identically zero (it is a
		// free filler on both sides of the weighted difference).
		if c.freeKeys[f.Key()] {
			return new(big.Rat), nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	with, err := c.toggledUnionSat(i, f, true)
	if err != nil {
		return nil, err
	}
	without, err := c.toggledUnionSat(i, f, false)
	if err != nil {
		return nil, err
	}
	return combinat.WeightedDifference(with, without, c.m), nil
}

// toggledUnionSat returns |Sat(D±f, u, k)| for k = 0..m−1, recomputing only
// the pool of disjunct i: f is moved to the exogenous side when asExo is
// true and removed otherwise.
func (c *ucqSatContext) toggledUnionSat(i int, f db.Fact, asExo bool) ([]*big.Int, error) {
	unit := &c.units[i]
	key := f.Key()
	toggled := db.New()
	found := false
	for _, tf := range unit.facts {
		switch {
		case tf.f.Key() != key:
			toggled.MustAdd(tf.f, tf.endo)
		case !tf.endo:
			return nil, fmt.Errorf("db: %s is not an endogenous fact", f)
		default:
			found = true
			if asExo {
				toggled.MustAdd(tf.f, false)
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("db: %s is not a fact of the database", f)
	}
	sat, err := SatCountVector(toggled, unit.q)
	if err != nil {
		return nil, err
	}
	nonSat := combinat.ComplementVector(sat, unit.endo-1)
	var all []*big.Int
	if others := leaveOneOut(c.prod, c.zeros, unit); others == nil {
		all = combinat.ZeroVector(c.relN - 1)
	} else {
		all = combinat.Convolve(others, nonSat)
	}
	if c.freeVec != nil {
		all = combinat.Convolve(all, c.freeVec)
	}
	return complementTotal(all, c.m-1), nil
}

// ShapleyAllUCQ computes the Shapley value of every endogenous fact for a
// union of CQ¬s, mirroring ShapleyAllBatch: the union is validated once,
// the per-disjunct pools and NonSat tables are shared across the batch,
// and the per-fact toggles fan across opts.Workers goroutines with
// deterministic output order. Unions outside the exact algorithm's reach
// (self-joins, non-hierarchical disjuncts, shared relations) fall back to
// brute force when s.AllowBruteForce is set.
func (s *Solver) ShapleyAllUCQ(d *db.Database, u *query.UCQ, opts BatchOptions) ([]*ShapleyValue, error) {
	p, err := s.PrepareAllUCQ(d, u)
	if err != nil {
		return nil, err
	}
	return p.ShapleyAll(opts)
}
