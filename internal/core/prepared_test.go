package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestPreparedBatchReuse: one PrepareAll must serve repeated ShapleyAll and
// single-fact Shapley calls with values bit-for-bit identical to the
// unprepared paths.
func TestPreparedBatchReuse(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 12, Courses: 4, RegPerStudent: 2, TAFraction: 0.4, Seed: 5,
	})
	q1 := paperex.Q1()
	s := &Solver{}
	want, err := s.ShapleyAll(d, q1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.PrepareAll(d, q1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Method(), MethodHierarchical; got != want {
		t.Fatalf("method = %v, want %v", got, want)
	}
	if !p.Classification().Tractable {
		t.Fatal("prepared classification must be tractable")
	}
	if p.NumFacts() != len(want) {
		t.Fatalf("NumFacts = %d, want %d", p.NumFacts(), len(want))
	}
	for round := 0; round < 3; round++ {
		got, err := p.ShapleyAll(BatchOptions{Workers: 1 + round})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if !v.Fact.Equal(want[i].Fact) || v.Value.Cmp(want[i].Value) != 0 {
				t.Fatalf("round %d: Shapley(%s) = %s, want %s", round, v.Fact, v.Value.RatString(), want[i].Value.RatString())
			}
		}
	}
	for i, f := range p.Facts() {
		v, err := p.Shapley(f)
		if err != nil {
			t.Fatal(err)
		}
		if v.Value.Cmp(want[i].Value) != 0 {
			t.Fatalf("single-fact Shapley(%s) = %s, want %s", f, v.Value.RatString(), want[i].Value.RatString())
		}
	}
}

// TestPreparedBatchExoShap: preparation must hoist the ExoShap
// transformation too, and still agree with the unprepared solver.
func TestPreparedBatchExoShap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := workload.DefaultRandomCQConfig()
	checked := 0
	for trial := 0; trial < 200 && checked < 10; trial++ {
		q, exo := workload.RandomCQ(rng, cfg)
		d := workload.RandomForQuery(rng, q, 2, 2, exo, 0.8)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		c := Classify(q, exo)
		if !c.Tractable || c.Hierarchical || !c.SelfJoinFree {
			continue // only the genuine ExoShap cases
		}
		checked++
		s := &Solver{ExoRelations: exo}
		p, err := s.PrepareAll(d, q)
		if err != nil {
			t.Fatal(err)
		}
		if p.Method() != MethodExoShap {
			t.Fatalf("method = %v, want %v", p.Method(), MethodExoShap)
		}
		for _, f := range d.EndoFacts() {
			got, err := p.Shapley(f)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.Shapley(d, q, f)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value.Cmp(want.Value) != 0 {
				t.Fatalf("Shapley(%s) = %s, want %s", f, got.Value.RatString(), want.Value.RatString())
			}
		}
	}
	if checked == 0 {
		t.Fatal("no ExoShap instances generated")
	}
}

// TestPreparedBatchIntractable: without brute force, preparation itself
// reports ErrIntractable; with it, the handle serves brute-force values.
func TestPreparedBatchIntractable(t *testing.T) {
	d := db.MustParse(`
endo R(a)
endo S(a, b)
endo T(b)
`)
	q := paperex.QRST()
	s := &Solver{}
	if _, err := s.PrepareAll(d, q); !errors.Is(err, ErrIntractable) {
		t.Fatalf("want ErrIntractable, got %v", err)
	}
	s.AllowBruteForce = true
	p, err := s.PrepareAll(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method() != MethodBruteForce {
		t.Fatalf("method = %v, want %v", p.Method(), MethodBruteForce)
	}
	vals, err := p.ShapleyAll(BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		want, err := BruteForceShapley(d, q, v.Fact)
		if err != nil {
			t.Fatal(err)
		}
		if v.Value.Cmp(want) != 0 {
			t.Fatalf("Shapley(%s) = %s, brute %s", v.Fact, v.Value.RatString(), want.RatString())
		}
		single, err := p.Shapley(v.Fact)
		if err != nil {
			t.Fatal(err)
		}
		if single.Value.Cmp(want) != 0 {
			t.Fatalf("single Shapley(%s) = %s, brute %s", v.Fact, single.Value.RatString(), want.RatString())
		}
	}
}

// TestBruteForceShapleyAllWorkers: the parallel enumeration with per-worker
// game caches must match the per-fact oracle at every worker count, in
// deterministic d.EndoFacts() order.
func TestBruteForceShapleyAllWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		d := db.New()
		dom := []db.Const{"a", "b", "c"}
		for i := 0; i < 8; i++ {
			f := db.NewFact("R", dom[rng.Intn(3)], dom[rng.Intn(3)])
			if !d.Contains(f) {
				d.MustAdd(f, rng.Intn(4) > 0)
			}
		}
		if d.NumEndo() == 0 {
			continue
		}
		// A self-join query: only the brute-force oracle applies.
		q := paperex.Example53Query()
		facts := d.EndoFacts()
		for _, workers := range []int{1, 3, 16} {
			got, err := BruteForceShapleyAllWorkers(context.Background(), d, q, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(facts) {
				t.Fatalf("workers=%d: %d results for %d facts", workers, len(got), len(facts))
			}
			for i, v := range got {
				if !v.Fact.Equal(facts[i]) {
					t.Fatalf("workers=%d: result %d is %s, want %s", workers, i, v.Fact, facts[i])
				}
				want, err := BruteForceShapley(d, q, facts[i])
				if err != nil {
					t.Fatal(err)
				}
				if v.Value.Cmp(want) != 0 {
					t.Fatalf("workers=%d: Shapley(%s) = %s, want %s", workers, v.Fact, v.Value.RatString(), want.RatString())
				}
			}
		}
	}
}

// TestShapleyAllUCQDifferential: the batched UCQ engine must agree
// bit-for-bit with the per-fact ShapleyHierarchicalUCQ at every worker
// count, including the free facts outside every disjunct.
func TestShapleyAllUCQDifferential(t *testing.T) {
	u := query.MustParseUCQ(`
qa() :- R(x), S(x, y), !T(x, y)
qb() :- U(x, y), !V(y)`)
	rng := rand.New(rand.NewSource(321))
	checked := 0
	for trial := 0; trial < 8; trial++ {
		d := db.New()
		dom := []db.Const{"a", "b", "c"}
		pick := func() db.Const { return dom[rng.Intn(len(dom))] }
		add := func(f db.Fact) {
			if !d.Contains(f) {
				d.MustAdd(f, rng.Intn(3) > 0)
			}
		}
		for i := 0; i < 3; i++ {
			add(db.NewFact("R", pick()))
			add(db.NewFact("S", pick(), pick()))
			add(db.NewFact("T", pick(), pick()))
			add(db.NewFact("U", pick(), pick()))
			add(db.NewFact("V", pick()))
			add(db.NewFact("Free", pick()))
		}
		if d.NumEndo() == 0 {
			continue
		}
		checked++
		s := &Solver{}
		facts := d.EndoFacts()
		for _, workers := range []int{1, 4} {
			got, err := s.ShapleyAllUCQ(d, u, BatchOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(facts) {
				t.Fatalf("workers=%d: %d results for %d facts", workers, len(got), len(facts))
			}
			for i, v := range got {
				if !v.Fact.Equal(facts[i]) {
					t.Fatalf("workers=%d: result %d is %s, want %s", workers, i, v.Fact, facts[i])
				}
				want, err := ShapleyHierarchicalUCQ(d, u, facts[i])
				if err != nil {
					t.Fatal(err)
				}
				if v.Value.Cmp(want) != 0 {
					t.Fatalf("workers=%d: Shapley(%s) = %s, per-fact %s\nDB:\n%s", workers, v.Fact, v.Value.RatString(), want.RatString(), d)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no instances generated")
	}
}

// TestShapleyAllUCQBruteFallback: unions outside the exact algorithm fall
// back to brute force only when allowed.
func TestShapleyAllUCQBruteFallback(t *testing.T) {
	u := query.MustParseUCQ("qa() :- R(x) | qb() :- R(x), S(x)")
	d := db.MustParse(`
endo R(a)
endo S(a)
endo R(b)
`)
	s := &Solver{}
	if _, err := s.ShapleyAllUCQ(d, u, BatchOptions{}); !errors.Is(err, ErrUCQNotDisjoint) {
		t.Fatalf("want ErrUCQNotDisjoint, got %v", err)
	}
	s.AllowBruteForce = true
	vals, err := s.ShapleyAllUCQ(d, u, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v.Method != MethodBruteForce {
			t.Fatalf("method = %v, want brute force", v.Method)
		}
		want, err := BruteForceShapley(d, u, v.Fact)
		if err != nil {
			t.Fatal(err)
		}
		if v.Value.Cmp(want) != 0 {
			t.Fatalf("Shapley(%s) = %s, brute %s", v.Fact, v.Value.RatString(), want.RatString())
		}
	}
}

// TestPreparedBatchEmptyDatabase: a database with no endogenous facts
// yields the empty batch even for queries on the intractable side — the
// historical ShapleyAllBatch short-circuit.
func TestPreparedBatchEmptyDatabase(t *testing.T) {
	d := db.MustParse(`
exo R(a)
exo S(a, b)
exo T(b)
`)
	s := &Solver{}
	// QRST is intractable without declarations; the empty batch must still
	// succeed, as it did before PrepareAll existed.
	vals, err := s.ShapleyAllBatch(d, paperex.QRST(), BatchOptions{})
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if len(vals) != 0 {
		t.Fatalf("%d values for an empty endogenous set", len(vals))
	}
	p, err := s.PrepareAll(d, paperex.QRST())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Shapley(db.F("R", "a")); !errors.Is(err, ErrNotEndogenous) {
		t.Fatalf("want ErrNotEndogenous from the empty handle, got %v", err)
	}
	u := query.MustParseUCQ("qa() :- R(x) | qb() :- R(x), S(x, y)")
	if vals, err := s.ShapleyAllUCQ(d, u, BatchOptions{}); err != nil || len(vals) != 0 {
		t.Fatalf("empty UCQ batch: %v, %d values", err, len(vals))
	}
}

// TestPreparedBatchSnapshotsBruteDatabase: the handle must answer for the
// database as it was at preparation time on every path, including brute
// force (which clones rather than aliasing the caller's pointer).
func TestPreparedBatchSnapshotsBruteDatabase(t *testing.T) {
	d := db.MustParse(`
endo R(a)
endo S(a, b)
endo T(b)
`)
	s := &Solver{AllowBruteForce: true}
	p, err := s.PrepareAll(d, paperex.QRST())
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.ShapleyAll(BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the live database after preparation.
	d.MustAddEndo(db.F("R", "b"))
	got, err := p.ShapleyAll(BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != p.NumFacts() {
		t.Fatalf("snapshot grew: %d values, prepared with %d", len(got), p.NumFacts())
	}
	for i := range got {
		if got[i].Value.Cmp(want[i].Value) != 0 {
			t.Fatalf("snapshot value drifted for %s", got[i].Fact)
		}
	}
}
