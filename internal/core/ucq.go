package core

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/query"
)

// ErrUCQNotDisjoint is returned when the exact UCQ algorithm is applied to
// a union whose disjuncts share relation symbols.
var ErrUCQNotDisjoint = errors.New("core: UCQ disjuncts share relation symbols; exact counting requires pairwise relation-disjoint disjuncts")

// SatCountVectorUCQ computes |Sat(D, u, k)| for a union of CQ¬s whose
// disjuncts are hierarchical, self-join-free and pairwise relation-disjoint.
// Disjointness makes the disjuncts probabilistically independent over
// subset choice: a subset violates the union iff its per-disjunct parts
// violate every disjunct, so the non-satisfying counts convolve exactly as
// in the root-variable case of the CntSat recursion. (This covers the
// natural UCQ¬ extension of the tractable side; the paper's qSAT shows the
// union structure is otherwise genuinely harder.)
func SatCountVectorUCQ(d *db.Database, u *query.UCQ) ([]*big.Int, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[string]int)
	for i, q := range u.Disjuncts {
		if q.HasSelfJoin() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotSelfJoinFree, q.Name())
		}
		if !q.IsHierarchical() {
			return nil, fmt.Errorf("%w (disjunct %s)", ErrNotHierarchical, q.Name())
		}
		for _, rel := range q.Relations() {
			if j, dup := seen[rel]; dup && j != i {
				return nil, fmt.Errorf("%w: %s", ErrUCQNotDisjoint, rel)
			}
			seen[rel] = i
		}
	}

	n := d.NumEndo()
	relOf := make(map[string]int) // relation -> disjunct index
	for i, q := range u.Disjuncts {
		for _, rel := range q.Relations() {
			relOf[rel] = i
		}
	}
	pools := make([]*db.Database, len(u.Disjuncts))
	for i := range pools {
		pools[i] = db.New()
	}
	freeEndo := 0
	for _, f := range d.Facts() {
		if i, ok := relOf[f.Rel]; ok {
			pools[i].MustAdd(f, d.IsEndogenous(f))
		} else if d.IsEndogenous(f) {
			freeEndo++
		}
	}
	nonSat := make([]numeric.Vec, 0, len(u.Disjuncts)+1)
	for i, q := range u.Disjuncts {
		sat, err := cntSat(pools[i], q)
		if err != nil {
			return nil, err
		}
		nonSat = append(nonSat, numeric.Complement(sat, pools[i].NumEndo()))
	}
	if freeEndo > 0 {
		nonSat = append(nonSat, numeric.Binomial(freeEndo))
	}
	allNonSat := numeric.ConvolveAll(nonSat)
	return numeric.ComplementTotal(allNonSat, n).Big(), nil
}

// ShapleyHierarchicalUCQ computes Shapley(D, u, f) exactly for a
// relation-disjoint union of hierarchical self-join-free CQ¬s, via the same
// |Sat| reduction as the single-query case.
func ShapleyHierarchicalUCQ(d *db.Database, u *query.UCQ, f db.Fact) (*big.Rat, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	m := d.NumEndo()
	dWith, err := d.WithExogenous(f)
	if err != nil {
		return nil, err
	}
	satWith, err := SatCountVectorUCQ(dWith, u)
	if err != nil {
		return nil, err
	}
	dWithout, err := d.Without(f)
	if err != nil {
		return nil, err
	}
	satWithout, err := SatCountVectorUCQ(dWithout, u)
	if err != nil {
		return nil, err
	}
	return combinat.WeightedDifference(satWith, satWithout, m), nil
}
