package core

import (
	"context"
	"runtime"
	"sort"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/query"
)

// Engine is the entry point of the v2 compute API: an immutable bundle of
// computation policy — default worker-pool size, brute-force fallback and
// schema-level exogenous relations — configured once with functional
// options and shared by any number of Prepare calls. Where Solver couples
// policy to each call, an Engine is what a serving layer holds for its
// lifetime; the Plans it prepares are the versioned, incrementally
// maintainable successors of PreparedBatch.
//
// An Engine is safe for concurrent use.
type Engine struct {
	workers   int
	prepPar   int
	spawnCost int
	brute     bool
	exo       map[string]bool

	// scratch recycles DP-tree construction scratch (see scratchPool)
	// across every build this engine runs — fresh Prepare, PrepareFrom
	// seeding and Plan.Apply spine rebuilds alike.
	scratch *scratchPool
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithWorkers sets the default worker-pool size Plans of this engine use
// for ShapleyAll when BatchOptions.Workers is zero. Zero or negative means
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.workers = n }
}

// WithPrepareParallelism sets the number of goroutines DP-tree
// construction fans independent subtrees over — fresh Prepare,
// PrepareFrom seeding and the spine rebuilds of Plan.Apply alike. The
// result is bit-identical to the sequential build at any setting; only
// wall-clock changes. 0 or 1 builds sequentially (the default); n > 1
// uses up to n concurrent builders; negative means runtime.GOMAXPROCS(0).
func WithPrepareParallelism(n int) EngineOption {
	return func(e *Engine) { e.prepPar = n }
}

// WithSpawnCost sets the cost threshold below which parallel DP-tree
// construction builds a child inline instead of handing it to another
// builder goroutine. A child's cost estimate is its fact count weighted by
// the numeric representation its endogenous count implies (see
// buildChild.cost); one unit is roughly one u64-vector fact. Zero or
// negative keeps the calibrated default. Higher values spawn less (cheaper
// coordination, less overlap), lower values spawn more. The result is
// bit-identical at any setting; only wall-clock changes.
func WithSpawnCost(n int) EngineOption {
	return func(e *Engine) { e.spawnCost = n }
}

// WithBruteForce enables the exponential subset-enumeration fallback for
// queries on the intractable side of the dichotomies (or with self-joins);
// without it such queries fail Prepare with ErrIntractable.
func WithBruteForce(allow bool) EngineOption {
	return func(e *Engine) { e.brute = allow }
}

// WithExoRelations declares the schema-level exogenous relations (the set X
// of §4). Every fact of these relations must be exogenous in the data; the
// declaration widens the tractable side per Theorem 4.3 (ExoShap).
func WithExoRelations(rels ...string) EngineOption {
	return func(e *Engine) {
		if e.exo == nil {
			e.exo = make(map[string]bool, len(rels))
		}
		for _, r := range rels {
			e.exo[r] = true
		}
	}
}

// NewEngine returns an Engine with the given options applied. The zero
// option set matches the zero Solver: no exogenous relations, no
// brute-force fallback, GOMAXPROCS workers.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{scratch: &scratchPool{}}
	for _, o := range opts {
		o(e)
	}
	return e
}

// buildConfig resolves the engine's DP-tree builder tuning for one
// construction.
func (e *Engine) buildConfig() buildConfig {
	return buildConfig{
		par:       e.PrepareParallelism(),
		spawnCost: e.spawnCost,
		scratch:   e.scratch,
	}
}

// Workers returns the engine's default worker-pool size (0 = GOMAXPROCS).
func (e *Engine) Workers() int { return e.workers }

// PrepareParallelism returns the resolved DP-tree builder concurrency:
// the WithPrepareParallelism setting with negative mapped to
// runtime.GOMAXPROCS(0) and zero to 1.
func (e *Engine) PrepareParallelism() int {
	switch {
	case e.prepPar < 0:
		return runtime.GOMAXPROCS(0)
	case e.prepPar == 0:
		return 1
	}
	return e.prepPar
}

// BruteForceAllowed reports whether the exponential fallback is enabled.
func (e *Engine) BruteForceAllowed() bool { return e.brute }

// ExoRelations returns a sorted copy of the declared exogenous relations.
func (e *Engine) ExoRelations() []string {
	out := make([]string, 0, len(e.exo))
	for r := range e.exo {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Prepare validates, classifies and precomputes the fact-independent state
// for Shapley computation of q over d, returning a versioned Plan. The
// plan snapshots d (later mutations of d do not affect it); evolve the
// plan's own snapshot with Plan.Apply instead. Queries on the intractable
// side of the dichotomy yield ErrIntractable unless WithBruteForce is set.
func (e *Engine) Prepare(ctx context.Context, d *db.Database, q *query.CQ) (*Plan, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	_, sp := obs.Start(ctx, "engine.prepare")
	defer sp.End()
	memo := newSatMemo()
	snap := d.Clone() // the plan owns its snapshot; ctx retains it
	pb, err := prepareCQ(snap, q, e.exo, e.brute, prepExtras{memo: memo, cfg: e.buildConfig()})
	if err != nil {
		return nil, err
	}
	annotatePrepare(sp, pb)
	return &Plan{eng: e, cq: q, d: snap, version: 1, pb: pb, memo: memo}, nil
}

// PrepareUCQ is Prepare for a union of CQ¬s. The exact algorithm requires
// the disjuncts to be hierarchical, self-join-free and pairwise
// relation-disjoint; other unions fall back to brute force when
// WithBruteForce is set and fail with the structural error otherwise.
func (e *Engine) PrepareUCQ(ctx context.Context, d *db.Database, u *query.UCQ) (*Plan, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	_, sp := obs.Start(ctx, "engine.prepare")
	defer sp.End()
	memo := newSatMemo()
	snap := d.Clone()
	pb, err := prepareUCQ(snap, u, e.exo, e.brute, prepExtras{memo: memo, cfg: e.buildConfig()})
	if err != nil {
		return nil, err
	}
	annotatePrepare(sp, pb)
	return &Plan{eng: e, ucq: u, d: snap, version: 1, pb: pb, memo: memo}, nil
}

// PrepareFrom prepares a plan for the seed plan's query over d, seeding
// the DP-tree construction from seed's current state: every subtree whose
// input content (sub-query plus facts with flags) is unchanged between
// seed's snapshot and d is reused instead of recomputed — no delta between
// the two snapshots is needed, reuse is decided per subtree by content
// hash. The seed is read under its lock and never mutated; the returned
// plan is independent (version 1, its own memo) and shares only immutable
// tree nodes with the seed.
//
// Serving layers use it to turn a stale cache entry (a plan answering for
// an outdated database version) into a warm start for the replacement
// preparation instead of paying a cold rebuild.
func (e *Engine) PrepareFrom(ctx context.Context, d *db.Database, seed *Plan) (*Plan, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	_, sp := obs.Start(ctx, "engine.prepare_from")
	defer sp.End()
	seed.mu.RLock()
	memo := seed.memo.fork()
	prev := seed.pb
	cq, ucq := seed.cq, seed.ucq
	seed.mu.RUnlock()
	ex := prepExtras{memo: memo, prev: prev, cfg: e.buildConfig()}
	snap := d.Clone()
	var (
		pb  *PreparedBatch
		err error
	)
	if cq != nil {
		pb, err = prepareCQ(snap, cq, e.exo, e.brute, ex)
	} else {
		pb, err = prepareUCQ(snap, ucq, e.exo, e.brute, ex)
	}
	if err != nil {
		return nil, err
	}
	annotatePrepare(sp, pb)
	return &Plan{eng: e, cq: cq, ucq: ucq, d: snap, version: 1, pb: pb, memo: memo}, nil
}

// annotatePrepare attaches the preparation's outcome to its span: the
// algorithm chosen by the dichotomy (with the structural reason when it is
// the brute-force fallback), the tree shape and the memo traffic of the
// construction. The TreeStats walk runs only when a recorder is attached.
func annotatePrepare(sp *obs.Span, pb *PreparedBatch) {
	if !sp.Recording() {
		return
	}
	st := pb.buildStats()
	attrs := []obs.Attr{
		obs.String("method", pb.Method().String()),
		obs.Int("facts", pb.NumFacts()),
		obs.Int64("memo_hits", int64(st.Hits)),
		obs.Int64("memo_misses", int64(st.Misses)),
	}
	if ts := treeStats(pb.treeRoot()); ts.Nodes > 0 {
		attrs = append(attrs,
			obs.Int("tree_nodes", ts.Nodes),
			obs.Int("tree_depth", ts.Depth),
		)
	}
	if pb.Method() == MethodBruteForce {
		attrs = append(attrs, obs.String("fallback_reason", fallbackReason(pb.Classification())))
	}
	sp.SetAttrs(attrs...)
}

// fallbackReason names the structural property that pushed a prepared
// query onto the brute-force side of the dichotomy.
func fallbackReason(c Classification) string {
	switch {
	case !c.SelfJoinFree:
		return "self-join"
	case !c.Hierarchical:
		return "non-hierarchical"
	case c.HasNonHierPath:
		return "non-hierarchical-endo-path"
	default:
		// Structurally fine disjuncts that share a relation (the UCQ
		// disjointness precondition) are the remaining way in.
		return "union-not-relation-disjoint"
	}
}

// ctxErr reports a context's error, treating nil as never cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
