package core

import (
	"context"

	"repro/internal/db"
	"repro/internal/query"
)

// Engine is the entry point of the v2 compute API: an immutable bundle of
// computation policy — default worker-pool size, brute-force fallback and
// schema-level exogenous relations — configured once with functional
// options and shared by any number of Prepare calls. Where Solver couples
// policy to each call, an Engine is what a serving layer holds for its
// lifetime; the Plans it prepares are the versioned, incrementally
// maintainable successors of PreparedBatch.
//
// An Engine is safe for concurrent use.
type Engine struct {
	workers int
	brute   bool
	exo     map[string]bool
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithWorkers sets the default worker-pool size Plans of this engine use
// for ShapleyAll when BatchOptions.Workers is zero. Zero or negative means
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.workers = n }
}

// WithBruteForce enables the exponential subset-enumeration fallback for
// queries on the intractable side of the dichotomies (or with self-joins);
// without it such queries fail Prepare with ErrIntractable.
func WithBruteForce(allow bool) EngineOption {
	return func(e *Engine) { e.brute = allow }
}

// WithExoRelations declares the schema-level exogenous relations (the set X
// of §4). Every fact of these relations must be exogenous in the data; the
// declaration widens the tractable side per Theorem 4.3 (ExoShap).
func WithExoRelations(rels ...string) EngineOption {
	return func(e *Engine) {
		if e.exo == nil {
			e.exo = make(map[string]bool, len(rels))
		}
		for _, r := range rels {
			e.exo[r] = true
		}
	}
}

// NewEngine returns an Engine with the given options applied. The zero
// option set matches the zero Solver: no exogenous relations, no
// brute-force fallback, GOMAXPROCS workers.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Workers returns the engine's default worker-pool size (0 = GOMAXPROCS).
func (e *Engine) Workers() int { return e.workers }

// BruteForceAllowed reports whether the exponential fallback is enabled.
func (e *Engine) BruteForceAllowed() bool { return e.brute }

// ExoRelations returns a copy of the declared exogenous relations.
func (e *Engine) ExoRelations() []string {
	out := make([]string, 0, len(e.exo))
	for r := range e.exo {
		out = append(out, r)
	}
	return out
}

// Prepare validates, classifies and precomputes the fact-independent state
// for Shapley computation of q over d, returning a versioned Plan. The
// plan snapshots d (later mutations of d do not affect it); evolve the
// plan's own snapshot with Plan.Apply instead. Queries on the intractable
// side of the dichotomy yield ErrIntractable unless WithBruteForce is set.
func (e *Engine) Prepare(ctx context.Context, d *db.Database, q *query.CQ) (*Plan, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	memo := newSatMemo()
	pb, err := prepareCQ(d, q, e.exo, e.brute, prepExtras{memo: memo})
	if err != nil {
		return nil, err
	}
	return &Plan{eng: e, cq: q, d: d.Clone(), version: 1, pb: pb, memo: memo}, nil
}

// PrepareUCQ is Prepare for a union of CQ¬s. The exact algorithm requires
// the disjuncts to be hierarchical, self-join-free and pairwise
// relation-disjoint; other unions fall back to brute force when
// WithBruteForce is set and fail with the structural error otherwise.
func (e *Engine) PrepareUCQ(ctx context.Context, d *db.Database, u *query.UCQ) (*Plan, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	memo := newSatMemo()
	pb, err := prepareUCQ(d, u, e.exo, e.brute, prepExtras{memo: memo})
	if err != nil {
		return nil, err
	}
	return &Plan{eng: e, ucq: u, d: d.Clone(), version: 1, pb: pb, memo: memo}, nil
}

// ctxErr reports a context's error, treating nil as never cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
