package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/workload"
)

// This file is the large-workload slice of the bench trajectory: where
// plan_bench_test.go measures maintenance latency on the paper's
// 94-endo-fact running example, these benchmarks measure fresh Prepare
// and mode=all throughput on generator-scaled instances, with the
// engine's builder parallelism tied to GOMAXPROCS so `go test -cpu
// 1,2,4,8` produces parallel-scaling curves (see cmd/benchreport -cpu).

// benchWorkloadCfg is the ~50k-fact hierarchical trajectory instance:
// big enough that Prepare is dominated by tree construction over many
// independent buckets (what parallel builders attack), while
// ExoRegFraction keeps the endogenous count near 500 so the
// coefficient-vector arithmetic stays at a realistic length instead of
// drowning the measurement in big-integer convolutions.
var benchWorkloadCfg = workload.UniversityConfig{
	Students: 4500, Courses: 120, RegPerStudent: 9, TAFraction: 0.06,
	ExoRegFraction: 0.995, Seed: 29,
}

// benchExoShapCfg is the small ExoShap trajectory instance, kept at the
// size the dense transform (complement relations over the active domain,
// domain-quadratic) could still prepare in about a second — the historical
// baseline the indexed transform's speedup is measured against.
var benchExoShapCfg = workload.UniversityConfig{
	Students: 200, Courses: 24, RegPerStudent: 5, TAFraction: 0.25,
	ExoRegFraction: 0.9, Seed: 31,
}

// benchExoShap50kCfg is the large ExoShap trajectory instance: the same
// ~50k-fact scale as the hierarchical workload, reachable only by the
// indexed transform (implicit complements, lazy padding) — the dense
// transform's Step-1/Step-3 materializations are domain-quadratic and do
// not complete here in benchmarkable time.
var benchExoShap50kCfg = workload.UniversityConfig{
	Students: 4500, Courses: 120, RegPerStudent: 9, TAFraction: 0.06,
	ExoRegFraction: 0.995, Seed: 37,
}

var (
	workloadDBOnce  sync.Once
	workloadDBHier  *db.Database
	workloadDBExo   *db.Database
	workloadDBExo50 *db.Database
)

// benchWorkloadDBs generates the instances once per test process.
func benchWorkloadDBs() (hier, exoShap, exoShap50k *db.Database) {
	workloadDBOnce.Do(func() {
		workloadDBHier = workload.University(benchWorkloadCfg)
		workloadDBExo = workload.University(benchExoShapCfg)
		workloadDBExo50 = workload.University(benchExoShap50kCfg)
	})
	return workloadDBHier, workloadDBExo, workloadDBExo50
}

// BenchmarkPrepareWorkload measures fresh Prepare on the workload
// instances with builder parallelism following GOMAXPROCS; run with -cpu
// 1,2,4,8 the sub-benchmarks trace the construction scaling curves. The
// parallel build is asserted bit-identical to the sequential one before
// timing.
func BenchmarkPrepareWorkload(b *testing.B) {
	hier, exoShap, exoShap50k := benchWorkloadDBs()
	ctx := context.Background()

	check := func(b *testing.B, eng, seqEng *Engine, d *db.Database, q1 bool) {
		b.Helper()
		q := paperex.Q1()
		if !q1 {
			q = paperex.Q2()
		}
		pp, err := eng.Prepare(ctx, d, q)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := seqEng.Prepare(ctx, d, q)
		if err != nil {
			b.Fatal(err)
		}
		if pr, sr := pp.pb.treeRoot(), sp.pb.treeRoot(); pr == nil || sr == nil || pr.key != sr.key {
			b.Fatal("parallel Prepare is not bit-identical to sequential")
		}
	}

	b.Run("hierarchical-50k", func(b *testing.B) {
		eng := NewEngine(WithPrepareParallelism(-1))
		check(b, eng, NewEngine(WithPrepareParallelism(1)), hier, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Prepare(ctx, hier, paperex.Q1()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exoshap-1.5k", func(b *testing.B) {
		eng := NewEngine(WithPrepareParallelism(-1), WithExoRelations("Stud", "Course"))
		check(b, eng, NewEngine(WithPrepareParallelism(1), WithExoRelations("Stud", "Course")), exoShap, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Prepare(ctx, exoShap, paperex.Q2()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exoshap-50k", func(b *testing.B) {
		eng := NewEngine(WithPrepareParallelism(-1), WithExoRelations("Stud", "Course"))
		check(b, eng, NewEngine(WithPrepareParallelism(1), WithExoRelations("Stud", "Course")), exoShap50k, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Prepare(ctx, exoShap50k, paperex.Q2()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShapleyAllWorkload measures mode=all on the prepared workload
// plans, worker pool following GOMAXPROCS — the serving-side scaling
// curve that rides the same -cpu axis as the Prepare curve above.
func BenchmarkShapleyAllWorkload(b *testing.B) {
	hier, exoShap, _ := benchWorkloadDBs()
	ctx := context.Background()

	b.Run("hierarchical-50k", func(b *testing.B) {
		eng := NewEngine(WithPrepareParallelism(-1))
		plan, err := eng.Prepare(ctx, hier, paperex.Q1())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.ShapleyAll(ctx, BatchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exoshap-1.5k", func(b *testing.B) {
		eng := NewEngine(WithPrepareParallelism(-1), WithExoRelations("Stud", "Course"))
		plan, err := eng.Prepare(ctx, exoShap, paperex.Q2())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.ShapleyAll(ctx, BatchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
