package core

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/query"
)

// ShapleyValue is a computed Shapley value for one fact.
type ShapleyValue struct {
	Fact   db.Fact
	Value  *big.Rat
	Method Method
}

// String renders "fact = p/q (~decimal)".
func (v *ShapleyValue) String() string {
	return fmt.Sprintf("%s = %s (~%.6f)", v.Fact, v.Value.RatString(), ratFloat(v.Value))
}

func ratFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// maxBruteForcePlayers bounds subset enumeration: 2^25 query evaluations is
// the largest job the brute-force oracle will attempt.
const maxBruteForcePlayers = 25

// gameCache evaluates q(Dx ∪ E) for subsets E of the endogenous facts,
// memoizing by bitmask over d.EndoFacts() order.
type gameCache struct {
	d    *db.Database
	q    query.BooleanQuery
	endo []db.Fact
	vals map[uint64]bool
}

func newGameCache(d *db.Database, q query.BooleanQuery) (*gameCache, error) {
	endo := d.EndoFacts()
	if len(endo) > maxBruteForcePlayers {
		return nil, fmt.Errorf("core: %d endogenous facts exceed the brute-force limit of %d", len(endo), maxBruteForcePlayers)
	}
	return &gameCache{d: d, q: q, endo: endo, vals: make(map[uint64]bool)}, nil
}

// value returns q(Dx ∪ E(mask)) as a boolean.
func (g *gameCache) value(mask uint64) bool {
	if v, ok := g.vals[mask]; ok {
		return v
	}
	sub := g.d.Restrict(func(f db.Fact, endo bool) bool { return !endo })
	for i, f := range g.endo {
		if mask&(1<<uint(i)) != 0 {
			sub.MustAddEndo(f)
		}
	}
	v := g.q.Eval(sub)
	g.vals[mask] = v
	return v
}

func (g *gameCache) indexOf(f db.Fact) (int, error) {
	key := f.Key()
	for i, e := range g.endo {
		if e.Key() == key {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
}

// BruteForceShapley computes Shapley(D, q, f) directly from the subset-sum
// form of the definition:
//
//	Shapley(f) = Σ_{E ⊆ Dn\{f}} |E|!(m-1-|E|)!/m! · (q(Dx∪E∪{f}) − q(Dx∪E)).
//
// It works for any Boolean query (CQ¬ or UCQ¬, with or without self-joins)
// and is the exponential-time ground truth the polynomial algorithms are
// validated against.
//
// The enumeration accumulates signed per-coalition-size flip counts in
// machine words (they are bounded by C(m−1, k) < 2^maxBruteForcePlayers)
// and applies the rational Shapley weights once per size at the end, so
// the 2^m inner loop performs no big-number arithmetic at all.
func BruteForceShapley(d *db.Database, q query.BooleanQuery, f db.Fact) (*big.Rat, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	g, err := newGameCache(d, q)
	if err != nil {
		return nil, err
	}
	return bruteForceOne(g, f)
}

// BruteForceShapleyAll computes the Shapley value of every endogenous fact,
// sharing one evaluation cache across all facts (the sequential scan:
// every subset of the 2^m space is evaluated exactly once). The context
// cancels the (exponential) enumeration between chunks.
func BruteForceShapleyAll(ctx context.Context, d *db.Database, q query.BooleanQuery) ([]*ShapleyValue, error) {
	return bruteForceShapleyAll(ctx, d, q, 1)
}

// BruteForceShapleyAllWorkers is BruteForceShapleyAll with an explicit
// worker-pool size, mirroring BatchOptions.Workers of the polynomial batch
// engine with one deliberate difference: zero (or one) means the
// sequential shared-cache scan, not GOMAXPROCS. The parallel path splits
// the work by subset mask range, not by fact: the 2^m game values are
// evaluated exactly once in total into a shared table (each worker owns a
// contiguous range of masks), and the per-fact Shapley sums are then
// accumulated from that table in a second mask-range sweep — so adding
// workers divides the total enumeration work instead of duplicating the
// scan per worker cache as the by-fact split did. Output order is
// d.EndoFacts() order regardless of scheduling, and the values are
// identical to the sequential scan.
func BruteForceShapleyAllWorkers(ctx context.Context, d *db.Database, q query.BooleanQuery, workers int) ([]*ShapleyValue, error) {
	return bruteForceShapleyAll(ctx, d, q, workers)
}

// bruteChunkBits sizes the mask-range work units: workers claim chunks of
// 2^bruteChunkBits masks from a shared counter, which balances load when
// query evaluation cost varies across subsets and bounds the cancellation
// latency to one chunk.
const bruteChunkBits = 12

// bruteForceShapleyAll is the context-aware engine behind the exported
// brute-force batch entry points and the brute path of Plan / PreparedBatch.
func bruteForceShapleyAll(ctx context.Context, d *db.Database, q query.BooleanQuery, workers int) ([]*ShapleyValue, error) {
	if ctx == nil {
		//repolint:allow ctxflow: defensive nil-context hardening at the internal boundary, not a detached blocking path
		ctx = context.Background()
	}
	facts := d.EndoFacts()
	out := make([]*ShapleyValue, len(facts))
	if len(facts) == 0 {
		// Validate the query/player bound even for the trivial batch.
		if _, err := newGameCache(d, q); err != nil {
			return nil, err
		}
		return out, nil
	}
	m := len(facts)
	if m > maxBruteForcePlayers {
		return nil, fmt.Errorf("core: %d endogenous facts exceed the brute-force limit of %d", m, maxBruteForcePlayers)
	}
	if workers <= 1 {
		g, err := newGameCache(d, q)
		if err != nil {
			return nil, err
		}
		for i, f := range facts {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			v, err := bruteForceOne(g, f)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f, err)
			}
			out[i] = &ShapleyValue{Fact: f, Value: v, Method: MethodBruteForce}
		}
		return out, nil
	}

	// Parallel mask-range path. Phase 1 evaluates q(Dx ∪ E) for every
	// subset E exactly once into a shared table, each worker filling a
	// disjoint range of masks; phase 2 sweeps the table again by range,
	// accumulating for each fact f and coalition size k the signed count of
	// subsets where toggling f flips the query, so the exact rational
	// Shapley values reduce to Σ_k count·ShapleyWeight(k, m) at the end.
	size := uint64(1) << uint(m)
	exoBase := d.Restrict(func(_ db.Fact, endo bool) bool { return !endo })
	vals := make([]bool, size)

	chunk := uint64(1) << bruteChunkBits
	if chunk > size {
		chunk = size
	}
	var (
		next1, next2 atomic.Uint64
		wg           sync.WaitGroup
	)
	counts := make([][][]int64, workers) // worker → fact → k → signed count
	for w := range counts {
		counts[w] = make([][]int64, m)
		for i := range counts[w] {
			counts[w][i] = make([]int64, m)
		}
	}
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Phase 1: evaluate this worker's mask ranges.
			for {
				start := next1.Add(chunk) - chunk
				if start >= size {
					break
				}
				select {
				case <-done:
					return
				default:
				}
				end := min(start+chunk, size)
				for mask := start; mask < end; mask++ {
					sub := exoBase.Clone()
					for i, f := range facts {
						if mask&(1<<uint(i)) != 0 {
							sub.MustAddEndo(f)
						}
					}
					vals[mask] = q.Eval(sub)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Phase 2: accumulate signed flip counts. The pair (E, E∪{f})
			// is visited exactly once, at the mask containing f.
			cnt := counts[w]
			for {
				start := next2.Add(chunk) - chunk
				if start >= size {
					break
				}
				select {
				case <-done:
					return
				default:
				}
				end := min(start+chunk, size)
				for mask := max(start, 1); mask < end; mask++ {
					v := vals[mask]
					k := popcount(mask) - 1 // |E| for every pair below
					for rem := mask; rem != 0; rem &= rem - 1 {
						i := bits.TrailingZeros64(rem)
						if parent := mask &^ (1 << uint(i)); vals[parent] != v {
							if v {
								cnt[i][k]++
							} else {
								cnt[i][k]--
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	merged := make([]int64, m)
	for i, f := range facts {
		for k := 0; k < m; k++ {
			var c int64
			for w := 0; w < workers; w++ {
				c += counts[w][i][k]
			}
			merged[k] = c
		}
		out[i] = &ShapleyValue{Fact: f, Value: numeric.WeightSignedCounts(merged, m), Method: MethodBruteForce}
	}
	return out, nil
}

// bruteForceOne runs the subset-sum enumeration for one fact against a
// caller-owned game cache, counting signed flips per coalition size in
// int64 (the kernel representation of the brute-force path) and weighting
// once per size.
func bruteForceOne(g *gameCache, f db.Fact) (*big.Rat, error) {
	fi, err := g.indexOf(f)
	if err != nil {
		return nil, err
	}
	m := len(g.endo)
	fbit := uint64(1) << uint(fi)
	counts := make([]int64, m)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		if mask&fbit != 0 {
			continue
		}
		with, without := g.value(mask|fbit), g.value(mask)
		if with == without {
			continue
		}
		if with {
			counts[popcount(mask)]++
		} else {
			counts[popcount(mask)]--
		}
	}
	return numeric.WeightSignedCounts(counts, m), nil
}

// maxPermutationPlayers bounds the factorial enumeration of
// PermutationShapley.
const maxPermutationPlayers = 9

// PermutationShapley computes Shapley(D, q, f) by literally enumerating all
// |Dn|! permutations, exactly as the definition in §2 reads. It exists as an
// independent cross-check of the subset-sum reformulation and is limited to
// very small databases.
func PermutationShapley(d *db.Database, q query.BooleanQuery, f db.Fact) (*big.Rat, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	g, err := newGameCache(d, q)
	if err != nil {
		return nil, err
	}
	fi, err := g.indexOf(f)
	if err != nil {
		return nil, err
	}
	m := len(g.endo)
	if m > maxPermutationPlayers {
		return nil, fmt.Errorf("core: %d endogenous facts exceed the permutation-enumeration limit of %d", m, maxPermutationPlayers)
	}
	// Σ over permutations of (v(σf ∪ {f}) − v(σf)) ∈ {−1,0,1}; bounded by
	// maxPermutationPlayers! ≪ 2^63, so a machine word holds it exactly.
	var contributions int64
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	var walk func(k int)
	walk = func(k int) {
		if k == m {
			mask := uint64(0)
			for _, p := range perm {
				if p == fi {
					break
				}
				mask |= 1 << uint(p)
			}
			with, without := g.value(mask|1<<uint(fi)), g.value(mask)
			if with != without {
				if with {
					contributions++
				} else {
					contributions--
				}
			}
			return
		}
		for i := k; i < m; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			walk(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	walk(0)
	return new(big.Rat).SetFrac(big.NewInt(contributions), combinat.Factorial(m)), nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
