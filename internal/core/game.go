package core

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// ShapleyValue is a computed Shapley value for one fact.
type ShapleyValue struct {
	Fact   db.Fact
	Value  *big.Rat
	Method Method
}

// String renders "fact = p/q (~decimal)".
func (v *ShapleyValue) String() string {
	return fmt.Sprintf("%s = %s (~%.6f)", v.Fact, v.Value.RatString(), ratFloat(v.Value))
}

func ratFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// maxBruteForcePlayers bounds subset enumeration: 2^25 query evaluations is
// the largest job the brute-force oracle will attempt.
const maxBruteForcePlayers = 25

// gameCache evaluates q(Dx ∪ E) for subsets E of the endogenous facts,
// memoizing by bitmask over d.EndoFacts() order.
type gameCache struct {
	d    *db.Database
	q    query.BooleanQuery
	endo []db.Fact
	vals map[uint64]bool
}

func newGameCache(d *db.Database, q query.BooleanQuery) (*gameCache, error) {
	endo := d.EndoFacts()
	if len(endo) > maxBruteForcePlayers {
		return nil, fmt.Errorf("core: %d endogenous facts exceed the brute-force limit of %d", len(endo), maxBruteForcePlayers)
	}
	return &gameCache{d: d, q: q, endo: endo, vals: make(map[uint64]bool)}, nil
}

// value returns q(Dx ∪ E(mask)) as a boolean.
func (g *gameCache) value(mask uint64) bool {
	if v, ok := g.vals[mask]; ok {
		return v
	}
	sub := g.d.Restrict(func(f db.Fact, endo bool) bool { return !endo })
	for i, f := range g.endo {
		if mask&(1<<uint(i)) != 0 {
			sub.MustAddEndo(f)
		}
	}
	v := g.q.Eval(sub)
	g.vals[mask] = v
	return v
}

func (g *gameCache) indexOf(f db.Fact) (int, error) {
	key := f.Key()
	for i, e := range g.endo {
		if e.Key() == key {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
}

// BruteForceShapley computes Shapley(D, q, f) directly from the subset-sum
// form of the definition:
//
//	Shapley(f) = Σ_{E ⊆ Dn\{f}} |E|!(m-1-|E|)!/m! · (q(Dx∪E∪{f}) − q(Dx∪E)).
//
// It works for any Boolean query (CQ¬ or UCQ¬, with or without self-joins)
// and is the exponential-time ground truth the polynomial algorithms are
// validated against.
func BruteForceShapley(d *db.Database, q query.BooleanQuery, f db.Fact) (*big.Rat, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	g, err := newGameCache(d, q)
	if err != nil {
		return nil, err
	}
	fi, err := g.indexOf(f)
	if err != nil {
		return nil, err
	}
	m := len(g.endo)
	fbit := uint64(1) << uint(fi)
	total := new(big.Rat)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		if mask&fbit != 0 {
			continue
		}
		with, without := g.value(mask|fbit), g.value(mask)
		if with == without {
			continue
		}
		k := popcount(mask)
		w := combinat.ShapleyWeight(k, m)
		if with {
			total.Add(total, w)
		} else {
			total.Sub(total, w)
		}
	}
	return total, nil
}

// BruteForceShapleyAll computes the Shapley value of every endogenous fact,
// sharing one evaluation cache across all facts (the sequential scan:
// every subset of the 2^m space is evaluated exactly once).
func BruteForceShapleyAll(d *db.Database, q query.BooleanQuery) ([]*ShapleyValue, error) {
	return BruteForceShapleyAllWorkers(d, q, 1)
}

// BruteForceShapleyAllWorkers is BruteForceShapleyAll with an explicit
// worker-pool size, mirroring BatchOptions.Workers of the polynomial batch
// engine with one deliberate difference: zero (or one) means the
// sequential shared-cache scan, not GOMAXPROCS. The gameCache memoization
// map is not safe for concurrent writers, so each parallel worker
// evaluates subsets against a private cache; a worker's facts cover
// (nearly) the whole 2^m subset space either way, so fact-level
// parallelism multiplies the total enumeration work by up to the worker
// count in exchange for wall-clock overlap — callers must opt in
// explicitly. Output order is d.EndoFacts() order regardless of
// scheduling, and the values are identical to the sequential scan.
func BruteForceShapleyAllWorkers(d *db.Database, q query.BooleanQuery, workers int) ([]*ShapleyValue, error) {
	facts := d.EndoFacts()
	out := make([]*ShapleyValue, len(facts))
	if len(facts) == 0 {
		// Validate the query/player bound even for the trivial batch.
		if _, err := newGameCache(d, q); err != nil {
			return nil, err
		}
		return out, nil
	}
	if workers > len(facts) {
		workers = len(facts)
	}
	if workers <= 1 {
		g, err := newGameCache(d, q)
		if err != nil {
			return nil, err
		}
		for i, f := range facts {
			v, err := bruteForceOne(g, f)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f, err)
			}
			out[i] = &ShapleyValue{Fact: f, Value: v, Method: MethodBruteForce}
		}
		return out, nil
	}

	// Parallel path: facts are striped across workers, each with a private
	// evaluation cache, writing results to fixed slots for deterministic
	// output order.
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errI = -1
		errV error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, err := newGameCache(d, q)
			if err != nil {
				mu.Lock()
				if errI == -1 || w < errI {
					errI, errV = w, err
				}
				mu.Unlock()
				return
			}
			for i := w; i < len(facts); i += workers {
				v, err := bruteForceOne(g, facts[i])
				if err != nil {
					mu.Lock()
					if errI == -1 || i < errI {
						errI, errV = i, fmt.Errorf("%s: %w", facts[i], err)
					}
					mu.Unlock()
					return
				}
				out[i] = &ShapleyValue{Fact: facts[i], Value: v, Method: MethodBruteForce}
			}
		}(w)
	}
	wg.Wait()
	if errV != nil {
		return nil, errV
	}
	return out, nil
}

// bruteForceOne runs the subset-sum enumeration for one fact against a
// caller-owned game cache.
func bruteForceOne(g *gameCache, f db.Fact) (*big.Rat, error) {
	fi, err := g.indexOf(f)
	if err != nil {
		return nil, err
	}
	m := len(g.endo)
	fbit := uint64(1) << uint(fi)
	total := new(big.Rat)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		if mask&fbit != 0 {
			continue
		}
		with, without := g.value(mask|fbit), g.value(mask)
		if with == without {
			continue
		}
		w := combinat.ShapleyWeight(popcount(mask), m)
		if with {
			total.Add(total, w)
		} else {
			total.Sub(total, w)
		}
	}
	return total, nil
}

// maxPermutationPlayers bounds the factorial enumeration of
// PermutationShapley.
const maxPermutationPlayers = 9

// PermutationShapley computes Shapley(D, q, f) by literally enumerating all
// |Dn|! permutations, exactly as the definition in §2 reads. It exists as an
// independent cross-check of the subset-sum reformulation and is limited to
// very small databases.
func PermutationShapley(d *db.Database, q query.BooleanQuery, f db.Fact) (*big.Rat, error) {
	if !d.IsEndogenous(f) {
		return nil, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	g, err := newGameCache(d, q)
	if err != nil {
		return nil, err
	}
	fi, err := g.indexOf(f)
	if err != nil {
		return nil, err
	}
	m := len(g.endo)
	if m > maxPermutationPlayers {
		return nil, fmt.Errorf("core: %d endogenous facts exceed the permutation-enumeration limit of %d", m, maxPermutationPlayers)
	}
	contributions := big.NewInt(0) // Σ over permutations of (v(σf ∪ {f}) − v(σf)) ∈ {−1,0,1}
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	var walk func(k int)
	walk = func(k int) {
		if k == m {
			mask := uint64(0)
			for _, p := range perm {
				if p == fi {
					break
				}
				mask |= 1 << uint(p)
			}
			with, without := g.value(mask|1<<uint(fi)), g.value(mask)
			if with != without {
				if with {
					contributions.Add(contributions, big.NewInt(1))
				} else {
					contributions.Sub(contributions, big.NewInt(1))
				}
			}
			return
		}
		for i := k; i < m; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			walk(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	walk(0)
	return new(big.Rat).SetFrac(contributions, combinat.Factorial(m)), nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
