package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

// batchWorkerCounts are the worker-pool sizes every differential test runs
// under; 1 exercises the pure incremental DP, 4 the concurrent path.
var batchWorkerCounts = []int{1, 4}

// assertBatchMatchesPerFact runs ShapleyAllBatch under each worker count and
// requires bit-for-bit agreement with the per-fact Shapley method.
func assertBatchMatchesPerFact(t *testing.T, s *Solver, d *db.Database, q *query.CQ) []*ShapleyValue {
	t.Helper()
	facts := d.EndoFacts()
	var first []*ShapleyValue
	for _, workers := range batchWorkerCounts {
		got, err := s.ShapleyAllBatch(d, q, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(facts) {
			t.Fatalf("workers=%d: %d results for %d facts", workers, len(got), len(facts))
		}
		for i, v := range got {
			if !v.Fact.Equal(facts[i]) {
				t.Fatalf("workers=%d: result %d is %s, want %s (order must be deterministic)", workers, i, v.Fact, facts[i])
			}
			want, err := s.Shapley(d, q, facts[i])
			if err != nil {
				t.Fatalf("per-fact Shapley(%s): %v", facts[i], err)
			}
			if v.Value.Cmp(want.Value) != 0 || v.Value.RatString() != want.Value.RatString() {
				t.Fatalf("workers=%d: Shapley(%s) = %s, per-fact %s", workers, facts[i], v.Value.RatString(), want.Value.RatString())
			}
			if v.Method != want.Method {
				t.Fatalf("workers=%d: method %v, per-fact %v", workers, v.Method, want.Method)
			}
		}
		if first == nil {
			first = got
		}
	}
	return first
}

// assertMatchesBruteAll checks batch output against the brute-force oracle.
func assertMatchesBruteAll(t *testing.T, vals []*ShapleyValue, d *db.Database, q query.BooleanQuery) {
	t.Helper()
	brute, err := BruteForceShapleyAll(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(brute) != len(vals) {
		t.Fatalf("%d batch results vs %d brute-force results", len(vals), len(brute))
	}
	for i, v := range vals {
		if v.Value.Cmp(brute[i].Value) != 0 {
			t.Fatalf("Shapley(%s) = %s, brute force %s", v.Fact, v.Value.RatString(), brute[i].Value.RatString())
		}
	}
}

func TestBatchRunningExampleQ1(t *testing.T) {
	d := paperex.RunningExample()
	q1 := paperex.Q1()
	s := &Solver{}
	vals := assertBatchMatchesPerFact(t, s, d, q1)
	for _, v := range vals {
		if v.Method != MethodHierarchical {
			t.Fatalf("expected the hierarchical method, got %v", v.Method)
		}
		want, ok := paperex.Example23Values[v.Fact.Key()]
		if !ok {
			t.Fatalf("unexpected fact %s", v.Fact)
		}
		if v.Value.RatString() != want {
			t.Fatalf("Shapley(%s) = %s, paper says %s", v.Fact, v.Value.RatString(), want)
		}
	}
	assertMatchesBruteAll(t, vals, d, q1)
}

func TestBatchExoShapQ2(t *testing.T) {
	d := paperex.RunningExample()
	q2 := paperex.Q2()
	s := &Solver{ExoRelations: map[string]bool{"Stud": true, "Course": true}}
	vals := assertBatchMatchesPerFact(t, s, d, q2)
	for _, v := range vals {
		if v.Method != MethodExoShap {
			t.Fatalf("expected the ExoShap method, got %v", v.Method)
		}
	}
	assertMatchesBruteAll(t, vals, d, q2)
}

// TestBatchFreeFillerShortCircuit: endogenous facts outside every atom
// pattern must come out exactly zero without disturbing their neighbors.
func TestBatchFreeFillerShortCircuit(t *testing.T) {
	d := paperex.RunningExample()
	d.MustAddEndo(db.F("Audit", "Adam"))
	d.MustAddEndo(db.F("Audit", "Ben"))
	q1 := paperex.Q1()
	s := &Solver{}
	vals := assertBatchMatchesPerFact(t, s, d, q1)
	zeros := 0
	for _, v := range vals {
		if v.Fact.Rel == "Audit" {
			zeros++
			if v.Value.Sign() != 0 || v.Value.RatString() != "0" {
				t.Fatalf("free filler %s has value %s, want 0", v.Fact, v.Value.RatString())
			}
		}
	}
	if zeros != 2 {
		t.Fatalf("expected 2 free-filler facts, saw %d", zeros)
	}
	assertMatchesBruteAll(t, vals, d, q1)
}

// TestBatchDisconnectedQuery exercises the component topology of the
// context (the query splits into variable-disjoint components).
func TestBatchDisconnectedQuery(t *testing.T) {
	d := db.MustParse(`
endo R(a)
endo R(b)
exo  S(a, c)
endo S(b, c)
endo T(u, v)
endo T(u, w)
exo  T(z, z)
`)
	q := query.MustParse("q() :- R(x), S(x, y), T(z, w)")
	s := &Solver{}
	vals := assertBatchMatchesPerFact(t, s, d, q)
	assertMatchesBruteAll(t, vals, d, q)
}

// TestBatchGroundQuery exercises the ground base-case topology.
func TestBatchGroundQuery(t *testing.T) {
	d := db.MustParse(`
endo R(A)
endo R(B)
endo S(C)
exo  S(E)
`)
	for _, src := range []string{
		"q() :- R(A)",
		"q() :- R(A), !S(C)",
		"q() :- R(A), !S(E)",
	} {
		q := query.MustParse(src)
		s := &Solver{}
		vals := assertBatchMatchesPerFact(t, s, d, q)
		assertMatchesBruteAll(t, vals, d, q)
	}
}

// TestBatchSingletonBuckets covers the corner where removing a fact makes
// its root-variable bucket empty (D−f loses the bucket entirely).
func TestBatchSingletonBuckets(t *testing.T) {
	d := db.MustParse(`
exo  Stud(A)
exo  Stud(B)
endo TA(A)
endo Reg(A, C1)
endo Reg(B, C1)
`)
	q := query.MustParse("q() :- Stud(x), !TA(x), Reg(x, y)")
	s := &Solver{}
	vals := assertBatchMatchesPerFact(t, s, d, q)
	assertMatchesBruteAll(t, vals, d, q)
}

func TestBatchUniversityWorkload(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 14, Courses: 5, RegPerStudent: 2, TAFraction: 0.4, Seed: 3,
	})
	q1 := paperex.Q1()
	s := &Solver{}
	assertBatchMatchesPerFact(t, s, d, q1)
}

// TestBatchDifferentialRandom mirrors the solver-level differential test:
// random queries, random declarations, random data; the batch engine must
// agree bit-for-bit with the per-fact path and the brute-force oracle.
func TestBatchDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	cfg := workload.DefaultRandomCQConfig()
	checked := 0
	for trial := 0; trial < 200; trial++ {
		q, exo := workload.RandomCQ(rng, cfg)
		d := workload.RandomForQuery(rng, q, 2, 2, exo, 0.8)
		if d.NumEndo() == 0 || d.NumEndo() > 9 {
			continue
		}
		if !Classify(q, exo).Tractable {
			continue
		}
		checked++
		s := &Solver{ExoRelations: exo}
		vals := assertBatchMatchesPerFact(t, s, d, q)
		assertMatchesBruteAll(t, vals, d, q)
	}
	if checked < 30 {
		t.Fatalf("differential coverage too thin: %d tractable instances", checked)
	}
}

// TestBatchOnResultOrdering: the streaming callback must deliver the exact
// result sequence, in fact order, regardless of worker count.
func TestBatchOnResultOrdering(t *testing.T) {
	d := workload.University(workload.UniversityConfig{
		Students: 10, Courses: 4, RegPerStudent: 2, TAFraction: 0.5, Seed: 9,
	})
	q1 := paperex.Q1()
	s := &Solver{}
	for _, workers := range []int{1, 4, 16} {
		var streamed []*ShapleyValue
		got, err := s.ShapleyAllBatch(d, q1, BatchOptions{
			Workers:  workers,
			OnResult: func(v *ShapleyValue) { streamed = append(streamed, v) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(streamed) != len(got) {
			t.Fatalf("workers=%d: streamed %d of %d results", workers, len(streamed), len(got))
		}
		for i := range got {
			if streamed[i] != got[i] {
				t.Fatalf("workers=%d: stream position %d out of order", workers, i)
			}
		}
	}
}

// TestBatchFailsFast: declaration- and query-level problems must surface as
// one error before any per-fact work, not after partial output.
func TestBatchFailsFast(t *testing.T) {
	d := paperex.RunningExample()
	q1 := paperex.Q1()

	// TA has endogenous facts, so declaring it exogenous is invalid.
	bad := &Solver{ExoRelations: map[string]bool{"TA": true}}
	calls := 0
	if _, err := bad.ShapleyAllBatch(d, q1, BatchOptions{
		OnResult: func(*ShapleyValue) { calls++ },
	}); !errors.Is(err, ErrExoViolated) {
		t.Fatalf("want ErrExoViolated, got %v", err)
	}
	if calls != 0 {
		t.Fatalf("OnResult fired %d times before the up-front validation error", calls)
	}

	// Intractable without the brute-force fallback.
	s := &Solver{}
	if _, err := s.ShapleyAllBatch(d, paperex.Q2(), BatchOptions{}); !errors.Is(err, ErrIntractable) {
		t.Fatalf("want ErrIntractable, got %v", err)
	}

	// Self-join query without fallback: also a single up-front refusal.
	if _, err := s.ShapleyAllBatch(d, paperex.Q3(), BatchOptions{}); !errors.Is(err, ErrIntractable) {
		t.Fatalf("want ErrIntractable for the self-join query, got %v", err)
	}
}

// TestBatchBruteForceFallback: with AllowBruteForce the batch engine
// delegates to the shared-cache oracle and still streams in order.
func TestBatchBruteForceFallback(t *testing.T) {
	d := paperex.RunningExample()
	q2 := paperex.Q2()
	s := &Solver{AllowBruteForce: true}
	var streamed []*ShapleyValue
	got, err := s.ShapleyAllBatch(d, q2, BatchOptions{
		Workers:  4,
		OnResult: func(v *ShapleyValue) { streamed = append(streamed, v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(got) {
		t.Fatalf("streamed %d of %d results", len(streamed), len(got))
	}
	for i, v := range got {
		if v.Method != MethodBruteForce {
			t.Fatalf("expected brute-force method, got %v", v.Method)
		}
		want, err := s.Shapley(d, q2, v.Fact)
		if err != nil {
			t.Fatal(err)
		}
		if v.Value.Cmp(want.Value) != 0 {
			t.Fatalf("Shapley(%s) = %s, per-fact %s", v.Fact, v.Value.RatString(), want.Value.RatString())
		}
		if streamed[i] != v {
			t.Fatalf("stream position %d out of order", i)
		}
	}
}

// TestBatchEmptyDatabase: no endogenous facts means an empty result, not an
// error.
func TestBatchEmptyDatabase(t *testing.T) {
	d := db.MustParse("exo Stud(A)\n")
	s := &Solver{}
	got, err := s.ShapleyAllBatch(d, paperex.Q1(), BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no results, got %d", len(got))
	}
}
