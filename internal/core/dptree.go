package core

import (
	"crypto/sha256"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/combinat"
	"repro/internal/db"
	"repro/internal/query"
)

// This file materializes the CntSat recursion (cntsat.go keeps the
// reference implementation) as an explicit DP-tree IR. Every node of the
// tree is one cntSat invocation — identified by its *input content* (the
// sub-query plus the facts it runs over, with their endogeneity flags) and
// carrying its output |Sat| vector. Nodes are immutable after construction
// and stored in a content-addressed generational memo shared by the
// hierarchical, ExoShap-transformed and per-disjunct UCQ paths, so that:
//
//   - Plan.Apply dirties only the root-to-leaf spines the delta's facts
//     fall into: an untouched subtree has an unchanged content hash, hits
//     the memo, and is reused wholesale — no matter how deep below the top
//     bucket the change lands;
//   - at every interior node the convolution product over the children is
//     maintained by exact polynomial division (combinat.Deconvolve): a
//     changed child's stale factor is divided out and the fresh one
//     convolved in, instead of re-convolving all siblings;
//   - single-fact Shapley (and hence ShapleyAll) reads from the same tree:
//     toggling a fact recomputes only the spine containing it, combining
//     sibling subtrees through the per-node leave-one-out products.
//
// The four node kinds mirror the recursion's branching exactly:
// variable-bucket nodes (connected query, partitioned on a root variable),
// component-product nodes (disconnected query), ground-atom leaves (the
// corrected Lemma 3.2 base case) and union nodes (the per-disjunct pool
// decomposition of a relation-disjoint UCQ¬, which combines like a bucket
// node: the union is violated iff every disjunct is).

// nodeKind identifies the shape of one DP-tree node.
type nodeKind uint8

const (
	nodeGround  nodeKind = iota // all-ground conjunction leaf (Lemma 3.2)
	nodeBuckets                 // connected query: root-variable buckets
	nodeProduct                 // disconnected query: component product
	nodeUnion                   // UCQ¬ root: per-disjunct pools
	nodeOpaque                  // benchmark baseline: sub-DP recomputed by the reference recursion, no structure
)

// taggedFact is one fact of a sub-instance with its endogeneity flag and
// its cached canonical key (rendered once by the database layer, so
// content hashing never re-renders it).
type taggedFact = db.FlaggedFact

// dbOf materializes facts as a database (ground leaves, reference
// recomputes and toggles only; interior tree nodes never rebuild
// databases).
func dbOf(facts []taggedFact) *db.Database {
	d := db.New()
	for _, tf := range facts {
		if err := d.AddFlagged(tf); err != nil {
			panic(err)
		}
	}
	return d
}

// dpNode is one node of the DP-tree IR: the cntSat computation for one
// (query, fact multiset) pair. All fields are immutable after construction;
// nodes are freely shared across plan versions, across plans (seeded
// preparation) and across concurrently running readers.
type dpNode struct {
	key   string   // content address: hash over (query, facts+flags)
	label string   // the query's canonical rendering (hash input, cached)
	kind  nodeKind // shape of the recursion at this node

	q *query.CQ  // the (sub-)query; nil for nodeUnion
	u *query.UCQ // nodeUnion only

	endo int // endogenous facts in this subtree (relN + free)
	relN int // endogenous facts matching an atom pattern here
	free int // endogenous free fillers folded in by binomial convolution

	core   []*big.Int // |Sat| over the relN pattern-matching facts
	sat    []*big.Int // |Sat| over all endo facts: core ⊛ C(free, ·)
	nonSat []*big.Int // complement of sat over endo; the factor this node
	// contributes when it is a bucket or union child
	satZero    bool
	nonSatZero bool

	// Interior state (nodeBuckets, nodeProduct, nodeUnion).
	children []*dpNode
	prod     []*big.Int // convolution of the non-zero child factors
	zeros    int        // child factors that are the zero polynomial

	// Routing: which child a fact belongs to.
	rootVar string         // nodeBuckets: the partitioning variable
	posOf   map[string]int // nodeBuckets: relation -> root-variable position
	values  []db.Const     // nodeBuckets: sorted x-values, aligned with children
	relOf   map[string]int // nodeProduct/nodeUnion: relation -> child index

	// Leaf state (nodeGround): the pattern-matching facts, for toggles.
	facts []taggedFact
}

// childFactor returns child i's contribution to this node's product: the
// satisfying counts for a component of a product node, the non-satisfying
// counts for a bucket or disjunct pool ("every bucket/disjunct violated").
func (n *dpNode) childFactor(i int) []*big.Int {
	if n.kind == nodeProduct {
		return n.children[i].sat
	}
	return n.children[i].nonSat
}

// childFactorZero reports whether child i's factor is the zero polynomial.
func (n *dpNode) childFactorZero(i int) bool {
	if n.kind == nodeProduct {
		return n.children[i].satZero
	}
	return n.children[i].nonSatZero
}

// nodeKey computes the content address of one node: a hash over the
// query's canonical rendering and the facts with their flags in insertion
// order. Equal keys denote the identical computation, so memo reuse is
// trivially bit-identical; an order-only change merely misses and
// recomputes. Union roots prefix a byte no CQ rendering can start with.
func nodeKey(label string, facts []taggedFact) string {
	size := len(label) + 1
	for _, tf := range facts {
		size += len(tf.Key) + 3
	}
	buf := make([]byte, 0, size)
	buf = append(buf, label...)
	buf = append(buf, 0)
	for _, tf := range facts {
		if tf.Endo {
			buf = append(buf, 'n', ' ')
		} else {
			buf = append(buf, 'x', ' ')
		}
		buf = append(buf, tf.Key...)
		buf = append(buf, '\n')
	}
	sum := sha256.Sum256(buf)
	return string(sum[:])
}

const unionLabelPrefix = "\x01u\x00"

// satMemo is the content-addressed node store carried across plan
// versions. It is generational: lookups read the previous version's
// entries and promote hits (with their whole subtree) into the current
// generation, so nodes that no longer occur in any live tree are dropped
// at the next rollover instead of accumulating forever.
//
// The memo is only touched while a plan is being built or applied (under
// the plan lock); readers of finished trees never see it.
type satMemo struct {
	prev map[string]*dpNode // previous version's entries (read-only)
	cur  map[string]*dpNode // entries used or created by this version

	// shallow replicates the pre-tree engine for benchmark baselines:
	// reuse stops at the top decomposition level (the root's immediate
	// buckets/components/pools), and a unit whose content changed is
	// recomputed wholesale by the reference cntSat recursion —
	// materializing sub-databases at every level, exactly like the old
	// per-bucket tables — instead of rebuilding only its dirty spine.
	shallow bool
}

// newSatMemo returns an empty memo for a first preparation.
func newSatMemo() *satMemo {
	return &satMemo{cur: make(map[string]*dpNode)}
}

// next rolls the memo over for the successor version: everything the
// current generation used becomes the lookup set.
func (mm *satMemo) next() *satMemo {
	if mm == nil {
		return newSatMemo()
	}
	return &satMemo{
		prev:    mm.cur,
		cur:     make(map[string]*dpNode),
		shallow: mm.shallow,
	}
}

// fork returns a fresh memo whose lookup set is the current generation's
// live nodes. It is how a seeded preparation (Engine.PrepareFrom) shares
// unchanged subtrees with an existing plan without ever mutating that
// plan's memo; counters start at zero for the new plan.
func (mm *satMemo) fork() *satMemo {
	out := newSatMemo()
	if mm == nil {
		return out
	}
	out.prev = make(map[string]*dpNode, len(mm.cur))
	for k, n := range mm.cur {
		out.prev[k] = n
	}
	return out
}

// lookup returns the node cached under key, promoting a previous-version
// hit (with its whole subtree) into the current generation.
func (mm *satMemo) lookup(key string) (*dpNode, bool) {
	if mm == nil {
		return nil, false
	}
	if n, ok := mm.cur[key]; ok {
		return n, true
	}
	if n, ok := mm.prev[key]; ok {
		mm.promote(n)
		return n, true
	}
	return nil, false
}

// promote records n and every descendant in the current generation, so a
// surviving subtree keeps its interior nodes findable after rollover (a
// later delta that dirties the subtree's root can then still reuse the
// untouched nodes below it).
func (mm *satMemo) promote(n *dpNode) {
	if _, ok := mm.cur[n.key]; ok {
		return
	}
	mm.cur[n.key] = n
	for _, c := range n.children {
		mm.promote(c)
	}
}

// store records a freshly built node in the current generation.
func (mm *satMemo) store(n *dpNode) {
	if mm != nil {
		mm.cur[n.key] = n
	}
}

// entries returns the number of live nodes in the current generation.
func (mm *satMemo) entries() int {
	if mm == nil {
		return 0
	}
	return len(mm.cur)
}

// BuildStats reports the memo traffic of one DP-tree construction
// (a Prepare, an Apply, or a seeded preparation): Hits counts subtrees
// reused from the content-addressed memo, Misses the nodes whose input
// content changed (or was first seen) and had to be rebuilt.
type BuildStats struct {
	Hits   uint64
	Misses uint64
}

// treeBuilder threads the memo and per-build counters through one tree
// construction.
type treeBuilder struct {
	memo  *satMemo
	stats BuildStats
}

// lookup consults the memo, honoring the shallow emulation mode.
func (b *treeBuilder) lookup(key string, depth int) (*dpNode, bool) {
	if b.memo == nil || (b.memo.shallow && depth > 1) {
		return nil, false
	}
	n, ok := b.memo.lookup(key)
	if ok {
		b.stats.Hits++
	}
	return n, ok
}

// store records a built node, honoring the shallow emulation mode.
func (b *treeBuilder) store(n *dpNode, depth int) {
	if b.memo == nil || (b.memo.shallow && depth > 1) {
		return
	}
	b.memo.store(n)
}

func (b *treeBuilder) miss() { b.stats.Misses++ }

// build constructs (or reuses) the node for cntSat(facts, q). label is
// q's canonical rendering when the caller already has it (pass "" to
// render here). prev, when non-nil, must be the node of the same query
// over the immediately preceding snapshot; it guides child matching (so
// unchanged children are found without re-deriving substitutions) and
// lets the combine step update prev's product by division instead of
// re-convolving.
func (b *treeBuilder) build(q *query.CQ, label string, facts []taggedFact, prev *dpNode, depth int) (*dpNode, error) {
	if label == "" {
		label = q.String()
	}
	key := nodeKey(label, facts)
	if n, ok := b.lookup(key, depth); ok {
		return n, nil
	}
	b.miss()
	if b.memo != nil && b.memo.shallow && depth >= 1 {
		return b.buildOpaque(q, label, key, facts, depth)
	}

	n := &dpNode{key: key, label: label, q: q}

	// Relevance split: facts that can be the image of their relation's
	// atom participate in the core dynamic program; other endogenous facts
	// are free fillers folded in by binomial convolution.
	atomOf := make(map[string]query.Atom, len(q.Atoms))
	for _, a := range q.Atoms {
		atomOf[a.Rel] = a
	}
	var relevant []taggedFact
	for _, tf := range facts {
		if a, in := atomOf[tf.Fact.Rel]; in && query.MatchesAtom(a, tf.Fact) {
			relevant = append(relevant, tf)
			if tf.Endo {
				n.relN++
			}
		} else if tf.Endo {
			n.free++
		}
	}
	n.endo = n.relN + n.free

	// Mirror the branching of cntSatCore exactly.
	comps := q.AtomComponents()
	switch {
	case len(comps) > 1:
		n.kind = nodeProduct
		if prev != nil && (prev.kind != nodeProduct || len(prev.children) != len(comps)) {
			prev = nil
		}
		n.relOf = make(map[string]int)
		n.children = make([]*dpNode, len(comps))
		for ci, comp := range comps {
			sub := q.SubQuery(comp)
			rels := make(map[string]bool, len(sub.Atoms))
			for _, a := range sub.Atoms {
				rels[a.Rel] = true
				n.relOf[a.Rel] = ci
			}
			var childFacts []taggedFact
			for _, tf := range relevant {
				if rels[tf.Fact.Rel] {
					childFacts = append(childFacts, tf)
				}
			}
			var (
				childPrev  *dpNode
				childLabel string
			)
			if prev != nil {
				childPrev = prev.children[ci]
				sub, childLabel = childPrev.q, childPrev.label // identical by construction
			}
			child, err := b.build(sub, childLabel, childFacts, childPrev, depth+1)
			if err != nil {
				return nil, err
			}
			n.children[ci] = child
		}
		if err := n.combine(prev); err != nil {
			return nil, err
		}

	case len(q.Vars()) == 0:
		n.kind = nodeGround
		n.facts = relevant
		core, err := groundBase(dbOf(relevant), q)
		if err != nil {
			return nil, err
		}
		n.core = core

	default:
		n.kind = nodeBuckets
		roots := q.RootVariables()
		if len(roots) == 0 {
			return nil, ErrNotHierarchical
		}
		if prev != nil && prev.kind != nodeBuckets {
			prev = nil
		}
		n.rootVar = roots[0]
		n.posOf = make(map[string]int)
		for _, a := range q.Atoms {
			for i, t := range a.Args {
				if t.IsVar() && t.Var == n.rootVar {
					n.posOf[a.Rel] = i
					break
				}
			}
		}
		buckets := make(map[db.Const][]taggedFact)
		for _, tf := range relevant {
			v := tf.Fact.Args[n.posOf[tf.Fact.Rel]]
			buckets[v] = append(buckets[v], tf)
		}
		n.values = make([]db.Const, 0, len(buckets))
		for v := range buckets {
			n.values = append(n.values, v)
		}
		sort.Slice(n.values, func(i, j int) bool { return n.values[i] < n.values[j] })
		n.children = make([]*dpNode, len(n.values))
		for bi, v := range n.values {
			var (
				childPrev  *dpNode
				childLabel string
				qv         *query.CQ
			)
			if prev != nil {
				if pi, ok := indexOfValue(prev.values, v); ok {
					childPrev = prev.children[pi]
					qv, childLabel = childPrev.q, childPrev.label // the same substitution
				}
			}
			if qv == nil {
				qv = q.SubstituteVar(n.rootVar, v)
			}
			child, err := b.build(qv, childLabel, buckets[v], childPrev, depth+1)
			if err != nil {
				return nil, err
			}
			n.children[bi] = child
		}
		if err := n.combine(prev); err != nil {
			return nil, err
		}
	}

	n.finish()
	b.store(n, depth)
	return n, nil
}

// buildOpaque is the shallow-mode unit recompute: the whole sub-instance
// is recomputed by the reference cntSat recursion (materializing
// sub-databases at every level of its implicit tree, exactly what the
// pre-IR engine paid for a touched bucket) and stored as a single
// structureless node.
func (b *treeBuilder) buildOpaque(q *query.CQ, label, key string, facts []taggedFact, depth int) (*dpNode, error) {
	n := &dpNode{key: key, label: label, kind: nodeOpaque, q: q, facts: facts}
	for _, tf := range facts {
		if tf.Endo {
			n.endo++
		}
	}
	n.relN = n.endo
	sat, err := cntSat(dbOf(facts), q)
	if err != nil {
		return nil, err
	}
	n.core = sat
	n.finish()
	b.store(n, depth)
	return n, nil
}

// buildUnion constructs (or reuses) the root node of a relation-disjoint
// UCQ¬: one child per disjunct (its pool of facts over the disjunct's
// relations), combined exactly like a bucket node — the union is violated
// iff every disjunct pool is. relOf must map every disjunct relation to
// its disjunct index (validated by the caller).
func (b *treeBuilder) buildUnion(u *query.UCQ, relOf map[string]int, facts []taggedFact, prev *dpNode) (*dpNode, error) {
	label := unionLabelPrefix + u.String()
	key := nodeKey(label, facts)
	if n, ok := b.lookup(key, 0); ok {
		return n, nil
	}
	b.miss()
	if prev != nil && (prev.kind != nodeUnion || len(prev.children) != len(u.Disjuncts)) {
		prev = nil
	}

	n := &dpNode{key: key, label: label, kind: nodeUnion, u: u, relOf: relOf}
	pools := make([][]taggedFact, len(u.Disjuncts))
	for _, tf := range facts {
		if i, ok := relOf[tf.Fact.Rel]; ok {
			pools[i] = append(pools[i], tf)
			if tf.Endo {
				n.relN++
			}
		} else if tf.Endo {
			n.free++
		}
	}
	n.endo = n.relN + n.free
	n.children = make([]*dpNode, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		var (
			childPrev  *dpNode
			childLabel string
		)
		if prev != nil {
			childPrev = prev.children[i]
			childLabel = childPrev.label
		}
		child, err := b.build(q, childLabel, pools[i], childPrev, 1)
		if err != nil {
			return nil, err
		}
		n.children[i] = child
	}
	if err := n.combine(prev); err != nil {
		return nil, err
	}
	n.finish()
	b.store(n, 0)
	return n, nil
}

// combine fills the interior node's product state and its core vector.
// When prev is the same-query node over the preceding snapshot, the
// product of child factors is updated by dividing out the factors that
// disappeared and convolving in the new ones (diffing children by content
// key); otherwise it is the full convolution chain. Both routes yield the
// identical integer vector — convolution of subset-count vectors is
// commutative and exact.
func (n *dpNode) combine(prev *dpNode) error {
	for i := range n.children {
		if n.childFactorZero(i) {
			n.zeros++
		}
	}
	n.prod = n.maintainProd(prev)
	switch n.kind {
	case nodeProduct:
		// The conjunction holds iff it holds componentwise; counts convolve.
		if n.zeros > 0 {
			n.core = combinat.ZeroVector(n.relN)
		} else {
			if len(n.prod) != n.relN+1 {
				return fmt.Errorf("core: internal error: component convolution length %d, want %d", len(n.prod), n.relN+1)
			}
			n.core = n.prod
		}
	default:
		// Buckets and unions: the query is violated iff every child is;
		// count the all-violating subsets and complement.
		allNonSat := n.prod
		if n.zeros > 0 {
			allNonSat = nil // some child is always satisfied
		}
		n.core = complementTotal(allNonSat, n.relN)
	}
	return nil
}

// finish derives the output vectors shared by all kinds: the free-filler
// fold and the cached complement (the factor this node contributes to a
// bucket- or union-style parent).
func (n *dpNode) finish() {
	if n.free > 0 {
		n.sat = combinat.Convolve(n.core, combinat.BinomialVector(n.free))
	} else {
		n.sat = n.core
	}
	n.nonSat = combinat.ComplementVector(n.sat, n.endo)
	n.satZero = combinat.IsZeroVector(n.sat)
	n.nonSatZero = combinat.IsZeroVector(n.nonSat)
}

// maintainProd computes the product of the node's non-zero child
// factors. When prev is the same-query node over the preceding snapshot
// and only a small share of the children changed (diffed by content key
// — keys are unique within a node: bucket children embed the
// substituted constant in their query, component children their
// sub-query, pool children their disjunct), the previous product is
// maintained by dividing out the stale factors and convolving in the
// fresh ones; otherwise — many changed children, or only a couple of
// them in total, where each division costs as much as the whole chain —
// the plain convolution chain is the cheaper exact route. Both routes
// yield the identical integer vector, since convolution of subset-count
// vectors is commutative and exact.
func (n *dpNode) maintainProd(prev *dpNode) []*big.Int {
	if prev != nil && prev.prod != nil {
		oldKeys := make(map[string]bool, len(prev.children))
		for _, c := range prev.children {
			oldKeys[c.key] = true
		}
		curKeys := make(map[string]bool, len(n.children))
		for _, c := range n.children {
			curKeys[c.key] = true
		}
		changed := 0
		for _, c := range prev.children {
			if !curKeys[c.key] {
				changed++
			}
		}
		for _, c := range n.children {
			if !oldKeys[c.key] {
				changed++
			}
		}
		if 2*changed < len(n.children)-n.zeros {
			prod := prev.prod
			for i, c := range prev.children {
				if !curKeys[c.key] && !prev.childFactorZero(i) {
					prod = combinat.Deconvolve(prod, prev.childFactor(i))
				}
			}
			for i, c := range n.children {
				if !oldKeys[c.key] && !n.childFactorZero(i) {
					prod = combinat.Convolve(prod, n.childFactor(i))
				}
			}
			return prod
		}
	}
	vecs := make([][]*big.Int, 0, len(n.children))
	for i := range n.children {
		if !n.childFactorZero(i) {
			vecs = append(vecs, n.childFactor(i))
		}
	}
	return combinat.ConvolveAll(vecs)
}

// indexOfValue finds v in a sorted bucket-value list.
func indexOfValue(values []db.Const, v db.Const) (int, bool) {
	i := sort.Search(len(values), func(i int) bool { return values[i] >= v })
	if i < len(values) && values[i] == v {
		return i, true
	}
	return 0, false
}

// leaveOneOut returns the product of every child factor except child i's,
// or nil when that product is the zero polynomial (some other child's
// factor is identically zero).
func (n *dpNode) leaveOneOut(i int) []*big.Int {
	if n.childFactorZero(i) {
		if n.zeros == 1 {
			return n.prod
		}
		return nil
	}
	if n.zeros > 0 {
		return nil
	}
	if len(n.children) == 2 {
		return n.childFactor(1 - i) // the sibling is the whole product
	}
	return combinat.Deconvolve(n.prod, n.childFactor(i))
}

// toggle computes the subtree's |Sat| vectors with the endogenous fact f
// moved to the exogenous side (with) and with f removed (without), both
// over the remaining endo−1 endogenous facts — recomputing only the spine
// containing f and combining sibling subtrees through the per-node
// leave-one-out products. It never touches the memo, so concurrent reads
// share the immutable tree freely.
func (n *dpNode) toggle(f db.Fact) (with, without []*big.Int, err error) {
	// Shallow-mode units replicate the pre-IR per-fact path: two full
	// reference recursions over the toggled sub-instance.
	if n.kind == nodeOpaque {
		return n.toggleOpaque(f)
	}
	// Route f at this node: a fact matching no atom pattern here is a free
	// filler — it changes no satisfaction anywhere in the subtree, so both
	// sides just lose one filler.
	if !n.matchesAny(f) {
		if n.free == 0 {
			return nil, nil, fmt.Errorf("core: internal error: %s routed into a subtree without free fillers", f)
		}
		fewer := n.core
		if n.free > 1 {
			fewer = combinat.Convolve(n.core, combinat.BinomialVector(n.free-1))
		}
		return fewer, fewer, nil
	}

	switch n.kind {
	case nodeGround:
		return n.toggleGround(f)
	case nodeProduct:
		i, ok := n.relOf[f.Rel]
		if !ok {
			return nil, nil, fmt.Errorf("core: internal error: %s outside every component", f)
		}
		cw, cwo, err := n.children[i].toggle(f)
		if err != nil {
			return nil, nil, err
		}
		others := n.leaveOneOut(i)
		var coreW, coreWo []*big.Int
		if others == nil {
			coreW = combinat.ZeroVector(n.relN - 1)
			coreWo = coreW
		} else {
			coreW = combinat.Convolve(others, cw)
			coreWo = combinat.Convolve(others, cwo)
		}
		return n.foldFreeToggled(coreW), n.foldFreeToggled(coreWo), nil
	default: // nodeBuckets, nodeUnion
		var i int
		if n.kind == nodeUnion {
			i = n.relOf[f.Rel]
		} else {
			v := f.Args[n.posOf[f.Rel]]
			bi, ok := indexOfValue(n.values, v)
			if !ok {
				return nil, nil, fmt.Errorf("core: internal error: %s outside every bucket", f)
			}
			i = bi
		}
		child := n.children[i]
		cw, cwo, err := child.toggle(f)
		if err != nil {
			return nil, nil, err
		}
		fw := combinat.ComplementVector(cw, child.endo-1)
		fwo := combinat.ComplementVector(cwo, child.endo-1)
		others := n.leaveOneOut(i)
		var allW, allWo []*big.Int
		if others != nil {
			allW = combinat.Convolve(others, fw)
			allWo = combinat.Convolve(others, fwo)
		}
		coreW := complementTotal(allW, n.relN-1)
		coreWo := complementTotal(allWo, n.relN-1)
		return n.foldFreeToggled(coreW), n.foldFreeToggled(coreWo), nil
	}
}

// matchesAny reports whether f can participate in this node's core
// dynamic program (as opposed to being a free filler here).
func (n *dpNode) matchesAny(f db.Fact) bool {
	if n.kind == nodeUnion {
		_, ok := n.relOf[f.Rel]
		return ok
	}
	for _, a := range n.q.Atoms {
		if a.Rel == f.Rel && query.MatchesAtom(a, f) {
			return true
		}
	}
	return false
}

// splitToggled materializes the node's facts as the two toggled
// databases: one with f moved to the exogenous side and one with f
// removed.
func splitToggled(facts []taggedFact, f db.Fact) (dw, dwo *db.Database, err error) {
	key := f.Key()
	dw, dwo = db.New(), db.New()
	found := false
	for _, tf := range facts {
		if tf.Key == key {
			if !tf.Endo {
				return nil, nil, fmt.Errorf("db: %s is not an endogenous fact", f)
			}
			found = true
			dw.MustAdd(tf.Fact, false)
			continue
		}
		dw.MustAdd(tf.Fact, tf.Endo)
		dwo.MustAdd(tf.Fact, tf.Endo)
	}
	if !found {
		return nil, nil, fmt.Errorf("db: %s is not a fact of the database", f)
	}
	return dw, dwo, nil
}

// toggleGround recomputes the Lemma 3.2 base case with f toggled; the
// leaf's fact set is tiny (at most one fact per ground atom).
func (n *dpNode) toggleGround(f db.Fact) (with, without []*big.Int, err error) {
	dw, dwo, err := splitToggled(n.facts, f)
	if err != nil {
		return nil, nil, err
	}
	coreW, err := groundBase(dw, n.q)
	if err != nil {
		return nil, nil, err
	}
	coreWo, err := groundBase(dwo, n.q)
	if err != nil {
		return nil, nil, err
	}
	return n.foldFreeToggled(coreW), n.foldFreeToggled(coreWo), nil
}

// toggleOpaque recomputes a shallow-mode unit's sub-DP twice via the
// reference recursion, mirroring the pre-IR engine's per-fact toggles.
func (n *dpNode) toggleOpaque(f db.Fact) (with, without []*big.Int, err error) {
	dw, dwo, err := splitToggled(n.facts, f)
	if err != nil {
		return nil, nil, err
	}
	if with, err = cntSat(dw, n.q); err != nil {
		return nil, nil, err
	}
	if without, err = cntSat(dwo, n.q); err != nil {
		return nil, nil, err
	}
	return with, without, nil
}

// foldFreeToggled folds the node's (unchanged) free fillers into a core
// vector produced by a toggle below.
func (n *dpNode) foldFreeToggled(core []*big.Int) []*big.Int {
	if n.free == 0 {
		return core
	}
	return combinat.Convolve(core, combinat.BinomialVector(n.free))
}

// complementTotal turns a non-satisfying count vector over an n-element
// endogenous set into the satisfying counts: out[k] = C(n, k) − nonSat[k].
// A nil nonSat is the zero polynomial.
func complementTotal(nonSat []*big.Int, n int) []*big.Int {
	row := combinat.BinomialRow(n)
	out := combinat.ZeroVector(n)
	for k := 0; k <= n; k++ {
		if k < len(nonSat) {
			out[k].Sub(row[k], nonSat[k])
		} else {
			out[k].Set(row[k])
		}
	}
	return out
}

// TreeStats summarizes the DP-tree IR behind a plan: node counts by kind,
// the tree depth, the memo traffic of the most recent construction and the
// number of live nodes in the memo's current generation. Plans on the
// brute-force fallback (or with no endogenous facts) have no tree and
// report the zero value.
type TreeStats struct {
	GroundNodes  int
	BucketNodes  int
	ProductNodes int
	UnionNodes   int
	Nodes        int // total
	Depth        int // levels; a lone leaf has depth 1

	MemoHits    uint64 // last build (Prepare, Apply or seeded preparation)
	MemoMisses  uint64
	MemoEntries int // live nodes in the memo's current generation
}

// treeStats walks the tree rooted at n.
func treeStats(n *dpNode) TreeStats {
	var ts TreeStats
	var walk func(n *dpNode, depth int)
	walk = func(n *dpNode, depth int) {
		ts.Nodes++
		if depth > ts.Depth {
			ts.Depth = depth
		}
		switch n.kind {
		case nodeGround:
			ts.GroundNodes++
		case nodeBuckets:
			ts.BucketNodes++
		case nodeProduct:
			ts.ProductNodes++
		case nodeUnion:
			ts.UnionNodes++
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	if n != nil {
		walk(n, 1)
	}
	return ts
}
