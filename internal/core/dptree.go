package core

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/numeric"
	"repro/internal/query"
)

// This file materializes the CntSat recursion (cntsat.go keeps the
// reference implementation) as an explicit DP-tree IR. Every node of the
// tree is one cntSat invocation — identified by its *input content* (the
// sub-query plus the facts it runs over, with their endogeneity flags) and
// carrying its output |Sat| vector. Nodes are immutable after construction
// and stored in a content-addressed generational memo shared by the
// hierarchical, ExoShap-transformed and per-disjunct UCQ paths, so that:
//
//   - Plan.Apply dirties only the root-to-leaf spines the delta's facts
//     fall into: an untouched subtree has an unchanged content hash, hits
//     the memo, and is reused wholesale — no matter how deep below the top
//     bucket the change lands;
//   - at every interior node the convolution product over the children is
//     maintained by exact polynomial division (numeric.Deconvolve): a
//     changed child's stale factor is divided out and the fresh one
//     convolved in, instead of re-convolving all siblings;
//   - single-fact Shapley (and hence ShapleyAll) reads from the same tree:
//     toggling a fact recomputes only the spine containing it, combining
//     sibling subtrees through the per-node leave-one-out products.
//
// All node vectors live on the adaptive exact numeric kernel
// (internal/numeric): flat u64 words for scopes up to 64 endogenous facts,
// two-word coefficients up to 128, automatic promotion to big.Int beyond —
// bit-identical to the pure math/big reference by construction.
//
// The four node kinds mirror the recursion's branching exactly:
// variable-bucket nodes (connected query, partitioned on a root variable),
// component-product nodes (disconnected query), ground-atom leaves (the
// corrected Lemma 3.2 base case) and union nodes (the per-disjunct pool
// decomposition of a relation-disjoint UCQ¬, which combines like a bucket
// node: the union is violated iff every disjunct is).

// nodeKind identifies the shape of one DP-tree node.
type nodeKind uint8

const (
	nodeGround  nodeKind = iota // all-ground conjunction leaf (Lemma 3.2)
	nodeBuckets                 // connected query: root-variable buckets
	nodeProduct                 // disconnected query: component product
	nodeUnion                   // UCQ¬ root: per-disjunct pools
	nodeOpaque                  // benchmark baseline: sub-DP recomputed by the reference recursion, no structure
)

// taggedFact is one fact of a sub-instance with its endogeneity flag and
// its cached canonical key and content digest (rendered once by the
// database layer, so content addressing never re-renders or re-hashes it).
type taggedFact = db.FlaggedFact

// factPtrs returns pointers into the database's flagged-fact storage.
// The storage is stable here: the compute layer only takes pointers into
// plan snapshots, which are never mutated after preparation.
func factPtrs(d *db.Database) []*taggedFact {
	ff := d.FlaggedFacts()
	out := make([]*taggedFact, len(ff))
	for i := range ff {
		out[i] = &ff[i]
	}
	return out
}

// dbOf materializes facts as a database (ground leaves, reference
// recomputes and toggles only; interior tree nodes never rebuild
// databases).
func dbOf(facts []*taggedFact) *db.Database {
	d := db.New()
	for _, tf := range facts {
		if err := d.AddFlagged(*tf); err != nil {
			panic(err)
		}
	}
	return d
}

// dpNode is one node of the DP-tree IR: the cntSat computation for one
// (query, fact multiset) pair. All fields are immutable after construction;
// nodes are freely shared across plan versions, across plans (seeded
// preparation) and across concurrently running readers. The marker below
// makes repolint's nodeimmut analyzer enforce that: only functions
// carrying an explicit allow directive (the construction path) may write
// fields.
//
//repolint:immutable
type dpNode struct {
	key   string   // content address: hash over (query, Σ fact digests)
	label string   // derived query identity (hash input, cached)
	kind  nodeKind // shape of the recursion at this node

	// q is the concrete (sub-)query where one exists without cloning:
	// the root, union disjunct roots, and shallow-mode units. Interior
	// nodes reached purely by bucket/component descent carry q == nil —
	// every fact routed into them participates by construction
	// (prefiltered), so all structural questions are answered by the
	// shared shape instead of a per-value substituted query.
	q     *query.CQ
	u     *query.UCQ // nodeUnion only
	shape *dpShape   // value-independent structure; nil for nodeUnion/nodeOpaque

	endo int // endogenous facts in this subtree (relN + free)
	relN int // endogenous facts matching an atom pattern here
	free int // endogenous free fillers folded in by binomial convolution

	core   numeric.Vec // |Sat| over the relN pattern-matching facts
	sat    numeric.Vec // |Sat| over all endo facts: core ⊛ C(free, ·)
	nonSat numeric.Vec // complement of sat over endo; the factor this node
	// contributes when it is a bucket or union child
	satZero    bool
	nonSatZero bool

	// Interior state (nodeBuckets, nodeProduct, nodeUnion).
	children []*dpNode
	prod     numeric.Vec // convolution of the non-zero child factors
	zeros    int         // child factors that are the zero polynomial

	// Routing state that genuinely varies per node.
	values []db.Const     // nodeBuckets: sorted x-values, aligned with children
	relOf  map[string]int // nodeUnion: relation -> disjunct index

	// Leaf state (nodeGround): the pattern-matching facts, for toggles.
	facts []*taggedFact
}

// groundLit is one literal of an all-ground conjunction, reduced to what
// the Lemma 3.2 base case needs: its relation and polarity. Within a
// ground leaf, a relation occurs at most once (self-join-freeness) and
// every routed fact is its atom's exact image, so relation identity
// replaces per-fact pattern matching.
type groundLit struct {
	Rel     string
	Negated bool
}

// dpShape is the value-independent structural analysis of one query
// derivation point: which recursion case applies, how facts route to
// children, and the child shapes. Substituting different constants for a
// bucket's root variable never changes any of this, so one shape is
// shared by every sibling bucket child and across all cousins with the
// same derivation path — the per-node AtomComponents/RootVariables/
// SubstituteVar recomputation this replaces dominated fresh-preparation
// profiles. Shapes are built during tree construction (under the plan
// lock) and read-only afterwards; nodes adopted from earlier generations
// keep their own completed shapes.
//
//repolint:immutable
type dpShape struct {
	kind nodeKind
	rels map[string]bool // relations of this sub-query's atoms

	// repQ is the concrete query this shape was derived from. Deeper
	// shapes are derived from it; its constants are representative, not
	// authoritative, so it never answers per-value questions.
	repQ *query.CQ

	lits []groundLit // nodeGround: the literals of the conjunction

	rootVar string         // nodeBuckets: the partitioning variable
	posOf   map[string]int // nodeBuckets: relation -> root-variable position

	// nodeBuckets: shared shape of all value children, derived lazily
	// from the first value seen. The Once makes the derivation safe when
	// cousin buckets sharing this shape are built by parallel builders.
	childOnce sync.Once
	child     *dpShape
	childErr  error

	relOf    map[string]int    // nodeProduct: relation -> component index
	subQs    []*query.CQ       // nodeProduct: component sub-queries (from repQ)
	children []*dpShape        // nodeProduct: per-component shapes
	compRels []map[string]bool // nodeProduct: relation sets per component
}

// shapeFrom analyzes q. Product components recurse eagerly (the shape
// tree is structure-sized, not data-sized); bucket child shapes are
// derived lazily on the first value built.
//
//repolint:allow nodeimmut: shape construction — shapes are built single-threaded during preparation and read-only afterwards
func shapeFrom(q *query.CQ) (*dpShape, error) {
	s := &dpShape{repQ: q, rels: make(map[string]bool, len(q.Atoms))}
	for _, a := range q.Atoms {
		s.rels[a.Rel] = true
	}
	comps := q.AtomComponents()
	switch {
	case len(comps) > 1:
		s.kind = nodeProduct
		s.relOf = make(map[string]int)
		s.subQs = make([]*query.CQ, len(comps))
		s.children = make([]*dpShape, len(comps))
		s.compRels = make([]map[string]bool, len(comps))
		for ci, comp := range comps {
			sub := q.SubQuery(comp)
			s.subQs[ci] = sub
			rels := make(map[string]bool, len(sub.Atoms))
			for _, a := range sub.Atoms {
				rels[a.Rel] = true
				s.relOf[a.Rel] = ci
			}
			s.compRels[ci] = rels
			cs, err := shapeFrom(sub)
			if err != nil {
				return nil, err
			}
			s.children[ci] = cs
		}
	case len(q.Vars()) == 0:
		s.kind = nodeGround
		s.lits = make([]groundLit, len(q.Atoms))
		for i, a := range q.Atoms {
			s.lits[i] = groundLit{Rel: a.Rel, Negated: a.Negated}
		}
	default:
		s.kind = nodeBuckets
		roots := q.RootVariables()
		if len(roots) == 0 {
			return nil, ErrNotHierarchical
		}
		s.rootVar = roots[0]
		s.posOf = make(map[string]int)
		for _, a := range q.Atoms {
			for i, t := range a.Args {
				if t.IsVar() && t.Var == s.rootVar {
					s.posOf[a.Rel] = i
					break
				}
			}
		}
	}
	return s, nil
}

// bucketChildShape returns the shape shared by every child of this
// bucket level, deriving it from the first value seen. The sync.Once
// publication makes the shared shape safe for concurrent builders: the
// derived shape is value-independent, so whichever value wins the race
// yields the same structure.
//
//repolint:allow nodeimmut: lazy one-shot derivation of the shared child shape, published through sync.Once before any reader sees it
func (s *dpShape) bucketChildShape(v db.Const) (*dpShape, error) {
	s.childOnce.Do(func() {
		s.child, s.childErr = shapeFrom(s.repQ.SubstituteVar(s.rootVar, v))
	})
	return s.child, s.childErr
}

// childFactor returns child i's contribution to this node's product: the
// satisfying counts for a component of a product node, the non-satisfying
// counts for a bucket or disjunct pool ("every bucket/disjunct violated").
func (n *dpNode) childFactor(i int) numeric.Vec {
	if n.kind == nodeProduct {
		return n.children[i].sat
	}
	return n.children[i].nonSat
}

// childFactorZero reports whether child i's factor is the zero polynomial.
func (n *dpNode) childFactorZero(i int) bool {
	if n.kind == nodeProduct {
		return n.children[i].satZero
	}
	return n.children[i].nonSatZero
}

// nodeKey computes the content address of one node: a 128-bit two-lane
// seeded hash over the node's label (the derived query identity) and the
// *additive multiset digest* of the facts with their flags. Per-fact
// digests are computed once at database insertion and cached
// (db.FlaggedFact.Dig); combining them by word-wise wrapping addition
// makes the key Merkle-cheap — re-keying a node is O(facts) word
// additions with no per-fact rendering or hashing, so a single-fact
// delta re-keys the whole tree's touched spine in microseconds instead
// of re-hashing O(|D|) rendered bytes per level. The sum is
// order-independent, which is sound: every node output is a multiset
// aggregate, so equal (query, fact multiset) pairs denote the identical
// computation. Keys live only in the in-process memo and inputs are not
// adversarial; at 128 bits, accidental collision over a process lifetime
// of even billions of nodes is negligible (~n²/2¹²⁹). Union roots prefix
// a byte no CQ rendering can start with. (Implemented by
// treeBuilder.key.)
//
// nodeKeySeeds and labelSeeds are the per-process seeds of the key and
// label lanes (see db.Digest for the same design at the fact level).
var (
	nodeKeySeeds = [2]maphash.Seed{maphash.MakeSeed(), maphash.MakeSeed()}
	labelSeeds   = [2]maphash.Seed{maphash.MakeSeed(), maphash.MakeSeed()}
)

const unionLabelPrefix = "\x01u\x00"

// Child labels are *derived* instead of re-rendered: a bucket child's
// identity is (parent label, substituted value) and a component or
// disjunct child's is (parent label, component index). The derivation is
// a hash chain — label_child = H(label_parent ‖ sep ‖ discriminator),
// two seeded maphash lanes like nodeKey — so every label is a fixed 16
// bytes no matter how deep the derivation, and no per-node query
// rendering happens at all (the rendering that dominated
// fresh-preparation profiles). Derivation is deterministic within a
// process, so labels (hence content keys) agree across generations,
// plans and seeded preparations. The separator bytes keep bucket and
// component namespaces disjoint; root labels hash the query's canonical
// rendering, which anchors the chain to content.
const (
	bucketLabelSep    = 0x02
	componentLabelSep = 0x03
)

// hashLabel anchors a label chain at a query rendering.
func hashLabel(s string) string {
	var out [16]byte
	for i, seed := range labelSeeds {
		binary.LittleEndian.PutUint64(out[i*8:], maphash.String(seed, s))
	}
	return string(out[:])
}

// derivedLabel extends a label chain by one derivation step.
func (b *treeBuilder) derivedLabel(parent string, sep byte, disc string) string {
	var out [16]byte
	for i, seed := range labelSeeds {
		var h maphash.Hash
		h.SetSeed(seed)
		h.WriteString(parent)
		h.WriteByte(sep)
		h.WriteString(disc)
		binary.LittleEndian.PutUint64(out[i*8:], h.Sum64())
	}
	return string(out[:])
}

// bucketChildLabel derives the label of the child for value v.
func (b *treeBuilder) bucketChildLabel(parent string, v db.Const) string {
	return b.derivedLabel(parent, bucketLabelSep, string(v))
}

// componentChildLabel derives the label of component (or disjunct) ci.
func (b *treeBuilder) componentChildLabel(parent string, ci int) string {
	return b.derivedLabel(parent, componentLabelSep, strconv.Itoa(ci))
}

// satMemo is the content-addressed node store carried across plan
// versions. It is generational: lookups read the previous version's
// entries and promote hits (with their whole subtree) into the current
// generation, so nodes that no longer occur in any live tree are dropped
// at the next rollover instead of accumulating forever.
//
// The memo is only touched while a plan is being built or applied (under
// the plan lock); readers of finished trees never see it. Within one
// build, however, parallel tree construction (treeBuilder.par > 1) has
// several builder goroutines looking up and interning nodes
// concurrently, so the store is sharded memoShards ways by the first key
// byte — keys are seeded maphash output, so shards balance — with each
// shard's generation maps behind its own mutex. The hot operations take
// a conc flag: sequential builds (a single builder goroutine, the only
// toucher under the plan lock) pass false and skip the locks entirely,
// so the pre-parallelism cost model is preserved exactly. Lock
// discipline: every memo operation holds at most one shard lock at a
// time (promote walks a subtree re-locking per node), so shard locks
// never nest and cannot deadlock.
type satMemo struct {
	shards [memoShards]memoShard

	// age counts the versions served since the last generational
	// rollover. Rolling over on every Apply made the promote sweep (one
	// map insert per surviving node, i.e. O(tree) map traffic per
	// single-fact delta) the dominant maintenance cost, so rollovers are
	// amortized: up to memoRolloverAge versions share one generation —
	// lookups hit `cur` directly with no promotion — and then a single
	// rollover drops every node no live tree used since. Written only
	// between builds (commitNext, under the plan lock).
	age int

	// shallow replicates the pre-tree engine for benchmark baselines:
	// reuse stops at the top decomposition level (the root's immediate
	// buckets/components/pools), and a unit whose content changed is
	// recomputed wholesale by the reference cntSat recursion —
	// materializing sub-databases at every level, exactly like the old
	// per-bucket tables — instead of rebuilding only its dirty spine.
	// Shallow builds are always sequential (see newTreeBuilder); the
	// field is set before any build and read-only afterwards.
	shallow bool
}

// memoShards is the shard count of the content-addressed store. 64
// shards keep the chance of two of a handful of parallel builders
// colliding on a shard low, at 64 mutexes + map headers per plan.
const memoShards = 64

// memoShard is one shard of the generational store: its slice of the
// previous (read-only between rollovers) and current generation maps.
type memoShard struct {
	mu   sync.Mutex
	prev map[string]*dpNode
	cur  map[string]*dpNode
}

// shard routes a content key to its shard.
func (mm *satMemo) shard(key string) *memoShard {
	return &mm.shards[key[0]&(memoShards-1)]
}

// newSatMemo returns an empty memo for a first preparation.
func newSatMemo() *satMemo {
	mm := &satMemo{}
	for i := range mm.shards {
		mm.shards[i].cur = make(map[string]*dpNode)
	}
	return mm
}

// memoRolloverAge is the number of versions sharing one memo generation:
// stale nodes linger for at most this many applies before the rollover
// sweep drops them, and in exchange the per-apply promote cost vanishes.
const memoRolloverAge = 16

// next returns the memo for the successor version: usually the same
// generation (cheap), every memoRolloverAge-th version a true rollover
// in which everything the current generation used becomes the lookup set
// and unused nodes are left behind. It mutates nothing — the caller
// commits the step (see commitNext) only once the new version actually
// installs, so a failed Apply does not advance the rollover clock.
func (mm *satMemo) next() *satMemo {
	if mm == nil {
		return newSatMemo()
	}
	if mm.age+1 < memoRolloverAge {
		return mm
	}
	out := &satMemo{shallow: mm.shallow}
	for i := range out.shards {
		out.shards[i].prev = mm.shards[i].cur
		out.shards[i].cur = make(map[string]*dpNode)
	}
	return out
}

// commitNext records that the memo returned by prev.next() now serves
// one more installed version.
func (mm *satMemo) commitNext(prev *satMemo) {
	if mm == prev {
		mm.age++
	}
}

// fork returns a fresh memo whose lookup set is the current generation's
// live nodes. It is how a seeded preparation (Engine.PrepareFrom) shares
// unchanged subtrees with an existing plan without ever mutating that
// plan's memo; counters start at zero for the new plan. Callers hold the
// source plan's lock, so the per-shard copies see a quiescent store.
func (mm *satMemo) fork() *satMemo {
	out := newSatMemo()
	if mm == nil {
		return out
	}
	for i := range mm.shards {
		src := &mm.shards[i]
		dst := make(map[string]*dpNode, len(src.cur))
		for k, n := range src.cur {
			dst[k] = n
		}
		out.shards[i].prev = dst
	}
	return out
}

// lookup returns the node cached under key, promoting a previous-version
// hit (with its whole subtree) into the current generation. conc says
// whether other builder goroutines may touch the memo concurrently;
// sequential callers pass false and skip the shard locks.
func (mm *satMemo) lookup(key string, conc bool) (*dpNode, bool) {
	if mm == nil {
		return nil, false
	}
	s := mm.shard(key)
	if conc {
		s.mu.Lock()
	}
	if n, ok := s.cur[key]; ok {
		if conc {
			s.mu.Unlock()
		}
		return n, true
	}
	n, ok := s.prev[key]
	if conc {
		s.mu.Unlock()
	}
	if ok {
		// Promote outside the hit's shard lock: the walk re-locks one
		// shard per descendant, never holding two locks at once.
		mm.promote(n, conc)
		return n, true
	}
	return nil, false
}

// promote records n and every descendant in the current generation, so a
// surviving subtree keeps its interior nodes findable after rollover (a
// later delta that dirties the subtree's root can then still reuse the
// untouched nodes below it). Concurrent promotions of overlapping
// subtrees are benign: insertion is idempotent (same key, same immutable
// node), and a node found already promoted has had its whole subtree
// promoted by whoever inserted it — or is about to, by a racing walk that
// is past this node — so skipping the descent stays correct because every
// racing walk inserts descendants before its caller observes completion.
func (mm *satMemo) promote(n *dpNode, conc bool) {
	s := mm.shard(n.key)
	if conc {
		s.mu.Lock()
	}
	_, seen := s.cur[n.key]
	if !seen {
		s.cur[n.key] = n
	}
	if conc {
		s.mu.Unlock()
	}
	if seen {
		return
	}
	for _, c := range n.children {
		mm.promote(c, conc)
	}
}

// store interns a freshly built node in the current generation and
// returns the canonical copy: with parallel builders, two goroutines can
// race to build the same content-addressed node (both results are
// bit-identical immutable values), and first-store-wins keeps the store
// and every parent pointing at one canonical *dpNode.
func (mm *satMemo) store(n *dpNode, conc bool) *dpNode {
	if mm == nil {
		return n
	}
	s := mm.shard(n.key)
	if conc {
		s.mu.Lock()
	}
	if prior, ok := s.cur[n.key]; ok {
		if conc {
			s.mu.Unlock()
		}
		return prior
	}
	s.cur[n.key] = n
	if conc {
		s.mu.Unlock()
	}
	return n
}

// entries returns the number of live nodes in the current generation.
func (mm *satMemo) entries() int {
	if mm == nil {
		return 0
	}
	total := 0
	for i := range mm.shards {
		s := &mm.shards[i]
		s.mu.Lock()
		total += len(s.cur)
		s.mu.Unlock()
	}
	return total
}

// BuildStats reports the memo traffic of one DP-tree construction
// (a Prepare, an Apply, or a seeded preparation): Hits counts subtrees
// reused from the content-addressed memo, Misses the nodes whose input
// content changed (or was first seen) and had to be rebuilt.
// ProdMaintained and ProdRebuilt split the rebuilt interior nodes by the
// route maintainProd took: the previous product updated by exact division
// (deconvolve stale factors, convolve fresh ones) versus the full
// convolution chain over all children. During a parallel build the
// counters are updated atomically; readers see them only after the build
// joins.
type BuildStats struct {
	Hits           uint64
	Misses         uint64
	ProdMaintained uint64
	ProdRebuilt    uint64
}

func (st *BuildStats) add(c *uint64) {
	if st != nil {
		atomic.AddUint64(c, 1)
	}
}

// treeBuilder threads the memo and per-build counters through one tree
// construction. The zero value (and par ≤ 1) builds sequentially; see
// newTreeBuilder for the parallel configuration.
type treeBuilder struct {
	memo  *satMemo
	stats BuildStats

	// par is the requested builder concurrency; tokens holds par−1
	// spawn permits. A child build that secures a token runs on its own
	// goroutine (returning the token on completion); otherwise it runs
	// inline on the requesting goroutine, so the build never blocks
	// waiting for a permit and degenerates to plain recursion at par ≤ 1.
	par    int
	tokens chan struct{}

	// spawnCost is the fan-out threshold in cost units (see buildChild.
	// cost); children estimated below it always build inline. scratch,
	// when non-nil, recycles work lists and diff sets across builds.
	spawnCost int
	scratch   *scratchPool
}

// buildConfig bundles the knobs a treeBuilder is sized with: the builder
// concurrency (see WithPrepareParallelism), the spawn threshold of the
// fan-out cost model (see WithSpawnCost; ≤ 0 means spawnCostDefault) and
// the engine's scratch pool (nil allocates per use). The zero value is a
// sequential, unpooled build with default thresholds — what the
// deprecated Solver shims use.
type buildConfig struct {
	par       int
	spawnCost int
	scratch   *scratchPool
}

// newTreeBuilder sizes a builder for cfg-way construction. Shallow
// emulation stays sequential — it exists to reproduce the pre-IR
// engine's sequential cost model, and its unit recompute path reads the
// concrete query off the parent mid-build.
func newTreeBuilder(memo *satMemo, cfg buildConfig) *treeBuilder {
	par := cfg.par
	if memo != nil && memo.shallow {
		par = 1
	}
	sc := cfg.spawnCost
	if sc <= 0 {
		sc = spawnCostDefault
	}
	b := &treeBuilder{memo: memo, par: par, spawnCost: sc, scratch: cfg.scratch}
	if par > 1 {
		b.tokens = make(chan struct{}, par-1)
		for i := 0; i < par-1; i++ {
			b.tokens <- struct{}{}
		}
	}
	return b
}

// key computes a node's content address (see nodeKey). Attached pad
// groups fold in their row-digest sums: the additive multiset digest makes
// the key identical to what the same rows inside the fact list would
// yield, and independent of how the groups happen to be subdivided.
func (b *treeBuilder) key(label string, facts []*taggedFact, pads []*padGroup) string {
	var dig db.Digest
	for _, tf := range facts {
		dig = dig.Add(tf.ContentDigest())
	}
	for _, g := range pads {
		dig = dig.Add(g.dig)
	}
	var w [32]byte
	for i, x := range dig {
		binary.LittleEndian.PutUint64(w[i*8:], x)
	}
	var out [16]byte
	for i, seed := range nodeKeySeeds {
		var h maphash.Hash
		h.SetSeed(seed)
		h.WriteString(label)
		h.WriteByte(0)
		h.Write(w[:])
		binary.LittleEndian.PutUint64(out[i*8:], h.Sum64())
	}
	return string(out[:])
}

// lookup consults the memo, honoring the shallow emulation mode.
func (b *treeBuilder) lookup(key string, depth int) (*dpNode, bool) {
	if b.memo == nil || (b.memo.shallow && depth > 1) {
		return nil, false
	}
	n, ok := b.memo.lookup(key, b.par > 1)
	if ok {
		b.stats.add(&b.stats.Hits)
	}
	return n, ok
}

// store interns a built node, honoring the shallow emulation mode, and
// returns the canonical copy (the argument, unless a concurrent builder
// interned the same content first).
func (b *treeBuilder) store(n *dpNode, depth int) *dpNode {
	if b.memo == nil || (b.memo.shallow && depth > 1) {
		return n
	}
	return b.memo.store(n, b.par > 1)
}

func (b *treeBuilder) miss() { b.stats.add(&b.stats.Misses) }

// buildChild describes one independent child construction for
// buildChildren: the inputs of a build call other than the shared depth.
type buildChild struct {
	q           *query.CQ
	shape       *dpShape
	label       string
	facts       []*taggedFact
	pads        []*padGroup
	prefiltered bool
	prev        *dpNode
}

// spawnCostDefault is the smallest estimated child cost worth handing to
// another goroutine; cheaper children build inline rather than pay the
// handoff. In cost units, one unit ≈ building one u64-representation fact
// (the unit the old fixed parallelGrain=4 fact threshold was implicitly
// calibrated in). Tunable per engine via WithSpawnCost.
const spawnCostDefault = 4

// repWeight scales a child's size by the numeric representation its
// subtree convolves on, which follows from its endogenous fact count
// (vectors span endo+1 coefficients; see internal/numeric). The weights
// come from the convolution kernel benchmarks (BenchmarkConvolve):
// per-coefficient cost of the two-word u128 kernel is ≈3× the u64 kernel's
// and the big.Int path ≈16×, so a wide-representation child of the same
// fact count is worth spawning much earlier.
func repWeight(endo int) int {
	switch {
	case endo > 128:
		return 16
	case endo > 64:
		return 3
	default:
		return 1
	}
}

// cost estimates a child subtree's build cost for the fan-out decision:
// routed size (facts plus lazily padded rows) scaled by the numeric
// representation weight. Ground leaves are free — a leaf is one
// ShiftedBinomial evaluation no matter how its facts count, and spawning
// it costs more than building it.
func (k *buildChild) cost() int {
	if k.shape != nil && k.shape.kind == nodeGround {
		return 0
	}
	n := len(k.facts)
	endo := 0
	for _, tf := range k.facts {
		if tf.Endo {
			endo++
		}
	}
	for _, g := range k.pads {
		n += len(g.rows)
	}
	return n * repWeight(endo)
}

// buildChildren constructs independent sibling subtrees — bucket values,
// product components, or union disjuncts. With par ≤ 1 it is plain
// in-order recursion. With parallelism enabled, each child big enough to
// be worth it is offered to a spare builder goroutine via a non-blocking
// token acquire and built inline otherwise, so construction never stalls
// waiting for a permit and total goroutines stay bounded by par across
// the whole recursion (spawned children re-enter this fan-out with the
// remaining tokens).
//
// Results land at the child's own index, so the assembled slice is
// identical to the sequential order. On failure the error of the
// lowest-index failing child is reported — the same one the sequential
// build returns, because children are issued in index order: issuing
// only stops after an inline failure at some index at or past the lowest
// failing one, so that child was issued and its error recorded.
func (b *treeBuilder) buildChildren(kids []buildChild, depth int) ([]*dpNode, error) {
	out := make([]*dpNode, len(kids))
	if b.par <= 1 || len(kids) < 2 {
		for i := range kids {
			k := &kids[i]
			child, err := b.build(k.q, k.shape, k.label, k.facts, k.pads, k.prefiltered, k.prev, depth)
			if err != nil {
				return nil, err
			}
			out[i] = child
		}
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		errIdx   = -1
		firstErr error
	)
	record := func(i int, err error) {
		errMu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		errMu.Unlock()
	}
	for i := range kids {
		k := &kids[i]
		spawned := false
		if k.cost() >= b.spawnCost {
			select {
			case tok := <-b.tokens:
				spawned = true
				wg.Add(1)
				go func(i int, k *buildChild) {
					defer wg.Done()
					defer func() { b.tokens <- tok }()
					child, err := b.build(k.q, k.shape, k.label, k.facts, k.pads, k.prefiltered, k.prev, depth)
					if err != nil {
						record(i, err)
						return
					}
					out[i] = child
				}(i, k)
			default:
			}
		}
		if !spawned {
			child, err := b.build(k.q, k.shape, k.label, k.facts, k.pads, k.prefiltered, k.prev, depth)
			if err != nil {
				record(i, err)
				break
			}
			out[i] = child
		}
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, firstErr
	}
	return out, nil
}

// build constructs (or reuses) the node for cntSat(facts, q).
//
//   - q is the concrete query where the caller has one without cloning
//     (the root, union disjuncts, shallow-mode children); nil for nodes
//     reached by bucket/component descent, whose structure comes from
//     shape.
//   - shape is the shared structural analysis; nil means derive it from q
//     (entry points).
//   - pads carries the lazily padded ExoShap rows routed into this
//     subtree (see dppad.go); nil everywhere outside the indexed-ExoShap
//     path. Pad rows are exogenous and bypass the relevance scan (their
//     stored arity is the projected one, not the atom's).
//   - prefiltered marks fact lists produced by bucket or component
//     routing: every such fact is already known to participate in the
//     core dynamic program, so the per-fact pattern scan is skipped and
//     the node has no free fillers.
//   - prev, when non-nil, must be the node of the same query over the
//     immediately preceding snapshot; it guides child matching and lets
//     the combine step update prev's product by division instead of
//     re-convolving.
//
//repolint:allow nodeimmut: node construction — fields are written before the node is interned and published
func (b *treeBuilder) build(q *query.CQ, shape *dpShape, label string, facts []*taggedFact, pads []*padGroup, prefiltered bool, prev *dpNode, depth int) (*dpNode, error) {
	if label == "" {
		label = hashLabel(q.String())
	}
	key := b.key(label, facts, pads)
	if n, ok := b.lookup(key, depth); ok {
		return n, nil
	}
	b.miss()
	if b.memo != nil && b.memo.shallow && depth >= 1 {
		// Shallow emulation never sees pads: the prepare path dispatches
		// the dense transform under a shallow memo, because opaque units
		// recompute materialized sub-instances with the reference
		// recursion, which cannot expand lazy padding.
		return b.buildOpaque(q, label, key, facts, depth)
	}
	if shape == nil {
		var err error
		if shape, err = shapeFrom(q); err != nil {
			return nil, err
		}
	}

	n := &dpNode{key: key, label: label, kind: shape.kind, q: q, shape: shape}

	// Relevance split: facts that can be the image of their relation's
	// atom participate in the core dynamic program; other endogenous facts
	// are free fillers folded in by binomial convolution. Prefiltered
	// lists (bucket/component routing) skip the scan: substitution only
	// pins the routing value the facts already carry.
	var relevant []*taggedFact
	if prefiltered {
		relevant = facts
		for _, tf := range facts {
			if tf.Endo {
				n.relN++
			}
		}
	} else {
		atomOf := make(map[string]query.Atom, len(q.Atoms))
		for _, a := range q.Atoms {
			atomOf[a.Rel] = a
		}
		for _, tf := range facts {
			if a, in := atomOf[tf.Fact.Rel]; in && query.MatchesAtom(a, tf.Fact) {
				relevant = append(relevant, tf)
				if tf.Endo {
					n.relN++
				}
			} else if tf.Endo {
				n.free++
			}
		}
	}
	n.endo = n.relN + n.free

	// Mirror the branching of cntSatCore exactly.
	switch shape.kind {
	case nodeProduct:
		if prev != nil && (prev.kind != nodeProduct || len(prev.children) != len(shape.children)) {
			prev = nil
		}
		childPads, err := routePadsProduct(shape, len(shape.children), pads)
		if err != nil {
			return nil, err
		}
		kids := b.scratch.getKids(len(shape.children))
		for ci := range shape.children {
			rels := shape.compRels[ci]
			var childFacts []*taggedFact
			for _, tf := range relevant {
				if rels[tf.Fact.Rel] {
					childFacts = append(childFacts, tf)
				}
			}
			var childPrev *dpNode
			if prev != nil {
				childPrev = prev.children[ci]
			}
			var childQ *query.CQ
			if b.memo != nil && b.memo.shallow {
				// Opaque units run the reference recursion and need the
				// concrete sub-query; at the depths shallow mode reaches,
				// the shape's representative is exactly it.
				childQ = shape.subQs[ci]
			}
			var kp []*padGroup
			if childPads != nil {
				kp = childPads[ci]
			}
			kids[ci] = buildChild{
				q: childQ, shape: shape.children[ci],
				label: b.componentChildLabel(label, ci),
				facts: childFacts, pads: kp, prefiltered: true, prev: childPrev,
			}
		}
		children, err := b.buildChildren(kids, depth+1)
		b.scratch.putKids(kids)
		if err != nil {
			return nil, err
		}
		n.children = children
		if err := n.combine(prev, &b.stats, b.scratch); err != nil {
			return nil, err
		}

	case nodeGround:
		leafFacts, err := groundPadRows(relevant, pads)
		if err != nil {
			return nil, err
		}
		n.facts = leafFacts
		n.core = groundBaseFacts(leafFacts, shape.lits)

	default: // nodeBuckets
		if prev != nil && prev.kind != nodeBuckets {
			prev = nil
		}
		buckets := make(map[db.Const][]*taggedFact)
		for _, tf := range relevant {
			v := tf.Fact.Args[shape.posOf[tf.Fact.Rel]]
			buckets[v] = append(buckets[v], tf)
		}
		n.values = make([]db.Const, 0, len(buckets))
		for v := range buckets {
			n.values = append(n.values, v)
		}
		slices.Sort(n.values)
		// Pad groups never create bucket values of their own: a value only
		// dense pad tuples would carry has no covering-atom facts, so its
		// subtree's non-satisfying factor is the identity and omitting it
		// is value-identical (see dppad.go).
		childPads, err := routePadsBuckets(shape, n.values, pads)
		if err != nil {
			return nil, err
		}
		kids := b.scratch.getKids(len(n.values))
		for bi, v := range n.values {
			childShape, err := shape.bucketChildShape(v)
			if err != nil {
				b.scratch.putKids(kids)
				return nil, err
			}
			var childPrev *dpNode
			if prev != nil {
				if pi, ok := indexOfValue(prev.values, v); ok {
					childPrev = prev.children[pi]
				}
			}
			var childQ *query.CQ
			if b.memo != nil && b.memo.shallow {
				childQ = q.SubstituteVar(shape.rootVar, v)
			}
			var kp []*padGroup
			if childPads != nil {
				kp = childPads[bi]
			}
			kids[bi] = buildChild{
				q: childQ, shape: childShape,
				label: b.bucketChildLabel(label, v),
				facts: buckets[v], pads: kp, prefiltered: true, prev: childPrev,
			}
		}
		children, err := b.buildChildren(kids, depth+1)
		b.scratch.putKids(kids)
		if err != nil {
			return nil, err
		}
		n.children = children
		if err := n.combine(prev, &b.stats, b.scratch); err != nil {
			return nil, err
		}
	}

	n.finish()
	return b.store(n, depth), nil
}

// buildOpaque is the shallow-mode unit recompute: the whole sub-instance
// is recomputed by the reference cntSat recursion (materializing
// sub-databases at every level of its implicit tree, exactly what the
// pre-IR engine paid for a touched bucket) and stored as a single
// structureless node.
//
//repolint:allow nodeimmut: node construction — fields are written before the node is interned and published
func (b *treeBuilder) buildOpaque(q *query.CQ, label, key string, facts []*taggedFact, depth int) (*dpNode, error) {
	n := &dpNode{key: key, label: label, kind: nodeOpaque, q: q, facts: facts}
	for _, tf := range facts {
		if tf.Endo {
			n.endo++
		}
	}
	n.relN = n.endo
	sat, err := cntSat(dbOf(facts), q)
	if err != nil {
		return nil, err
	}
	n.core = sat
	n.finish()
	return b.store(n, depth), nil
}

// buildUnion constructs (or reuses) the root node of a relation-disjoint
// UCQ¬: one child per disjunct (its pool of facts over the disjunct's
// relations), combined exactly like a bucket node — the union is violated
// iff every disjunct is. relOf must map every disjunct relation to
// its disjunct index (validated by the caller).
//
//repolint:allow nodeimmut: node construction — fields are written before the node is interned and published
func (b *treeBuilder) buildUnion(u *query.UCQ, relOf map[string]int, facts []*taggedFact, prev *dpNode) (*dpNode, error) {
	label := hashLabel(unionLabelPrefix + u.String())
	key := b.key(label, facts, nil)
	if n, ok := b.lookup(key, 0); ok {
		return n, nil
	}
	b.miss()
	if prev != nil && (prev.kind != nodeUnion || len(prev.children) != len(u.Disjuncts)) {
		prev = nil
	}

	n := &dpNode{key: key, label: label, kind: nodeUnion, u: u, relOf: relOf}
	pools := make([][]*taggedFact, len(u.Disjuncts))
	for _, tf := range facts {
		if i, ok := relOf[tf.Fact.Rel]; ok {
			pools[i] = append(pools[i], tf)
			if tf.Endo {
				n.relN++
			}
		} else if tf.Endo {
			n.free++
		}
	}
	n.endo = n.relN + n.free
	kids := make([]buildChild, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		var childPrev *dpNode
		if prev != nil {
			childPrev = prev.children[i]
		}
		// Disjunct pools are split by relation only, so each disjunct
		// root runs the full relevance scan against its concrete query.
		kids[i] = buildChild{
			q: q, label: b.componentChildLabel(label, i),
			facts: pools[i], prev: childPrev,
		}
	}
	var err error
	if n.children, err = b.buildChildren(kids, 1); err != nil {
		return nil, err
	}
	if err := n.combine(prev, &b.stats, b.scratch); err != nil {
		return nil, err
	}
	n.finish()
	return b.store(n, 0), nil
}

// combine fills the interior node's product state and its core vector.
// When prev is the same-query node over the preceding snapshot, the
// product of child factors is updated by dividing out the factors that
// disappeared and convolving in the new ones (diffing children by content
// key); otherwise it is the full convolution chain. Both routes yield the
// identical integer vector — convolution of subset-count vectors is
// commutative and exact.
//
//repolint:allow nodeimmut: construction epilogue — runs on the not-yet-interned node being built
func (n *dpNode) combine(prev *dpNode, st *BuildStats, pool *scratchPool) error {
	for i := range n.children {
		if n.childFactorZero(i) {
			n.zeros++
		}
	}
	n.prod = n.maintainProd(prev, st, pool)
	switch n.kind {
	case nodeProduct:
		// The conjunction holds iff it holds componentwise; counts convolve.
		if n.zeros > 0 {
			n.core = numeric.Zero(n.relN)
		} else {
			if n.prod.Len() != n.relN+1 {
				return fmt.Errorf("core: internal error: component convolution length %d, want %d", n.prod.Len(), n.relN+1)
			}
			n.core = n.prod
		}
	default:
		// Buckets and unions: the query is violated iff every child is;
		// count the all-violating subsets and complement.
		allNonSat := n.prod
		if n.zeros > 0 {
			allNonSat = numeric.Vec{} // some child is always satisfied
		}
		n.core = numeric.ComplementTotal(allNonSat, n.relN)
	}
	return nil
}

// finish derives the output vectors shared by all kinds: the free-filler
// fold and the cached complement (the factor this node contributes to a
// bucket- or union-style parent).
//
//repolint:allow nodeimmut: construction epilogue — runs on the not-yet-interned node being built
func (n *dpNode) finish() {
	if n.free > 0 {
		n.sat = numeric.Convolve(n.core, numeric.Binomial(n.free))
	} else {
		n.sat = n.core
	}
	n.nonSat = numeric.Complement(n.sat, n.endo)
	n.satZero = n.sat.IsZero()
	n.nonSatZero = n.nonSat.IsZero()
}

// maintainProd computes the product of the node's non-zero child
// factors. When prev is the same-query node over the preceding snapshot
// and only a small share of the children changed (diffed by content key
// — keys are unique within a node: bucket children embed the
// substituted constant in their query, component children their
// sub-query, pool children their disjunct), the previous product is
// maintained by dividing out the stale factors and convolving in the
// fresh ones; otherwise — many changed children, or only a couple of
// them in total, where each division costs as much as the whole chain —
// the plain convolution chain is the cheaper exact route. Both routes
// yield the identical integer vector, since convolution of subset-count
// vectors is commutative and exact.
func (n *dpNode) maintainProd(prev *dpNode, st *BuildStats, pool *scratchPool) numeric.Vec {
	if prev != nil && !prev.prod.IsEmpty() {
		oldKeys := pool.getKeys()
		defer pool.putKeys(oldKeys)
		for _, c := range prev.children {
			oldKeys[c.key] = true
		}
		curKeys := pool.getKeys()
		defer pool.putKeys(curKeys)
		for _, c := range n.children {
			curKeys[c.key] = true
		}
		changed := 0
		for _, c := range prev.children {
			if !curKeys[c.key] {
				changed++
			}
		}
		for _, c := range n.children {
			if !oldKeys[c.key] {
				changed++
			}
		}
		if 2*changed < len(n.children)-n.zeros {
			st.add(&st.ProdMaintained)
			prod := prev.prod
			for i, c := range prev.children {
				if !curKeys[c.key] && !prev.childFactorZero(i) {
					prod = numeric.Deconvolve(prod, prev.childFactor(i))
				}
			}
			for i, c := range n.children {
				if !oldKeys[c.key] && !n.childFactorZero(i) {
					prod = numeric.Convolve(prod, n.childFactor(i))
				}
			}
			return prod
		}
	}
	st.add(&st.ProdRebuilt)
	vecs := make([]numeric.Vec, 0, len(n.children))
	for i := range n.children {
		if !n.childFactorZero(i) {
			vecs = append(vecs, n.childFactor(i))
		}
	}
	return numeric.ConvolveAll(vecs)
}

// indexOfValue finds v in a sorted bucket-value list.
func indexOfValue(values []db.Const, v db.Const) (int, bool) {
	i := sort.Search(len(values), func(i int) bool { return values[i] >= v })
	if i < len(values) && values[i] == v {
		return i, true
	}
	return 0, false
}

// leaveOneOut returns the product of every child factor except child i's,
// or the empty Vec when that product is the zero polynomial (some other
// child's factor is identically zero).
func (n *dpNode) leaveOneOut(i int) numeric.Vec {
	if n.childFactorZero(i) {
		if n.zeros == 1 {
			return n.prod
		}
		return numeric.Vec{}
	}
	if n.zeros > 0 {
		return numeric.Vec{}
	}
	if len(n.children) == 2 {
		return n.childFactor(1 - i) // the sibling is the whole product
	}
	return numeric.Deconvolve(n.prod, n.childFactor(i))
}

// toggle computes the subtree's |Sat| vectors with the endogenous fact f
// moved to the exogenous side (with) and with f removed (without), both
// over the remaining endo−1 endogenous facts — recomputing only the spine
// containing f and combining sibling subtrees through the per-node
// leave-one-out products. It never touches the memo, so concurrent reads
// share the immutable tree freely.
func (n *dpNode) toggle(f db.Fact) (with, without numeric.Vec, err error) {
	// Shallow-mode units replicate the pre-IR per-fact path: two full
	// reference recursions over the toggled sub-instance.
	if n.kind == nodeOpaque {
		return n.toggleOpaque(f)
	}
	// Route f at this node: a fact matching no atom pattern here is a free
	// filler — it changes no satisfaction anywhere in the subtree, so both
	// sides just lose one filler.
	if !n.matchesAny(f) {
		if n.free == 0 {
			return numeric.Vec{}, numeric.Vec{}, fmt.Errorf("core: internal error: %s routed into a subtree without free fillers", f)
		}
		fewer := n.core
		if n.free > 1 {
			fewer = numeric.Convolve(n.core, numeric.Binomial(n.free-1))
		}
		return fewer, fewer, nil
	}

	switch n.kind {
	case nodeGround:
		return n.toggleGround(f)
	case nodeProduct:
		i, ok := n.shape.relOf[f.Rel]
		if !ok {
			return numeric.Vec{}, numeric.Vec{}, fmt.Errorf("core: internal error: %s outside every component", f)
		}
		cw, cwo, err := n.children[i].toggle(f)
		if err != nil {
			return numeric.Vec{}, numeric.Vec{}, err
		}
		others := n.leaveOneOut(i)
		var coreW, coreWo numeric.Vec
		if others.IsEmpty() {
			coreW = numeric.Zero(n.relN - 1)
			coreWo = coreW
		} else {
			coreW = numeric.Convolve(others, cw)
			coreWo = numeric.Convolve(others, cwo)
		}
		return n.foldFreeToggled(coreW), n.foldFreeToggled(coreWo), nil
	default: // nodeBuckets, nodeUnion
		var i int
		if n.kind == nodeUnion {
			i = n.relOf[f.Rel]
		} else {
			v := f.Args[n.shape.posOf[f.Rel]]
			bi, ok := indexOfValue(n.values, v)
			if !ok {
				return numeric.Vec{}, numeric.Vec{}, fmt.Errorf("core: internal error: %s outside every bucket", f)
			}
			i = bi
		}
		child := n.children[i]
		cw, cwo, err := child.toggle(f)
		if err != nil {
			return numeric.Vec{}, numeric.Vec{}, err
		}
		fw := numeric.Complement(cw, child.endo-1)
		fwo := numeric.Complement(cwo, child.endo-1)
		others := n.leaveOneOut(i)
		var allW, allWo numeric.Vec
		if !others.IsEmpty() {
			allW = numeric.Convolve(others, fw)
			allWo = numeric.Convolve(others, fwo)
		}
		coreW := numeric.ComplementTotal(allW, n.relN-1)
		coreWo := numeric.ComplementTotal(allWo, n.relN-1)
		return n.foldFreeToggled(coreW), n.foldFreeToggled(coreWo), nil
	}
}

// matchesAny reports whether f can participate in this node's core
// dynamic program (as opposed to being a free filler here).
func (n *dpNode) matchesAny(f db.Fact) bool {
	if n.kind == nodeUnion {
		_, ok := n.relOf[f.Rel]
		return ok
	}
	if n.q == nil {
		// Prefiltered node: every fact routed into this subtree matches
		// its (substituted) atom by construction; relation membership is
		// the whole question.
		return n.shape.rels[f.Rel]
	}
	for _, a := range n.q.Atoms {
		if a.Rel == f.Rel && query.MatchesAtom(a, f) {
			return true
		}
	}
	return false
}

// splitToggled materializes the node's facts as the two toggled
// databases: one with f moved to the exogenous side and one with f
// removed.
func splitToggled(facts []*taggedFact, f db.Fact) (dw, dwo *db.Database, err error) {
	key := f.Key()
	dw, dwo = db.New(), db.New()
	found := false
	for _, tf := range facts {
		if tf.Key == key {
			if !tf.Endo {
				return nil, nil, fmt.Errorf("db: %s is not an endogenous fact", f)
			}
			found = true
			dw.MustAdd(tf.Fact, false)
			continue
		}
		dw.MustAdd(tf.Fact, tf.Endo)
		dwo.MustAdd(tf.Fact, tf.Endo)
	}
	if !found {
		return nil, nil, fmt.Errorf("db: %s is not a fact of the database", f)
	}
	return dw, dwo, nil
}

// toggleScratch recycles the two tiny toggled-variant slices of
// toggleGround: ShapleyAll calls it once per (fact, spine leaf) pair, which
// on warm serving paths made it the single largest allocation site.
// Package-level (not per-engine) because toggle runs on immutable shared
// trees with no engine in reach; sync.Pool keeps it race-safe.
type toggleScratch struct {
	with, wo []*taggedFact
}

var toggleScratchPool = sync.Pool{New: func() any { return &toggleScratch{} }}

func (ts *toggleScratch) release() {
	for i := range ts.with {
		ts.with[i] = nil
	}
	for i := range ts.wo {
		ts.wo[i] = nil
	}
	ts.with, ts.wo = ts.with[:0], ts.wo[:0]
	toggleScratchPool.Put(ts)
}

// toggleGround recomputes the Lemma 3.2 base case with f toggled; the
// leaf's fact set is tiny (at most one fact per ground atom), so the two
// toggled variants are plain slices — no database is materialized.
func (n *dpNode) toggleGround(f db.Fact) (with, without numeric.Vec, err error) {
	key := f.Key()
	ts := toggleScratchPool.Get().(*toggleScratch)
	withFacts := ts.with[:0]
	woFacts := ts.wo[:0]
	defer func() {
		// Hand the (possibly grown) backing arrays back before recycling;
		// groundBaseFacts has consumed them by the time we return.
		ts.with, ts.wo = withFacts, woFacts
		ts.release()
	}()
	found := false
	for _, tf := range n.facts {
		if tf.Key == key {
			if !tf.Endo {
				return numeric.Vec{}, numeric.Vec{}, fmt.Errorf("db: %s is not an endogenous fact", f)
			}
			found = true
			// Moved to the exogenous side in the "with" variant (the
			// digest is irrelevant here; groundBaseFacts never hashes).
			withFacts = append(withFacts, &taggedFact{Fact: tf.Fact, Key: tf.Key, Endo: false})
			continue
		}
		withFacts = append(withFacts, tf)
		woFacts = append(woFacts, tf)
	}
	if !found {
		return numeric.Vec{}, numeric.Vec{}, fmt.Errorf("db: %s is not a fact of the database", f)
	}
	coreW := groundBaseFacts(withFacts, n.shape.lits)
	coreWo := groundBaseFacts(woFacts, n.shape.lits)
	return n.foldFreeToggled(coreW), n.foldFreeToggled(coreWo), nil
}

// groundBaseFacts is groundBase (cntsat.go) evaluated directly over a
// leaf's fact slice: the hot construction and toggle paths build hundreds
// of ground leaves per tree, and materializing a Database per leaf (maps,
// hashed keys) dominated fresh preparation. The facts are the leaf's
// relevant list, so each one is its atom's exact image and relation
// identity suffices; a relation occurs at most once (self-join-freeness).
func groundBaseFacts(facts []*taggedFact, lits []groundLit) numeric.Vec {
	endo := 0
	for _, tf := range facts {
		if tf.Endo {
			endo++
		}
	}
	mustHave := 0  // |A+|
	mustAvoid := 0 // |A−|
	for _, lit := range lits {
		var match *taggedFact
		for _, tf := range facts {
			if tf.Fact.Rel == lit.Rel {
				match = tf
				break
			}
		}
		switch {
		case !lit.Negated && match == nil:
			return numeric.Zero(endo)
		case !lit.Negated && match.Endo:
			mustHave++
		case lit.Negated && match != nil && !match.Endo:
			return numeric.Zero(endo)
		case lit.Negated && match != nil && match.Endo:
			mustAvoid++
		}
	}
	return numeric.ShiftedBinomial(endo-mustHave-mustAvoid, mustHave, endo)
}

// toggleOpaque recomputes a shallow-mode unit's sub-DP twice via the
// reference recursion, mirroring the pre-IR engine's per-fact toggles.
func (n *dpNode) toggleOpaque(f db.Fact) (with, without numeric.Vec, err error) {
	dw, dwo, err := splitToggled(n.facts, f)
	if err != nil {
		return numeric.Vec{}, numeric.Vec{}, err
	}
	if with, err = cntSat(dw, n.q); err != nil {
		return numeric.Vec{}, numeric.Vec{}, err
	}
	if without, err = cntSat(dwo, n.q); err != nil {
		return numeric.Vec{}, numeric.Vec{}, err
	}
	return with, without, nil
}

// foldFreeToggled folds the node's (unchanged) free fillers into a core
// vector produced by a toggle below.
func (n *dpNode) foldFreeToggled(core numeric.Vec) numeric.Vec {
	if n.free == 0 {
		return core
	}
	return numeric.Convolve(core, numeric.Binomial(n.free))
}

// TreeStats summarizes the DP-tree IR behind a plan: node counts by kind
// and by numeric representation, the tree depth, the memo traffic of the
// most recent construction and the number of live nodes in the memo's
// current generation. Plans on the brute-force fallback (or with no
// endogenous facts) have no tree and report the zero value.
type TreeStats struct {
	GroundNodes  int
	BucketNodes  int
	ProductNodes int
	UnionNodes   int
	Nodes        int // total
	Depth        int // levels; a lone leaf has depth 1

	// Numeric-kernel representation mix: nodes whose output |Sat| vector
	// lives on each arithmetic path. A tree drifting from U64 toward Big
	// is the production signal that a workload outgrew the fixed-width
	// fast paths (see internal/numeric).
	U64Nodes  int
	U128Nodes int
	BigNodes  int

	MemoHits    uint64 // last build (Prepare, Apply or seeded preparation)
	MemoMisses  uint64
	MemoEntries int // live nodes in the memo's current generation

	// Product-maintenance route mix of the last build: interior nodes whose
	// convolution product was updated by exact division against the
	// previous snapshot versus rebuilt by the full convolution chain.
	ProdMaintained uint64
	ProdRebuilt    uint64
}

// treeStats walks the tree rooted at n.
func treeStats(n *dpNode) TreeStats {
	var ts TreeStats
	var walk func(n *dpNode, depth int)
	walk = func(n *dpNode, depth int) {
		ts.Nodes++
		if depth > ts.Depth {
			ts.Depth = depth
		}
		switch n.kind {
		case nodeGround:
			ts.GroundNodes++
		case nodeBuckets:
			ts.BucketNodes++
		case nodeProduct:
			ts.ProductNodes++
		case nodeUnion:
			ts.UnionNodes++
		}
		switch n.sat.Rep() {
		case numeric.RepU64:
			ts.U64Nodes++
		case numeric.RepU128:
			ts.U128Nodes++
		default:
			ts.BigNodes++
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	if n != nil {
		walk(n, 1)
	}
	return ts
}
