package core

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

func disjointUnion() *query.UCQ {
	return query.MustParseUCQ(`
qa() :- R(x), S(x, y), !T(x, y)
qb() :- U(x, y), !V(y)`)
}

// randomUnionInstance builds a random database spanning the relations of
// both disjuncts plus an unrelated relation (free facts).
func randomUnionInstance(rng *rand.Rand, perRel int) *db.Database {
	d := db.New()
	dom := []db.Const{"a", "b", "c"}
	pick := func() db.Const { return dom[rng.Intn(len(dom))] }
	add := func(f db.Fact) {
		if !d.Contains(f) {
			d.MustAdd(f, rng.Intn(3) > 0)
		}
	}
	for i := 0; i < perRel; i++ {
		add(db.NewFact("R", pick()))
		add(db.NewFact("S", pick(), pick()))
		add(db.NewFact("T", pick(), pick()))
		add(db.NewFact("U", pick(), pick()))
		add(db.NewFact("V", pick()))
		add(db.NewFact("Free", pick()))
	}
	return d
}

func TestSatCountVectorUCQAgainstBrute(t *testing.T) {
	u := disjointUnion()
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 10; trial++ {
		d := randomUnionInstance(rng, 3)
		if d.NumEndo() > 14 {
			continue
		}
		got, err := SatCountVectorUCQ(d, u)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force |Sat| for the union.
		endo := d.EndoFacts()
		n := len(endo)
		want := make([]*big.Int, n+1)
		for k := range want {
			want[k] = new(big.Int)
		}
		for mask := 0; mask < 1<<uint(n); mask++ {
			sub := d.Restrict(func(_ db.Fact, e bool) bool { return !e })
			k := 0
			for i, f := range endo {
				if mask&(1<<uint(i)) != 0 {
					sub.MustAddEndo(f)
					k++
				}
			}
			if u.Eval(sub) {
				want[k].Add(want[k], big.NewInt(1))
			}
		}
		for k := range want {
			if got[k].Cmp(want[k]) != 0 {
				t.Fatalf("sat[%d] = %s, want %s\nDB:\n%s", k, got[k], want[k], d)
			}
		}
	}
}

func TestShapleyHierarchicalUCQAgainstBrute(t *testing.T) {
	u := disjointUnion()
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 6; trial++ {
		d := randomUnionInstance(rng, 2)
		if d.NumEndo() == 0 || d.NumEndo() > 10 {
			continue
		}
		for _, f := range d.EndoFacts() {
			fast, err := ShapleyHierarchicalUCQ(d, u, f)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := BruteForceShapley(d, u, f)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Cmp(slow) != 0 {
				t.Fatalf("Shapley(%s) = %s, brute %s\nDB:\n%s", f, fast.RatString(), slow.RatString(), d)
			}
		}
	}
}

func TestUCQRejectsSharedRelations(t *testing.T) {
	u := query.MustParseUCQ("qa() :- R(x) | qb() :- R(x), S(x)")
	d := db.New()
	d.MustAddEndo(db.F("R", "a"))
	if _, err := SatCountVectorUCQ(d, u); !errors.Is(err, ErrUCQNotDisjoint) {
		t.Fatalf("want ErrUCQNotDisjoint, got %v", err)
	}
}

func TestUCQRejectsHardDisjunct(t *testing.T) {
	u := query.MustParseUCQ("qa() :- R(x), S(x, y), T(y) | qb() :- U(x)")
	d := db.New()
	d.MustAddEndo(db.F("U", "a"))
	if _, err := SatCountVectorUCQ(d, u); !errors.Is(err, ErrNotHierarchical) {
		t.Fatalf("want ErrNotHierarchical, got %v", err)
	}
	u2 := query.MustParseUCQ("qa() :- R(x, y), !R(y, x) | qb() :- U(x)")
	if _, err := SatCountVectorUCQ(d, u2); !errors.Is(err, ErrNotSelfJoinFree) {
		t.Fatalf("want ErrNotSelfJoinFree, got %v", err)
	}
}

func TestUCQSingleDisjunctMatchesCQ(t *testing.T) {
	// A one-disjunct union must agree with the plain CQ algorithm.
	d := runningExample()
	u := &query.UCQ{Disjuncts: []*query.CQ{q1}}
	for _, f := range d.EndoFacts() {
		a, err := ShapleyHierarchicalUCQ(d, u, f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ShapleyHierarchical(d, q1, f)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cmp(b) != 0 {
			t.Fatalf("UCQ wrapper differs for %s: %s vs %s", f, a.RatString(), b.RatString())
		}
	}
}
