package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/query"
)

// This file is the indexed, near-linear variant of the ExoShap transform
// (Algorithm 1). The dense variant (exoShapDense) materializes Step-1
// complements and Step-3 padding as dom^k Cartesian products and evaluates
// Step-2 component joins by scanning relations per join level, which caps
// the ExoShap workloads around a thousand facts while the hierarchical path
// runs fifty times larger. The indexed variant produces a value-equivalent
// instance from three changes:
//
//  1. Implicit complements. A negated exogenous atom is never complemented
//     into a dom^k relation. The component join keeps the atom negated and
//     checks candidate tuples against the original relation's hash index —
//     the complement is probed, not materialized. A component variable with
//     no positive occurrence inside the component ranges over an explicit
//     unary domain relation, which restores safety and is exactly the set
//     the dense complement would have bound it to.
//
//  2. Fused component evaluation. Steps 1–3 touch each component of the
//     exogenous atom graph independently, so the per-component join, the
//     projection onto its non-exogenous variables and the complementing all
//     run as one indexed query evaluation (query.Answers over the db hash
//     indexes) that only ever emits the distinct projected rows Step 3
//     would have kept.
//
//  3. Lazy padding. Step 3 pads each projected row with dom^pad copies so
//     the padded atom never constrains the covering atom's extra variables.
//     Instead, the transformed relation stores only the projected rows
//     (arity = kept variables) and is marked padded; the DP-tree builder
//     routes those rows as shared padGroups (dptree.go) that behave as
//     universal on the pad positions — subdivided by hash lookup when a
//     bucket level pins a kept variable, passed through unchanged when it
//     pins a pad variable. Bucket values only pad rows would create are
//     omitted: the covering atom (positive, with exactly the padded atom's
//     variable set) has no facts there, so that bucket's subtree satisfies
//     nothing and contributes the identity factor to the parent product.
//
// The output plan is answer-identical at the value level; node content keys
// legitimately differ from the dense tree's (the instances differ), which
// is why the differential suite pins Shapley values, not tree structure.

// errDenseFallback reports that the indexed transform cannot represent an
// instance lazily: a component needs padding but no *positive* covering
// atom exists (the identity-factor argument above needs one). The prepare
// path catches it and falls back to the dense transform wholesale.
var errDenseFallback = errors.New("core: indexed ExoShap needs a positive covering atom; falling back to the dense transform")

// exoShapIndexed is the indexed ExoShap transform: same contract as
// ExoShapTransform, but complements are implicit and padded relations are
// emitted at projected arity with their names in padded (relation name →
// true); the DP-tree builder expands them lazily (see splitPadGroups).
// Callers that evaluate (d2, q2) directly — reference algorithms,
// brute-force differentials — must use the dense transform instead.
func exoShapIndexed(d *db.Database, q *query.CQ, exo map[string]bool) (*db.Database, *query.CQ, map[string]bool, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if q.HasSelfJoin() {
		return nil, nil, nil, ErrNotSelfJoinFree
	}
	if q.HasNonHierarchicalPath(exo) {
		return nil, nil, nil, ErrIntractable
	}
	for rel := range exo {
		if d.RelationEndogenous(rel) {
			return nil, nil, nil, fmt.Errorf("%w: %s", ErrExoViolated, rel)
		}
	}

	// Working domain: active domain of D plus the query's constants, sorted
	// (see exoShapDense for why the extension matters).
	dom := d.Domain()
	seenC := make(map[db.Const]bool, len(dom))
	for _, c := range dom {
		seenC[c] = true
	}
	for _, a := range q.Atoms {
		for _, tm := range a.Args {
			if !tm.IsVar() && !seenC[tm.Const] {
				seenC[tm.Const] = true
				dom = append(dom, tm.Const)
			}
		}
	}
	sort.Slice(dom, func(i, j int) bool { return dom[i] < dom[j] })

	nonExoCount := 0
	qExoRels := make(map[string]bool)
	for _, a := range q.Atoms {
		if exo[a.Rel] {
			qExoRels[a.Rel] = true
		} else {
			nonExoCount++
		}
	}
	if nonExoCount == 0 {
		return nil, nil, nil, fmt.Errorf("core: every atom of %s is over an exogenous relation; all Shapley values are trivially 0", q.Name())
	}

	// The exogenous atom graph is untouched by Step 1 (complementing keeps
	// every atom's argument list), so components are computed directly on
	// the input. Likewise a variable is exogenous after Steps 1–2 iff it
	// occurs only in exogenous atoms of the input.
	comps := q.ExoAtomComponents(exo)
	exoVars := make(map[string]bool)
	for _, x := range q.ExogenousVars(exo) {
		exoVars[x] = true
	}

	// Evaluation database for the component joins: the exogenous facts the
	// components range over, plus the explicit unary domain relation for
	// variables with no positive occurrence inside their component. Only
	// built when some component exists.
	var (
		evalDB *db.Database
		domRel string
	)
	if len(comps) > 0 {
		evalDB = db.New()
		for _, ff := range d.FlaggedFacts() {
			if qExoRels[ff.Fact.Rel] {
				if err := evalDB.AddFlagged(ff); err != nil {
					return nil, nil, nil, err
				}
			}
		}
		domRel = freshRel(evalDB, q, "Dom")
		for _, c := range dom {
			evalDB.MustAddExo(db.Fact{Rel: domRel, Args: []db.Const{c}})
		}
	}

	// d2 starts as D minus the facts of the query's exogenous relations
	// (their content moves into the per-component relations below);
	// endogenous facts keep their insertion order, so EndoFacts order — and
	// hence every result order — is unchanged.
	d2 := db.New()
	for _, ff := range d.FlaggedFacts() {
		if !qExoRels[ff.Fact.Rel] {
			if err := d2.AddFlagged(ff); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	padded := make(map[string]bool)
	inComp := make(map[int]int) // atom index → component id
	for ci, comp := range comps {
		for _, ai := range comp {
			inComp[ai] = ci
		}
	}
	compAtom := make([]query.Atom, len(comps))
	taken := make(map[string]bool) // names claimed by row-less components
	for ci, comp := range comps {
		// Union of the component's variables in first-occurrence order, and
		// the subset with a positive occurrence inside the component.
		var compVars []string
		seen := make(map[string]bool)
		positive := make(map[string]bool)
		for _, ai := range comp {
			for _, x := range q.Atoms[ai].Vars() {
				if !seen[x] {
					seen[x] = true
					compVars = append(compVars, x)
				}
				if !q.Atoms[ai].Negated {
					positive[x] = true
				}
			}
		}
		// Kept variables: the non-exogenous ones, in order (Step 3's
		// projection target).
		var keep []string
		keepSet := make(map[string]bool)
		for _, x := range compVars {
			if !exoVars[x] {
				keepSet[x] = true
				keep = append(keep, x)
			}
		}
		// Covering atom (Lemma 4.4). The dense transform takes the first
		// covering non-exogenous atom regardless of polarity; when that
		// choice needs no padding the lazy representation is not involved
		// and we mirror it exactly. Otherwise padding is lazy, and the
		// identity-factor argument for omitted buckets needs the covering
		// atom to be positive.
		beta, ok := coveringAtom(q, exo, keep)
		if !ok {
			return nil, nil, nil, fmt.Errorf("core: internal error: no covering non-exogenous atom for component %d (Lemma 4.4 violated?)", ci+1)
		}
		var pad []string
		for _, x := range beta.Vars() {
			if !keepSet[x] {
				pad = append(pad, x)
			}
		}
		if len(pad) > 0 && beta.Negated {
			beta, ok = coveringAtomPositive(q, exo, keep)
			if !ok {
				return nil, nil, nil, errDenseFallback
			}
			pad = pad[:0]
			for _, x := range beta.Vars() {
				if !keepSet[x] {
					pad = append(pad, x)
				}
			}
		}

		// Fused Steps 1–3: one indexed evaluation yielding the distinct
		// projections of the component join onto the kept variables. The
		// negated atoms stay negated (checked against the real relations —
		// the implicit complement); variables with no positive occurrence
		// range over the domain relation.
		joinQ := &query.CQ{Label: "xjoin", Head: keep}
		for _, ai := range comp {
			joinQ.Atoms = append(joinQ.Atoms, q.Atoms[ai])
		}
		for _, x := range compVars {
			if !positive[x] {
				joinQ.Atoms = append(joinQ.Atoms, query.NewAtom(domRel, query.V(x)))
			}
		}
		rows := joinQ.Answers(evalDB)

		fresh := freshRel(d2, q, fmt.Sprintf("XJ%d", ci+1))
		for taken[fresh] {
			fresh = freshRel(d2, q, fresh+"x")
		}
		taken[fresh] = true
		for _, row := range rows {
			d2.MustAddExo(db.Fact{Rel: fresh, Args: row})
		}
		if len(pad) > 0 {
			padded[fresh] = true
		}
		terms := make([]query.Term, 0, len(keep)+len(pad))
		for _, x := range keep {
			terms = append(terms, query.V(x))
		}
		for _, x := range pad {
			terms = append(terms, query.V(x))
		}
		compAtom[ci] = query.NewAtom(fresh, terms...)
	}

	// Assemble q2 exactly as the dense Step 2 does: each component's atom
	// appears at its first member's position; non-exogenous atoms pass
	// through untouched (they cannot contain exogenous variables).
	q2 := &query.CQ{Label: q.Label, Head: append([]string(nil), q.Head...)}
	emitted := make(map[int]bool)
	for ai, a := range q.Atoms {
		if ci, isExo := inComp[ai]; isExo {
			if !emitted[ci] {
				emitted[ci] = true
				q2.Atoms = append(q2.Atoms, compAtom[ci])
			}
			continue
		}
		q2.Atoms = append(q2.Atoms, a)
	}
	if !q2.IsHierarchical() {
		return nil, nil, nil, fmt.Errorf("core: internal error: ExoShap output %s is not hierarchical", q2)
	}
	return d2, q2, padded, nil
}

// coveringAtomPositive is coveringAtom restricted to positive atoms, the
// requirement of the lazy-padding representation (a negated covering atom
// cannot anchor the omitted-bucket identity argument).
func coveringAtomPositive(q *query.CQ, exo map[string]bool, vars []string) (query.Atom, bool) {
	for _, a := range q.Atoms {
		if exo[a.Rel] || a.Negated {
			continue
		}
		all := true
		for _, x := range vars {
			if !a.HasVar(x) {
				all = false
				break
			}
		}
		if all {
			return a, true
		}
	}
	return query.Atom{}, false
}
