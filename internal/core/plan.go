package core

import (
	"context"
	"sync"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/query"
)

// Plan is the versioned, incrementally maintainable compute handle of the
// v2 API, superseding PreparedBatch. A Plan owns a snapshot of the
// database it was prepared against and the fact-independent computation
// state over it (classification, ExoShap, the shared CntSat tables).
// Plan.Apply evolves the snapshot by a db.Delta, bumping a monotone
// version: the per-bucket dynamic-programming vectors are keyed by bucket
// content (satMemo), so only the buckets the delta touches are recomputed
// and every untouched table is reused — the rebuilt state is bit-identical
// to a fresh Engine.Prepare over the post-delta database.
//
// All methods are safe for concurrent use. Reads (Shapley, ShapleyAll)
// pin the current immutable per-version state and run without holding the
// plan lock, so a long ShapleyAll keeps answering for the version it
// started on while a concurrent Apply installs the next one.
type Plan struct {
	eng *Engine
	cq  *query.CQ
	ucq *query.UCQ

	mu      sync.RWMutex
	version db.Version
	d       *db.Database   // current snapshot, owned by the plan
	pb      *PreparedBatch // immutable per-version computation state
	memo    *satMemo       // content-keyed DP vectors carried across versions
}

// Version returns the plan's current version. Versions start at 1 and
// increase by one per successful non-empty Apply.
func (p *Plan) Version() db.Version {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.version
}

// Classification reports where the prepared query fell in the dichotomies.
func (p *Plan) Classification() Classification { return p.state().Classification() }

// Method reports which algorithm the plan uses at its current version.
func (p *Plan) Method() Method { return p.state().Method() }

// Facts returns the endogenous facts of the current snapshot, in the
// deterministic order ShapleyAll results follow.
func (p *Plan) Facts() []db.Fact { return p.state().Facts() }

// NumFacts returns the number of endogenous facts in the current snapshot.
func (p *Plan) NumFacts() int { return p.state().NumFacts() }

// Snapshot returns a copy of the plan's current database.
func (p *Plan) Snapshot() *db.Database {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.d.Clone()
}

// state pins the current per-version computation state.
func (p *Plan) state() *PreparedBatch {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pb
}

// PlanView is an atomic pin of one plan version: its compute methods
// answer against exactly the state Version reports, even while concurrent
// Applies move the plan on. Serving layers use it to label responses with
// the version that actually produced them.
type PlanView struct {
	eng     *Engine
	pb      *PreparedBatch
	version db.Version
}

// View pins the plan's current version and state atomically.
func (p *Plan) View() *PlanView {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return &PlanView{eng: p.eng, pb: p.pb, version: p.version}
}

// Version reports the plan version the view answers for.
func (v *PlanView) Version() db.Version { return v.version }

// Method reports which algorithm the pinned state uses.
func (v *PlanView) Method() Method { return v.pb.Method() }

// Facts returns the endogenous facts of the pinned snapshot, in the
// deterministic order ShapleyAll results follow.
func (v *PlanView) Facts() []db.Fact { return v.pb.Facts() }

// NumFacts returns the number of endogenous facts of the pinned snapshot.
func (v *PlanView) NumFacts() int { return v.pb.NumFacts() }

// Shapley computes the value of a single endogenous fact of the pinned
// snapshot.
func (v *PlanView) Shapley(ctx context.Context, f db.Fact) (*ShapleyValue, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return v.pb.shapleyOne(ctx, f)
}

// ShapleyAll computes the value of every endogenous fact of the pinned
// snapshot; see Plan.ShapleyAll.
func (v *PlanView) ShapleyAll(ctx context.Context, opts BatchOptions) ([]*ShapleyValue, error) {
	if opts.Workers <= 0 {
		opts.Workers = v.eng.workers
	}
	return v.pb.shapleyAll(ctx, opts)
}

// ShapleySubset computes the values of an explicit list of endogenous
// facts of the pinned snapshot, in the given order, fanning the per-fact
// work across the worker pool exactly like ShapleyAll. It exists for
// serving layers that batch concurrent single-fact requests (or scatter
// fact ranges across replicas): the per-fact toggles share the prepared
// DP-tree, so K coalesced facts cost one sweep of K toggles, not K
// preparations. Each value is bit-identical to Shapley on that fact.
func (v *PlanView) ShapleySubset(ctx context.Context, facts []db.Fact, opts BatchOptions) ([]*ShapleyValue, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = v.eng.workers
	}
	return v.pb.shapleySubset(ctx, facts, opts)
}

// Shapley computes the value of a single endogenous fact of the current
// snapshot, reusing the prepared tables. It is bit-for-bit identical to
// Solver.Shapley on the snapshot.
func (p *Plan) Shapley(ctx context.Context, f db.Fact) (*ShapleyValue, error) {
	return p.View().Shapley(ctx, f)
}

// ShapleyAll computes the value of every endogenous fact of the current
// snapshot, fanning per-fact work across a worker pool (BatchOptions.
// Workers, defaulting to the engine's WithWorkers setting). Results are in
// Facts() order; OnResult streams them in that order as they complete.
// Cancelling ctx aborts in-flight work and returns ctx.Err().
func (p *Plan) ShapleyAll(ctx context.Context, opts BatchOptions) ([]*ShapleyValue, error) {
	return p.View().ShapleyAll(ctx, opts)
}

// Apply evolves the plan's snapshot by delta and returns the new version.
// An empty delta is a no-op returning the current version unchanged. On
// error (an invalid delta, or a post-delta database the prepared query
// cannot be served over, e.g. an endogenous fact added to a declared
// exogenous relation) the plan is left untouched at its current version.
//
// Only the root-to-leaf spines of the DP-tree the delta's facts fall into
// are recomputed: every subtree whose input content is unchanged — no
// matter how deep below a touched top-level bucket — is reused through the
// content-addressed node memo, and the convolution products along the
// recomputed spines are maintained by exact polynomial division instead of
// re-convolving all siblings. The result is bit-identical to a fresh
// Engine.Prepare on the post-delta database.
func (p *Plan) Apply(ctx context.Context, delta db.Delta) (db.Version, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if delta.Empty() {
		return p.version, nil
	}
	if err := ctxErr(ctx); err != nil {
		return p.version, err
	}
	_, sp := obs.Start(ctx, "plan.apply")
	defer sp.End()
	newD, err := p.d.Apply(delta)
	if err != nil {
		return p.version, err
	}
	memo := p.memo.next()
	ex := prepExtras{memo: memo, prev: p.pb, cfg: p.eng.buildConfig()}
	var pb *PreparedBatch
	if p.cq != nil {
		pb, err = prepareCQ(newD, p.cq, p.eng.exo, p.eng.brute, ex)
	} else {
		pb, err = prepareUCQ(newD, p.ucq, p.eng.exo, p.eng.brute, ex)
	}
	if err != nil {
		// The plan stays at its current version. Nodes the failed build
		// may have added to the shared memo are content-addressed and
		// semantically invisible; the rollover clock is only advanced on
		// success below.
		return p.version, err
	}
	memo.commitNext(p.memo)
	p.d, p.pb, p.memo = newD, pb, memo
	p.version++
	if sp.Recording() {
		st := pb.buildStats()
		sp.SetAttrs(
			obs.Int64("version", int64(p.version)),
			obs.Int64("memo_hits", int64(st.Hits)),
			obs.Int64("memo_misses", int64(st.Misses)),
			obs.Int64("prod_maintained", int64(st.ProdMaintained)),
			obs.Int64("prod_rebuilt", int64(st.ProdRebuilt)),
		)
	}
	return p.version, nil
}

// MemoEntries reports the live node count of the plan's content-addressed
// memo without walking the tree (cheap enough for metrics scrapes; see
// TreeStats for the full shape).
func (p *Plan) MemoEntries() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.memo.entries()
}

// TreeStats summarizes the DP-tree IR behind the plan's current version:
// node counts by kind, tree depth, the memo traffic of the most recent
// construction (the initial Prepare or the last Apply) and the live node
// count of the content-addressed memo. Plans on the brute-force fallback
// (or with no endogenous facts) report the zero value.
func (p *Plan) TreeStats() TreeStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ts := treeStats(p.pb.treeRoot())
	st := p.pb.buildStats()
	ts.MemoHits, ts.MemoMisses = st.Hits, st.Misses
	ts.ProdMaintained, ts.ProdRebuilt = st.ProdMaintained, st.ProdRebuilt
	ts.MemoEntries = p.memo.entries()
	return ts
}
