package relevance

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

func runningExample() *db.Database {
	return db.MustParse(`
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
exo  Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
exo  Course(OS, EE)
exo  Course(IC, EE)
exo  Course(DB, CS)
exo  Course(AI, CS)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
exo  Adv(Michael, Adam)
exo  Adv(Michael, Ben)
exo  Adv(Naomi, Caroline)
exo  Adv(Michael, David)
`)
}

var q1 = query.MustParse("q1() :- Stud(x), !TA(x), Reg(x, y)")

func TestRunningExampleRelevance(t *testing.T) {
	d := runningExample()
	// TA(David) is irrelevant (David never registered); everything else is
	// relevant — exactly the facts with nonzero Shapley value in Example 2.3.
	cases := map[string]bool{
		"TA(Adam)":         true,
		"TA(Ben)":          true,
		"TA(David)":        false,
		"Reg(Adam,OS)":     true,
		"Reg(Adam,AI)":     true,
		"Reg(Ben,OS)":      true,
		"Reg(Caroline,DB)": true,
		"Reg(Caroline,IC)": true,
	}
	for key, want := range cases {
		f, _ := db.ParseFact(key)
		got, err := IsRelevant(d, q1, f)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if got != want {
			t.Errorf("IsRelevant(%s) = %v, want %v", key, got, want)
		}
		brute, err := IsRelevantBrute(d, q1, f)
		if err != nil {
			t.Fatal(err)
		}
		if brute != want {
			t.Errorf("IsRelevantBrute(%s) = %v, want %v", key, brute, want)
		}
	}
}

func TestPolarityOfRelevanceMatchesAtomPolarity(t *testing.T) {
	d := runningExample()
	// Reg facts can only be positively relevant, TA facts only negatively.
	pos, err := IsPosRelevant(d, q1, db.F("Reg", "Caroline", "DB"))
	if err != nil || !pos {
		t.Fatalf("Reg(Caroline,DB) positively relevant: got %v, %v", pos, err)
	}
	neg, err := IsNegRelevant(d, q1, db.F("Reg", "Caroline", "DB"))
	if err != nil || neg {
		t.Fatalf("Reg(Caroline,DB) must not be negatively relevant: got %v, %v", neg, err)
	}
	neg, err = IsNegRelevant(d, q1, db.F("TA", "Adam"))
	if err != nil || !neg {
		t.Fatalf("TA(Adam) negatively relevant: got %v, %v", neg, err)
	}
	pos, err = IsPosRelevant(d, q1, db.F("TA", "Adam"))
	if err != nil || pos {
		t.Fatalf("TA(Adam) must not be positively relevant: got %v, %v", pos, err)
	}
}

func randomInstance(rng *rand.Rand, q *query.CQ, domSize, perRel int) *db.Database {
	d := db.New()
	dom := make([]db.Const, domSize)
	for i := range dom {
		dom[i] = db.Const(string(rune('a' + i)))
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	for _, rel := range q.Relations() {
		for i := 0; i < perRel; i++ {
			args := make([]db.Const, arity[rel])
			for j := range args {
				args[j] = dom[rng.Intn(domSize)]
			}
			f := db.Fact{Rel: rel, Args: args}
			if d.Contains(f) {
				continue
			}
			d.MustAdd(f, rng.Intn(3) > 0)
		}
	}
	return d
}

var polarityConsistentQueries = []*query.CQ{
	query.MustParse("p1() :- Stud(x), !TA(x), Reg(x, y)"),
	query.MustParse("p2() :- R(x), S(x, y), !T(y)"),
	query.MustParse("p3() :- R(x), !S(x, y), T(y)"),
	query.MustParse("p4() :- !R(x), S(x, y), !T(y)"),
	// Self-joins are fine for the relevance algorithms as long as polarity
	// is consistent (e.g. q3 of Example 2.2).
	query.MustParse("p5() :- Adv(x, y), Adv(x, z), !TA(y), !TA(z), Reg(y, A), Reg(z, B)"),
	query.MustParse("p6() :- R(x, y), R(y, x), !S(x)"),
}

func TestPolyRelevanceAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, q := range polarityConsistentQueries {
		for trial := 0; trial < 10; trial++ {
			d := randomInstance(rng, q, 3, 3)
			if d.NumEndo() == 0 || d.NumEndo() > 12 {
				continue
			}
			for _, f := range d.EndoFacts() {
				fastPos, err := IsPosRelevant(d, q, f)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				slowPos, err := IsPosRelevantBrute(d, q, f)
				if err != nil {
					t.Fatal(err)
				}
				if fastPos != slowPos {
					t.Fatalf("%s: IsPosRelevant(%s) = %v, brute %v\nDB:\n%s", q, f, fastPos, slowPos, d)
				}
				fastNeg, err := IsNegRelevant(d, q, f)
				if err != nil {
					t.Fatal(err)
				}
				slowNeg, err := IsNegRelevantBrute(d, q, f)
				if err != nil {
					t.Fatal(err)
				}
				if fastNeg != slowNeg {
					t.Fatalf("%s: IsNegRelevant(%s) = %v, brute %v\nDB:\n%s", q, f, fastNeg, slowNeg, d)
				}
			}
		}
	}
}

func TestExample53BothDirections(t *testing.T) {
	// R(1,2) is positively relevant (E = ∅) and negatively relevant
	// (E = {R(2,1)}), so its Shapley value is 0 despite relevance.
	q := query.MustParse("q() :- R(x, y), !R(y, x)")
	d := db.New()
	d.MustAddEndo(db.F("R", "1", "2"))
	d.MustAddEndo(db.F("R", "2", "1"))
	f := db.F("R", "1", "2")
	pos, err := IsPosRelevantBrute(d, q, f)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := IsNegRelevantBrute(d, q, f)
	if err != nil {
		t.Fatal(err)
	}
	if !pos || !neg {
		t.Fatalf("Example 5.3: pos=%v neg=%v, want both true", pos, neg)
	}
	// The polynomial algorithms refuse: q is not polarity consistent.
	if _, err := IsPosRelevant(d, q, f); !errors.Is(err, ErrNotPolarityConsistent) {
		t.Fatalf("want ErrNotPolarityConsistent, got %v", err)
	}
}

func TestRelevanceErrors(t *testing.T) {
	d := runningExample()
	if _, err := IsPosRelevant(d, q1, db.F("Stud", "Adam")); !errors.Is(err, ErrNotEndogenous) {
		t.Fatalf("want ErrNotEndogenous, got %v", err)
	}
	if _, err := IsRelevantBrute(d, q1, db.F("Stud", "Adam")); !errors.Is(err, ErrNotEndogenous) {
		t.Fatalf("want ErrNotEndogenous, got %v", err)
	}
}

// --- UCQ relevance ---

func TestUCQRelevancePolarityConsistent(t *testing.T) {
	// A polarity-consistent union: both disjuncts negate only T.
	u := query.MustParseUCQ(`
qa() :- R(x), !T(x)
qb() :- S(x, y), !T(y)`)
	if !u.IsPolarityConsistent() {
		t.Fatal("fixture must be polarity consistent")
	}
	rng := rand.New(rand.NewSource(202))
	cq := query.MustParse("all() :- R(x), S(x, y), T(y)") // just for instance generation
	for trial := 0; trial < 12; trial++ {
		d := randomInstance(rng, cq, 3, 3)
		if d.NumEndo() == 0 || d.NumEndo() > 12 {
			continue
		}
		for _, f := range d.EndoFacts() {
			fast, err := IsRelevantUCQ(d, u, f)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := IsRelevantBrute(d, u, f)
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow {
				t.Fatalf("IsRelevantUCQ(%s) = %v, brute %v\nDB:\n%s", f, fast, slow, d)
			}
			fastPos, err := IsPosRelevantUCQ(d, u, f)
			if err != nil {
				t.Fatal(err)
			}
			slowPos, err := IsPosRelevantBrute(d, u, f)
			if err != nil {
				t.Fatal(err)
			}
			if fastPos != slowPos {
				t.Fatalf("IsPosRelevantUCQ(%s) = %v, brute %v\nDB:\n%s", f, fastPos, slowPos, d)
			}
		}
	}
}

func TestUCQRelevanceRejectsInconsistentUnion(t *testing.T) {
	// qSAT's shape: T positive in one disjunct, negative in another.
	u := query.MustParseUCQ(`
qa() :- T(x, y)
qb() :- V(x), !T(x, x)`)
	d := db.New()
	d.MustAddEndo(db.F("T", "a", "a"))
	d.MustAddExo(db.F("V", "a"))
	if _, err := IsRelevantUCQ(d, u, db.F("T", "a", "a")); !errors.Is(err, ErrNotPolarityConsistent) {
		t.Fatalf("want ErrNotPolarityConsistent, got %v", err)
	}
}

func TestGroundNegativeDisqualifier(t *testing.T) {
	// A ground negated atom that is an exogenous fact blocks all candidates.
	q := query.MustParse("q() :- R(x), !S(0)")
	d := db.New()
	d.MustAddEndo(db.F("R", "a"))
	d.MustAddExo(db.F("S", "0"))
	rel, err := IsRelevant(d, q, db.F("R", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Fatal("S(0) exogenous: R(a) can never flip the answer")
	}
	// With S(0) endogenous instead, R(a) is relevant (choose E without S(0)).
	d2 := db.New()
	d2.MustAddEndo(db.F("R", "a"))
	d2.MustAddEndo(db.F("S", "0"))
	rel, err = IsRelevant(d2, q, db.F("R", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Fatal("S(0) endogenous: R(a) is relevant")
	}
}

func TestShapleyNonZeroMatchesRelevance(t *testing.T) {
	d := runningExample()
	nz, err := ShapleyNonZero(d, q1, db.F("TA", "David"))
	if err != nil {
		t.Fatal(err)
	}
	if nz {
		t.Fatal("TA(David) has Shapley value 0")
	}
	nz, err = ShapleyNonZero(d, q1, db.F("TA", "Adam"))
	if err != nil {
		t.Fatal(err)
	}
	if !nz {
		t.Fatal("TA(Adam) has Shapley value −3/28 ≠ 0")
	}
}
