// Package relevance implements the paper's §5.2 notion of relevance of a
// fact to a query — whether adding f can ever change the query answer given
// the exogenous facts and some subset of the endogenous facts — and the
// polynomial-time decision procedures IsPosRelevant / IsNegRelevant
// (Algorithms 2 and 3) for polarity-consistent CQ¬s, together with their
// extension to polarity-consistent UCQ¬s and an exponential brute-force
// oracle used for validation.
//
// For a fact over a polarity-consistent relation symbol, relevance coincides
// with the Shapley value being nonzero, which is why these procedures decide
// Shapley zeroness (and bound multiplicative approximability) in §5.
package relevance

import (
	"errors"
	"fmt"

	"repro/internal/db"
	"repro/internal/query"
)

// ErrNotPolarityConsistent is returned when Algorithms 2/3 are applied to a
// query with a relation occurring both positively and negatively.
var ErrNotPolarityConsistent = errors.New("relevance: query is not polarity consistent")

// ErrNotEndogenous mirrors core.ErrNotEndogenous for this package.
var ErrNotEndogenous = errors.New("relevance: fact is not an endogenous fact of the database")

// maxBruteForcePlayers caps the exponential oracle.
const maxBruteForcePlayers = 22

// IsRelevantBrute decides relevance by enumerating all subsets
// E ⊆ Dn \ {f} and testing q(Dx ∪ E) ≠ q(Dx ∪ E ∪ {f}) (Definition 5.2).
// It works for any Boolean query.
func IsRelevantBrute(d *db.Database, q query.BooleanQuery, f db.Fact) (bool, error) {
	pos, neg, err := relevantBrute(d, q, f)
	return pos || neg, err
}

// IsPosRelevantBrute decides positive relevance (f can flip false→true).
func IsPosRelevantBrute(d *db.Database, q query.BooleanQuery, f db.Fact) (bool, error) {
	pos, _, err := relevantBrute(d, q, f)
	return pos, err
}

// IsNegRelevantBrute decides negative relevance (f can flip true→false).
func IsNegRelevantBrute(d *db.Database, q query.BooleanQuery, f db.Fact) (bool, error) {
	_, neg, err := relevantBrute(d, q, f)
	return neg, err
}

func relevantBrute(d *db.Database, q query.BooleanQuery, f db.Fact) (pos, neg bool, err error) {
	if !d.IsEndogenous(f) {
		return false, false, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	var others []db.Fact
	for _, e := range d.EndoFacts() {
		if e.Key() != f.Key() {
			others = append(others, e)
		}
	}
	if len(others) > maxBruteForcePlayers {
		return false, false, fmt.Errorf("relevance: %d endogenous facts exceed the brute-force limit", len(others)+1)
	}
	dx := d.Restrict(func(_ db.Fact, endo bool) bool { return !endo })
	for mask := 0; mask < 1<<uint(len(others)); mask++ {
		sub := dx.Clone()
		for i, e := range others {
			if mask&(1<<uint(i)) != 0 {
				sub.MustAddEndo(e)
			}
		}
		without := q.Eval(sub)
		sub.MustAddEndo(f)
		with := q.Eval(sub)
		if with && !without {
			pos = true
		}
		if !with && without {
			neg = true
		}
		if pos && neg {
			return pos, neg, nil
		}
	}
	return pos, neg, nil
}

// IsPosRelevant implements Algorithm 2: it decides in polynomial time (data
// complexity) whether f is positively relevant to the polarity-consistent
// CQ¬ q. It enumerates the assignments h that embed the positive atoms of q
// into D with f among the images, and tests whether the rest of the witness
// subset can be completed:
//
//	(Dx ∪ (P \ {f}) ∪ (Neg_q(Dn) \ N)) ⊭ q,
//
// where P and N are the endogenous facts h assigns to positive and negative
// atoms. Polarity consistency makes adding all of Neg_q(Dn) \ N the hardest
// completion, so one test per h suffices (Lemma D.2).
func IsPosRelevant(d *db.Database, q *query.CQ, f db.Fact) (bool, error) {
	return relevantPoly(d, q, f, true)
}

// IsNegRelevant implements Algorithm 3: whether f is negatively relevant to
// the polarity-consistent CQ¬ q. Here h must avoid f among the positive
// images and the test adds f to the witness set:
//
//	(Dx ∪ P ∪ (Neg_q(Dn) \ N) ∪ {f}) ⊭ q  (Lemma D.3).
func IsNegRelevant(d *db.Database, q *query.CQ, f db.Fact) (bool, error) {
	return relevantPoly(d, q, f, false)
}

// IsRelevant combines Algorithms 2 and 3.
func IsRelevant(d *db.Database, q *query.CQ, f db.Fact) (bool, error) {
	pos, err := IsPosRelevant(d, q, f)
	if err != nil {
		return false, err
	}
	if pos {
		return true, nil
	}
	return IsNegRelevant(d, q, f)
}

// ShapleyNonZero decides whether Shapley(D, q, f) ≠ 0 for a
// polarity-consistent CQ¬ in polynomial time (Proposition 5.7): for such
// queries a fact is relevant iff its Shapley value is nonzero.
func ShapleyNonZero(d *db.Database, q *query.CQ, f db.Fact) (bool, error) {
	return IsRelevant(d, q, f)
}

func relevantPoly(d *db.Database, q *query.CQ, f db.Fact, positive bool) (bool, error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	if !q.IsPolarityConsistent() {
		return false, fmt.Errorf("%w: %s (relations %v)", ErrNotPolarityConsistent, q.Name(), q.PolarityInconsistentRels())
	}
	if !d.IsEndogenous(f) {
		return false, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	dx := d.Restrict(func(_ db.Fact, endo bool) bool { return !endo })
	negEndo := negEndoFacts(d, q.NegativeRels())
	found := false
	forEachCandidate(d, q, func(P, N map[string]db.Fact) bool {
		_, fInP := P[f.Key()]
		if positive != fInP {
			return true // continue
		}
		test := dx.Clone()
		for k, fact := range P {
			if positive && k == f.Key() {
				continue
			}
			test.MustAddEndo(fact)
		}
		for k, fact := range negEndo {
			if _, inN := N[k]; !inN {
				if !test.Contains(fact) {
					test.MustAddEndo(fact)
				}
			}
		}
		if !positive {
			if !test.Contains(f) {
				test.MustAddEndo(f)
			}
		}
		if !q.Eval(test) {
			found = true
			return false
		}
		return true
	})
	return found, nil
}

// negEndoFacts returns Neg_q(Dn): the endogenous facts over relations that
// occur in negated atoms, keyed by fact key.
func negEndoFacts(d *db.Database, negRels []string) map[string]db.Fact {
	rels := make(map[string]bool, len(negRels))
	for _, r := range negRels {
		rels[r] = true
	}
	out := make(map[string]db.Fact)
	for _, f := range d.EndoFacts() {
		if rels[f.Rel] {
			out[f.Key()] = f
		}
	}
	return out
}

// forEachCandidate enumerates the assignments h of Algorithms 2/3: every
// mapping of Vars(q) embedding all positive atoms into D whose negative-atom
// images avoid Dx. For each it reports the endogenous positive images P and
// endogenous negative images N (keyed by fact key). fn returns false to stop.
func forEachCandidate(d *db.Database, q *query.CQ, fn func(P, N map[string]db.Fact) bool) {
	posPart := q.SubQuery(q.Positive())
	// Ground negative atoms are constants under every h; a ground negative
	// atom in Dx disqualifies all assignments.
	dxHit := false
	for _, i := range q.Negative() {
		if a := q.Atoms[i]; a.IsGround() {
			if fact := a.GroundFact(); d.IsExogenous(fact) {
				dxHit = true
			}
		}
	}
	if dxHit {
		return
	}
	posPart.ForEachHomomorphism(d, func(b query.Binding) bool {
		P := make(map[string]db.Fact)
		N := make(map[string]db.Fact)
		for _, i := range q.Positive() {
			img := query.Instantiate(q.Atoms[i], b)
			if d.IsEndogenous(img) {
				P[img.Key()] = img
			}
		}
		for _, i := range q.Negative() {
			img := query.Instantiate(q.Atoms[i], b)
			if d.IsExogenous(img) {
				return true // h maps a negated atom into Dx: not a candidate
			}
			if d.IsEndogenous(img) {
				N[img.Key()] = img
			}
		}
		return fn(P, N)
	})
}

// --- polarity-consistent UCQ¬ relevance (§5.2, closing discussion) ---

// IsPosRelevantUCQ decides positive relevance to a polarity-consistent
// UCQ¬ u in polynomial time: f is positively relevant iff some disjunct has
// an assignment h with f among its positive images whose completion
// E = (P \ {f}) ∪ (Neg_u(Dn) \ N) falsifies the whole union. Neg_u ranges
// over relations negated in any disjunct.
func IsPosRelevantUCQ(d *db.Database, u *query.UCQ, f db.Fact) (bool, error) {
	return relevantPolyUCQ(d, u, f, true)
}

// IsNegRelevantUCQ is the negative counterpart.
func IsNegRelevantUCQ(d *db.Database, u *query.UCQ, f db.Fact) (bool, error) {
	return relevantPolyUCQ(d, u, f, false)
}

// IsRelevantUCQ combines both directions.
func IsRelevantUCQ(d *db.Database, u *query.UCQ, f db.Fact) (bool, error) {
	pos, err := IsPosRelevantUCQ(d, u, f)
	if err != nil {
		return false, err
	}
	if pos {
		return true, nil
	}
	return IsNegRelevantUCQ(d, u, f)
}

func relevantPolyUCQ(d *db.Database, u *query.UCQ, f db.Fact, positive bool) (bool, error) {
	if err := u.Validate(); err != nil {
		return false, err
	}
	if !u.IsPolarityConsistent() {
		return false, fmt.Errorf("%w: union %s", ErrNotPolarityConsistent, u.Label)
	}
	if !d.IsEndogenous(f) {
		return false, fmt.Errorf("%w: %s", ErrNotEndogenous, f)
	}
	dx := d.Restrict(func(_ db.Fact, endo bool) bool { return !endo })
	negEndo := negEndoFacts(d, u.NegativeRels())
	for _, disjunct := range u.Disjuncts {
		found := false
		forEachCandidate(d, disjunct, func(P, N map[string]db.Fact) bool {
			_, fInP := P[f.Key()]
			if positive != fInP {
				return true
			}
			test := dx.Clone()
			for k, fact := range P {
				if positive && k == f.Key() {
					continue
				}
				test.MustAddEndo(fact)
			}
			for k, fact := range negEndo {
				if _, inN := N[k]; !inN && !test.Contains(fact) {
					test.MustAddEndo(fact)
				}
			}
			if !positive && !test.Contains(f) {
				test.MustAddEndo(f)
			}
			if !u.Eval(test) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true, nil
		}
	}
	return false, nil
}
