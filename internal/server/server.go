// Package server implements the Shapley attribution server: an HTTP/JSON
// serving layer over the exact and approximate algorithms of the
// reproduction, designed around the observation that for the paper's
// tractable cases (hierarchical CQ¬ via Lemma 3.2 CntSat, ExoShap per
// Theorem 4.3, relation-disjoint UCQ¬s) the per-request cost is dominated
// by fact-independent setup — validation, classification, the ExoShap
// transformation and the shared CntSat dynamic-programming tables. A
// long-lived server amortizes that setup across requests with a
// cross-query LRU plan cache of core.Plan handles keyed by (database id,
// canonicalized query, exogenous declarations, brute-force flag): warm
// requests go straight to the per-fact toggles of a cached plan.
//
// Registered databases are mutable and versioned: PATCH applies a fact
// delta, bumps a monotone version and patches every cached plan of the
// database in place (core.Plan.Apply recomputes only the DP buckets the
// delta touches) instead of evicting them. Cache entries remember the
// database version they answer for and revalidate with one integer
// comparison; concurrent identical cold requests coalesce through a
// single-flight group so N misses cost one preparation.
//
// mode=all responses stream as chunked NDJSON when the request carries
// "Accept: application/x-ndjson": a header line, one line per fact in
// deterministic order as values complete, and a {"done":true} trailer.
// Request contexts thread through the whole compute stack, so a client
// disconnect (or the daemon's forced drain) aborts in-flight batches.
//
// API (all request/response bodies are JSON):
//
//	POST   /v1/databases                  register a database (textual format)
//	GET    /v1/databases                  list registered databases
//	GET    /v1/databases/{id}             inspect one database
//	PATCH  /v1/databases/{id}             apply a fact delta (add/remove facts)
//	DELETE /v1/databases/{id}             deregister (drops its cached plans)
//	POST   /v1/databases/{id}/shapley     exact Shapley: one fact, a fact batch, or mode=all
//	POST   /v1/databases/{id}/classify    dichotomy classification (Thms 3.1/4.3)
//	POST   /v1/databases/{id}/relevance   relevance decision (Def. 5.2)
//	POST   /v1/databases/{id}/approx      Monte-Carlo (ε, δ) estimate (§5.1)
//	GET    /v1/databases/{id}/snapshot    export database + plan memos (cluster warm-up)
//	PUT    /v1/databases/{id}/snapshot    import a snapshot (replaces the registration)
//	GET    /healthz                       liveness
//	GET    /readyz                        readiness (503 while draining)
//	GET    /metrics                       Prometheus-format counters
//
// Queries on the FP#P-hard side of the dichotomies map to 422 (unless the
// request sets brute_force), unknown databases and non-endogenous facts to
// 404, and malformed inputs to 400.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relevance"
	"repro/internal/servercache"
)

// Options configures a Server.
type Options struct {
	// Workers is the default worker-pool size for mode=all requests that do
	// not set their own (zero means runtime.GOMAXPROCS(0)).
	Workers int
	// PrepareParallelism is the DP-tree builder concurrency for plan
	// preparation and PATCH spine rebuilds (core.WithPrepareParallelism):
	// zero or one builds sequentially, negative means GOMAXPROCS.
	PrepareParallelism int
	// PrepareSpawnCost is the cost threshold below which the parallel
	// builder keeps a subtree inline instead of spawning it
	// (core.WithSpawnCost); zero keeps the calibrated default.
	PrepareSpawnCost int
	// CacheSize is the plan-cache capacity in entries; zero means
	// DefaultCacheSize.
	CacheSize int
	// MaxBodyBytes bounds request bodies; zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Logger, when non-nil, receives structured access logs (one record per
	// request at debug level, with trace id, route, status and duration),
	// slow-request warnings and lifecycle events. Nil disables logging.
	Logger *slog.Logger
	// SlowRequestThreshold marks requests at least this slow in the
	// shapleyd_slow_requests_total counter and logs them at warn level.
	// Zero means DefaultSlowRequestThreshold; negative disables.
	SlowRequestThreshold time.Duration
}

// DefaultCacheSize is the plan-cache capacity when Options.CacheSize is 0.
const DefaultCacheSize = 128

// DefaultMaxBodyBytes is the request-body bound when Options.MaxBodyBytes
// is 0 (databases register as text, so bodies can be sizable).
const DefaultMaxBodyBytes = 32 << 20

// DefaultSlowRequestThreshold is the slow-request mark when
// Options.SlowRequestThreshold is 0.
const DefaultSlowRequestThreshold = time.Second

// Server is the HTTP handler. Create with New; the zero value is unusable.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	mu   sync.RWMutex
	dbs  map[string]*registeredDB
	seq  int
	gens uint64 // registration generation counter (see registeredDB.gen)

	// patchMu serializes plan-maintenance sweeps (PATCH) with each other.
	// It is deliberately separate from mu: the sweep runs Plan.Apply (real
	// DP work) and must not block readers, which only need mu's RLock for
	// their snapshot.
	patchMu sync.Mutex

	plans   *servercache.Cache[*cachedPlan]
	flights flightGroup[*cachedPlan]
	met     *metrics

	// draining flips when the daemon begins graceful shutdown: /readyz
	// turns 503 so load balancers and the cluster router's health prober
	// stop routing new work here, while /healthz (liveness) stays 200 —
	// the process is healthy, just leaving.
	draining atomic.Bool
}

// SetDraining marks the server as (not) draining; see /readyz.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// registeredDB is one registered database. Its fields are guarded by the
// server mutex: PATCH swaps the (immutable) db.Database value for the
// post-delta one and bumps the monotone version; readers take a dbSnapshot
// under the read lock and work lock-free from there.
type registeredDB struct {
	id          string
	gen         uint64 // unique per registration: deleting and re-registering an id must never alias cached plans or in-flight preparations of the old content
	fingerprint string
	d           *db.Database
	version     db.Version
	created     time.Time
}

// dbSnapshot is the consistent view of a registered database a request
// works against; the Database value is never mutated after registration or
// patching, so holding the pointer outside the lock is safe.
type dbSnapshot struct {
	id          string
	gen         uint64
	fingerprint string
	d           *db.Database
	version     db.Version
	created     time.Time
}

// cachedPlan is one plan-cache entry: the incrementally maintained plan
// plus the database version its first plan version answered for. The
// database version an entry currently serves is derived, not stored:
// base + plan.Version() — the plan starts at version 1 when prepared
// against database version base+1, and every PATCH that advances the
// database by one delta advances the plan by exactly one Apply (entries
// that miss a delta are dropped by the sweep). Deriving it keeps the
// served version atomic with the compute state a PlanView pins, so
// responses can never label one version's values with another's number.
type cachedPlan struct {
	plan *core.Plan
	base db.Version
}

// servedVersion reports the database version the entry currently answers
// for, atomically consistent with view when one is given (pass nil to
// read the plan's current version).
func (cp *cachedPlan) servedVersion(view *core.PlanView) db.Version {
	if view != nil {
		return cp.base + view.Version()
	}
	return cp.base + cp.plan.Version()
}

// New returns a Server ready to serve.
func New(opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.SlowRequestThreshold == 0 {
		opts.SlowRequestThreshold = DefaultSlowRequestThreshold
	}
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		start: time.Now(),
		dbs:   make(map[string]*registeredDB),
		plans: servercache.New[*cachedPlan](opts.CacheSize),
	}
	// The route table drives both mux registration and the per-route
	// metrics slots: every pattern a request can resolve to has its slot
	// pre-built here, which is what lets countRequest run without a lock.
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /v1/databases", s.handleRegister},
		{"GET /v1/databases", s.handleListDatabases},
		{"GET /v1/databases/{id}", s.handleGetDatabase},
		{"PATCH /v1/databases/{id}", s.handlePatchDatabase},
		{"DELETE /v1/databases/{id}", s.handleDeleteDatabase},
		{"POST /v1/databases/{id}/shapley", s.handleShapley},
		{"POST /v1/databases/{id}/classify", s.handleClassify},
		{"POST /v1/databases/{id}/relevance", s.handleRelevance},
		{"POST /v1/databases/{id}/approx", s.handleApprox},
		{"GET /v1/databases/{id}/snapshot", s.handleExportSnapshot},
		{"PUT /v1/databases/{id}/snapshot", s.handleImportSnapshot},
		{"GET /healthz", s.handleHealthz},
		{"GET /readyz", s.handleReadyz},
		{"GET /metrics", s.handleMetrics},
	}
	patterns := make([]string, 0, len(routes))
	for _, rt := range routes {
		s.mux.HandleFunc(rt.pattern, rt.h)
		patterns = append(patterns, rt.pattern)
	}
	s.met = newMetrics(patterns, opts.SlowRequestThreshold)
	return s
}

// traceQueryParam opts a request into span recording: ?trace=1 attaches an
// obs.Recorder to the request context, and handlers that report traces
// echo the finished span tree in their response body.
const traceQueryParam = "trace"

// ServeHTTP implements http.Handler: it assigns the request's trace id
// (honoring an inbound X-Trace-Id and echoing the id on the response),
// attaches a span recorder when the request asks for one with ?trace=1,
// dispatches, and records the per-route status counters and latency
// histograms around the dispatch. The always-on portion is deliberately
// cheap — a header read, one small id allocation and a few atomics — and
// spans are only materialized for requests that carry a recorder.
//
//repolint:allow ctxflow: ServeHTTP is the fixed http.Handler signature; its context arrives via r.Context()
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.opts.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	// Honor a well-formed inbound trace id (so callers can correlate
	// across services); anything empty, oversized or non-printable gets a
	// fresh id instead.
	tid := r.Header.Get("X-Trace-Id")
	if tid == "" || len(tid) > 64 ||
		strings.ContainsFunc(tid, func(c rune) bool { return c < 0x21 || c > 0x7e }) {
		tid = obs.NewTraceID()
	}
	w.Header().Set("X-Trace-Id", tid)
	// Untraced requests keep their original context: nothing downstream
	// reads the trace id from it (obs.Start is a no-op without a
	// recorder), so skipping the context derivation and request clone
	// keeps the always-on path allocation-lean. RawQuery is checked first
	// so untraced requests skip query parsing too.
	if r.URL.RawQuery != "" && r.URL.Query().Get(traceQueryParam) == "1" {
		rec := obs.NewRecorder(tid, "request")
		r = r.WithContext(obs.WithRecorder(obs.WithTraceID(r.Context(), tid), rec))
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	// r.Pattern is set by the mux on a match; unmatched requests group
	// under unmatchedRoute.
	route := r.Pattern
	if route == "" {
		route = unmatchedRoute
	}
	dur := time.Since(start)
	s.met.countRequest(route, sw.status, dur)
	if log := s.opts.Logger; log != nil {
		if s.opts.SlowRequestThreshold > 0 && dur >= s.opts.SlowRequestThreshold {
			log.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
				slog.String("trace_id", tid),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Duration("duration", dur),
				slog.String("threshold", s.opts.SlowRequestThreshold.String()),
			)
		}
		log.LogAttrs(r.Context(), slog.LevelDebug, "request",
			slog.String("trace_id", tid),
			slog.String("route", route),
			slog.Int("status", sw.status),
			slog.Duration("duration", dur),
		)
	}
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so NDJSON streaming keeps working
// through the metrics wrapper (net/http only treats the handler's writer
// as a Flusher if the wrapper exposes it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// CacheStats reports the plan cache's hit/miss/eviction counters and
// current size (exported for tests and benchmarks).
func (s *Server) CacheStats() (hits, misses, evictions int64, entries int) {
	return s.plans.Hits(), s.plans.Misses(), s.plans.Evictions(), s.plans.Len()
}

// PlansPrepared reports how many cold-path plan preparations have run
// (exported for tests: the single-flight assertion pins it to exactly one
// across N concurrent identical cold requests).
func (s *Server) PlansPrepared() int64 { return s.met.plansPrepared.Load() }

// ValuesComputed reports how many Shapley values this server has computed
// and returned (exported for tests: the cluster coalescing assertion pins
// the worker to one toggle sweep across K merged single-fact requests).
func (s *Server) ValuesComputed() int64 { return s.met.valuesComputed.Load() }

// CoalescedSingleflight reports requests that joined another request's
// in-flight plan preparation.
func (s *Server) CoalescedSingleflight() int64 { return s.met.coalescedSingleflight.Load() }

// PurgePlans empties the plan cache (benchmark cold-path support).
func (s *Server) PurgePlans() { s.plans.Purge() }

// snapshot returns a consistent view of the registered database for an id.
func (s *Server) snapshot(id string) (dbSnapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rdb, ok := s.dbs[id]
	if !ok {
		return dbSnapshot{}, false
	}
	return rdb.snap(), true
}

// planKey builds the cross-query cache key. It is version-independent —
// the database component is the registration id plus its registration
// generation, not a content hash — so PATCH can maintain the same entries
// in place across versions; the entry itself derives the version it
// answers for (cachedPlan.servedVersion) and is revalidated on every hit.
// The generation makes delete-then-re-register safe: a preparation still
// in flight for the deleted registration lands under a key (and flight
// key) the new registration can never look up. The query component is the
// canonical rendering of the parsed query, so textual variants of the
// same query (whitespace, atom spelling) share a plan; exogenous
// declarations and the brute-force flag change the prepared state, so
// they are part of the key. Joining the exo list with ',' is
// collision-free because exoSet rejects relation names containing
// anything but word characters, and prefixing with the id is unambiguous
// because registration rejects ids containing control characters (so no
// id can embed the '\x00' separator).
func planKey(id string, gen uint64, canonicalQuery string, exo []string, brute bool) string {
	sorted := append([]string(nil), exo...)
	sort.Strings(sorted)
	return fmt.Sprintf("%s\x00g%d\x00%s\x00exo=%s\x00bf=%t", id, gen, canonicalQuery, strings.Join(sorted, ","), brute)
}

// parsedQuery is a request query parsed to its canonical form: exactly one
// of cq and ucq is non-nil (a union with a single disjunct is a CQ).
type parsedQuery struct {
	cq        *query.CQ
	ucq       *query.UCQ
	canonical string
}

func parseRequestQuery(src string) (parsedQuery, error) {
	if strings.TrimSpace(src) == "" {
		return parsedQuery{}, fmt.Errorf("missing query")
	}
	u, err := query.ParseUCQ(src)
	if err != nil {
		return parsedQuery{}, err
	}
	if len(u.Disjuncts) == 1 {
		q := u.Disjuncts[0]
		return parsedQuery{cq: q, canonical: q.String()}, nil
	}
	return parsedQuery{ucq: u, canonical: u.String()}, nil
}

// planFor returns the cached-plan entry for (snap, pq, exo, brute), from
// the plan cache when warm. A hit is revalidated against the snapshot's
// version (PATCH keeps entries current, so a mismatch only arises when a
// plan prepared against a pre-PATCH snapshot raced its way into the
// cache). A revalidation failure is a partial hit, not a cold miss: the
// stale entry's plan seeds the replacement preparation
// (core.Engine.PrepareFrom), so every DP-tree node whose content survived
// the version skew is reused instead of recomputed. Stale and cold paths
// coalesce through the single-flight group, so N concurrent identical
// misses run exactly one preparation.
func (s *Server) planFor(ctx context.Context, snap dbSnapshot, pq parsedQuery, exo []string, brute bool) (*cachedPlan, bool, error) {
	if _, err := exoSet(exo); err != nil {
		return nil, false, err
	}
	key := planKey(snap.id, snap.gen, pq.canonical, exo, brute)
	stale, st := s.plans.GetRevalidated(key, func(cp *cachedPlan) bool {
		return cp.servedVersion(nil) == snap.version
	})
	if st == servercache.LookupHit {
		return stale, true, nil
	}
	var seed *core.Plan
	if st == servercache.LookupPartial {
		seed = stale.plan
	}
	// The flight key pins the version so joiners of an in-flight prepare
	// can never be handed state for a different snapshot than their own.
	flightKey := fmt.Sprintf("%s\x00v=%d", key, snap.version)
	cp, shared, err := s.flights.do(flightKey, func() (*cachedPlan, error) {
		eng := core.NewEngine(
			core.WithExoRelations(exo...),
			core.WithBruteForce(brute),
			core.WithWorkers(s.opts.Workers),
			core.WithPrepareParallelism(s.opts.PrepareParallelism),
			core.WithSpawnCost(s.opts.PrepareSpawnCost),
		)
		// Detach the leader's cancellation: joiners waiting on this flight
		// must not lose their plan because the initiating client hung up.
		// WithoutCancel keeps the context values, so the leader's recorder
		// (when tracing) still captures the engine.prepare span.
		pctx := context.WithoutCancel(ctx)
		var (
			plan *core.Plan
			err  error
		)
		t0 := time.Now()
		if seed != nil {
			plan, err = eng.PrepareFrom(pctx, snap.d, seed)
		} else if pq.cq != nil {
			plan, err = eng.Prepare(pctx, snap.d, pq.cq)
		} else {
			plan, err = eng.PrepareUCQ(pctx, snap.d, pq.ucq)
		}
		s.met.phasePrepare.Observe(time.Since(t0))
		if err != nil {
			return nil, err
		}
		s.met.plansPrepared.Add(1)
		s.met.countTreeBuild(plan.TreeStats())
		cp := &cachedPlan{plan: plan, base: snap.version - 1}
		s.plans.Put(key, cp)
		return cp, nil
	})
	if err != nil {
		return nil, false, err
	}
	if shared {
		// A joiner rode another request's preparation: the single-flight
		// lane of the coalesced-requests counter.
		s.met.coalescedSingleflight.Add(1)
	}
	return cp, false, nil
}

// relName matches well-formed relation symbols. Rejecting anything else at
// the API boundary both surfaces typos early and guarantees that the
// comma-joined exo component of planKey cannot collide across distinct
// declaration lists.
var relName = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

func exoSet(exo []string) (map[string]bool, error) {
	if len(exo) == 0 {
		return nil, nil
	}
	m := make(map[string]bool, len(exo))
	for _, r := range exo {
		if !relName.MatchString(r) {
			return nil, fmt.Errorf("invalid exogenous relation name %q", r)
		}
		m[r] = true
	}
	return m, nil
}

// statusFor maps solver errors to HTTP status codes: data-level "no such
// endogenous fact" is 404, complexity-side rejections (the FP#P-hard side
// of the dichotomies and the structural preconditions of the exact
// algorithms) are 422, everything else (parse and validation failures) is
// 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrNotEndogenous):
		return http.StatusNotFound
	case errors.Is(err, core.ErrIntractable),
		errors.Is(err, core.ErrNotSelfJoinFree),
		errors.Is(err, core.ErrNotHierarchical),
		errors.Is(err, core.ErrUCQNotDisjoint),
		errors.Is(err, relevance.ErrNotPolarityConsistent):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// errKind labels an error for machine consumption in error bodies.
func errKind(err error) string {
	switch {
	case errors.Is(err, core.ErrNotEndogenous):
		return "not_endogenous"
	case errors.Is(err, core.ErrIntractable):
		return "intractable"
	case errors.Is(err, core.ErrNotSelfJoinFree):
		return "not_self_join_free"
	case errors.Is(err, core.ErrNotHierarchical):
		return "not_hierarchical"
	case errors.Is(err, core.ErrUCQNotDisjoint):
		return "ucq_not_disjoint"
	case errors.Is(err, relevance.ErrNotPolarityConsistent):
		return "not_polarity_consistent"
	case errors.Is(err, core.ErrExoViolated):
		return "exo_violated"
	default:
		return "bad_request"
	}
}

// writeJSON encodes v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Kind: kind})
}

func writeSolverError(w http.ResponseWriter, err error) {
	writeError(w, statusFor(err), errKind(err), err.Error())
}

// decodeBody decodes a JSON request body into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}
