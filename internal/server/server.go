// Package server implements the Shapley attribution server: an HTTP/JSON
// serving layer over the exact and approximate algorithms of the
// reproduction, designed around the observation that for the paper's
// tractable cases (hierarchical CQ¬ via Lemma 3.2 CntSat, ExoShap per
// Theorem 4.3, relation-disjoint UCQ¬s) the per-request cost is dominated
// by fact-independent setup — validation, classification, the ExoShap
// transformation and the shared CntSat dynamic-programming tables. A
// long-lived server amortizes that setup across requests with a
// cross-query LRU plan cache keyed by (database fingerprint, canonicalized
// query, exogenous declarations, brute-force flag): warm requests go
// straight to the per-fact toggles of a cached core.PreparedBatch.
//
// API (all request/response bodies are JSON):
//
//	POST   /v1/databases                  register a database (textual format)
//	GET    /v1/databases                  list registered databases
//	GET    /v1/databases/{id}             inspect one database
//	DELETE /v1/databases/{id}             deregister (drops its cached plans)
//	POST   /v1/databases/{id}/shapley     exact Shapley: one fact, or mode=all
//	POST   /v1/databases/{id}/classify    dichotomy classification (Thms 3.1/4.3)
//	POST   /v1/databases/{id}/relevance   relevance decision (Def. 5.2)
//	POST   /v1/databases/{id}/approx      Monte-Carlo (ε, δ) estimate (§5.1)
//	GET    /healthz                       liveness
//	GET    /metrics                       Prometheus-format counters
//
// Queries on the FP#P-hard side of the dichotomies map to 422 (unless the
// request sets brute_force), unknown databases and non-endogenous facts to
// 404, and malformed inputs to 400.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/relevance"
	"repro/internal/servercache"
)

// Options configures a Server.
type Options struct {
	// Workers is the default worker-pool size for mode=all requests that do
	// not set their own (zero means runtime.GOMAXPROCS(0)).
	Workers int
	// CacheSize is the plan-cache capacity in entries; zero means
	// DefaultCacheSize.
	CacheSize int
	// MaxBodyBytes bounds request bodies; zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// DefaultCacheSize is the plan-cache capacity when Options.CacheSize is 0.
const DefaultCacheSize = 128

// DefaultMaxBodyBytes is the request-body bound when Options.MaxBodyBytes
// is 0 (databases register as text, so bodies can be sizable).
const DefaultMaxBodyBytes = 32 << 20

// Server is the HTTP handler. Create with New; the zero value is unusable.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	mu  sync.RWMutex
	dbs map[string]*registeredDB
	seq int

	plans *servercache.Cache[*core.PreparedBatch]
	met   *metrics
}

// registeredDB is one registered database. The database value is immutable
// after registration, which is what makes cached plans valid for the life
// of the registration.
type registeredDB struct {
	id          string
	fingerprint string
	d           *db.Database
	created     time.Time
}

// New returns a Server ready to serve.
func New(opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		start: time.Now(),
		dbs:   make(map[string]*registeredDB),
		plans: servercache.New[*core.PreparedBatch](opts.CacheSize),
		met:   newMetrics(),
	}
	s.mux.HandleFunc("POST /v1/databases", s.handleRegister)
	s.mux.HandleFunc("GET /v1/databases", s.handleListDatabases)
	s.mux.HandleFunc("GET /v1/databases/{id}", s.handleGetDatabase)
	s.mux.HandleFunc("DELETE /v1/databases/{id}", s.handleDeleteDatabase)
	s.mux.HandleFunc("POST /v1/databases/{id}/shapley", s.handleShapley)
	s.mux.HandleFunc("POST /v1/databases/{id}/classify", s.handleClassify)
	s.mux.HandleFunc("POST /v1/databases/{id}/relevance", s.handleRelevance)
	s.mux.HandleFunc("POST /v1/databases/{id}/approx", s.handleApprox)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler, recording per-route counters around
// the mux dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.opts.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	// r.Pattern is set by the mux on a match; unmatched requests group
	// under "unmatched".
	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	s.met.countRequest(route, sw.status)
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// CacheStats reports the plan cache's hit/miss/eviction counters and
// current size (exported for tests and benchmarks).
func (s *Server) CacheStats() (hits, misses, evictions int64, entries int) {
	return s.plans.Hits(), s.plans.Misses(), s.plans.Evictions(), s.plans.Len()
}

// PurgePlans empties the plan cache (benchmark cold-path support).
func (s *Server) PurgePlans() { s.plans.Purge() }

// lookup returns the registered database for an id.
func (s *Server) lookup(id string) (*registeredDB, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rdb, ok := s.dbs[id]
	return rdb, ok
}

// planKey builds the cross-query cache key. The query component is the
// canonical rendering of the parsed query, so textual variants of the same
// query (whitespace, atom spelling) share a plan; exogenous declarations
// and the brute-force flag change the prepared state, so they are part of
// the key. Joining the exo list with ',' is collision-free because exoSet
// rejects relation names containing anything but word characters.
func planKey(fingerprint, canonicalQuery string, exo []string, brute bool) string {
	sorted := append([]string(nil), exo...)
	sort.Strings(sorted)
	return fmt.Sprintf("%s\x00%s\x00exo=%s\x00bf=%t", fingerprint, canonicalQuery, strings.Join(sorted, ","), brute)
}

// parsedQuery is a request query parsed to its canonical form: exactly one
// of cq and ucq is non-nil (a union with a single disjunct is a CQ).
type parsedQuery struct {
	cq        *query.CQ
	ucq       *query.UCQ
	canonical string
}

func parseRequestQuery(src string) (parsedQuery, error) {
	if strings.TrimSpace(src) == "" {
		return parsedQuery{}, fmt.Errorf("missing query")
	}
	u, err := query.ParseUCQ(src)
	if err != nil {
		return parsedQuery{}, err
	}
	if len(u.Disjuncts) == 1 {
		q := u.Disjuncts[0]
		return parsedQuery{cq: q, canonical: q.String()}, nil
	}
	return parsedQuery{ucq: u, canonical: u.String()}, nil
}

// preparedFor returns the PreparedBatch for (rdb, pq, exo, brute), from
// the plan cache when warm. Concurrent misses on the same key may prepare
// twice; the last Put wins and both handles are valid, so correctness is
// unaffected.
func (s *Server) preparedFor(rdb *registeredDB, pq parsedQuery, exo []string, brute bool) (*core.PreparedBatch, bool, error) {
	exoRels, err := exoSet(exo)
	if err != nil {
		return nil, false, err
	}
	key := planKey(rdb.fingerprint, pq.canonical, exo, brute)
	if p, ok := s.plans.Get(key); ok {
		return p, true, nil
	}
	solver := &core.Solver{ExoRelations: exoRels, AllowBruteForce: brute}
	var p *core.PreparedBatch
	if pq.cq != nil {
		p, err = solver.PrepareAll(rdb.d, pq.cq)
	} else {
		p, err = solver.PrepareAllUCQ(rdb.d, pq.ucq)
	}
	if err != nil {
		return nil, false, err
	}
	s.met.plansPrepared.Add(1)
	s.plans.Put(key, p)
	return p, false, nil
}

// relName matches well-formed relation symbols. Rejecting anything else at
// the API boundary both surfaces typos early and guarantees that the
// comma-joined exo component of planKey cannot collide across distinct
// declaration lists.
var relName = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

func exoSet(exo []string) (map[string]bool, error) {
	if len(exo) == 0 {
		return nil, nil
	}
	m := make(map[string]bool, len(exo))
	for _, r := range exo {
		if !relName.MatchString(r) {
			return nil, fmt.Errorf("invalid exogenous relation name %q", r)
		}
		m[r] = true
	}
	return m, nil
}

// statusFor maps solver errors to HTTP status codes: data-level "no such
// endogenous fact" is 404, complexity-side rejections (the FP#P-hard side
// of the dichotomies and the structural preconditions of the exact
// algorithms) are 422, everything else (parse and validation failures) is
// 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrNotEndogenous):
		return http.StatusNotFound
	case errors.Is(err, core.ErrIntractable),
		errors.Is(err, core.ErrNotSelfJoinFree),
		errors.Is(err, core.ErrNotHierarchical),
		errors.Is(err, core.ErrUCQNotDisjoint),
		errors.Is(err, relevance.ErrNotPolarityConsistent):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// errKind labels an error for machine consumption in error bodies.
func errKind(err error) string {
	switch {
	case errors.Is(err, core.ErrNotEndogenous):
		return "not_endogenous"
	case errors.Is(err, core.ErrIntractable):
		return "intractable"
	case errors.Is(err, core.ErrNotSelfJoinFree):
		return "not_self_join_free"
	case errors.Is(err, core.ErrNotHierarchical):
		return "not_hierarchical"
	case errors.Is(err, core.ErrUCQNotDisjoint):
		return "ucq_not_disjoint"
	case errors.Is(err, relevance.ErrNotPolarityConsistent):
		return "not_polarity_consistent"
	case errors.Is(err, core.ErrExoViolated):
		return "exo_violated"
	default:
		return "bad_request"
	}
}

// writeJSON encodes v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Kind: kind})
}

func writeSolverError(w http.ResponseWriter, err error) {
	writeError(w, statusFor(err), errKind(err), err.Error())
}

// decodeBody decodes a JSON request body into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}
