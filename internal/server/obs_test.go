package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// ---------------------------------------------------------------------------
// Prometheus text exposition parser. Deliberately strict: /metrics is the
// scrape surface, so the test fails on anything a real scraper would
// reject — missing HELP/TYPE, malformed labels, non-cumulative buckets.
// ---------------------------------------------------------------------------

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string            // full series name, e.g. foo_bucket
	labels map[string]string // parsed label block
	value  float64
	line   int
}

// promScrape is one parsed exposition.
type promScrape struct {
	types   map[string]string // family -> counter|gauge|histogram
	help    map[string]bool
	samples []promSample
}

// parseProm parses a text exposition, failing the test on any
// malformation: HELP/TYPE must precede the family's first sample and
// appear exactly once, names and labels must be well-formed.
func parseProm(t *testing.T, text string) *promScrape {
	t.Helper()
	sc := &promScrape{types: make(map[string]string), help: make(map[string]bool)}
	seenSample := make(map[string]bool) // family -> sample already emitted
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", ln, line)
			}
			if sc.help[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln, name)
			}
			if seenSample[name] {
				t.Fatalf("line %d: HELP for %s after its samples", ln, name)
			}
			sc.help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed TYPE: %q", ln, line)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown TYPE %q for %s", ln, typ, name)
			}
			if _, dup := sc.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, name)
			}
			if seenSample[name] {
				t.Fatalf("line %d: TYPE for %s after its samples", ln, name)
			}
			sc.types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s := parsePromSample(t, ln, line)
		fam := familyOf(sc, s.name)
		if fam == "" {
			t.Fatalf("line %d: sample %s has no preceding # TYPE", ln, s.name)
		}
		if !sc.help[fam] {
			t.Fatalf("line %d: sample %s has no preceding # HELP", ln, s.name)
		}
		seenSample[fam] = true
		sc.samples = append(sc.samples, s)
	}
	return sc
}

// familyOf maps a series name to its declared family: exact for plain
// metrics, suffix-stripped for histogram series.
func familyOf(sc *promScrape, series string) string {
	if _, ok := sc.types[series]; ok {
		return series
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(series, suf); ok {
			if sc.types[base] == "histogram" {
				return base
			}
		}
	}
	return ""
}

// parsePromSample parses `name{labels} value` / `name value`.
func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: make(map[string]string), line: ln}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label block: %q", ln, line)
		}
		parsePromLabels(t, ln, line[i+1:end], s.labels)
		rest = strings.TrimPrefix(line[end+1:], " ")
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: sample without value: %q", ln, line)
		}
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad metric name %q", ln, s.name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// parsePromLabels parses a `k1="v1",k2="v2"` block, honoring \" and \\
// escapes inside values.
func parsePromLabels(t *testing.T, ln int, block string, out map[string]string) {
	t.Helper()
	for i := 0; i < len(block); {
		eq := strings.IndexByte(block[i:], '=')
		if eq < 0 {
			t.Fatalf("line %d: label block %q: missing '='", ln, block)
		}
		key := block[i : i+eq]
		if !labelNameRe.MatchString(key) {
			t.Fatalf("line %d: bad label name %q", ln, key)
		}
		i += eq + 1
		if i >= len(block) || block[i] != '"' {
			t.Fatalf("line %d: label %s: unquoted value", ln, key)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(block) {
			c := block[i]
			if c == '\\' && i+1 < len(block) {
				val.WriteByte(block[i+1])
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			t.Fatalf("line %d: label %s: unterminated value", ln, key)
		}
		if _, dup := out[key]; dup {
			t.Fatalf("line %d: duplicate label %s", ln, key)
		}
		out[key] = val.String()
		if i < len(block) {
			if block[i] != ',' {
				t.Fatalf("line %d: expected ',' after label %s, got %q", ln, key, block[i:])
			}
			i++
		}
	}
}

// seriesKey identifies one series across scrapes: name plus its sorted
// label pairs (drop is excluded, for grouping histogram buckets by
// everything but le).
func seriesKey(s promSample, drop string) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(&b, ",%s=%s", k, s.labels[k])
	}
	return b.String()
}

// checkHistograms verifies every histogram family: per label set the
// buckets are cumulative with strictly increasing le boundaries, the
// series ends at le="+Inf", and _count equals the +Inf bucket.
func checkHistograms(t *testing.T, sc *promScrape) {
	t.Helper()
	type series struct {
		les    []float64
		counts []float64
	}
	buckets := make(map[string]*series)
	counts := make(map[string]float64)
	sums := make(map[string]bool)
	var order []string
	for _, s := range sc.samples {
		if familyOf(sc, s.name) == s.name {
			continue // not a histogram series
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("line %d: %s bucket without le label", s.line, s.name)
			}
			var bound float64
			if le == "+Inf" {
				bound = float64(1<<63 - 1)
			} else {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("line %d: bad le %q: %v", s.line, le, err)
				}
			}
			base := s
			base.name = strings.TrimSuffix(s.name, "_bucket")
			key := seriesKey(base, "le")
			sr := buckets[key]
			if sr == nil {
				sr = &series{}
				buckets[key] = sr
				order = append(order, key)
			}
			sr.les = append(sr.les, bound)
			sr.counts = append(sr.counts, s.value)
		case strings.HasSuffix(s.name, "_count"):
			base := s
			base.name = strings.TrimSuffix(s.name, "_count")
			counts[seriesKey(base, "")] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			base := s
			base.name = strings.TrimSuffix(s.name, "_sum")
			sums[seriesKey(base, "")] = true
		}
	}
	if len(order) == 0 {
		t.Fatal("no histogram series found on /metrics")
	}
	for _, key := range order {
		sr := buckets[key]
		base := key
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				t.Errorf("%s: le boundaries not increasing: %v", key, sr.les)
			}
			if sr.counts[i] < sr.counts[i-1] {
				t.Errorf("%s: buckets not cumulative: %v", key, sr.counts)
			}
		}
		if sr.les[len(sr.les)-1] != float64(1<<63-1) {
			t.Errorf("%s: bucket series does not end at le=\"+Inf\"", key)
		}
		cnt, ok := counts[base]
		if !ok {
			t.Errorf("%s: missing _count series", base)
		} else if inf := sr.counts[len(sr.counts)-1]; cnt != inf {
			t.Errorf("%s: _count %v != +Inf bucket %v", base, cnt, inf)
		}
		if !sums[base] {
			t.Errorf("%s: missing _sum series", base)
		}
	}
}

// scrapeMetrics fetches and parses /metrics.
func scrapeMetrics(t *testing.T, s *Server) *promScrape {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	return parseProm(t, rec.Body.String())
}

func TestMetricsExpositionFormat(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	ask := func() {
		var resp map[string]any
		rec := do(t, s, "POST", "/v1/databases/uni/shapley",
			map[string]any{"query": q1Src, "mode": "all"}, &resp)
		if rec.Code != http.StatusOK {
			t.Fatalf("shapley: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	ask()
	// An unmatched route must land in the catch-all counter, not break
	// the exposition.
	do(t, s, "GET", "/no/such/route", nil, nil)

	first := scrapeMetrics(t, s)
	checkHistograms(t, first)

	// The request histogram family must exist with per-route label sets.
	if first.types["shapleyd_request_duration_seconds"] != "histogram" {
		t.Fatal("shapleyd_request_duration_seconds is not exposed as a histogram")
	}
	if first.types["shapleyd_phase_duration_seconds"] != "histogram" {
		t.Fatal("shapleyd_phase_duration_seconds is not exposed as a histogram")
	}
	foundRoute := false
	for _, smp := range first.samples {
		if smp.name == "shapleyd_request_duration_seconds_count" &&
			smp.labels["route"] == "POST /v1/databases/{id}/shapley" && smp.value >= 1 {
			foundRoute = true
		}
	}
	if !foundRoute {
		t.Error("no shapleyd_request_duration_seconds_count sample for the shapley route")
	}

	// Counters must be monotonic across scrapes with traffic in between.
	ask()
	second := scrapeMetrics(t, s)
	checkHistograms(t, second)
	prev := make(map[string]float64)
	for _, smp := range first.samples {
		if first.types[familyOf(first, smp.name)] == "counter" || strings.HasSuffix(smp.name, "_count") {
			prev[seriesKey(smp, "")] = smp.value
		}
	}
	for _, smp := range second.samples {
		key := seriesKey(smp, "")
		was, ok := prev[key]
		if !ok {
			continue
		}
		if second.types[familyOf(second, smp.name)] == "counter" || strings.HasSuffix(smp.name, "_count") {
			if smp.value < was {
				t.Errorf("counter %s went backwards: %v -> %v", key, was, smp.value)
			}
		}
	}
	// The shapley route counter specifically must have advanced.
	key := `shapleyd_requests_total,route=POST /v1/databases/{id}/shapley,status=200`
	var got float64
	for _, smp := range second.samples {
		if seriesKey(smp, "") == key {
			got = smp.value
		}
	}
	if got < 2 {
		t.Errorf("shapleyd_requests_total for the shapley route = %v, want >= 2", got)
	}
}

// ---------------------------------------------------------------------------
// Trace echo (?trace=1) and trace-id propagation.
// ---------------------------------------------------------------------------

// bigDBText builds a university-shaped database large enough that the
// traced phases dominate request wall time.
func bigDBText(students int) string {
	var b strings.Builder
	for i := 0; i < students; i++ {
		fmt.Fprintf(&b, "exo Stud(s%d)\n", i)
		fmt.Fprintf(&b, "endo TA(s%d)\n", i)
		fmt.Fprintf(&b, "endo Reg(s%d, c1)\n", i)
		fmt.Fprintf(&b, "endo Reg(s%d, c2)\n", i)
	}
	return b.String()
}

// spanNames flattens a span tree into name -> total duration_ns.
func spanNames(root *obs.SpanJSON, out map[string]int64) {
	if root == nil {
		return
	}
	out[root.Name] += root.DurationNS
	for _, c := range root.Children {
		spanNames(c, out)
	}
}

func TestServerTraceEcho(t *testing.T) {
	s := New(Options{})
	var info map[string]any
	rec := do(t, s, "POST", "/v1/databases", map[string]any{"id": "big", "text": bigDBText(120)}, &info)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.String())
	}

	type traced struct {
		Cache string     `json:"cache"`
		Trace *obs.Trace `json:"trace"`
	}

	// Cold request, untraced: the response must NOT carry a trace key.
	var plain map[string]any
	rec = do(t, s, "POST", "/v1/databases/big/shapley", map[string]any{"query": q1Src, "mode": "all"}, &plain)
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", rec.Code, rec.Body.String())
	}
	if _, ok := plain["trace"]; ok {
		t.Error("untraced response carries a trace field")
	}
	if rec.Header().Get("X-Trace-Id") == "" {
		t.Error("untraced response is missing the X-Trace-Id header")
	}

	// Warm request with ?trace=1: plan lookup hits the cache and the span
	// tree covers the compute phases.
	var resp traced
	rec = do(t, s, "POST", "/v1/databases/big/shapley?trace=1", map[string]any{"query": q1Src, "mode": "all"}, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("traced: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Cache != "hit" {
		t.Fatalf("traced request cache = %q, want hit", resp.Cache)
	}
	if resp.Trace == nil || resp.Trace.Root == nil {
		t.Fatal("traced response has no span tree")
	}
	hdr := rec.Header().Get("X-Trace-Id")
	if resp.Trace.TraceID == "" || resp.Trace.TraceID != hdr {
		t.Errorf("trace id %q does not match X-Trace-Id header %q", resp.Trace.TraceID, hdr)
	}

	root := resp.Trace.Root
	if root.Name != "request" {
		t.Errorf("root span = %q, want request", root.Name)
	}
	names := make(map[string]int64)
	spanNames(root, names)
	// Distinct phases: plan lookup, batch orchestration, per-worker tree
	// work and weighting must all be present as separate spans.
	for _, want := range []string{"plan.lookup", "shapley.all", "batch.worker", "tree.toggle", "weight"} {
		if _, ok := names[want]; !ok {
			t.Errorf("span %q missing from trace (got %v)", want, names)
		}
	}

	// Phase coverage: the root's direct children must account for (almost
	// all of) the request wall time — the instrumented phases are where
	// the time actually goes.
	var childSum int64
	for _, c := range root.Children {
		childSum += c.DurationNS
	}
	if root.DurationNS <= 0 {
		t.Fatalf("root span duration = %d", root.DurationNS)
	}
	if childSum > root.DurationNS {
		t.Errorf("children (%dns) exceed root wall time (%dns)", childSum, root.DurationNS)
	}
	if frac := float64(childSum) / float64(root.DurationNS); frac < 0.9 {
		t.Errorf("phase spans cover %.1f%% of request wall time, want >= 90%%", frac*100)
	}

	// PATCH with ?trace=1 reports the plan.apply phase.
	var pr traced
	rec = do(t, s, "PATCH", "/v1/databases/big?trace=1", map[string]any{"add_endo": []string{"TA(extra)"}}, &pr)
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: status %d: %s", rec.Code, rec.Body.String())
	}
	if pr.Trace == nil || pr.Trace.Root == nil {
		t.Fatal("traced PATCH response has no span tree")
	}
	pn := make(map[string]int64)
	spanNames(pr.Trace.Root, pn)
	if _, ok := pn["plan.apply"]; !ok {
		t.Errorf("PATCH trace is missing plan.apply (got %v)", pn)
	}
}

func TestServerTraceIDHeader(t *testing.T) {
	s := New(Options{})

	send := func(inbound string) string {
		req := httptest.NewRequest("GET", "/healthz", nil)
		if inbound != "" {
			req.Header.Set("X-Trace-Id", inbound)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz: status %d", rec.Code)
		}
		return rec.Header().Get("X-Trace-Id")
	}

	if got := send("req-42-abc"); got != "req-42-abc" {
		t.Errorf("well-formed inbound trace id not honored: got %q", got)
	}
	if got := send(""); got == "" {
		t.Error("no trace id generated for an id-less request")
	}
	if got := send("has space"); got == "has space" || got == "" {
		t.Errorf("trace id with whitespace was honored: %q", got)
	}
	if long := strings.Repeat("a", 65); send(long) == long {
		t.Error("oversized trace id was honored")
	}
	if got := send("ümläut"); got == "ümläut" || got == "" {
		t.Errorf("non-ASCII trace id was honored: %q", got)
	}
}
