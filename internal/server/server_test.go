package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/query"
)

const q1Src = "q1() :- Stud(x), !TA(x), Reg(x, y)"

// do runs one request against the handler and decodes the JSON response
// into out (when non-nil), returning the recorder.
func do(t *testing.T, h http.Handler, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

// registerUniversity registers the Figure 1 database under id "uni".
func registerUniversity(t *testing.T, s *Server) {
	t.Helper()
	var info map[string]any
	rec := do(t, s, "POST", "/v1/databases", map[string]any{"id": "uni", "text": paperex.UniversityDBText}, &info)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.String())
	}
	if info["id"] != "uni" || info["endogenous"].(float64) != 8 {
		t.Fatalf("register info = %v", info)
	}
}

func TestServerRegisterQueryCacheHit(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	// Cold request: prepared fresh.
	var resp shapleyResponse
	rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("shapley: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Cache != "miss" || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first request should be a cache miss, got %q", resp.Cache)
	}
	if resp.Method != "hierarchical" {
		t.Fatalf("method = %q, want hierarchical", resp.Method)
	}
	if len(resp.Values) != 8 {
		t.Fatalf("%d values, want 8", len(resp.Values))
	}
	for _, v := range resp.Values {
		if want := paperex.Example23Values[v.Fact]; want != v.Shapley {
			t.Fatalf("Shapley(%s) = %s, want %s", v.Fact, v.Shapley, want)
		}
	}

	// Warm request with different whitespace: the canonicalized query must
	// hit the same plan.
	var warm shapleyResponse
	rec = do(t, s, "POST", "/v1/databases/uni/shapley",
		map[string]any{"query": "q1()   :-   Stud(x), !TA(x),Reg(x , y)", "mode": "all"}, &warm)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm shapley: status %d: %s", rec.Code, rec.Body.String())
	}
	if warm.Cache != "hit" || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request should be a cache hit, got %q", warm.Cache)
	}
	for i := range warm.Values {
		if warm.Values[i] != resp.Values[i] {
			t.Fatalf("warm value %d differs: %v vs %v", i, warm.Values[i], resp.Values[i])
		}
	}

	// Single-fact requests ride the same cached plan.
	var single shapleyResponse
	rec = do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "fact": "TA(Adam)"}, &single)
	if rec.Code != http.StatusOK {
		t.Fatalf("single: status %d: %s", rec.Code, rec.Body.String())
	}
	if single.Cache != "hit" {
		t.Fatalf("single-fact request should reuse the plan, got %q", single.Cache)
	}
	if single.Value == nil || single.Value.Shapley != "-3/28" {
		t.Fatalf("Shapley(TA(Adam)) = %+v, want -3/28", single.Value)
	}

	// One miss (the cold request), two hits (warm mode=all + single fact),
	// one cached plan.
	hits, misses, _, entries := s.CacheStats()
	if hits != 2 || misses != 1 || entries != 1 {
		t.Fatalf("cache stats hits=%d misses=%d entries=%d, want 2/1/1", hits, misses, entries)
	}
}

func TestServerRankedAndWarmIdentical(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	var ranked shapleyResponse
	do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all", "rank": true}, &ranked)
	if len(ranked.Values) != 8 || ranked.Values[0].Rank != 1 {
		t.Fatalf("ranked values = %+v", ranked.Values)
	}
	for i := 1; i < len(ranked.Values); i++ {
		if ranked.Values[i-1].Decimal < ranked.Values[i].Decimal {
			t.Fatalf("ranking not descending at %d", i)
		}
	}

	// The warm path must be bit-for-bit identical to the library engine.
	d := db.MustParse(paperex.UniversityDBText)
	want, err := (&core.Solver{}).ShapleyAll(d, query.MustParse(q1Src))
	if err != nil {
		t.Fatal(err)
	}
	var warm shapleyResponse
	rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &warm)
	if warm.Cache != "hit" {
		t.Fatalf("expected warm request, got %q (%s)", warm.Cache, rec.Body.String())
	}
	for i, v := range warm.Values {
		if v.Fact != want[i].Fact.Key() || v.Shapley != want[i].Value.RatString() {
			t.Fatalf("warm value %d = %+v, want %s = %s", i, v, want[i].Fact.Key(), want[i].Value.RatString())
		}
	}
}

func TestServerErrorMapping(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	cases := []struct {
		name   string
		path   string
		body   any
		status int
		kind   string
	}{
		{"unknown database", "/v1/databases/nope/shapley",
			map[string]any{"query": q1Src, "mode": "all"}, http.StatusNotFound, "not_found"},
		{"intractable query", "/v1/databases/uni/shapley",
			map[string]any{"query": "q() :- TA(x), Reg(x, y), Course(y, z)", "mode": "all"}, http.StatusUnprocessableEntity, "intractable"},
		{"not endogenous fact", "/v1/databases/uni/shapley",
			map[string]any{"query": q1Src, "fact": "Stud(Adam)"}, http.StatusNotFound, "not_endogenous"},
		{"absent fact", "/v1/databases/uni/shapley",
			map[string]any{"query": q1Src, "fact": "TA(Zoe)"}, http.StatusNotFound, "not_endogenous"},
		{"parse error", "/v1/databases/uni/shapley",
			map[string]any{"query": "not a query", "mode": "all"}, http.StatusBadRequest, "bad_request"},
		{"missing fact and mode", "/v1/databases/uni/shapley",
			map[string]any{"query": q1Src}, http.StatusBadRequest, "bad_request"},
		{"mode=all with fact", "/v1/databases/uni/shapley",
			map[string]any{"query": q1Src, "mode": "all", "fact": "TA(Adam)"}, http.StatusBadRequest, "bad_request"},
		{"exo violated", "/v1/databases/uni/shapley",
			map[string]any{"query": q1Src, "mode": "all", "exo": []string{"TA"}}, http.StatusBadRequest, "exo_violated"},
		{"malformed exo name", "/v1/databases/uni/shapley",
			map[string]any{"query": q1Src, "mode": "all", "exo": []string{"Stud,Course"}}, http.StatusBadRequest, "bad_request"},
		{"non-disjoint union", "/v1/databases/uni/shapley",
			map[string]any{"query": "qa() :- TA(x) | qb() :- TA(x), Reg(x, y)", "mode": "all"}, http.StatusUnprocessableEntity, "ucq_not_disjoint"},
		{"polarity inconsistent relevance", "/v1/databases/uni/relevance",
			map[string]any{"query": "q() :- Reg(x, y), !Reg(y, x)", "fact": "Reg(Adam,OS)"}, http.StatusUnprocessableEntity, "not_polarity_consistent"},
	}
	for _, tc := range cases {
		var eb errorBody
		rec := do(t, s, "POST", tc.path, tc.body, &eb)
		if rec.Code != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.status, rec.Body.String())
		}
		if eb.Kind != tc.kind {
			t.Fatalf("%s: kind %q, want %q", tc.name, eb.Kind, tc.kind)
		}
	}

	// Intractable becomes servable with brute_force.
	var resp shapleyResponse
	rec := do(t, s, "POST", "/v1/databases/uni/shapley",
		map[string]any{"query": "q() :- TA(x), Reg(x, y), Course(y, z)", "mode": "all", "brute_force": true}, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("brute_force: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Method != "brute-force" {
		t.Fatalf("method = %q, want brute-force", resp.Method)
	}
}

func TestServerUCQModeAll(t *testing.T) {
	s := New(Options{})
	text := `
endo R(a)
endo S(a, b)
endo U(a, b)
endo V(b)
endo Free(a)
`
	var info map[string]any
	if rec := do(t, s, "POST", "/v1/databases", map[string]any{"id": "u", "text": text}, &info); rec.Code != http.StatusCreated {
		t.Fatalf("register: %d", rec.Code)
	}
	union := "qa() :- R(x), S(x, y) | qb() :- U(x, y), !V(y)"
	var resp shapleyResponse
	rec := do(t, s, "POST", "/v1/databases/u/shapley", map[string]any{"query": union, "mode": "all"}, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("ucq: status %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Values) != 5 {
		t.Fatalf("%d values, want 5", len(resp.Values))
	}
	// Differential against the per-fact UCQ algorithm.
	d := db.MustParse(text)
	u := query.MustParseUCQ(union)
	for i, f := range d.EndoFacts() {
		want, err := core.ShapleyHierarchicalUCQ(d, u, f)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Values[i].Shapley != want.RatString() {
			t.Fatalf("Shapley(%s) = %s, want %s", f, resp.Values[i].Shapley, want.RatString())
		}
	}
	// And warm.
	var warm shapleyResponse
	do(t, s, "POST", "/v1/databases/u/shapley", map[string]any{"query": union, "mode": "all"}, &warm)
	if warm.Cache != "hit" {
		t.Fatalf("repeated UCQ request should hit, got %q", warm.Cache)
	}
}

func TestServerClassifyRelevanceApprox(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	hard := "q() :- TA(x), Reg(x, y), Course(y, z)"
	var c classifyResponse
	rec := do(t, s, "POST", "/v1/databases/uni/classify", map[string]any{"query": hard}, &c)
	if rec.Code != http.StatusOK || c.Tractable || !c.SelfJoinFree || c.Hierarchical || !c.HasNonHierPath {
		t.Fatalf("classify = %+v (status %d)", c, rec.Code)
	}
	// Declaring Course exogenous breaks the non-hierarchical path (Thm 4.3).
	do(t, s, "POST", "/v1/databases/uni/classify", map[string]any{"query": hard, "exo": []string{"Course"}}, &c)
	if !c.Tractable {
		t.Fatalf("with exogenous Course the query should be tractable: %+v", c)
	}

	var rel relevanceResponse
	rec = do(t, s, "POST", "/v1/databases/uni/relevance", map[string]any{"query": q1Src, "fact": "TA(David)"}, &rel)
	if rec.Code != http.StatusOK || rel.Relevant {
		t.Fatalf("TA(David) should be irrelevant (Example 5.4): %+v (status %d)", rel, rec.Code)
	}
	do(t, s, "POST", "/v1/databases/uni/relevance", map[string]any{"query": q1Src, "fact": "TA(Adam)"}, &rel)
	if !rel.Relevant {
		t.Fatalf("TA(Adam) should be relevant: %+v", rel)
	}

	var ap approxResponse
	rec = do(t, s, "POST", "/v1/databases/uni/approx",
		map[string]any{"query": q1Src, "fact": "TA(Adam)", "eps": 0.2, "delta": 0.1, "seed": 7}, &ap)
	if rec.Code != http.StatusOK {
		t.Fatalf("approx: status %d: %s", rec.Code, rec.Body.String())
	}
	// Exact value is -3/28 ≈ -0.107; the (0.2, 0.1) estimate must be within
	// ε with overwhelming probability at the fixed seed.
	if ap.Estimate < -0.107-0.2 || ap.Estimate > -0.107+0.2 {
		t.Fatalf("estimate %f outside ε of -3/28", ap.Estimate)
	}
	if ap.Samples == 0 {
		t.Fatal("samples not reported")
	}
}

func TestServerDatabaseLifecycle(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	// Conflict on duplicate id.
	rec := do(t, s, "POST", "/v1/databases", map[string]any{"id": "uni", "text": "endo R(a)"}, nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", rec.Code)
	}

	// Dot segments would be ServeMux-redirected and thus unreachable.
	for _, id := range []string{".", "..", "a/b", "a b"} {
		if rec := do(t, s, "POST", "/v1/databases", map[string]any{"id": id, "text": "endo R(a)"}, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("register %q: status %d, want 400", id, rec.Code)
		}
	}

	// mode=all over a database with no endogenous facts must serialize an
	// explicit empty values array, not drop the key.
	do(t, s, "POST", "/v1/databases", map[string]any{"id": "exo-only", "text": "exo R(a)"}, nil)
	rec = do(t, s, "POST", "/v1/databases/exo-only/shapley", map[string]any{"query": "q() :- R(x)", "mode": "all"}, nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"values": []`) {
		t.Fatalf("empty batch: status %d body %s", rec.Code, rec.Body.String())
	}
	do(t, s, "DELETE", "/v1/databases/exo-only", nil, nil)

	// A generated id must skip explicitly registered names, not displace
	// them.
	do(t, s, "POST", "/v1/databases", map[string]any{"id": "db-1", "text": "endo S(a)"}, nil)
	var gen map[string]any
	do(t, s, "POST", "/v1/databases", map[string]any{"text": "endo T(a)"}, &gen)
	if gen["id"] == "db-1" {
		t.Fatal("generated id displaced the explicit registration db-1")
	}
	var kept map[string]any
	do(t, s, "GET", "/v1/databases/db-1", nil, &kept)
	if kept["relations"].([]any)[0] != "S" {
		t.Fatalf("db-1 was overwritten: %v", kept)
	}
	do(t, s, "DELETE", "/v1/databases/db-1", nil, nil)
	do(t, s, "DELETE", "/v1/databases/"+gen["id"].(string), nil, nil)

	// GET and list.
	var info map[string]any
	if rec := do(t, s, "GET", "/v1/databases/uni", nil, &info); rec.Code != http.StatusOK || info["fingerprint"] == "" {
		t.Fatalf("get: %d %v", rec.Code, info)
	}
	var list map[string][]map[string]any
	do(t, s, "GET", "/v1/databases", nil, &list)
	if len(list["databases"]) != 1 {
		t.Fatalf("list = %v", list)
	}

	// Warm a plan, then delete: plans must be dropped with the database.
	do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, nil)
	if _, _, _, entries := s.CacheStats(); entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	if rec := do(t, s, "DELETE", "/v1/databases/uni", nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", rec.Code)
	}
	if _, _, _, entries := s.CacheStats(); entries != 0 {
		t.Fatalf("entries = %d after delete, want 0", entries)
	}
	if rec := do(t, s, "GET", "/v1/databases/uni", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/databases/uni", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", rec.Code)
	}
}

func TestServerHealthzAndMetrics(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)
	do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, nil)
	do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, nil)

	var hz map[string]any
	rec := do(t, s, "GET", "/healthz", nil, &hz)
	if rec.Code != http.StatusOK || hz["status"] != "ok" || hz["databases"].(float64) != 1 {
		t.Fatalf("healthz = %v (status %d)", hz, rec.Code)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, req)
	body := mrec.Body.String()
	for _, want := range []string{
		"shapleyd_plan_cache_hits_total 1",
		"shapleyd_plan_cache_misses_total 1",
		"shapleyd_plan_cache_entries 1",
		"shapleyd_databases_registered 1",
		"shapleyd_values_computed_total 16",
		`shapleyd_requests_total{route="POST /v1/databases/{id}/shapley",status="200"} 2`,
		`shapleyd_tree_nodes_by_rep{rep="u64"}`,
		`shapleyd_numeric_promotions_total{to="u128"}`,
		`shapleyd_numeric_promotions_total{to="big"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestConcurrentRequests hammers a shared plan from many goroutines while
// registrations churn; run under -race this is the server's thread-safety
// gate.
func TestServerConcurrentRequests(t *testing.T) {
	s := New(Options{CacheSize: 4})
	registerUniversity(t, s)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				switch i % 4 {
				case 0, 1:
					var resp shapleyResponse
					rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all", "workers": 2}, &resp)
					if rec.Code != http.StatusOK {
						t.Errorf("shapley: status %d", rec.Code)
						return
					}
					if len(resp.Values) != 8 {
						t.Errorf("%d values", len(resp.Values))
						return
					}
				case 2:
					var single shapleyResponse
					rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "fact": "TA(Adam)"}, &single)
					if rec.Code != http.StatusOK || single.Value.Shapley != "-3/28" {
						t.Errorf("single: status %d value %+v", rec.Code, single.Value)
						return
					}
				case 3:
					id := fmt.Sprintf("scratch-%d-%d", g, i)
					do(t, s, "POST", "/v1/databases", map[string]any{"id": id, "text": "endo R(a)\nendo R(b)"}, nil)
					do(t, s, "POST", "/v1/databases/"+id+"/shapley", map[string]any{"query": "q() :- R(x)", "mode": "all"}, nil)
					do(t, s, "DELETE", "/v1/databases/"+id, nil, nil)
				}
			}
		}(g)
	}
	wg.Wait()
}
